package kway_test

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
)

// TestMultilevelPartitionVerifies is the engine-level differential:
// the same medium circuit partitioned flat and through the V-cycle
// (MultilevelMinCells lowered so real carves route through it). The
// multilevel result must pass the full verifier and its device cost
// must stay within a fixed tolerance of the flat engine's.
func TestMultilevelPartitionVerifies(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		g, err := bench.Generate(bench.Params{
			Cells: 900, PrimaryIn: 20, PrimaryOut: 12, Seed: seed, Clustering: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := kway.Options{Library: library.XC3000(), Solutions: 6, Seed: 7, Verify: true}
		flat, err := kway.Partition(g, opts)
		if err != nil {
			t.Fatalf("seed %d: flat: %v", seed, err)
		}
		opts.Multilevel = true
		opts.MultilevelMinCells = 200
		ml, err := kway.Partition(g, opts)
		if err != nil {
			t.Fatalf("seed %d: multilevel: %v", seed, err)
		}
		if err := ml.Verify(g); err != nil {
			t.Fatalf("seed %d: multilevel result failed verification: %v", seed, err)
		}
		fc, mc := flat.Summary.DeviceCost(), ml.Summary.DeviceCost()
		t.Logf("seed %d: flat cost %.0f (k=%d), multilevel cost %.0f (k=%d)",
			seed, fc, flat.Summary.K(), mc, ml.Summary.K())
		// Fixed tolerance: the V-cycle seeds different carves, so costs
		// differ, but never by more than 25%.
		if mc > fc*1.25 {
			t.Fatalf("seed %d: multilevel cost %.0f worse than flat %.0f beyond 25%% tolerance", seed, mc, fc)
		}
	}
}

// TestMultilevelDeterministicAcrossWorkers pins the Workers contract
// through the whole engine with the V-cycle enabled: fixed-seed runs
// must agree regardless of pool size.
func TestMultilevelDeterministicAcrossWorkers(t *testing.T) {
	g, err := bench.Generate(bench.Params{
		Cells: 700, PrimaryIn: 16, PrimaryOut: 10, Seed: 5, Clustering: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := kway.Options{
		Library: library.XC3000(), Solutions: 4, Seed: 9,
		Multilevel: true, MultilevelMinCells: 200,
	}
	a, err := kway.Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 3
	b, err := kway.Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := goldenRender(t, a), goldenRender(t, b); ra != rb {
		t.Fatal("multilevel partition diverged across worker counts")
	}
}
