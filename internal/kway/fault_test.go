package kway

import (
	"context"
	"errors"
	"testing"
	"time"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/fm"
	"fpgapart/internal/search"
	"fpgapart/internal/trace"
)

// TestInjectedPanicDegraded is the containment contract at the kway
// level: one poisoned attempt degrades the result — the survivors fold
// deterministically and the failure is reported — instead of killing
// the run.
func TestInjectedPanicDegraded(t *testing.T) {
	g := testCircuit(t, 300, 8)
	const solutions = 6
	const victim = 2

	var healthyRec trace.Recorder
	o := opts(fm.NoReplication, solutions)
	o.Trace = &healthyRec
	if _, err := Partition(g, o); err != nil {
		t.Fatal(err)
	}

	var injRec trace.Recorder
	oi := opts(fm.NoReplication, solutions)
	oi.Trace = &injRec
	oi.Inject = faultinject.NewPlan(faultinject.PanicAtAttempt(victim))
	res, err := Partition(g, oi)
	if err != nil {
		t.Fatalf("injected panic killed the run: %v", err)
	}
	if !res.Degraded || res.Panicked != 1 {
		t.Fatalf("Degraded=%v Panicked=%d, want true/1", res.Degraded, res.Panicked)
	}
	if len(res.PanickedSeeds) != 1 {
		t.Fatalf("PanickedSeeds = %v, want exactly one seed", res.PanickedSeeds)
	}

	healthySols := healthyRec.Filter(trace.KindSolution)
	injSols := injRec.Filter(trace.KindSolution)
	if len(injSols) != solutions {
		t.Fatalf("folded %d solution events, want %d (one per attempt)", len(injSols), solutions)
	}
	for i, e := range injSols {
		if e.Attempt != victim {
			// Survivors are bit-identical to the healthy run's attempts.
			if e.Cost != healthySols[i].Cost || e.Feasible != healthySols[i].Feasible {
				t.Fatalf("surviving attempt %d diverged: got cost=%.1f feasible=%v, want %.1f/%v",
					e.Attempt, e.Cost, e.Feasible, healthySols[i].Cost, healthySols[i].Feasible)
			}
			continue
		}
		if e.Feasible || !e.Panic {
			t.Fatalf("victim attempt event not marked as panic failure: %+v", e)
		}
	}

	// The degraded best equals the best over the healthy run's events
	// with the victim excluded.
	wantBest := -1.0
	for _, e := range healthySols {
		if e.Attempt == victim || !e.Feasible {
			continue
		}
		if wantBest < 0 || e.Cost < wantBest {
			wantBest = e.Cost
		}
	}
	if res.Summary.DeviceCost() > wantBest {
		t.Fatalf("degraded best %.1f worse than surviving minimum %.1f", res.Summary.DeviceCost(), wantBest)
	}
	if verr := res.Verify(g); verr != nil {
		t.Fatalf("degraded result fails verification: %v", verr)
	}
}

// TestDegradedDeterminism: the same fault plan yields the same
// degraded result — fault injection is part of the deterministic
// replay surface, not a source of nondeterminism.
func TestDegradedDeterminism(t *testing.T) {
	g := testCircuit(t, 300, 8)
	run := func() (Result, []trace.Event) {
		var rec trace.Recorder
		o := opts(fm.NoReplication, 5)
		o.Trace = &rec
		o.Inject = faultinject.NewPlan(faultinject.PanicAtAttempt(1))
		res, err := Partition(g, o)
		if err != nil {
			t.Fatal(err)
		}
		return res, rec.Filter(trace.KindSolution)
	}
	a, aev := run()
	b, bev := run()
	if a.Summary.DeviceCost() != b.Summary.DeviceCost() || a.Summary.K() != b.Summary.K() {
		t.Fatalf("degraded runs diverged: %v vs %v", a.Summary, b.Summary)
	}
	if len(a.PanickedSeeds) != 1 || len(b.PanickedSeeds) != 1 || a.PanickedSeeds[0] != b.PanickedSeeds[0] {
		t.Fatalf("panicked seeds diverged: %v vs %v", a.PanickedSeeds, b.PanickedSeeds)
	}
	if len(aev) != len(bev) {
		t.Fatalf("event counts diverged: %d vs %d", len(aev), len(bev))
	}
	for i := range aev {
		if aev[i] != bev[i] {
			t.Fatalf("event %d diverged:\n %+v\n %+v", i, aev[i], bev[i])
		}
	}
}

// TestAllAttemptsPanic: when every attempt dies the search must fail
// with the infeasibility contract — an *InfeasibleError whose cause
// chain reaches the contained panic — never a crash.
func TestAllAttemptsPanic(t *testing.T) {
	g := testCircuit(t, 200, 6)
	o := opts(fm.NoReplication, 4)
	o.Inject = faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteAttempt, Kind: faultinject.KindPanic,
		Attempt: faultinject.Any, Index: faultinject.Any,
	})
	_, err := Partition(g, o)
	if err == nil {
		t.Fatal("all-panic run returned a result")
	}
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("want *InfeasibleError, got %T: %v", err, err)
	}
	var perr *search.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("cause chain should reach the contained panic: %v", err)
	}
}

// TestSlowWorkerTimeout: injected slow workers plus a deadline shorter
// than any attempt surface the budget error, exactly like a real
// -timeout expiry with no feasible solution.
func TestSlowWorkerTimeout(t *testing.T) {
	g := testCircuit(t, 200, 6)
	o := opts(fm.NoReplication, 4)
	o.Inject = faultinject.NewPlan(faultinject.DelayAtAttempt(faultinject.Any, 300*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := PartitionContext(ctx, g, o)
	if err == nil {
		t.Fatal("timed-out run returned a result")
	}
	var budget *search.ErrBudget
	if !errors.As(err, &budget) {
		t.Fatalf("want *search.ErrBudget, got %T: %v", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budget cause should be the deadline: %v", err)
	}
}

// TestSpuriousCancelIsAttemptFailure: an injected cancellation — the
// error says context.Canceled but the real context is live — must fold
// as an ordinary attempt failure, not truncate the search as a budget
// stop.
func TestSpuriousCancelIsAttemptFailure(t *testing.T) {
	g := testCircuit(t, 300, 8)
	const solutions = 5
	o := opts(fm.NoReplication, solutions)
	var rec trace.Recorder
	o.Trace = &rec
	o.Inject = faultinject.NewPlan(faultinject.CancelAtAttempt(1))
	res, err := Partition(g, o)
	if err != nil {
		t.Fatalf("spurious cancel killed the run: %v", err)
	}
	if res.Stopped == StoppedBudget {
		t.Fatal("spurious cancel was misread as a budget stop")
	}
	if res.Failed < 1 {
		t.Fatalf("Failed = %d, want the cancelled attempt counted", res.Failed)
	}
	if res.Degraded {
		t.Fatal("spurious cancel is not a panic; result must not be Degraded")
	}
	sols := rec.Filter(trace.KindSolution)
	if len(sols) != solutions {
		t.Fatalf("folded %d events, want all %d attempts", len(sols), solutions)
	}
	if sols[1].Feasible {
		t.Fatalf("cancelled attempt folded as feasible: %+v", sols[1])
	}
}

// TestAllocCapContained: a tripped allocation cap abandons that
// attempt with a typed error and the search degrades to the surviving
// attempts.
func TestAllocCapContained(t *testing.T) {
	g := testCircuit(t, 300, 8)
	o := opts(fm.NoReplication, 4)
	o.Inject = faultinject.NewPlan(faultinject.AllocCapAtCarve(1, faultinject.Any))
	res, err := Partition(g, o)
	if err != nil {
		t.Fatalf("alloc-cap trip killed the run: %v", err)
	}
	if res.Failed < 1 {
		t.Fatalf("Failed = %d, want the capped attempt counted", res.Failed)
	}
	if verr := res.Verify(g); verr != nil {
		t.Fatalf("result fails verification: %v", verr)
	}
}

// TestConcurrentCancelWithPanicsRace combines real cancellation racing
// injected panics; under -race this exercises containment plus
// cancellation concurrently. Any coherent outcome is acceptable: a
// verified (possibly degraded) result or a budget/infeasible error.
func TestConcurrentCancelWithPanicsRace(t *testing.T) {
	g := testCircuit(t, 300, 8)
	for i := 0; i < 4; i++ {
		plan := faultinject.NewPlan(faultinject.PanicAtAttempt(i % 3))
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(i) * 2 * time.Millisecond)
		o := opts(fm.NoReplication, 8)
		o.Inject = plan
		res, err := PartitionContext(ctx, g, o)
		switch {
		case err == nil:
			if verr := res.Verify(g); verr != nil {
				t.Fatalf("iteration %d: accepted result fails verification: %v", i, verr)
			}
		default:
			var budget *search.ErrBudget
			var inf *InfeasibleError
			if !errors.As(err, &budget) && !errors.As(err, &inf) {
				t.Fatalf("iteration %d: unexpected error type: %v", i, err)
			}
		}
		cancel()
	}
}
