package kway

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/library"
)

func testCircuit(t testing.TB, cells int, seed int64) *hypergraph.Graph {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "kwaytest", Cells: cells, PrimaryIn: 12, PrimaryOut: 8,
		Seed: seed, Clustering: 0.55,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func opts(threshold int, solutions int) Options {
	return Options{
		Library:   library.XC3000(),
		Threshold: threshold,
		Solutions: solutions,
		Seed:      1,
		// The whole suite runs with in-loop verification: any carve or
		// solution the search accepts that fails the structural checks
		// turns into a *VerificationError test failure.
		Verify: true,
	}
}

func TestPartitionSingleDeviceFit(t *testing.T) {
	g := testCircuit(t, 40, 1)
	res, err := Partition(g, opts(fm.NoReplication, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.K() != 1 {
		t.Fatalf("k = %d, want 1 (fits one XC3020)", res.Summary.K())
	}
	if res.Parts[0].Device.Name != "XC3020" {
		t.Fatalf("device = %s, want XC3020", res.Parts[0].Device.Name)
	}
	if !res.Summary.Feasible() {
		t.Fatal("solution reported infeasible")
	}
}

func TestPartitionMultiDevice(t *testing.T) {
	g := testCircuit(t, 400, 2)
	res, err := Partition(g, opts(fm.NoReplication, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.K() < 2 {
		t.Fatalf("k = %d, want ≥ 2 for 400 CLBs", res.Summary.K())
	}
	if !res.Summary.Feasible() {
		t.Fatalf("infeasible solution: %+v", res.Summary)
	}
	// Every part graph is valid and matches its summary row.
	for i, p := range res.Parts {
		if err := p.Graph.Validate(); err != nil {
			t.Fatalf("part %d invalid: %v", i, err)
		}
		if p.Graph.TotalArea() != res.Summary.Parts[i].CLBs {
			t.Fatalf("part %d area mismatch", i)
		}
		if p.Graph.NumTerminals() > p.Device.IOBs {
			t.Fatalf("part %d: %d terminals > %d IOBs of %s",
				i, p.Graph.NumTerminals(), p.Device.IOBs, p.Device.Name)
		}
		u := p.Device.Utilization(p.Graph.TotalArea())
		if u < p.Device.LowUtil-1e-9 || u > p.Device.HighUtil+1e-9 {
			t.Fatalf("part %d: utilization %.2f outside [%.2f,%.2f] on %s",
				i, u, p.Device.LowUtil, p.Device.HighUtil, p.Device.Name)
		}
	}
}

// Without replication, the parts exactly cover the source cells.
func TestPartitionNoReplicationConservesCells(t *testing.T) {
	g := testCircuit(t, 400, 3)
	res, err := Partition(g, opts(fm.NoReplication, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalCells() != g.NumCells() {
		t.Fatalf("cells = %d, want %d", res.Summary.TotalCells(), g.NumCells())
	}
	if res.Summary.ReplicatedCells() != 0 {
		t.Fatalf("replicas = %d, want 0", res.Summary.ReplicatedCells())
	}
	// Every source cell appears in exactly one part.
	seen := map[string]int{}
	for _, p := range res.Parts {
		for i := range p.Graph.Cells {
			seen[p.Graph.Cells[i].Name]++
		}
	}
	if len(seen) != g.NumCells() {
		t.Fatalf("distinct cells = %d, want %d", len(seen), g.NumCells())
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s appears %d times", name, n)
		}
	}
}

func TestPartitionWithReplicationAccounting(t *testing.T) {
	g := testCircuit(t, 400, 4)
	res, err := Partition(g, opts(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Summary.Feasible() {
		t.Fatal("infeasible")
	}
	// Instances = source cells + replicas.
	if res.Summary.TotalCells() != g.NumCells()+res.Summary.ReplicatedCells() {
		t.Fatalf("instances %d != %d source + %d replicas",
			res.Summary.TotalCells(), g.NumCells(), res.Summary.ReplicatedCells())
	}
	// Replication should stay moderate (paper: ≤ ~10%).
	if pct := res.Summary.ReplicatedPct(g.NumCells()); pct > 25 {
		t.Fatalf("replicated %.1f%% of cells, suspiciously high", pct)
	}
}

// The paper's Table VII claim, in aggregate: replication reduces the
// average IOB utilization at equal-or-better cost on most circuits.
func TestReplicationReducesInterconnectAggregate(t *testing.T) {
	var baseIOB, replIOB float64
	var baseCost, replCost float64
	for seed := int64(0); seed < 3; seed++ {
		g := testCircuit(t, 350, 20+seed)
		o := opts(fm.NoReplication, 6)
		o.Seed = seed
		base, err := Partition(g, o)
		if err != nil {
			t.Fatal(err)
		}
		o.Threshold = 0
		repl, err := Partition(g, o)
		if err != nil {
			t.Fatal(err)
		}
		baseIOB += base.Summary.AvgIOBUtil()
		replIOB += repl.Summary.AvgIOBUtil()
		baseCost += base.Summary.DeviceCost()
		replCost += repl.Summary.DeviceCost()
	}
	t.Logf("avg IOB util: base=%.3f repl=%.3f; cost base=%.0f repl=%.0f",
		baseIOB/3, replIOB/3, baseCost, replCost)
	if replIOB > baseIOB*1.05 {
		t.Fatalf("replication increased interconnect: %.3f vs %.3f", replIOB, baseIOB)
	}
	if replCost > baseCost*1.15 {
		t.Fatalf("replication exploded cost: %.0f vs %.0f", replCost, baseCost)
	}
}

func TestPartitionValidation(t *testing.T) {
	g := testCircuit(t, 30, 5)
	if _, err := Partition(g, Options{}); err == nil {
		t.Fatal("empty library should fail")
	}
	empty := &hypergraph.Graph{Name: "empty"}
	if _, err := Partition(empty, opts(fm.NoReplication, 1)); err == nil {
		t.Fatal("empty circuit should fail")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := testCircuit(t, 200, 6)
	a, err := Partition(g, opts(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, opts(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.DeviceCost() != b.Summary.DeviceCost() || a.Summary.K() != b.Summary.K() {
		t.Fatalf("nondeterministic: %v vs %v", a.Summary, b.Summary)
	}
}

func TestPartitionInfeasibleLibrary(t *testing.T) {
	g := testCircuit(t, 200, 7)
	// A library whose only device demands ≥ 90% utilization of 1000
	// CLBs can never host 200 CLBs, and carving can't help.
	lib, err := library.Custom(library.Device{
		Name: "BIG", CLBs: 1000, IOBs: 10, Price: 1, LowUtil: 0.9, HighUtil: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(g, Options{Library: lib, Solutions: 2, Seed: 1}); err == nil {
		t.Fatal("expected failure for impossible library")
	}
}

func TestCountReplicas(t *testing.T) {
	b := hypergraph.NewBuilder("r")
	pi := b.InputNet("pi")
	o1 := b.OutputNet("o1")
	o2 := b.OutputNet("o2")
	o3 := b.OutputNet("o3")
	// Replicas are tagged structurally, not by name: the "$r" suffixes
	// below are decorative, only the Replica flags count.
	b.AddCell(hypergraph.CellSpec{Name: "u1", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{o1}})
	b.AddCell(hypergraph.CellSpec{Name: "u1$r", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{o2}, Replica: true})
	b.AddCell(hypergraph.CellSpec{Name: "u1$r$r", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{o3}, Replica: true})
	g := b.MustBuild()
	if got := countReplicas(g); got != 2 {
		t.Fatalf("countReplicas = %d, want 2", got)
	}
}

func TestMoreSolutionsNeverWorse(t *testing.T) {
	g := testCircuit(t, 300, 8)
	few, err := Partition(g, opts(fm.NoReplication, 2))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Partition(g, opts(fm.NoReplication, 8))
	if err != nil {
		t.Fatal(err)
	}
	if few.Summary.Better(many.Summary) {
		t.Fatalf("more solutions produced a worse result: %v vs %v", many.Summary, few.Summary)
	}
}

func TestRemapDevicesPicksCheapest(t *testing.T) {
	lib := library.XC3000()
	g := testCircuit(t, 40, 11)
	big, _ := lib.ByName("XC3090")
	parts := []Part{{Graph: g, Device: big}}
	remapDevices(parts, lib)
	if parts[0].Device.Name != "XC3020" {
		t.Fatalf("remap chose %s, want XC3020 for %d CLBs", parts[0].Device.Name, g.TotalArea())
	}
	// Infeasible-anywhere parts keep their device.
	tiny, _ := library.Custom(library.Device{Name: "nano", CLBs: 2, IOBs: 1, Price: 1, HighUtil: 1})
	parts[0].Device = big
	remapDevices(parts, tiny)
	if parts[0].Device.Name != "XC3090" {
		t.Fatal("remap should keep the device when nothing fits")
	}
}

// The paper's introduction: with a homogeneous library the problem
// reduces to minimizing the number k of devices. The search must land
// near the area lower bound.
func TestHomogeneousLibraryMinimizesDeviceCount(t *testing.T) {
	g := testCircuit(t, 420, 12)
	dev := library.Device{Name: "uni", CLBs: 128, IOBs: 140, Price: 100, LowUtil: 0, HighUtil: 0.9}
	lib, err := library.Homogeneous(dev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{Library: lib, Threshold: fm.NoReplication, Solutions: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lower := (g.TotalArea() + dev.MaxCLBs() - 1) / dev.MaxCLBs()
	if res.Summary.K() < lower {
		t.Fatalf("k = %d below area lower bound %d", res.Summary.K(), lower)
	}
	if res.Summary.K() > lower+2 {
		t.Fatalf("k = %d far above lower bound %d", res.Summary.K(), lower)
	}
	// Cost is exactly k * price.
	if res.Summary.DeviceCost() != float64(res.Summary.K())*dev.Price {
		t.Fatal("homogeneous cost should be k x price")
	}
}

func TestPartitionXC4000Library(t *testing.T) {
	g := testCircuit(t, 600, 13)
	res, err := Partition(g, Options{Library: library.XC4000(), Threshold: 1, Solutions: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Summary.Feasible() {
		t.Fatalf("infeasible: %v", res.Summary)
	}
	for name := range res.Summary.DeviceCounts() {
		if name[:4] != "XC40" {
			t.Fatalf("unexpected device %s", name)
		}
	}
}

func TestCostSpreadReported(t *testing.T) {
	g := testCircuit(t, 400, 14)
	res, err := Partition(g, opts(1, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.CostMin <= 0 || res.CostMax < res.CostMin || res.CostMean < res.CostMin || res.CostMean > res.CostMax {
		t.Fatalf("cost spread inconsistent: min=%g mean=%g max=%g", res.CostMin, res.CostMean, res.CostMax)
	}
	if res.Summary.DeviceCost() != res.CostMin {
		t.Fatalf("best cost %g != min %g", res.Summary.DeviceCost(), res.CostMin)
	}
}
