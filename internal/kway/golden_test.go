package kway_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/span"
	"fpgapart/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden flat-path fixtures")

// goldenClock advances one millisecond per reading, so trace durations
// are deterministic without touching the wall clock.
func goldenClock() func() time.Time {
	var mu sync.Mutex
	t0 := time.Unix(1_700_000_000, 0)
	step := 0
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		step++
		return t0.Add(time.Duration(step) * time.Millisecond)
	}
}

// goldenRender flattens a result to canonical bytes: each part's
// device name plus the materialized subcircuit text.
func goldenRender(t *testing.T, res kway.Result) string {
	t.Helper()
	var sb strings.Builder
	for _, p := range res.Parts {
		sb.WriteString(p.Device.Name)
		sb.WriteByte('\n')
		if err := hypergraph.Write(&sb, p.Graph); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// goldenTrace serializes recorded events as JSONL after a stable sort
// on attempt (engine-level attempt −1 events last), which makes the
// stream independent of the interleaving between the worker and the
// reducing goroutine.
func goldenTrace(t *testing.T, rec *trace.Recorder) string {
	t.Helper()
	events := rec.Events()
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i].Attempt, events[j].Attempt
		if a == -1 {
			a = int(^uint(0) >> 1)
		}
		if b == -1 {
			b = int(^uint(0) >> 1)
		}
		return a < b
	})
	var buf bytes.Buffer
	j := trace.NewJSONL(&buf)
	for _, e := range events {
		j.Event(e)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run go test -run TestFlatPathGolden -update): %v", err)
	}
	if string(want) != got {
		t.Fatalf("%s drifted from the committed golden fixture.\nThe flat path (Options.Multilevel=false) must stay byte-identical to the seed engine;\nif the change is intentional, regenerate with -update.\n--- got (first 2000 bytes) ---\n%.2000s", name, got)
	}
}

func goldenRun(t *testing.T, opts kway.Options) (kway.Result, *trace.Recorder) {
	t.Helper()
	g, err := bench.Generate(bench.Params{Cells: 400, PrimaryIn: 12, PrimaryOut: 8, Seed: 3, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	opts.Library = library.XC3000()
	opts.Solutions = 6
	opts.Seed = 11
	opts.Workers = 1 // single worker: the trace stream is sequential
	opts.Trace = rec
	opts.Now = goldenClock()
	res, err := kway.Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// TestFlatPathGolden pins the classic engine byte-for-byte: a
// fixed-seed search with Options.Multilevel=false must reproduce the
// committed partition rendering AND the committed JSONL trace stream
// exactly. This is the regression gate proving the multilevel wiring
// left the default path untouched.
func TestFlatPathGolden(t *testing.T) {
	res, rec := goldenRun(t, kway.Options{})
	goldenCompare(t, "flat_golden_result.txt", goldenRender(t, res))
	goldenCompare(t, "flat_golden_trace.jsonl", goldenTrace(t, rec))
}

// TestMultilevelGateIsInert proves the gate itself cannot perturb the
// flat path: with Multilevel=true but MultilevelMinCells above the
// circuit size, the V-cycle never engages and both the partition and
// the trace stream stay byte-identical to the flat golden fixtures.
func TestMultilevelGateIsInert(t *testing.T) {
	res, rec := goldenRun(t, kway.Options{Multilevel: true, MultilevelMinCells: 1 << 20})
	goldenCompare(t, "flat_golden_result.txt", goldenRender(t, res))
	goldenCompare(t, "flat_golden_trace.jsonl", goldenTrace(t, rec))
}

// TestRefineWorkersGateIsInert proves RefineWorkers <= 1 routes through
// the classic serial FM engine untouched: both the unset (0) and the
// explicit serial (1) settings must reproduce the flat golden fixtures
// byte-for-byte — partition rendering AND JSONL trace stream. Only
// RefineWorkers >= 2 may switch to the parallel sub-round engine.
func TestRefineWorkersGateIsInert(t *testing.T) {
	for _, workers := range []int{0, 1} {
		res, rec := goldenRun(t, kway.Options{RefineWorkers: workers})
		goldenCompare(t, "flat_golden_result.txt", goldenRender(t, res))
		goldenCompare(t, "flat_golden_trace.jsonl", goldenTrace(t, rec))
	}
}

// TestSpansArmedIsInert proves the span instrumentation is a pure
// observer: a fixed-seed run with an armed span.Scope must reproduce
// the flat golden fixtures byte-for-byte — the same partition AND
// the same JSONL trace stream — while actually recording spans.
func TestSpansArmedIsInert(t *testing.T) {
	tracer := span.NewTracer(span.Options{Process: "kway-test", Now: goldenClock()})
	root := tracer.Root(span.DeriveTraceID("golden", 11, 6), 0).Start("job", -1)
	res, rec := goldenRun(t, kway.Options{Spans: root.Scope()})
	root.End()
	goldenCompare(t, "flat_golden_result.txt", goldenRender(t, res))
	goldenCompare(t, "flat_golden_trace.jsonl", goldenTrace(t, rec))
	spans, dropped := tracer.Collector().Trace(root.Scope().TraceID())
	if dropped != 0 {
		t.Fatalf("collector dropped %d spans", dropped)
	}
	names := make(map[string]int)
	for _, s := range spans {
		names[s.Name]++
	}
	for _, want := range []string{"job", "search", "attempt", "fm-pass", "fold"} {
		if names[want] == 0 {
			t.Fatalf("armed run recorded no %q span (have %v)", want, names)
		}
	}
}
