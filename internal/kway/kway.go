// Package kway implements the cost-driven multi-way partitioner: a
// reimplementation of the recursive bipartitioning algorithm of
// Kuznar–Brglez–Kozminski (DAC'93, reference [3] of the paper),
// extended with functional replication at every bipartitioning step
// (Kužnar et al., DAC'94). The objective is Eq. (1) — minimum total
// device cost over a heterogeneous FPGA library — with Eq. (2), the
// average IOB utilization, as the interconnect tie-breaker.
//
// The algorithm: if a (sub)circuit fits a device (utilization within
// [l_i, u_i], terminals ≤ t_i), implement it on the cheapest such
// device. Otherwise carve off a block sized for a randomly chosen host
// device using (replication-)FM with asymmetric area bounds, check its
// terminal constraint, materialize both sides as independent
// subcircuits (cut nets become terminals; replicas become real cells),
// and recurse on the remainder. Repeating this with randomized seeds,
// device choices and fill targets yields many feasible k-way
// solutions; the best under the lexicographic objective is returned.
package kway

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/library"
	"fpgapart/internal/metrics"
	"fpgapart/internal/replication"
	"fpgapart/internal/verify"
)

// Options configures the k-way search.
type Options struct {
	Library library.Library
	// Threshold is the replication potential threshold T;
	// fm.NoReplication reproduces the DAC'93 baseline ([3]).
	Threshold int
	// Solutions is the number of feasible k-way solutions to generate
	// (the paper reports runs generating 50). Default 50.
	Solutions int
	// Retries is the number of carve attempts (seed/device/fill
	// variations) before a solution attempt is abandoned. Default 20.
	Retries int
	// MaxPasses caps FM passes per carve (default: engine default).
	MaxPasses int
	// Verify enables in-loop invariant checking: every accepted carve
	// is checked against its subcircuit (state invariants, cell
	// coverage, single producer, IOB span accounting) and every
	// feasible k-way solution is run through the full partition
	// verifier before it competes for best. Violations abort the search
	// with a *VerificationError — they indicate a partitioner bug, not
	// an infeasible instance.
	Verify bool
	Seed   int64
}

// VerificationError reports an in-loop invariant violation detected by
// Options.Verify. It always wraps the underlying verifier error.
type VerificationError struct {
	// Stage identifies where the violation surfaced: "carve-state",
	// "carve", "solution" or "refine".
	Stage string
	Err   error
}

func (e *VerificationError) Error() string {
	return fmt.Sprintf("kway: verification failed at %s: %v", e.Stage, e.Err)
}

func (e *VerificationError) Unwrap() error { return e.Err }

func (o Options) withDefaults() Options {
	if o.Solutions == 0 {
		o.Solutions = 50
	}
	if o.Retries == 0 {
		o.Retries = 20
	}
	return o
}

// Part is one partition of the final solution.
type Part struct {
	Graph  *hypergraph.Graph
	Device library.Device
	// Replicas is the number of replica cell instances ("$r" copies)
	// materialized into this part.
	Replicas int
}

// Result is the best k-way solution found.
type Result struct {
	Parts       []Part
	Summary     metrics.Solution
	SourceCells int
	// Feasible counts complete feasible solutions generated; Failed
	// counts abandoned attempts.
	Feasible, Failed int
	// CostMin/CostMax/CostMean summarize the device cost across the
	// feasible solutions the randomized search generated — the spread
	// the best-of-N selection exploits.
	CostMin, CostMax, CostMean float64
}

// Verify checks the result against its source circuit with the full
// partition verifier: structural validity, device feasibility, cell
// coverage, single-producer replication and IOB span accounting.
func (r Result) Verify(src *hypergraph.Graph) error {
	parts := make([]verify.Part, len(r.Parts))
	for i, p := range r.Parts {
		parts[i] = verify.Part{Graph: p.Graph, Device: p.Device}
	}
	return verify.Partition(src, parts, r.Summary)
}

// Partition searches for the minimum-cost feasible k-way partition.
func Partition(g *hypergraph.Graph, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.Library.Validate(); err != nil {
		return Result{}, err
	}
	if g.NumCells() == 0 {
		return Result{}, errors.New("kway: empty circuit")
	}
	// Solution attempts are independent; run them on a bounded worker
	// pool and pick the winner in index order, which keeps the search
	// deterministic regardless of scheduling.
	type attempt struct {
		parts []Part
		err   error
	}
	results := make([]attempt, opts.Solutions)
	workers := runtime.GOMAXPROCS(0)
	if workers > opts.Solutions {
		workers = opts.Solutions
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch: the FM runner's gain buckets, the
			// cluster-growing buffers and the replication state are all
			// reused across carve attempts and solution attempts, so a
			// warm worker allocates only for the materialized subcircuits.
			var sc carveScratch
			for i := range next {
				seed := opts.Seed + int64(i)*104729
				parts, err := partitionOnce(g, opts, seed, &sc)
				results[i] = attempt{parts, err}
			}
		}()
	}
	for i := 0; i < opts.Solutions; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	var best Result
	haveBest := false
	feasible, failed := 0, 0
	costMin, costMax, costSum := 0.0, 0.0, 0.0
	var firstErr error
	for i := 0; i < opts.Solutions; i++ {
		if results[i].err != nil {
			// Verification failures are partitioner bugs, never ordinary
			// infeasibility: surface them instead of counting a failed
			// attempt.
			var verr *VerificationError
			if errors.As(results[i].err, &verr) {
				return Result{}, results[i].err
			}
			failed++
			if firstErr == nil {
				firstErr = results[i].err
			}
			continue
		}
		feasible++
		parts := results[i].parts
		remapDevices(parts, opts.Library)
		res := assemble(g, parts)
		if opts.Verify {
			if err := res.Verify(g); err != nil {
				return Result{}, &VerificationError{Stage: "solution", Err: err}
			}
		}
		cost := res.Summary.DeviceCost()
		if feasible == 1 || cost < costMin {
			costMin = cost
		}
		if cost > costMax {
			costMax = cost
		}
		costSum += cost
		if !haveBest || res.Summary.Better(best.Summary) {
			best = res
			haveBest = true
		}
	}
	if !haveBest {
		return Result{}, fmt.Errorf("kway: no feasible solution in %d attempts (first failure: %w)", opts.Solutions, firstErr)
	}
	best.Feasible = feasible
	best.Failed = failed
	best.SourceCells = g.NumCells()
	best.CostMin, best.CostMax, best.CostMean = costMin, costMax, costSum/float64(feasible)
	return best, nil
}

// remapDevices downgrades each part to the cheapest feasible device:
// a carve targeted at one device's utilization window may fit a
// cheaper part after FM settles.
func remapDevices(parts []Part, lib library.Library) {
	for i := range parts {
		area := parts[i].Graph.TotalArea()
		terms := parts[i].Graph.NumTerminals()
		if d, ok := lib.CheapestFit(area, terms); ok && d.Price < parts[i].Device.Price {
			parts[i].Device = d
		}
	}
}

func assemble(g *hypergraph.Graph, parts []Part) Result {
	res := Result{Parts: parts, SourceCells: g.NumCells()}
	for _, p := range parts {
		res.Summary.Parts = append(res.Summary.Parts, metrics.Part{
			Device:          p.Device,
			CLBs:            p.Graph.TotalArea(),
			Terminals:       p.Graph.NumTerminals(),
			Cells:           p.Graph.NumCells(),
			ReplicatedCells: p.Replicas,
		})
	}
	return res
}

// carveScratch bundles the per-worker reusable buffers: the FM engine
// (gain-bucket pool, order, locks), the cluster-assignment scratch, the
// assignment buffer and the most recent replication state (rebound via
// Reset when consecutive carve attempts target the same subcircuit).
type carveScratch struct {
	runner  fm.Runner
	cluster fm.ClusterScratch
	assign  []replication.Block
	st      *replication.State
}

// partitionOnce builds one complete k-way solution or fails.
func partitionOnce(g *hypergraph.Graph, opts Options, seed int64, sc *carveScratch) ([]Part, error) {
	r := rand.New(rand.NewSource(seed))
	queue := []*hypergraph.Graph{g}
	var parts []Part
	guard := 0
	for len(queue) > 0 {
		guard++
		if guard > 4*g.NumCells()+64 {
			return nil, fmt.Errorf("kway: recursion guard tripped (seed %d)", seed)
		}
		sub := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		if dev, ok := opts.Library.CheapestFit(sub.TotalArea(), sub.NumTerminals()); ok {
			parts = append(parts, Part{Graph: sub, Device: dev, Replicas: countReplicas(sub)})
			continue
		}
		carved, rest, dev, err := carve(sub, opts, r, sc)
		if err != nil {
			return nil, err
		}
		parts = append(parts, Part{Graph: carved, Device: dev, Replicas: countReplicas(carved)})
		queue = append(queue, rest)
	}
	return parts, nil
}

// carve splits off one device-sized block from sub. It tries several
// (device, fill, seed) combinations and returns the first whose carved
// block satisfies its host device's terminal constraint.
func carve(sub *hypergraph.Graph, opts Options, r *rand.Rand, sc *carveScratch) (carved, rest *hypergraph.Graph, dev library.Device, err error) {
	total := sub.TotalArea()
	devices := opts.Library.Devices
	var lastErr error
	maxFit := 1
	for _, d := range devices {
		if m := d.MaxCLBs(); m > maxFit && d.MinCLBs() < total {
			maxFit = m
		}
	}
	// want is the carve-size goal; terminal overflows scale it down
	// proportionally (a smaller carve inherits fewer terminals and a
	// smaller cut) and switch the carve objective from pure cut to
	// t_P0 (terminal pressure).
	want := maxFit
	termPressure := false
	termFails := 0
	for attempt := 0; attempt < opts.Retries; attempt++ {
		density := float64(sub.NumTerminals()) / float64(total)
		desired := int((0.85 + 0.15*r.Float64()) * float64(want))
		if desired >= total {
			desired = total - 1
		}
		if desired < 1 {
			desired = 1
		}
		d, ok := pickDevice(devices, total, desired, density, r, attempt)
		if !ok {
			lastErr = fmt.Errorf("kway: no device can carve %d CLBs from %d", desired, total)
			continue
		}
		target := desired
		if m := d.MaxCLBs(); target > m {
			target = m
		}
		if target >= total {
			target = total - 1
		}
		if target < d.MinCLBs() {
			lastErr = fmt.Errorf("kway: device %s cannot carve from %d CLBs", d.Name, total)
			continue
		}
		st, res, cerr := carveFM(sub, d, target, total, opts, r.Int63(), termPressure, sc)
		if cerr != nil {
			lastErr = cerr
			continue
		}
		_ = res
		if terms := st.Terminals(0); terms > d.IOBs {
			lastErr = fmt.Errorf("kway: carve for %s needs %d terminals > %d", d.Name, terms, d.IOBs)
			termFails++
			// First failure: switch the FM objective to t_P0 and retry
			// at the same size. Repeated failures under the terminal
			// objective: scale the goal to what this device's IOBs
			// admit at the observed terminal/CLB ratio, with headroom.
			if termPressure && termFails >= 3 {
				next := int(0.85 * float64(st.Area(0)) * float64(d.IOBs) / float64(terms))
				if next < 4 {
					next = 4
				}
				if next < want {
					want = next
					termFails = 0
				}
			}
			termPressure = true
			continue
		}
		if st.Area(0) < d.MinCLBs() || st.Area(0) > d.MaxCLBs() {
			lastErr = fmt.Errorf("kway: carve area %d outside device %s window", st.Area(0), d.Name)
			continue
		}
		c, rst, merr := materialize(sub, st)
		if merr != nil {
			lastErr = merr
			continue
		}
		if rst.TotalArea() >= total {
			lastErr = fmt.Errorf("kway: carve made no progress (replication blow-up)")
			continue
		}
		if opts.Verify {
			if verr := st.CheckInvariants(); verr != nil {
				return nil, nil, library.Device{}, &VerificationError{Stage: "carve-state", Err: verr}
			}
			if verr := verify.Split(sub, c, rst); verr != nil {
				return nil, nil, library.Device{}, &VerificationError{Stage: "carve", Err: verr}
			}
		}
		return c, rst, d, nil
	}
	return nil, nil, library.Device{}, fmt.Errorf("kway: all carve attempts failed: %w", lastErr)
}

// pickDevice selects a host device for a carve of roughly `desired`
// CLBs: candidates must have a utilization window admitting the
// desired size (with slack), with a bias toward the largest (cheapest
// per CLB). Early attempts also filter by terminal pressure — devices
// whose IOB count cannot plausibly cover a carve at the subcircuit's
// terminal density are excluded.
func pickDevice(devices []library.Device, totalArea, desired int, density float64, r *rand.Rand, attempt int) (library.Device, bool) {
	var cand []library.Device
	for _, d := range devices {
		if d.MinCLBs() >= totalArea || d.MinCLBs() > desired {
			continue
		}
		size := desired
		if m := d.MaxCLBs(); size > m {
			size = m
		}
		if attempt < 2 && float64(d.IOBs) < density*float64(size)*0.8 {
			continue
		}
		cand = append(cand, d)
	}
	if len(cand) == 0 {
		for _, d := range devices {
			if d.MinCLBs() < totalArea && d.MinCLBs() <= desired {
				cand = append(cand, d)
			}
		}
	}
	if len(cand) == 0 {
		return library.Device{}, false
	}
	// Geometric bias toward the tail (largest candidate).
	idx := len(cand) - 1
	for idx > 0 && r.Float64() < 0.35+0.1*float64(attempt%3) {
		idx--
	}
	return cand[idx], true
}

// carveFM runs (replication-)FM with asymmetric bounds: block 0 must
// land in the device's utilization window, block 1 holds the rest.
// With pinTerminals, the FM objective becomes t_P0 instead of the cut.
func carveFM(sub *hypergraph.Graph, d library.Device, target, total int, opts Options, seed int64, pinTerminals bool, sc *carveScratch) (*replication.State, fm.Result, error) {
	// The carve must stay near its target: without a floor, FM
	// minimizes the cut by collapsing block 0 to a handful of cells,
	// which wastes a device per carve.
	minCarve := d.MinCLBs()
	if floor := target * 4 / 5; floor > minCarve {
		minCarve = floor
	}
	if minCarve < 1 {
		minCarve = 1
	}
	cfg := fm.Config{
		MinArea:   [2]int{minCarve, 0},
		MaxArea:   [2]int{d.MaxCLBs(), total - minCarve},
		Threshold: opts.Threshold,
		MaxPasses: opts.MaxPasses,
		Seed:      seed,
	}
	sc.assign = sc.cluster.AssignInto(sc.assign, sub, seed, -1, target)
	var st *replication.State
	if sc.st != nil && sc.st.Graph() == sub {
		// Retry on the same subcircuit: rebind the existing state's
		// arrays to the fresh assignment instead of reallocating.
		if err := sc.st.ResetPinned(sc.assign, pinTerminals); err != nil {
			return nil, fm.Result{}, err
		}
		st = sc.st
	} else {
		var err error
		st, err = replication.NewStatePinned(sub, sc.assign, pinTerminals)
		if err != nil {
			return nil, fm.Result{}, err
		}
		sc.st = st
	}
	if st.Area(0) > cfg.MaxArea[0] || st.Area(0) < cfg.MinArea[0] {
		return nil, fm.Result{}, fmt.Errorf("kway: initial carve area %d outside [%d,%d]", st.Area(0), cfg.MinArea[0], cfg.MaxArea[0])
	}
	res, err := sc.runner.Run(st, cfg)
	if err != nil {
		return nil, fm.Result{}, err
	}
	return st, res, nil
}

// materialize splits the bipartitioned state into two standalone
// subcircuits.
func materialize(sub *hypergraph.Graph, st *replication.State) (*hypergraph.Graph, *hypergraph.Graph, error) {
	cut := func(n hypergraph.NetID) bool { return st.CutNet(n) }
	a, err := sub.Subcircuit(sub.Name+".0", st.InstanceSpecs(0), cut)
	if err != nil {
		return nil, nil, err
	}
	b, err := sub.Subcircuit(sub.Name+".1", st.InstanceSpecs(1), cut)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// countReplicas counts replica instances. Replicas are tagged
// structurally (hypergraph.Cell.Replica, set at materialization and
// inherited through nested subcircuit extraction), so this never parses
// the "$r" name suffixes — those remain purely for name uniqueness and
// the verifier's name-based source resolution.
func countReplicas(g *hypergraph.Graph) int {
	n := 0
	for i := range g.Cells {
		if g.Cells[i].Replica {
			n++
		}
	}
	return n
}
