// Package kway implements the cost-driven multi-way partitioner: a
// reimplementation of the recursive bipartitioning algorithm of
// Kuznar–Brglez–Kozminski (DAC'93, reference [3] of the paper),
// extended with functional replication at every bipartitioning step
// (Kužnar et al., DAC'94). The objective is Eq. (1) — minimum total
// device cost over a heterogeneous FPGA library — with Eq. (2), the
// average IOB utilization, as the interconnect tie-breaker.
//
// The algorithm: if a (sub)circuit fits a device (utilization within
// [l_i, u_i], terminals ≤ t_i), implement it on the cheapest such
// device. Otherwise carve off a block sized for a randomly chosen host
// device using (replication-)FM with asymmetric area bounds, check its
// terminal constraint, materialize both sides as independent
// subcircuits (cut nets become terminals; replicas become real cells),
// and recurse on the remainder. Repeating this with randomized seeds,
// device choices and fill targets yields many feasible k-way
// solutions; the best under the lexicographic objective is returned.
package kway

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/library"
	"fpgapart/internal/metrics"
	"fpgapart/internal/multilevel"
	"fpgapart/internal/objective"
	"fpgapart/internal/replication"
	"fpgapart/internal/search"
	"fpgapart/internal/span"
	"fpgapart/internal/topology"
	"fpgapart/internal/trace"
	"fpgapart/internal/verify"
)

// Options configures the k-way search.
type Options struct {
	Library library.Library
	// Threshold is the replication potential threshold T;
	// fm.NoReplication reproduces the DAC'93 baseline ([3]).
	Threshold int
	// Solutions is the number of feasible k-way solutions to generate
	// (the paper reports runs generating 50). Default 50.
	Solutions int
	// Retries is the number of carve attempts (seed/device/fill
	// variations) before a solution attempt is abandoned. Default 20.
	Retries int
	// MaxPasses caps FM passes per carve (default: engine default).
	MaxPasses int
	// RefineWorkers selects the refinement engine for every FM run the
	// search performs (carves, V-cycle levels, pair refinement):
	// values >= 2 use the deterministic parallel sub-round engine
	// (package parfm) with that many proposal workers; 0 or 1 keep the
	// classic serial engine, byte-identical to previous releases.
	// Either way fixed-seed results are independent of Workers and
	// GOMAXPROCS.
	RefineWorkers int
	// Multilevel routes large carve subproblems through the
	// internal/multilevel V-cycle: the carve's initial assignment is
	// produced by coarsen → partition → uncoarsen+refine instead of a
	// single cluster-grown seed, and the usual replication-FM run then
	// acts as the finest-level refinement pass. Off by default; the
	// flat path is byte-identical to the pre-multilevel engine (see
	// TestFlatPathGolden).
	Multilevel bool
	// MultilevelMinCells gates the V-cycle: subcircuits with fewer
	// cells use the flat cluster-grown assignment even when Multilevel
	// is on (coarsening tiny carve remainders costs more than it
	// saves). Default 512.
	MultilevelMinCells int
	// Workers bounds the solution search's worker pool (0 = one per
	// CPU). Results are byte-identical for a fixed seed regardless of
	// the value; it exists to bound resource use and to let tests pin
	// the trace-event interleaving.
	Workers int
	// Verify enables in-loop invariant checking: every accepted carve
	// is checked against its subcircuit (state invariants, cell
	// coverage, single producer, IOB span accounting) and every
	// feasible k-way solution is run through the full partition
	// verifier before it competes for best. Violations abort the search
	// with a *VerificationError — they indicate a partitioner bug, not
	// an infeasible instance.
	Verify bool
	// MaxStale stops the search early after this many consecutive
	// feasible solutions fail to improve the incumbent best (0 = run
	// all Solutions attempts). The stop is evaluated in deterministic
	// attempt-index order, so results stay schedule-independent.
	MaxStale int
	// Trace, when non-nil, receives structured engine events: one
	// KindFMPass per FM pass and one KindCarveAccepted/Rejected per
	// carve attempt (emitted concurrently by the search workers,
	// labeled with their attempt index), plus one KindSolution per
	// folded solution attempt (emitted in deterministic index order).
	// The sink must be safe for concurrent use.
	Trace trace.Sink
	// Inject, when non-nil, arms deterministic fault injection at the
	// engine's checkpoints: attempt starts (via internal/search), carve
	// tries and FM pass boundaries. Injected panics are contained per
	// attempt — the run degrades (Result.Degraded) instead of crashing.
	// Testing only; nil in production costs one predicted branch per
	// checkpoint.
	Inject *faultinject.Plan
	// Now supplies the wall clock for phase-timing trace events
	// (trace.KindPhase: search, fold, verify). Nil selects time.Now.
	// The clock is explicit so tests can fake it; clock readings feed
	// only the trace stream, never search decisions, so fixed-seed
	// results are byte-identical with or without phase tracing — and
	// no clock is read at all when Trace is nil.
	Now func() time.Time
	// Objective selects the partition cost model (internal/objective).
	// Nil — or any model whose Board() is nil, like
	// objective.TerminalCut — keeps the classic terminal-cut engine,
	// byte-identical to pre-objective releases (TestTopologyGateIsInert
	// pins this against the flat golden fixtures). A board-backed model
	// (objective.NewTopology) places part i on board slot i, weights
	// every carve's FM run by the marginal Steiner-span cost of each
	// net (replication.SetNetWeights), scores folded solutions by their
	// hop-weighted interconnect (Summary.TopoCost, a lexicographic
	// tie-breaker between device cost and IOB utilization), and
	// rejects solutions that exceed the board's slot count or any
	// link's routing capacity (verify.Routing).
	Objective objective.Model
	// Checkpoint, when non-nil, receives a SearchCheckpoint snapshot of
	// the index-ordered reduction every CheckpointEvery folded attempts
	// (and at the final fold). Snapshots arrive from the single-threaded
	// reducer in strict attempt order, so callers may persist them
	// without synchronization; emission never perturbs search decisions,
	// so fixed-seed results are byte-identical with or without it. A nil
	// hook costs one predicted branch per fold.
	Checkpoint func(SearchCheckpoint)
	// CheckpointEvery is the checkpoint cadence in folded attempts
	// (default 1 = every fold). Ignored when Checkpoint is nil.
	CheckpointEvery int
	// Resume, when non-nil, restarts the search from a persisted
	// checkpoint instead of attempt 0: the incumbent best attempt is
	// replayed deterministically (trace and fault injection suppressed
	// for the replay) and the remaining attempts fold byte-identically
	// to the uninterrupted run. The checkpoint's Seed and Solutions
	// must match the options.
	Resume *SearchCheckpoint
	// Spans, when armed, records the search as a causal span tree
	// under the caller's scope (internal/span): one "search" span over
	// the whole reduction, an "attempt" span per solution attempt
	// (minted by internal/search), "fold"/"verify" spans inside each
	// attempt, engine spans (fm-pass / parfm-pass / coarsen / level /
	// uncoarsen) beneath, and a "resume" span over a checkpoint
	// replay. Spans only read the injectable clock — fixed-seed
	// results are byte-identical armed or disarmed (the golden-diff
	// suite runs both), and the disarmed zero value costs one
	// predicted branch per site.
	Spans span.Scope
	Seed  int64
}

// SearchCheckpoint is a serializable snapshot of the k-way search's
// index-ordered reduction: the fold frontier, the incumbent best
// attempt index, and the fold-side aggregates. It deliberately stores
// no solution content — attempt i derives all randomness from
// Seed + i*SeedStride, so the incumbent is reconstructed by replaying
// its attempt, and a search resumed from a checkpoint folds to the
// byte-identical result of the uninterrupted run.
type SearchCheckpoint struct {
	// Seed and Solutions identify the search the checkpoint belongs
	// to; Resume rejects a mismatch.
	Seed      int64 `json:"seed"`
	Solutions int   `json:"solutions"`
	// Folded is the number of attempts the reduction covers;
	// dispatch resumes at this index.
	Folded int `json:"folded"`
	// BestAttempt is the attempt index of the incumbent best solution
	// (-1 while no attempt has been accepted).
	BestAttempt int `json:"best_attempt"`
	// Stale is the MaxStale counter (consecutive non-improving
	// accepted solutions).
	Stale int `json:"stale"`
	// Accepted/Failed/Panicked/Improved mirror search.Stats.
	Accepted int `json:"accepted"`
	Failed   int `json:"failed"`
	Panicked int `json:"panicked"`
	Improved int `json:"improved"`
	// CostMin/CostMax/CostSum carry the device-cost spread across the
	// accepted solutions (float64 JSON round-trips exactly, so the
	// resumed CostMean is byte-identical).
	CostMin float64 `json:"cost_min"`
	CostMax float64 `json:"cost_max"`
	CostSum float64 `json:"cost_sum"`
	// PanickedSeeds and FirstError preserve the diagnostic state of
	// the folded prefix (FirstError as a message string; a resumed
	// InfeasibleError wraps a reconstructed error with the same text).
	PanickedSeeds []int64 `json:"panicked_seeds,omitempty"`
	FirstError    string  `json:"first_error,omitempty"`
}

// VerificationError reports an in-loop invariant violation detected by
// Options.Verify. It always wraps the underlying verifier error.
type VerificationError struct {
	// Stage identifies where the violation surfaced: "carve-state",
	// "carve", "solution" or "refine".
	Stage string
	Err   error
}

func (e *VerificationError) Error() string {
	return fmt.Sprintf("kway: verification failed at %s: %v", e.Stage, e.Err)
}

func (e *VerificationError) Unwrap() error { return e.Err }

// InfeasibleError reports that the randomized search completed without
// generating a single feasible k-way solution — the "instance does not
// fit the library" failure mode, distinct from verification failures
// (partitioner bugs, *VerificationError) and from budget exhaustion
// (*search.ErrBudget). cmd/kpart maps it to its own exit code.
type InfeasibleError struct {
	// Attempts is the number of solution attempts that all failed.
	Attempts int
	// First preserves the first attempt's failure for diagnosis.
	First error
}

func (e *InfeasibleError) Error() string {
	if e.First == nil {
		return fmt.Sprintf("kway: no feasible solution in %d attempts", e.Attempts)
	}
	return fmt.Sprintf("kway: no feasible solution in %d attempts (first failure: %v)", e.Attempts, e.First)
}

func (e *InfeasibleError) Unwrap() error { return e.First }

// SeedStride separates consecutive attempts' seed streams; a large
// prime keeps the per-attempt generators uncorrelated. It is exported
// (and fixed forever) because the attempt→seed mapping
// Seed + i*SeedStride is the distribution contract: a coordinator that
// runs attempt i on a remote worker as a Solutions=1 search with seed
// Seed + i*SeedStride obtains the byte-identical solution the local
// search would fold at index i.
const SeedStride = 104729

// DefaultSolutions is the attempt budget when Options.Solutions is 0.
// Exported so a coordinator distributing attempts remotely runs the
// same defaulted search shape (and checkpoint identity) the local
// engine would.
const DefaultSolutions = 50

func (o Options) withDefaults() (Options, error) {
	if o.Solutions < 0 {
		return o, fmt.Errorf("kway: Solutions must be non-negative, got %d", o.Solutions)
	}
	if o.Retries < 0 {
		return o, fmt.Errorf("kway: Retries must be non-negative, got %d", o.Retries)
	}
	if o.MaxPasses < 0 {
		return o, fmt.Errorf("kway: MaxPasses must be non-negative, got %d", o.MaxPasses)
	}
	if o.MaxStale < 0 {
		return o, fmt.Errorf("kway: MaxStale must be non-negative, got %d", o.MaxStale)
	}
	if o.MultilevelMinCells < 0 {
		return o, fmt.Errorf("kway: MultilevelMinCells must be non-negative, got %d", o.MultilevelMinCells)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("kway: Workers must be non-negative, got %d", o.Workers)
	}
	if o.CheckpointEvery < 0 {
		return o, fmt.Errorf("kway: CheckpointEvery must be non-negative, got %d", o.CheckpointEvery)
	}
	if o.Solutions == 0 {
		o.Solutions = DefaultSolutions
	}
	if o.Retries == 0 {
		o.Retries = 20
	}
	if o.MultilevelMinCells == 0 {
		o.MultilevelMinCells = 512
	}
	return o, nil
}

// Part is one partition of the final solution.
type Part struct {
	Graph  *hypergraph.Graph
	Device library.Device
	// Replicas is the number of replica cell instances ("$r" copies)
	// materialized into this part.
	Replicas int
}

// Result is the best k-way solution found.
type Result struct {
	Parts       []Part
	Summary     metrics.Solution
	SourceCells int
	// Feasible counts complete feasible solutions generated; Failed
	// counts abandoned attempts.
	Feasible, Failed int
	// CostMin/CostMax/CostMean summarize the device cost across the
	// feasible solutions the randomized search generated — the spread
	// the best-of-N selection exploits.
	CostMin, CostMax, CostMean float64
	// Stopped records why the search ended before folding all Solutions
	// attempts: "" (ran to completion), StoppedStale (MaxStale
	// consecutive non-improving solutions) or StoppedBudget (context
	// cancellation/deadline with a feasible incumbent in hand).
	Stopped string
	// Degraded reports that at least one solution attempt died to a
	// contained panic: the result is still the deterministic best of
	// the surviving attempts, but the panicked indices contributed
	// nothing. Panicked counts them and PanickedSeeds records the seeds
	// that died, for offline reproduction of the crash.
	Degraded      bool
	Panicked      int
	PanickedSeeds []int64
	// Resumed reports that the search restarted from a checkpoint
	// (Options.Resume); ResumedFrom is the attempt index it continued
	// from (meaningful only when Resumed).
	Resumed     bool
	ResumedFrom int
}

// Result.Stopped values.
const (
	StoppedStale  = "stale"
	StoppedBudget = "budget"
)

// Verify checks the result against its source circuit with the full
// partition verifier: structural validity, device feasibility, cell
// coverage, single-producer replication and IOB span accounting.
func (r Result) Verify(src *hypergraph.Graph) error {
	parts := make([]verify.Part, len(r.Parts))
	for i, p := range r.Parts {
		parts[i] = verify.Part{Graph: p.Graph, Device: p.Device}
	}
	return verify.Partition(src, parts, r.Summary)
}

// Partition searches for the minimum-cost feasible k-way partition.
func Partition(g *hypergraph.Graph, opts Options) (Result, error) {
	return PartitionContext(context.Background(), g, opts)
}

// PartitionContext is Partition under a budget: the context's
// deadline/cancellation is observed only at deterministic checkpoints
// (carve boundaries inside each attempt), so a search that runs to
// completion is bit-identical whether or not a budget was armed. When
// the budget fires mid-search the longest contiguous prefix of
// completed attempts is folded: with a feasible incumbent the best so
// far is returned with Result.Stopped = StoppedBudget and a nil error;
// with none, the error wraps *search.ErrBudget.
func PartitionContext(ctx context.Context, g *hypergraph.Graph, opts Options) (Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if err := opts.Library.Validate(); err != nil {
		return Result{}, err
	}
	if g.NumCells() == 0 {
		return Result{}, errors.New("kway: empty circuit")
	}
	// Solution attempts are independent; the orchestrator runs them on
	// a bounded worker pool and folds them in index order, which keeps
	// the search deterministic regardless of scheduling. The fold-side
	// statistics below are maintained inside Observe — single-threaded,
	// index-ordered — so the float accumulation order is fixed too.
	var (
		feasible, failed          int
		costMin, costMax, costSum float64
		firstErr                  error
		panickedSeeds             []int64
	)
	// now is read only when a trace sink is armed; phase durations
	// feed the sink and nothing else, preserving the byte-identical
	// fixed-seed contract (see TestTelemetryDoesNotPerturbSearch).
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	emitPhase := func(sink trace.Sink, attempt int, phase string, start time.Time) {
		sink.Event(trace.Event{Kind: trace.KindPhase, Attempt: attempt, Phase: phase, Dur: now().Sub(start)})
	}
	// newAttempt builds one worker's attempt function against an options
	// value. The search workers run it with opts verbatim; the resume
	// path replays the checkpoint's incumbent attempt with trace and
	// fault injection suppressed (the replay reconstructs known state —
	// it is not new search work).
	newAttempt := func(o Options) search.AttemptFunc[Result] {
		// Per-worker scratch: the FM runner's gain buckets, the
		// cluster-growing buffers and the replication state are all
		// reused across carve attempts and solution attempts, so a
		// warm worker allocates only for the materialized subcircuits.
		var sc carveScratch
		return func(ctx context.Context, attempt int, seed int64) (Result, error) {
			// A panic can leave the reused scratch (gain buckets,
			// replication state) mid-update; drop it so the worker's
			// next attempt rebuilds from clean buffers, then let the
			// search layer's containment turn the panic into a
			// degraded attempt.
			defer func() {
				if v := recover(); v != nil {
					sc = carveScratch{}
					panic(v)
				}
			}()
			// The orchestrator hands each attempt its own span scope
			// through the context; engine spans (fm-pass, level, …)
			// nest under it via the options copy.
			if scope := span.FromContext(ctx); scope.Enabled() {
				o.Spans = scope
			}
			parts, tr, err := partitionOnce(ctx, g, o, attempt, seed, &sc)
			if err != nil {
				return Result{}, err
			}
			var foldStart time.Time
			if o.Trace != nil {
				foldStart = now()
			}
			foldSpan := o.Spans.Start("fold", attempt)
			remapDevices(parts, o.Library)
			res := assemble(g, parts)
			if tr != nil {
				res.Summary.TopoCost = tr.cost()
				res.Summary.HasTopo = true
				// Routing post-check: a solution whose routed net load
				// overflows a board link is infeasible on this board —
				// the attempt folds as failed and the search retries.
				graphs := make([]*hypergraph.Graph, len(parts))
				for i := range parts {
					graphs[i] = parts[i].Graph
				}
				if rerr := verify.Routing(tr.board, graphs); rerr != nil {
					foldSpan.End()
					return Result{}, fmt.Errorf("kway: board %s: %w", tr.board.Name, rerr)
				}
			}
			foldSpan.End()
			if o.Trace != nil {
				emitPhase(o.Trace, attempt, trace.PhaseFold, foldStart)
			}
			if o.Verify {
				var verifyStart time.Time
				if o.Trace != nil {
					verifyStart = now()
				}
				verifySpan := o.Spans.Start("verify", attempt)
				if verr := res.Verify(g); verr != nil {
					verifySpan.End()
					return Result{}, &VerificationError{Stage: "solution", Err: verr}
				}
				verifySpan.End()
				if o.Trace != nil {
					emitPhase(o.Trace, attempt, trace.PhaseVerify, verifyStart)
				}
			}
			return res, nil
		}
	}
	drv := search.Driver[Result]{
		NewAttempt: func() search.AttemptFunc[Result] { return newAttempt(opts) },
		Better:     func(a, b Result) bool { return a.Summary.Better(b.Summary) },
		// Verification failures are partitioner bugs, never ordinary
		// infeasibility: abort the search instead of counting a failed
		// attempt.
		Fatal: func(err error) bool {
			var verr *VerificationError
			return errors.As(err, &verr)
		},
		Observe: func(attempt int, sol Result, err error, improved bool) {
			if err != nil {
				failed++
				if firstErr == nil {
					firstErr = err
				}
				var perr *search.PanicError
				panicked := errors.As(err, &perr)
				if panicked {
					panickedSeeds = append(panickedSeeds, perr.Seed)
				}
				if opts.Trace != nil {
					opts.Trace.Event(trace.Event{Kind: trace.KindSolution, Attempt: attempt, Reason: err.Error(), Panic: panicked})
				}
				return
			}
			feasible++
			cost := sol.Summary.DeviceCost()
			if feasible == 1 || cost < costMin {
				costMin = cost
			}
			if cost > costMax {
				costMax = cost
			}
			costSum += cost
			if opts.Trace != nil {
				opts.Trace.Event(trace.Event{
					Kind: trace.KindSolution, Attempt: attempt,
					Feasible: true, Cost: cost, Parts: len(sol.Parts), Improved: improved,
					Topo: sol.Summary.TopoCost, HasTopo: sol.Summary.HasTopo,
				})
			}
		},
	}
	if cp := opts.Resume; cp != nil {
		if cp.Seed != opts.Seed || cp.Solutions != opts.Solutions {
			return Result{}, fmt.Errorf("kway: checkpoint is for seed %d / %d solutions, options say seed %d / %d solutions", cp.Seed, cp.Solutions, opts.Seed, opts.Solutions)
		}
		if cp.Folded < 0 || cp.Folded > opts.Solutions || cp.BestAttempt >= cp.Folded {
			return Result{}, fmt.Errorf("kway: corrupt checkpoint: folded %d, best attempt %d, %d solutions", cp.Folded, cp.BestAttempt, opts.Solutions)
		}
		feasible, failed = cp.Accepted, cp.Failed
		costMin, costMax, costSum = cp.CostMin, cp.CostMax, cp.CostSum
		if cp.FirstError != "" {
			firstErr = errors.New(cp.FirstError)
		}
		panickedSeeds = append(panickedSeeds, cp.PanickedSeeds...)
		rs := &search.ResumeState[Result]{
			Folded:      cp.Folded,
			BestAttempt: cp.BestAttempt,
			Stale:       cp.Stale,
			Stats: search.Stats{
				Folded:   cp.Folded,
				Accepted: cp.Accepted,
				Failed:   cp.Failed,
				Panicked: cp.Panicked,
				Improved: cp.Improved,
			},
		}
		if cp.BestAttempt >= 0 {
			// Reconstruct the incumbent by replaying its attempt:
			// attempt i derives all randomness from Seed + i*SeedStride,
			// so the replay is byte-identical to the solution the
			// interrupted run held.
			replayOpts := opts
			replayOpts.Trace = nil
			replayOpts.Inject = nil
			// The replay's spans land under a "resume" span in the same
			// trace as the original run (the caller derives the TraceID
			// from the checkpoint identity), so a crash-recovered job
			// reads as one timeline.
			rctx := ctx
			resumeSpan := opts.Spans.Start("resume", cp.BestAttempt)
			if opts.Spans.Enabled() {
				resumeSpan.Detail(fmt.Sprintf("folded=%d best_attempt=%d", cp.Folded, cp.BestAttempt))
				rctx = span.NewContext(ctx, resumeSpan.Scope())
			}
			sol, rerr := newAttempt(replayOpts)(rctx, cp.BestAttempt, opts.Seed+int64(cp.BestAttempt)*SeedStride)
			resumeSpan.End()
			if rerr != nil {
				return Result{}, fmt.Errorf("kway: checkpoint replay of attempt %d failed: %w", cp.BestAttempt, rerr)
			}
			rs.Best, rs.Found = sol, true
		}
		drv.Resume = rs
		if opts.Trace != nil {
			opts.Trace.Event(trace.Event{Kind: trace.KindResume, Attempt: cp.Folded, Folded: cp.Folded, BestAttempt: cp.BestAttempt})
		}
	}
	// The checkpoint wrapper runs inside the single-threaded reducer,
	// immediately after Observe for the same attempt, so the fold-side
	// aggregates it captures (costMin/costMax/costSum, firstErr,
	// panickedSeeds) are exactly current at each snapshot.
	var sCheckpoint func(search.Progress)
	if opts.Checkpoint != nil {
		every := opts.CheckpointEvery
		if every == 0 {
			every = 1
		}
		sCheckpoint = func(p search.Progress) {
			if p.Folded%every != 0 && p.Folded != opts.Solutions {
				return
			}
			cp := SearchCheckpoint{
				Seed: opts.Seed, Solutions: opts.Solutions,
				Folded: p.Folded, BestAttempt: p.BestAttempt, Stale: p.Stale,
				Accepted: p.Stats.Accepted, Failed: p.Stats.Failed,
				Panicked: p.Stats.Panicked, Improved: p.Stats.Improved,
				CostMin: costMin, CostMax: costMax, CostSum: costSum,
			}
			if firstErr != nil {
				cp.FirstError = firstErr.Error()
			}
			if len(panickedSeeds) > 0 {
				cp.PanickedSeeds = append([]int64(nil), panickedSeeds...)
			}
			if opts.Trace != nil {
				opts.Trace.Event(trace.Event{Kind: trace.KindCheckpoint, Attempt: p.Folded - 1, Folded: p.Folded, BestAttempt: p.BestAttempt})
			}
			opts.Checkpoint(cp)
		}
	}
	var searchStart time.Time
	if opts.Trace != nil {
		searchStart = now()
	}
	searchSpan := opts.Spans.Start("search", -1)
	out, serr := search.Run(ctx, search.Options{
		Attempts:   opts.Solutions,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
		SeedStride: SeedStride,
		MaxStale:   opts.MaxStale,
		Inject:     opts.Inject,
		Checkpoint: sCheckpoint,
		Spans:      searchSpan.Scope(),
	}, drv)
	searchSpan.End()
	if opts.Trace != nil {
		emitPhase(opts.Trace, -1, trace.PhaseSearch, searchStart)
	}
	var budget *search.ErrBudget
	if serr != nil {
		var ae *search.AttemptError
		switch {
		case errors.As(serr, &ae):
			// Fatal attempt (verification failure): surface the
			// underlying error itself, preserving the pre-orchestrator
			// contract that Partition returns the *VerificationError.
			return Result{}, ae.Err
		case errors.As(serr, &budget):
			// The folded prefix may still hold a feasible incumbent.
		default:
			return Result{}, serr
		}
	}
	if !out.Found {
		inf := &InfeasibleError{Attempts: out.Stats.Folded, First: firstErr}
		if budget != nil {
			return Result{}, fmt.Errorf("%v: %w", inf, budget)
		}
		return Result{}, inf
	}
	best := out.Best
	best.Feasible = feasible
	best.Failed = failed
	best.SourceCells = g.NumCells()
	best.CostMin, best.CostMax, best.CostMean = costMin, costMax, costSum/float64(feasible)
	best.Panicked = out.Stats.Panicked
	best.PanickedSeeds = panickedSeeds
	best.Degraded = out.Stats.Panicked > 0
	if opts.Resume != nil {
		best.Resumed = true
		best.ResumedFrom = opts.Resume.Folded
	}
	switch {
	case budget != nil:
		best.Stopped = StoppedBudget
	case out.Stats.StaleStop:
		best.Stopped = StoppedStale
	}
	return best, nil
}

// remapDevices downgrades each part to the cheapest feasible device:
// a carve targeted at one device's utilization window may fit a
// cheaper part after FM settles.
func remapDevices(parts []Part, lib library.Library) {
	for i := range parts {
		area := parts[i].Graph.TotalArea()
		terms := parts[i].Graph.NumTerminals()
		if d, ok := lib.CheapestFit(area, terms); ok && d.Price < parts[i].Device.Price {
			parts[i].Device = d
		}
	}
}

func assemble(g *hypergraph.Graph, parts []Part) Result {
	res := Result{Parts: parts, SourceCells: g.NumCells()}
	for _, p := range parts {
		res.Summary.Parts = append(res.Summary.Parts, metrics.Part{
			Device:          p.Device,
			CLBs:            p.Graph.TotalArea(),
			Terminals:       p.Graph.NumTerminals(),
			Cells:           p.Graph.NumCells(),
			ReplicatedCells: p.Replicas,
		})
	}
	return res
}

// carveScratch bundles the per-worker reusable buffers: the FM engine
// (gain-bucket pool, order, locks), the cluster-assignment scratch, the
// assignment buffer and the most recent replication state (rebound via
// Reset when consecutive carve attempts target the same subcircuit).
type carveScratch struct {
	runner  fm.Runner
	cluster fm.ClusterScratch
	assign  []replication.Block
	st      *replication.State
}

// slotTracker maintains the board-slot placement of one solution
// attempt under a board-backed objective: the recursive carve produces
// parts in index order and part i occupies board slot i, so spans
// accumulates, per source net name, the set of slots already hosting
// the net. During a carve of the remainder the carved block is headed
// for slot s0 = len(parts) and the rest is anchored (greedily) at the
// next slot s0+1; the model turns each net's placed span into a
// NetWeights triple for the FM run. nil tracker = flat terminal-cut
// engine.
type slotTracker struct {
	model     objective.Model
	board     *topology.Board
	spans     map[string]topology.SlotSet
	spanBuf   []topology.SlotSet
	weightBuf []replication.NetWeights
}

func newSlotTracker(m objective.Model) *slotTracker {
	if m == nil || m.Board() == nil {
		return nil
	}
	return &slotTracker{model: m, board: m.Board(), spans: make(map[string]topology.SlotSet)}
}

// place records a finished part occupying slot: every net of the part
// now touches it.
func (tr *slotTracker) place(g *hypergraph.Graph, slot int) {
	for ni := range g.Nets {
		name := g.Nets[ni].Name
		tr.spans[name] = tr.spans[name].Add(slot)
	}
}

// carveWeights derives the per-net weight table for a carve of sub
// between slot s0 (the carved block) and anchor s1 (the remainder).
func (tr *slotTracker) carveWeights(sub *hypergraph.Graph, s0, s1 int) []replication.NetWeights {
	tr.spanBuf = tr.spanBuf[:0]
	for ni := range sub.Nets {
		tr.spanBuf = append(tr.spanBuf, tr.spans[sub.Nets[ni].Name])
	}
	tr.weightBuf = tr.model.CarveWeights(tr.spanBuf, s0, s1, tr.weightBuf)
	return tr.weightBuf
}

// cost is the solution's hop-weighted interconnect: the model's span
// cost summed over every net (integer sum — order-independent, so the
// map iteration is safe).
func (tr *slotTracker) cost() int {
	total := 0
	for _, span := range tr.spans {
		total += tr.model.SpanCost(span)
	}
	return total
}

// partitionOnce builds one complete k-way solution or fails. The
// returned tracker is nil unless a board-backed objective is armed.
func partitionOnce(ctx context.Context, g *hypergraph.Graph, opts Options, attempt int, seed int64, sc *carveScratch) ([]Part, *slotTracker, error) {
	r := rand.New(rand.NewSource(seed))
	tr := newSlotTracker(opts.Objective)
	queue := []*hypergraph.Graph{g}
	var parts []Part
	guard := 0
	for len(queue) > 0 {
		// Deterministic cancellation checkpoint: the budget is observed
		// only between carves, never inside FM, so every completed
		// attempt is bit-identical with or without a deadline armed.
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		guard++
		if guard > 4*g.NumCells()+64 {
			return nil, nil, fmt.Errorf("kway: recursion guard tripped (seed %d)", seed)
		}
		sub := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		if dev, ok := opts.Library.CheapestFit(sub.TotalArea(), sub.NumTerminals()); ok {
			if tr != nil {
				if len(parts) >= tr.board.Slots {
					return nil, nil, fmt.Errorf("kway: solution needs more than board %s's %d slots (seed %d)", tr.board.Name, tr.board.Slots, seed)
				}
				tr.place(sub, len(parts))
			}
			parts = append(parts, Part{Graph: sub, Device: dev, Replicas: countReplicas(sub)})
			continue
		}
		carved, rest, dev, err := carve(ctx, sub, opts, attempt, seed, r, sc, tr, len(parts))
		if err != nil {
			return nil, nil, err
		}
		if tr != nil {
			tr.place(carved, len(parts))
		}
		parts = append(parts, Part{Graph: carved, Device: dev, Replicas: countReplicas(carved)})
		queue = append(queue, rest)
	}
	return parts, tr, nil
}

// scratchStats snapshots the replication-state counters when the
// scratch state is bound to sub (zero otherwise); deltas between two
// snapshots attribute the state's cumulative work to one carve try.
func scratchStats(sc *carveScratch, sub *hypergraph.Graph) replication.Stats {
	if sc.st != nil && sc.st.Graph() == sub {
		return sc.st.Stats()
	}
	return replication.Stats{}
}

// emitCarve reports one carve try to the trace sink. reason is a
// static code for rejections ("" for acceptance); res carries the FM
// work and delta the replication-state work of this try.
func emitCarve(opts *Options, attempt int, kind trace.Kind, reason string, dev string, area, terms int, res fm.Result, delta replication.Stats) {
	if opts.Trace == nil {
		return
	}
	opts.Trace.Event(trace.Event{
		Kind: kind, Attempt: attempt, Reason: reason, Device: dev,
		Area: area, Terminals: terms,
		Moves: res.Moves, Pass: res.Passes,
		Replicas: int(delta.Replicas), Rollbacks: int(delta.Rollbacks),
	})
}

// carve splits off one device-sized block from sub. It tries several
// (device, fill, seed) combinations and returns the first whose carved
// block satisfies its host device's terminal constraint. seed is the
// enclosing attempt's seed, used only to label injected faults. With a
// board tracker armed, the carved block is headed for slot s0 and the
// remainder anchored at s0+1; every FM run of the carve then minimizes
// the marginal hop-weighted span instead of the flat cut.
func carve(ctx context.Context, sub *hypergraph.Graph, opts Options, attempt int, seed int64, r *rand.Rand, sc *carveScratch, tr *slotTracker, s0 int) (carved, rest *hypergraph.Graph, dev library.Device, err error) {
	var weights []replication.NetWeights
	if tr != nil {
		// The remainder is non-empty (otherwise the subcircuit would
		// have fitted a device), so the solution needs at least one
		// slot beyond s0.
		if s0+1 >= tr.board.Slots {
			return nil, nil, library.Device{}, fmt.Errorf("kway: carve into slot %d needs a remainder slot but board %s has %d", s0, tr.board.Name, tr.board.Slots)
		}
		weights = tr.carveWeights(sub, s0, s0+1)
	}
	total := sub.TotalArea()
	devices := opts.Library.Devices
	var lastErr error
	maxFit := 1
	for _, d := range devices {
		if m := d.MaxCLBs(); m > maxFit && d.MinCLBs() < total {
			maxFit = m
		}
	}
	// want is the carve-size goal; terminal overflows scale it down
	// proportionally (a smaller carve inherits fewer terminals and a
	// smaller cut) and switch the carve objective from pure cut to
	// t_P0 (terminal pressure).
	want := maxFit
	termPressure := false
	termFails := 0
	for try := 0; try < opts.Retries; try++ {
		// Deterministic cancellation checkpoint, mirroring the one at
		// the carve-queue boundary.
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, library.Device{}, cerr
		}
		// Carve-site fault hook: an injected error abandons the whole
		// solution attempt (it folds as a failed attempt), an injected
		// panic is contained one level up, a delay just stalls the try.
		if opts.Inject != nil {
			if ferr := opts.Inject.At(faultinject.SiteCarve, attempt, try, seed); ferr != nil {
				return nil, nil, library.Device{}, ferr
			}
		}
		density := float64(sub.NumTerminals()) / float64(total)
		desired := int((0.85 + 0.15*r.Float64()) * float64(want))
		if desired >= total {
			desired = total - 1
		}
		if desired < 1 {
			desired = 1
		}
		d, ok := pickDevice(devices, total, desired, density, r, try)
		if !ok {
			lastErr = fmt.Errorf("kway: no device can carve %d CLBs from %d", desired, total)
			emitCarve(&opts, attempt, trace.KindCarveRejected, "no-device", "", desired, 0, fm.Result{}, replication.Stats{})
			continue
		}
		target := desired
		if m := d.MaxCLBs(); target > m {
			target = m
		}
		if target >= total {
			target = total - 1
		}
		if target < d.MinCLBs() {
			lastErr = fmt.Errorf("kway: device %s cannot carve from %d CLBs", d.Name, total)
			emitCarve(&opts, attempt, trace.KindCarveRejected, "device-window", d.Name, target, 0, fm.Result{}, replication.Stats{})
			continue
		}
		before := scratchStats(sc, sub)
		st, res, cerr := carveFM(sub, d, target, total, opts, attempt, r.Int63(), termPressure, sc, weights)
		if cerr != nil {
			lastErr = cerr
			emitCarve(&opts, attempt, trace.KindCarveRejected, "fm", d.Name, target, 0, fm.Result{}, scratchStats(sc, sub).Sub(before))
			continue
		}
		delta := st.Stats().Sub(before)
		if terms := st.Terminals(0); terms > d.IOBs {
			lastErr = fmt.Errorf("kway: carve for %s needs %d terminals > %d", d.Name, terms, d.IOBs)
			emitCarve(&opts, attempt, trace.KindCarveRejected, "terminals", d.Name, st.Area(0), terms, res, delta)
			termFails++
			// First failure: switch the FM objective to t_P0 and retry
			// at the same size. Repeated failures under the terminal
			// objective: scale the goal to what this device's IOBs
			// admit at the observed terminal/CLB ratio, with headroom.
			if termPressure && termFails >= 3 {
				next := int(0.85 * float64(st.Area(0)) * float64(d.IOBs) / float64(terms))
				if next < 4 {
					next = 4
				}
				if next < want {
					want = next
					termFails = 0
				}
			}
			termPressure = true
			continue
		}
		if st.Area(0) < d.MinCLBs() || st.Area(0) > d.MaxCLBs() {
			lastErr = fmt.Errorf("kway: carve area %d outside device %s window", st.Area(0), d.Name)
			emitCarve(&opts, attempt, trace.KindCarveRejected, "area-window", d.Name, st.Area(0), st.Terminals(0), res, delta)
			continue
		}
		c, rst, merr := materialize(sub, st)
		if merr != nil {
			lastErr = merr
			emitCarve(&opts, attempt, trace.KindCarveRejected, "materialize", d.Name, st.Area(0), st.Terminals(0), res, delta)
			continue
		}
		if rst.TotalArea() >= total {
			lastErr = fmt.Errorf("kway: carve made no progress (replication blow-up)")
			emitCarve(&opts, attempt, trace.KindCarveRejected, "no-progress", d.Name, st.Area(0), st.Terminals(0), res, delta)
			continue
		}
		if opts.Verify {
			if verr := st.CheckInvariants(); verr != nil {
				return nil, nil, library.Device{}, &VerificationError{Stage: "carve-state", Err: verr}
			}
			if verr := verify.Split(sub, c, rst); verr != nil {
				return nil, nil, library.Device{}, &VerificationError{Stage: "carve", Err: verr}
			}
		}
		emitCarve(&opts, attempt, trace.KindCarveAccepted, "", d.Name, st.Area(0), st.Terminals(0), res, delta)
		return c, rst, d, nil
	}
	return nil, nil, library.Device{}, fmt.Errorf("kway: all carve attempts failed: %w", lastErr)
}

// pickDevice selects a host device for a carve of roughly `desired`
// CLBs: candidates must have a utilization window admitting the
// desired size (with slack), with a bias toward the largest (cheapest
// per CLB). Early attempts also filter by terminal pressure — devices
// whose IOB count cannot plausibly cover a carve at the subcircuit's
// terminal density are excluded.
func pickDevice(devices []library.Device, totalArea, desired int, density float64, r *rand.Rand, attempt int) (library.Device, bool) {
	var cand []library.Device
	for _, d := range devices {
		if d.MinCLBs() >= totalArea || d.MinCLBs() > desired {
			continue
		}
		size := desired
		if m := d.MaxCLBs(); size > m {
			size = m
		}
		if attempt < 2 && float64(d.IOBs) < density*float64(size)*0.8 {
			continue
		}
		cand = append(cand, d)
	}
	if len(cand) == 0 {
		for _, d := range devices {
			if d.MinCLBs() < totalArea && d.MinCLBs() <= desired {
				cand = append(cand, d)
			}
		}
	}
	if len(cand) == 0 {
		return library.Device{}, false
	}
	// Geometric bias toward the tail (largest candidate).
	idx := len(cand) - 1
	for idx > 0 && r.Float64() < 0.35+0.1*float64(attempt%3) {
		idx--
	}
	return cand[idx], true
}

// carveFM runs (replication-)FM with asymmetric bounds: block 0 must
// land in the device's utilization window, block 1 holds the rest.
// With pinTerminals, the FM objective becomes t_P0 instead of the cut.
// A non-nil weights table switches the run to the weighted topology
// objective (replication.SetNetWeights).
func carveFM(sub *hypergraph.Graph, d library.Device, target, total int, opts Options, attempt int, seed int64, pinTerminals bool, sc *carveScratch, weights []replication.NetWeights) (*replication.State, fm.Result, error) {
	// The carve must stay near its target: without a floor, FM
	// minimizes the cut by collapsing block 0 to a handful of cells,
	// which wastes a device per carve.
	minCarve := d.MinCLBs()
	if floor := target * 4 / 5; floor > minCarve {
		minCarve = floor
	}
	if minCarve < 1 {
		minCarve = 1
	}
	cfg := fm.Config{
		MinArea:       [2]int{minCarve, 0},
		MaxArea:       [2]int{d.MaxCLBs(), total - minCarve},
		Threshold:     opts.Threshold,
		MaxPasses:     opts.MaxPasses,
		RefineWorkers: opts.RefineWorkers,
		Seed:          seed,
		Trace:         opts.Trace,
		TraceAttempt:  attempt,
		Spans:         opts.Spans,
		Inject:        opts.Inject,
	}
	// The initial assignment: flat cluster growth by default; behind
	// Options.Multilevel, large subcircuits go through the V-cycle
	// (coarsen → coarsest partition → uncoarsen+refine), whose output
	// lands inside the exact carve window. The replication-FM run
	// below is then the finest-level refinement pass. A V-cycle
	// failure (e.g. no feasible coarsest assignment) falls back to the
	// flat seed rather than rejecting the carve.
	flatSeed := true
	if opts.Multilevel && sub.NumCells() >= opts.MultilevelMinCells {
		mlCfg := multilevel.Config{
			TargetArea:    target,
			MinArea:       cfg.MinArea,
			MaxArea:       cfg.MaxArea,
			PinExternal:   pinTerminals,
			MaxPasses:     opts.MaxPasses,
			RefineWorkers: opts.RefineWorkers,
			Seed:          seed,
			Trace:         opts.Trace,
			TraceAttempt:  attempt,
			Spans:         opts.Spans,
			Now:           opts.Now,
		}
		if weights != nil {
			// Contraction preserves net names, so the V-cycle threads
			// the carve's weight table to every level by name.
			mlCfg.NetWeights = netWeightsByName(sub, weights)
		}
		ml, mlErr := multilevel.Run(sub, mlCfg)
		if mlErr == nil {
			sc.assign = append(sc.assign[:0], ml.Assign...)
			flatSeed = false
		}
	}
	if flatSeed {
		sc.assign = sc.cluster.AssignInto(sc.assign, sub, seed, -1, target)
	}
	var st *replication.State
	if sc.st != nil && sc.st.Graph() == sub {
		// Retry on the same subcircuit: rebind the existing state's
		// arrays to the fresh assignment instead of reallocating.
		if err := sc.st.ResetPinned(sc.assign, pinTerminals); err != nil {
			return nil, fm.Result{}, err
		}
		st = sc.st
	} else {
		var err error
		st, err = replication.NewStatePinned(sub, sc.assign, pinTerminals)
		if err != nil {
			return nil, fm.Result{}, err
		}
		sc.st = st
	}
	// Install (or clear) the carve's weighted objective. The flat path
	// never enters this branch — weights are always nil and the scratch
	// state never carries a table — so its byte-identity is structural.
	if weights != nil || st.Weighted() {
		if err := st.SetNetWeights(weights); err != nil {
			return nil, fm.Result{}, err
		}
	}
	if st.Area(0) > cfg.MaxArea[0] || st.Area(0) < cfg.MinArea[0] {
		return nil, fm.Result{}, fmt.Errorf("kway: initial carve area %d outside [%d,%d]", st.Area(0), cfg.MinArea[0], cfg.MaxArea[0])
	}
	res, err := sc.runner.Run(st, cfg)
	if err != nil {
		return nil, fm.Result{}, err
	}
	return st, res, nil
}

// netWeightsByName indexes a carve's weight table by net name, the
// form the multilevel V-cycle threads through its coarse levels.
func netWeightsByName(sub *hypergraph.Graph, w []replication.NetWeights) map[string]replication.NetWeights {
	m := make(map[string]replication.NetWeights, len(w))
	for ni := range w {
		m[sub.Nets[ni].Name] = w[ni]
	}
	return m
}

// materialize splits the bipartitioned state into two standalone
// subcircuits.
func materialize(sub *hypergraph.Graph, st *replication.State) (*hypergraph.Graph, *hypergraph.Graph, error) {
	cut := func(n hypergraph.NetID) bool { return st.CutNet(n) }
	a, err := sub.Subcircuit(sub.Name+".0", st.InstanceSpecs(0), cut)
	if err != nil {
		return nil, nil, err
	}
	b, err := sub.Subcircuit(sub.Name+".1", st.InstanceSpecs(1), cut)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// countReplicas counts replica instances. Replicas are tagged
// structurally (hypergraph.Cell.Replica, set at materialization and
// inherited through nested subcircuit extraction), so this never parses
// the "$r" name suffixes — those remain purely for name uniqueness and
// the verifier's name-based source resolution.
func countReplicas(g *hypergraph.Graph) int {
	n := 0
	for i := range g.Cells {
		if g.Cells[i].Replica {
			n++
		}
	}
	return n
}
