package kway_test

import (
	"errors"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
)

// FuzzKway drives the full k-way search over fuzzed (seed, threshold,
// size) triples with in-loop verification enabled. Two failure classes
// matter: a panic anywhere in the search, and a *VerificationError —
// a structurally inconsistent carve or solution that the randomized
// search accepted. Ordinary infeasibility (the fuzzed circuit simply
// does not fit the forced library) is skipped.
func FuzzKway(f *testing.F) {
	f.Add(int64(1), int8(1), uint8(40))
	f.Add(int64(7), int8(-1), uint8(12))
	f.Add(int64(42), int8(0), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, threshold int8, cells uint8) {
		n := 8 + int(cells)%57           // 8..64 cells
		th := (int(threshold)%5+5)%5 - 1 // -1..3; -1 is fm.NoReplication
		g, err := bench.Generate(bench.Params{
			Name: "fuzz", Cells: n, PrimaryIn: 5, PrimaryOut: 3,
			Clustering: float64(n%4) * 0.2, Seed: seed,
		})
		if err != nil {
			t.Skip() // degenerate generator parameters
		}
		// A small device forces multi-way splits on all but the tiniest
		// circuits.
		lib, err := library.Custom(library.Device{
			Name: "fuzz-dev", CLBs: 24, IOBs: 40, Price: 50, LowUtil: 0, HighUtil: 0.9,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := kway.Partition(g, kway.Options{
			Library: lib, Threshold: th, Solutions: 2, Seed: seed, Verify: true,
		})
		if err != nil {
			var verr *kway.VerificationError
			if errors.As(err, &verr) {
				t.Fatalf("cells=%d T=%d seed=%d: search accepted an inconsistent partition: %v", n, th, seed, err)
			}
			t.Skip() // infeasible under the forced library
		}
		if err := res.Verify(g); err != nil {
			t.Fatalf("cells=%d T=%d seed=%d: returned solution fails verification: %v", n, th, seed, err)
		}
	})
}
