package kway

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fpgapart/internal/fm"
	"fpgapart/internal/search"
	"fpgapart/internal/trace"
)

// cancelAfterSink cancels a context after n folded solution events.
// Solution events are emitted by the single-threaded index-ordered
// reduction, so the cancellation point is deterministic in fold order
// (though the set of attempts already in flight when it fires is not —
// exactly what the prefix contract has to absorb).
type cancelAfterSink struct {
	rec    trace.Recorder
	n      int
	cancel context.CancelFunc

	mu   sync.Mutex
	seen int
}

func (s *cancelAfterSink) Event(e trace.Event) {
	s.rec.Event(e)
	if e.Kind != trace.KindSolution {
		return
	}
	s.mu.Lock()
	s.seen++
	if s.seen == s.n {
		s.cancel()
	}
	s.mu.Unlock()
}

// TestCancellationDeterminism is the determinism-under-cancellation
// contract: cancel a search after N folded solutions, rerun uncancelled
// with the same seed, and the cancelled run's folded solutions must be
// a prefix of the uncancelled run's — same attempts, same costs, same
// Improved flags — with the returned best equal to the running best of
// that prefix.
func TestCancellationDeterminism(t *testing.T) {
	g := testCircuit(t, 350, 21)
	const solutions, cancelAfter = 8, 3

	var fullRec trace.Recorder
	o := opts(0, solutions)
	o.Trace = &fullRec
	full, err := Partition(g, o)
	if err != nil {
		t.Fatal(err)
	}
	fullSols := fullRec.Filter(trace.KindSolution)
	if len(fullSols) != solutions {
		t.Fatalf("uncancelled run folded %d solutions, want %d", len(fullSols), solutions)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelAfterSink{n: cancelAfter, cancel: cancel}
	oc := opts(0, solutions)
	oc.Trace = sink
	part, err := PartitionContext(ctx, g, oc)
	if err != nil {
		// Cancellation before any feasible solution must surface the
		// budget error; with these parameters every attempt is feasible,
		// so reaching here means the fold never started.
		t.Fatalf("cancelled run failed outright: %v", err)
	}
	got := sink.rec.Filter(trace.KindSolution)
	if len(got) < cancelAfter {
		t.Fatalf("folded %d solutions, want >= %d", len(got), cancelAfter)
	}
	// Folded solutions are a prefix of the uncancelled run.
	for i, e := range got {
		if e != fullSols[i] {
			t.Fatalf("solution event %d diverged under cancellation:\n got %+v\nwant %+v", i, e, fullSols[i])
		}
	}
	// The returned best is the running best of the folded prefix: the
	// last Improved event's cost.
	wantCost := -1.0
	for _, e := range got {
		if e.Improved {
			wantCost = e.Cost
		}
	}
	if part.Summary.DeviceCost() != wantCost {
		t.Fatalf("best cost %.1f, want running best %.1f of the %d-solution prefix",
			part.Summary.DeviceCost(), wantCost, len(got))
	}
	// A cancelled-short run must say so; a run that happened to fold
	// everything before observing the cancel is a complete run.
	if len(got) < solutions && part.Stopped != StoppedBudget {
		t.Fatalf("Stopped = %q after folding %d/%d, want %q", part.Stopped, len(got), solutions, StoppedBudget)
	}
	if len(got) == solutions && part.Summary.DeviceCost() != full.Summary.DeviceCost() {
		t.Fatal("fully-folded cancelled run differs from uncancelled run")
	}
}

// TestCancelBeforeStart: a context cancelled up front yields no folded
// attempts and a budget error that wraps the context cause.
func TestCancelBeforeStart(t *testing.T) {
	g := testCircuit(t, 200, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PartitionContext(ctx, g, opts(0, 3))
	if err == nil {
		t.Fatal("pre-cancelled search should fail")
	}
	var budget *search.ErrBudget
	if !errors.As(err, &budget) {
		t.Fatalf("error %v does not wrap *search.ErrBudget", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// TestConcurrentCancelRace cancels concurrently with workers mid-carve;
// under -race this exercises the cancellation paths for data races. Any
// outcome is acceptable as long as it is coherent: a verified result or
// a budget/infeasible error.
func TestConcurrentCancelRace(t *testing.T) {
	g := testCircuit(t, 300, 8)
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(i) * 2 * time.Millisecond)
		res, err := PartitionContext(ctx, g, opts(fm.NoReplication, 8))
		switch {
		case err == nil:
			if verr := res.Verify(g); verr != nil {
				t.Fatalf("iteration %d: accepted result fails verification: %v", i, verr)
			}
		default:
			var budget *search.ErrBudget
			var inf *InfeasibleError
			if !errors.As(err, &budget) && !errors.As(err, &inf) {
				t.Fatalf("iteration %d: unexpected error type: %v", i, err)
			}
		}
		cancel()
	}
}

// TestMaxStaleStopsEarly: MaxStale truncates the fold deterministically
// and records the reason on the result.
func TestMaxStaleStopsEarly(t *testing.T) {
	g := testCircuit(t, 300, 8)
	o := opts(fm.NoReplication, 12)
	o.MaxStale = 2
	var rec trace.Recorder
	o.Trace = &rec
	res, err := Partition(g, o)
	if err != nil {
		t.Fatal(err)
	}
	sols := rec.Filter(trace.KindSolution)
	if len(sols) == 12 && res.Stopped != "" {
		t.Fatalf("full fold but Stopped = %q", res.Stopped)
	}
	if len(sols) < 12 {
		if res.Stopped != StoppedStale {
			t.Fatalf("Stopped = %q after %d/12 solutions, want %q", res.Stopped, len(sols), StoppedStale)
		}
		// The stop rule: the last MaxStale accepted solutions did not improve.
		streak := 0
		for _, e := range sols {
			if !e.Feasible {
				continue
			}
			if e.Improved {
				streak = 0
			} else {
				streak++
			}
		}
		if streak < o.MaxStale {
			t.Fatalf("stale streak %d at stop, want >= %d", streak, o.MaxStale)
		}
	}
}

// TestNegativeOptionsRejected: withDefaults surfaces clear errors for
// negative knobs instead of feeding them to the worker loop.
func TestNegativeOptionsRejected(t *testing.T) {
	g := testCircuit(t, 40, 1)
	for _, tc := range []struct {
		name string
		mut  func(*Options)
	}{
		{"Solutions", func(o *Options) { o.Solutions = -1 }},
		{"Retries", func(o *Options) { o.Retries = -3 }},
		{"MaxPasses", func(o *Options) { o.MaxPasses = -2 }},
		{"MaxStale", func(o *Options) { o.MaxStale = -1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := opts(fm.NoReplication, 2)
			tc.mut(&o)
			if _, err := Partition(g, o); err == nil {
				t.Fatalf("negative %s accepted", tc.name)
			}
		})
	}
}
