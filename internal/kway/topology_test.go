package kway_test

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/objective"
	"fpgapart/internal/topology"
	"fpgapart/internal/trace"
	"fpgapart/internal/verify"
)

// TestTopologyGateIsInert proves the objective plumbing cannot perturb
// the flat path: an explicit TerminalCut model (equivalent to a nil
// model, which TestFlatPathGolden already pins) must reproduce the
// committed flat golden fixtures byte-for-byte — partition rendering
// AND JSONL trace stream. Only a board-backed model may change
// anything.
func TestTopologyGateIsInert(t *testing.T) {
	res, rec := goldenRun(t, kway.Options{Objective: objective.TerminalCut{}})
	goldenCompare(t, "flat_golden_result.txt", goldenRender(t, res))
	goldenCompare(t, "flat_golden_trace.jsonl", goldenTrace(t, rec))
	if res.Summary.HasTopo || res.Summary.TopoCost != 0 {
		t.Fatalf("terminal-cut run reported a topology score: %+v", res.Summary)
	}
}

// topoScore recomputes a solution's hop-weighted interconnect from
// scratch: part i occupies board slot i, each net's cost is the
// Steiner span of the slots it touches.
func topoScore(b *topology.Board, parts []kway.Part) int {
	spans := make(map[string]topology.SlotSet)
	for slot, p := range parts {
		for ni := range p.Graph.Nets {
			name := p.Graph.Nets[ni].Name
			spans[name] = spans[name].Add(slot)
		}
	}
	total := 0
	for _, span := range spans {
		total += b.SpanCost(span)
	}
	return total
}

// meshBoard is the shared board of the mesh tests; link capacities are
// generous because these tests compare hop cost, not congestion.
func meshBoard(t *testing.T) *topology.Board {
	t.Helper()
	b, err := topology.Mesh(2, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMeshTopologyBeatsTerminalCut is the acceptance gate of the
// topology objective: on a mesh board, the same fixed-seed search with
// the hop-weighted model must produce strictly lower hop-weighted
// interconnect than the terminal-cut engine's solution scored on the
// same board. It also cross-checks the engine's incrementally
// maintained TopoCost against a from-scratch recount and runs the
// routing post-check on the winning solution.
func TestMeshTopologyBeatsTerminalCut(t *testing.T) {
	g, err := bench.Generate(bench.Params{Cells: 1400, PrimaryIn: 40, PrimaryOut: 20, Seed: 3, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	board := meshBoard(t)
	base := kway.Options{Library: library.XC3000(), Solutions: 8, Seed: 11, Workers: 1}

	flatRes, err := kway.Partition(g, base)
	if err != nil {
		t.Fatal(err)
	}
	if flatRes.Summary.HasTopo {
		t.Fatal("flat run must not carry a topology score")
	}

	topoOpts := base
	topoOpts.Objective = objective.NewTopology(board)
	topoRes, err := kway.Partition(g, topoOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !topoRes.Summary.HasTopo {
		t.Fatal("board-backed run did not score topology")
	}
	if got, want := topoRes.Summary.TopoCost, topoScore(board, topoRes.Parts); got != want {
		t.Fatalf("engine TopoCost %d != from-scratch recount %d", got, want)
	}

	flatScore := topoScore(board, flatRes.Parts)
	if topoRes.Summary.TopoCost >= flatScore {
		t.Fatalf("topology objective did not beat terminal-cut: topo=%d flat=%d",
			topoRes.Summary.TopoCost, flatScore)
	}
	t.Logf("hop-weighted interconnect: topology=%d terminal-cut=%d (k=%d vs %d)",
		topoRes.Summary.TopoCost, flatScore, len(topoRes.Parts), len(flatRes.Parts))

	graphs := make([]*hypergraph.Graph, len(topoRes.Parts))
	for i, p := range topoRes.Parts {
		graphs[i] = p.Graph
	}
	if err := verify.Routing(board, graphs); err != nil {
		t.Fatalf("winning solution fails the routing post-check: %v", err)
	}
	if err := topoRes.Verify(g); err != nil {
		t.Fatal(err)
	}
}

// TestTopologySolutionEventsCarryTopo pins the trace contract: a
// board-backed run emits feasible KindSolution events with HasTopo set
// and the fold reports the incumbent's topology score in the summary.
func TestTopologySolutionEventsCarryTopo(t *testing.T) {
	res, rec := goldenRun(t, kway.Options{Objective: objective.NewTopology(meshBoard(t))})
	if !res.Summary.HasTopo {
		t.Fatal("no topology score on a board-backed run")
	}
	feasible := 0
	for _, e := range rec.Filter(trace.KindSolution) {
		if e.Feasible {
			feasible++
			if !e.HasTopo {
				t.Fatalf("feasible solution event without HasTopo: %+v", e)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible solution events recorded")
	}
}

// TestTopologyRejectsOverCapacityBoard: when every link is too narrow
// for the circuit's cut, the routing post-check must fail each attempt
// and the search must surface an error instead of an unroutable
// solution.
func TestTopologyRejectsOverCapacityBoard(t *testing.T) {
	g, err := bench.Generate(bench.Params{Cells: 400, PrimaryIn: 12, PrimaryOut: 8, Seed: 3, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	board, err := topology.Crossbar(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 1 per link: any bipartition of this circuit cuts far
	// more than one net, so every attempt fails routing.
	_, err = kway.Partition(g, kway.Options{
		Library: library.XC3000(), Solutions: 3, Seed: 11, Workers: 1,
		Objective: objective.NewTopology(board),
	})
	if err == nil {
		t.Fatal("unroutable board accepted")
	}
}
