package kway

import (
	"fmt"
	"strings"

	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

// Refine improves a finished k-way solution by re-bipartitioning pairs
// of parts that share cut nets (a Sanchis-style pairwise sweep over
// the multi-way partition). The pair's cells are re-extracted from the
// source circuit, the current split (including functional replication)
// is reconstructed as the starting state, and an FM run with both
// devices' utilization windows as bounds searches for a lower-terminal
// split. A change is accepted only when both parts stay feasible on
// their devices and the pair's total terminal demand drops.
//
// It returns the number of accepted pair improvements.
func Refine(g *hypergraph.Graph, res *Result, opts Options) (int, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return 0, err
	}
	if opts.Objective != nil && opts.Objective.Board() != nil {
		// The pairwise sweep optimizes the flat terminal objective and
		// re-materializes parts without re-checking board routing or
		// re-scoring the hop-weighted interconnect, so board-backed
		// runs skip it: the search's lexicographic fold already ranked
		// solutions by topology cost.
		return 0, nil
	}
	accepted := 0
	for pass := 0; pass < 2; pass++ {
		improvedThisPass := false
		for i := 0; i < len(res.Parts); i++ {
			for j := i + 1; j < len(res.Parts); j++ {
				ok, err := refinePair(g, res, i, j, opts)
				if err != nil {
					return accepted, err
				}
				if ok {
					accepted++
					improvedThisPass = true
				}
			}
		}
		if !improvedThisPass {
			break
		}
	}
	if accepted > 0 {
		// Rebuild the summary rows.
		*res = assembleFrom(g, res.Parts, res.SourceCells, res.Feasible, res.Failed)
		if opts.Verify {
			if err := res.Verify(g); err != nil {
				return accepted, &VerificationError{Stage: "refine", Err: err}
			}
		}
	}
	return accepted, nil
}

func assembleFrom(g *hypergraph.Graph, parts []Part, sourceCells, feasible, failed int) Result {
	r := assemble(g, parts)
	r.SourceCells = sourceCells
	r.Feasible = feasible
	r.Failed = failed
	return r
}

// refinePair attempts one pair; returns true when an improvement was
// applied.
func refinePair(g *hypergraph.Graph, res *Result, i, j int, opts Options) (bool, error) {
	pi, pj := &res.Parts[i], &res.Parts[j]
	if !sharesNet(pi.Graph, pj.Graph) {
		return false, nil
	}
	union, assign, ok, err := extractPair(g, pi.Graph, pj.Graph)
	if err != nil || !ok {
		return false, err
	}
	st, err := replication.NewState(union.sub, assign)
	if err != nil {
		return false, err
	}
	for _, rm := range union.replicas {
		if _, err := st.Apply(rm); err != nil {
			return false, fmt.Errorf("kway: refine: reconstructing replication: %w", err)
		}
	}
	before := st.Terminals(0) + st.Terminals(1)
	cfg := fm.Config{
		MinArea:       [2]int{pi.Device.MinCLBs(), pj.Device.MinCLBs()},
		MaxArea:       [2]int{pi.Device.MaxCLBs(), pj.Device.MaxCLBs()},
		Threshold:     opts.Threshold,
		MaxPasses:     opts.MaxPasses,
		RefineWorkers: opts.RefineWorkers,
		Seed:          opts.Seed + int64(i)*31 + int64(j),
	}
	for b := 0; b < 2; b++ {
		if a := st.Area(replication.Block(b)); a < cfg.MinArea[b] || a > cfg.MaxArea[b] {
			return false, nil // current split already outside a window; leave it
		}
	}
	if _, err := fm.Run(st, cfg); err != nil {
		return false, nil // bounds too tight for this engine run; keep as is
	}
	t0, t1 := st.Terminals(0), st.Terminals(1)
	if t0 > pi.Device.IOBs || t1 > pj.Device.IOBs || t0+t1 >= before {
		return false, nil
	}
	// Materialize the improved split back into the two parts.
	cut := func(n hypergraph.NetID) bool { return st.CutNet(n) }
	a, err := union.sub.Subcircuit(pi.Graph.Name, st.InstanceSpecs(0), cut)
	if err != nil {
		return false, nil
	}
	b, err := union.sub.Subcircuit(pj.Graph.Name, st.InstanceSpecs(1), cut)
	if err != nil {
		return false, nil
	}
	pi.Graph, pi.Replicas = a, countReplicas(a)
	pj.Graph, pj.Replicas = b, countReplicas(b)
	return true, nil
}

func sharesNet(a, b *hypergraph.Graph) bool {
	names := make(map[string]bool, a.NumNets())
	for ni := range a.Nets {
		names[a.Nets[ni].Name] = true
	}
	for ni := range b.Nets {
		if names[b.Nets[ni].Name] {
			return true
		}
	}
	return false
}

type pairExtraction struct {
	sub      *hypergraph.Graph
	replicas []replication.Move
}

// extractPair rebuilds the union of two parts from the source circuit.
// ok is false when a cell of the pair is split against a third part
// (its replication cannot be reconstructed locally).
func extractPair(g *hypergraph.Graph, a, b *hypergraph.Graph) (pairExtraction, []replication.Block, bool, error) {
	srcID := make(map[string]hypergraph.CellID, g.NumCells())
	for ci := range g.Cells {
		srcID[g.Cells[ci].Name] = hypergraph.CellID(ci)
	}
	// Which side drives which output? Match by output net name.
	type ownership struct {
		mask [2]uint32
	}
	own := make(map[hypergraph.CellID]*ownership)
	collect := func(part *hypergraph.Graph, side int) error {
		for ci := range part.Cells {
			base := baseNameOf(part.Cells[ci].Name)
			src, okc := srcID[base]
			if !okc {
				return fmt.Errorf("kway: refine: unknown cell %q", part.Cells[ci].Name)
			}
			o := own[src]
			if o == nil {
				o = &ownership{}
				own[src] = o
			}
			for _, outNet := range part.Cells[ci].Outputs {
				name := part.Nets[outNet].Name
				for pin, srcNet := range g.Cells[src].Outputs {
					if g.Nets[srcNet].Name == name {
						o.mask[side] |= 1 << uint(pin)
					}
				}
			}
		}
		return nil
	}
	if err := collect(a, 0); err != nil {
		return pairExtraction{}, nil, false, err
	}
	if err := collect(b, 1); err != nil {
		return pairExtraction{}, nil, false, err
	}
	// Every output of every member cell must be owned within the pair;
	// otherwise a copy lives in a third part.
	for src, o := range own {
		allMask := uint32(1)<<uint(len(g.Cells[src].Outputs)) - 1
		if o.mask[0]|o.mask[1] != allMask || o.mask[0]&o.mask[1] != 0 {
			return pairExtraction{}, nil, false, nil
		}
	}
	// Build the union subgraph: full cells; nets external when the
	// source marks them or a third party uses them.
	member := make(map[hypergraph.CellID]bool, len(own))
	specs := make([]hypergraph.InstanceSpec, 0, len(own))
	for ci := range g.Cells {
		src := hypergraph.CellID(ci)
		if _, okc := own[src]; okc {
			member[src] = true
			specs = append(specs, hypergraph.InstanceSpec{Cell: src})
		}
	}
	external := func(n hypergraph.NetID) bool {
		for _, cn := range g.Nets[n].Conns {
			if !member[cn.Cell] {
				return true
			}
		}
		return false
	}
	sub, err := g.Subcircuit(a.Name+"+"+b.Name, specs, external)
	if err != nil {
		return pairExtraction{}, nil, false, err
	}
	// Map union cells back to source ids (Subcircuit keeps names).
	assign := make([]replication.Block, sub.NumCells())
	var replicas []replication.Move
	for ci := range sub.Cells {
		src := srcID[sub.Cells[ci].Name]
		o := own[src]
		switch {
		case o.mask[1] == 0:
			assign[ci] = 0
		case o.mask[0] == 0:
			assign[ci] = 1
		default:
			// Split cell: home it where output 0 lives and replicate
			// the complement to the other side.
			if o.mask[0]&1 != 0 {
				assign[ci] = 0
				replicas = append(replicas, replication.Move{
					Cell: hypergraph.CellID(ci), Kind: replication.Replicate, Carry: o.mask[1],
				})
			} else {
				assign[ci] = 1
				replicas = append(replicas, replication.Move{
					Cell: hypergraph.CellID(ci), Kind: replication.Replicate, Carry: o.mask[0],
				})
			}
		}
	}
	return pairExtraction{sub: sub, replicas: replicas}, assign, true, nil
}

func baseNameOf(name string) string {
	for strings.HasSuffix(name, "$r") {
		name = strings.TrimSuffix(name, "$r")
	}
	return name
}
