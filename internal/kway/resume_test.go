package kway_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/trace"
)

// resumeBase is the shared search configuration of the resume suite:
// enough solutions for interesting mid-points, two workers to prove
// the resumed fold is schedule-independent.
func resumeBase(t *testing.T) (kway.Options, *bench.Params) {
	t.Helper()
	p := &bench.Params{Cells: 400, PrimaryIn: 12, PrimaryOut: 8, Seed: 3, Clustering: 0.5}
	return kway.Options{
		Library:   library.XC3000(),
		Solutions: 6,
		Seed:      11,
		Workers:   2,
	}, p
}

// reducerTrace serializes the deterministic reducer-emitted events
// (solutions, checkpoints, resumes) for attempts >= from as JSONL.
// Worker-emitted carve/FM events arrive in completion order and are
// excluded; the reducer stream is the deterministic trace contract a
// resumed run must reproduce.
func reducerTrace(t *testing.T, rec *trace.Recorder, from int) string {
	t.Helper()
	var buf bytes.Buffer
	j := trace.NewJSONL(&buf)
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindSolution, trace.KindCheckpoint:
			if e.Attempt >= from {
				j.Event(e)
			}
		}
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// runCheckpointed runs the search with an every-fold checkpoint hook,
// returning the result, every emitted checkpoint and the trace.
func runCheckpointed(t *testing.T, opts kway.Options, p *bench.Params) (kway.Result, []kway.SearchCheckpoint, *trace.Recorder) {
	t.Helper()
	g, err := bench.Generate(*p)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	var cps []kway.SearchCheckpoint
	opts.Trace = rec
	opts.CheckpointEvery = 1
	opts.Checkpoint = func(cp kway.SearchCheckpoint) { cps = append(cps, cp) }
	res, err := kway.Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, cps, rec
}

// checkSameResult compares everything about two results except the
// Resumed/ResumedFrom markers: the materialized partition bytes, the
// summary and the fold-side statistics.
func checkSameResult(t *testing.T, label string, full, resumed kway.Result) {
	t.Helper()
	if got, want := goldenRender(t, resumed), goldenRender(t, full); got != want {
		t.Fatalf("%s: resumed partition differs from uninterrupted run", label)
	}
	if !reflect.DeepEqual(resumed.Summary, full.Summary) {
		t.Errorf("%s: summary diverged:\nresumed %+v\nfull    %+v", label, resumed.Summary, full.Summary)
	}
	if resumed.Feasible != full.Feasible || resumed.Failed != full.Failed {
		t.Errorf("%s: feasible/failed %d/%d, want %d/%d", label, resumed.Feasible, resumed.Failed, full.Feasible, full.Failed)
	}
	if resumed.CostMin != full.CostMin || resumed.CostMax != full.CostMax || resumed.CostMean != full.CostMean {
		t.Errorf("%s: cost stats (%v,%v,%v) != (%v,%v,%v)", label,
			resumed.CostMin, resumed.CostMax, resumed.CostMean, full.CostMin, full.CostMax, full.CostMean)
	}
	if resumed.Stopped != full.Stopped {
		t.Errorf("%s: Stopped %q, want %q", label, resumed.Stopped, full.Stopped)
	}
}

// TestResumeGolden is the crash-recovery contract of the search layer:
// for each engine config (flat, multilevel V-cycle, parallel
// refinement), a fixed-seed search resumed from any mid-run checkpoint
// must fold to the byte-identical solution, statistics and reducer
// trace tail of the uninterrupted run.
func TestResumeGolden(t *testing.T) {
	configs := []struct {
		name string
		set  func(*kway.Options)
	}{
		{"flat", func(*kway.Options) {}},
		{"multilevel", func(o *kway.Options) { o.Multilevel = true; o.MultilevelMinCells = 64 }},
		{"parfm", func(o *kway.Options) { o.RefineWorkers = 2 }},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			base, p := resumeBase(t)
			cfg.set(&base)
			full, cps, fullRec := runCheckpointed(t, base, p)
			if len(cps) != base.Solutions {
				t.Fatalf("expected %d checkpoints, got %d", base.Solutions, len(cps))
			}
			for _, at := range []int{1, len(cps) / 2, len(cps) - 2} {
				cp := cps[at]
				opts := base
				opts.Resume = &cp
				resumed, resumedCps, resumedRec := runCheckpointed(t, opts, p)
				label := cfg.name + "/resume@" + string(rune('0'+cp.Folded))
				checkSameResult(t, label, full, resumed)
				if !resumed.Resumed || resumed.ResumedFrom != cp.Folded {
					t.Errorf("%s: Resumed/ResumedFrom = %v/%d, want true/%d", label, resumed.Resumed, resumed.ResumedFrom, cp.Folded)
				}
				// The resumed run's checkpoints must equal the suffix of
				// the uninterrupted run's — a chained crash/resume sees
				// the same snapshots.
				if want := cps[cp.Folded:]; !reflect.DeepEqual(resumedCps, want) {
					t.Errorf("%s: checkpoint suffix diverged:\nresumed %+v\nfull    %+v", label, resumedCps, want)
				}
				// Byte-identical reducer trace tail (solution and
				// checkpoint events for the re-run attempts).
				if got, want := reducerTrace(t, resumedRec, cp.Folded), reducerTrace(t, fullRec, cp.Folded); got != want {
					t.Errorf("%s: trace tail diverged:\nresumed:\n%s\nfull:\n%s", label, got, want)
				}
			}
		})
	}
}

// TestResumeFromFinalCheckpoint resumes from the checkpoint covering
// every attempt: no new attempt runs, the incumbent is replayed and
// the result still matches the uninterrupted run.
func TestResumeFromFinalCheckpoint(t *testing.T) {
	base, p := resumeBase(t)
	full, cps, _ := runCheckpointed(t, base, p)
	cp := cps[len(cps)-1]
	if cp.Folded != base.Solutions {
		t.Fatalf("final checkpoint folded %d, want %d", cp.Folded, base.Solutions)
	}
	opts := base
	opts.Resume = &cp
	resumed, _, _ := runCheckpointed(t, opts, p)
	checkSameResult(t, "final", full, resumed)
}

// TestResumeValidation rejects checkpoints that do not belong to the
// configured search.
func TestResumeValidation(t *testing.T) {
	base, p := resumeBase(t)
	g, err := bench.Generate(*p)
	if err != nil {
		t.Fatal(err)
	}
	_, cps, _ := runCheckpointed(t, base, p)
	cases := []struct {
		name string
		mut  func(*kway.SearchCheckpoint)
	}{
		{"seed-mismatch", func(cp *kway.SearchCheckpoint) { cp.Seed++ }},
		{"solutions-mismatch", func(cp *kway.SearchCheckpoint) { cp.Solutions++ }},
		{"folded-overflow", func(cp *kway.SearchCheckpoint) { cp.Folded = 99 }},
		{"best-outside-prefix", func(cp *kway.SearchCheckpoint) { cp.BestAttempt = cp.Folded }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := cps[2]
			tc.mut(&cp)
			opts := base
			opts.Resume = &cp
			if _, err := kway.Partition(g, opts); err == nil {
				t.Fatal("expected a resume validation error")
			}
		})
	}
}

// TestSearchCheckpointJSONRoundTrip pins the serialization the job
// store relies on: a checkpoint survives encode→decode bit-exactly
// (float64 fields included) and still resumes byte-identically.
func TestSearchCheckpointJSONRoundTrip(t *testing.T) {
	base, p := resumeBase(t)
	full, cps, _ := runCheckpointed(t, base, p)
	cp := cps[len(cps)/2]
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back kway.SearchCheckpoint
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, back) {
		t.Fatalf("checkpoint did not round-trip:\nbefore %+v\nafter  %+v", cp, back)
	}
	opts := base
	opts.Resume = &back
	resumed, _, _ := runCheckpointed(t, opts, p)
	checkSameResult(t, "json-round-trip", full, resumed)
}
