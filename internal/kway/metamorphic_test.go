package kway_test

import (
	"fmt"
	"runtime"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/metrics"
)

func metaCircuit(t testing.TB, seed int64) *hypergraph.Graph {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "meta", Cells: 350, PrimaryIn: 16, PrimaryOut: 10, DFFs: 40,
		Clustering: 0.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// relabel rebuilds the graph with fresh cell and net names but
// identical structure (same ids, kinds, dependency vectors, areas).
func relabel(t *testing.T, g *hypergraph.Graph) *hypergraph.Graph {
	t.Helper()
	b := hypergraph.NewBuilder(g.Name + "_relabeled")
	for ni := range g.Nets {
		name := fmt.Sprintf("zz%d", ni)
		switch g.Nets[ni].Ext {
		case hypergraph.ExtIn:
			b.InputNet(name)
		case hypergraph.ExtOut:
			b.OutputNet(name)
		default:
			b.Net(name)
		}
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		b.AddCell(hypergraph.CellSpec{
			Name:    fmt.Sprintf("qq%d", ci),
			Inputs:  c.Inputs,
			Outputs: c.Outputs,
			Dep:     c.Dep,
			Area:    c.Area,
			DFFs:    c.DFFs,
		})
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func summarySig(s metrics.Solution) string { return fmt.Sprintf("%#v", s) }

// TestRelabelInvariance: the search keys on graph structure, never on
// names, so renaming every cell and net must reproduce the summary
// byte for byte.
func TestRelabelInvariance(t *testing.T) {
	g := metaCircuit(t, 12)
	h := relabel(t, g)
	for _, threshold := range []int{fm.NoReplication, 1} {
		opts := kway.Options{Library: library.XC3000(), Threshold: threshold, Solutions: 4, Seed: 3, Verify: true}
		a, err := kway.Partition(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := kway.Partition(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		if sa, sb := summarySig(a.Summary), summarySig(b.Summary); sa != sb {
			t.Fatalf("T=%d: relabeling changed the solution:\n  original:  %s\n  relabeled: %s", threshold, sa, sb)
		}
	}
}

// TestRefineWorkersInvariance: the parallel sub-round refinement engine
// promises one partition per seed regardless of how many proposal
// workers evaluate gains. Every RefineWorkers >= 2 setting, crossed
// with every GOMAXPROCS, must produce a byte-identical solution
// summary. (RefineWorkers <= 1 is a different engine with its own
// golden gate — see TestRefineWorkersGateIsInert.)
func TestRefineWorkersInvariance(t *testing.T) {
	g := metaCircuit(t, 11)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	want := ""
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{2, 4, 8} {
			res, err := kway.Partition(g, kway.Options{
				Library: library.XC3000(), Threshold: 1, Solutions: 4, Seed: 5,
				RefineWorkers: workers, Verify: true,
			})
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d RefineWorkers=%d: %v", procs, workers, err)
			}
			sig := summarySig(res.Summary)
			if want == "" {
				want = sig
			} else if sig != want {
				t.Fatalf("GOMAXPROCS=%d RefineWorkers=%d produced a different solution:\n  first: %s\n  now:   %s", procs, workers, want, sig)
			}
		}
	}
}

// TestSummaryDeterministicAcrossGOMAXPROCS: the parallel search must be
// schedule-independent — identical Options give a byte-identical
// summary whether the worker pool runs on 1, 2 or 8 procs.
func TestSummaryDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g := metaCircuit(t, 11)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	want := ""
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		res, err := kway.Partition(g, kway.Options{
			Library: library.XC3000(), Threshold: 1, Solutions: 4, Seed: 5, Verify: true,
		})
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		sig := summarySig(res.Summary)
		if want == "" {
			want = sig
		} else if sig != want {
			t.Fatalf("GOMAXPROCS=%d produced a different solution:\n  first: %s\n  now:   %s", procs, want, sig)
		}
	}
}
