package kway_test

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/metrics"
)

func refined(t *testing.T, threshold int, seed int64) (int, metrics.Solution, metrics.Solution) {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "ref", Cells: 1100, PrimaryIn: 30, PrimaryOut: 20, DFFs: 150,
		Clustering: 0.55, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := kway.Options{Library: library.XC3000(), Threshold: threshold, Solutions: 4, Seed: seed}
	res, err := kway.Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Summary
	n, err := kway.Refine(g, &res, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The refined result must still verify completely.
	if err := res.Verify(g); err != nil {
		t.Fatalf("refined result fails verification: %v", err)
	}
	return n, before, res.Summary
}

func TestRefineKeepsFeasibilityAndNeverWorsens(t *testing.T) {
	improvedSomewhere := false
	for seed := int64(1); seed <= 4; seed++ {
		for _, th := range []int{fm.NoReplication, 1} {
			n, before, after := refined(t, th, seed)
			if !after.Feasible() {
				t.Fatalf("seed %d T=%d: refined solution infeasible", seed, th)
			}
			if after.AvgIOBUtil() > before.AvgIOBUtil()+1e-9 {
				t.Fatalf("seed %d T=%d: refine worsened IOB util %.3f -> %.3f",
					seed, th, before.AvgIOBUtil(), after.AvgIOBUtil())
			}
			if after.DeviceCost() != before.DeviceCost() {
				t.Fatalf("seed %d T=%d: refine changed devices", seed, th)
			}
			if n > 0 {
				improvedSomewhere = true
				if after.AvgIOBUtil() >= before.AvgIOBUtil() {
					t.Fatalf("seed %d T=%d: %d accepted refinements but no IOB gain", seed, th, n)
				}
			}
		}
	}
	if !improvedSomewhere {
		t.Log("note: no pair refinement fired on these seeds (acceptable, but unusual)")
	}
}
