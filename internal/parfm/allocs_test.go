package parfm

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/replication"
	"fpgapart/internal/telemetry"
	"fpgapart/internal/trace"
)

// A steady-state sub-round pass must not allocate once every buffer
// has hit its high-water mark: proposals live in a fixed per-cell
// array, the commit order is counting-sorted into a reused slice,
// dirty tracking is epoch-stamped (never cleared), and rollback walks
// the undo trail. The trace path must preserve this — both the
// aggregating sink and the telemetry bridge consume stack-built
// events. The graph stays below the engine's parallel cutoff so the
// measured loop is the allocation-relevant serial protocol (goroutine
// fan-out on big shards allocates per spawn, by design).
func TestParFMPassAllocs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		threshold int
		replOnly  bool
		sink      trace.Sink
	}{
		{"plain", NoReplication, false, nil},
		{"replication", 0, false, nil},
		{"replication-only", 0, true, nil},
		{"plain-traced", NoReplication, false, &trace.Agg{}},
		{"bridge-traced", NoReplication, false, telemetry.NewBridge(telemetry.NewRegistry())},
		{"bridge-replication", 0, false, telemetry.NewBridge(telemetry.NewRegistry())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := bench.Generate(bench.Params{
				Name: "allocs", Cells: 300, PrimaryIn: 10, PrimaryOut: 6,
				Seed: 5, Clustering: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			assign := make([]replication.Block, g.NumCells())
			acc, half := 0, g.TotalArea()/2
			for ci := range assign {
				if acc < half {
					acc += g.Cells[ci].Area
				} else {
					assign[ci] = 1
				}
			}
			st, err := replication.NewState(g, assign)
			if err != nil {
				t.Fatal(err)
			}
			lo := g.TotalArea() * 2 / 5
			hi := g.TotalArea() - lo
			var r Runner
			cfg := Config{
				MinArea: [2]int{lo, lo}, MaxArea: [2]int{hi, hi},
				Threshold: tc.threshold, Workers: 2, Trace: tc.sink,
			}
			if _, err := r.Run(st, cfg); err != nil {
				t.Fatal(err)
			}
			// The run above converged and warmed every buffer; replay
			// steady-state passes under the engine's in-run state mode.
			st.SetGainMaintenance(false)
			defer st.SetGainMaintenance(true)
			r.cfg = cfg.withDefaults()
			r.replOnly = tc.replOnly
			var res Result
			// Bracket each pass with the disarmed span scope exactly as
			// the round loop does: a zero Scope must cost a predicted
			// branch, never an allocation.
			if avg := testing.AllocsPerRun(5, func() {
				run := r.cfg.Spans.Start("parfm-pass", r.cfg.TraceAttempt)
				r.pass(&res)
				run.End()
			}); avg != 0 {
				t.Fatalf("steady-state pass allocates %v times", avg)
			}
		})
	}
}
