package parfm_test

import (
	"fmt"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/parfm"
	"fpgapart/internal/replication"
)

// BenchmarkRefine compares a full refinement run on a Rent's-rule
// instance across engines and worker counts, from the same fixed
// initial assignment each iteration. The parallel engine's result is
// identical for every worker count; the serial engine is the classic
// gain-bucket path.
func BenchmarkRefine(b *testing.B) {
	g, err := bench.GenerateRent(bench.RentParams{
		Name: "rent65", Cells: 20000, PrimaryIn: 100, PrimaryOut: 50,
		Rent: 0.65, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	assign := fm.RandomAssign(g, 1)
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	st, err := replication.NewState(g, assign)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		var r fm.Runner
		for i := 0; i < b.N; i++ {
			if err := st.Reset(assign); err != nil {
				b.Fatal(err)
			}
			if _, err := r.Run(st, fm.Config{MinArea: minA, MaxArea: maxA, Threshold: fm.NoReplication, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel-%dw", workers), func(b *testing.B) {
			var r parfm.Runner
			for i := 0; i < b.N; i++ {
				if err := st.Reset(assign); err != nil {
					b.Fatal(err)
				}
				if _, err := r.Run(st, parfm.Config{MinArea: minA, MaxArea: maxA, Threshold: parfm.NoReplication, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
