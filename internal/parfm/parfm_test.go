package parfm_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/faultinject"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/parfm"
	"fpgapart/internal/replication"
	"fpgapart/internal/trace"
)

func testGraph(t testing.TB, cells int, seed int64) *hypergraph.Graph {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "parfmtest", Cells: cells, PrimaryIn: 10, PrimaryOut: 6,
		Seed: seed, Clustering: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testCfg(g *hypergraph.Graph, threshold int, workers int) parfm.Config {
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	return parfm.Config{MinArea: minA, MaxArea: maxA, Threshold: threshold, Workers: workers}
}

// signature flattens the partition to a comparable string: per-cell
// ownership masks plus the cut.
func signature(st *replication.State) string {
	out := fmt.Sprintf("cut=%d;", st.CutSize())
	for ci := 0; ci < st.Graph().NumCells(); ci++ {
		c := hypergraph.CellID(ci)
		out += fmt.Sprintf("%x/%x,", st.OutputsIn(c, 0), st.OutputsIn(c, 1))
	}
	return out
}

// The tentpole invariant: for a fixed initial assignment the final
// partition is identical for every worker count. The 2600-cell graph
// clears the engine's serial-fallback cutoff so multi-worker runs
// really shard the proposal scans.
func TestWorkerCountInvariance(t *testing.T) {
	for _, threshold := range []int{parfm.NoReplication, 0} {
		t.Run(fmt.Sprintf("threshold=%d", threshold), func(t *testing.T) {
			g := testGraph(t, 2600, 4)
			assign := fm.RandomAssign(g, 7)
			want := ""
			wantRes := parfm.Result{}
			for _, workers := range []int{1, 2, 3, 5, 8} {
				st, err := replication.NewState(g, assign)
				if err != nil {
					t.Fatal(err)
				}
				res, err := parfm.Run(st, testCfg(g, threshold, workers))
				if err != nil {
					t.Fatal(err)
				}
				sig := signature(st)
				if want == "" {
					want, wantRes = sig, res
					continue
				}
				if sig != want {
					t.Fatalf("workers=%d: partition diverged from workers=1", workers)
				}
				if res != wantRes {
					t.Fatalf("workers=%d: result %+v, workers=1 got %+v", workers, res, wantRes)
				}
			}
		})
	}
}

// The partition must also be independent of GOMAXPROCS — scheduling
// interleavings must not leak into results.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g := testGraph(t, 2600, 9)
	assign := fm.RandomAssign(g, 3)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	want := ""
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		st, err := replication.NewState(g, assign)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := parfm.Run(st, testCfg(g, 0, 4)); err != nil {
			t.Fatal(err)
		}
		if sig := signature(st); want == "" {
			want = sig
		} else if sig != want {
			t.Fatalf("GOMAXPROCS=%d: partition diverged", procs)
		}
	}
}

// Repeating a run from the same initial assignment must reproduce the
// identical result, including the trace stream.
func TestRepeatableTrace(t *testing.T) {
	g := testGraph(t, 800, 2)
	assign := fm.RandomAssign(g, 5)
	run := func() (string, []trace.Event) {
		st, err := replication.NewState(g, assign)
		if err != nil {
			t.Fatal(err)
		}
		rec := &trace.Recorder{}
		cfg := testCfg(g, 0, 4)
		cfg.Trace = rec
		cfg.TraceAttempt = -1
		if _, err := parfm.Run(st, cfg); err != nil {
			t.Fatal(err)
		}
		return signature(st), rec.Events()
	}
	sig1, ev1 := run()
	sig2, ev2 := run()
	if sig1 != sig2 {
		t.Fatal("repeat run diverged")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("trace streams differ in length: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("trace event %d differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
}

// The run must leave a consistent state: invariants hold (gain
// maintenance is restored on return), areas sit inside the bounds, and
// the cut never regresses past the initial one.
func TestRunConsistency(t *testing.T) {
	for _, threshold := range []int{parfm.NoReplication, 0, 1} {
		for seed := int64(1); seed <= 3; seed++ {
			g := testGraph(t, 600, seed)
			st, err := replication.NewState(g, fm.RandomAssign(g, seed))
			if err != nil {
				t.Fatal(err)
			}
			before := st.CutSize()
			cfg := testCfg(g, threshold, 4)
			res, err := parfm.Run(st, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !st.GainMaintenance() {
				t.Fatal("gain maintenance left disabled after run")
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("threshold %d seed %d: %v", threshold, seed, err)
			}
			if res.Cut != st.CutSize() {
				t.Fatalf("result cut %d, state cut %d", res.Cut, st.CutSize())
			}
			if res.Cut > before {
				t.Fatalf("cut regressed: %d -> %d", before, res.Cut)
			}
			for b := replication.Block(0); b < 2; b++ {
				if a := st.Area(b); a < cfg.MinArea[b] || a > cfg.MaxArea[b] {
					t.Fatalf("block %d area %d outside [%d,%d]", b, a, cfg.MinArea[b], cfg.MaxArea[b])
				}
			}
			if res.Commits != res.Moves {
				t.Fatalf("commits %d != moves %d", res.Commits, res.Moves)
			}
			if res.Commits+res.Stale > res.Proposals {
				t.Fatalf("commits %d + stale %d exceed proposals %d", res.Commits, res.Stale, res.Proposals)
			}
		}
	}
}

// Sub-round trace events must be internally consistent and total up to
// the run result.
func TestSubRoundTraceAccounting(t *testing.T) {
	g := testGraph(t, 900, 6)
	st, err := replication.NewState(g, fm.RandomAssign(g, 11))
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	cfg := testCfg(g, 0, 3)
	cfg.Trace = rec
	cfg.TraceAttempt = 42
	res, err := parfm.Run(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds := rec.Filter(trace.KindParRound)
	if len(rounds) != res.Rounds {
		t.Fatalf("%d round events, result says %d", len(rounds), res.Rounds)
	}
	proposals, commits, stale := 0, 0, 0
	for _, e := range rounds {
		if e.Attempt != 42 {
			t.Fatalf("round event attempt %d, want 42", e.Attempt)
		}
		proposals += e.Proposals
		commits += e.Commits
		stale += e.Stale
		// Bucketed proposals persist across sub-rounds, so conservation
		// holds cumulatively rather than per sub-round.
		if commits+stale > proposals {
			t.Fatalf("through round event %+v: %d commits+stale exceed %d proposals", e, commits+stale, proposals)
		}
	}
	if proposals != res.Proposals || commits != res.Commits || stale != res.Stale {
		t.Fatalf("round totals (%d,%d,%d) != result (%d,%d,%d)",
			proposals, commits, stale, res.Proposals, res.Commits, res.Stale)
	}
	passes := rec.Filter(trace.KindFMPass)
	if len(passes) != res.Passes {
		t.Fatalf("%d pass events, result says %d", len(passes), res.Passes)
	}
	movesTotal := 0
	for _, e := range passes {
		movesTotal += e.Moves
	}
	if movesTotal != res.Moves {
		t.Fatalf("pass events total %d moves, result says %d", movesTotal, res.Moves)
	}
}

func TestRunValidation(t *testing.T) {
	g := testGraph(t, 60, 1)
	st, err := replication.NewState(g, fm.RandomAssign(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parfm.Run(st, parfm.Config{MaxArea: [2]int{0, 10}}); err == nil {
		t.Fatal("zero MaxArea accepted")
	}
	if _, err := parfm.Run(st, parfm.Config{MaxArea: [2]int{10, 10}, MinArea: [2]int{-1, 0}}); err == nil {
		t.Fatal("negative MinArea accepted")
	}
	if _, err := parfm.Run(st, parfm.Config{MaxArea: [2]int{1, 1}}); err == nil {
		t.Fatal("out-of-bounds initial area accepted")
	}
}

// A fault injected at a pass boundary must abort the run with the
// typed error and leave the state with gain maintenance restored —
// parity with the serial engine's injection site.
func TestFaultInjectionAtPass(t *testing.T) {
	g := testGraph(t, 400, 3)
	st, err := replication.NewState(g, fm.RandomAssign(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(g, parfm.NoReplication, 2)
	cfg.TraceAttempt = 0
	cfg.Inject = faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SitePass, Kind: faultinject.KindCancel,
		Attempt: faultinject.Any, Index: 1,
	})
	_, err = parfm.Run(st, cfg)
	var cancel *faultinject.CancelError
	if !errors.As(err, &cancel) {
		t.Fatalf("want CancelError, got %v", err)
	}
	if !st.GainMaintenance() {
		t.Fatal("gain maintenance left disabled after injected fault")
	}
}
