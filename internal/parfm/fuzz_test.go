package parfm_test

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/parfm"
	"fpgapart/internal/replication"
	"fpgapart/internal/trace"
)

// roundChecker verifies state conservation after every sub-round: the
// committer emits KindParRound synchronously between sub-rounds, so
// CheckInvariants here recomputes counts/cut/areas/terminals from
// scratch against the live mid-pass state (the cached-gain cross-check
// is inert while the engine has maintenance disabled) and the area
// bounds must hold after every commit batch.
type roundChecker struct {
	t    *testing.T
	st   *replication.State
	cfg  parfm.Config
	seen int
	// Running protocol totals: bucketed proposals persist across
	// sub-rounds, so conservation (commits+stale <= proposals) holds
	// cumulatively, not per sub-round.
	proposals int
	consumed  int
}

func (rc *roundChecker) Event(e trace.Event) {
	if e.Kind != trace.KindParRound {
		return
	}
	rc.seen++
	if rc.seen > 64 { // bound the O(n·pins) recheck work per fuzz case
		return
	}
	if err := rc.st.CheckInvariants(); err != nil {
		rc.t.Errorf("after sub-round %d of pass %d: %v", e.Round, e.Pass, err)
	}
	for b := replication.Block(0); b < 2; b++ {
		if a := rc.st.Area(b); a < rc.cfg.MinArea[b] || a > rc.cfg.MaxArea[b] {
			rc.t.Errorf("after sub-round %d: block %d area %d outside [%d,%d]",
				e.Round, b, a, rc.cfg.MinArea[b], rc.cfg.MaxArea[b])
		}
		if rc.st.Terminals(b) < 0 {
			rc.t.Errorf("after sub-round %d: negative terminal count", e.Round)
		}
	}
	rc.proposals += e.Proposals
	rc.consumed += e.Commits + e.Stale
	if rc.consumed > rc.proposals {
		rc.t.Errorf("through sub-round %d of pass %d: %d commits+stale exceed %d proposals",
			e.Round, e.Pass, rc.consumed, rc.proposals)
	}
}

// FuzzProposeCommit drives the propose/commit protocol over random
// instances and configurations, checking conservation of the area,
// cut and terminal invariants after each sub-round, and that the final
// partition is independent of the worker count.
func FuzzProposeCommit(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(0), uint8(2), uint8(10))
	f.Add(int64(7), uint8(120), uint8(1), uint8(4), uint8(15))
	f.Add(int64(13), uint8(200), uint8(2), uint8(8), uint8(5))
	f.Add(int64(99), uint8(25), uint8(3), uint8(3), uint8(20))
	f.Fuzz(func(t *testing.T, seed int64, cells, thrSel, workers, slack uint8) {
		n := 20 + int(cells)%230
		g, err := bench.Generate(bench.Params{
			Name: "fuzz", Cells: n, PrimaryIn: 6, PrimaryOut: 4,
			Seed: seed, Clustering: 0.5,
		})
		if err != nil {
			t.Skip()
		}
		threshold := []int{parfm.NoReplication, 0, 1, 2}[int(thrSel)%4]
		w := 1 + int(workers)%8
		eps := 0.05 + float64(slack%25)/100
		minA, maxA := fm.Balance(g.TotalArea(), eps)
		assign := fm.RandomAssign(g, seed)
		st, err := replication.NewState(g, assign)
		if err != nil {
			t.Fatal(err)
		}
		cfg := parfm.Config{MinArea: minA, MaxArea: maxA, Threshold: threshold, Workers: w}
		if st.Area(0) < minA[0] || st.Area(0) > maxA[0] || st.Area(1) < minA[1] || st.Area(1) > maxA[1] {
			t.Skip() // initial assignment outside the fuzzed bounds
		}
		rc := &roundChecker{t: t, st: st, cfg: cfg}
		cfg.Trace = rc
		res, err := parfm.Run(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("final state: %v", err)
		}
		if res.Cut != st.CutSize() {
			t.Fatalf("result cut %d, state %d", res.Cut, st.CutSize())
		}
		// Worker-count invariance on the same instance.
		st1, err := replication.NewState(g, assign)
		if err != nil {
			t.Fatal(err)
		}
		cfg1 := cfg
		cfg1.Trace = nil
		cfg1.Workers = 1
		res1, err := parfm.Run(st1, cfg1)
		if err != nil {
			t.Fatal(err)
		}
		if res1 != res {
			t.Fatalf("workers=1 result %+v, workers=%d %+v", res1, w, res)
		}
		if signature(st1) != signature(st) {
			t.Fatalf("partition depends on worker count (%d vs 1)", w)
		}
	})
}
