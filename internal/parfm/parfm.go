// Package parfm is a deterministic shared-memory parallel variant of
// the FM refinement engine in package fm. It splits each FM pass into
// synchronous sub-rounds:
//
//  1. Propose: workers scan disjoint shards of the candidate cells
//     and, for each, evaluate its best move (single move, functional
//     replication, unreplication — the same move universe as the
//     serial engine) against the state frozen at the start of the
//     sub-round, using per-worker replication.Evaluator instances so
//     gain evaluation never touches shared scratch. The first
//     sub-round of a pass proposes every cell; later sub-rounds only
//     re-propose the cells invalidated by the previous sub-round's
//     commits.
//  2. Commit: a single committer keeps the proposals in gain-indexed
//     LIFO bucket lists and applies up to roundCommits of them — each
//     the highest-gain area-feasible proposal at its moment — against
//     the live state. A commit rejects as stale every bucketed
//     proposal whose cell's neighborhood it touched: the cell is
//     unlinked on the spot and re-proposed with a fresh gain next
//     sub-round, so every proposal still in a bucket is exact for the
//     live state. Area-infeasible proposals simply wait (their gain
//     stays exact) for a later sub-round to free area.
//
// Because a proposal is a pure per-cell function of the state it was
// evaluated against and the committer — the only mutator of the
// bucket structure — runs single-threaded in an order fixed by
// (gain, recency), the final partition is identical for every worker
// count and independent of GOMAXPROCS; see DESIGN.md §14 for the full
// determinism argument. Each pass keeps the serial engine's
// best-prefix semantics — the state rolls back to the lowest-cut
// prefix of the commit sequence — and ends when a sub-round commits
// nothing or when stallMoves consecutive commits fail to improve on
// the best cut.
//
// The engine disables the state's incremental gain maintenance
// (replication.State.SetGainMaintenance) for the duration of a run:
// gains are recomputed from scratch during proposal scans — sharded
// across workers — instead of being patched on every neighbor after
// every commit, which is the dominant serial cost of a classic FM
// commit. Best-prefix rollback uses the undo trail (cheap per-move
// sweeps over the usually-short tail past the best prefix) rather
// than the serial engine's full-state checkpoint per improving move —
// the combination is what makes the engine several times faster than
// the serial path per attempt even with a single worker.
package parfm

import (
	"fmt"
	"sync"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
	"fpgapart/internal/span"
	"fpgapart/internal/trace"
)

// NoReplication disables replication moves when used as the Threshold
// (same convention as package fm).
const NoReplication = -1

// Config controls one parallel bipartitioning run. The fields mirror
// fm.Config; Workers sets the proposal parallelism.
type Config struct {
	// MinArea/MaxArea bound the active cell area of each block.
	MinArea [2]int
	MaxArea [2]int
	// Threshold is the replication potential threshold T (Eq. 6);
	// NoReplication (-1) disables replication entirely.
	Threshold int
	// MaxPasses caps FM passes per phase (default 24).
	MaxPasses int
	// Workers is the number of proposal workers (default 1). The final
	// partition is identical for every value; only wall-clock time
	// changes.
	Workers int
	// Seed is accepted for interface symmetry with fm.Config. The
	// sub-round protocol is seed-free — proposals are exhaustive per
	// cell and the commit order is (gain, cell index) — so the seed
	// does not influence the result; diversity across attempts comes
	// from the seeded initial assignment.
	Seed int64
	// Trace, when non-nil, receives one KindParRound event per
	// sub-round and one KindFMPass event per completed pass.
	Trace trace.Sink
	// TraceAttempt labels emitted events; use -1 for standalone runs.
	TraceAttempt int
	// Spans, when armed, times every pass as a "parfm-pass" span in
	// the enclosing attempt's trace. The disarmed zero value costs a
	// single predicted branch per pass (see TestParFMPassAllocs).
	Spans span.Scope
	// Inject, when non-nil, consults the fault plan at every pass
	// boundary, mirroring the serial engine's injection site.
	Inject *faultinject.Plan
}

func (c Config) withDefaults() Config {
	if c.MaxPasses == 0 {
		c.MaxPasses = 24
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// Result summarizes a run.
type Result struct {
	Cut    int // final cut size
	Passes int
	Moves  int // committed moves across all passes (before rollbacks)
	// Rounds/Proposals/Commits/Stale total the sub-round protocol
	// work: proposals evaluated, proposals applied, and proposals
	// rejected because an earlier commit of the same sub-round
	// invalidated their gain.
	Rounds    int
	Proposals int
	Commits   int
	Stale     int
}

// proposal is one cell's best candidate move, computed against the
// state frozen at the start of a sub-round. The cell is implicit (one
// slot per cell); gain is exact for the frozen state.
type proposal struct {
	carry uint32
	gain  int32
	kind  replication.MoveKind
	to    replication.Block
	valid bool
}

// Runner executes parallel FM runs, reusing per-graph buffers across
// runs. A zero Runner is ready to use; a Runner is not safe for
// concurrent use (its workers are internal to each call).
type Runner struct {
	st    *replication.State
	cfg   Config
	evals []*replication.Evaluator

	locked []bool
	prop   []proposal
	// dirty[c] holds the sub-round epoch that last invalidated cell
	// c's proposal; epochs increase monotonically across the whole
	// run, so the array never needs clearing.
	dirty     []int32
	dirtyList []int32 // cells invalidated during the current sub-round
	redo      []int32 // cells to re-propose in the current sub-round
	// The committer keeps pending proposals in gain-indexed bucket
	// lists — the deterministic analogue of the serial engine's LIFO
	// gain buckets. Every bucketed proposal's gain is exact for the
	// live state: a commit that touches a bucketed cell's neighborhood
	// unlinks it on the spot (stale rejection) and queues it for
	// re-proposal next sub-round. Only the committer mutates the
	// structure, so its evolution is a pure function of the commit
	// sequence. bhead is indexed by gain+gainOf; bnext/bprev are the
	// intrusive links (-1 = none); inb marks membership.
	bhead  []int32
	bnext  []int32
	bprev  []int32
	inb    []bool
	curMax int // highest possibly-non-empty bucket index
	epoch  int32

	gainOf   int // gain offset = max |gain| (st.MaxMoveGain)
	replOnly bool
	passSeq  int
}

// Run is a one-shot convenience around Runner.Run.
func Run(st *replication.State, cfg Config) (Result, error) {
	var r Runner
	return r.Run(st, cfg)
}

// bind points the runner at a state, reallocating per-cell buffers
// only when the graph (or worker count) changed.
func (r *Runner) bind(st *replication.State, workers int) {
	n := st.Graph().NumCells()
	if r.st == nil || r.st.Graph() != st.Graph() || len(r.locked) != n || r.gainOf != st.MaxMoveGain() {
		r.gainOf = st.MaxMoveGain()
		r.locked = make([]bool, n)
		r.prop = make([]proposal, n)
		r.dirty = make([]int32, n)
		r.bhead = make([]int32, 2*r.gainOf+2)
		r.bnext = make([]int32, n)
		r.bprev = make([]int32, n)
		r.inb = make([]bool, n)
		r.dirtyList = r.dirtyList[:0]
		r.redo = r.redo[:0]
		r.epoch = 0
	}
	if len(r.evals) < workers {
		r.evals = append(r.evals, make([]*replication.Evaluator, workers-len(r.evals))...)
	}
	for w := 0; w < workers; w++ {
		if r.evals[w] == nil {
			r.evals[w] = replication.NewEvaluator(st)
		} else {
			r.evals[w].Bind(st)
		}
	}
	r.st = st
}

// Run improves the bipartition state in place and returns the result.
// Mirrors fm.Runner.Run: plain passes to convergence, then — when
// replication is enabled — alternating plain and replication-only
// phases until a full round is dry.
func (r *Runner) Run(st *replication.State, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxArea[0] <= 0 || cfg.MaxArea[1] <= 0 {
		return Result{}, fmt.Errorf("parfm: MaxArea must be positive, got %v", cfg.MaxArea)
	}
	if cfg.MinArea[0] < 0 || cfg.MinArea[1] < 0 {
		return Result{}, fmt.Errorf("parfm: MinArea must be non-negative, got %v", cfg.MinArea)
	}
	for b := 0; b < 2; b++ {
		if st.Area(replication.Block(b)) > cfg.MaxArea[b] || st.Area(replication.Block(b)) < cfg.MinArea[b] {
			return Result{}, fmt.Errorf("parfm: initial area %d of block %d outside [%d,%d]",
				st.Area(replication.Block(b)), b, cfg.MinArea[b], cfg.MaxArea[b])
		}
	}
	r.bind(st, cfg.Workers)
	r.cfg = cfg
	r.passSeq = 0

	// Gains are evaluated from scratch against frozen sub-round states,
	// so the per-commit incremental neighbor maintenance is pure
	// overhead; turn it off for the run and restore it (which recomputes
	// the cached gains) so any later consumer of the state — the serial
	// engine, flow refinement, invariant checks — sees valid values.
	st.SetGainMaintenance(false)
	defer st.SetGainMaintenance(true)

	res := Result{Cut: st.CutSize()}
	var injectErr error
	phase := func(threshold int, replOnly bool) bool {
		r.cfg.Threshold = threshold
		r.replOnly = replOnly
		any := false
		for pass := 0; pass < cfg.MaxPasses; pass++ {
			if cfg.Inject != nil {
				if err := cfg.Inject.At(faultinject.SitePass, cfg.TraceAttempt, res.Passes, cfg.Seed); err != nil {
					injectErr = err
					return any
				}
			}
			run := cfg.Spans.Start("parfm-pass", cfg.TraceAttempt)
			improved, moves := r.pass(&res)
			run.End()
			res.Passes++
			res.Moves += moves
			if !improved {
				break
			}
			any = true
		}
		return any
	}
	if cfg.Threshold == NoReplication {
		phase(NoReplication, false)
	} else {
		for round := 0; round < cfg.MaxPasses; round++ {
			p := phase(NoReplication, false)
			rr := phase(cfg.Threshold, true)
			if (!p && !rr) || injectErr != nil {
				break
			}
		}
	}
	res.Cut = st.CutSize()
	return res, injectErr
}

// pass runs one FM pass as a sequence of synchronous sub-rounds and
// reports whether the cut improved, plus the number of committed
// moves. Best-prefix rollback is per pass, via the undo trail.
func (r *Runner) pass(res *Result) (bool, int) {
	st := r.st
	for i := range r.locked {
		r.locked[i] = false
	}
	// Best-prefix tracking minimizes the state's objective: plain cut
	// size, or the weighted topology cost when a net weight table is
	// installed (identical on unweighted states).
	startCut := st.Objective()
	bestCut := startCut
	bestTok := st.Mark()
	moves := 0
	sinceBest := 0
	stallCap := stallMoves(len(r.prop))
	full := true // first sub-round proposes every cell
	stalled := false
	for round := 0; !stalled; round++ {
		r.epoch++
		proposed := 0
		if full {
			r.proposeAll()
			proposed = len(r.prop)
			for i := range r.bhead {
				r.bhead[i] = -1
			}
			// Clear membership from the previous pass too: cells still
			// bucketed when a pass ends keep stale links, and unlinking
			// through those would corrupt the rebuilt lists.
			for i := range r.inb {
				r.inb[i] = false
			}
			r.curMax = 0
			for ci := range r.prop {
				if r.prop[ci].valid {
					r.push(int32(ci))
				}
			}
			full = false
		} else {
			r.proposeList(r.redo)
			proposed = len(r.redo)
			for _, ci := range r.redo {
				if r.prop[ci].valid && !r.locked[ci] {
					r.push(ci)
				}
			}
		}
		commits, stale := 0, 0
		r.dirtyList = r.dirtyList[:0]
		for commits < roundCommits {
			ci, ok := r.popBest()
			if !ok {
				break
			}
			c := hypergraph.CellID(ci)
			m := r.move(c)
			if _, err := st.Apply(m); err != nil {
				panic(fmt.Sprintf("parfm: applying %v: %v", m, err))
			}
			moves++
			commits++
			r.unlink(ci)
			r.locked[ci] = true
			r.prop[ci].valid = false
			for _, t := range st.LastTouched() {
				if !r.locked[t] && r.dirty[t] != r.epoch {
					r.dirty[t] = r.epoch
					r.dirtyList = append(r.dirtyList, int32(t))
					if r.inb[t] {
						// The commit touched this cell's neighborhood,
						// so its bucketed gain may be stale: reject the
						// proposal and re-propose next sub-round.
						r.unlink(int32(t))
						stale++
					}
				}
			}
			if cut := st.Objective(); cut < bestCut {
				bestCut = cut
				bestTok = st.Mark()
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= stallCap {
					stalled = true
					break
				}
			}
		}
		res.Rounds++
		res.Proposals += proposed
		res.Commits += commits
		res.Stale += stale
		if r.cfg.Trace != nil {
			r.cfg.Trace.Event(trace.Event{
				Kind:      trace.KindParRound,
				Attempt:   r.cfg.TraceAttempt,
				Pass:      r.passSeq + 1,
				Round:     round,
				Proposals: proposed,
				Commits:   commits,
				Stale:     stale,
			})
		}
		if commits == 0 {
			// Nothing feasible remains: no cell was committed, so no
			// proposal went stale and the buckets hold only
			// area-infeasible entries. The state is unchanged, the next
			// sub-round would see exactly the same picture — the pass
			// is done.
			break
		}
		r.redo, r.dirtyList = r.dirtyList, r.redo
	}
	if err := st.Undo(bestTok); err != nil {
		panic(fmt.Sprintf("parfm: rollback: %v", err))
	}
	r.passSeq++
	if r.cfg.Trace != nil {
		r.cfg.Trace.Event(trace.Event{
			Kind:    trace.KindFMPass,
			Attempt: r.cfg.TraceAttempt,
			Pass:    r.passSeq,
			Moves:   moves,
			Cut:     bestCut,
		})
	}
	return bestCut < startCut, moves
}

// move materializes cell c's stored proposal.
func (r *Runner) move(c hypergraph.CellID) replication.Move {
	p := &r.prop[c]
	return replication.Move{Cell: c, Kind: p.kind, Carry: p.carry, To: p.to}
}

// roundCommits bounds the number of commits per sub-round. It is the
// engine's staleness horizon: every commit defers the re-proposal of
// the cells it touched to the next sub-round, so larger sub-rounds
// commit against increasingly outdated cascade information and the
// final cut degrades (measured on rent65 instances: quality matches
// the serial engine up to roughly 16-commit sub-rounds, then falls
// off a cliff — at whole-graph sub-rounds the cut is 4-5x worse).
// Smaller sub-rounds sharpen quality but shrink the proposal batches
// available to the workers.
const roundCommits = 4

// minParallel is the smallest proposal batch worth fanning out to
// goroutines; below it the spawn/synchronization overhead dominates.
// The cutoff only affects wall-clock time, never results.
const minParallel = 2048

// proposeAll recomputes proposals for every cell, sharded across
// workers as contiguous index ranges.
func (r *Runner) proposeAll() {
	n := len(r.prop)
	w := r.cfg.Workers
	if w <= 1 || n < minParallel {
		r.proposeRange(r.evals[0], 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(ev *replication.Evaluator, lo, hi int) {
			defer wg.Done()
			r.proposeRange(ev, lo, hi)
		}(r.evals[i], lo, hi)
	}
	wg.Wait()
}

// proposeList recomputes proposals for the listed cells, sharded
// across workers as contiguous list ranges.
func (r *Runner) proposeList(list []int32) {
	n := len(list)
	w := r.cfg.Workers
	if w <= 1 || n < minParallel {
		r.proposeCells(r.evals[0], list)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(ev *replication.Evaluator, part []int32) {
			defer wg.Done()
			r.proposeCells(ev, part)
		}(r.evals[i], list[lo:hi])
	}
	wg.Wait()
}

func (r *Runner) proposeRange(ev *replication.Evaluator, lo, hi int) {
	for ci := lo; ci < hi; ci++ {
		if r.locked[ci] {
			r.prop[ci].valid = false
			continue
		}
		r.propose(ev, hypergraph.CellID(ci))
	}
}

func (r *Runner) proposeCells(ev *replication.Evaluator, list []int32) {
	for _, ci := range list {
		if r.locked[ci] {
			r.prop[ci].valid = false
			continue
		}
		r.propose(ev, hypergraph.CellID(ci))
	}
}

// propose stores cell c's best candidate move evaluated against the
// current (frozen) state. Candidate priority on gain ties is the fixed
// scan order — unreplicate-to-0 before unreplicate-to-1, the single
// move before replication splits in table order — which keeps the
// choice a pure function of the frozen state.
func (r *Runner) propose(ev *replication.Evaluator, c hypergraph.CellID) {
	st := r.st
	p := &r.prop[c]
	if st.IsReplicated(c) {
		g0 := ev.MustGain(replication.Move{Cell: c, Kind: replication.Unreplicate, To: 0})
		g1 := ev.MustGain(replication.Move{Cell: c, Kind: replication.Unreplicate, To: 1})
		p.kind = replication.Unreplicate
		p.carry = 0
		if g1 > g0 {
			p.to, p.gain = 1, int32(g1)
		} else {
			p.to, p.gain = 0, int32(g0)
		}
		p.valid = true
		return
	}
	p.valid = false
	if !r.replOnly {
		p.kind = replication.SingleMove
		p.carry, p.to = 0, 0
		p.gain = int32(ev.SingleGain(c))
		p.valid = true
	}
	if r.cfg.Threshold != NoReplication && st.CanReplicate(c, r.cfg.Threshold) {
		for _, carry := range st.Splits(c) {
			g := int32(ev.MustGain(replication.Move{Cell: c, Kind: replication.Replicate, Carry: carry}))
			if !p.valid || g > p.gain {
				p.kind = replication.Replicate
				p.carry, p.to = carry, 0
				p.gain = g
				p.valid = true
			}
		}
	}
}

// stallMoves is the early-termination budget of a pass: after this
// many consecutive commits without a new best cut the pass ends and
// rolls back to the best prefix. Serial FM spends well over half of
// every pass walking the negative-gain tail past the best prefix;
// bounding the fruitless stretch to a quarter of the graph keeps the
// deep hill-climbs that matter (measured cut parity with the
// unbounded pass on rent65 instances) while dropping most of the
// apply-then-undo churn. Purely a function of the cell count, so it
// cannot break run determinism.
func stallMoves(n int) int { return n/4 + 256 }

// push links cell ci into the bucket for its proposed gain, at the
// head — most-recently-proposed first, the deterministic analogue of
// the serial engine's LIFO gain buckets.
func (r *Runner) push(ci int32) {
	idx := int(r.prop[ci].gain) + r.gainOf
	r.bnext[ci] = r.bhead[idx]
	r.bprev[ci] = -1
	if h := r.bhead[idx]; h >= 0 {
		r.bprev[h] = ci
	}
	r.bhead[idx] = ci
	r.inb[ci] = true
	if idx > r.curMax {
		r.curMax = idx
	}
}

// unlink removes cell ci from its bucket.
func (r *Runner) unlink(ci int32) {
	if !r.inb[ci] {
		return
	}
	if p := r.bprev[ci]; p >= 0 {
		r.bnext[p] = r.bnext[ci]
	} else {
		r.bhead[int(r.prop[ci].gain)+r.gainOf] = r.bnext[ci]
	}
	if nx := r.bnext[ci]; nx >= 0 {
		r.bprev[nx] = r.bprev[ci]
	}
	r.inb[ci] = false
}

// popBest returns the highest-gain area-feasible proposal, scanning
// buckets downward from the current maximum and each bucket in
// recency order. Area-infeasible entries are left in place — their
// gains stay exact until a commit touches them, so they simply wait
// for a later sub-round to free area.
func (r *Runner) popBest() (int32, bool) {
	st := r.st
	for r.curMax > 0 && r.bhead[r.curMax] < 0 {
		r.curMax--
	}
	for idx := r.curMax; idx >= 0; idx-- {
		for ci := r.bhead[idx]; ci >= 0; ci = r.bnext[ci] {
			m := r.move(hypergraph.CellID(ci))
			d0, d1, err := st.AreaDelta(m)
			if err != nil {
				panic(fmt.Sprintf("parfm: area delta of %v: %v", m, err))
			}
			a0, a1 := st.Area(0)+d0, st.Area(1)+d1
			if a0 >= r.cfg.MinArea[0] && a0 <= r.cfg.MaxArea[0] &&
				a1 >= r.cfg.MinArea[1] && a1 <= r.cfg.MaxArea[1] {
				return ci, true
			}
		}
	}
	return -1, false
}
