package metrics

import (
	"math"
	"strings"
	"testing"

	"fpgapart/internal/library"
)

func dev(name string, clbs, iobs int, price float64) library.Device {
	return library.Device{Name: name, CLBs: clbs, IOBs: iobs, Price: price, LowUtil: 0, HighUtil: 1}
}

func sample() Solution {
	return Solution{Parts: []Part{
		{Device: dev("A", 100, 50, 10), CLBs: 80, Terminals: 25, Cells: 80},
		{Device: dev("B", 200, 100, 18), CLBs: 100, Terminals: 50, Cells: 95, ReplicatedCells: 5},
	}}
}

func TestDeviceCost(t *testing.T) {
	if got := sample().DeviceCost(); got != 28 {
		t.Fatalf("cost = %g, want 28", got)
	}
}

func TestAvgIOBUtil(t *testing.T) {
	// (25+50)/(50+100) = 0.5
	if got := sample().AvgIOBUtil(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("iob util = %g, want 0.5", got)
	}
}

func TestAvgCLBUtil(t *testing.T) {
	// (80+100)/(100+200) = 0.6
	if got := sample().AvgCLBUtil(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("clb util = %g, want 0.6", got)
	}
}

func TestCellsAndReplication(t *testing.T) {
	s := sample()
	if s.TotalCells() != 175 || s.ReplicatedCells() != 5 {
		t.Fatalf("cells=%d repl=%d", s.TotalCells(), s.ReplicatedCells())
	}
	// 5 replicas over 170 source cells.
	if got := s.ReplicatedPct(170); math.Abs(got-100*5.0/170) > 1e-12 {
		t.Fatalf("pct = %g", got)
	}
	if s.ReplicatedPct(0) != 0 {
		t.Fatal("pct with zero source cells should be 0")
	}
}

func TestFeasible(t *testing.T) {
	s := sample()
	if !s.Feasible() {
		t.Fatal("sample should be feasible")
	}
	s.Parts[0].Terminals = 51
	if s.Feasible() {
		t.Fatal("terminal overflow should be infeasible")
	}
	if (Solution{}).Feasible() {
		t.Fatal("empty solution is not feasible")
	}
}

func TestPartHelpers(t *testing.T) {
	p := sample().Parts[0]
	if p.CLBUtil() != 0.8 || p.IOBUtil() != 0.5 {
		t.Fatalf("clb=%g iob=%g", p.CLBUtil(), p.IOBUtil())
	}
}

func TestBetterLexicographic(t *testing.T) {
	cheap := Solution{Parts: []Part{{Device: dev("A", 100, 50, 10), CLBs: 50, Terminals: 40}}}
	costly := Solution{Parts: []Part{{Device: dev("B", 100, 50, 20), CLBs: 50, Terminals: 1}}}
	if !cheap.Better(costly) {
		t.Fatal("cheaper solution must win regardless of interconnect")
	}
	// Equal cost: lower IOB utilization wins.
	a := Solution{Parts: []Part{{Device: dev("A", 100, 50, 10), CLBs: 50, Terminals: 10}}}
	b := Solution{Parts: []Part{{Device: dev("A", 100, 50, 10), CLBs: 50, Terminals: 20}}}
	if !a.Better(b) || b.Better(a) {
		t.Fatal("tie-break on IOB utilization failed")
	}
}

func TestDeviceCounts(t *testing.T) {
	s := Solution{Parts: []Part{
		{Device: dev("A", 1, 1, 1)}, {Device: dev("A", 1, 1, 1)}, {Device: dev("B", 1, 1, 1)},
	}}
	m := s.DeviceCounts()
	if m["A"] != 2 || m["B"] != 1 {
		t.Fatalf("counts = %v", m)
	}
}

func TestEmptySolutionUtils(t *testing.T) {
	var s Solution
	if s.AvgIOBUtil() != 0 || s.AvgCLBUtil() != 0 || s.K() != 0 {
		t.Fatal("empty solution should report zeros")
	}
}

func TestString(t *testing.T) {
	if got := sample().String(); !strings.Contains(got, "k=2") || !strings.Contains(got, "cost=28") {
		t.Fatalf("String = %q", got)
	}
}
