// Package metrics implements the two objective functions of Kužnar et
// al. (DAC'94): total device cost $k = Σ d_i·n_i (Eq. 1) and the
// interconnect measure λ_k = Σ_j t_Pj / Σ_i t_i·n_i, the average IOB
// utilization over the devices of a k-way partition (Eq. 2), plus the
// average CLB utilization reported in Table V.
package metrics

import (
	"fmt"

	"fpgapart/internal/library"
)

// Part summarizes one partition P_j of a k-way solution together with
// the device that implements it.
type Part struct {
	Device          library.Device
	CLBs            int // CLBs assigned, including replicas absorbed by the device
	Terminals       int // t_Pj: IOBs used (primary I/O nets + cut nets touching P_j)
	Cells           int // cell instances placed in the partition
	ReplicatedCells int // instances that are replicas of cells placed elsewhere
}

// CLBUtil returns the CLB utilization of the part on its device.
func (p Part) CLBUtil() float64 { return float64(p.CLBs) / float64(p.Device.CLBs) }

// IOBUtil returns the terminal utilization of the part on its device.
func (p Part) IOBUtil() float64 { return float64(p.Terminals) / float64(p.Device.IOBs) }

// Feasible reports whether the part satisfies its device's size and
// terminal constraints.
func (p Part) Feasible() bool { return p.Device.Fits(p.CLBs, p.Terminals) }

// Solution is a k-way partition summary.
type Solution struct {
	Parts []Part
	// TopoCost is the hop-weighted interconnect of the solution on a
	// board topology (sum over nets of the Steiner span cost of the
	// device slots the net touches; see internal/topology). It is
	// meaningful only when HasTopo is set — flat terminal-cut runs
	// leave both fields zero.
	TopoCost int
	HasTopo  bool
}

// K returns the number of partitions.
func (s Solution) K() int { return len(s.Parts) }

// DeviceCost evaluates Eq. (1): the summed price of all devices used.
func (s Solution) DeviceCost() float64 {
	c := 0.0
	for _, p := range s.Parts {
		c += p.Device.Price
	}
	return c
}

// AvgIOBUtil evaluates Eq. (2): Σ t_Pj / Σ t_i over the devices used.
func (s Solution) AvgIOBUtil() float64 {
	used, avail := 0, 0
	for _, p := range s.Parts {
		used += p.Terminals
		avail += p.Device.IOBs
	}
	if avail == 0 {
		return 0
	}
	return float64(used) / float64(avail)
}

// AvgCLBUtil returns Σ CLBs assigned / Σ CLB capacity (Table V metric).
func (s Solution) AvgCLBUtil() float64 {
	used, avail := 0, 0
	for _, p := range s.Parts {
		used += p.CLBs
		avail += p.Device.CLBs
	}
	if avail == 0 {
		return 0
	}
	return float64(used) / float64(avail)
}

// TotalCells returns the number of cell instances across all parts
// (greater than the source circuit's cell count when replication ran).
func (s Solution) TotalCells() int {
	n := 0
	for _, p := range s.Parts {
		n += p.Cells
	}
	return n
}

// ReplicatedCells returns the number of replica instances.
func (s Solution) ReplicatedCells() int {
	n := 0
	for _, p := range s.Parts {
		n += p.ReplicatedCells
	}
	return n
}

// ReplicatedPct returns the percentage of original cells that were
// replicated, given the source circuit's cell count (Table IV metric).
func (s Solution) ReplicatedPct(sourceCells int) float64 {
	if sourceCells == 0 {
		return 0
	}
	return 100 * float64(s.ReplicatedCells()) / float64(sourceCells)
}

// Feasible reports whether every part fits its device.
func (s Solution) Feasible() bool {
	for _, p := range s.Parts {
		if !p.Feasible() {
			return false
		}
	}
	return len(s.Parts) > 0
}

// DeviceCounts returns n_i per device name, the multiset of devices the
// solution buys.
func (s Solution) DeviceCounts() map[string]int {
	m := make(map[string]int)
	for _, p := range s.Parts {
		m[p.Device.Name]++
	}
	return m
}

// Better reports whether s is preferable to t under the paper's
// lexicographic objective: lower device cost first (Eq. 1), then —
// when both solutions carry a board-topology score — lower
// hop-weighted interconnect, then lower average IOB utilization
// (Eq. 2). Flat solutions never set HasTopo, so the classic two-level
// order is unchanged for them.
func (s Solution) Better(t Solution) bool {
	cs, ct := s.DeviceCost(), t.DeviceCost()
	const eps = 1e-9
	if cs < ct-eps {
		return true
	}
	if cs > ct+eps {
		return false
	}
	if s.HasTopo && t.HasTopo && s.TopoCost != t.TopoCost {
		return s.TopoCost < t.TopoCost
	}
	return s.AvgIOBUtil() < t.AvgIOBUtil()
}

// String renders a compact one-line summary.
func (s Solution) String() string {
	if s.HasTopo {
		return fmt.Sprintf("k=%d cost=%.0f clb=%.0f%% iob=%.0f%% topo=%d",
			s.K(), s.DeviceCost(), 100*s.AvgCLBUtil(), 100*s.AvgIOBUtil(), s.TopoCost)
	}
	return fmt.Sprintf("k=%d cost=%.0f clb=%.0f%% iob=%.0f%%",
		s.K(), s.DeviceCost(), 100*s.AvgCLBUtil(), 100*s.AvgIOBUtil())
}
