// Package jobstore is the durability layer of the partitioning
// service: an append-only, fsync'd, CRC-checked write-ahead log plus a
// compacted snapshot, recording job submissions, state transitions,
// periodic search checkpoints and completions. A process that crashes
// mid-search reopens the store, replays the log and resumes every
// interrupted job from its last checkpoint — and because the search
// layer's checkpoints are deterministic (internal/kway), the resumed
// result is byte-identical to the uninterrupted run.
//
// On-disk layout (one directory per store):
//
//	wal.log        framed records: uint32 LE payload length,
//	               uint32 LE CRC-32C of the payload, payload
//	               (1 type byte + JSON body)
//	snapshot.json  the job table as of the last compaction,
//	               written atomically (tmp + rename + fsync)
//
// Replay is paranoid where it must be and forgiving where it can be: a
// record whose header is short, whose length is implausible, whose CRC
// mismatches or whose body fails to decode ends the replay — the tail
// from that offset is truncated with a warning (a torn append is the
// expected crash signature, not an error), and every record before it
// is kept. Replay never crashes on file content.
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/span"
	"fpgapart/internal/telemetry"
)

// Record types (the first payload byte).
const (
	recSubmit byte = iota + 1
	recState
	recCheckpoint
	recDone
	recFail
)

// Job states recorded by AppendState and surfaced by replay. The store
// itself does not interpret them beyond "done/failed ends the job";
// the vocabulary is shared with internal/server's job lifecycle.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateRecovered = "recovered"
)

// maxRecord bounds a record payload during replay; anything larger is
// treated as a corrupt length (the biggest legitimate record is a
// checkpoint or result of a few hundred KB).
const maxRecord = 16 << 20

// crcTable is the Castagnoli polynomial (CRC-32C), hardware-assisted
// on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is the JSON body shared by every record type; unused fields
// stay empty per type.
type record struct {
	// Job identifies the job every record belongs to.
	Job string `json:"job"`
	// State is the transition name (recState).
	State string `json:"state,omitempty"`
	// Kind and Error describe a failure (recFail).
	Kind  string `json:"kind,omitempty"`
	Error string `json:"error,omitempty"`
	// Payload carries the submitted request (recSubmit), the search
	// checkpoint (recCheckpoint) or the result (recDone), opaque to
	// the store.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Job is the replayed durable view of one job: the submitted request,
// the latest recorded state, the newest checkpoint and the outcome.
type Job struct {
	ID      string          `json:"id"`
	Request json.RawMessage `json:"request,omitempty"`
	State   string          `json:"state,omitempty"`
	// Checkpoint is the newest persisted search checkpoint (nil if the
	// job never reached one); an incomplete job resumes from it.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	// Done/Result and Failed/ErrKind/Error record the outcome; a job
	// with neither flag set was interrupted and is a recovery
	// candidate.
	Done    bool            `json:"done,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Failed  bool            `json:"failed,omitempty"`
	ErrKind string          `json:"err_kind,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Complete reports whether the job reached a terminal record.
func (j *Job) Complete() bool { return j.Done || j.Failed }

// Metrics are the store's fpgapart_jobstore_* series. Construct with
// NewMetrics; a nil *Metrics disables instrumentation.
type Metrics struct {
	fsync       *telemetry.Histogram
	appends     *telemetry.CounterVec
	replayed    *telemetry.Counter
	recovered   *telemetry.Counter
	truncations *telemetry.Counter
	compactions *telemetry.Counter
}

// Metric names.
const (
	MetricFsyncSeconds = "fpgapart_jobstore_fsync_seconds"
	MetricAppends      = "fpgapart_jobstore_appends_total"
	MetricReplayed     = "fpgapart_jobstore_replayed_records_total"
	MetricRecovered    = "fpgapart_jobstore_recovered_jobs_total"
	MetricTruncations  = "fpgapart_jobstore_truncated_tails_total"
	MetricCompactions  = "fpgapart_jobstore_compactions_total"
)

// NewMetrics registers the store's metric families on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		fsync:       r.Histogram(MetricFsyncSeconds, "WAL fsync latency per append.", telemetry.LatencyBuckets()),
		appends:     r.CounterVec(MetricAppends, "WAL records appended, by record type.", "type"),
		replayed:    r.Counter(MetricReplayed, "WAL records replayed at startup."),
		recovered:   r.Counter(MetricRecovered, "Incomplete jobs recovered from the store at startup."),
		truncations: r.Counter(MetricTruncations, "Torn or corrupt WAL tails truncated during replay."),
		compactions: r.Counter(MetricCompactions, "Snapshot compactions performed."),
	}
}

// Options configures Open.
type Options struct {
	// Dir is the store directory, created if missing.
	Dir string
	// Logger receives replay warnings (torn tails, unreadable
	// snapshots). Nil discards.
	Logger *slog.Logger
	// Metrics, when non-nil, instruments the store.
	Metrics *Metrics
	// Inject, when non-nil, arms the SiteWAL kill-point inside the
	// append path (after the frame is partially written, before it
	// completes) — a KindPanic rule there leaves a genuine torn tail.
	// Testing only.
	Inject *faultinject.Plan
	// Spans, when armed, times the startup recovery (snapshot load +
	// WAL replay) as a "wal-replay" span, so a restarted daemon's
	// flight recorder shows what recovery cost. The disarmed zero
	// value is inert.
	Spans span.Scope
}

// Store is an open job store, safe for concurrent use. Appends are
// serialized under one mutex and each is fsync'd before returning, so
// an acknowledged record survives a crash immediately after.
type Store struct {
	mu   sync.Mutex
	dir  string
	wal  *os.File
	log  *slog.Logger
	met  *Metrics
	inj  *faultinject.Plan
	seq  int // append ordinal, the SiteWAL coordinate
	jobs map[string]*Job
	ord  []string // job IDs in first-seen order
}

// Open opens (or creates) the store at opts.Dir, replays the snapshot
// and the WAL, truncates any torn tail, and returns the store plus
// every replayed job in submission order. It never fails on WAL
// content — only on real I/O errors.
func Open(opts Options) (*Store, []*Job, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("jobstore: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobstore: %w", err)
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Store{
		dir:  opts.Dir,
		log:  logger,
		met:  opts.Metrics,
		inj:  opts.Inject,
		jobs: make(map[string]*Job),
	}
	replaySpan := opts.Spans.Start("wal-replay", -1)
	s.loadSnapshot()
	if err := s.replayWAL(); err != nil {
		replaySpan.End()
		return nil, nil, err
	}
	if replaySpan.Scope().Enabled() {
		replaySpan.Detail(fmt.Sprintf("jobs=%d", len(s.ord)))
	}
	replaySpan.End()
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobstore: %w", err)
	}
	s.wal = f
	out := make([]*Job, 0, len(s.ord))
	recovered := 0
	for _, id := range s.ord {
		j := s.jobs[id]
		out = append(out, j)
		if !j.Complete() {
			recovered++
		}
	}
	if s.met != nil {
		s.met.recovered.Add(int64(recovered))
	}
	return s, out, nil
}

func (s *Store) walPath() string      { return filepath.Join(s.dir, "wal.log") }
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.json") }

// loadSnapshot restores the job table from the last compaction. A
// missing snapshot is the common case; an unreadable one is warned
// about and skipped (the WAL after the last compaction is still
// replayed — losing pre-compaction history beats refusing to start).
func (s *Store) loadSnapshot() {
	data, err := os.ReadFile(s.snapshotPath())
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.log.Warn("jobstore: unreadable snapshot, starting from WAL only", "path", s.snapshotPath(), "err", err)
		}
		return
	}
	var snap struct {
		Jobs []*Job `json:"jobs"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		s.log.Warn("jobstore: corrupt snapshot, starting from WAL only", "path", s.snapshotPath(), "err", err)
		return
	}
	for _, j := range snap.Jobs {
		if j == nil || j.ID == "" || s.jobs[j.ID] != nil {
			continue
		}
		s.jobs[j.ID] = j
		s.ord = append(s.ord, j.ID)
	}
}

// replayWAL folds every intact record into the job table and truncates
// the file at the first torn or corrupt one.
func (s *Store) replayWAL() error {
	data, err := os.ReadFile(s.walPath())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("jobstore: %w", err)
	}
	valid := 0
	reason := ""
	for valid < len(data) {
		rest := data[valid:]
		if len(rest) < 8 {
			reason = "short header"
			break
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > maxRecord {
			reason = fmt.Sprintf("implausible record length %d", n)
			break
		}
		if len(rest) < 8+int(n) {
			reason = fmt.Sprintf("torn record (%d of %d payload bytes)", len(rest)-8, n)
			break
		}
		payload := rest[8 : 8+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			reason = "CRC mismatch"
			break
		}
		if err := s.apply(payload[0], payload[1:]); err != nil {
			reason = err.Error()
			break
		}
		valid += 8 + int(n)
		if s.met != nil {
			s.met.replayed.Inc()
		}
	}
	if valid < len(data) {
		s.log.Warn("jobstore: truncating torn WAL tail",
			"path", s.walPath(), "valid_bytes", valid, "dropped_bytes", len(data)-valid, "reason", reason)
		if s.met != nil {
			s.met.truncations.Inc()
		}
		if err := os.Truncate(s.walPath(), int64(valid)); err != nil {
			return fmt.Errorf("jobstore: truncating torn tail: %w", err)
		}
	}
	return nil
}

// apply folds one decoded record into the job table. Unknown types and
// undecodable bodies are errors (the caller treats them as a corrupt
// tail); a record for an unknown job ID creates the job, so a WAL
// whose submit record predates the last compaction still replays.
func (s *Store) apply(typ byte, body []byte) error {
	var rec record
	if err := json.Unmarshal(body, &rec); err != nil {
		return fmt.Errorf("undecodable record body: %w", err)
	}
	if rec.Job == "" {
		return errors.New("record without job ID")
	}
	j := s.jobs[rec.Job]
	if j == nil {
		j = &Job{ID: rec.Job}
		s.jobs[rec.Job] = j
		s.ord = append(s.ord, rec.Job)
	}
	switch typ {
	case recSubmit:
		j.Request = rec.Payload
		if j.State == "" {
			j.State = StateQueued
		}
	case recState:
		j.State = rec.State
	case recCheckpoint:
		j.Checkpoint = rec.Payload
	case recDone:
		j.Done = true
		j.Result = rec.Payload
	case recFail:
		j.Failed = true
		j.ErrKind = rec.Kind
		j.Error = rec.Error
	default:
		return fmt.Errorf("unknown record type %d", typ)
	}
	return nil
}

// append frames, writes and fsyncs one record, then folds it into the
// in-memory job table. The frame is written in two parts with the
// SiteWAL fault hook between them, so an injected panic leaves a
// genuine torn record for the replay path.
func (s *Store) append(typ byte, rec record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("jobstore: store is closed")
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, typ)
	payload = append(payload, body...)
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	seq := s.seq
	s.seq++
	split := 8 + len(payload)/2
	if _, err := s.wal.Write(frame[:split]); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	// The kill-point: the header and half the payload are in the file,
	// the rest is not. A KindPanic rule here is a crash mid-append.
	if s.inj != nil {
		if ferr := s.inj.At(faultinject.SiteWAL, -1, seq, 0); ferr != nil {
			return fmt.Errorf("jobstore: %w", ferr)
		}
	}
	if _, err := s.wal.Write(frame[split:]); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	start := time.Now()
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("jobstore: fsync: %w", err)
	}
	if s.met != nil {
		s.met.fsync.Observe(time.Since(start).Seconds())
		s.met.appends.With(typeName(typ)).Inc()
	}
	if err := s.apply(typ, payload[1:]); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

func typeName(typ byte) string {
	switch typ {
	case recSubmit:
		return "submit"
	case recState:
		return "state"
	case recCheckpoint:
		return "checkpoint"
	case recDone:
		return "done"
	case recFail:
		return "fail"
	default:
		return "unknown"
	}
}

// AppendSubmit records a job submission; req is serialized as the
// job's durable request payload.
func (s *Store) AppendSubmit(id string, req any) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return s.append(recSubmit, record{Job: id, Payload: payload})
}

// AppendState records a state transition.
func (s *Store) AppendState(id, state string) error {
	return s.append(recState, record{Job: id, State: state})
}

// AppendCheckpoint records a search checkpoint; cp is serialized as
// the job's newest resume point.
func (s *Store) AppendCheckpoint(id string, cp any) error {
	payload, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return s.append(recCheckpoint, record{Job: id, Payload: payload})
}

// AppendDone records successful completion with the serialized result.
func (s *Store) AppendDone(id string, result any) error {
	payload, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return s.append(recDone, record{Job: id, Payload: payload})
}

// AppendFail records terminal failure with a typed kind and message.
func (s *Store) AppendFail(id, kind, msg string) error {
	return s.append(recFail, record{Job: id, Kind: kind, Error: msg})
}

// Jobs returns copies of every job's current durable view, in
// submission order.
func (s *Store) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.ord))
	for _, id := range s.ord {
		cp := *s.jobs[id]
		out = append(out, &cp)
	}
	return out
}

// Job returns a copy of the current durable view of one job (nil if
// unknown).
func (s *Store) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil
	}
	cp := *j
	return &cp
}

// Compact writes the current job table to snapshot.json atomically
// (tmp + fsync + rename + directory fsync) and truncates the WAL: the
// snapshot now carries everything the log did.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("jobstore: store is closed")
	}
	snap := struct {
		Jobs []*Job `json:"jobs"`
	}{Jobs: make([]*Job, 0, len(s.ord))}
	for _, id := range s.ord {
		snap.Jobs = append(snap.Jobs, s.jobs[id])
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	tmp := s.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// The WAL restarts empty: truncate and rewind the append offset.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if s.met != nil {
		s.met.compactions.Inc()
	}
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("jobstore: dir fsync: %w", err)
	}
	return nil
}

// Close releases the WAL file handle. Pending appends must have
// returned; Close does not flush anything (every append already did).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
