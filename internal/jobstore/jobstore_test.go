package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/telemetry"
)

type testReq struct {
	Device string `json:"device"`
	Seed   int64  `json:"seed"`
}

type testCP struct {
	Folded int `json:"folded"`
	Best   int `json:"best_attempt"`
}

// openStore opens a store on dir and fails the test on real I/O errors.
func openStore(t *testing.T, dir string, opts Options) (*Store, []*Job) {
	t.Helper()
	opts.Dir = dir
	s, jobs, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, jobs
}

// writeLifecycle appends a full job lifecycle: submit, running, two
// checkpoints, done.
func writeLifecycle(t *testing.T, s *Store, id string) {
	t.Helper()
	if err := s.AppendSubmit(id, testReq{Device: "XC3042", Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendState(id, StateRunning); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCheckpoint(id, testCP{Folded: 2, Best: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCheckpoint(id, testCP{Folded: 4, Best: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDone(id, map[string]int{"cost": 120}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, jobs := openStore(t, dir, Options{})
	if len(jobs) != 0 {
		t.Fatalf("fresh store replayed %d jobs", len(jobs))
	}
	writeLifecycle(t, s, "job-a")
	// job-b is interrupted after its second checkpoint: no terminal
	// record.
	if err := s.AppendSubmit("job-b", testReq{Device: "XC3020", Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendState("job-b", StateRunning); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCheckpoint("job-b", testCP{Folded: 1, Best: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCheckpoint("job-b", testCP{Folded: 3, Best: 2}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, jobs = openStore(t, dir, Options{})
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	a, b := jobs[0], jobs[1]
	if a.ID != "job-a" || b.ID != "job-b" {
		t.Fatalf("job order %q, %q — want submission order", a.ID, b.ID)
	}
	if !a.Complete() || !a.Done || a.Failed {
		t.Fatalf("job-a outcome = %+v, want done", a)
	}
	var res map[string]int
	if err := json.Unmarshal(a.Result, &res); err != nil || res["cost"] != 120 {
		t.Fatalf("job-a result %s (%v)", a.Result, err)
	}
	if b.Complete() {
		t.Fatal("interrupted job-b replayed as complete")
	}
	var cp testCP
	if err := json.Unmarshal(b.Checkpoint, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Folded != 3 || cp.Best != 2 {
		t.Fatalf("job-b checkpoint = %+v, want the newest (folded 3)", cp)
	}
	var req testReq
	if err := json.Unmarshal(b.Request, &req); err != nil || req.Device != "XC3020" || req.Seed != 7 {
		t.Fatalf("job-b request %s (%v)", b.Request, err)
	}
	if b.State != StateRunning {
		t.Fatalf("job-b state %q, want %q", b.State, StateRunning)
	}
}

func TestFailRecord(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	if err := s.AppendSubmit("j", testReq{}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFail("j", "infeasible", "no feasible carve"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, jobs := openStore(t, dir, Options{})
	if len(jobs) != 1 || !jobs[0].Failed || jobs[0].ErrKind != "infeasible" || jobs[0].Error != "no feasible carve" {
		t.Fatalf("replayed failure = %+v", jobs[0])
	}
}

// TestTornTailTruncated is the core recovery contract: any prefix of a
// valid WAL replays every record that fully made it to disk and drops
// the torn one, without crashing — and the store keeps appending
// afterwards from the truncated offset.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	writeLifecycle(t, s, "job-a")
	s.Close()
	walPath := filepath.Join(dir, "wal.log")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries, for deciding what a given cut preserves.
	var bounds []int
	for off := 0; off < len(full); {
		n := int(binary.LittleEndian.Uint32(full[off:]))
		off += 8 + n
		bounds = append(bounds, off)
	}
	if len(bounds) != 5 {
		t.Fatalf("lifecycle wrote %d records, want 5", len(bounds))
	}
	recordsBefore := func(cut int) int {
		k := 0
		for _, b := range bounds {
			if b <= cut {
				k++
			}
		}
		return k
	}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		met := NewMetrics(reg)
		s2, jobs, err := Open(Options{Dir: dir, Metrics: met})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := recordsBefore(cut)
		if met.replayed.Value() != int64(want) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, met.replayed.Value(), want)
		}
		// A cut on a record boundary (including 0 and the full file)
		// leaves a clean prefix; any other cut leaves a torn tail.
		isBoundary := cut == 0
		for _, b := range bounds {
			if b == cut {
				isBoundary = true
			}
		}
		wantTrunc := int64(1)
		if isBoundary {
			wantTrunc = 0
		}
		if met.truncations.Value() != wantTrunc {
			t.Fatalf("cut %d: truncations = %d, want %d", cut, met.truncations.Value(), wantTrunc)
		}
		// The replayed job view matches how many records survived.
		switch {
		case want == 0:
			if len(jobs) != 0 {
				t.Fatalf("cut %d: %d jobs from empty prefix", cut, len(jobs))
			}
		case want < 5:
			if len(jobs) != 1 || jobs[0].Complete() {
				t.Fatalf("cut %d: want 1 incomplete job, got %+v", cut, jobs)
			}
		default:
			if len(jobs) != 1 || !jobs[0].Done {
				t.Fatalf("cut %d: want 1 done job, got %+v", cut, jobs)
			}
		}
		// The store stays writable after a truncated replay.
		if err := s2.AppendState("job-a", StateRecovered); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		s2.Close()
	}
}

// TestCorruptTailTruncated flips payload bytes (CRC mismatch) and
// plants implausible lengths; replay must warn-and-truncate, never
// crash.
func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	writeLifecycle(t, s, "job-a")
	s.Close()
	walPath := filepath.Join(dir, "wal.log")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries again.
	var bounds []int
	off := 0
	for off < len(full) {
		n := int(binary.LittleEndian.Uint32(full[off:]))
		off += 8 + n
		bounds = append(bounds, off)
	}
	cases := []struct {
		name string
		mut  func(b []byte) []byte
		want int // records expected to survive
	}{
		{"flip-last-payload-byte", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}, len(bounds) - 1},
		{"zero-length-record", func(b []byte) []byte {
			return append(b, make([]byte, 12)...)
		}, len(bounds)},
		{"huge-length-record", func(b []byte) []byte {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[:], 1<<30)
			return append(b, hdr[:]...)
		}, len(bounds)},
		{"corrupt-mid-record", func(b []byte) []byte {
			// Flip a byte inside record 2; records 0-1 survive, the rest
			// of the log is dropped from the corruption point.
			b[bounds[1]+10] ^= 0xff
			return b
		}, 2},
		{"bad-json-payload", func(b []byte) []byte {
			payload := []byte{recState, '{', 'x'}
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
			return append(append(b, hdr[:]...), payload...)
		}, len(bounds)},
		{"unknown-record-type", func(b []byte) []byte {
			payload := append([]byte{99}, []byte(`{"job":"j"}`)...)
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
			return append(append(b, hdr[:]...), payload...)
		}, len(bounds)},
		{"missing-job-id", func(b []byte) []byte {
			payload := append([]byte{recState}, []byte(`{"state":"running"}`)...)
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
			return append(append(b, hdr[:]...), payload...)
		}, len(bounds)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(walPath, tc.mut(append([]byte(nil), full...)), 0o644); err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			met := NewMetrics(reg)
			s2, _, err := Open(Options{Dir: dir, Metrics: met})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if met.replayed.Value() != int64(tc.want) {
				t.Fatalf("replayed %d records, want %d", met.replayed.Value(), tc.want)
			}
			if met.truncations.Value() != 1 {
				t.Fatalf("truncations = %d, want 1", met.truncations.Value())
			}
			// The truncated file is now a clean prefix: a second open
			// must replay without another truncation.
			s2.Close()
			reg2 := telemetry.NewRegistry()
			met2 := NewMetrics(reg2)
			s3, _, err := Open(Options{Dir: dir, Metrics: met2})
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if met2.truncations.Value() != 0 {
				t.Fatal("second replay truncated again — truncation did not persist")
			}
		})
	}
}

// TestInjectedCrashMidAppend arms the SiteWAL kill-point: the injected
// panic fires after the header and half the payload reached the fd, so
// the file holds a genuine torn record. Recovery replays everything
// before it and truncates the tear.
func TestInjectedCrashMidAppend(t *testing.T) {
	dir := t.TempDir()
	// Kill append #3 (the first checkpoint of the lifecycle).
	plan := faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteWAL, Kind: faultinject.KindPanic,
		Attempt: faultinject.Any, Index: 2,
	})
	s, _ := openStore(t, dir, Options{Inject: plan})
	if err := s.AppendSubmit("j", testReq{Device: "XC3042"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendState("j", StateRunning); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("armed SiteWAL rule did not fire")
			}
			if _, ok := p.(*faultinject.Panic); !ok {
				t.Fatalf("recovered %T, want *faultinject.Panic", p)
			}
		}()
		s.AppendCheckpoint("j", testCP{Folded: 1})
	}()
	if got := len(plan.Firings()); got != 1 {
		t.Fatalf("firing log has %d entries, want 1", got)
	}
	// The file must contain a genuine torn record, not a clean prefix.
	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	s2, jobs, err := Open(Options{Dir: dir, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if met.truncations.Value() != 1 {
		t.Fatalf("truncations = %d, want 1 (file was %d bytes)", met.truncations.Value(), len(data))
	}
	if met.replayed.Value() != 2 {
		t.Fatalf("replayed %d records, want 2", met.replayed.Value())
	}
	if len(jobs) != 1 || jobs[0].State != StateRunning || jobs[0].Checkpoint != nil {
		t.Fatalf("recovered job = %+v, want running with no checkpoint", jobs[0])
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	s, _ := openStore(t, dir, Options{Metrics: met})
	writeLifecycle(t, s, "job-a")
	if err := s.AppendSubmit("job-b", testReq{Device: "XC3020"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if met.compactions.Value() != 1 {
		t.Fatal("compaction counter did not move")
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL after compaction: %v, size %d — want empty", err, fi.Size())
	}
	// Post-compaction appends land in the fresh WAL.
	if err := s.AppendState("job-b", StateRunning); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, jobs := openStore(t, dir, Options{})
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs after compaction, want 2", len(jobs))
	}
	if jobs[0].ID != "job-a" || !jobs[0].Done {
		t.Fatalf("snapshot job = %+v", jobs[0])
	}
	if jobs[1].ID != "job-b" || jobs[1].State != StateRunning {
		t.Fatalf("post-snapshot WAL record not applied: %+v", jobs[1])
	}
}

func TestCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	writeLifecycle(t, s, "job-a")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit("job-b", testReq{}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Open must warn and continue with the WAL only — job-a (snapshot
	// only) is lost, job-b (WAL) survives.
	_, jobs := openStore(t, dir, Options{})
	if len(jobs) != 1 || jobs[0].ID != "job-b" {
		t.Fatalf("jobs after corrupt snapshot = %+v, want only job-b", jobs)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	const workers, each = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("job-%d", w)
			if err := s.AppendSubmit(id, testReq{Seed: int64(w)}); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < each; i++ {
				if err := s.AppendCheckpoint(id, testCP{Folded: i}); err != nil {
					t.Error(err)
					return
				}
			}
			if err := s.AppendDone(id, map[string]int{"w": w}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	s.Close()
	_, jobs := openStore(t, dir, Options{})
	if len(jobs) != workers {
		t.Fatalf("replayed %d jobs, want %d", len(jobs), workers)
	}
	for _, j := range jobs {
		if !j.Done {
			t.Fatalf("job %s not done after concurrent lifecycle", j.ID)
		}
		var cp testCP
		if err := json.Unmarshal(j.Checkpoint, &cp); err != nil || cp.Folded != each-1 {
			t.Fatalf("job %s newest checkpoint = %s (%v)", j.ID, j.Checkpoint, err)
		}
	}
}

func TestClosedStoreRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir, Options{})
	s.Close()
	if err := s.AppendState("j", StateRunning); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("append on closed store: %v", err)
	}
	if err := s.Compact(); err == nil {
		t.Fatal("compact on closed store succeeded")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

func TestMetricsRegistered(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	s, _ := openStore(t, dir, Options{Metrics: met})
	writeLifecycle(t, s, "j")
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		MetricFsyncSeconds, MetricAppends, MetricReplayed,
		MetricRecovered, MetricTruncations, MetricCompactions,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	if met.fsync.Count() != 5 {
		t.Fatalf("fsync observations = %d, want 5", met.fsync.Count())
	}
	if met.appends.With("checkpoint").Value() != 2 {
		t.Fatalf("checkpoint appends = %d, want 2", met.appends.With("checkpoint").Value())
	}
}
