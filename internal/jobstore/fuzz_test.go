package jobstore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frame builds one valid WAL frame around a payload.
func frame(payload []byte) []byte {
	b := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// FuzzWALReplay throws arbitrary bytes at the replay path: Open must
// never panic, never fail on file content, and must leave the WAL as a
// clean prefix — a second open of the same directory replays with no
// further truncation.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(append([]byte{recSubmit}, []byte(`{"job":"a","payload":{"seed":1}}`)...)))
	valid := append(
		frame(append([]byte{recSubmit}, []byte(`{"job":"a"}`)...)),
		frame(append([]byte{recState}, []byte(`{"job":"a","state":"running"}`)...))...)
	valid = append(valid,
		frame(append([]byte{recCheckpoint}, []byte(`{"job":"a","payload":{"folded":3}}`)...))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                                // torn tail
	f.Add(append([]byte(nil), valid[3:]...))                   // misaligned start
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})          // huge length
	f.Add(frame([]byte{recFail}))                              // type byte, empty body
	f.Add(frame(append([]byte{77}, []byte(`{"job":"x"}`)...))) // unknown type

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, jobs, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open failed on file content: %v", err)
		}
		for _, j := range jobs {
			if j.ID == "" {
				t.Fatal("replayed a job with an empty ID")
			}
		}
		// The store must stay usable after any replay.
		if err := s.AppendState("fuzz-probe", StateQueued); err != nil {
			t.Fatal(err)
		}
		s.Close()
		// Idempotence: the truncated file is now a clean prefix.
		s2, jobs2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if len(jobs2) < len(jobs) {
			t.Fatalf("second replay lost jobs: %d then %d", len(jobs), len(jobs2))
		}
	})
}
