package fm

import (
	"math/rand"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

func testGraph(t testing.TB, cells int, seed int64, clustering float64) *hypergraph.Graph {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "fmtest", Cells: cells, PrimaryIn: 10, PrimaryOut: 6,
		Seed: seed, Clustering: clustering,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func equalCfg(g *hypergraph.Graph, threshold int, seed int64) Config {
	minA, maxA := Balance(g.TotalArea(), 0.10)
	return Config{MinArea: minA, MaxArea: maxA, Threshold: threshold, Seed: seed}
}

func TestRandomAssignBalanced(t *testing.T) {
	g := testGraph(t, 200, 1, 0.4)
	assign := RandomAssign(g, 42)
	var area [2]int
	for ci, b := range assign {
		area[b] += g.Cells[ci].Area
	}
	total := g.TotalArea()
	if area[0] < total/2-1 || area[0] > total/2+5 {
		t.Fatalf("block 0 area = %d of %d", area[0], total)
	}
}

func TestRandomAssignDeterministic(t *testing.T) {
	g := testGraph(t, 100, 2, 0.4)
	a := RandomAssign(g, 7)
	b := RandomAssign(g, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomAssign not deterministic")
		}
	}
}

func TestBalanceBounds(t *testing.T) {
	minA, maxA := Balance(100, 0.05)
	if minA[0] != 45 || maxA[0] != 55 {
		t.Fatalf("bounds = %v %v", minA, maxA)
	}
	minA, maxA = Balance(0, 0.05)
	if minA[0] != 0 || maxA[0] != 1 {
		t.Fatalf("degenerate bounds = %v %v", minA, maxA)
	}
}

func TestRunReducesCut(t *testing.T) {
	g := testGraph(t, 150, 3, 0.5)
	st, err := replication.NewState(g, RandomAssign(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	before := st.CutSize()
	res, err := Run(st, equalCfg(g, NoReplication, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut > before {
		t.Fatalf("cut increased: %d -> %d", before, res.Cut)
	}
	if res.Cut != st.CutSize() {
		t.Fatalf("result cut %d != state cut %d", res.Cut, st.CutSize())
	}
	if res.Cut >= before {
		t.Logf("warning: no improvement (%d -> %d)", before, res.Cut)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRespectsBalance(t *testing.T) {
	g := testGraph(t, 150, 4, 0.5)
	cfg := equalCfg(g, NoReplication, 2)
	st, err := replication.NewState(g, RandomAssign(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(st, cfg); err != nil {
		t.Fatal(err)
	}
	for b := replication.Block(0); b < 2; b++ {
		if a := st.Area(b); a < cfg.MinArea[b] || a > cfg.MaxArea[b] {
			t.Fatalf("block %d area %d outside [%d,%d]", b, a, cfg.MinArea[b], cfg.MaxArea[b])
		}
	}
}

func TestRunNoReplicationKeepsCellsSingle(t *testing.T) {
	g := testGraph(t, 120, 5, 0.5)
	st, _ := replication.NewState(g, RandomAssign(g, 3))
	if _, err := Run(st, equalCfg(g, NoReplication, 3)); err != nil {
		t.Fatal(err)
	}
	if st.ReplicatedCount() != 0 {
		t.Fatalf("plain FM replicated %d cells", st.ReplicatedCount())
	}
}

// The paper's central result: functional replication reduces the cut
// relative to plain FM. On a single instance the relation is
// stochastic, so compare sums over several seeds and require the
// replication runs to win in aggregate and never lose badly.
func TestReplicationImprovesCutInAggregate(t *testing.T) {
	var plainSum, replSum int
	for seed := int64(0); seed < 5; seed++ {
		g := testGraph(t, 200, 10+seed, 0.65)
		stPlain, resPlain, err := Bipartition(g, Options{Config: equalCfg(g, NoReplication, seed), Starts: 3})
		if err != nil {
			t.Fatal(err)
		}
		stRepl, resRepl, err := Bipartition(g, Options{Config: equalCfg(g, 0, seed), Starts: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := stPlain.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := stRepl.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		plainSum += resPlain.Cut
		replSum += resRepl.Cut
	}
	if replSum >= plainSum {
		t.Fatalf("replication did not help in aggregate: plain=%d repl=%d", plainSum, replSum)
	}
	t.Logf("aggregate cut: plain=%d with-replication=%d (%.1f%% reduction)",
		plainSum, replSum, 100*float64(plainSum-replSum)/float64(plainSum))
}

func TestThresholdLimitsReplication(t *testing.T) {
	g := testGraph(t, 200, 21, 0.6)
	counts := make(map[int]int)
	for _, T := range []int{0, 1, 3, 5} {
		st, _, err := Bipartition(g, Options{Config: equalCfg(g, T, 9), Starts: 2})
		if err != nil {
			t.Fatal(err)
		}
		counts[T] = st.ReplicatedCount()
		// Every replicated cell must satisfy the threshold.
		for ci := 0; ci < g.NumCells(); ci++ {
			c := hypergraph.CellID(ci)
			if st.IsReplicated(c) && !st.CanReplicate(c, T) {
				t.Fatalf("T=%d: ineligible cell %d replicated (ψ=%d)", T, ci, st.Psi(c))
			}
		}
	}
	if counts[5] > counts[0] {
		t.Fatalf("higher threshold should not replicate more: %v", counts)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	g := testGraph(t, 20, 6, 0.4)
	st, _ := replication.NewState(g, RandomAssign(g, 1))
	if _, err := Run(st, Config{}); err == nil {
		t.Fatal("zero MaxArea should fail")
	}
	if _, err := Run(st, Config{MaxArea: [2]int{1, 1}}); err == nil {
		t.Fatal("initial area outside bounds should fail")
	}
	if _, err := Run(st, Config{MaxArea: [2]int{100, 100}, MinArea: [2]int{-1, 0}}); err == nil {
		t.Fatal("negative MinArea should fail")
	}
}

func TestBipartitionMultiStartNotWorseThanSingle(t *testing.T) {
	g := testGraph(t, 150, 7, 0.5)
	_, single, err := Bipartition(g, Options{Config: equalCfg(g, NoReplication, 5), Starts: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, multi, err := Bipartition(g, Options{Config: equalCfg(g, NoReplication, 5), Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cut > single.Cut {
		t.Fatalf("multi-start worse than its own first start: %d > %d", multi.Cut, single.Cut)
	}
}

func TestRunDeterministic(t *testing.T) {
	g := testGraph(t, 120, 8, 0.5)
	run := func() int {
		st, _ := replication.NewState(g, RandomAssign(g, 11))
		res, err := Run(st, equalCfg(g, 0, 11))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cut
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

// Property: after FM with replication, both blocks materialize into
// valid subcircuits whose cell areas match the state's accounting.
func TestRunSubcircuitsConsistent(t *testing.T) {
	g := testGraph(t, 150, 9, 0.6)
	st, _, err := Bipartition(g, Options{Config: equalCfg(g, 0, 13), Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for b := replication.Block(0); b < 2; b++ {
		sub, err := g.Subcircuit("blk", st.InstanceSpecs(b), func(n hypergraph.NetID) bool { return st.CutNet(n) })
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if sub.TotalArea() != st.Area(b) {
			t.Fatalf("block %d: subcircuit area %d != state area %d", b, sub.TotalArea(), st.Area(b))
		}
		// Terminal count of the subcircuit equals the state's t_Pb.
		if sub.NumTerminals() != st.Terminals(b) {
			t.Fatalf("block %d: subcircuit terminals %d != state %d", b, sub.NumTerminals(), st.Terminals(b))
		}
	}
}

// Fuzz-ish: many small random graphs, no panics, invariants hold.
func TestRunManySmallGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		cells := 20 + r.Intn(60)
		g := testGraph(t, cells, int64(100+i), r.Float64()*0.8)
		st, _, err := Bipartition(g, Options{Config: equalCfg(g, r.Intn(3)-1, int64(i)), Starts: 1})
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}

// FlowRefine (the exact max-flow replication pull) must never worsen
// the FM+FR result and must keep the state valid and within bounds.
func TestFlowRefineImprovesOrMatches(t *testing.T) {
	var frSum, flowSum int
	for seed := int64(0); seed < 4; seed++ {
		g := testGraph(t, 200, 40+seed, 0.6)
		cfg := equalCfg(g, 0, seed)
		cfg.MaxArea = [2]int{cfg.MaxArea[0] * 11 / 10, cfg.MaxArea[1] * 11 / 10}

		stFR, err := replication.NewState(g, RandomAssign(g, seed))
		if err != nil {
			t.Fatal(err)
		}
		resFR, err := Run(stFR, cfg)
		if err != nil {
			t.Fatal(err)
		}

		cfgFlow := cfg
		cfgFlow.FlowRefine = true
		stFlow, err := replication.NewState(g, RandomAssign(g, seed))
		if err != nil {
			t.Fatal(err)
		}
		resFlow, err := Run(stFlow, cfgFlow)
		if err != nil {
			t.Fatal(err)
		}
		if resFlow.Cut > resFR.Cut {
			t.Fatalf("seed %d: flow refine worsened cut: %d > %d", seed, resFlow.Cut, resFR.Cut)
		}
		for b := replication.Block(0); b < 2; b++ {
			if a := stFlow.Area(b); a < cfg.MinArea[b] || a > cfg.MaxArea[b] {
				t.Fatalf("seed %d: block %d area %d outside bounds", seed, b, a)
			}
		}
		if err := stFlow.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		frSum += resFR.Cut
		flowSum += resFlow.Cut
	}
	t.Logf("FM+FR cut sum %d, with flow refine %d", frSum, flowSum)
}

// Multilevel (cluster-project) initial partitions must be valid and,
// in aggregate, at least as good a starting point as random ones.
func TestMultilevelAssign(t *testing.T) {
	g := testGraph(t, 300, 60, 0.5)
	assign, err := MultilevelAssign(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != g.NumCells() {
		t.Fatalf("assignment over %d cells", len(assign))
	}
	stML, err := replication.NewState(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	stRnd, err := replication.NewState(g, RandomAssign(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	if stML.CutSize() >= stRnd.CutSize() {
		t.Fatalf("multilevel initial cut %d not better than random %d", stML.CutSize(), stRnd.CutSize())
	}
	// And the fine FM can run from it (loosened bounds: projection can
	// be slightly unbalanced).
	minA, maxA := Balance(g.TotalArea(), 0.15)
	if stML.Area(0) >= minA[0] && stML.Area(0) <= maxA[0] {
		if _, err := Run(stML, Config{MinArea: minA, MaxArea: maxA, Threshold: 0, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		if err := stML.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterAssignHitsTargetArea(t *testing.T) {
	g := testGraph(t, 200, 70, 0.6)
	target := g.TotalArea() / 3
	assign := ClusterAssign(g, 5, target)
	area := 0
	for ci, b := range assign {
		if b == 0 {
			area += g.Cells[ci].Area
		}
	}
	if area != target {
		t.Fatalf("cluster area = %d, want %d (unit-area cells)", area, target)
	}
	// A cluster-grown block should have a smaller boundary than a
	// random block of the same size.
	stC, err := replication.NewState(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	rnd := make([]replication.Block, g.NumCells())
	for i := range rnd {
		if i >= target {
			rnd[i] = 1
		}
	}
	// Shuffle deterministically for a fair random block.
	r := rand.New(rand.NewSource(5))
	r.Shuffle(len(rnd), func(i, j int) { rnd[i], rnd[j] = rnd[j], rnd[i] })
	stR, err := replication.NewState(g, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if stC.CutSize() >= stR.CutSize() {
		t.Fatalf("cluster cut %d not below random cut %d", stC.CutSize(), stR.CutSize())
	}
}

func TestClusterAssignFromExplicitSeed(t *testing.T) {
	g := testGraph(t, 100, 71, 0.5)
	assign := ClusterAssignFrom(g, 1, hypergraph.CellID(0), 10)
	if assign[0] != 0 {
		t.Fatal("start cell not in block 0")
	}
	n0 := 0
	for _, b := range assign {
		if b == 0 {
			n0++
		}
	}
	if n0 != 10 {
		t.Fatalf("block 0 has %d cells, want 10", n0)
	}
}

func TestClusterAssignDegenerate(t *testing.T) {
	g := testGraph(t, 20, 72, 0.5)
	assign := ClusterAssign(g, 1, 0)
	for _, b := range assign {
		if b != 1 {
			t.Fatal("zero target should leave everything in block 1")
		}
	}
	// Target beyond total pulls everything into block 0.
	assign = ClusterAssign(g, 1, g.TotalArea()+5)
	for _, b := range assign {
		if b != 0 {
			t.Fatal("oversized target should pull all cells")
		}
	}
}
