package fm

import (
	"math/rand"

	"fpgapart/internal/cluster"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

// MultilevelAssign produces an initial bipartition by clustering the
// graph (heavy-edge matching), bipartitioning the coarse hypergraph
// with plain FM, and projecting the result back — the "combine with
// clustering [17]" scheme from the paper's conclusion. The returned
// assignment seeds the fine-level engine.
func MultilevelAssign(g *hypergraph.Graph, seed int64) ([]replication.Block, error) {
	cl, err := cluster.Build(g, cluster.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	coarse := cl.Graph
	minA, maxA := Balance(coarse.TotalArea(), 0.10)
	st, _, err := Bipartition(coarse, Options{
		Config: Config{MinArea: minA, MaxArea: maxA, Threshold: NoReplication, Seed: seed},
		Starts: 2,
	})
	if err != nil {
		return nil, err
	}
	coarseAssign := make([]replication.Block, coarse.NumCells())
	for ci := range coarseAssign {
		coarseAssign[ci] = st.Home(hypergraph.CellID(ci))
	}
	assign, err := cl.Project(coarseAssign, g.NumCells())
	if err != nil {
		return nil, err
	}
	rebalance(g, assign, seed)
	return assign, nil
}

// rebalance nudges the assignment toward an even split (cluster lumps
// can leave the projection outside tight FM bounds); the fine FM pass
// recovers any cut damage.
func rebalance(g *hypergraph.Graph, assign []replication.Block, seed int64) {
	var area [2]int
	for ci, b := range assign {
		area[b] += g.Cells[ci].Area
	}
	half := g.TotalArea() / 2
	r := rand.New(rand.NewSource(seed ^ 0x5f5f))
	perm := r.Perm(len(assign))
	for _, ci := range perm {
		heavy := replication.Block(0)
		if area[1] > area[0] {
			heavy = 1
		}
		if area[heavy] <= half {
			break
		}
		if assign[ci] == heavy {
			assign[ci] = heavy.Other()
			area[heavy] -= g.Cells[ci].Area
			area[heavy.Other()] += g.Cells[ci].Area
		}
	}
}
