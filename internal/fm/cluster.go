package fm

import (
	"math/rand"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

// ClusterAssign produces an initial bipartition by growing a connected
// cluster: starting from a random cell, breadth-first over nets, cells
// are pulled into block 0 until it reaches targetArea; the rest go to
// block 1. Connected seeds give FM a far better starting cut than a
// random split, which matters for the carve-out steps of the k-way
// partitioner.
func ClusterAssign(g *hypergraph.Graph, seed int64, targetArea int) []replication.Block {
	return ClusterAssignFrom(g, seed, -1, targetArea)
}

// ClusterAssignFrom is ClusterAssign with an explicit start cell; pass
// -1 to pick a peripheral cell (one touching an external net), which
// produces carves with a single boundary instead of an island with two.
func ClusterAssignFrom(g *hypergraph.Graph, seed int64, start hypergraph.CellID, targetArea int) []replication.Block {
	var cs ClusterScratch
	return cs.AssignInto(nil, g, seed, start, targetArea)
}

// ClusterScratch holds the reusable buffers of the cluster-growing
// assignment. A zero value is ready to use; reusing one across calls on
// graphs of similar size eliminates all steady-state allocations.
type ClusterScratch struct {
	visited  []bool
	queue    []hypergraph.CellID
	netSeen  []uint32 // per net: epoch stamp for duplicate suppression
	cellSeen []uint32 // per cell: epoch stamp (peripheral scan)
	periph   []hypergraph.CellID
	epoch    uint32
}

func (cs *ClusterScratch) grow(numCells, numNets int) {
	if cap(cs.visited) < numCells {
		cs.visited = make([]bool, numCells)
		cs.cellSeen = make([]uint32, numCells)
	}
	cs.visited = cs.visited[:numCells]
	cs.cellSeen = cs.cellSeen[:numCells]
	for i := range cs.visited {
		cs.visited[i] = false
	}
	if cap(cs.netSeen) < numNets {
		cs.netSeen = make([]uint32, numNets)
	}
	cs.netSeen = cs.netSeen[:numNets]
	cs.epoch++
	if cs.epoch == 0 {
		for i := range cs.netSeen {
			cs.netSeen[i] = 0
		}
		for i := range cs.cellSeen {
			cs.cellSeen[i] = 0
		}
		cs.epoch = 1
	}
	cs.queue = cs.queue[:0]
}

// AssignInto is ClusterAssignFrom writing into assign (grown when too
// small) and reusing the scratch buffers; it returns the assignment
// slice.
func (cs *ClusterScratch) AssignInto(assign []replication.Block, g *hypergraph.Graph, seed int64, start hypergraph.CellID, targetArea int) []replication.Block {
	r := rand.New(rand.NewSource(seed))
	n := g.NumCells()
	if cap(assign) < n {
		assign = make([]replication.Block, n)
	}
	assign = assign[:n]
	for i := range assign {
		assign[i] = 1
	}
	if targetArea <= 0 || n == 0 {
		return assign
	}
	cs.grow(n, g.NumNets())
	if start < 0 {
		start = cs.peripheralCell(g, r)
	}
	area := 0
	enqueue := func(c hypergraph.CellID) {
		if !cs.visited[c] {
			cs.visited[c] = true
			cs.queue = append(cs.queue, c)
		}
	}
	// visitNets walks the cell's distinct nets in pin order (outputs
	// first), enqueuing every connected cell — the allocation-free
	// equivalent of ranging over g.CellNets(c).
	visitNet := func(net hypergraph.NetID) {
		if cs.netSeen[net] == cs.epoch {
			return
		}
		cs.netSeen[net] = cs.epoch
		if len(g.Nets[net].Conns) > 32 {
			// Skip very high fanout nets (clock-like); they do not
			// indicate locality.
			return
		}
		for _, cn := range g.Nets[net].Conns {
			enqueue(cn.Cell)
		}
	}
	enqueue(start)
	for area < targetArea {
		if len(cs.queue) == 0 {
			// Disconnected remainder: restart from an unvisited cell.
			rest := -1
			for i := 0; i < n; i++ {
				if !cs.visited[i] {
					rest = i
					break
				}
			}
			if rest < 0 {
				break
			}
			enqueue(hypergraph.CellID(rest))
			continue
		}
		// Pop a random frontier element for variety across seeds.
		idx := r.Intn(len(cs.queue))
		c := cs.queue[idx]
		cs.queue[idx] = cs.queue[len(cs.queue)-1]
		cs.queue = cs.queue[:len(cs.queue)-1]
		if area+g.Cells[c].Area > targetArea && area > 0 {
			continue
		}
		assign[c] = 0
		area += g.Cells[c].Area
		cell := &g.Cells[c]
		for _, net := range cell.Outputs {
			visitNet(net)
		}
		for _, net := range cell.Inputs {
			if net != hypergraph.NilNet {
				visitNet(net)
			}
		}
	}
	return assign
}

// peripheralCell picks a random cell adjacent to an external net, or
// any cell when the circuit has no terminals.
func (cs *ClusterScratch) peripheralCell(g *hypergraph.Graph, r *rand.Rand) hypergraph.CellID {
	cs.periph = cs.periph[:0]
	for ni := range g.Nets {
		if g.Nets[ni].Ext == hypergraph.Internal {
			continue
		}
		for _, cn := range g.Nets[ni].Conns {
			if cs.cellSeen[cn.Cell] != cs.epoch {
				cs.cellSeen[cn.Cell] = cs.epoch
				cs.periph = append(cs.periph, cn.Cell)
			}
		}
	}
	if len(cs.periph) == 0 {
		return hypergraph.CellID(r.Intn(g.NumCells()))
	}
	return cs.periph[r.Intn(len(cs.periph))]
}
