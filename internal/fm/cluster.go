package fm

import (
	"math/rand"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

// ClusterAssign produces an initial bipartition by growing a connected
// cluster: starting from a random cell, breadth-first over nets, cells
// are pulled into block 0 until it reaches targetArea; the rest go to
// block 1. Connected seeds give FM a far better starting cut than a
// random split, which matters for the carve-out steps of the k-way
// partitioner.
func ClusterAssign(g *hypergraph.Graph, seed int64, targetArea int) []replication.Block {
	return ClusterAssignFrom(g, seed, -1, targetArea)
}

// ClusterAssignFrom is ClusterAssign with an explicit start cell; pass
// -1 to pick a peripheral cell (one touching an external net), which
// produces carves with a single boundary instead of an island with two.
func ClusterAssignFrom(g *hypergraph.Graph, seed int64, start hypergraph.CellID, targetArea int) []replication.Block {
	r := rand.New(rand.NewSource(seed))
	n := g.NumCells()
	assign := make([]replication.Block, n)
	for i := range assign {
		assign[i] = 1
	}
	if targetArea <= 0 || n == 0 {
		return assign
	}
	if start < 0 {
		start = peripheralCell(g, r)
	}
	visited := make([]bool, n)
	queue := make([]hypergraph.CellID, 0, n)
	area := 0
	enqueue := func(c hypergraph.CellID) {
		if !visited[c] {
			visited[c] = true
			queue = append(queue, c)
		}
	}
	enqueue(start)
	for area < targetArea {
		if len(queue) == 0 {
			// Disconnected remainder: restart from an unvisited cell.
			rest := -1
			for i := 0; i < n; i++ {
				if !visited[i] {
					rest = i
					break
				}
			}
			if rest < 0 {
				break
			}
			enqueue(hypergraph.CellID(rest))
			continue
		}
		// Pop a random frontier element for variety across seeds.
		idx := r.Intn(len(queue))
		c := queue[idx]
		queue[idx] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if area+g.Cells[c].Area > targetArea && area > 0 {
			continue
		}
		assign[c] = 0
		area += g.Cells[c].Area
		for _, net := range g.CellNets(c) {
			if len(g.Nets[net].Conns) > 32 {
				// Skip very high fanout nets (clock-like); they do not
				// indicate locality.
				continue
			}
			for _, cn := range g.Nets[net].Conns {
				enqueue(cn.Cell)
			}
		}
	}
	return assign
}

// peripheralCell picks a random cell adjacent to an external net, or
// any cell when the circuit has no terminals.
func peripheralCell(g *hypergraph.Graph, r *rand.Rand) hypergraph.CellID {
	var periph []hypergraph.CellID
	seen := make(map[hypergraph.CellID]bool)
	for ni := range g.Nets {
		if g.Nets[ni].Ext == hypergraph.Internal {
			continue
		}
		for _, cn := range g.Nets[ni].Conns {
			if !seen[cn.Cell] {
				seen[cn.Cell] = true
				periph = append(periph, cn.Cell)
			}
		}
	}
	if len(periph) == 0 {
		return hypergraph.CellID(r.Intn(g.NumCells()))
	}
	return periph[r.Intn(len(periph))]
}
