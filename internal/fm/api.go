package fm

import (
	"fmt"
	"math"
	"math/rand"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

// RandomAssign produces an area-balanced random initial bipartition:
// cells are shuffled and assigned to block 0 until it holds half the
// total area.
func RandomAssign(g *hypergraph.Graph, seed int64) []replication.Block {
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(g.NumCells())
	half := g.TotalArea() / 2
	assign := make([]replication.Block, g.NumCells())
	acc := 0
	for _, ci := range perm {
		if acc < half {
			assign[ci] = 0
			acc += g.Cells[ci].Area
		} else {
			assign[ci] = 1
		}
	}
	return assign
}

// Balance returns symmetric [min,max] area bounds for an equal
// bipartition of the given total area with slack eps (e.g. eps=0.05
// allows each block 45–55% of the total). Replication can push a
// block's active area above total/2, which the max bound absorbs.
func Balance(totalArea int, eps float64) (minArea, maxArea [2]int) {
	lo := int(math.Floor(float64(totalArea)*(0.5-eps) + 1e-9))
	hi := int(math.Ceil(float64(totalArea)*(0.5+eps) - 1e-9))
	if lo < 0 {
		lo = 0
	}
	if hi < 1 {
		hi = 1
	}
	return [2]int{lo, lo}, [2]int{hi, hi}
}

// Options configures a multi-start bipartition.
type Options struct {
	Config
	// Starts is the number of random initial partitions tried
	// (default 1). The best final cut wins.
	Starts int
}

// Bipartition runs multi-start FM on the graph and returns the best
// resulting state and its run summary.
func Bipartition(g *hypergraph.Graph, opts Options) (*replication.State, Result, error) {
	if opts.Starts <= 0 {
		opts.Starts = 1
	}
	var bestState *replication.State
	bestCut, totPasses, totMoves := 0, 0, 0
	var runner Runner // engine buffers shared across starts
	for s := 0; s < opts.Starts; s++ {
		cfg := opts.Config
		cfg.Seed = opts.Seed + int64(s)*7919
		st, err := replication.NewState(g, RandomAssign(g, cfg.Seed))
		if err != nil {
			return nil, Result{}, err
		}
		res, err := runner.Run(st, cfg)
		if err != nil {
			return nil, Result{}, fmt.Errorf("fm: start %d: %w", s, err)
		}
		totPasses += res.Passes
		totMoves += res.Moves
		if bestState == nil || res.Cut < bestCut {
			bestState, bestCut = st, res.Cut
		}
	}
	return bestState, Result{Cut: bestCut, Passes: totPasses, Moves: totMoves}, nil
}
