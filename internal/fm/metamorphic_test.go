package fm

import (
	"testing"

	"fpgapart/internal/replication"
)

// Metamorphic properties of a single FM run. Both follow from the
// engine's structure — the replicated run's first phase is exactly the
// plain run, and every later pass rolls back to its best prefix — so
// they must hold deterministically, per run, not just in aggregate.

// TestReplicationNeverWorsensSameStart: from the same initial
// assignment and bounds, enabling replication moves can never end with
// a larger cut than plain FM.
func TestReplicationNeverWorsensSameStart(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := testGraph(t, 150, 30+seed, 0.55)
		run := func(threshold int) int {
			st, err := replication.NewState(g, RandomAssign(g, seed))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(st, equalCfg(g, threshold, seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("seed %d T=%d: %v", seed, threshold, err)
			}
			return res.Cut
		}
		plain := run(NoReplication)
		for _, threshold := range []int{0, 2} {
			if repl := run(threshold); repl > plain {
				t.Fatalf("seed %d: T=%d cut %d worse than plain cut %d from the same start",
					seed, threshold, repl, plain)
			}
		}
	}
}

// TestFlowRefineNeverIncreasesCut: the max-flow pull only applies when
// it strictly improves, so turning FlowRefine on can never worsen the
// result of an otherwise identical run.
func TestFlowRefineNeverIncreasesCut(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := testGraph(t, 150, 40+seed, 0.6)
		for _, threshold := range []int{NoReplication, 0} {
			run := func(flow bool) int {
				st, err := replication.NewState(g, RandomAssign(g, seed))
				if err != nil {
					t.Fatal(err)
				}
				cfg := equalCfg(g, threshold, seed)
				cfg.FlowRefine = flow
				res, err := Run(st, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("seed %d T=%d flow=%v: %v", seed, threshold, flow, err)
				}
				return res.Cut
			}
			base := run(false)
			if flow := run(true); flow > base {
				t.Fatalf("seed %d T=%d: FlowRefine worsened cut %d -> %d",
					seed, threshold, base, flow)
			}
		}
	}
}
