package fm

import (
	"testing"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
	"fpgapart/internal/telemetry"
	"fpgapart/internal/trace"
)

// A steady-state FM pass must not allocate: the gain buckets are a
// fixed node pool, candidate gains come from the state's maintained
// values or its reusable scratch, rollback restores a pre-sized
// checkpoint, and every growable buffer has reached its high-water mark
// after the warm-up run. The trace sink must not break this: the nil
// (zero-sink) path costs a predicted branch, and the aggregating sink's
// per-pass event is a stack-built value consumed by atomic adds.
func TestFMPassAllocs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		threshold int
		replOnly  bool
		sink      trace.Sink
	}{
		{"plain", NoReplication, false, nil},
		{"replication", 0, false, nil},
		{"replication-only", 0, true, nil},
		{"plain-traced", NoReplication, false, &trace.Agg{}},
		{"replication-traced", 0, false, &trace.Agg{}},
		// The telemetry bridge (histograms + counters) must be as
		// allocation-free on the pass loop as the aggregating sink.
		{"bridge-traced", NoReplication, false, telemetry.NewBridge(telemetry.NewRegistry())},
		{"bridge-replication", 0, false, telemetry.NewBridge(telemetry.NewRegistry())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, 300, 5, 0.5)
			st, err := replication.NewState(g, RandomAssign(g, 5))
			if err != nil {
				t.Fatal(err)
			}
			var r Runner
			cfg := equalCfg(g, tc.threshold, 5)
			cfg.Trace = tc.sink
			if _, err := r.Run(st, cfg); err != nil {
				t.Fatal(err)
			}
			// The run above converged and warmed every buffer. A further
			// pass applies moves and rolls them all back, so it is
			// repeatable — exactly the steady state the engine lives in.
			e := &r.e
			e.cfg = cfg.withDefaults()
			e.replOnly = tc.replOnly
			// Bracket each pass with the disarmed span scope exactly as
			// the phase loop does: a zero Scope must cost a predicted
			// branch, never an allocation.
			if avg := testing.AllocsPerRun(5, func() {
				run := e.cfg.Spans.Start("fm-pass", e.cfg.TraceAttempt)
				e.pass()
				run.End()
			}); avg != 0 {
				t.Fatalf("steady-state pass allocates %v times", avg)
			}
		})
	}
}

// BenchmarkGainUpdate compares the cost of keeping single-move gains
// current across one applied move: the incremental criticality-delta
// maintenance (folded into Apply/Undo) against the semantic
// recomputation over the touched neighborhood that a bucket refresh
// previously required.
func BenchmarkGainUpdate(b *testing.B) {
	g := testGraph(b, 600, 11, 0.5)
	st, err := replication.NewState(g, RandomAssign(g, 11))
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumCells()
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := hypergraph.CellID(i % n)
			tok, err := st.Apply(replication.Move{Cell: c, Kind: replication.SingleMove})
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Undo(tok); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		var buf []hypergraph.CellID
		for i := 0; i < b.N; i++ {
			c := hypergraph.CellID(i % n)
			tok, err := st.Apply(replication.Move{Cell: c, Kind: replication.SingleMove})
			if err != nil {
				b.Fatal(err)
			}
			buf = st.TouchedCells(c, buf)
			for _, t := range buf {
				_ = st.MustGain(replication.Move{Cell: t, Kind: replication.SingleMove})
			}
			if err := st.Undo(tok); err != nil {
				b.Fatal(err)
			}
		}
	})
}
