package fm

import (
	"testing"

	"fpgapart/internal/replication"
	"fpgapart/internal/topology"
	"fpgapart/internal/trace"
)

// boardWeights derives a per-net weight table the way the k-way engine
// does for a carve between board slots 0 and 1: each net gets a
// deterministic pseudo-random "already placed" span over the remaining
// slots, and the weights are the marginal Steiner costs of extending
// that span to slot 0, slot 1, or both. This produces the full range
// of weighted behavior — zero rows, asymmetric Alone costs, and
// negative marginals (a new slot can shorten a Steiner detour).
func boardWeights(t *testing.T, b *topology.Board, nets int) []replication.NetWeights {
	t.Helper()
	w := make([]replication.NetWeights, nets)
	for i := range w {
		var span topology.SlotSet
		// Pre-place on slots 2..Slots-1 by a fixed mixing pattern.
		for s := 2; s < b.Slots; s++ {
			if (i*7+s*13)%3 == 0 {
				span = span.Add(s)
			}
		}
		base := b.SpanCost(span)
		w[i] = replication.NetWeights{
			Alone: [2]int32{
				int32(b.SpanCost(span.Add(0)) - base),
				int32(b.SpanCost(span.Add(1)) - base),
			},
			Both: int32(b.SpanCost(span.Add(0).Add(1)) - base),
		}
	}
	return w
}

// invariantSink cross-checks the incrementally maintained weighted
// objective against a from-scratch recount after every completed FM
// pass. Pass events are emitted synchronously from the engine between
// passes (after the best-prefix rollback), so reading the state here
// races with nothing.
type invariantSink struct {
	t      *testing.T
	st     *replication.State
	passes int
}

func (s *invariantSink) Event(e trace.Event) {
	if e.Kind != trace.KindFMPass {
		return
	}
	s.passes++
	if err := s.st.CheckInvariants(); err != nil {
		s.t.Errorf("after pass %d: %v", e.Pass, err)
	}
}

// TestWeightedRunMatchesRecount is the incremental-vs-recount
// differential for the topology objective: an FM run (serial and
// parallel sub-round engines, with and without replication) on a
// board-weighted state must keep the maintained TopologyCost equal to
// an independent recount at every pass boundary, and must not increase
// the weighted objective overall.
func TestWeightedRunMatchesRecount(t *testing.T) {
	board, err := topology.Mesh(2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name          string
		threshold     int
		refineWorkers int
	}{
		{"serial", NoReplication, 0},
		{"serial-replication", 4, 0},
		{"parallel", NoReplication, 3},
		{"parallel-replication", 4, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, 220, 5, 0.5)
			st, err := replication.NewState(g, RandomAssign(g, 9))
			if err != nil {
				t.Fatal(err)
			}
			if err := st.SetNetWeights(boardWeights(t, board, g.NumNets())); err != nil {
				t.Fatal(err)
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("after SetNetWeights: %v", err)
			}
			before := st.Objective()
			sink := &invariantSink{t: t, st: st}
			cfg := equalCfg(g, tc.threshold, 17)
			cfg.Trace = sink
			cfg.TraceAttempt = -1
			cfg.RefineWorkers = tc.refineWorkers
			if _, err := Run(st, cfg); err != nil {
				t.Fatal(err)
			}
			if sink.passes == 0 {
				t.Fatal("no FM pass events recorded — differential never ran")
			}
			if st.Objective() > before {
				t.Fatalf("weighted objective increased: %d -> %d", before, st.Objective())
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("after run: %v", err)
			}
			t.Logf("passes=%d objective %d -> %d", sink.passes, before, st.Objective())
		})
	}
}

// TestWeightedNilRevertsToCut pins the gate: installing and then
// removing a weight table leaves the state on the classic cut
// objective with TopologyCost zeroed.
func TestWeightedNilRevertsToCut(t *testing.T) {
	g := testGraph(t, 80, 6, 0.4)
	st, err := replication.NewState(g, RandomAssign(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	board, err := topology.Crossbar(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetNetWeights(boardWeights(t, board, g.NumNets())); err != nil {
		t.Fatal(err)
	}
	if !st.Weighted() || st.Objective() != st.TopologyCost() {
		t.Fatal("weight table not armed")
	}
	if err := st.SetNetWeights(nil); err != nil {
		t.Fatal(err)
	}
	if st.Weighted() || st.TopologyCost() != 0 || st.Objective() != st.CutSize() {
		t.Fatalf("nil weights did not revert: weighted=%v topo=%d obj=%d cut=%d",
			st.Weighted(), st.TopologyCost(), st.Objective(), st.CutSize())
	}
}
