// Package fm implements the Fiduccia–Mattheyses min-cut bipartitioning
// heuristic [15] and its extension with functional replication
// (Kužnar et al., DAC'94, Section III.D). A pass repeatedly applies
// the best feasible candidate move — single cell move, functional
// replication with the best output split, or unreplication — locking
// each cell after it participates once, and finally rolls back to the
// best prefix. Passes repeat until a pass yields no improvement.
//
// The gain buckets are the classic intrusive doubly-linked structure:
// every candidate move of every cell owns a fixed slot in a node pool
// sized once per graph, and bucket membership is a head pointer per
// gain value plus prev/next links in the nodes. Removal and reinsertion
// are O(1), the buckets never hold stale entries, and a steady-state
// pass performs no heap allocations (see TestFMPassAllocs).
package fm

import (
	"fmt"
	"math/rand"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/parfm"
	"fpgapart/internal/replication"
	"fpgapart/internal/span"
	"fpgapart/internal/trace"
)

// NoReplication disables replication moves when used as the Threshold.
const NoReplication = -1

// Config controls one bipartitioning run.
type Config struct {
	// MinArea/MaxArea bound the active cell area of each block; a move
	// is feasible only if both blocks stay within bounds afterwards.
	MinArea [2]int
	MaxArea [2]int
	// Threshold is the replication potential threshold T (Eq. 6):
	// multi-output cells with ψ ≥ T may replicate. NoReplication (-1)
	// disables replication entirely (plain FM).
	Threshold int
	// MaxPasses caps FM passes (default 24).
	MaxPasses int
	// RefineWorkers selects the refinement engine. Values >= 2 run the
	// deterministic parallel sub-round engine (package parfm) with
	// that many proposal workers; 0 or 1 run the classic serial engine
	// and are byte-identical to previous releases, traces included.
	// The parallel engine is equally deterministic — the partition is
	// identical for every RefineWorkers value >= 2 and independent of
	// GOMAXPROCS — but its pass schedule differs from the serial
	// engine's, so the two classes reach different (equally valid)
	// partitions from the same seed.
	RefineWorkers int
	// FlowRefine runs the exact max-flow replication pull
	// (replication.OptimalPull, the paper's suggested combination with
	// [4]) in both directions after the FM phases converge.
	FlowRefine bool
	// Seed orders candidate insertion for tie-breaking.
	Seed int64
	// Trace, when non-nil, receives one KindFMPass event per completed
	// pass. The nil path costs a single predicted branch, keeping the
	// steady-state pass allocation-free (see TestFMPassAllocs).
	Trace trace.Sink
	// TraceAttempt labels emitted events with the enclosing solution
	// attempt index; use -1 for standalone runs.
	TraceAttempt int
	// Spans, when armed, times every pass as an "fm-pass" span in the
	// enclosing attempt's trace. The disarmed zero value costs a
	// single predicted branch per pass, keeping the steady-state pass
	// allocation-free (see TestFMPassAllocs). Span clock readings feed
	// only the trace, never search decisions.
	Spans span.Scope
	// Inject, when non-nil, consults the fault plan at every pass
	// boundary (faultinject.SitePass, ordinal = pass sequence within
	// the run, labeled with TraceAttempt). Testing only; nil in
	// production keeps the pass loop allocation-free.
	Inject *faultinject.Plan
}

func (c Config) withDefaults() Config {
	if c.MaxPasses == 0 {
		c.MaxPasses = 24
	}
	return c
}

// Result summarizes a run.
type Result struct {
	Cut    int // final cut size
	Passes int
	Moves  int // applied moves across all passes (before rollbacks)
}

const nilNode = int32(-1)

// node is one candidate move's slot in the gain-bucket pool. A node is
// in a bucket iff bucket >= 0; prev/next link it into that bucket's
// doubly-linked list (prev == nilNode at the head).
type node struct {
	move   replication.Move
	prev   int32
	next   int32
	bucket int32
}

// engine holds the per-run mutable state. The pool/base slot layout and
// bucket head array are graph-derived and reused across runs on the
// same graph (see bind), which is what makes carve retries in the k-way
// partitioner allocation-free after warm-up.
type engine struct {
	st       *replication.State
	cfg      Config
	gainOf   int // bucket offset = max |gain| (st.MaxMoveGain)
	pool     []node
	base     []int32 // per cell: first pool slot; base[n] = len(pool)
	head     []int32 // per bucket: first node, nilNode when empty
	maxPtr   int
	locked   []bool
	order    []hypergraph.CellID
	scratch  []hypergraph.CellID
	best     replication.Checkpoint // per-pass best-prefix snapshot
	replOnly bool
	passSeq  int // pass counter for trace events, reset per Run
}

// Per-cell slot layout (see bind): single-output cells get one slot
// (the single move); multi-output cells additionally get the two
// unreplication merges and one slot per candidate carry mask.
const (
	slotSingle = 0
	slotUnrep0 = 1
	slotUnrep1 = 2
	slotSplit0 = 3
)

// Runner executes FM runs, reusing the engine's pool, bucket and
// scratch buffers across runs. A zero Runner is ready to use; a Runner
// is not safe for concurrent use. The package-level Run is a
// convenience for one-shot use.
type Runner struct {
	e   engine
	par parfm.Runner
}

// Run improves the bipartition state in place and returns the result.
// The state may contain replicated cells from previous runs; they are
// kept and remain subject to unreplication moves.
func Run(st *replication.State, cfg Config) (Result, error) {
	var r Runner
	return r.Run(st, cfg)
}

// bind points the engine at a state, rebuilding the graph-derived slot
// layout only when the graph (or its objective's gain bound) changed
// since the previous run. For the classic objective MaxMoveGain equals
// MaxCellDegree, so flat-path rebinding is unchanged.
func (e *engine) bind(st *replication.State) {
	g := st.Graph()
	if e.st != nil && e.st.Graph() == g && e.gainOf == st.MaxMoveGain() {
		e.st = st
		return
	}
	e.st = st
	n := g.NumCells()
	e.gainOf = st.MaxMoveGain()
	e.head = make([]int32, 2*e.gainOf+1)
	e.base = make([]int32, n+1)
	slots := 0
	for ci := 0; ci < n; ci++ {
		e.base[ci] = int32(slots)
		if len(g.Cells[ci].Outputs) > 1 {
			slots += slotSplit0 + len(st.Splits(hypergraph.CellID(ci)))
		} else {
			slots++
		}
	}
	e.base[n] = int32(slots)
	e.pool = make([]node, slots)
	for ci := 0; ci < n; ci++ {
		c := hypergraph.CellID(ci)
		b := e.base[ci]
		e.pool[b+slotSingle] = node{move: replication.Move{Cell: c, Kind: replication.SingleMove}, bucket: nilNode}
		if len(g.Cells[ci].Outputs) > 1 {
			e.pool[b+slotUnrep0] = node{move: replication.Move{Cell: c, Kind: replication.Unreplicate, To: 0}, bucket: nilNode}
			e.pool[b+slotUnrep1] = node{move: replication.Move{Cell: c, Kind: replication.Unreplicate, To: 1}, bucket: nilNode}
			for i, carry := range st.Splits(c) {
				e.pool[b+slotSplit0+int32(i)] = node{move: replication.Move{Cell: c, Kind: replication.Replicate, Carry: carry}, bucket: nilNode}
			}
		}
	}
	e.locked = make([]bool, n)
	e.order = make([]hypergraph.CellID, n)
}

// Run is the Runner form of the package-level Run, reusing buffers
// from previous runs on the same graph.
func (r *Runner) Run(st *replication.State, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.RefineWorkers >= 2 {
		// Parallel sub-round engine. It shares the FM phase structure
		// and validation; only the pass scheduling differs. FlowRefine
		// stays here so both engines compose with the max-flow pull
		// identically.
		pres, err := r.par.Run(st, parfm.Config{
			MinArea: cfg.MinArea, MaxArea: cfg.MaxArea,
			Threshold: cfg.Threshold, MaxPasses: cfg.MaxPasses,
			Workers: cfg.RefineWorkers, Seed: cfg.Seed,
			Trace: cfg.Trace, TraceAttempt: cfg.TraceAttempt,
			Spans:  cfg.Spans,
			Inject: cfg.Inject,
		})
		res := Result{Cut: pres.Cut, Passes: pres.Passes, Moves: pres.Moves}
		if err != nil {
			return res, err
		}
		if cfg.FlowRefine {
			if err := flowRefine(st, cfg); err != nil {
				return res, err
			}
			res.Cut = st.CutSize()
		}
		return res, nil
	}
	if cfg.MaxArea[0] <= 0 || cfg.MaxArea[1] <= 0 {
		return Result{}, fmt.Errorf("fm: MaxArea must be positive, got %v", cfg.MaxArea)
	}
	if cfg.MinArea[0] < 0 || cfg.MinArea[1] < 0 {
		return Result{}, fmt.Errorf("fm: MinArea must be non-negative, got %v", cfg.MinArea)
	}
	for b := 0; b < 2; b++ {
		if st.Area(replication.Block(b)) > cfg.MaxArea[b] || st.Area(replication.Block(b)) < cfg.MinArea[b] {
			return Result{}, fmt.Errorf("fm: initial area %d of block %d outside [%d,%d]",
				st.Area(replication.Block(b)), b, cfg.MinArea[b], cfg.MaxArea[b])
		}
	}
	e := &r.e
	e.bind(st)
	e.cfg = cfg
	e.passSeq = 0
	for i := range e.order {
		e.order[i] = hypergraph.CellID(i)
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	rnd.Shuffle(len(e.order), func(i, j int) { e.order[i], e.order[j] = e.order[j], e.order[i] })

	// Phase 1: plain FM passes to convergence. Phase 2 (when
	// replication is enabled): passes that also offer replication and
	// unreplication moves, refining the converged min-cut solution —
	// the paper extends the original min-cut algorithm [15] this way,
	// and each pass's best-prefix rollback guarantees phase 2 never
	// worsens the phase-1 cut.
	res := Result{Cut: st.CutSize()}
	// A fault injected at a pass boundary aborts the run with its typed
	// error (panic faults propagate to the search layer's containment);
	// injectErr carries it out of the phase closure.
	var injectErr error
	phase := func(threshold int, replOnly bool) bool {
		e.cfg.Threshold = threshold
		e.replOnly = replOnly
		any := false
		for pass := 0; pass < cfg.MaxPasses; pass++ {
			if cfg.Inject != nil {
				if err := cfg.Inject.At(faultinject.SitePass, cfg.TraceAttempt, res.Passes, cfg.Seed); err != nil {
					injectErr = err
					return any
				}
			}
			run := cfg.Spans.Start("fm-pass", cfg.TraceAttempt)
			improved, moves := e.pass()
			run.End()
			res.Passes++
			res.Moves += moves
			if !improved {
				break
			}
			any = true
		}
		return any
	}
	if cfg.Threshold == NoReplication {
		phase(NoReplication, false)
	} else {
		// Alternate until a full plain+replication round is dry. The
		// replication phase restricts the move universe to replicate/
		// unreplicate so that cut-neutral single moves cannot crowd out
		// replication opportunities; the following plain phase then
		// re-optimizes positions.
		for round := 0; round < cfg.MaxPasses; round++ {
			p := phase(NoReplication, false)
			rr := phase(cfg.Threshold, true)
			if (!p && !rr) || injectErr != nil {
				break
			}
		}
	}
	if injectErr != nil {
		res.Cut = st.CutSize()
		return res, injectErr
	}
	if cfg.FlowRefine {
		if err := flowRefine(st, cfg); err != nil {
			return res, err
		}
	}
	res.Cut = st.CutSize()
	return res, nil
}

// flowRefine applies the exact replication pull in both directions
// until neither improves, rolling back any pull that violates the area
// bounds (OptimalPull only budgets the growing block).
func flowRefine(st *replication.State, cfg Config) error {
	for {
		improved := false
		for b := replication.Block(0); b < 2; b++ {
			to := b.Other()
			budget := cfg.MaxArea[to] - st.Area(to)
			if budget <= 0 {
				continue
			}
			tok := st.Mark()
			before := st.Objective()
			res, err := replication.OptimalPull(st, b, replication.PullOptions{
				Radius: 4, MaxExtraArea: budget,
			})
			if err != nil {
				return err
			}
			if !res.Applied {
				continue
			}
			if st.Area(b) < cfg.MinArea[b] || st.Objective() >= before {
				if err := st.Undo(tok); err != nil {
					return err
				}
				continue
			}
			improved = true
		}
		if !improved {
			return nil
		}
	}
}

// insert links the node at slot into the bucket for gain, at the head
// (LIFO — among equal gains the most recently refreshed candidate is
// preferred, matching classic FM tie-breaking). The gain must be within
// the ±maxDeg bound; a violation is a gain-maintenance bug, not a
// clampable condition.
func (e *engine) insert(slot int32, gain int) {
	idx := gain + e.gainOf
	if idx < 0 || idx >= len(e.head) {
		panic(fmt.Sprintf("fm: gain %d of %v outside bound ±%d", gain, e.pool[slot].move, e.gainOf))
	}
	nd := &e.pool[slot]
	nd.bucket = int32(idx)
	nd.prev = nilNode
	nd.next = e.head[idx]
	if nd.next != nilNode {
		e.pool[nd.next].prev = slot
	}
	e.head[idx] = slot
	if idx > e.maxPtr {
		e.maxPtr = idx
	}
}

// unlink removes the node at slot from its bucket. No-op when the node
// is not in one.
func (e *engine) unlink(slot int32) {
	nd := &e.pool[slot]
	if nd.bucket == nilNode {
		return
	}
	if nd.prev != nilNode {
		e.pool[nd.prev].next = nd.next
	} else {
		e.head[nd.bucket] = nd.next
	}
	if nd.next != nilNode {
		e.pool[nd.next].prev = nd.prev
	}
	nd.bucket = nilNode
}

// removeAll unlinks every candidate node of the cell.
func (e *engine) removeAll(c hypergraph.CellID) {
	for s := e.base[c]; s < e.base[c+1]; s++ {
		e.unlink(s)
	}
}

// push (re)inserts the cell's currently valid candidate moves with
// fresh gains, removing any previous insertions first. Single-move
// gains come from the state's incrementally maintained values;
// replication and unreplication gains are evaluated semantically.
func (e *engine) push(c hypergraph.CellID) {
	e.removeAll(c)
	b := e.base[c]
	if e.st.IsReplicated(c) {
		e.insert(b+slotUnrep0, e.st.MustGain(e.pool[b+slotUnrep0].move))
		e.insert(b+slotUnrep1, e.st.MustGain(e.pool[b+slotUnrep1].move))
		return
	}
	if !e.replOnly {
		e.insert(b+slotSingle, e.st.SingleGain(c))
	}
	if e.cfg.Threshold != NoReplication && e.st.CanReplicate(c, e.cfg.Threshold) {
		for s := b + slotSplit0; s < e.base[c+1]; s++ {
			e.insert(s, e.st.MustGain(e.pool[s].move))
		}
	}
}

// feasible checks the area bounds after a prospective move.
func (e *engine) feasible(m replication.Move) bool {
	d0, d1, err := e.st.AreaDelta(m)
	if err != nil {
		return false
	}
	a0 := e.st.Area(0) + d0
	a1 := e.st.Area(1) + d1
	return a0 >= e.cfg.MinArea[0] && a0 <= e.cfg.MaxArea[0] &&
		a1 >= e.cfg.MinArea[1] && a1 <= e.cfg.MaxArea[1]
}

// pass runs one FM pass and reports whether the cut improved, plus the
// number of applied moves.
func (e *engine) pass() (bool, int) {
	for i := range e.head {
		e.head[i] = nilNode
	}
	for i := range e.pool {
		e.pool[i].bucket = nilNode
	}
	e.maxPtr = 0
	for i := range e.locked {
		e.locked[i] = false
	}
	for _, c := range e.order {
		e.push(c)
	}
	// The pass minimizes the state's objective: plain cut size, or the
	// weighted topology cost when a net weight table is installed
	// (identical values on unweighted states, so the flat path is
	// byte-for-byte the classic engine).
	startCut := e.st.Objective()
	bestCut := startCut
	// Best-prefix tracking via full-state snapshots: restoring one is
	// O(cells + nets) flat copies, against per-move undo sweeps over
	// every rolled-back move's neighborhood.
	e.st.SaveCheckpoint(&e.best)
	moves := 0
	for {
		mv, ok := e.pop()
		if !ok {
			break
		}
		if _, err := e.st.Apply(mv); err != nil {
			// Buckets hold no stale entries — every node is refreshed
			// when its cell's neighborhood changes — so an apply error
			// here is a bug.
			panic(fmt.Sprintf("fm: applying %v: %v", mv, err))
		}
		moves++
		e.locked[mv.Cell] = true
		e.removeAll(mv.Cell)
		// For single moves the commit delta sweep already visited the
		// exact touched neighborhood; reuse it instead of re-walking
		// the adjacency. Replication moves can touch cells on nets
		// whose counts did not change, so they take the full scan.
		var touched []hypergraph.CellID
		if mv.Kind == replication.SingleMove {
			touched = e.st.LastTouched()
		} else {
			e.scratch = e.st.TouchedCells(mv.Cell, e.scratch)
			touched = e.scratch
		}
		for _, t := range touched {
			if !e.locked[t] {
				e.push(t)
			}
		}
		if cut := e.st.Objective(); cut < bestCut {
			bestCut = cut
			e.st.SaveCheckpoint(&e.best)
		}
	}
	if err := e.st.RestoreCheckpoint(&e.best); err != nil {
		panic(fmt.Sprintf("fm: rollback: %v", err))
	}
	e.passSeq++
	if e.cfg.Trace != nil {
		e.cfg.Trace.Event(trace.Event{
			Kind:    trace.KindFMPass,
			Attempt: e.cfg.TraceAttempt,
			Pass:    e.passSeq,
			Moves:   moves,
			Cut:     bestCut,
		})
	}
	return bestCut < startCut, moves
}

// pop returns the highest-gain feasible candidate, unlinking it.
// Infeasible candidates encountered on the way are parked (unlinked but
// not discarded permanently): they return to the buckets when their
// cell's neighborhood is next refreshed.
func (e *engine) pop() (replication.Move, bool) {
	for e.maxPtr >= 0 {
		n := e.head[e.maxPtr]
		if n == nilNode {
			e.maxPtr--
			continue
		}
		e.unlink(n)
		if !e.feasible(e.pool[n].move) {
			continue
		}
		return e.pool[n].move, true
	}
	return replication.Move{}, false
}
