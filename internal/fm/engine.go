// Package fm implements the Fiduccia–Mattheyses min-cut bipartitioning
// heuristic [15] and its extension with functional replication
// (Kužnar et al., DAC'94, Section III.D). A pass repeatedly applies
// the best feasible candidate move — single cell move, functional
// replication with the best output split, or unreplication — locking
// each cell after it participates once, and finally rolls back to the
// best prefix. Passes repeat until a pass yields no improvement.
package fm

import (
	"fmt"
	"math/rand"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

// NoReplication disables replication moves when used as the Threshold.
const NoReplication = -1

// Config controls one bipartitioning run.
type Config struct {
	// MinArea/MaxArea bound the active cell area of each block; a move
	// is feasible only if both blocks stay within bounds afterwards.
	MinArea [2]int
	MaxArea [2]int
	// Threshold is the replication potential threshold T (Eq. 6):
	// multi-output cells with ψ ≥ T may replicate. NoReplication (-1)
	// disables replication entirely (plain FM).
	Threshold int
	// MaxPasses caps FM passes (default 24).
	MaxPasses int
	// FlowRefine runs the exact max-flow replication pull
	// (replication.OptimalPull, the paper's suggested combination with
	// [4]) in both directions after the FM phases converge.
	FlowRefine bool
	// Seed orders candidate insertion for tie-breaking.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxPasses == 0 {
		c.MaxPasses = 24
	}
	return c
}

// Result summarizes a run.
type Result struct {
	Cut    int // final cut size
	Passes int
	Moves  int // applied moves across all passes (before rollbacks)
}

type entry struct {
	cell  hypergraph.CellID
	move  replication.Move
	gain  int
	stamp uint32
}

type engine struct {
	st       *replication.State
	cfg      Config
	gainOf   int // bucket offset = max |gain|
	bucket   [][]entry
	maxPtr   int
	stamp    []uint32
	locked   []bool
	order    []hypergraph.CellID
	scratch  []hypergraph.CellID
	replOnly bool
}

// Run improves the bipartition state in place and returns the result.
// The state may contain replicated cells from previous runs; they are
// kept and remain subject to unreplication moves.
func Run(st *replication.State, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	g := st.Graph()
	if cfg.MaxArea[0] <= 0 || cfg.MaxArea[1] <= 0 {
		return Result{}, fmt.Errorf("fm: MaxArea must be positive, got %v", cfg.MaxArea)
	}
	if cfg.MinArea[0] < 0 || cfg.MinArea[1] < 0 {
		return Result{}, fmt.Errorf("fm: MinArea must be non-negative, got %v", cfg.MinArea)
	}
	for b := 0; b < 2; b++ {
		if st.Area(replication.Block(b)) > cfg.MaxArea[b] || st.Area(replication.Block(b)) < cfg.MinArea[b] {
			return Result{}, fmt.Errorf("fm: initial area %d of block %d outside [%d,%d]",
				st.Area(replication.Block(b)), b, cfg.MinArea[b], cfg.MaxArea[b])
		}
	}
	// Bound on |gain|: the largest number of distinct nets on a cell.
	maxNets := 1
	for ci := range g.Cells {
		if n := len(g.CellNets(hypergraph.CellID(ci))); n > maxNets {
			maxNets = n
		}
	}
	e := &engine{
		st:     st,
		cfg:    cfg,
		gainOf: maxNets,
		bucket: make([][]entry, 2*maxNets+1),
		stamp:  make([]uint32, g.NumCells()),
		locked: make([]bool, g.NumCells()),
		order:  make([]hypergraph.CellID, g.NumCells()),
	}
	for i := range e.order {
		e.order[i] = hypergraph.CellID(i)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	r.Shuffle(len(e.order), func(i, j int) { e.order[i], e.order[j] = e.order[j], e.order[i] })

	// Phase 1: plain FM passes to convergence. Phase 2 (when
	// replication is enabled): passes that also offer replication and
	// unreplication moves, refining the converged min-cut solution —
	// the paper extends the original min-cut algorithm [15] this way,
	// and each pass's best-prefix rollback guarantees phase 2 never
	// worsens the phase-1 cut.
	res := Result{Cut: st.CutSize()}
	phase := func(threshold int, replOnly bool) bool {
		e.cfg.Threshold = threshold
		e.replOnly = replOnly
		any := false
		for pass := 0; pass < cfg.MaxPasses; pass++ {
			improved, moves := e.pass()
			res.Passes++
			res.Moves += moves
			if !improved {
				break
			}
			any = true
		}
		return any
	}
	if cfg.Threshold == NoReplication {
		phase(NoReplication, false)
	} else {
		// Alternate until a full plain+replication round is dry. The
		// replication phase restricts the move universe to replicate/
		// unreplicate so that cut-neutral single moves cannot crowd out
		// replication opportunities; the following plain phase then
		// re-optimizes positions.
		for round := 0; round < cfg.MaxPasses; round++ {
			p := phase(NoReplication, false)
			r := phase(cfg.Threshold, true)
			if !p && !r {
				break
			}
		}
	}
	if cfg.FlowRefine {
		if err := flowRefine(st, cfg); err != nil {
			return res, err
		}
	}
	res.Cut = st.CutSize()
	return res, nil
}

// flowRefine applies the exact replication pull in both directions
// until neither improves, rolling back any pull that violates the area
// bounds (OptimalPull only budgets the growing block).
func flowRefine(st *replication.State, cfg Config) error {
	for {
		improved := false
		for b := replication.Block(0); b < 2; b++ {
			to := b.Other()
			budget := cfg.MaxArea[to] - st.Area(to)
			if budget <= 0 {
				continue
			}
			tok := st.Mark()
			before := st.CutSize()
			res, err := replication.OptimalPull(st, b, replication.PullOptions{
				Radius: 4, MaxExtraArea: budget,
			})
			if err != nil {
				return err
			}
			if !res.Applied {
				continue
			}
			if st.Area(b) < cfg.MinArea[b] || st.CutSize() >= before {
				if err := st.Undo(tok); err != nil {
					return err
				}
				continue
			}
			improved = true
		}
		if !improved {
			return nil
		}
	}
}

// candidates computes the move set of a free cell under the current
// state: single move for unreplicated cells plus functional
// replication splits when eligible, or the two unreplication merges
// for replicated cells.
func (e *engine) candidates(c hypergraph.CellID, emit func(replication.Move)) {
	if e.st.IsReplicated(c) {
		emit(replication.Move{Cell: c, Kind: replication.Unreplicate, To: 0})
		emit(replication.Move{Cell: c, Kind: replication.Unreplicate, To: 1})
		return
	}
	if !e.replOnly {
		emit(replication.Move{Cell: c, Kind: replication.SingleMove})
	}
	if e.cfg.Threshold != NoReplication && e.st.CanReplicate(c, e.cfg.Threshold) {
		for _, carry := range e.st.Splits(c) {
			emit(replication.Move{Cell: c, Kind: replication.Replicate, Carry: carry})
		}
	}
}

func (e *engine) push(c hypergraph.CellID) {
	e.stamp[c]++
	s := e.stamp[c]
	e.candidates(c, func(m replication.Move) {
		g := e.st.MustGain(m)
		idx := g + e.gainOf
		if idx < 0 {
			idx = 0
		} else if idx >= len(e.bucket) {
			idx = len(e.bucket) - 1
		}
		e.bucket[idx] = append(e.bucket[idx], entry{cell: c, move: m, gain: g, stamp: s})
		if idx > e.maxPtr {
			e.maxPtr = idx
		}
	})
}

// feasible checks the area bounds after a prospective move.
func (e *engine) feasible(m replication.Move) bool {
	d0, d1, err := e.st.AreaDelta(m)
	if err != nil {
		return false
	}
	a0 := e.st.Area(0) + d0
	a1 := e.st.Area(1) + d1
	return a0 >= e.cfg.MinArea[0] && a0 <= e.cfg.MaxArea[0] &&
		a1 >= e.cfg.MinArea[1] && a1 <= e.cfg.MaxArea[1]
}

// pass runs one FM pass and reports whether the cut improved, plus the
// number of applied moves.
func (e *engine) pass() (bool, int) {
	for i := range e.bucket {
		e.bucket[i] = e.bucket[i][:0]
	}
	e.maxPtr = 0
	for i := range e.locked {
		e.locked[i] = false
	}
	for _, c := range e.order {
		e.push(c)
	}
	startCut := e.st.CutSize()
	bestCut := startCut
	bestTok := e.st.Mark()
	moves := 0
	for {
		ent, ok := e.pop()
		if !ok {
			break
		}
		if _, err := e.st.Apply(ent.move); err != nil {
			// Stale entries referencing no-longer-valid moves are
			// filtered by stamps; an apply error here is a bug.
			panic(fmt.Sprintf("fm: applying %v: %v", ent.move, err))
		}
		moves++
		e.locked[ent.cell] = true
		e.scratch = e.st.TouchedCells(ent.cell, e.scratch)
		for _, t := range e.scratch {
			if !e.locked[t] {
				e.push(t)
			}
		}
		if cut := e.st.CutSize(); cut < bestCut {
			bestCut = cut
			bestTok = e.st.Mark()
		}
	}
	if err := e.st.Undo(bestTok); err != nil {
		panic(fmt.Sprintf("fm: rollback: %v", err))
	}
	return bestCut < startCut, moves
}

// pop returns the highest-gain fresh, unlocked, feasible entry.
func (e *engine) pop() (entry, bool) {
	for e.maxPtr >= 0 {
		b := e.bucket[e.maxPtr]
		if len(b) == 0 {
			e.maxPtr--
			continue
		}
		ent := b[len(b)-1]
		e.bucket[e.maxPtr] = b[:len(b)-1]
		if e.locked[ent.cell] || e.stamp[ent.cell] != ent.stamp {
			continue
		}
		if !e.feasible(ent.move) {
			continue
		}
		return ent, true
	}
	return entry{}, false
}
