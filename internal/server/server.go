// Package server exposes the partitioning engine as a fault-isolated
// HTTP/JSON service. The design goals mirror the engine's own
// robustness contract:
//
//   - Bounded admission: a fixed worker pool drains a bounded job
//     queue; a full queue sheds load with 429 + Retry-After instead of
//     queueing without bound.
//   - Idempotent jobs: clients may supply their own job ID; re-posting
//     the same ID returns the existing job's status (retry-safe result
//     lookup) instead of re-running the search.
//   - Deadline propagation: each job runs under a context derived from
//     the server's base context plus the request's timeout, so both
//     client budgets and server drains cut the search at its
//     deterministic carve boundaries.
//   - Graceful degradation: a contained worker panic degrades the
//     job's result (Degraded flag, surviving attempts folded) rather
//     than failing the request; parse errors are rejected at admission
//     with line/column context before any search work is queued.
//   - Graceful shutdown: Shutdown stops admission, drains queued and
//     in-flight jobs, and only cancels the base context when the drain
//     deadline expires.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fpgapart/internal/core"
	"fpgapart/internal/faultinject"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/jobstore"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/netlist"
	"fpgapart/internal/search"
	"fpgapart/internal/span"
	"fpgapart/internal/telemetry"
)

// Config sizes the service. The zero value selects conservative
// defaults suitable for tests and small deployments.
type Config struct {
	// Workers is the number of concurrent partition jobs (default 2).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-running jobs
	// (default 8). A full queue rejects submissions with 429.
	QueueDepth int
	// DefaultTimeout is the per-job search budget when the request does
	// not set one (default 30s). MaxTimeout caps client-requested
	// budgets (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Library is the device library jobs partition into (default
	// library.XC3000()).
	Library library.Library
	// GraphLimits / NetLimits cap parser resource usage for request
	// bodies (zero values select the parsers' defaults).
	GraphLimits hypergraph.Limits
	NetLimits   netlist.Limits
	// Inject arms deterministic fault injection in every job's engine
	// (testing only; leave nil in production).
	Inject *faultinject.Plan
	// Logger receives structured operational logs: request admission
	// and job lifecycle events, each carrying the job ID and the
	// request ID of the submission that created it (nil discards).
	Logger *slog.Logger
	// Metrics is the registry the server instruments itself into and
	// serves on GET /metrics (nil creates a private registry). Every
	// job's engine trace also feeds it through a telemetry.Bridge.
	Metrics *telemetry.Registry
	// Clock supplies wall-clock readings for request latency, phase
	// timing and job durations (nil selects the system clock). The
	// clock feeds only observability — never search decisions — so
	// fixed-seed job results are byte-identical under a fake clock.
	Clock telemetry.Clock
	// Tracer records every job as a causal span tree (see
	// internal/span): a "job" root span whose descendants cover the
	// search attempts, V-cycle levels and FM passes, served by GET
	// /debug/trace/{job} and GET /debug/flightrecorder. A request
	// carrying a W3C traceparent header parents the job under the
	// caller's span — so a coordinator fan-out yields one stitched
	// cross-process trace — and the sync response carries this
	// process's spans back. Nil creates a default "kpartd" tracer on
	// the configured clock; spans never feed search decisions.
	Tracer *span.Tracer
	// EnablePprof mounts net/http/pprof handlers under /debug/pprof/.
	// Off by default: profiling endpoints are operator-only surface.
	EnablePprof bool
	// Store, when non-nil, makes the job lifecycle durable: every
	// submission, state transition, search checkpoint and completion is
	// appended (and fsync'd) to the write-ahead log before the server
	// acknowledges it, and New replays the store — completed jobs stay
	// queryable through GET /v1/jobs/{id}, interrupted jobs are
	// re-enqueued with the "recovered" flag and resume from their last
	// checkpoint to the byte-identical fixed-seed result.
	Store *jobstore.Store
	// CheckpointEvery is the durable checkpoint cadence in folded
	// attempts (default 1; ignored without Store).
	CheckpointEvery int
	// Distribute, when non-nil, switches the server into coordinator
	// mode: instead of running the search locally, every job is handed
	// to this hook, which fans the attempts out to remote workers (see
	// internal/coord). The hook receives the original request — circuit
	// text and board spec intact, for forwarding — and the parsed
	// options, whose Checkpoint/Resume fields carry the durability
	// plumbing; it must observe ctx and derive attempt seeds exactly as
	// the local engine does (Seed + i*kway.SeedStride) so fixed-seed
	// results stay byte-identical to local execution.
	Distribute func(ctx context.Context, req *JobRequest, opts core.Options) (*JobResult, error)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if len(c.Library.Devices) == 0 {
		c.Library = library.XC3000()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = telemetry.SystemClock()
	}
	if c.Tracer == nil {
		c.Tracer = span.NewTracer(span.Options{Process: "kpartd", Now: c.Clock.Now})
	}
	return c
}

// Job states as reported by the API.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	// StateRecovered marks a job replayed from the durable store after a
	// restart, waiting to resume; it becomes "running" when a worker
	// picks it up, and the JobStatus.Recovered flag persists through
	// completion.
	StateRecovered = "recovered"
)

// Error kinds classify job failures for clients. Every non-2xx API
// response carries one of these in apiError.Kind.
const (
	KindMalformed        = "malformed"  // parse error or parser limit
	KindInfeasible       = "infeasible" // attempt budget ran without a feasible solution
	KindTimeout          = "timeout"    // search budget expired first
	KindCanceled         = "canceled"   // shutdown or client cancellation
	KindInternal         = "internal"
	KindNotFound         = "not_found"          // unknown job ID or endpoint
	KindMethodNotAllowed = "method_not_allowed" // known endpoint, wrong verb
	KindOverload         = "overload"           // queue full; retry after the hint
	KindDraining         = "draining"           // shutdown in progress
)

// JobFailure is a typed failure a Distribute hook returns to select the
// API error kind directly (e.g. KindInfeasible when every remote
// attempt was infeasible).
type JobFailure struct {
	Kind string
	Msg  string
}

func (e *JobFailure) Error() string { return e.Msg }

type job struct {
	id        string
	reqID     string // request ID of the submission that created the job
	req       *JobRequest
	graph     *hypergraph.Graph
	opts      core.Options
	timeout   time.Duration
	recovered bool               // replayed from the durable store
	cancel    context.CancelFunc // set while running; cuts the search

	// parentSpan is the caller's span from the submission's traceparent
	// header (0 = the job span is a trace root). Written once at
	// submission; the worker parents the job span under it.
	parentSpan span.ID

	mu    sync.Mutex
	state string
	// trace is the job's trace ID: the submission's traceparent when it
	// carried one, else derived from the job's durable identity in
	// runJob — so a crash-recovered resume lands in the original trace.
	// rootSpan is the "job" span runJob opens; a sync response returns
	// its recorded subtree.
	trace    span.TraceID
	rootSpan span.ID
	result   *JobResult
	errMsg   string
	errKind  string
	done     chan struct{}
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// traceRef snapshots the job's trace identity (zero until runJob
// starts it, unless the submission carried a traceparent).
func (j *job) traceRef() (span.TraceID, span.ID) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace, j.rootSpan
}

// status snapshots the job for the API.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.id, State: j.state, Recovered: j.recovered,
		Result: j.result, Error: j.errMsg, ErrorKind: j.errKind}
}

// Server is the HTTP handler plus the worker pool behind it.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	log   *slog.Logger
	clock telemetry.Clock
	met   *metricsBundle

	reqSeq atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// admit guards the draining flag and queue channel: submissions
	// take the read side, Shutdown takes the write side to flip
	// draining and close the queue with no sender in flight.
	admit    sync.RWMutex
	draining bool
	queue    chan *job

	jobsMu sync.Mutex
	jobs   map[string]*job
	jobSeq atomic.Int64

	workers sync.WaitGroup
}

// New builds the service and starts its worker pool. Callers serve it
// with net/http and stop it with Shutdown. With Config.Store set, New
// first replays the durable job table: completed jobs become queryable
// again, interrupted jobs are re-enqueued (ahead of new submissions,
// with extra queue headroom so recovery never sheds) and resume from
// their last persisted checkpoint.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		log:        cfg.Logger,
		clock:      cfg.Clock,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}
	s.met = newMetricsBundle(cfg.Metrics, cfg.Workers, func() float64 { return float64(len(s.queue)) })
	recovered := s.recoverJobs()
	s.queue = make(chan *job, cfg.QueueDepth+len(recovered))
	for _, j := range recovered {
		s.queue <- j
	}
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// recoverJobs rebuilds the job table from the durable store. Completed
// jobs re-enter the map with their persisted outcome; incomplete jobs
// are returned for re-enqueueing, carrying Resume state when a
// checkpoint was persisted. A job whose durable request can no longer
// be rebuilt is failed durably rather than dropped silently.
func (s *Server) recoverJobs() []*job {
	if s.cfg.Store == nil {
		return nil
	}
	closed := make(chan struct{})
	close(closed)
	var out []*job
	for _, rec := range s.cfg.Store.Jobs() {
		switch {
		case rec.Done:
			j := &job{id: rec.ID, state: StateDone, recovered: true, done: closed}
			var res JobResult
			if err := json.Unmarshal(rec.Result, &res); err == nil {
				j.result = &res
			} else {
				s.log.Warn("recovered job has undecodable result", "job", rec.ID, "err", err)
			}
			s.jobs[rec.ID] = j
		case rec.Failed:
			s.jobs[rec.ID] = &job{id: rec.ID, state: StateFailed, recovered: true,
				errMsg: rec.Error, errKind: rec.ErrKind, done: closed}
		default:
			j, err := s.rebuildJob(rec)
			if err != nil {
				s.log.Error("job recovery failed", "job", rec.ID, "err", err)
				if serr := s.cfg.Store.AppendFail(rec.ID, KindInternal, "recovery: "+err.Error()); serr != nil {
					s.log.Error("failure record persist failed", "job", rec.ID, "err", serr)
				}
				s.jobs[rec.ID] = &job{id: rec.ID, state: StateFailed, recovered: true,
					errMsg: "recovery: " + err.Error(), errKind: KindInternal, done: closed}
				continue
			}
			s.jobs[rec.ID] = j
			out = append(out, j)
			if serr := s.cfg.Store.AppendState(rec.ID, jobstore.StateRecovered); serr != nil {
				s.log.Error("state record persist failed", "job", rec.ID, "err", serr)
			}
			s.log.Info("job recovered", "job", rec.ID, "resuming", j.opts.Resume != nil)
		}
	}
	return out
}

// rebuildJob re-parses a recovered job's durable request and attaches
// its newest persisted checkpoint as the resume point.
func (s *Server) rebuildJob(rec *jobstore.Job) (*job, error) {
	if len(rec.Request) == 0 {
		return nil, errors.New("no durable request payload")
	}
	req := new(JobRequest)
	if err := json.Unmarshal(rec.Request, req); err != nil {
		return nil, fmt.Errorf("durable request: %w", err)
	}
	g, opts, timeout, err := s.parseRequest(req)
	if err != nil {
		return nil, err
	}
	if len(rec.Checkpoint) > 0 {
		cp := new(kway.SearchCheckpoint)
		if err := json.Unmarshal(rec.Checkpoint, cp); err != nil {
			return nil, fmt.Errorf("durable checkpoint: %w", err)
		}
		opts.Resume = cp
	}
	return &job{id: rec.ID, req: req, graph: g, opts: opts, timeout: timeout,
		state: StateRecovered, recovered: true, done: make(chan struct{})}, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(&muxErrorWriter{ResponseWriter: w}, r)
}

// Ready reports whether the server is accepting new jobs.
func (s *Server) Ready() bool {
	s.admit.RLock()
	defer s.admit.RUnlock()
	return !s.draining
}

// submit registers and enqueues a job. It returns the job and an HTTP
// status: 202 accepted, 200 for an idempotent replay of a known ID,
// 429 when the queue is full, 503 when draining. reqID is the
// submitting request's ID; it is stored on the job so lifecycle logs
// can be joined back to the request. trace/parent carry the
// submission's traceparent header when it had one (an idempotent
// replay keeps the existing job's trace). With a durable store
// configured, the submission is persisted (and fsync'd) once the job
// is admitted.
func (s *Server) submit(reqID string, trace span.TraceID, parent span.ID, req *JobRequest, g *hypergraph.Graph, opts core.Options, timeout time.Duration) (*job, int) {
	id := req.ID
	s.jobsMu.Lock()
	if id != "" {
		if old, ok := s.jobs[id]; ok {
			s.jobsMu.Unlock()
			s.log.Info("job replay", "job", id, "request_id", reqID)
			return old, http.StatusOK
		}
	} else {
		// Skip IDs taken by recovered jobs from a previous process life.
		for {
			id = fmt.Sprintf("job-%d", s.jobSeq.Add(1))
			if _, ok := s.jobs[id]; !ok {
				break
			}
		}
	}
	j := &job{id: id, reqID: reqID, req: req, graph: g, opts: opts, timeout: timeout,
		trace: trace, parentSpan: parent, state: StateQueued, done: make(chan struct{})}
	s.jobs[id] = j
	s.jobsMu.Unlock()

	s.admit.RLock()
	if s.draining {
		s.admit.RUnlock()
		s.dropJob(id)
		s.met.shedDraining.Inc()
		s.log.Warn("job rejected", "job", id, "request_id", reqID, "reason", "draining")
		return nil, http.StatusServiceUnavailable
	}
	select {
	case s.queue <- j:
		s.admit.RUnlock()
		if s.cfg.Store != nil {
			// Persist with the resolved ID so a replayed store rebuilds
			// the same job, not an anonymous one.
			preq := *req
			preq.ID = id
			if err := s.cfg.Store.AppendSubmit(id, &preq); err != nil {
				s.log.Error("submit persist failed", "job", id, "err", err)
			}
		}
		s.log.Info("job queued", "job", id, "request_id", reqID, "cells", g.NumCells(), "timeout", timeout)
		return j, http.StatusAccepted
	default:
		s.admit.RUnlock()
		s.dropJob(id)
		s.met.shedQueueFull.Inc()
		s.log.Warn("job rejected", "job", id, "request_id", reqID, "reason", "queue-full")
		return nil, http.StatusTooManyRequests
	}
}

// dropJob forgets a job that was never admitted, so a client retry
// after 429/503 is not confused by a phantom entry.
func (s *Server) dropJob(id string) {
	s.jobsMu.Lock()
	delete(s.jobs, id)
	s.jobsMu.Unlock()
}

func (s *Server) lookup(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	defer close(j.done)
	s.met.jobsInflight.Add(1)
	s.met.workersBusy.Add(1)
	defer s.met.jobsInflight.Add(-1)
	defer s.met.workersBusy.Add(-1)
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	defer cancel()
	j.mu.Lock()
	j.state = StateRunning
	j.cancel = cancel
	if j.trace.IsZero() {
		// No traceparent on the submission: derive the trace from the
		// job's durable identity — the same identity the checkpoint
		// carries — so a crash-recovered resume joins the original
		// run's trace instead of starting a disconnected one.
		j.trace = span.DeriveTraceID(j.id, j.opts.Seed, j.opts.Solutions)
	}
	trace := j.trace
	j.mu.Unlock()
	s.persist(j.id, "state record", func() error {
		return s.cfg.Store.AppendState(j.id, jobstore.StateRunning)
	})

	// The job span roots this process's slice of the trace; every
	// engine span (attempt, level, fm-pass, ...) descends from it. It
	// must end before j.done closes so a sync waiter sees it recorded.
	jobRun := s.cfg.Tracer.Root(trace, j.parentSpan).Start("job", -1)
	if j.graph != nil {
		jobRun.Detail(fmt.Sprintf("job=%s cells=%d seed=%d", j.id, j.graph.NumCells(), j.opts.Seed))
	}
	defer jobRun.End()
	j.opts.Spans = jobRun.Scope()
	j.mu.Lock()
	j.rootSpan = jobRun.SpanID()
	j.mu.Unlock()

	// Every job's engine trace feeds the server's metrics registry; the
	// injected clock times its phases. Neither perturbs the search.
	if j.opts.Trace == nil {
		j.opts.Trace = s.met.bridge
	}
	if j.opts.Now == nil {
		j.opts.Now = s.clock.Now
	}
	if s.cfg.Store != nil {
		id := j.id
		j.opts.CheckpointEvery = s.cfg.CheckpointEvery
		j.opts.Checkpoint = func(cp kway.SearchCheckpoint) {
			s.persist(id, "checkpoint", func() error {
				return s.cfg.Store.AppendCheckpoint(id, cp)
			})
		}
	}
	start := s.clock.Now()
	var result *JobResult
	var err error
	if s.cfg.Distribute != nil && j.req != nil {
		// The hook's ctx carries the submitting request's ID so the
		// coordinator can forward it (X-Request-Id) and tag its logs.
		result, err = s.cfg.Distribute(ContextWithRequestID(ctx, j.reqID), j.req, j.opts)
	} else {
		var res core.Result
		res, err = core.PartitionContext(ctx, j.graph, j.opts)
		if err == nil {
			result = resultJSON(j.graph, res, j.opts.Board)
		}
	}
	elapsed := s.clock.Now().Sub(start)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.errKind = classify(err)
		s.met.observeJobFailure(j.errKind)
		if j.errKind == KindCanceled && !s.Ready() {
			// Interrupted by the drain: leave the durable record without a
			// terminal entry so a restarted daemon recovers the job and
			// resumes it from its last checkpoint.
			s.log.Warn("job interrupted by drain; recoverable on restart",
				"job", j.id, "request_id", j.reqID, "elapsed", elapsed)
			return
		}
		s.persist(j.id, "failure record", func() error {
			return s.cfg.Store.AppendFail(j.id, j.errKind, j.errMsg)
		})
		s.log.Warn("job failed", "job", j.id, "request_id", j.reqID, "kind", j.errKind, "elapsed", elapsed, "err", err)
		return
	}
	j.state = StateDone
	j.result = result
	s.persist(j.id, "completion record", func() error {
		return s.cfg.Store.AppendDone(j.id, result)
	})
	s.met.jobsDone.Inc()
	if result.Degraded {
		s.met.degraded.Inc()
		s.log.Warn("job done degraded", "job", j.id, "request_id", j.reqID, "elapsed", elapsed,
			"panicked", result.Panicked, "seeds", fmt.Sprint(result.PanickedSeeds))
		return
	}
	s.log.Info("job done", "job", j.id, "request_id", j.reqID, "elapsed", elapsed,
		"parts", len(result.Parts), "cost", result.DeviceCost)
}

// LocalAttempt returns a closure that runs one request on this
// server's own engine, in the shape the coordinator's
// graceful-degradation hook wants (coord.Pool.SetLocal): parse the
// request, run the search under ctx, and render the API result. The
// request's timeout field is ignored — the caller's ctx is the budget.
func (s *Server) LocalAttempt() func(ctx context.Context, req *JobRequest) (*JobResult, error) {
	return func(ctx context.Context, req *JobRequest) (*JobResult, error) {
		g, opts, _, err := s.parseRequest(req)
		if err != nil {
			return nil, err
		}
		// A coordinator falling back to its own engine passes the rpc
		// span's scope through ctx, keeping the local attempt in the
		// same trace as the remote ones.
		if sc := span.FromContext(ctx); sc.Enabled() {
			opts.Spans = sc
		}
		res, err := core.PartitionContext(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		return resultJSON(g, res, opts.Board), nil
	}
}

// persist runs one durable-store append, logging (never failing the
// job on) store errors. A nil store makes it a no-op.
func (s *Server) persist(jobID, what string, fn func() error) {
	if s.cfg.Store == nil {
		return
	}
	if err := fn(); err != nil {
		s.log.Error("durable store append failed", "job", jobID, "record", what, "err", err)
	}
}

// classify maps an engine failure to an API error kind, mirroring the
// CLI's exit-code mapping (budget first: a timeout with no feasible
// solution wraps both error types).
func classify(err error) string {
	var jf *JobFailure
	if errors.As(err, &jf) {
		return jf.Kind
	}
	var budget *search.ErrBudget
	if errors.As(err, &budget) {
		if errors.Is(budget.Cause, context.Canceled) {
			return KindCanceled
		}
		return KindTimeout
	}
	var inf *kway.InfeasibleError
	if errors.As(err, &inf) {
		return KindInfeasible
	}
	var nperr *netlist.ParseError
	var hperr *hypergraph.ParseError
	if errors.As(err, &nperr) || errors.As(err, &hperr) {
		return KindMalformed
	}
	if errors.Is(err, context.Canceled) {
		return KindCanceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return KindTimeout
	}
	return KindInternal
}

// Shutdown drains the service: admission stops immediately (new
// submissions get 503, Ready flips false), queued and running jobs run
// to completion, and the worker pool exits. If ctx expires first the
// base context is canceled — cutting in-flight searches at their
// deterministic carve boundaries — and Shutdown waits for the workers
// to observe it before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admit.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.admit.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}
