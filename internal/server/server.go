// Package server exposes the partitioning engine as a fault-isolated
// HTTP/JSON service. The design goals mirror the engine's own
// robustness contract:
//
//   - Bounded admission: a fixed worker pool drains a bounded job
//     queue; a full queue sheds load with 429 + Retry-After instead of
//     queueing without bound.
//   - Idempotent jobs: clients may supply their own job ID; re-posting
//     the same ID returns the existing job's status (retry-safe result
//     lookup) instead of re-running the search.
//   - Deadline propagation: each job runs under a context derived from
//     the server's base context plus the request's timeout, so both
//     client budgets and server drains cut the search at its
//     deterministic carve boundaries.
//   - Graceful degradation: a contained worker panic degrades the
//     job's result (Degraded flag, surviving attempts folded) rather
//     than failing the request; parse errors are rejected at admission
//     with line/column context before any search work is queued.
//   - Graceful shutdown: Shutdown stops admission, drains queued and
//     in-flight jobs, and only cancels the base context when the drain
//     deadline expires.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fpgapart/internal/core"
	"fpgapart/internal/faultinject"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/netlist"
	"fpgapart/internal/search"
	"fpgapart/internal/telemetry"
)

// Config sizes the service. The zero value selects conservative
// defaults suitable for tests and small deployments.
type Config struct {
	// Workers is the number of concurrent partition jobs (default 2).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-running jobs
	// (default 8). A full queue rejects submissions with 429.
	QueueDepth int
	// DefaultTimeout is the per-job search budget when the request does
	// not set one (default 30s). MaxTimeout caps client-requested
	// budgets (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Library is the device library jobs partition into (default
	// library.XC3000()).
	Library library.Library
	// GraphLimits / NetLimits cap parser resource usage for request
	// bodies (zero values select the parsers' defaults).
	GraphLimits hypergraph.Limits
	NetLimits   netlist.Limits
	// Inject arms deterministic fault injection in every job's engine
	// (testing only; leave nil in production).
	Inject *faultinject.Plan
	// Logger receives structured operational logs: request admission
	// and job lifecycle events, each carrying the job ID and the
	// request ID of the submission that created it (nil discards).
	Logger *slog.Logger
	// Metrics is the registry the server instruments itself into and
	// serves on GET /metrics (nil creates a private registry). Every
	// job's engine trace also feeds it through a telemetry.Bridge.
	Metrics *telemetry.Registry
	// Clock supplies wall-clock readings for request latency, phase
	// timing and job durations (nil selects the system clock). The
	// clock feeds only observability — never search decisions — so
	// fixed-seed job results are byte-identical under a fake clock.
	Clock telemetry.Clock
	// EnablePprof mounts net/http/pprof handlers under /debug/pprof/.
	// Off by default: profiling endpoints are operator-only surface.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if len(c.Library.Devices) == 0 {
		c.Library = library.XC3000()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = telemetry.SystemClock()
	}
	return c
}

// Job states as reported by the API.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Error kinds classify job failures for clients.
const (
	KindMalformed  = "malformed"  // parse error or parser limit
	KindInfeasible = "infeasible" // attempt budget ran without a feasible solution
	KindTimeout    = "timeout"    // search budget expired first
	KindCanceled   = "canceled"   // shutdown or client cancellation
	KindInternal   = "internal"
)

type job struct {
	id      string
	reqID   string // request ID of the submission that created the job
	graph   *hypergraph.Graph
	opts    core.Options
	timeout time.Duration
	cancel  context.CancelFunc // set while running; cuts the search

	mu      sync.Mutex
	state   string
	result  *JobResult
	errMsg  string
	errKind string
	done    chan struct{}
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// status snapshots the job for the API.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.id, State: j.state, Result: j.result, Error: j.errMsg, ErrorKind: j.errKind}
}

// Server is the HTTP handler plus the worker pool behind it.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	log   *slog.Logger
	clock telemetry.Clock
	met   *metricsBundle

	reqSeq atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// admit guards the draining flag and queue channel: submissions
	// take the read side, Shutdown takes the write side to flip
	// draining and close the queue with no sender in flight.
	admit    sync.RWMutex
	draining bool
	queue    chan *job

	jobsMu sync.Mutex
	jobs   map[string]*job
	jobSeq atomic.Int64

	workers sync.WaitGroup
}

// New builds the service and starts its worker pool. Callers serve it
// with net/http and stop it with Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		log:        cfg.Logger,
		clock:      cfg.Clock,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
	}
	s.met = newMetricsBundle(cfg.Metrics, cfg.Workers, func() float64 { return float64(len(s.queue)) })
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Ready reports whether the server is accepting new jobs.
func (s *Server) Ready() bool {
	s.admit.RLock()
	defer s.admit.RUnlock()
	return !s.draining
}

// submit registers and enqueues a job. It returns the job and an HTTP
// status: 202 accepted, 200 for an idempotent replay of a known ID,
// 429 when the queue is full, 503 when draining. reqID is the
// submitting request's ID; it is stored on the job so lifecycle logs
// can be joined back to the request.
func (s *Server) submit(reqID, id string, g *hypergraph.Graph, opts core.Options, timeout time.Duration) (*job, int) {
	s.jobsMu.Lock()
	if id != "" {
		if old, ok := s.jobs[id]; ok {
			s.jobsMu.Unlock()
			s.log.Info("job replay", "job", id, "request_id", reqID)
			return old, http.StatusOK
		}
	} else {
		id = fmt.Sprintf("job-%d", s.jobSeq.Add(1))
	}
	j := &job{id: id, reqID: reqID, graph: g, opts: opts, timeout: timeout, state: StateQueued, done: make(chan struct{})}
	s.jobs[id] = j
	s.jobsMu.Unlock()

	s.admit.RLock()
	if s.draining {
		s.admit.RUnlock()
		s.dropJob(id)
		s.met.shedDraining.Inc()
		s.log.Warn("job rejected", "job", id, "request_id", reqID, "reason", "draining")
		return nil, http.StatusServiceUnavailable
	}
	select {
	case s.queue <- j:
		s.admit.RUnlock()
		s.log.Info("job queued", "job", id, "request_id", reqID, "cells", g.NumCells(), "timeout", timeout)
		return j, http.StatusAccepted
	default:
		s.admit.RUnlock()
		s.dropJob(id)
		s.met.shedQueueFull.Inc()
		s.log.Warn("job rejected", "job", id, "request_id", reqID, "reason", "queue-full")
		return nil, http.StatusTooManyRequests
	}
}

// dropJob forgets a job that was never admitted, so a client retry
// after 429/503 is not confused by a phantom entry.
func (s *Server) dropJob(id string) {
	s.jobsMu.Lock()
	delete(s.jobs, id)
	s.jobsMu.Unlock()
}

func (s *Server) lookup(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	defer close(j.done)
	s.met.jobsInflight.Add(1)
	s.met.workersBusy.Add(1)
	defer s.met.jobsInflight.Add(-1)
	defer s.met.workersBusy.Add(-1)
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	defer cancel()
	j.mu.Lock()
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()

	// Every job's engine trace feeds the server's metrics registry; the
	// injected clock times its phases. Neither perturbs the search.
	if j.opts.Trace == nil {
		j.opts.Trace = s.met.bridge
	}
	if j.opts.Now == nil {
		j.opts.Now = s.clock.Now
	}
	start := s.clock.Now()
	res, err := core.PartitionContext(ctx, j.graph, j.opts)
	elapsed := s.clock.Now().Sub(start)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.errKind = classify(err)
		s.met.observeJobFailure(j.errKind)
		s.log.Warn("job failed", "job", j.id, "request_id", j.reqID, "kind", j.errKind, "elapsed", elapsed, "err", err)
		return
	}
	j.state = StateDone
	j.result = resultJSON(j.graph, res, j.opts.Board)
	s.met.jobsDone.Inc()
	if res.Degraded {
		s.met.degraded.Inc()
		s.log.Warn("job done degraded", "job", j.id, "request_id", j.reqID, "elapsed", elapsed,
			"panicked", res.Panicked, "seeds", fmt.Sprint(res.PanickedSeeds))
		return
	}
	s.log.Info("job done", "job", j.id, "request_id", j.reqID, "elapsed", elapsed,
		"parts", len(res.Parts), "cost", res.Summary.DeviceCost())
}

// classify maps an engine failure to an API error kind, mirroring the
// CLI's exit-code mapping (budget first: a timeout with no feasible
// solution wraps both error types).
func classify(err error) string {
	var budget *search.ErrBudget
	if errors.As(err, &budget) {
		if errors.Is(budget.Cause, context.Canceled) {
			return KindCanceled
		}
		return KindTimeout
	}
	var inf *kway.InfeasibleError
	if errors.As(err, &inf) {
		return KindInfeasible
	}
	var nperr *netlist.ParseError
	var hperr *hypergraph.ParseError
	if errors.As(err, &nperr) || errors.As(err, &hperr) {
		return KindMalformed
	}
	if errors.Is(err, context.Canceled) {
		return KindCanceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return KindTimeout
	}
	return KindInternal
}

// Shutdown drains the service: admission stops immediately (new
// submissions get 503, Ready flips false), queued and running jobs run
// to completion, and the worker pool exits. If ctx expires first the
// base context is canceled — cutting in-flight searches at their
// deterministic carve boundaries — and Shutdown waits for the workers
// to observe it before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admit.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.admit.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}
