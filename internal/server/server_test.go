package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/faultinject"
	"fpgapart/internal/hypergraph"
)

// circuitText renders a small deterministic benchmark circuit as .clb
// source, the way a client would post it.
func circuitText(t *testing.T, cells int, seed int64) string {
	t.Helper()
	g, err := bench.Generate(bench.Params{Cells: cells, PrimaryIn: 10, PrimaryOut: 6, Seed: seed, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hypergraph.Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, req JobRequest) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return resp, st
}

func getStatus(t *testing.T, url string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st
}

func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job: %d", code)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return JobStatus{}
}

func TestSubmitAndPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, st := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 3, Seed: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st.ID == "" || (st.State != StateQueued && st.State != StateRunning) {
		t.Fatalf("bad initial status: %+v", st)
	}
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("job failed: %+v", final)
	}
	if final.Result == nil || final.Result.K < 1 || final.Result.DeviceCost <= 0 {
		t.Fatalf("bad result: %+v", final.Result)
	}
	if final.Result.Degraded {
		t.Fatalf("uninjected run reported degraded: %+v", final.Result)
	}
}

func TestSyncPartitionJSONAndRaw(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	circuit := circuitText(t, 120, 1)

	resp, st := postJSON(t, ts.URL+"/v1/partition", JobRequest{Circuit: circuit, Solutions: 3, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync JSON: %d (%+v)", resp.StatusCode, st)
	}
	if st.Result == nil || st.Result.K < 1 {
		t.Fatalf("bad sync result: %+v", st)
	}

	// The raw-body form: POST the .clb text directly, parameters in the
	// query string (the shape the CI smoke test uses with curl).
	resp2, err := http.Post(ts.URL+"/v1/partition?solutions=3&seed=1", "text/plain", strings.NewReader(circuit))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 JobStatus
	json.NewDecoder(resp2.Body).Decode(&st2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("sync raw: %d (%+v)", resp2.StatusCode, st2)
	}
	// Same inputs, same seed: the two runs must agree exactly.
	if st2.Result == nil || st2.Result.DeviceCost != st.Result.DeviceCost || st2.Result.K != st.Result.K {
		t.Fatalf("raw result diverged: %+v vs %+v", st2.Result, st.Result)
	}
}

func TestMalformedCircuit400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/partition", "text/plain", strings.NewReader("circuit c\ncell u0 area\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e apiError
	json.NewDecoder(resp.Body).Decode(&e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if e.Kind != KindMalformed || !strings.Contains(e.Error, "line 2") {
		t.Fatalf("error should carry parse position: %+v", e)
	}
}

func TestIdempotentJobID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := JobRequest{ID: "job-abc", Circuit: circuitText(t, 120, 1), Solutions: 3, Seed: 1}
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	final := waitDone(t, ts.URL, "job-abc")
	if final.State != StateDone {
		t.Fatalf("job failed: %+v", final)
	}
	// Retrying the same submission must return the finished job, not
	// re-run it.
	resp2, st2 := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d, want 200", resp2.StatusCode)
	}
	if st2.State != StateDone || st2.Result == nil || st2.Result.DeviceCost != final.Result.DeviceCost {
		t.Fatalf("replay did not return the existing result: %+v", st2)
	}
}

func TestAdmissionControl429(t *testing.T) {
	// One worker, queue depth one, and every attempt sleeps: the third
	// (at the latest: fifth) submission must be shed with 429.
	plan := faultinject.NewPlan(faultinject.DelayAtAttempt(faultinject.Any, 300*time.Millisecond))
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Inject: plan, RetryAfter: 2 * time.Second})
	circuit := circuitText(t, 120, 1)
	saw429 := false
	for i := 0; i < 5 && !saw429; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Circuit: circuit, Solutions: 2, Seed: int64(i + 1)})
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
			if ra := resp.Header.Get("Retry-After"); ra != "2" {
				t.Fatalf("Retry-After = %q, want \"2\"", ra)
			}
		default:
			t.Fatalf("submit %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	if !saw429 {
		t.Fatal("queue never shed load with 429")
	}
}

func TestDegradedResultSurvivesPanic(t *testing.T) {
	// Attempt 1 panics; the job must still complete with the surviving
	// attempts folded and the degradation surfaced, never a 500.
	plan := faultinject.NewPlan(faultinject.PanicAtAttempt(1))
	_, ts := newTestServer(t, Config{Inject: plan})
	resp, st := postJSON(t, ts.URL+"/v1/partition", JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 4, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: %d (%+v)", resp.StatusCode, st)
	}
	if st.Result == nil || !st.Result.Degraded || st.Result.Panicked != 1 {
		t.Fatalf("panic not surfaced as degradation: %+v", st.Result)
	}
	if len(st.Result.PanickedSeeds) != 1 {
		t.Fatalf("panicked seeds: %+v", st.Result.PanickedSeeds)
	}
}

func TestTimeoutPropagation(t *testing.T) {
	// Every attempt sleeps longer than the request budget: the job must
	// fail with the timeout kind, mapped to 504 on the sync endpoint.
	plan := faultinject.NewPlan(faultinject.DelayAtAttempt(faultinject.Any, 500*time.Millisecond))
	_, ts := newTestServer(t, Config{Inject: plan})
	resp, st := postJSON(t, ts.URL+"/v1/partition", JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 4, Seed: 1, TimeoutMS: 100})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%+v)", resp.StatusCode, st)
	}
	if st.ErrorKind != KindTimeout {
		t.Fatalf("error kind %q, want %q", st.ErrorKind, KindTimeout)
	}
}

func TestHealthAndReady(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", ep, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Liveness survives the drain; readiness flips.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", resp.StatusCode)
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	// Admit a slow job, then shut down with a generous deadline: the
	// job must run to completion (drained, not cut) and later
	// submissions must be refused with 503.
	plan := faultinject.NewPlan(faultinject.DelayAtAttempt(faultinject.Any, 50*time.Millisecond))
	s, ts := newTestServer(t, Config{Workers: 1, Inject: plan})
	circuit := circuitText(t, 120, 1)
	resp, st := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Circuit: circuit, Solutions: 2, Seed: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	code, final := getStatus(t, ts.URL+"/v1/jobs/"+st.ID)
	if code != http.StatusOK || final.State != StateDone {
		t.Fatalf("in-flight job was not drained: %d %+v", code, final)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Circuit: circuit, Solutions: 1, Seed: 2})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: %d, want 503", resp2.StatusCode)
	}
}

func TestShutdownDeadlineCutsJobs(t *testing.T) {
	// Every attempt sleeps for a long time and the job budget is
	// generous: an immediate-deadline shutdown must cancel the base
	// context and still return (with ctx's error) instead of hanging.
	plan := faultinject.NewPlan(faultinject.DelayAtAttempt(faultinject.Any, 200*time.Millisecond))
	s, ts := newTestServer(t, Config{Workers: 1, Inject: plan, DefaultTimeout: time.Minute})
	resp, st := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 50, Seed: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("want deadline error from cut-short drain")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %s after deadline cut", elapsed)
	}
	// The cut job must have resolved one way or the other — a feasible
	// prefix folds into a done (possibly budget-stopped) result, an
	// empty prefix fails with canceled/timeout — never stuck running.
	code, final := getStatus(t, ts.URL+"/v1/jobs/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("GET job: %d", code)
	}
	if final.State != StateDone && final.State != StateFailed {
		t.Fatalf("cut job left in state %q", final.State)
	}
	if final.State == StateFailed && final.ErrorKind != KindCanceled && final.ErrorKind != KindTimeout {
		t.Fatalf("cut job error kind %q: %+v", final.ErrorKind, final)
	}
}

func TestConcurrentSubmitRace(t *testing.T) {
	// Hammer admission from many goroutines while the pool churns:
	// every response must be a well-formed admission outcome and the
	// server must stay consistent (run with -race).
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2})
	circuit := circuitText(t, 120, 1)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(JobRequest{
				ID: fmt.Sprintf("race-%d", i%8), Circuit: circuit, Solutions: 1, Seed: int64(i),
			})
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted, http.StatusOK, http.StatusTooManyRequests:
			default:
				errs <- fmt.Errorf("submit %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
