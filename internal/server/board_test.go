package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestSyncPartitionWithBoard runs a synchronous job against a mesh
// board spec and checks the result carries the topology score, both
// through the JSON schema and the raw-body query-parameter form.
func TestSyncPartitionWithBoard(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	circuit := circuitText(t, 120, 1)

	resp, st := postJSON(t, ts.URL+"/v1/partition", JobRequest{
		Circuit: circuit, Solutions: 3, Seed: 1, Board: "mesh:2x2:4096",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync with board: %d (%+v)", resp.StatusCode, st)
	}
	if st.Result == nil || st.Result.TopoCost == nil || st.Result.Board == "" {
		t.Fatalf("result lacks topology score: %+v", st.Result)
	}

	resp2, err := http.Post(ts.URL+"/v1/partition?solutions=3&seed=1&board=mesh:2x2:4096", "text/plain", strings.NewReader(circuit))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 JobStatus
	json.NewDecoder(resp2.Body).Decode(&st2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("sync raw with board: %d (%+v)", resp2.StatusCode, st2)
	}
	if st2.Result == nil || st2.Result.TopoCost == nil || *st2.Result.TopoCost != *st.Result.TopoCost {
		t.Fatalf("raw board result diverged: %+v vs %+v", st2.Result, st.Result)
	}

	// A board-free run of the same job must omit the topology fields.
	respFlat, stFlat := postJSON(t, ts.URL+"/v1/partition", JobRequest{Circuit: circuit, Solutions: 3, Seed: 1})
	if respFlat.StatusCode != http.StatusOK {
		t.Fatalf("flat sync: %d", respFlat.StatusCode)
	}
	if stFlat.Result == nil || stFlat.Result.TopoCost != nil || stFlat.Result.Board != "" {
		t.Fatalf("flat result carries topology fields: %+v", stFlat.Result)
	}
}

// TestBoardSpecRejected pins the request-surface contract: malformed
// specs and file paths are 400s — the server never resolves a board
// argument against its filesystem.
func TestBoardSpecRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	circuit := circuitText(t, 120, 1)
	for _, board := range []string{"mesh:axb", "/etc/boards/mesh.board", "boards/mesh.board"} {
		resp, st := postJSON(t, ts.URL+"/v1/partition", JobRequest{
			Circuit: circuit, Solutions: 3, Seed: 1, Board: board,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("board %q: status %d, want 400 (%+v)", board, resp.StatusCode, st)
		}
	}
}
