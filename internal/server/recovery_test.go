package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/jobstore"
	"fpgapart/internal/span"
)

func mustJSONString(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newBody returns a fresh reader, or nil for an empty body.
func newBody(s string) io.Reader {
	if s == "" {
		return nil
	}
	return strings.NewReader(s)
}

func decodeJSONBody(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

func openStore(t *testing.T, dir string) *jobstore.Store {
	t.Helper()
	s, _, err := jobstore.Open(jobstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDrainRecoverRestart is the durable-drain regression: a drain
// that cuts jobs before they produce anything must leave them
// incomplete in the store, and a restarted server must replay them —
// flagged "recovered" — to the byte-identical fixed-seed result.
func TestDrainRecoverRestart(t *testing.T) {
	dir := t.TempDir()
	circuit := circuitText(t, 120, 1)
	running := JobRequest{ID: "job-running", Circuit: circuit, Solutions: 4, Seed: 2}
	queued := JobRequest{ID: "job-queued", Circuit: circuit, Solutions: 3, Seed: 5}

	// Life 1: one worker, every attempt stalls long enough that nothing
	// folds before the drain cuts the base context.
	store1 := openStore(t, dir)
	plan := faultinject.NewPlan(faultinject.DelayAtAttempt(faultinject.Any, 2*time.Second))
	s1 := New(Config{Workers: 1, Store: store1, Inject: plan, DefaultTimeout: time.Minute})
	for _, req := range []JobRequest{running, queued} {
		req := req
		g, opts, timeout, err := s1.parseRequest(&req)
		if err != nil {
			t.Fatal(err)
		}
		if j, status := s1.submit("t", span.TraceID{}, 0, &req, g, opts, timeout); j == nil {
			t.Fatalf("submit %s: %d", req.ID, status)
		}
	}
	// Wait until the first job is actually running (its durable state
	// record lands), so the drain interrupts one running and one queued
	// job — the two recovery paths.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rec := store1.Job("job-running"); rec != nil && rec.State == jobstore.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached the running state in the store")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cut, cancel := context.WithCancel(context.Background())
	cancel()
	s1.Shutdown(cut) // immediate deadline: cancels the base context
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Both jobs must have survived as incomplete records (the drain
	// interruption is deliberately not a terminal failure).
	store2, recovered, err := jobstore.Open(jobstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	incomplete := 0
	for _, rec := range recovered {
		if !rec.Complete() {
			incomplete++
		}
	}
	if incomplete != 2 {
		t.Fatalf("incomplete jobs after drain = %d, want 2", incomplete)
	}

	// Life 2: no fault injection, same store. Both jobs are re-enqueued
	// ahead of new work and run to completion with the recovered flag.
	s2 := New(Config{Workers: 1, Store: store2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
		store2.Close()
	})
	for _, req := range []JobRequest{running, queued} {
		j, ok := s2.lookup(req.ID)
		if !ok {
			t.Fatalf("job %s not recovered into the job table", req.ID)
		}
		select {
		case <-j.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("recovered job %s did not finish", req.ID)
		}
		st := j.status()
		if st.State != StateDone {
			t.Fatalf("recovered job %s: state %q (%s/%s), want done", req.ID, st.State, st.Error, st.ErrorKind)
		}
		if !st.Recovered {
			t.Fatalf("job %s lost its recovered flag: %+v", req.ID, st)
		}

		// Byte-identity: the recovered run must match a fresh fixed-seed
		// run of the same request (the resume marker aside).
		ref := New(Config{})
		want, err := ref.LocalAttempt()(context.Background(), &req)
		if err != nil {
			t.Fatal(err)
		}
		got := *st.Result
		got.ResumedFromAttempt = nil
		if g, w := mustJSONString(t, &got), mustJSONString(t, want); g != w {
			t.Fatalf("recovered result for %s diverged:\n got %s\nwant %s", req.ID, g, w)
		}

		// Checkpoint identity pins the trace: the resumed run derives
		// the same trace ID the original life did, so both lives' spans
		// belong to one logical trace.
		jt, root := j.traceRef()
		if want := span.DeriveTraceID(req.ID, req.Seed, req.Solutions); jt != want {
			t.Fatalf("recovered job %s trace %s, want the checkpoint-derived %s", req.ID, jt, want)
		}
		if root == 0 {
			t.Fatalf("recovered job %s has no root span", req.ID)
		}
		spans, _ := s2.cfg.Tracer.Collector().Trace(jt)
		names := make(map[string]bool)
		for _, sp := range spans {
			names[sp.Name] = true
		}
		if !names["job"] || !names["search"] {
			t.Fatalf("recovered job %s trace lacks the core spans (have %v)", req.ID, names)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		ref.Shutdown(ctx)
		cancel()
	}
}

// TestRecoveredCompletedJobQueryable: finished jobs survive a restart
// as queryable results — GET /v1/jobs/{id} keeps working across
// process lives.
func TestRecoveredCompletedJobQueryable(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{ID: "job-done", Circuit: circuitText(t, 120, 1), Solutions: 2, Seed: 1}

	store1 := openStore(t, dir)
	s1, ts1 := newTestServer(t, Config{Store: store1})
	resp, _ := postJSON(t, ts1.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	first := waitDone(t, ts1.URL, req.ID)
	if first.State != StateDone {
		t.Fatalf("job failed: %+v", first)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	s1.Shutdown(ctx)
	cancel()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := openStore(t, dir)
	_, ts2 := newTestServer(t, Config{Store: store2})
	code, st := getStatus(t, ts2.URL+"/v1/jobs/"+req.ID)
	if code != http.StatusOK {
		t.Fatalf("GET recovered job: %d", code)
	}
	if st.State != StateDone || !st.Recovered || st.Result == nil {
		t.Fatalf("recovered completed job: %+v", st)
	}
	if st.Result.DeviceCost != first.Result.DeviceCost {
		t.Fatalf("recovered result drifted: %v vs %v", st.Result.DeviceCost, first.Result.DeviceCost)
	}
	// Idempotent re-POST of the known ID returns the stored outcome
	// instead of re-running.
	resp2, st2 := postJSON(t, ts2.URL+"/v1/jobs", req)
	if resp2.StatusCode != http.StatusOK || st2.State != StateDone {
		t.Fatalf("replay across restart: %d %+v", resp2.StatusCode, st2)
	}
}

// TestErrorKindsTable enumerates the typed error kinds: every non-2xx
// API response must carry an apiError.Kind (or JobStatus.ErrorKind)
// matching its HTTP status.
func TestErrorKindsTable(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		pre    func(t *testing.T, s *Server, base string)
		method string
		path   string
		body   string
		status int
		kind   string
	}{
		{
			name: "malformed", method: "POST", path: "/v1/partition",
			body:   "circuit c\ncell u0 area\n",
			status: http.StatusBadRequest, kind: KindMalformed,
		},
		{
			name: "infeasible",
			cfg: Config{Inject: faultinject.NewPlan(faultinject.Rule{
				Site: faultinject.SiteAttempt, Kind: faultinject.KindPanic,
				Attempt: faultinject.Any, Index: faultinject.Any,
			})},
			method: "POST", path: "/v1/partition?solutions=2&seed=1", body: "CIRCUIT",
			status: http.StatusUnprocessableEntity, kind: KindInfeasible,
		},
		{
			name:   "timeout",
			cfg:    Config{Inject: faultinject.NewPlan(faultinject.DelayAtAttempt(faultinject.Any, 500*time.Millisecond))},
			method: "POST", path: "/v1/partition?solutions=2&seed=1&timeout_ms=50", body: "CIRCUIT",
			status: http.StatusGatewayTimeout, kind: KindTimeout,
		},
		{
			name: "not_found_job", method: "GET", path: "/v1/jobs/ghost",
			status: http.StatusNotFound, kind: KindNotFound,
		},
		{
			name: "not_found_endpoint", method: "GET", path: "/v1/nothing",
			status: http.StatusNotFound, kind: KindNotFound,
		},
		{
			name: "method_not_allowed", method: "DELETE", path: "/v1/partition",
			status: http.StatusMethodNotAllowed, kind: KindMethodNotAllowed,
		},
		{
			name: "overload",
			cfg:  Config{Workers: 1, QueueDepth: 1, Inject: faultinject.NewPlan(faultinject.DelayAtAttempt(faultinject.Any, time.Second))},
			pre: func(t *testing.T, s *Server, base string) {
				// Saturate the single worker and the one-deep queue so the
				// probed submission is shed.
				circuit := circuitText(t, 120, 1)
				for i := 0; i < 2; i++ {
					resp, err := http.Post(base+"/v1/jobs?solutions=1", "text/plain", newBody(circuit))
					if err != nil {
						t.Fatal(err)
					}
					resp.Body.Close()
				}
			},
			method: "POST", path: "/v1/jobs?solutions=1", body: "CIRCUIT",
			status: http.StatusTooManyRequests, kind: KindOverload,
		},
		{
			name: "draining",
			pre: func(t *testing.T, s *Server, base string) {
				s.admit.Lock()
				if !s.draining {
					s.draining = true
					close(s.queue)
				}
				s.admit.Unlock()
				s.workers.Wait()
			},
			method: "POST", path: "/v1/partition?solutions=1", body: "CIRCUIT",
			status: http.StatusServiceUnavailable, kind: KindDraining,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, ts := newTestServer(t, tc.cfg)
			if tc.pre != nil {
				tc.pre(t, s, ts.URL)
			}
			body := tc.body
			if body == "CIRCUIT" {
				body = circuitText(t, 120, 1)
			}
			httpReq, err := http.NewRequest(tc.method, ts.URL+tc.path, newBody(body))
			if err != nil {
				t.Fatal(err)
			}
			if body != "" {
				httpReq.Header.Set("Content-Type", "text/plain")
			}
			resp, err := http.DefaultClient.Do(httpReq)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var e struct {
				Kind      string `json:"error_kind"`
				Error     string `json:"error"`
				ErrorKind string `json:"-"`
			}
			if err := decodeJSONBody(resp, &e); err != nil {
				t.Fatal(err)
			}
			if e.Kind != tc.kind {
				t.Fatalf("error_kind %q (%q), want %q", e.Kind, e.Error, tc.kind)
			}
		})
	}

	// The sync endpoint's kind→status mapping, pinned for every kind
	// (canceled and internal are hard to provoke over HTTP reliably).
	mapping := map[string]int{
		KindMalformed:  http.StatusBadRequest,
		KindInfeasible: http.StatusUnprocessableEntity,
		KindTimeout:    http.StatusGatewayTimeout,
		KindCanceled:   http.StatusServiceUnavailable,
		KindInternal:   http.StatusInternalServerError,
	}
	for kind, want := range mapping {
		if got := syncFailureStatus(kind); got != want {
			t.Errorf("syncFailureStatus(%q) = %d, want %d", kind, got, want)
		}
	}
}
