package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"fpgapart/internal/core"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/netlist"
	"fpgapart/internal/span"
	"fpgapart/internal/techmap"
	"fpgapart/internal/topology"
	"fpgapart/internal/trace"
)

// JobRequest is the submission schema for POST /v1/jobs and the JSON
// form of POST /v1/partition.
type JobRequest struct {
	// ID is an optional client-chosen idempotency key: re-posting a
	// known ID returns the existing job instead of re-running it.
	ID string `json:"id,omitempty"`
	// Circuit is the circuit source text; Format selects the dialect:
	// "clb" (mapped circuit, default) or "gnl" (gate-level netlist,
	// technology-mapped before partitioning).
	Circuit string `json:"circuit"`
	Format  string `json:"format,omitempty"`
	// Threshold is the replication threshold T (null = library default;
	// -1 disables replication). Solutions, Seed and MaxStale mirror the
	// kpart flags.
	Threshold *int  `json:"threshold,omitempty"`
	Solutions int   `json:"solutions,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	MaxStale  int   `json:"max_stale,omitempty"`
	// Multilevel routes large carve subproblems through the multilevel
	// V-cycle (see core.Options.Multilevel). Off by default.
	Multilevel bool `json:"multilevel,omitempty"`
	// RefineWorkers selects the FM refinement engine: values >= 2 run
	// the deterministic parallel sub-round engine with that many
	// proposal workers, 0 or 1 the classic serial engine (see
	// core.Options.RefineWorkers).
	RefineWorkers int `json:"refine_workers,omitempty"`
	// TimeoutMS bounds the search wall clock (0 = server default,
	// capped at the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Board, when non-empty, is a board topology spec — crossbar:N[:CAP],
	// linear:N[:CAP] or mesh:RxC[:CAP] — switching the search to the
	// hop-weighted interconnect objective (see core.Options.Board). Only
	// inline specs are accepted; board-description files stay a CLI
	// feature because an HTTP request must not name server-side paths.
	Board string `json:"board,omitempty"`
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Recovered marks a job replayed from the durable store after a
	// restart; it persists through the job's remaining lifecycle.
	Recovered bool       `json:"recovered,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Error     string     `json:"error,omitempty"`
	ErrorKind string     `json:"error_kind,omitempty"`
	// Spans carries this process's recorded spans for the job, returned
	// only on synchronous responses whose request arrived with a W3C
	// traceparent header — the coordinator ingests them to stitch one
	// cross-process trace.
	Spans []span.Span `json:"spans,omitempty"`
}

// JobResult is the solution summary, including the degradation
// contract: Degraded means at least one solution attempt died to a
// contained panic and the result is the deterministic best of the
// survivors.
type JobResult struct {
	Circuit         string  `json:"circuit"`
	K               int     `json:"k"`
	DeviceCost      float64 `json:"device_cost"`
	AvgCLBUtil      float64 `json:"avg_clb_util"`
	AvgIOBUtil      float64 `json:"avg_iob_util"`
	ReplicatedCells int     `json:"replicated_cells"`
	SourceCells     int     `json:"source_cells"`
	Feasible        int     `json:"feasible"`
	Failed          int     `json:"failed"`
	Stopped         string  `json:"stopped,omitempty"`
	Board           string  `json:"board,omitempty"`
	TopoCost        *int    `json:"topo_cost,omitempty"`
	Degraded        bool    `json:"degraded"`
	Panicked        int     `json:"panicked,omitempty"`
	PanickedSeeds   []int64 `json:"panicked_seeds,omitempty"`
	// ResumedFromAttempt is set when the search resumed from a durable
	// checkpoint: the attempt index the resumed fold restarted at.
	ResumedFromAttempt *int          `json:"resumed_from_attempt,omitempty"`
	Parts              []PartSummary `json:"parts"`
}

// PartSummary describes one part of the solution.
type PartSummary struct {
	Device    string `json:"device"`
	CLBs      int    `json:"clbs"`
	Terminals int    `json:"terminals"`
	Cells     int    `json:"cells"`
	Replicas  int    `json:"replicas"`
}

func resultJSON(g *hypergraph.Graph, res core.Result, board *topology.Board) *JobResult {
	out := &JobResult{
		Circuit:         g.Name,
		K:               res.Summary.K(),
		DeviceCost:      res.Summary.DeviceCost(),
		AvgCLBUtil:      res.Summary.AvgCLBUtil(),
		AvgIOBUtil:      res.Summary.AvgIOBUtil(),
		ReplicatedCells: res.Summary.ReplicatedCells(),
		SourceCells:     res.SourceCells,
		Feasible:        res.Feasible,
		Failed:          res.Failed,
		Stopped:         res.Stopped,
		Degraded:        res.Degraded,
		Panicked:        res.Panicked,
		PanickedSeeds:   res.PanickedSeeds,
	}
	if res.Summary.HasTopo && board != nil {
		out.Board = board.Name
		topo := res.Summary.TopoCost
		out.TopoCost = &topo
	}
	if res.Resumed {
		from := res.ResumedFrom
		out.ResumedFromAttempt = &from
	}
	for _, p := range res.Parts {
		out.Parts = append(out.Parts, PartSummary{
			Device: p.Device.Name, CLBs: p.Graph.TotalArea(),
			Terminals: p.Graph.NumTerminals(), Cells: p.Graph.NumCells(), Replicas: p.Replicas,
		})
	}
	return out
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	s.mux.HandleFunc("POST /v1/partition", s.instrument("/v1/partition", s.handleSync))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	}))
	s.mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /debug/buildinfo", s.instrument("/debug/buildinfo", handleBuildInfo))
	s.mux.HandleFunc("GET /debug/trace/{job}", s.instrument("/debug/trace/{job}", s.handleTraceGet))
	s.mux.HandleFunc("GET /debug/flightrecorder", s.instrument("/debug/flightrecorder", s.handleFlightRecorder))
	if s.cfg.EnablePprof {
		// pprof handlers stay uninstrumented: profile endpoints block for
		// their sampling window and would dominate the latency histogram.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// readyzStatus is the JSON body of GET /readyz: load balancers key on
// the status code, operators read the queue depth from the body.
type readyzStatus struct {
	Ready      bool `json:"ready"`
	Draining   bool `json:"draining"`
	QueueDepth int  `json:"queue_depth"`
}

// handleReadyz reports readiness: 200 while accepting jobs, 503 during
// drain, always with the current queue depth in the body.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := s.Ready()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, readyzStatus{Ready: ready, Draining: !ready, QueueDepth: len(s.queue)})
}

// handleMetrics serves the registry in Prometheus text exposition
// format 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Metrics.WriteText(w)
}

// handleBuildInfo dumps the module and VCS metadata baked into the
// binary, so an operator can tie a running instance to a commit.
func handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no build info", Kind: KindNotFound})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, info.String())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"error_kind,omitempty"`
}

// muxErrorWriter rewrites the text/plain 404 and 405 bodies the
// ServeMux generates itself (unknown path, wrong verb on a known
// pattern) into the apiError JSON schema, so every non-2xx response on
// the API carries a typed error kind. Handler-written JSON errors pass
// through untouched — the rewrite triggers only when the Content-Type
// at WriteHeader time is not application/json.
type muxErrorWriter struct {
	http.ResponseWriter
	suppress bool
}

func (w *muxErrorWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.suppress = true
		kind, msg := KindNotFound, "unknown endpoint"
		if code == http.StatusMethodNotAllowed {
			kind, msg = KindMethodNotAllowed, "method not allowed"
		}
		w.Header().Set("Content-Type", "application/json")
		w.ResponseWriter.WriteHeader(code)
		json.NewEncoder(w.ResponseWriter).Encode(apiError{Error: msg, Kind: kind})
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *muxErrorWriter) Write(b []byte) (int, error) {
	if w.suppress {
		// Swallow the mux's plain-text body; the JSON replacement is
		// already written.
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

// parseRequest turns a JobRequest into an admitted job's inputs.
// Parse failures return a *netlist.ParseError / *hypergraph.ParseError
// for the 400 path, with line/column context intact.
func (s *Server) parseRequest(req *JobRequest) (*hypergraph.Graph, core.Options, time.Duration, error) {
	parseStart := s.clock.Now()
	defer func() {
		s.met.bridge.Event(trace.Event{
			Kind: trace.KindPhase, Attempt: -1,
			Phase: trace.PhaseParse, Dur: s.clock.Now().Sub(parseStart),
		})
	}()
	var g *hypergraph.Graph
	switch req.Format {
	case "", "clb":
		gg, err := hypergraph.ReadLimits(strings.NewReader(req.Circuit), s.cfg.GraphLimits)
		if err != nil {
			return nil, core.Options{}, 0, err
		}
		g = gg
	case "gnl":
		n, err := netlist.ReadLimits(strings.NewReader(req.Circuit), s.cfg.NetLimits)
		if err != nil {
			return nil, core.Options{}, 0, err
		}
		m, err := techmap.Map(n, techmap.Options{Seed: req.Seed})
		if err != nil {
			return nil, core.Options{}, 0, err
		}
		g = m.Graph
	default:
		return nil, core.Options{}, 0, fmt.Errorf("unknown format %q (want \"clb\" or \"gnl\")", req.Format)
	}
	opts := core.Options{
		Library:       s.cfg.Library,
		Solutions:     req.Solutions,
		Seed:          req.Seed,
		MaxStale:      req.MaxStale,
		Multilevel:    req.Multilevel,
		RefineWorkers: req.RefineWorkers,
		Inject:        s.cfg.Inject,
	}
	if req.Threshold != nil {
		opts.Threshold = *req.Threshold
	}
	if req.Board != "" {
		// ParseSpec only — never FromArg: a request must not be able to
		// point the server at a filesystem path.
		b, err := topology.ParseSpec(req.Board)
		if err != nil {
			return nil, core.Options{}, 0, err
		}
		opts.Board = b
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return g, opts, timeout, nil
}

// decodeRequest reads the request body into a JobRequest. A JSON body
// (Content-Type application/json or a body starting with '{') uses the
// JobRequest schema; anything else is treated as raw circuit text with
// parameters from the query string — so a CI smoke test can POST a
// .clb file directly with curl --data-binary.
func decodeRequest(r *http.Request) (*JobRequest, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	ct := r.Header.Get("Content-Type")
	isJSON := strings.HasPrefix(ct, "application/json") ||
		(ct == "" && len(body) > 0 && body[0] == '{')
	if isJSON {
		req := new(JobRequest)
		if err := json.Unmarshal(body, req); err != nil {
			return nil, fmt.Errorf("invalid JSON body: %w", err)
		}
		return req, nil
	}
	req := &JobRequest{Circuit: string(body)}
	q := r.URL.Query()
	req.ID = q.Get("id")
	req.Format = q.Get("format")
	req.Board = q.Get("board")
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", v)
		}
		req.Seed = n
	}
	for _, p := range []struct {
		key string
		dst *int
	}{{"solutions", &req.Solutions}, {"max_stale", &req.MaxStale}, {"refine_workers", &req.RefineWorkers}} {
		if v := q.Get(p.key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("bad %s %q", p.key, v)
			}
			*p.dst = n
		}
	}
	if v := q.Get("threshold"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q", v)
		}
		req.Threshold = &n
	}
	if v := q.Get("multilevel"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return nil, fmt.Errorf("bad multilevel %q", v)
		}
		req.Multilevel = b
	}
	if v := q.Get("timeout_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad timeout_ms %q", v)
		}
		req.TimeoutMS = n
	}
	return req, nil
}

// admissionError writes the non-202 admission outcomes.
func (s *Server) admissionError(w http.ResponseWriter, status int) {
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, status, apiError{Error: "job queue full, retry later", Kind: KindOverload})
	case http.StatusServiceUnavailable:
		writeJSON(w, status, apiError{Error: "server is draining", Kind: KindDraining})
	default:
		writeJSON(w, status, apiError{Error: http.StatusText(status), Kind: KindInternal})
	}
}

// parseFailure writes the 400 response for a malformed circuit,
// keeping the parser's line/column context.
func parseFailure(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Kind: KindMalformed})
}

func isParseError(err error) bool {
	var nperr *netlist.ParseError
	var hperr *hypergraph.ParseError
	return errors.As(err, &nperr) || errors.As(err, &hperr)
}

// handleSubmit admits an asynchronous job: 202 with the job status on
// admission, 200 when the ID is already known (idempotent retry), 400
// on malformed input, 429 when the queue is full, 503 when draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Kind: KindMalformed})
		return
	}
	g, opts, timeout, err := s.parseRequest(req)
	if err != nil {
		parseFailure(w, err)
		return
	}
	tid, parent, _ := span.ParseTraceparent(r.Header.Get("traceparent"))
	j, status := s.submit(requestID(r.Context()), tid, parent, req, g, opts, timeout)
	if j == nil {
		s.admissionError(w, status)
		return
	}
	writeJSON(w, status, j.status())
}

// handleJobGet is the retry-safe result lookup.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job", Kind: KindNotFound})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleSync admits a job and waits for it, mapping the job's failure
// kind to an HTTP status. If the client goes away first the job is
// canceled at its next deterministic checkpoint. A request that
// arrived with a traceparent header gets the job's recorded spans in
// the response, so the caller can stitch them into its own trace.
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Kind: KindMalformed})
		return
	}
	g, opts, timeout, err := s.parseRequest(req)
	if err != nil {
		parseFailure(w, err)
		return
	}
	tid, parent, traced := span.ParseTraceparent(r.Header.Get("traceparent"))
	j, status := s.submit(requestID(r.Context()), tid, parent, req, g, opts, timeout)
	if j == nil {
		s.admissionError(w, status)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		j.mu.Lock()
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
		<-j.done
	}
	st := j.status()
	if traced {
		// Return the subtree under the job's own root span — exactly
		// this job's spans, even when other work shares the trace.
		jt, root := j.traceRef()
		if !jt.IsZero() && root != 0 {
			st.Spans = s.cfg.Tracer.Collector().Subtree(jt, root)
		}
	}
	if st.State == StateDone {
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, syncFailureStatus(st.ErrorKind), st)
}

// traceStatus is the JSON body of GET /debug/trace/{job}: the job's
// span forest, cross-process when worker spans were ingested.
type traceStatus struct {
	Job   string       `json:"job"`
	Trace span.TraceID `json:"trace"`
	// Dropped counts spans lost to the per-trace retention bound.
	Dropped int          `json:"dropped,omitempty"`
	Spans   int          `json:"spans"`
	Tree    []*span.Node `json:"tree"`
}

// handleTraceGet serves one job's span tree as JSON.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("job"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job", Kind: KindNotFound})
		return
	}
	tid, _ := j.traceRef()
	if tid.IsZero() {
		writeJSON(w, http.StatusNotFound, apiError{Error: "job has not started; no trace yet", Kind: KindNotFound})
		return
	}
	spans, dropped := s.cfg.Tracer.Collector().Trace(tid)
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no spans recorded for job", Kind: KindNotFound})
		return
	}
	writeJSON(w, http.StatusOK, traceStatus{
		Job: j.id, Trace: tid, Dropped: dropped, Spans: len(spans), Tree: span.Tree(spans),
	})
}

// flightStatus is the JSON body of GET /debug/flightrecorder: the
// last-N completed spans of this process, oldest first.
type flightStatus struct {
	Process string      `json:"process"`
	Total   uint64      `json:"total"`
	Spans   []span.Span `json:"spans"`
}

// handleFlightRecorder serves the process's bounded flight-recorder
// ring — the always-on "what was this process just doing" view.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	spans, total := s.cfg.Tracer.Flight().Snapshot()
	writeJSON(w, http.StatusOK, flightStatus{Process: s.cfg.Tracer.Process(), Total: total, Spans: spans})
}

func syncFailureStatus(kind string) int {
	switch kind {
	case KindMalformed:
		return http.StatusBadRequest
	case KindInfeasible:
		return http.StatusUnprocessableEntity
	case KindTimeout:
		return http.StatusGatewayTimeout
	case KindCanceled:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
