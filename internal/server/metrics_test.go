package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"fpgapart/internal/telemetry"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue finds the sample with the given name-plus-labels prefix
// and returns its value. Exposition lines are "<series> <value>".
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %q not found in exposition:\n%s", series, exposition)
	return 0
}

// The acceptance scrape: after a completed job, /metrics must show a
// non-zero request-latency histogram count, the engine's carve
// counters fed through the bridge, the queue-depth gauge, and the
// job-outcome counter.
func TestMetricsAfterCompletedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// 400 cells overflow the largest library device, so the search must
	// actually carve (and run FM) rather than fit the whole circuit.
	resp, st := postJSON(t, ts.URL+"/v1/partition", JobRequest{Circuit: circuitText(t, 400, 1), Solutions: 3, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: %d (%+v)", resp.StatusCode, st)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("response missing X-Request-Id")
	}

	out := scrape(t, ts.URL)
	if n := metricValue(t, out, `fpgapart_http_request_duration_seconds_count{endpoint="/v1/partition"}`); n < 1 {
		t.Fatalf("request latency count = %v, want >= 1", n)
	}
	if n := metricValue(t, out, "fpgapart_carve_accepted_total"); n < 1 {
		t.Fatalf("carve accepted = %v, want >= 1 (bridge not fed?)", n)
	}
	if n := metricValue(t, out, "fpgapart_fm_passes_total"); n < 1 {
		t.Fatalf("fm passes = %v, want >= 1", n)
	}
	if n := metricValue(t, out, "fpgapart_queue_depth"); n != 0 {
		t.Fatalf("queue depth = %v, want 0 at idle", n)
	}
	if n := metricValue(t, out, `fpgapart_jobs_total{outcome="done"}`); n != 1 {
		t.Fatalf("jobs done = %v, want 1", n)
	}
	if n := metricValue(t, out, `fpgapart_http_requests_total{endpoint="/v1/partition",code="200"}`); n < 1 {
		t.Fatalf("request counter = %v, want >= 1", n)
	}
	// Engine phases (parse at admission, search/fold/verify per job)
	// land in the phase histogram.
	for _, phase := range []string{"parse", "search"} {
		if n := metricValue(t, out, `fpgapart_phase_seconds_count{phase="`+phase+`"}`); n < 1 {
			t.Fatalf("phase %q count = %v, want >= 1", phase, n)
		}
	}
}

// A shared registry lets an operator merge several components into one
// exposition; the server must instrument into the provided registry
// rather than a private one.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("myapp_custom_total", "A caller-owned metric.").Add(7)
	_, ts := newTestServer(t, Config{Metrics: reg})
	out := scrape(t, ts.URL)
	if n := metricValue(t, out, "myapp_custom_total"); n != 7 {
		t.Fatalf("caller metric = %v, want 7", n)
	}
	metricValue(t, out, "fpgapart_workers") // server metrics live in the same registry
}

// An injected fake clock must drive the latency histogram: with no
// advance between readings every observation is exactly zero, so the
// whole count lands in the first bucket — deterministic latency
// metrics for tests.
func TestMetricsFakeClock(t *testing.T) {
	fc := telemetry.NewFakeClock(time.Unix(1_700_000_000, 0))
	_, ts := newTestServer(t, Config{Clock: fc})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := scrape(t, ts.URL)
	count := metricValue(t, out, `fpgapart_http_request_duration_seconds_count{endpoint="/healthz"}`)
	first := metricValue(t, out, `fpgapart_http_request_duration_seconds_bucket{endpoint="/healthz",le="0.001"}`)
	if count != 1 || first != 1 {
		t.Fatalf("fake-clock latency: count=%v first-bucket=%v, want 1/1", count, first)
	}
}

// The readiness probe is JSON in both states and flips to 503 with the
// drain flag set the moment Shutdown starts — the regression test for
// the drain transition.
func TestReadyzJSONDrainTransition(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	getReady := func(wantCode int) readyzStatus {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("readyz: %d, want %d", resp.StatusCode, wantCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("readyz content type %q", ct)
		}
		var rs readyzStatus
		if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
			t.Fatalf("readyz body not JSON: %v", err)
		}
		return rs
	}

	if rs := getReady(http.StatusOK); !rs.Ready || rs.Draining {
		t.Fatalf("serving state: %+v", rs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if rs := getReady(http.StatusServiceUnavailable); rs.Ready || !rs.Draining || rs.QueueDepth != 0 {
		t.Fatalf("draining state: %+v", rs)
	}
}

// Admission rejections must be visible as shed counters by reason.
func TestShedCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 1, Seed: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d", resp.StatusCode)
	}
	out := scrape(t, ts.URL)
	if n := metricValue(t, out, `fpgapart_admission_rejects_total{reason="draining"}`); n != 1 {
		t.Fatalf("draining shed counter = %v, want 1", n)
	}
}

// pprof and buildinfo are operator surface: buildinfo is always on,
// pprof only behind the flag.
func TestDebugEndpoints(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without flag: %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	for _, ep := range []string{"/debug/pprof/", "/debug/buildinfo"} {
		resp, err := http.Get(on.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d\n%s", ep, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", ep)
		}
	}
}
