package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"fpgapart/internal/telemetry"
)

// Server metric names, complementing the engine vocabulary exported by
// internal/telemetry's bridge (fpgapart_carve_*, fpgapart_fm_*, ...).
const (
	metricRequestDuration = "fpgapart_http_request_duration_seconds"
	metricRequestsTotal   = "fpgapart_http_requests_total"
	metricAdmissionReject = "fpgapart_admission_rejects_total"
	metricQueueDepth      = "fpgapart_queue_depth"
	metricJobsInflight    = "fpgapart_jobs_inflight"
	metricWorkers         = "fpgapart_workers"
	metricWorkersBusy     = "fpgapart_workers_busy"
	metricJobsTotal       = "fpgapart_jobs_total"
	metricJobFailures     = "fpgapart_job_failures_total"
	metricJobsDegraded    = "fpgapart_jobs_degraded_total"
)

// metricsBundle holds every pre-resolved series the request and job
// paths observe, so steady-state handling never creates series. The
// engine bridge rides along: every job's trace stream feeds it.
type metricsBundle struct {
	bridge *telemetry.Bridge

	reqLatency *telemetry.HistogramVec // {endpoint}
	reqTotal   *telemetry.CounterVec   // {endpoint, code}

	shedQueueFull *telemetry.Counter
	shedDraining  *telemetry.Counter

	jobsInflight *telemetry.Gauge
	workersBusy  *telemetry.Gauge

	jobsDone        *telemetry.Counter
	jobsFailed      *telemetry.Counter
	jobFailures     map[string]*telemetry.Counter // by error kind
	jobFailureOther *telemetry.Counter
	degraded        *telemetry.Counter
}

func newMetricsBundle(reg *telemetry.Registry, workers int, queueDepth func() float64) *metricsBundle {
	m := &metricsBundle{
		bridge: telemetry.NewBridge(reg),
		reqLatency: reg.HistogramVec(metricRequestDuration,
			"HTTP request latency by endpoint pattern.", telemetry.LatencyBuckets(), "endpoint"),
		reqTotal: reg.CounterVec(metricRequestsTotal,
			"HTTP requests by endpoint pattern and status code.", "endpoint", "code"),
		jobsInflight: reg.Gauge(metricJobsInflight, "Jobs currently running on the worker pool."),
		workersBusy:  reg.Gauge(metricWorkersBusy, "Workers currently executing a job."),
		jobsDone:     reg.CounterVec(metricJobsTotal, "Completed jobs by outcome.", "outcome").With("done"),
		jobsFailed:   reg.CounterVec(metricJobsTotal, "Completed jobs by outcome.", "outcome").With("failed"),
		jobFailures:  make(map[string]*telemetry.Counter),
		degraded:     reg.Counter(metricJobsDegraded, "Jobs that completed degraded (contained worker panic)."),
	}
	shed := reg.CounterVec(metricAdmissionReject, "Submissions rejected at admission, by reason.", "reason")
	m.shedQueueFull = shed.With("queue-full")
	m.shedDraining = shed.With("draining")
	failures := reg.CounterVec(metricJobFailures, "Failed jobs by error kind.", "kind")
	for _, kind := range []string{KindMalformed, KindInfeasible, KindTimeout, KindCanceled, KindInternal} {
		m.jobFailures[kind] = failures.With(kind)
	}
	m.jobFailureOther = failures.With("other")
	reg.Gauge(metricWorkers, "Size of the worker pool.").Set(int64(workers))
	reg.GaugeFunc(metricQueueDepth, "Jobs admitted but not yet running.", queueDepth)
	return m
}

// observeJobFailure bumps the failed-job counters for one error kind.
func (m *metricsBundle) observeJobFailure(kind string) {
	m.jobsFailed.Inc()
	c, ok := m.jobFailures[kind]
	if !ok {
		c = m.jobFailureOther
	}
	c.Inc()
}

// requestIDKey carries the per-request ID through handler contexts so
// job lifecycle logs can be joined back to the HTTP request that
// submitted them.
type requestIDKey struct{}

// requestID returns the request ID stored by instrument ("" outside a
// request context).
func requestID(ctx context.Context) string {
	v, _ := ctx.Value(requestIDKey{}).(string)
	return v
}

// RequestIDFromContext returns the request ID instrument stored in a
// handler's context ("" outside one). The coordinator uses it to
// forward the submitting request's ID to workers.
func RequestIDFromContext(ctx context.Context) string { return requestID(ctx) }

// ContextWithRequestID returns ctx carrying rid, in the slot
// RequestIDFromContext reads. The server stamps it onto the context it
// hands the Distribute hook.
func ContextWithRequestID(ctx context.Context, rid string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, rid)
}

// maxRequestIDLen bounds an inbound X-Request-Id before the server
// adopts it, so a hostile header cannot bloat logs.
const maxRequestIDLen = 64

// validRequestID accepts inbound IDs of sane length made of printable
// non-space ASCII (a header cannot carry control bytes into logs).
func validRequestID(rid string) bool {
	if rid == "" || len(rid) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(rid); i++ {
		if rid[i] <= ' ' || rid[i] > '~' {
			return false
		}
	}
	return true
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint observability
// envelope: a request ID (echoed in X-Request-Id and threaded through
// the context into job logs), a latency histogram observation and a
// request counter labeled with the final status. A request that
// arrives with a well-formed X-Request-Id keeps it — a coordinator's
// ID follows the job onto the worker's logs — otherwise the server
// mints a process-unique one. The endpoint label is the route
// pattern, never the raw path, so cardinality stays bounded.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	latency := s.met.reqLatency.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-Id")
		if !validRequestID(rid) {
			rid = fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", rid)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := s.clock.Now()
		h(rec, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid)))
		latency.Observe(s.clock.Now().Sub(start).Seconds())
		s.met.reqTotal.With(endpoint, strconv.Itoa(rec.code)).Inc()
	}
}
