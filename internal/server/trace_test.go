package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"fpgapart/internal/span"
)

// postTraced posts a sync partition request with a traceparent header
// and returns the decoded status.
func postTraced(t *testing.T, url, traceparent string, req JobRequest) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("traceparent", traceparent)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return resp, st
}

// A synchronous request carrying a W3C traceparent must come back with
// the job's span subtree: same trace ID as the header, the job root
// parented under the caller's span — the wire contract coordinator
// fan-out relies on to stitch one cross-process trace.
func TestSyncTraceparentRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const parentHex = "00000000000000aa"
	tp := "00-0123456789abcdef0123456789abcdef-" + parentHex + "-01"
	wantTrace, wantParent, ok := span.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("test traceparent %q does not parse", tp)
	}
	resp, st := postTraced(t, ts.URL+"/v1/partition", tp, JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 3, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: %d (%+v)", resp.StatusCode, st)
	}
	if len(st.Spans) == 0 {
		t.Fatal("traced sync response carries no spans")
	}
	var root *span.Span
	for i := range st.Spans {
		s := &st.Spans[i]
		if s.Trace != wantTrace {
			t.Fatalf("span %s on trace %s, want %s", s.Name, s.Trace, wantTrace)
		}
		if s.Name == "job" {
			root = s
		}
	}
	if root == nil {
		t.Fatalf("no job root span in %d returned spans", len(st.Spans))
	}
	if root.Parent != wantParent {
		t.Fatalf("job root parent %d, want %d (the caller's span)", root.Parent, wantParent)
	}
	// An untraced request must stay lean: no span payload.
	resp2, st2 := postJSON(t, ts.URL+"/v1/partition", JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 3, Seed: 1})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("untraced sync: %d", resp2.StatusCode)
	}
	if len(st2.Spans) != 0 {
		t.Fatalf("untraced response carries %d spans", len(st2.Spans))
	}
}

// GET /debug/trace/{job} serves the span tree of a completed job, and
// 404s for unknown jobs.
func TestDebugTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, st := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 3, Seed: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("job failed: %+v", final)
	}
	hres, err := http.Get(ts.URL + "/debug/trace/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: %d", hres.StatusCode)
	}
	var tr struct {
		Job   string       `json:"job"`
		Trace string       `json:"trace"`
		Spans int          `json:"spans"`
		Tree  []*span.Node `json:"tree"`
	}
	if err := json.NewDecoder(hres.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Job != st.ID || tr.Spans == 0 || len(tr.Tree) == 0 {
		t.Fatalf("bad trace body: %+v", tr)
	}
	if tr.Tree[0].Name != "job" {
		t.Fatalf("tree root %q, want \"job\"", tr.Tree[0].Name)
	}
	// The span vocabulary of an in-process run.
	names := make(map[string]bool)
	var walk func(n *span.Node)
	walk = func(n *span.Node) {
		names[n.Name] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range tr.Tree {
		walk(n)
	}
	for _, want := range []string{"job", "search", "attempt", "fold"} {
		if !names[want] {
			t.Fatalf("trace tree missing %q (have %v)", want, names)
		}
	}
	if res, err := http.Get(ts.URL + "/debug/trace/no-such-job"); err != nil {
		t.Fatal(err)
	} else {
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: %d, want 404", res.StatusCode)
		}
	}
}

// GET /debug/flightrecorder exposes the bounded ring of recently
// completed spans — non-empty once any job has run.
func TestDebugFlightRecorder(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, st := postJSON(t, ts.URL+"/v1/partition", JobRequest{Circuit: circuitText(t, 120, 1), Solutions: 2, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: %d (%+v)", resp.StatusCode, st)
	}
	hres, err := http.Get(ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("flightrecorder: %d", hres.StatusCode)
	}
	var fs struct {
		Process string      `json:"process"`
		Total   uint64      `json:"total"`
		Spans   []span.Span `json:"spans"`
	}
	if err := json.NewDecoder(hres.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	if fs.Process != "kpartd" {
		t.Fatalf("process %q, want kpartd", fs.Process)
	}
	if fs.Total == 0 || len(fs.Spans) == 0 {
		t.Fatalf("flight recorder empty after a completed job: %+v", fs)
	}
	if fs.Total < uint64(len(fs.Spans)) {
		t.Fatalf("total %d < returned %d", fs.Total, len(fs.Spans))
	}
}

// A well-formed inbound X-Request-Id is adopted and echoed; a
// malformed one is replaced by a minted process-unique ID.
func TestRequestIDAdoption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, inbound string
		adopt         bool
	}{
		{"well-formed", "coord-abc123", true},
		{"empty", "", false},
		{"embedded space", "has a space", false},
		{"embedded tab", "bad\tid", false},
		{"overlong", strings.Repeat("x", 65), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.inbound != "" {
				req.Header.Set("X-Request-Id", tc.inbound)
			}
			res, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			res.Body.Close()
			got := res.Header.Get("X-Request-Id")
			if tc.adopt {
				if got != tc.inbound {
					t.Fatalf("adopted ID %q, want %q", got, tc.inbound)
				}
			} else {
				if got == tc.inbound || !strings.HasPrefix(got, "req-") {
					t.Fatalf("malformed inbound %q should be replaced with a minted req- ID, got %q", tc.inbound, got)
				}
			}
		})
	}
}
