// Package report renders aligned plain-text tables and simple
// horizontal bar charts for the experiment drivers, in the spirit of
// the paper's Tables I–VII and Figure 3.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends a row; values are formatted with %v, floats with %.2f
// unless already strings.
func (t *Table) Row(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case float32:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Note appends a footnote line rendered after the table body.
func (t *Table) Note(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = runeLen(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && runeLen(cell) > widths[i] {
				widths[i] = runeLen(cell)
			}
		}
	}
	total := 1
	for _, wd := range widths {
		total += wd + 3
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	rule := strings.Repeat("-", total)
	fmt.Fprintln(w, rule)
	fmt.Fprint(w, "|")
	for i, c := range t.Columns {
		fmt.Fprintf(w, " %s |", pad(c, widths[i]))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, rule)
	for _, row := range t.rows {
		fmt.Fprint(w, "|")
		for i := range t.Columns {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(w, " %s |", pad(cell, widths[i]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, rule)
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func runeLen(s string) int { return len([]rune(s)) }

// pad right-pads (left-aligns) headers and left-pads (right-aligns)
// numeric-looking cells.
func pad(s string, w int) string {
	gap := w - runeLen(s)
	if gap <= 0 {
		return s
	}
	if looksNumeric(s) {
		return strings.Repeat(" ", gap) + s
	}
	return s + strings.Repeat(" ", gap)
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '+' || r == '%' || r == ',':
		default:
			return false
		}
	}
	return true
}

// Bars renders a labeled horizontal bar chart (used for Figure 3).
type Bars struct {
	Title string
	Max   float64
	Width int // bar width in characters (default 40)
	rows  []barRow
}

type barRow struct {
	label string
	value float64
	text  string
}

// NewBars creates a bar chart.
func NewBars(title string) *Bars { return &Bars{Title: title, Width: 40} }

// Bar appends one bar with a trailing text annotation.
func (b *Bars) Bar(label string, value float64, text string) {
	if value > b.Max {
		b.Max = value
	}
	b.rows = append(b.rows, barRow{label, value, text})
}

// Render writes the chart to w.
func (b *Bars) Render(w io.Writer) {
	if b.Title != "" {
		fmt.Fprintln(w, b.Title)
	}
	width := b.Width
	if width <= 0 {
		width = 40
	}
	labelW := 0
	for _, r := range b.rows {
		if l := runeLen(r.label); l > labelW {
			labelW = l
		}
	}
	for _, r := range b.rows {
		n := 0
		if b.Max > 0 {
			n = int(r.value / b.Max * float64(width))
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(w, "  %s |%s%s %s\n",
			pad(r.label, labelW), strings.Repeat("#", n), strings.Repeat(" ", width-n), r.text)
	}
}

// String renders the chart to a string.
func (b *Bars) String() string {
	var sb strings.Builder
	b.Render(&sb)
	return sb.String()
}
