package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("TABLE X", "Circuit", "CLBs", "Cost")
	tb.Row("c3540", 283, 543.0)
	tb.Row("s38584", 2941, 4210.5)
	tb.Note("threshold T = %d", 1)
	out := tb.String()
	if !strings.Contains(out, "TABLE X") {
		t.Fatalf("missing title:\n%s", out)
	}
	for _, want := range []string{"Circuit", "c3540", "2941", "4210.50", "note: threshold T = 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// All body lines share the same width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var w int
	for _, l := range lines[1:5] {
		if w == 0 {
			w = len([]rune(l))
		} else if len([]rune(l)) != w {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.Row("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatalf("short row dropped:\n%s", out)
	}
}

func TestPadAlignment(t *testing.T) {
	if got := pad("12", 4); got != "  12" {
		t.Fatalf("numeric pad = %q", got)
	}
	if got := pad("ab", 4); got != "ab  " {
		t.Fatalf("text pad = %q", got)
	}
	if got := pad("abcd", 2); got != "abcd" {
		t.Fatalf("overlong pad = %q", got)
	}
}

func TestLooksNumeric(t *testing.T) {
	for s, want := range map[string]bool{
		"123": true, "1.5": true, "-3": true, "45.2%": true,
		"c3540": false, "": false, "n/a": false,
	} {
		if got := looksNumeric(s); got != want {
			t.Fatalf("looksNumeric(%q) = %v", s, got)
		}
	}
}

func TestBarsRender(t *testing.T) {
	b := NewBars("Fig. 3")
	b.Bar("ψ=0", 10, "10%")
	b.Bar("ψ=1", 40, "40%")
	out := b.String()
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "ψ=1") {
		t.Fatalf("bars missing content:\n%s", out)
	}
	// The larger bar must be longer.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	c0 := strings.Count(lines[1], "#")
	c1 := strings.Count(lines[2], "#")
	if c1 <= c0 {
		t.Fatalf("bar lengths wrong: %d vs %d\n%s", c0, c1, out)
	}
	if c1 != 40 {
		t.Fatalf("max bar should fill width, got %d", c1)
	}
}

func TestBarsZeroMax(t *testing.T) {
	b := NewBars("")
	b.Bar("x", 0, "0")
	if out := b.String(); !strings.Contains(out, "x") {
		t.Fatalf("zero bars broken:\n%s", out)
	}
}
