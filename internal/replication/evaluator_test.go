package replication

import (
	"math/rand"
	"sync"
	"testing"

	"fpgapart/internal/hypergraph"
)

// Property: Evaluator.Gain / SingleGain agree with the State's own
// evaluation at every step of a random move sequence.
func TestEvaluatorMatchesState(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		st := randomState(t, seed, 60)
		ev := NewEvaluator(st)
		r := rand.New(rand.NewSource(seed * 13))
		for step := 0; step < 100; step++ {
			m := randomMove(r, st)
			want, err := st.Gain(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ev.Gain(m)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d step %d: evaluator gain(%v)=%d, state says %d", seed, step, m, got, want)
			}
			wd0, wd1, err := st.AreaDelta(m)
			if err != nil {
				t.Fatal(err)
			}
			gd0, gd1, err := ev.AreaDelta(m)
			if err != nil {
				t.Fatal(err)
			}
			if gd0 != wd0 || gd1 != wd1 {
				t.Fatalf("seed %d step %d: evaluator area delta (%d,%d), state (%d,%d)", seed, step, gd0, gd1, wd0, wd1)
			}
			for ci := 0; ci < st.Graph().NumCells(); ci++ {
				c := hypergraph.CellID(ci)
				if st.IsReplicated(c) {
					continue
				}
				if got, want := ev.SingleGain(c), st.SingleGain(c); got != want {
					t.Fatalf("seed %d step %d: evaluator single gain(%d)=%d, maintained %d", seed, step, ci, got, want)
				}
			}
			if _, err := st.Apply(m); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Concurrent evaluators over a frozen state must agree with the serial
// answer — this is the contract the parallel proposal phase relies on.
// Run with -race.
func TestEvaluatorConcurrent(t *testing.T) {
	st := randomState(t, 9, 120)
	r := rand.New(rand.NewSource(9))
	for step := 0; step < 40; step++ { // roughen the state first
		if _, err := st.Apply(randomMove(r, st)); err != nil {
			t.Fatal(err)
		}
	}
	n := st.Graph().NumCells()
	want := make([]int, n)
	serial := NewEvaluator(st)
	for ci := 0; ci < n; ci++ {
		if !st.IsReplicated(hypergraph.CellID(ci)) {
			want[ci] = serial.SingleGain(hypergraph.CellID(ci))
		}
	}
	const workers = 8
	got := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := NewEvaluator(st)
			for ci := w; ci < n; ci += workers {
				c := hypergraph.CellID(ci)
				if st.IsReplicated(c) {
					continue
				}
				got[ci] = ev.SingleGain(c)
				if g, err := ev.Gain(Move{Cell: c, Kind: SingleMove}); err != nil || g != got[ci] {
					t.Errorf("cell %d: semantic gain %d (err %v), single %d", ci, g, err, got[ci])
				}
			}
		}(w)
	}
	wg.Wait()
	for ci := range want {
		if got[ci] != want[ci] {
			t.Fatalf("cell %d: concurrent gain %d, serial %d", ci, got[ci], want[ci])
		}
	}
}

// With maintenance off, Apply must keep every derived quantity except
// the cached single gains exact, record LastTouched as before, and
// re-enabling maintenance must make SingleGain and full invariants
// valid again.
func TestGainMaintenanceToggle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		st := randomState(t, seed, 50)
		mirror := randomState(t, seed, 50) // stays in maintained mode
		st.SetGainMaintenance(false)
		if st.GainMaintenance() {
			t.Fatal("maintenance still reported on")
		}
		r1 := rand.New(rand.NewSource(seed * 31))
		r2 := rand.New(rand.NewSource(seed * 31))
		for step := 0; step < 120; step++ {
			m1, m2 := randomMove(r1, st), randomMove(r2, mirror)
			if m1 != m2 {
				t.Fatalf("seed %d step %d: move streams diverged", seed, step)
			}
			if _, err := st.Apply(m1); err != nil {
				t.Fatal(err)
			}
			if _, err := mirror.Apply(m2); err != nil {
				t.Fatal(err)
			}
			if st.CutSize() != mirror.CutSize() || st.Area(0) != mirror.Area(0) ||
				st.Terminals(0) != mirror.Terminals(0) || st.Terminals(1) != mirror.Terminals(1) {
				t.Fatalf("seed %d step %d: maintenance-off state diverged", seed, step)
			}
			a, b := st.LastTouched(), mirror.LastTouched()
			if len(a) != len(b) {
				t.Fatalf("seed %d step %d: LastTouched %d cells vs %d", seed, step, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d step %d: LastTouched[%d] %d vs %d", seed, step, i, a[i], b[i])
				}
			}
			// Invariants (minus the gain cross-check, which the toggle
			// disables) must hold mid-flight.
			if step%29 == 0 {
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
		st.SetGainMaintenance(true)
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: invariants after re-enable: %v", seed, err)
		}
		for ci := 0; ci < st.Graph().NumCells(); ci++ {
			c := hypergraph.CellID(ci)
			if st.IsReplicated(c) {
				continue
			}
			if st.SingleGain(c) != mirror.SingleGain(c) {
				t.Fatalf("seed %d: cell %d gain %d after re-enable, maintained mirror %d",
					seed, ci, st.SingleGain(c), mirror.SingleGain(c))
			}
		}
	}
}

// Undo with maintenance off must restore the exact pre-move state
// (ownership, cut, areas, terminals), same as the maintained path.
func TestGainMaintenanceOffUndo(t *testing.T) {
	st := randomState(t, 5, 40)
	st.SetGainMaintenance(false)
	cut0, a0, a1 := st.CutSize(), st.Area(0), st.Area(1)
	start := st.Mark()
	r := rand.New(rand.NewSource(55))
	for step := 0; step < 60; step++ {
		if _, err := st.Apply(randomMove(r, st)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Undo(start); err != nil {
		t.Fatal(err)
	}
	if st.CutSize() != cut0 || st.Area(0) != a0 || st.Area(1) != a1 {
		t.Fatalf("undo mismatch: cut %d want %d, areas (%d,%d) want (%d,%d)",
			st.CutSize(), cut0, st.Area(0), st.Area(1), a0, a1)
	}
	st.SetGainMaintenance(true)
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
