// Package replication implements bipartitioning state with functional
// replication and the unified gain model of Kužnar et al. (DAC'94,
// Sections II–III).
//
// A cell may exist as a single copy in one block, or — after a
// Replicate move — as two copies, one per block, each owning a disjoint
// non-empty subset of the cell's outputs. Per the functional
// replication rule, a copy carrying output set S connects exactly the
// output nets of S and the input nets adjacent to S; all other pins of
// that copy are left floating. The cut set is the set of nets with
// active connections in both blocks.
//
// State supports three mutations (single move, functional replication,
// unreplication), O(pins) exact gain evaluation for each, and full
// undo, which is what the FM-style engine in package fm needs for its
// best-prefix rollback.
package replication

import (
	"fmt"
	"math/bits"

	"fpgapart/internal/hypergraph"
)

// Block identifies one side of a bipartition.
type Block uint8

// Other returns the opposite block.
func (b Block) Other() Block { return 1 - b }

// MoveKind enumerates the mutations of Section III.
type MoveKind uint8

const (
	// SingleMove relocates an unreplicated cell to the other block.
	SingleMove MoveKind = iota
	// Replicate splits an unreplicated cell: a replica in the other
	// block takes over the outputs in Carry, the original keeps the
	// rest, and both copies prune inputs per the functional rule.
	Replicate
	// Unreplicate merges a replicated cell into block To.
	Unreplicate
)

func (k MoveKind) String() string {
	switch k {
	case SingleMove:
		return "move"
	case Replicate:
		return "replicate"
	case Unreplicate:
		return "unreplicate"
	}
	return fmt.Sprintf("MoveKind(%d)", uint8(k))
}

// Move is one candidate mutation.
type Move struct {
	Cell  hypergraph.CellID
	Kind  MoveKind
	Carry uint32 // Replicate: output mask taken by the replica
	To    Block  // Unreplicate: surviving block
}

func (m Move) String() string {
	switch m.Kind {
	case Replicate:
		return fmt.Sprintf("replicate(cell=%d carry=%b)", m.Cell, m.Carry)
	case Unreplicate:
		return fmt.Sprintf("unreplicate(cell=%d to=%d)", m.Cell, m.To)
	}
	return fmt.Sprintf("move(cell=%d)", m.Cell)
}

// MaxOutputs bounds the per-cell output count representable in the
// ownership masks.
const MaxOutputs = 32

type trailEntry struct {
	cell hypergraph.CellID
	own  [2]uint32
	home Block
	repl bool
}

// State is a bipartition of a hypergraph with functional replication.
type State struct {
	g      *hypergraph.Graph
	extPin bool        // external nets carry a virtual conn in block 1
	own    [][2]uint32 // per cell: output mask active in each block
	home   []Block     // block of the original copy
	repl   []bool
	all    []uint32   // per cell: mask of all outputs
	col    [][]uint32 // per cell, per input pin: outputs depending on it
	psi    []int      // per cell: replication potential ψ (Eq. 4)
	cnt    [][2]int32 // per net: active connections per block
	cut    int
	area   [2]int

	trail []trailEntry

	// scratch buffers for delta accumulation
	scratchNets  []hypergraph.NetID
	scratchDelta [][2]int32
	scratchMark  []int32 // per net: index+1 into scratchNets, 0 = absent
}

// NewState builds the state for an initial replication-free assignment
// of every cell to a block. len(assign) must equal the cell count.
func NewState(g *hypergraph.Graph, assign []Block) (*State, error) {
	return NewStatePinned(g, assign, false)
}

// NewStatePinned is NewState with an optional virtual connection in
// block 1 on every external net. With pinning, a net counts as cut
// exactly when it demands an IOB in block 0, so CutSize == t_P0 and an
// FM run minimizes the carved block's terminal count directly — the
// objective the k-way partitioner's device feasibility check needs.
func NewStatePinned(g *hypergraph.Graph, assign []Block, pinExternal bool) (*State, error) {
	n := len(g.Cells)
	if len(assign) != n {
		return nil, fmt.Errorf("replication: assignment length %d, want %d cells", len(assign), n)
	}
	s := &State{
		g:           g,
		extPin:      pinExternal,
		own:         make([][2]uint32, n),
		home:        make([]Block, n),
		repl:        make([]bool, n),
		all:         make([]uint32, n),
		col:         make([][]uint32, n),
		psi:         make([]int, n),
		cnt:         make([][2]int32, len(g.Nets)),
		scratchMark: make([]int32, len(g.Nets)),
	}
	if pinExternal {
		for ni := range g.Nets {
			if g.Nets[ni].Ext != hypergraph.Internal {
				s.cnt[ni][1]++
			}
		}
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		m := len(c.Outputs)
		if m > MaxOutputs {
			return nil, fmt.Errorf("replication: cell %q has %d outputs, max %d", c.Name, m, MaxOutputs)
		}
		if m == 0 {
			return nil, fmt.Errorf("replication: cell %q has no outputs", c.Name)
		}
		b := assign[ci]
		if b > 1 {
			return nil, fmt.Errorf("replication: cell %q assigned to block %d", c.Name, b)
		}
		all := uint32(1)<<uint(m) - 1
		s.all[ci] = all
		s.home[ci] = b
		s.own[ci][b] = all
		s.psi[ci] = c.ReplicationPotential()
		cols := make([]uint32, len(c.Inputs))
		for i := 0; i < m; i++ {
			for j := range c.Inputs {
				if c.Dep[i].Get(j) {
					cols[j] |= 1 << uint(i)
				}
			}
		}
		s.col[ci] = cols
		s.area[b] += c.Area
		// Account active connections: all outputs, and inputs adjacent
		// to at least one output (a dependency-free input pin is
		// floating by the functional rule even before replication).
		for _, n := range c.Outputs {
			s.cnt[n][b]++
		}
		for j, n := range c.Inputs {
			if n != hypergraph.NilNet && cols[j] != 0 {
				s.cnt[n][b]++
			}
		}
	}
	for ni := range g.Nets {
		if s.cnt[ni][0] > 0 && s.cnt[ni][1] > 0 {
			s.cut++
		}
	}
	return s, nil
}

// Graph returns the underlying hypergraph.
func (s *State) Graph() *hypergraph.Graph { return s.g }

// CutSize returns the number of nets with active connections in both
// blocks.
func (s *State) CutSize() int { return s.cut }

// Area returns the total cell area active in block b (replicated cells
// count in both blocks).
func (s *State) Area(b Block) int { return s.area[b] }

// Home returns the block of the cell's original copy.
func (s *State) Home(c hypergraph.CellID) Block { return s.home[c] }

// IsReplicated reports whether the cell currently has copies in both
// blocks.
func (s *State) IsReplicated(c hypergraph.CellID) bool { return s.repl[c] }

// OutputsIn returns the mask of the cell's outputs produced in block b.
func (s *State) OutputsIn(c hypergraph.CellID, b Block) uint32 { return s.own[c][b] }

// ActiveIn reports whether the cell has a copy in block b.
func (s *State) ActiveIn(c hypergraph.CellID, b Block) bool { return s.own[c][b] != 0 }

// Psi returns the cell's replication potential ψ (Eq. 4), cached.
func (s *State) Psi(c hypergraph.CellID) int { return s.psi[c] }

// CanReplicate reports eligibility for functional replication at
// threshold T: multi-output and ψ ≥ T (Eq. 6; T = 0 admits ψ = 0
// multi-output cells, single-output cells never qualify).
func (s *State) CanReplicate(c hypergraph.CellID, t int) bool {
	return len(s.g.Cells[c].Outputs) > 1 && s.psi[c] >= t
}

// ReplicatedCount returns the number of currently replicated cells.
func (s *State) ReplicatedCount() int {
	n := 0
	for _, r := range s.repl {
		if r {
			n++
		}
	}
	return n
}

// CellsIn returns the number of cell copies active in block b.
func (s *State) CellsIn(b Block) int {
	n := 0
	for ci := range s.own {
		if s.own[ci][b] != 0 {
			n++
		}
	}
	return n
}

// inputActive reports whether input pin j of cell c is connected in
// block b under ownership mask m.
func (s *State) inputActive(c hypergraph.CellID, j int, m uint32) bool {
	return m&s.col[c][j] != 0
}

// newOwn computes the ownership masks after applying m, validating the
// move against the current state.
func (s *State) newOwn(m Move) ([2]uint32, error) {
	c := m.Cell
	if int(c) < 0 || int(c) >= len(s.own) {
		return [2]uint32{}, fmt.Errorf("replication: invalid cell %d", c)
	}
	all := s.all[c]
	switch m.Kind {
	case SingleMove:
		if s.repl[c] {
			return [2]uint32{}, fmt.Errorf("replication: %v: cell is replicated", m)
		}
		b := s.home[c]
		var nw [2]uint32
		nw[b.Other()] = all
		return nw, nil
	case Replicate:
		if s.repl[c] {
			return [2]uint32{}, fmt.Errorf("replication: %v: cell is already replicated", m)
		}
		if m.Carry == 0 || m.Carry == all || m.Carry&^all != 0 {
			return [2]uint32{}, fmt.Errorf("replication: %v: carry mask must be a proper non-empty subset of %b", m, all)
		}
		b := s.home[c]
		var nw [2]uint32
		nw[b] = all &^ m.Carry
		nw[b.Other()] = m.Carry
		return nw, nil
	case Unreplicate:
		if !s.repl[c] {
			return [2]uint32{}, fmt.Errorf("replication: %v: cell is not replicated", m)
		}
		if m.To > 1 {
			return [2]uint32{}, fmt.Errorf("replication: %v: invalid block", m)
		}
		var nw [2]uint32
		nw[m.To] = all
		return nw, nil
	}
	return [2]uint32{}, fmt.Errorf("replication: unknown move kind %d", m.Kind)
}

// accumulateDeltas records, for each distinct net incident to cell c,
// the change in active connection counts when ownership goes from old
// to nw. Results land in the scratch buffers; callers must call
// resetScratch when done.
func (s *State) accumulateDeltas(c hypergraph.CellID, old, nw [2]uint32) {
	cell := &s.g.Cells[c]
	add := func(n hypergraph.NetID, b Block, d int32) {
		if d == 0 {
			return
		}
		idx := s.scratchMark[n]
		if idx == 0 {
			s.scratchNets = append(s.scratchNets, n)
			s.scratchDelta = append(s.scratchDelta, [2]int32{})
			idx = int32(len(s.scratchNets))
			s.scratchMark[n] = idx
		}
		s.scratchDelta[idx-1][b] += d
	}
	for pi, n := range cell.Outputs {
		bit := uint32(1) << uint(pi)
		for b := Block(0); b < 2; b++ {
			was := old[b]&bit != 0
			is := nw[b]&bit != 0
			if was != is {
				if is {
					add(n, b, 1)
				} else {
					add(n, b, -1)
				}
			}
		}
	}
	for pi, n := range cell.Inputs {
		if n == hypergraph.NilNet {
			continue
		}
		colMask := s.col[c][pi]
		for b := Block(0); b < 2; b++ {
			was := old[b]&colMask != 0
			is := nw[b]&colMask != 0
			if was != is {
				if is {
					add(n, b, 1)
				} else {
					add(n, b, -1)
				}
			}
		}
	}
}

func (s *State) resetScratch() {
	for _, n := range s.scratchNets {
		s.scratchMark[n] = 0
	}
	s.scratchNets = s.scratchNets[:0]
	s.scratchDelta = s.scratchDelta[:0]
}

// Gain returns the exact cut-size reduction of applying m: positive
// gains shrink the cut. The state is not modified.
func (s *State) Gain(m Move) (int, error) {
	nw, err := s.newOwn(m)
	if err != nil {
		return 0, err
	}
	old := s.own[m.Cell]
	s.accumulateDeltas(m.Cell, old, nw)
	gain := 0
	for i, n := range s.scratchNets {
		c0, c1 := s.cnt[n][0], s.cnt[n][1]
		wasCut := c0 > 0 && c1 > 0
		n0, n1 := c0+s.scratchDelta[i][0], c1+s.scratchDelta[i][1]
		isCut := n0 > 0 && n1 > 0
		if wasCut && !isCut {
			gain++
		} else if !wasCut && isCut {
			gain--
		}
	}
	s.resetScratch()
	return gain, nil
}

// MustGain is Gain that panics on invalid moves, for engine internals
// that already validated candidates.
func (s *State) MustGain(m Move) int {
	g, err := s.Gain(m)
	if err != nil {
		panic(err)
	}
	return g
}

// AreaDelta returns the change in block areas (delta0, delta1) that
// applying m would cause.
func (s *State) AreaDelta(m Move) (int, int, error) {
	nw, err := s.newOwn(m)
	if err != nil {
		return 0, 0, err
	}
	old := s.own[m.Cell]
	a := s.g.Cells[m.Cell].Area
	var d [2]int
	for b := Block(0); b < 2; b++ {
		was := old[b] != 0
		is := nw[b] != 0
		switch {
		case is && !was:
			d[b] = a
		case was && !is:
			d[b] = -a
		}
	}
	return d[0], d[1], nil
}

// Token marks a position in the mutation trail for Undo.
type Token int

// Mark returns a token for the current trail position.
func (s *State) Mark() Token { return Token(len(s.trail)) }

// Apply commits m and returns a token that undoes it (and anything
// after it) via Undo.
func (s *State) Apply(m Move) (Token, error) {
	nw, err := s.newOwn(m)
	if err != nil {
		return 0, err
	}
	tok := s.Mark()
	s.trail = append(s.trail, trailEntry{cell: m.Cell, own: s.own[m.Cell], home: s.home[m.Cell], repl: s.repl[m.Cell]})
	s.commit(m.Cell, nw)
	switch m.Kind {
	case SingleMove:
		s.home[m.Cell] = s.home[m.Cell].Other()
	case Replicate:
		s.repl[m.Cell] = true
	case Unreplicate:
		s.repl[m.Cell] = false
		s.home[m.Cell] = m.To
	}
	return tok, nil
}

// commit switches cell c's ownership to nw, updating net counts, cut
// size and block areas.
func (s *State) commit(c hypergraph.CellID, nw [2]uint32) {
	old := s.own[c]
	s.accumulateDeltas(c, old, nw)
	for i, n := range s.scratchNets {
		c0, c1 := s.cnt[n][0], s.cnt[n][1]
		wasCut := c0 > 0 && c1 > 0
		s.cnt[n][0] = c0 + s.scratchDelta[i][0]
		s.cnt[n][1] = c1 + s.scratchDelta[i][1]
		isCut := s.cnt[n][0] > 0 && s.cnt[n][1] > 0
		if wasCut && !isCut {
			s.cut--
		} else if !wasCut && isCut {
			s.cut++
		}
	}
	s.resetScratch()
	a := s.g.Cells[c].Area
	for b := Block(0); b < 2; b++ {
		was := old[b] != 0
		is := nw[b] != 0
		switch {
		case is && !was:
			s.area[b] += a
		case was && !is:
			s.area[b] -= a
		}
	}
	s.own[c] = nw
}

// Undo rolls the state back to the given token.
func (s *State) Undo(tok Token) error {
	if int(tok) < 0 || int(tok) > len(s.trail) {
		return fmt.Errorf("replication: invalid undo token %d (trail %d)", tok, len(s.trail))
	}
	for len(s.trail) > int(tok) {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.commit(e.cell, e.own)
		s.home[e.cell] = e.home
		s.repl[e.cell] = e.repl
	}
	return nil
}

// Splits returns the candidate carry masks for functionally
// replicating cell c: every proper non-empty output subset for cells
// with up to four outputs, singletons and their complements otherwise.
func (s *State) Splits(c hypergraph.CellID) []uint32 {
	m := len(s.g.Cells[c].Outputs)
	if m <= 1 {
		return nil
	}
	all := s.all[c]
	if m <= 4 {
		out := make([]uint32, 0, 1<<uint(m)-2)
		for mask := uint32(1); mask < all; mask++ {
			out = append(out, mask)
		}
		return out
	}
	seen := make(map[uint32]bool, 2*m)
	var out []uint32
	for i := 0; i < m; i++ {
		for _, mask := range [2]uint32{1 << uint(i), all &^ (1 << uint(i))} {
			if mask != 0 && mask != all && !seen[mask] {
				seen[mask] = true
				out = append(out, mask)
			}
		}
	}
	return out
}

// Terminals returns t_Pb: the number of nets in block b that need an
// IOB — external nets touching the block plus cut nets. Virtual pin
// connections (NewStatePinned) are excluded from the touch counts.
func (s *State) Terminals(b Block) int {
	t := 0
	for ni := range s.g.Nets {
		ext := s.g.Nets[ni].Ext != hypergraph.Internal
		here := s.cnt[ni][b]
		other := s.cnt[ni][b.Other()]
		if s.extPin && ext {
			if b == 1 {
				here--
			} else {
				other--
			}
		}
		if here == 0 {
			continue
		}
		if ext || other > 0 {
			t++
		}
	}
	return t
}

// CutNet reports whether net n is currently in the cut set.
func (s *State) CutNet(n hypergraph.NetID) bool {
	return s.cnt[n][0] > 0 && s.cnt[n][1] > 0
}

// TouchedCells returns the distinct cells with a connection on any net
// incident to cell c — the neighborhood whose gains an engine must
// refresh after applying a move on c. The result includes c itself.
func (s *State) TouchedCells(c hypergraph.CellID, buf []hypergraph.CellID) []hypergraph.CellID {
	buf = buf[:0]
	seen := make(map[hypergraph.CellID]bool, 16)
	seen[c] = true
	buf = append(buf, c)
	for _, n := range s.g.CellNets(c) {
		for _, cn := range s.g.Nets[n].Conns {
			if !seen[cn.Cell] {
				seen[cn.Cell] = true
				buf = append(buf, cn.Cell)
			}
		}
	}
	return buf
}

// InstanceSpecs lists the cell copies active in block b in the form
// hypergraph.Subcircuit consumes. Replica copies (a replicated cell's
// copy outside its home block) get a "$r" name suffix.
func (s *State) InstanceSpecs(b Block) []hypergraph.InstanceSpec {
	var specs []hypergraph.InstanceSpec
	for ci := range s.own {
		mask := s.own[ci][b]
		if mask == 0 {
			continue
		}
		spec := hypergraph.InstanceSpec{Cell: hypergraph.CellID(ci)}
		if mask != s.all[ci] {
			outs := make([]int, 0, bits.OnesCount32(mask))
			for i := 0; i < MaxOutputs; i++ {
				if mask&(1<<uint(i)) != 0 {
					outs = append(outs, i)
				}
			}
			spec.Outputs = outs
		}
		if s.repl[ci] && b != s.home[ci] {
			spec.Rename = s.g.Cells[ci].Name + "$r"
		}
		specs = append(specs, spec)
	}
	return specs
}

// CheckInvariants recomputes every derived quantity from scratch and
// compares; used by tests and property checks.
func (s *State) CheckInvariants() error {
	cnt := make([][2]int32, len(s.g.Nets))
	if s.extPin {
		for ni := range s.g.Nets {
			if s.g.Nets[ni].Ext != hypergraph.Internal {
				cnt[ni][1]++
			}
		}
	}
	var area [2]int
	for ci := range s.g.Cells {
		c := &s.g.Cells[ci]
		own := s.own[ci]
		if own[0]&own[1] != 0 {
			return fmt.Errorf("cell %q owned in both blocks: %b/%b", c.Name, own[0], own[1])
		}
		if own[0]|own[1] != s.all[ci] {
			return fmt.Errorf("cell %q ownership incomplete: %b|%b != %b", c.Name, own[0], own[1], s.all[ci])
		}
		if s.repl[ci] != (own[0] != 0 && own[1] != 0) {
			return fmt.Errorf("cell %q replication flag inconsistent", c.Name)
		}
		if !s.repl[ci] && own[s.home[ci]] == 0 {
			return fmt.Errorf("cell %q home block owns nothing", c.Name)
		}
		for b := Block(0); b < 2; b++ {
			if own[b] != 0 {
				area[b] += c.Area
			}
			for pi := range c.Outputs {
				if own[b]&(1<<uint(pi)) != 0 {
					cnt[c.Outputs[pi]][b]++
				}
			}
			for pi, n := range c.Inputs {
				if n == hypergraph.NilNet {
					continue
				}
				if own[b]&s.col[ci][pi] != 0 {
					cnt[n][b]++
				}
			}
		}
	}
	cut := 0
	for ni := range s.g.Nets {
		if cnt[ni] != s.cnt[ni] {
			return fmt.Errorf("net %q counts %v, cached %v", s.g.Nets[ni].Name, cnt[ni], s.cnt[ni])
		}
		if cnt[ni][0] > 0 && cnt[ni][1] > 0 {
			cut++
		}
	}
	if cut != s.cut {
		return fmt.Errorf("cut %d, cached %d", cut, s.cut)
	}
	if area != s.area {
		return fmt.Errorf("area %v, cached %v", area, s.area)
	}
	return nil
}
