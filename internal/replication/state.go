// Package replication implements bipartitioning state with functional
// replication and the unified gain model of Kužnar et al. (DAC'94,
// Sections II–III).
//
// A cell may exist as a single copy in one block, or — after a
// Replicate move — as two copies, one per block, each owning a disjoint
// non-empty subset of the cell's outputs. Per the functional
// replication rule, a copy carrying output set S connects exactly the
// output nets of S and the input nets adjacent to S; all other pins of
// that copy are left floating. The cut set is the set of nets with
// active connections in both blocks.
//
// State supports three mutations (single move, functional replication,
// unreplication), O(pins) exact gain evaluation for each, and full
// undo, which is what the FM-style engine in package fm needs for its
// best-prefix rollback.
//
// The hot-path quantities are maintained incrementally (the classic
// Fiduccia–Mattheyses result that a pass runs in time linear in pins):
//
//   - SingleGain(c), the single-move gain of every unreplicated cell,
//     is updated in commit from the criticality transitions of exactly
//     the nets whose connection counts changed — no recomputation over
//     untouched neighbors;
//   - Terminals(b) is an O(1) counter updated per changed net;
//   - TouchedCells and Splits are allocation-free, backed by CSR
//     adjacency and precomputed split tables built once per graph.
//
// Reset rebinds the dynamic state to a fresh assignment of the same
// graph without reallocating, so carve retries reuse every per-net and
// per-cell array.
package replication

import (
	"fmt"
	"math/bits"

	"fpgapart/internal/hypergraph"
)

// Block identifies one side of a bipartition.
type Block uint8

// Other returns the opposite block.
func (b Block) Other() Block { return 1 - b }

// MoveKind enumerates the mutations of Section III.
type MoveKind uint8

const (
	// SingleMove relocates an unreplicated cell to the other block.
	SingleMove MoveKind = iota
	// Replicate splits an unreplicated cell: a replica in the other
	// block takes over the outputs in Carry, the original keeps the
	// rest, and both copies prune inputs per the functional rule.
	Replicate
	// Unreplicate merges a replicated cell into block To.
	Unreplicate
)

func (k MoveKind) String() string {
	switch k {
	case SingleMove:
		return "move"
	case Replicate:
		return "replicate"
	case Unreplicate:
		return "unreplicate"
	}
	return fmt.Sprintf("MoveKind(%d)", uint8(k))
}

// Move is one candidate mutation.
type Move struct {
	Cell  hypergraph.CellID
	Kind  MoveKind
	Carry uint32 // Replicate: output mask taken by the replica
	To    Block  // Unreplicate: surviving block
}

func (m Move) String() string {
	switch m.Kind {
	case Replicate:
		return fmt.Sprintf("replicate(cell=%d carry=%b)", m.Cell, m.Carry)
	case Unreplicate:
		return fmt.Sprintf("unreplicate(cell=%d to=%d)", m.Cell, m.To)
	}
	return fmt.Sprintf("move(cell=%d)", m.Cell)
}

// MaxOutputs bounds the per-cell output count representable in the
// ownership masks.
const MaxOutputs = 32

// netConn is one entry of the net→cell CSR: a connected cell and its
// static active-connection count on the net.
type netConn struct {
	cell hypergraph.CellID
	k    int32
}

type trailEntry struct {
	cell hypergraph.CellID
	own  [2]uint32
	home Block
	repl bool
}

// State is a bipartition of a hypergraph with functional replication.
type State struct {
	g      *hypergraph.Graph
	extPin bool // external nets carry a virtual conn in block 1

	// Static, graph-derived structures (built once in buildStatic and
	// shared across Reset calls).
	all    []uint32   // per cell: mask of all outputs
	col    [][]uint32 // per cell, per input pin: outputs depending on it
	colDat []uint32   // backing storage for col
	psi    []int      // per cell: replication potential ψ (Eq. 4)
	// CSR adjacency between cells and their *active* nets: for each
	// cell, the distinct incident nets with at least one potentially
	// active pin, and k — the number of active connections the cell
	// contributes to the net when unreplicated (outputs plus inputs
	// with a non-empty dependency column). Dependency-free input pins
	// are floating in every configuration and are excluded.
	adjOff []int32
	adjNet []hypergraph.NetID
	adjK   []int32
	// Inverse CSR: for each net, the distinct cells with k > 0,
	// interleaved with k so the commit sweep streams one array.
	netOff []int32
	netAdj []netConn
	// Precomputed candidate carry masks per cell (see Splits).
	splitOff  []int32
	splitMask []uint32
	isExt     []bool // per net: external (dense copy of Net.Ext != Internal)
	maxDeg    int    // max distinct active nets over any cell (gain bound)

	// Dynamic partition state (reinitialized by Reset).
	own   [][2]uint32 // per cell: output mask active in each block
	home  []Block     // block of the original copy
	repl  []bool
	cnt   [][2]int32 // per net: active connections per block
	cut   int
	area  [2]int
	term  [2]int  // per block: incrementally maintained Terminals(b)
	gainS []int32 // per cell: maintained single-move gain (unreplicated cells)

	// Weighted objective (see weights.go). netW == nil selects the
	// classic unit-cut objective with zero hot-path overhead.
	netW        []NetWeights
	topo        int // maintained Σ costAt(net) while netW != nil
	maxMoveGain int // |gain| bound under the current objective

	trail []trailEntry

	// scratch buffers for delta accumulation
	scratchNets  []hypergraph.NetID
	scratchDelta [][2]int32
	scratchMark  []int32 // per net: index+1 into scratchNets, 0 = absent

	// scratch for allocation-free TouchedCells / LastTouched
	touchStamp    []uint32
	touchEpoch    uint32
	lastTouched   []hypergraph.CellID
	recordTouched bool

	// maintainGains gates the incremental single-move gain maintenance
	// (see SetGainMaintenance). On by default; the parallel refinement
	// engine turns it off because it re-evaluates gains from scratch
	// against a frozen state instead of patching neighbors per commit.
	maintainGains bool

	stats Stats
}

// Stats counts the work performed on a state since construction.
// Counters are cumulative across Reset/ResetPinned — observers that
// need per-phase figures snapshot before and after and subtract.
type Stats struct {
	// Moves counts successfully applied moves of any kind.
	Moves int64
	// Replicas counts applied Replicate moves (replica instances
	// created, before any unreplication or rollback).
	Replicas int64
	// Rollbacks counts moves rolled back, whether one at a time (Undo)
	// or wholesale (RestoreCheckpoint truncating the trail).
	Rollbacks int64
}

// Stats returns the cumulative work counters.
func (s *State) Stats() Stats { return s.stats }

// Sub returns s - o field-wise: the work performed between two
// snapshots of the same state.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Moves:     s.Moves - o.Moves,
		Replicas:  s.Replicas - o.Replicas,
		Rollbacks: s.Rollbacks - o.Rollbacks,
	}
}

// NewState builds the state for an initial replication-free assignment
// of every cell to a block. len(assign) must equal the cell count.
func NewState(g *hypergraph.Graph, assign []Block) (*State, error) {
	return NewStatePinned(g, assign, false)
}

// NewStatePinned is NewState with an optional virtual connection in
// block 1 on every external net. With pinning, a net counts as cut
// exactly when it demands an IOB in block 0, so CutSize == t_P0 and an
// FM run minimizes the carved block's terminal count directly — the
// objective the k-way partitioner's device feasibility check needs.
func NewStatePinned(g *hypergraph.Graph, assign []Block, pinExternal bool) (*State, error) {
	s := &State{g: g, maintainGains: true}
	if err := s.buildStatic(); err != nil {
		return nil, err
	}
	if err := s.ResetPinned(assign, pinExternal); err != nil {
		return nil, err
	}
	return s, nil
}

// buildStatic derives every graph-only structure: output masks,
// dependency columns, ψ, the cell↔net CSR adjacency with static
// connection counts, and the candidate split tables.
func (s *State) buildStatic() error {
	g := s.g
	n := len(g.Cells)
	m := len(g.Nets)
	s.all = make([]uint32, n)
	s.col = make([][]uint32, n)
	s.psi = make([]int, n)
	totalIn, totalPins := 0, 0
	for ci := range g.Cells {
		totalIn += len(g.Cells[ci].Inputs)
		totalPins += g.Cells[ci].NumPins()
	}
	s.colDat = make([]uint32, totalIn)
	colNext := 0
	for ci := range g.Cells {
		c := &g.Cells[ci]
		mo := len(c.Outputs)
		if mo > MaxOutputs {
			return fmt.Errorf("replication: cell %q has %d outputs, max %d", c.Name, mo, MaxOutputs)
		}
		if mo == 0 {
			return fmt.Errorf("replication: cell %q has no outputs", c.Name)
		}
		s.all[ci] = uint32(1)<<uint(mo) - 1
		s.psi[ci] = c.ReplicationPotential()
		cols := s.colDat[colNext : colNext+len(c.Inputs) : colNext+len(c.Inputs)]
		colNext += len(c.Inputs)
		for i := 0; i < mo; i++ {
			for j := range c.Inputs {
				if c.Dep[i].Get(j) {
					cols[j] |= 1 << uint(i)
				}
			}
		}
		s.col[ci] = cols
	}

	// Cell -> net adjacency with static active-connection counts.
	s.adjOff = make([]int32, n+1)
	s.adjNet = make([]hypergraph.NetID, 0, totalPins)
	s.adjK = make([]int32, 0, totalPins)
	mark := make([]int32, m) // net -> cell stamp (index+1)
	pos := make([]int32, m)  // net -> position in adjNet for that cell
	for i := range mark {
		mark[i] = -1
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		visit := func(nid hypergraph.NetID) {
			if mark[nid] == int32(ci) {
				s.adjK[pos[nid]]++
				return
			}
			mark[nid] = int32(ci)
			pos[nid] = int32(len(s.adjNet))
			s.adjNet = append(s.adjNet, nid)
			s.adjK = append(s.adjK, 1)
		}
		for _, nid := range c.Outputs {
			visit(nid)
		}
		for j, nid := range c.Inputs {
			if nid != hypergraph.NilNet && s.col[ci][j] != 0 {
				visit(nid)
			}
		}
		s.adjOff[ci+1] = int32(len(s.adjNet))
	}
	s.maxDeg = 1
	for ci := 0; ci < n; ci++ {
		if d := int(s.adjOff[ci+1] - s.adjOff[ci]); d > s.maxDeg {
			s.maxDeg = d
		}
	}
	s.maxMoveGain = s.maxDeg

	// Inverse: net -> cells with k > 0.
	s.netOff = make([]int32, m+1)
	for _, nid := range s.adjNet {
		s.netOff[nid+1]++
	}
	for i := 0; i < m; i++ {
		s.netOff[i+1] += s.netOff[i]
	}
	s.netAdj = make([]netConn, len(s.adjNet))
	fill := make([]int32, m)
	copy(fill, s.netOff[:m])
	for ci := 0; ci < n; ci++ {
		for i := s.adjOff[ci]; i < s.adjOff[ci+1]; i++ {
			nid := s.adjNet[i]
			s.netAdj[fill[nid]] = netConn{cell: hypergraph.CellID(ci), k: s.adjK[i]}
			fill[nid]++
		}
	}

	// Candidate split tables.
	s.splitOff = make([]int32, n+1)
	for ci := range g.Cells {
		masks := computeSplits(len(g.Cells[ci].Outputs), s.all[ci])
		s.splitMask = append(s.splitMask, masks...)
		s.splitOff[ci+1] = int32(len(s.splitMask))
	}

	s.isExt = make([]bool, m)
	for ni := range g.Nets {
		s.isExt[ni] = g.Nets[ni].Ext != hypergraph.Internal
	}
	s.scratchMark = make([]int32, m)
	s.touchStamp = make([]uint32, n)
	return nil
}

// computeSplits returns the candidate carry masks for a cell with mo
// outputs: every proper non-empty output subset for cells with up to
// four outputs, singletons and their complements otherwise.
func computeSplits(mo int, all uint32) []uint32 {
	if mo <= 1 {
		return nil
	}
	if mo <= 4 {
		out := make([]uint32, 0, 1<<uint(mo)-2)
		for mask := uint32(1); mask < all; mask++ {
			out = append(out, mask)
		}
		return out
	}
	seen := make(map[uint32]bool, 2*mo)
	var out []uint32
	for i := 0; i < mo; i++ {
		for _, mask := range [2]uint32{1 << uint(i), all &^ (1 << uint(i))} {
			if mask != 0 && mask != all && !seen[mask] {
				seen[mask] = true
				out = append(out, mask)
			}
		}
	}
	return out
}

// Reset reinitializes the partition to a fresh replication-free
// assignment, keeping the external-pin mode and any installed net
// weight table (see SetNetWeights) and reusing every allocated
// per-net/per-cell array. The undo trail is discarded.
func (s *State) Reset(assign []Block) error {
	return s.ResetPinned(assign, s.extPin)
}

// ResetPinned is Reset with an explicit external-pin mode (see
// NewStatePinned).
func (s *State) ResetPinned(assign []Block, pinExternal bool) error {
	g := s.g
	n := len(g.Cells)
	if len(assign) != n {
		return fmt.Errorf("replication: assignment length %d, want %d cells", len(assign), n)
	}
	for ci, b := range assign {
		if b > 1 {
			return fmt.Errorf("replication: cell %q assigned to block %d", g.Cells[ci].Name, b)
		}
	}
	s.extPin = pinExternal
	if s.own == nil {
		s.own = make([][2]uint32, n)
		s.home = make([]Block, n)
		s.repl = make([]bool, n)
		s.cnt = make([][2]int32, len(g.Nets))
		s.gainS = make([]int32, n)
	} else {
		for i := range s.cnt {
			s.cnt[i] = [2]int32{}
		}
	}
	s.trail = s.trail[:0]
	s.cut = 0
	s.area = [2]int{}
	s.term = [2]int{}
	if pinExternal {
		for ni := range g.Nets {
			if g.Nets[ni].Ext != hypergraph.Internal {
				s.cnt[ni][1]++
			}
		}
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		b := assign[ci]
		s.home[ci] = b
		s.repl[ci] = false
		s.own[ci] = [2]uint32{}
		s.own[ci][b] = s.all[ci]
		s.area[b] += c.Area
		// Account active connections: all outputs, and inputs adjacent
		// to at least one output (a dependency-free input pin is
		// floating by the functional rule even before replication).
		for i := s.adjOff[ci]; i < s.adjOff[ci+1]; i++ {
			s.cnt[s.adjNet[i]][b] += s.adjK[i]
		}
	}
	s.topo = 0
	for ni := range g.Nets {
		if s.cnt[ni][0] > 0 && s.cnt[ni][1] > 0 {
			s.cut++
		}
		if s.netW != nil {
			s.topo += int(costAt(&s.netW[ni], s.cnt[ni][0], s.cnt[ni][1]))
		}
		for b := Block(0); b < 2; b++ {
			if s.termStatus(hypergraph.NetID(ni), b, s.cnt[ni][0], s.cnt[ni][1]) {
				s.term[b]++
			}
		}
	}
	for ci := 0; ci < n; ci++ {
		s.gainS[ci] = s.computeSingleGain(hypergraph.CellID(ci))
	}
	return nil
}

// Graph returns the underlying hypergraph.
func (s *State) Graph() *hypergraph.Graph { return s.g }

// CutSize returns the number of nets with active connections in both
// blocks.
func (s *State) CutSize() int { return s.cut }

// Area returns the total cell area active in block b (replicated cells
// count in both blocks).
func (s *State) Area(b Block) int { return s.area[b] }

// Home returns the block of the cell's original copy.
func (s *State) Home(c hypergraph.CellID) Block { return s.home[c] }

// IsReplicated reports whether the cell currently has copies in both
// blocks.
func (s *State) IsReplicated(c hypergraph.CellID) bool { return s.repl[c] }

// OutputsIn returns the mask of the cell's outputs produced in block b.
func (s *State) OutputsIn(c hypergraph.CellID, b Block) uint32 { return s.own[c][b] }

// ActiveIn reports whether the cell has a copy in block b.
func (s *State) ActiveIn(c hypergraph.CellID, b Block) bool { return s.own[c][b] != 0 }

// Psi returns the cell's replication potential ψ (Eq. 4), cached.
func (s *State) Psi(c hypergraph.CellID) int { return s.psi[c] }

// MaxCellDegree returns the maximum number of distinct active nets
// incident to any single cell — a tight bound on |gain| for every move
// kind, since a move can only change the cut status of the mover's own
// active nets.
func (s *State) MaxCellDegree() int { return s.maxDeg }

// SingleGain returns the incrementally maintained gain of moving the
// (unreplicated) cell to the other block — identical to
// Gain(Move{Cell: c, Kind: SingleMove}) but O(1). The value is
// meaningless while the cell is replicated; it is refreshed when the
// cell unreplicates. While gain maintenance is disabled (see
// SetGainMaintenance) the value is stale and must not be used.
func (s *State) SingleGain(c hypergraph.CellID) int { return int(s.gainS[c]) }

// SetGainMaintenance toggles the incremental single-move gain
// maintenance performed by commit. It is on by default — the classic
// serial FM engine reads SingleGain on every candidate refresh. An
// engine that instead re-evaluates gains from scratch against frozen
// snapshots (internal/parfm) turns it off so Apply/Undo skip the
// per-changed-net neighbor sweep arithmetic, which is the dominant
// serial cost of a commit. Turning maintenance back on recomputes
// every unreplicated cell's gain so SingleGain and CheckInvariants are
// immediately valid again.
func (s *State) SetGainMaintenance(on bool) {
	if on == s.maintainGains {
		return
	}
	s.maintainGains = on
	if !on {
		return
	}
	for ci := range s.gainS {
		if !s.repl[ci] {
			s.gainS[ci] = s.computeSingleGain(hypergraph.CellID(ci))
		}
	}
}

// GainMaintenance reports whether incremental single-move gain
// maintenance is currently enabled.
func (s *State) GainMaintenance() bool { return s.maintainGains }

// CanReplicate reports eligibility for functional replication at
// threshold T: multi-output and ψ ≥ T (Eq. 6; T = 0 admits ψ = 0
// multi-output cells, single-output cells never qualify).
func (s *State) CanReplicate(c hypergraph.CellID, t int) bool {
	return len(s.g.Cells[c].Outputs) > 1 && s.psi[c] >= t
}

// ReplicatedCount returns the number of currently replicated cells.
func (s *State) ReplicatedCount() int {
	n := 0
	for _, r := range s.repl {
		if r {
			n++
		}
	}
	return n
}

// CellsIn returns the number of cell copies active in block b.
func (s *State) CellsIn(b Block) int {
	n := 0
	for ci := range s.own {
		if s.own[ci][b] != 0 {
			n++
		}
	}
	return n
}

// inputActive reports whether input pin j of cell c is connected in
// block b under ownership mask m.
func (s *State) inputActive(c hypergraph.CellID, j int, m uint32) bool {
	return m&s.col[c][j] != 0
}

// newOwn computes the ownership masks after applying m, validating the
// move against the current state.
func (s *State) newOwn(m Move) ([2]uint32, error) {
	c := m.Cell
	if int(c) < 0 || int(c) >= len(s.own) {
		return [2]uint32{}, fmt.Errorf("replication: invalid cell %d", c)
	}
	all := s.all[c]
	switch m.Kind {
	case SingleMove:
		if s.repl[c] {
			return [2]uint32{}, fmt.Errorf("replication: %v: cell is replicated", m)
		}
		b := s.home[c]
		var nw [2]uint32
		nw[b.Other()] = all
		return nw, nil
	case Replicate:
		if s.repl[c] {
			return [2]uint32{}, fmt.Errorf("replication: %v: cell is already replicated", m)
		}
		if m.Carry == 0 || m.Carry == all || m.Carry&^all != 0 {
			return [2]uint32{}, fmt.Errorf("replication: %v: carry mask must be a proper non-empty subset of %b", m, all)
		}
		b := s.home[c]
		var nw [2]uint32
		nw[b] = all &^ m.Carry
		nw[b.Other()] = m.Carry
		return nw, nil
	case Unreplicate:
		if !s.repl[c] {
			return [2]uint32{}, fmt.Errorf("replication: %v: cell is not replicated", m)
		}
		if m.To > 1 {
			return [2]uint32{}, fmt.Errorf("replication: %v: invalid block", m)
		}
		var nw [2]uint32
		nw[m.To] = all
		return nw, nil
	}
	return [2]uint32{}, fmt.Errorf("replication: unknown move kind %d", m.Kind)
}

// accumulateDeltas records, for each distinct net incident to cell c,
// the change in active connection counts when ownership goes from old
// to nw. Results land in the scratch buffers; callers must call
// resetScratch when done.
func (s *State) accumulateDeltas(c hypergraph.CellID, old, nw [2]uint32) {
	cell := &s.g.Cells[c]
	add := func(n hypergraph.NetID, b Block, d int32) {
		if d == 0 {
			return
		}
		idx := s.scratchMark[n]
		if idx == 0 {
			s.scratchNets = append(s.scratchNets, n)
			s.scratchDelta = append(s.scratchDelta, [2]int32{})
			idx = int32(len(s.scratchNets))
			s.scratchMark[n] = idx
		}
		s.scratchDelta[idx-1][b] += d
	}
	for pi, n := range cell.Outputs {
		bit := uint32(1) << uint(pi)
		for b := Block(0); b < 2; b++ {
			was := old[b]&bit != 0
			is := nw[b]&bit != 0
			if was != is {
				if is {
					add(n, b, 1)
				} else {
					add(n, b, -1)
				}
			}
		}
	}
	for pi, n := range cell.Inputs {
		if n == hypergraph.NilNet {
			continue
		}
		colMask := s.col[c][pi]
		for b := Block(0); b < 2; b++ {
			was := old[b]&colMask != 0
			is := nw[b]&colMask != 0
			if was != is {
				if is {
					add(n, b, 1)
				} else {
					add(n, b, -1)
				}
			}
		}
	}
}

func (s *State) resetScratch() {
	for _, n := range s.scratchNets {
		s.scratchMark[n] = 0
	}
	s.scratchNets = s.scratchNets[:0]
	s.scratchDelta = s.scratchDelta[:0]
}

// Gain returns the exact objective reduction of applying m: positive
// gains shrink the cut (or, with a weight table installed, the
// weighted topology cost). The state is not modified.
func (s *State) Gain(m Move) (int, error) {
	nw, err := s.newOwn(m)
	if err != nil {
		return 0, err
	}
	old := s.own[m.Cell]
	s.accumulateDeltas(m.Cell, old, nw)
	gain := 0
	for i, n := range s.scratchNets {
		c0, c1 := s.cnt[n][0], s.cnt[n][1]
		n0, n1 := c0+s.scratchDelta[i][0], c1+s.scratchDelta[i][1]
		if s.netW != nil {
			w := &s.netW[n]
			gain += int(costAt(w, c0, c1) - costAt(w, n0, n1))
			continue
		}
		wasCut := c0 > 0 && c1 > 0
		isCut := n0 > 0 && n1 > 0
		if wasCut && !isCut {
			gain++
		} else if !wasCut && isCut {
			gain--
		}
	}
	s.resetScratch()
	return gain, nil
}

// MustGain is Gain that panics on invalid moves, for engine internals
// that already validated candidates.
func (s *State) MustGain(m Move) int {
	g, err := s.Gain(m)
	if err != nil {
		panic(err)
	}
	return g
}

// AreaDelta returns the change in block areas (delta0, delta1) that
// applying m would cause.
func (s *State) AreaDelta(m Move) (int, int, error) {
	nw, err := s.newOwn(m)
	if err != nil {
		return 0, 0, err
	}
	old := s.own[m.Cell]
	a := s.g.Cells[m.Cell].Area
	var d [2]int
	for b := Block(0); b < 2; b++ {
		was := old[b] != 0
		is := nw[b] != 0
		switch {
		case is && !was:
			d[b] = a
		case was && !is:
			d[b] = -a
		}
	}
	return d[0], d[1], nil
}

// Token marks a position in the mutation trail for Undo.
type Token int

// Mark returns a token for the current trail position.
func (s *State) Mark() Token { return Token(len(s.trail)) }

// Apply commits m and returns a token that undoes it (and anything
// after it) via Undo.
func (s *State) Apply(m Move) (Token, error) {
	nw, err := s.newOwn(m)
	if err != nil {
		return 0, err
	}
	tok := s.Mark()
	s.trail = append(s.trail, trailEntry{cell: m.Cell, own: s.own[m.Cell], home: s.home[m.Cell], repl: s.repl[m.Cell]})
	// Record the touched neighborhood as a free by-product of commit's
	// delta sweep (see LastTouched).
	s.bumpTouchEpoch()
	s.lastTouched = s.lastTouched[:0]
	s.touchStamp[m.Cell] = s.touchEpoch
	s.lastTouched = append(s.lastTouched, m.Cell)
	s.recordTouched = true
	s.commit(m.Cell, nw)
	s.recordTouched = false
	switch m.Kind {
	case SingleMove:
		s.home[m.Cell] = s.home[m.Cell].Other()
		// The reverse move undoes exactly the cut delta just applied,
		// so the mover's new single-move gain is the negation of its
		// (maintained, pre-move) value — no recomputation needed.
		if s.maintainGains {
			s.gainS[m.Cell] = -s.gainS[m.Cell]
		}
	case Replicate:
		s.repl[m.Cell] = true
	case Unreplicate:
		s.repl[m.Cell] = false
		s.home[m.Cell] = m.To
		if s.maintainGains {
			s.gainS[m.Cell] = s.computeSingleGain(m.Cell)
		}
	}
	s.stats.Moves++
	if m.Kind == Replicate {
		s.stats.Replicas++
	}
	return tok, nil
}

// phi is the contribution of one net to the single-move gain of a cell
// with k active connections on it, f of its home block's count and t of
// the other block's: +1 when the net is cut and the cell owns the whole
// from-side (moving uncuts it), −1 when the net is uncut and other
// from-side connections remain behind (moving cuts it).
func phi(f, t, k int32) int32 {
	if f > 0 && t > 0 {
		if f == k {
			return 1
		}
		return 0
	}
	if f > k {
		return -1
	}
	return 0
}

// computeSingleGain evaluates the single-move gain of an unreplicated
// cell from scratch — O(distinct nets of the cell). Used to (re)seed
// the maintained gainS after the cell's own ownership changes; steady-
// state neighbor updates happen incrementally in commit.
func (s *State) computeSingleGain(c hypergraph.CellID) int32 {
	h := s.home[c]
	g := int32(0)
	if s.netW != nil {
		for i := s.adjOff[c]; i < s.adjOff[c+1]; i++ {
			n := s.adjNet[i]
			g += phiW(&s.netW[n], s.cnt[n][0], s.cnt[n][1], s.adjK[i], h)
		}
		return g
	}
	for i := s.adjOff[c]; i < s.adjOff[c+1]; i++ {
		n := s.adjNet[i]
		g += phi(s.cnt[n][h], s.cnt[n][h.Other()], s.adjK[i])
	}
	return g
}

// termStatus reports whether net n demands an IOB in block b under the
// given connection counts (see Terminals).
func (s *State) termStatus(n hypergraph.NetID, b Block, c0, c1 int32) bool {
	ext := s.isExt[n]
	here, other := c0, c1
	if b == 1 {
		here, other = c1, c0
	}
	if s.extPin && ext {
		if b == 1 {
			here--
		} else {
			other--
		}
	}
	return here > 0 && (ext || other > 0)
}

// commit switches cell c's ownership to nw, updating net counts, cut
// size, block areas, terminal counters and — incrementally, from the
// criticality transitions of the changed nets — the maintained
// single-move gains of every affected neighbor. The mover's own gain is
// reseeded by the caller (Apply/Undo) once its home/replication flags
// are final.
func (s *State) commit(c hypergraph.CellID, nw [2]uint32) {
	old := s.own[c]
	weighted := s.netW != nil
	s.accumulateDeltas(c, old, nw)
	for i, n := range s.scratchNets {
		c0, c1 := s.cnt[n][0], s.cnt[n][1]
		n0, n1 := c0+s.scratchDelta[i][0], c1+s.scratchDelta[i][1]
		wasCut := c0 > 0 && c1 > 0
		isCut := n0 > 0 && n1 > 0
		if wasCut && !isCut {
			s.cut--
		} else if !wasCut && isCut {
			s.cut++
		}
		if weighted {
			w := &s.netW[n]
			s.topo += int(costAt(w, n0, n1) - costAt(w, c0, c1))
		}
		// Terminal-status transitions, inlined from termStatus with the
		// block-1 count pre-adjusted for the virtual pin connection.
		ext := s.isExt[n]
		var pin int32
		if s.extPin && ext {
			pin = 1
		}
		e1, m1 := c1-pin, n1-pin
		wasT0 := c0 > 0 && (ext || e1 > 0)
		isT0 := n0 > 0 && (ext || m1 > 0)
		wasT1 := e1 > 0 && (ext || c0 > 0)
		isT1 := m1 > 0 && (ext || n0 > 0)
		if wasT0 != isT0 {
			if isT0 {
				s.term[0]++
			} else {
				s.term[0]--
			}
		}
		if wasT1 != isT1 {
			if isT1 {
				s.term[1]++
			} else {
				s.term[1]--
			}
		}
		// Neighbor gain deltas. phi depends on t only through the cut
		// flag, so a block's cells can only see a delta when their own
		// side's count or the cut status changed — and the same holds
		// for phiW: its cross-side dependence is the (count > 0) flag,
		// which cannot flip without flipping the cut flag while an
		// unreplicated neighbor holds k > 0 connections on its own
		// side. With maintenance off both flags stay false, so the
		// sweep below only records the touched neighborhood.
		changed0 := (c0 != n0 || wasCut != isCut) && s.maintainGains
		changed1 := (c1 != n1 || wasCut != isCut) && s.maintainGains
		if changed0 || changed1 || s.recordTouched {
			for _, nc := range s.netAdj[s.netOff[n]:s.netOff[n+1]] {
				cc := nc.cell
				if s.recordTouched && s.touchStamp[cc] != s.touchEpoch {
					s.touchStamp[cc] = s.touchEpoch
					s.lastTouched = append(s.lastTouched, cc)
				}
				if cc == c || s.repl[cc] {
					continue
				}
				h := s.home[cc]
				if h == 0 && !changed0 || h == 1 && !changed1 {
					continue
				}
				if weighted {
					w := &s.netW[n]
					s.gainS[cc] += phiW(w, n0, n1, nc.k, h) - phiW(w, c0, c1, nc.k, h)
				} else if h == 0 {
					s.gainS[cc] += phi(n0, n1, nc.k) - phi(c0, c1, nc.k)
				} else {
					s.gainS[cc] += phi(n1, n0, nc.k) - phi(c1, c0, nc.k)
				}
			}
		}
		s.cnt[n] = [2]int32{n0, n1}
	}
	s.resetScratch()
	a := s.g.Cells[c].Area
	for b := Block(0); b < 2; b++ {
		was := old[b] != 0
		is := nw[b] != 0
		switch {
		case is && !was:
			s.area[b] += a
		case was && !is:
			s.area[b] -= a
		}
	}
	s.own[c] = nw
}

// Undo rolls the state back to the given token.
func (s *State) Undo(tok Token) error {
	if int(tok) < 0 || int(tok) > len(s.trail) {
		return fmt.Errorf("replication: invalid undo token %d (trail %d)", tok, len(s.trail))
	}
	s.stats.Rollbacks += int64(len(s.trail) - int(tok))
	for len(s.trail) > int(tok) {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		wasRepl := s.repl[e.cell]
		s.commit(e.cell, e.own)
		s.home[e.cell] = e.home
		s.repl[e.cell] = e.repl
		if !e.repl && s.maintainGains {
			if !wasRepl {
				// Reversing a single move: negate (see Apply).
				s.gainS[e.cell] = -s.gainS[e.cell]
			} else {
				// Reversing a replication: the cell was replicated, so
				// its maintained gain is stale — recompute.
				s.gainS[e.cell] = s.computeSingleGain(e.cell)
			}
		}
	}
	return nil
}

// Checkpoint is a reusable full snapshot of the dynamic partition
// state, for O(cells + nets) pass rollback: an FM pass that applies M
// moves and keeps only a prefix can restore the best point with flat
// array copies instead of per-move undo sweeps. Buffers are allocated
// on first save and reused.
type Checkpoint struct {
	valid    bool
	trailLen int
	cut      int
	topo     int
	area     [2]int
	term     [2]int
	own      [][2]uint32
	home     []Block
	repl     []bool
	cnt      [][2]int32
	gainS    []int32
}

// SaveCheckpoint snapshots the current state into cp.
func (s *State) SaveCheckpoint(cp *Checkpoint) {
	n, m := len(s.own), len(s.cnt)
	if cap(cp.own) < n {
		cp.own = make([][2]uint32, n)
		cp.home = make([]Block, n)
		cp.repl = make([]bool, n)
		cp.gainS = make([]int32, n)
	}
	if cap(cp.cnt) < m {
		cp.cnt = make([][2]int32, m)
	}
	cp.own, cp.home, cp.repl, cp.gainS = cp.own[:n], cp.home[:n], cp.repl[:n], cp.gainS[:n]
	cp.cnt = cp.cnt[:m]
	copy(cp.own, s.own)
	copy(cp.home, s.home)
	copy(cp.repl, s.repl)
	copy(cp.gainS, s.gainS)
	copy(cp.cnt, s.cnt)
	cp.trailLen = len(s.trail)
	cp.cut, cp.area, cp.term = s.cut, s.area, s.term
	cp.topo = s.topo
	cp.valid = true
}

// RestoreCheckpoint rolls the state back to a snapshot taken earlier on
// this same state. The trail is truncated to the snapshot point, so
// tokens issued after the save become invalid — equivalent to Undo of
// every later move, but in flat array copies.
func (s *State) RestoreCheckpoint(cp *Checkpoint) error {
	if !cp.valid {
		return fmt.Errorf("replication: restore from unsaved checkpoint")
	}
	if len(cp.own) != len(s.own) || len(cp.cnt) != len(s.cnt) {
		return fmt.Errorf("replication: checkpoint of %d cells/%d nets restored onto %d/%d",
			len(cp.own), len(cp.cnt), len(s.own), len(s.cnt))
	}
	if cp.trailLen > len(s.trail) {
		return fmt.Errorf("replication: checkpoint trail %d ahead of state trail %d", cp.trailLen, len(s.trail))
	}
	copy(s.own, cp.own)
	copy(s.home, cp.home)
	copy(s.repl, cp.repl)
	copy(s.gainS, cp.gainS)
	copy(s.cnt, cp.cnt)
	s.stats.Rollbacks += int64(len(s.trail) - cp.trailLen)
	s.trail = s.trail[:cp.trailLen]
	s.cut, s.area, s.term = cp.cut, cp.area, cp.term
	s.topo = cp.topo
	return nil
}

// Splits returns the candidate carry masks for functionally
// replicating cell c: every proper non-empty output subset for cells
// with up to four outputs, singletons and their complements otherwise.
// The returned slice is a precomputed shared table — callers must not
// modify it.
func (s *State) Splits(c hypergraph.CellID) []uint32 {
	lo, hi := s.splitOff[c], s.splitOff[c+1]
	if lo == hi {
		return nil
	}
	return s.splitMask[lo:hi:hi]
}

// Terminals returns t_Pb: the number of nets in block b that need an
// IOB — external nets touching the block plus cut nets. Virtual pin
// connections (NewStatePinned) are excluded from the touch counts.
// The counters are maintained incrementally per committed move, so
// this is O(1).
func (s *State) Terminals(b Block) int { return s.term[b] }

// terminalsSlow recomputes Terminals by scanning every net; retained
// as the independent ground truth for CheckInvariants.
func (s *State) terminalsSlow(b Block) int {
	t := 0
	for ni := range s.g.Nets {
		if s.termStatus(hypergraph.NetID(ni), b, s.cnt[ni][0], s.cnt[ni][1]) {
			t++
		}
	}
	return t
}

// CutNet reports whether net n is currently in the cut set.
func (s *State) CutNet(n hypergraph.NetID) bool {
	return s.cnt[n][0] > 0 && s.cnt[n][1] > 0
}

// TouchedCells returns the distinct cells with an active connection on
// any active net incident to cell c — the neighborhood whose candidate
// gains an engine must refresh after applying a move on c. The result
// includes c itself, first. The call is allocation-free for a buf with
// sufficient capacity.
func (s *State) TouchedCells(c hypergraph.CellID, buf []hypergraph.CellID) []hypergraph.CellID {
	buf = buf[:0]
	s.bumpTouchEpoch()
	epoch := s.touchEpoch
	s.touchStamp[c] = epoch
	buf = append(buf, c)
	for i := s.adjOff[c]; i < s.adjOff[c+1]; i++ {
		n := s.adjNet[i]
		for _, nc := range s.netAdj[s.netOff[n]:s.netOff[n+1]] {
			if s.touchStamp[nc.cell] != epoch {
				s.touchStamp[nc.cell] = epoch
				buf = append(buf, nc.cell)
			}
		}
	}
	return buf
}

func (s *State) bumpTouchEpoch() {
	s.touchEpoch++
	if s.touchEpoch == 0 { // wrapped: invalidate all stamps
		for i := range s.touchStamp {
			s.touchStamp[i] = 0
		}
		s.touchEpoch = 1
	}
}

// LastTouched returns the touched neighborhood of the most recent
// Apply — the same cell set TouchedCells(mover) produces for a single
// move (mover first), collected for free during the commit delta
// sweep. For replication moves it may omit cells on nets whose
// connection counts did not change; use TouchedCells when those
// matter. The slice is valid until the next Apply and must not be
// modified.
func (s *State) LastTouched() []hypergraph.CellID { return s.lastTouched }

// InstanceSpecs lists the cell copies active in block b in the form
// hypergraph.Subcircuit consumes. Replica copies (a replicated cell's
// copy outside its home block) carry the Replica flag and get a "$r"
// name suffix to keep names unique.
func (s *State) InstanceSpecs(b Block) []hypergraph.InstanceSpec {
	var specs []hypergraph.InstanceSpec
	for ci := range s.own {
		mask := s.own[ci][b]
		if mask == 0 {
			continue
		}
		spec := hypergraph.InstanceSpec{Cell: hypergraph.CellID(ci)}
		if mask != s.all[ci] {
			outs := make([]int, 0, bits.OnesCount32(mask))
			for i := 0; i < MaxOutputs; i++ {
				if mask&(1<<uint(i)) != 0 {
					outs = append(outs, i)
				}
			}
			spec.Outputs = outs
		}
		if s.repl[ci] && b != s.home[ci] {
			spec.Rename = s.g.Cells[ci].Name + "$r"
			spec.Replica = true
		}
		specs = append(specs, spec)
	}
	return specs
}

// CheckInvariants recomputes every derived quantity from scratch and
// compares; used by tests and property checks. Beyond the original
// count/cut/area checks it cross-validates the incrementally
// maintained terminal counters and single-move gains against
// independent recomputation.
func (s *State) CheckInvariants() error {
	cnt := make([][2]int32, len(s.g.Nets))
	if s.extPin {
		for ni := range s.g.Nets {
			if s.g.Nets[ni].Ext != hypergraph.Internal {
				cnt[ni][1]++
			}
		}
	}
	var area [2]int
	for ci := range s.g.Cells {
		c := &s.g.Cells[ci]
		own := s.own[ci]
		if own[0]&own[1] != 0 {
			return fmt.Errorf("cell %q owned in both blocks: %b/%b", c.Name, own[0], own[1])
		}
		if own[0]|own[1] != s.all[ci] {
			return fmt.Errorf("cell %q ownership incomplete: %b|%b != %b", c.Name, own[0], own[1], s.all[ci])
		}
		if s.repl[ci] != (own[0] != 0 && own[1] != 0) {
			return fmt.Errorf("cell %q replication flag inconsistent", c.Name)
		}
		if !s.repl[ci] && own[s.home[ci]] == 0 {
			return fmt.Errorf("cell %q home block owns nothing", c.Name)
		}
		for b := Block(0); b < 2; b++ {
			if own[b] != 0 {
				area[b] += c.Area
			}
			for pi := range c.Outputs {
				if own[b]&(1<<uint(pi)) != 0 {
					cnt[c.Outputs[pi]][b]++
				}
			}
			for pi, n := range c.Inputs {
				if n == hypergraph.NilNet {
					continue
				}
				if own[b]&s.col[ci][pi] != 0 {
					cnt[n][b]++
				}
			}
		}
	}
	cut, topo := 0, 0
	for ni := range s.g.Nets {
		if cnt[ni] != s.cnt[ni] {
			return fmt.Errorf("net %q counts %v, cached %v", s.g.Nets[ni].Name, cnt[ni], s.cnt[ni])
		}
		if cnt[ni][0] > 0 && cnt[ni][1] > 0 {
			cut++
		}
		if s.netW != nil {
			topo += int(costAt(&s.netW[ni], cnt[ni][0], cnt[ni][1]))
		}
	}
	if cut != s.cut {
		return fmt.Errorf("cut %d, cached %d", cut, s.cut)
	}
	if s.netW != nil && topo != s.topo {
		return fmt.Errorf("topology cost %d, cached %d", topo, s.topo)
	}
	if area != s.area {
		return fmt.Errorf("area %v, cached %v", area, s.area)
	}
	for b := Block(0); b < 2; b++ {
		if slow := s.terminalsSlow(b); slow != s.term[b] {
			return fmt.Errorf("terminals(%d) %d, cached %d", b, slow, s.term[b])
		}
	}
	for ci := range s.g.Cells {
		c := hypergraph.CellID(ci)
		if s.repl[c] || !s.maintainGains {
			// With maintenance off the cached gains are intentionally
			// stale; SingleGain is documented as unusable until
			// SetGainMaintenance(true) recomputes them.
			continue
		}
		want, err := s.Gain(Move{Cell: c, Kind: SingleMove})
		if err != nil {
			return fmt.Errorf("cell %q: single gain: %v", s.g.Cells[ci].Name, err)
		}
		if int(s.gainS[c]) != want {
			return fmt.Errorf("cell %q: maintained single gain %d, semantic %d",
				s.g.Cells[ci].Name, s.gainS[c], want)
		}
	}
	return nil
}
