package replication

// Optimal min-cut functional replication via maximum flow — the
// refinement the paper points to in its conclusion ("combining this
// approach with techniques in [4] may potentially reduce the size of
// the cut even further"; [4] is Hwang & El Gamal, "Optimal Replication
// for Min-Cut Partitioning", ICCAD'92).
//
// Given a bipartition, consider pulling individual *outputs* of
// unreplicated cells from one block into the other (the receiving copy
// keeps exactly the inputs its outputs depend on — functional
// replication). For every net e introduce two binary variables:
// Ye = "the target block uses e after the pull" and Ze = "the source
// block no longer uses e". The resulting cut size is Σ_e [Ye ∧ ¬Ze],
// and all the implications between pulled outputs and net usage are
// monotone, so the minimum over all pull sets is an s-t minimum cut /
// maximum flow. Unlike the FM pass, which moves one cell at a time,
// this solves the whole replication subset exactly (for one direction
// and ignoring area, exactly the relaxation [4] studies).

import (
	"fmt"
	"math/bits"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/maxflow"
)

// PullOptions configures OptimalPull.
type PullOptions struct {
	// Radius restricts candidates to cells within this many hops of a
	// cut net (default 3); 0 means every unreplicated cell of the
	// source block is a candidate.
	Radius int
	// MaxExtraArea caps the area added to the target block by new
	// copies; negative means unlimited. If the optimal pull set
	// exceeds the budget nothing is applied.
	MaxExtraArea int
}

// PullResult reports what OptimalPull did.
type PullResult struct {
	Applied             bool
	Predicted           int // min-cut value from the flow network
	CutBefore, CutAfter int
	PulledOutputs       int
	ReplicatedCells     int // cells that gained a second copy
	MovedCells          int // cells whose every output was pulled
	ExtraArea           int // area added to the target block
}

// OptimalPull computes and (area permitting) applies the optimal
// functional-replication pull from block `from` into the other block.
func OptimalPull(st *State, from Block, opts PullOptions) (PullResult, error) {
	if from > 1 {
		return PullResult{}, fmt.Errorf("replication: invalid block %d", from)
	}
	if opts.Radius == 0 {
		opts.Radius = 3
	}
	to := from.Other()
	res := PullResult{CutBefore: st.CutSize(), CutAfter: st.CutSize()}

	cand := st.pullCandidates(from, opts.Radius)
	if len(cand) == 0 {
		res.Predicted = res.CutBefore
		return res, nil
	}

	// ---- Build the flow network ----------------------------------------
	g := maxflow.New(2)
	const s, t = 0, 1
	// One node per candidate output.
	outNode := make(map[hypergraph.CellID][]int, len(cand))
	isCand := make(map[hypergraph.CellID]bool, len(cand))
	for _, c := range cand {
		isCand[c] = true
		m := len(st.g.Cells[c].Outputs)
		nodes := make([]int, m)
		for o := 0; o < m; o++ {
			nodes[o] = g.AddNode()
		}
		outNode[c] = nodes
	}
	// Two nodes per net: Ye ("target uses e") and Ze ("source freed").
	ye := make([]int, len(st.g.Nets))
	ze := make([]int, len(st.g.Nets))
	for ni := range st.g.Nets {
		ye[ni] = g.AddNode()
		ze[ni] = g.AddNode()
		g.AddEdge(ze[ni], ye[ni], 1) // the cut cost [Ye ∧ ¬Ze]
	}

	for ni := range st.g.Nets {
		net := &st.g.Nets[ni]
		// Candidates live in the source block, so cnt[to] is entirely
		// fixed usage (including the virtual terminal connection of
		// pinned states, which sits in block 1).
		usedTo := st.cnt[ni][to] > 0
		// The virtual terminal connection can never be pulled.
		usedFromFixed := st.extPin && net.Ext != hypergraph.Internal && from == 1
		for _, cn := range net.Conns {
			active := false
			var outsMask uint32
			if cn.Out {
				outsMask = 1 << uint(cn.Pin)
				active = st.own[cn.Cell][from]&outsMask != 0
			} else {
				outsMask = st.col[cn.Cell][cn.Pin]
				active = st.own[cn.Cell][from]&outsMask != 0
			}
			if !active {
				continue
			}
			if !isCand[cn.Cell] {
				usedFromFixed = true
				continue
			}
			// Candidate connection: each relevant output o pulls this
			// net's target usage up and blocks the source release.
			mask := outsMask & st.own[cn.Cell][from]
			for mask != 0 {
				o := bits.TrailingZeros32(mask)
				mask &^= 1 << uint(o)
				x := outNode[cn.Cell][o]
				g.AddEdge(ye[ni], x, maxflow.Inf) // Ye ≥ x
				g.AddEdge(x, ze[ni], maxflow.Inf) // Ze ⇒ x pulled
			}
		}
		if usedTo {
			g.AddEdge(ye[ni], t, maxflow.Inf) // target side already uses e
		}
		if usedFromFixed {
			g.AddEdge(s, ze[ni], maxflow.Inf) // source usage cannot be freed
		}
	}

	flow := g.MaxFlow(s, t)
	res.Predicted = int(flow)
	if res.Predicted >= res.CutBefore {
		return res, nil // no improvement available in this direction
	}
	side := g.MinCutSide(s)

	// ---- Extract and apply the pull set --------------------------------
	type pull struct {
		cell hypergraph.CellID
		mask uint32
	}
	var pulls []pull
	extraArea := 0
	for _, c := range cand {
		var mask uint32
		for o, node := range outNode[c] {
			if !side[node] { // sink side = pulled
				mask |= 1 << uint(o)
			}
		}
		if mask == 0 {
			continue
		}
		// Both replicas and whole-cell moves grow the target block.
		extraArea += st.g.Cells[c].Area
		res.PulledOutputs += bits.OnesCount32(mask)
		pulls = append(pulls, pull{c, mask})
	}
	if opts.MaxExtraArea >= 0 && extraArea > opts.MaxExtraArea {
		return res, nil
	}
	for _, p := range pulls {
		var m Move
		if p.mask == st.all[p.cell] {
			m = Move{Cell: p.cell, Kind: SingleMove}
			res.MovedCells++
		} else {
			m = Move{Cell: p.cell, Kind: Replicate, Carry: p.mask}
			res.ReplicatedCells++
		}
		if _, err := st.Apply(m); err != nil {
			return res, fmt.Errorf("replication: applying optimal pull: %w", err)
		}
	}
	res.Applied = true
	res.ExtraArea = extraArea
	res.CutAfter = st.CutSize()
	return res, nil
}

// pullCandidates returns the unreplicated cells of block `from` within
// radius hops of a cut net.
func (s *State) pullCandidates(from Block, radius int) []hypergraph.CellID {
	if radius <= 0 {
		var out []hypergraph.CellID
		for ci := range s.g.Cells {
			c := hypergraph.CellID(ci)
			if !s.repl[c] && s.home[c] == from {
				out = append(out, c)
			}
		}
		return out
	}
	dist := make(map[hypergraph.CellID]int)
	var frontier []hypergraph.CellID
	for ni := range s.g.Nets {
		if !s.CutNet(hypergraph.NetID(ni)) {
			continue
		}
		for _, cn := range s.g.Nets[ni].Conns {
			if _, ok := dist[cn.Cell]; !ok {
				dist[cn.Cell] = 1
				frontier = append(frontier, cn.Cell)
			}
		}
	}
	for d := 1; d < radius && len(frontier) > 0; d++ {
		var next []hypergraph.CellID
		for _, c := range frontier {
			for _, net := range s.g.CellNets(c) {
				for _, cn := range s.g.Nets[net].Conns {
					if _, ok := dist[cn.Cell]; !ok {
						dist[cn.Cell] = d + 1
						next = append(next, cn.Cell)
					}
				}
			}
		}
		frontier = next
	}
	var out []hypergraph.CellID
	for ci := range s.g.Cells {
		c := hypergraph.CellID(ci)
		if _, ok := dist[c]; ok && !s.repl[c] && s.home[c] == from {
			out = append(out, c)
		}
	}
	return out
}
