package replication

import (
	"fmt"

	"fpgapart/internal/hypergraph"
)

// NetWeights generalizes the unit-cut objective to a per-net cost
// table over the net's block-activity pattern. A net contributes
//
//	0        when inactive in both blocks,
//	Alone[b] when active only in block b,
//	Both     when active in both blocks (cut).
//
// The classic objective is the special case {Alone: [0,0], Both: 1}
// summed over nets; SetNetWeights(nil) selects it with zero overhead.
//
// The k-way engine derives these weights from a board topology: for a
// carve splitting the remainder between slot s0 (the part being carved)
// and slot s1 (the rest), Alone[0] is the marginal Steiner cost of
// extending the net's already-placed span to s0, Alone[1] the cost of
// extending to s1, and Both the cost of extending to s0 and s1. An FM
// run minimizing the weighted sum then minimizes the hop-weighted
// interconnect of the final placement instead of the flat cut.
type NetWeights struct {
	Alone [2]int32
	Both  int32
}

// costAt evaluates one net's contribution under weights w for
// connection counts (c0, c1).
func costAt(w *NetWeights, c0, c1 int32) int32 {
	if c0 > 0 {
		if c1 > 0 {
			return w.Both
		}
		return w.Alone[0]
	}
	if c1 > 0 {
		return w.Alone[1]
	}
	return 0
}

// phiW is the weighted counterpart of phi: the contribution of one net
// to the single-move gain of an unreplicated cell with home block h
// and k active connections on the net, given counts (c0, c1). The
// cell's side holds at least its own k connections, so the before-cost
// never hits the inactive row; the after-cost switches to the opposite
// Alone entry exactly when the cell carried the whole from-side.
// With w = {Alone: [0,0], Both: 1} this reduces to phi.
func phiW(w *NetWeights, c0, c1, k int32, h Block) int32 {
	if h == 0 {
		before := w.Alone[0]
		if c1 > 0 {
			before = w.Both
		}
		after := w.Alone[1]
		if c0 > k {
			after = w.Both
		}
		return before - after
	}
	before := w.Alone[1]
	if c0 > 0 {
		before = w.Both
	}
	after := w.Alone[0]
	if c1 > k {
		after = w.Both
	}
	return before - after
}

// SetNetWeights installs per-net objective weights (one entry per net)
// or reverts to the classic unit-cut objective (nil). The weighted
// objective total and every maintained single-move gain are recomputed;
// the undo trail must be empty (set weights between runs, not inside
// one — checkpoints and pending undo tokens do not capture the old
// weight table).
func (s *State) SetNetWeights(w []NetWeights) error {
	if w != nil && len(w) != len(s.g.Nets) {
		return fmt.Errorf("replication: %d net weights for %d nets", len(w), len(s.g.Nets))
	}
	if len(s.trail) != 0 {
		return fmt.Errorf("replication: SetNetWeights with %d moves on the undo trail", len(s.trail))
	}
	s.netW = w
	s.recomputeWeighted()
	return nil
}

// recomputeWeighted reseeds the weighted objective total, the move-gain
// bound and (when maintenance is on) every unreplicated cell's gain for
// the current weight table.
func (s *State) recomputeWeighted() {
	s.maxMoveGain = s.maxDeg
	s.topo = 0
	if s.netW != nil {
		spread := int32(1)
		for i := range s.netW {
			w := &s.netW[i]
			lo, hi := int32(0), int32(0)
			for _, v := range [3]int32{w.Alone[0], w.Alone[1], w.Both} {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if d := hi - lo; d > spread {
				spread = d
			}
			s.topo += int(costAt(w, s.cnt[i][0], s.cnt[i][1]))
		}
		s.maxMoveGain = s.maxDeg * int(spread)
	}
	if s.maintainGains {
		for ci := range s.gainS {
			if !s.repl[ci] {
				s.gainS[ci] = s.computeSingleGain(hypergraph.CellID(ci))
			}
		}
	}
}

// Weighted reports whether a per-net weight table is installed.
func (s *State) Weighted() bool { return s.netW != nil }

// TopologyCost returns the maintained weighted objective Σ cost(net)
// under the installed weight table. Zero when no table is installed.
func (s *State) TopologyCost() int { return s.topo }

// Objective returns the quantity an FM-style engine should minimize on
// this state: the weighted topology cost when a weight table is
// installed, the plain cut size otherwise. Engines that track their
// best-prefix via Objective are objective-generic while remaining
// byte-identical on unweighted states.
func (s *State) Objective() int {
	if s.netW != nil {
		return s.topo
	}
	return s.cut
}

// MaxMoveGain bounds |gain| for every move kind under the current
// objective: MaxCellDegree for the unit-cut objective, scaled by the
// largest per-net weight spread when a weight table is installed. Gain
// bucket arrays sized by this bound never overflow.
func (s *State) MaxMoveGain() int { return s.maxMoveGain }
