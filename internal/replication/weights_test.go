package replication

import (
	"math/rand"
	"testing"

	"fpgapart/internal/hypergraph"
)

// randomWeights builds an arbitrary non-negative weight table: some
// nets cheap on one side, some symmetric, spreads up to 6.
func randomWeights(r *rand.Rand, nets int) []NetWeights {
	w := make([]NetWeights, nets)
	for i := range w {
		a0 := int32(r.Intn(4))
		a1 := int32(r.Intn(4))
		both := a0 + a1 + int32(r.Intn(3))
		w[i] = NetWeights{Alone: [2]int32{a0, a1}, Both: both}
	}
	return w
}

// unitWeights is the classic objective expressed as a weight table.
func unitWeights(nets int) []NetWeights {
	w := make([]NetWeights, nets)
	for i := range w {
		w[i] = NetWeights{Both: 1}
	}
	return w
}

// Property: with the unit table installed, the weighted machinery
// reproduces the classic objective move for move — TopologyCost equals
// CutSize and every gain matches a twin unweighted state.
func TestUnitWeightsMatchCut(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		st := randomState(t, seed, 50)
		twin := randomState(t, seed, 50)
		if err := st.SetNetWeights(unitWeights(len(st.Graph().Nets))); err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		for step := 0; step < 80; step++ {
			m := randomMove(r, st)
			gw, err := st.Gain(m)
			if err != nil {
				t.Fatal(err)
			}
			gu, err := twin.Gain(m)
			if err != nil {
				t.Fatal(err)
			}
			if gw != gu {
				t.Fatalf("seed %d step %d: %v weighted gain %d, classic %d", seed, step, m, gw, gu)
			}
			if _, err := st.Apply(m); err != nil {
				t.Fatal(err)
			}
			if _, err := twin.Apply(m); err != nil {
				t.Fatal(err)
			}
			if st.TopologyCost() != st.CutSize() || st.Objective() != twin.CutSize() {
				t.Fatalf("seed %d step %d: topo %d, cut %d/%d", seed, step,
					st.TopologyCost(), st.CutSize(), twin.CutSize())
			}
			for ci := 0; ci < st.Graph().NumCells(); ci++ {
				c := hypergraph.CellID(ci)
				if !st.IsReplicated(c) && st.SingleGain(c) != twin.SingleGain(c) {
					t.Fatalf("seed %d step %d: cell %d maintained gain %d, classic %d",
						seed, step, ci, st.SingleGain(c), twin.SingleGain(c))
				}
			}
		}
	}
}

// Property: under an arbitrary weight table, Gain equals the observed
// TopologyCost delta, stays within MaxMoveGain, agrees with the
// Evaluator, and every invariant (including the topo recount) holds.
func TestPropertyWeightedGainMatchesDelta(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		st := randomState(t, seed, 60)
		r := rand.New(rand.NewSource(seed * 13))
		if err := st.SetNetWeights(randomWeights(r, len(st.Graph().Nets))); err != nil {
			t.Fatal(err)
		}
		ev := NewEvaluator(st)
		for step := 0; step < 120; step++ {
			m := randomMove(r, st)
			want, err := st.Gain(m)
			if err != nil {
				t.Fatalf("seed %d step %d: gain(%v): %v", seed, step, m, err)
			}
			if got := ev.MustGain(m); got != want {
				t.Fatalf("seed %d step %d: evaluator gain %d, state gain %d", seed, step, got, want)
			}
			if want > st.MaxMoveGain() || want < -st.MaxMoveGain() {
				t.Fatalf("seed %d step %d: gain %d outside ±MaxMoveGain %d", seed, step, want, st.MaxMoveGain())
			}
			if m.Kind == SingleMove {
				if got := ev.SingleGain(m.Cell); got != want {
					t.Fatalf("seed %d step %d: evaluator single gain %d, want %d", seed, step, got, want)
				}
				if got := st.SingleGain(m.Cell); got != want {
					t.Fatalf("seed %d step %d: maintained single gain %d, want %d", seed, step, got, want)
				}
			}
			before := st.TopologyCost()
			if _, err := st.Apply(m); err != nil {
				t.Fatalf("seed %d step %d: apply(%v): %v", seed, step, m, err)
			}
			if got := before - st.TopologyCost(); got != want {
				t.Fatalf("seed %d step %d: %v gain=%d, topo delta=%d", seed, step, m, want, got)
			}
			if step%17 == 0 {
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Property: with virtual external pins, the weighted objective is
// defined over the pinned counts and stays consistent with recount.
func TestWeightedPinnedExternal(t *testing.T) {
	st := randomState(t, 3, 50)
	assign := make([]Block, st.Graph().NumCells())
	r := rand.New(rand.NewSource(5))
	for i := range assign {
		assign[i] = Block(r.Intn(2))
	}
	if err := st.ResetPinned(assign, true); err != nil {
		t.Fatal(err)
	}
	if err := st.SetNetWeights(randomWeights(r, len(st.Graph().Nets))); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 100; step++ {
		m := randomMove(r, st)
		want, err := st.Gain(m)
		if err != nil {
			t.Fatal(err)
		}
		before := st.TopologyCost()
		if _, err := st.Apply(m); err != nil {
			t.Fatal(err)
		}
		if got := before - st.TopologyCost(); got != want {
			t.Fatalf("step %d: %v gain=%d, topo delta=%d", step, m, want, got)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Undo and checkpoint restore must roll the weighted objective back
// exactly, and ResetPinned must keep the installed table.
func TestWeightedUndoCheckpointReset(t *testing.T) {
	st := randomState(t, 7, 50)
	r := rand.New(rand.NewSource(21))
	if err := st.SetNetWeights(randomWeights(r, len(st.Graph().Nets))); err != nil {
		t.Fatal(err)
	}
	topo0 := st.TopologyCost()
	var cp Checkpoint
	st.SaveCheckpoint(&cp)
	for step := 0; step < 60; step++ {
		if _, err := st.Apply(randomMove(r, st)); err != nil {
			t.Fatal(err)
		}
	}
	mid := st.TopologyCost()
	if err := st.RestoreCheckpoint(&cp); err != nil {
		t.Fatal(err)
	}
	if st.TopologyCost() != topo0 {
		t.Fatalf("restore: topo %d, want %d", st.TopologyCost(), topo0)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		if _, err := st.Apply(randomMove(r, st)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Undo(0); err != nil {
		t.Fatal(err)
	}
	if st.TopologyCost() != topo0 {
		t.Fatalf("undo: topo %d, want %d", st.TopologyCost(), topo0)
	}
	_ = mid
	assign := make([]Block, st.Graph().NumCells())
	if err := st.Reset(assign); err != nil {
		t.Fatal(err)
	}
	if !st.Weighted() {
		t.Fatal("Reset dropped the weight table")
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetNetWeightsValidation(t *testing.T) {
	st := randomState(t, 9, 30)
	if err := st.SetNetWeights(make([]NetWeights, 1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := st.Apply(Move{Cell: 0, Kind: SingleMove}); err != nil {
		t.Fatal(err)
	}
	if err := st.SetNetWeights(unitWeights(len(st.Graph().Nets))); err == nil {
		t.Fatal("SetNetWeights accepted with pending undo trail")
	}
	if err := st.Undo(0); err != nil {
		t.Fatal(err)
	}
	if err := st.SetNetWeights(unitWeights(len(st.Graph().Nets))); err != nil {
		t.Fatal(err)
	}
	if err := st.SetNetWeights(nil); err != nil {
		t.Fatal(err)
	}
	if st.Weighted() || st.Objective() != st.CutSize() {
		t.Fatal("nil table did not revert to the cut objective")
	}
	if st.MaxMoveGain() != st.MaxCellDegree() {
		t.Fatalf("flat MaxMoveGain %d != MaxCellDegree %d", st.MaxMoveGain(), st.MaxCellDegree())
	}
}

// Gain maintenance off/on must resync weighted gains, mirroring the
// parfm usage pattern.
func TestWeightedGainMaintenanceToggle(t *testing.T) {
	st := randomState(t, 11, 50)
	r := rand.New(rand.NewSource(31))
	if err := st.SetNetWeights(randomWeights(r, len(st.Graph().Nets))); err != nil {
		t.Fatal(err)
	}
	st.SetGainMaintenance(false)
	for step := 0; step < 50; step++ {
		if _, err := st.Apply(randomMove(r, st)); err != nil {
			t.Fatal(err)
		}
	}
	st.SetGainMaintenance(true)
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
