package replication

import (
	"math/rand"
	"reflect"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
)

// checkpointGraph builds a mid-size clustered instance with an even
// initial split, the substrate for the serialization round-trips.
func checkpointGraph(t *testing.T) (*hypergraph.Graph, []Block) {
	t.Helper()
	g, err := bench.Generate(bench.Params{Cells: 300, PrimaryIn: 12, PrimaryOut: 8, Seed: 7, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]Block, g.NumCells())
	for i := range assign {
		assign[i] = Block(i % 2)
	}
	return g, assign
}

// driveState applies a deterministic pseudo-random move sequence —
// single moves, functional replications when eligible, unreplications
// of replicated cells — standing in for the moves of an FM pass.
// Invalid moves are skipped; the sequence depends only on seed.
func driveState(t *testing.T, st *State, seed int64, steps int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	n := st.Graph().NumCells()
	for i := 0; i < steps; i++ {
		c := hypergraph.CellID(r.Intn(n))
		var m Move
		switch {
		case st.IsReplicated(c):
			m = Move{Cell: c, Kind: Unreplicate, To: Block(r.Intn(2))}
		case st.CanReplicate(c, 0) && r.Intn(2) == 0:
			splits := st.Splits(c)
			m = Move{Cell: c, Kind: Replicate, Carry: splits[r.Intn(len(splits))]}
		default:
			m = Move{Cell: c, Kind: SingleMove}
		}
		if _, err := st.Apply(m); err != nil {
			continue
		}
	}
}

// stateFingerprint captures everything the continued-pass comparison
// cares about: the full dynamic arrays plus the maintained scalars.
type stateFingerprint struct {
	own   [][2]uint32
	home  []Block
	repl  []bool
	gainS []int32
	cnt   [][2]int32
	cut   int
	topo  int
	area  [2]int
	term  [2]int
}

func fingerprint(s *State) stateFingerprint {
	return stateFingerprint{
		own:   append([][2]uint32(nil), s.own...),
		home:  append([]Block(nil), s.home...),
		repl:  append([]bool(nil), s.repl...),
		gainS: append([]int32(nil), s.gainS...),
		cnt:   append([][2]int32(nil), s.cnt...),
		cut:   s.cut, topo: s.topo, area: s.area, term: s.term,
	}
}

// testWeights derives a small deterministic per-net weight table, the
// shape the board-topology objective installs.
func testWeights(g *hypergraph.Graph) []NetWeights {
	w := make([]NetWeights, len(g.Nets))
	for i := range w {
		w[i] = NetWeights{Alone: [2]int32{int32(i % 3), int32((i + 1) % 3)}, Both: 2 + int32(i%2)}
	}
	return w
}

// TestCheckpointBinaryRoundTrip is the serialization contract the WAL
// job store builds on: a checkpoint taken mid-run survives
// encode→decode bit-exactly, restores onto a fresh state that passes
// CheckInvariants, and the restored state continues a move sequence
// byte-identically to the original — for both the classic unit-cut
// objective and the weighted (board-topology) objective, with live
// replica-flag state.
func TestCheckpointBinaryRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		name := "classic"
		if weighted {
			name = "weighted"
		}
		t.Run(name, func(t *testing.T) {
			g, assign := checkpointGraph(t)
			st, err := NewState(g, assign)
			if err != nil {
				t.Fatal(err)
			}
			var weights []NetWeights
			if weighted {
				weights = testWeights(g)
				if err := st.SetNetWeights(weights); err != nil {
					t.Fatal(err)
				}
			}
			driveState(t, st, 41, 400)
			if st.ReplicatedCount() == 0 {
				t.Fatal("drive produced no replicated cells; the round-trip would not cover replica state")
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("pre-checkpoint invariants: %v", err)
			}

			var cp Checkpoint
			st.SaveCheckpoint(&cp)
			data, err := cp.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var back Checkpoint
			if err := back.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			// Everything but the process-local trail position survives.
			if back.trailLen != 0 {
				t.Fatalf("decoded trailLen = %d, want 0", back.trailLen)
			}
			back.trailLen = cp.trailLen
			if !reflect.DeepEqual(cp, back) {
				t.Fatal("checkpoint did not round-trip bit-exactly")
			}
			back.trailLen = 0

			st2, err := NewState(g, assign)
			if err != nil {
				t.Fatal(err)
			}
			if weighted {
				if err := st2.SetNetWeights(weights); err != nil {
					t.Fatal(err)
				}
			}
			if err := st2.RestoreCheckpoint(&back); err != nil {
				t.Fatal(err)
			}
			if err := st2.CheckInvariants(); err != nil {
				t.Fatalf("restored invariants: %v", err)
			}
			if !reflect.DeepEqual(fingerprint(st), fingerprint(st2)) {
				t.Fatal("restored state differs from the checkpointed original")
			}

			// The continued pass: the same move sequence on the original
			// and the deserialized restore must stay byte-identical at
			// the end state.
			driveState(t, st, 43, 400)
			driveState(t, st2, 43, 400)
			if !reflect.DeepEqual(fingerprint(st), fingerprint(st2)) {
				t.Fatal("continued move sequence diverged after a serialization round-trip")
			}
			if err := st2.CheckInvariants(); err != nil {
				t.Fatalf("post-continuation invariants: %v", err)
			}
		})
	}
}

// TestCheckpointUnmarshalRejectsCorrupt enumerates the malformed
// payload classes the WAL replay can hand the decoder.
func TestCheckpointUnmarshalRejectsCorrupt(t *testing.T) {
	g, assign := checkpointGraph(t)
	st, err := NewState(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	driveState(t, st, 5, 100)
	var cp Checkpoint
	st.SaveCheckpoint(&cp)
	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short-header", func(b []byte) []byte { return b[:10] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad-version", func(b []byte) []byte { b[3]++; return b }},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-3] }},
		{"padded-tail", func(b []byte) []byte { return append(b, 0) }},
		{"bad-repl-flag", func(b []byte) []byte {
			// The replica-flag section starts after the header and the
			// ownership masks.
			off := 4 + 6*8 + 2*4 + len(cp.own)*8 + len(cp.home)
			b[off] = 7
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), data...))
			var back Checkpoint
			if err := back.UnmarshalBinary(mut); err == nil {
				t.Fatal("expected a decode error")
			}
		})
	}
}

// TestCheckpointMarshalUnsaved rejects serializing a checkpoint that
// was never saved.
func TestCheckpointMarshalUnsaved(t *testing.T) {
	var cp Checkpoint
	if _, err := cp.MarshalBinary(); err == nil {
		t.Fatal("expected an error for an unsaved checkpoint")
	}
}
