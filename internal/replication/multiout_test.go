package replication

import (
	"testing"

	"fpgapart/internal/hypergraph"
)

// fourOut builds a 4-output cell Q whose outputs drive sinks spread
// over both blocks, exercising the generalized (m > 2) split machinery.
func fourOut(t *testing.T) (*State, hypergraph.CellID) {
	t.Helper()
	b := hypergraph.NewBuilder("quad")
	pi := b.InputNet("pi")
	in := make([]hypergraph.NetID, 4)
	var drivers []hypergraph.CellID
	for i := range in {
		in[i] = b.Net([]string{"ia", "ib", "ic", "id"}[i])
		drivers = append(drivers, b.AddCell(hypergraph.CellSpec{
			Name: "D" + string(rune('a'+i)), Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{in[i]},
		}))
	}
	outs := make([]hypergraph.NetID, 4)
	for i := range outs {
		outs[i] = b.Net([]string{"oa", "ob", "oc", "od"}[i])
	}
	q := b.AddCell(hypergraph.CellSpec{
		Name:    "Q",
		Inputs:  in,
		Outputs: outs,
		// Output i depends on input i only: ψ = 4.
		DepBits: [][]int{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}},
	})
	po := make([]hypergraph.NetID, 4)
	var sinks []hypergraph.CellID
	for i := range po {
		po[i] = b.OutputNet([]string{"pa", "pb", "pc", "pd"}[i])
		sinks = append(sinks, b.AddCell(hypergraph.CellSpec{
			Name: "S" + string(rune('a'+i)), Inputs: []hypergraph.NetID{outs[i]}, Outputs: []hypergraph.NetID{po[i]},
		}))
	}
	g := b.MustBuild()
	assign := make([]Block, g.NumCells())
	// Drivers c and d plus sinks c and d live in block 1; Q in block 0.
	assign[drivers[2]] = 1
	assign[drivers[3]] = 1
	assign[sinks[2]] = 1
	assign[sinks[3]] = 1
	st, err := NewState(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	return st, q
}

func TestFourOutputSplitsEnumerated(t *testing.T) {
	st, q := fourOut(t)
	splits := st.Splits(q)
	if len(splits) != 14 { // 2^4 - 2 proper non-empty subsets
		t.Fatalf("splits = %d, want 14", len(splits))
	}
	if st.Psi(q) != 4 {
		t.Fatalf("ψ = %d, want 4", st.Psi(q))
	}
}

func TestFourOutputFormulaMatchesSemantic(t *testing.T) {
	st, q := fourOut(t)
	for _, carry := range st.Splits(q) {
		want, err := st.Gain(Move{Cell: q, Kind: Replicate, Carry: carry})
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.GainFunctionalFormula(q, carry)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("carry %04b: formula %d, semantic %d", carry, got, want)
		}
	}
}

func TestFourOutputBestSplit(t *testing.T) {
	st, q := fourOut(t)
	// Initial cut: pi (both blocks), ic, id (driven in 1, Q in 0),
	// oc, od (Q drives in 0, sinks in 1) = 5.
	if st.CutSize() != 5 {
		t.Fatalf("cut = %d, want 5", st.CutSize())
	}
	gain, carry, ok, err := st.GainFunctionalBest(q)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Carrying outputs {c,d} (mask 0b1100) moves ic,id,oc,od out of the
	// cut: gain +4.
	if carry != 0b1100 || gain != 4 {
		t.Fatalf("best split = %04b gain %d, want 1100 gain 4", carry, gain)
	}
	if _, err := st.Apply(Move{Cell: q, Kind: Replicate, Carry: carry}); err != nil {
		t.Fatal(err)
	}
	if st.CutSize() != 1 {
		t.Fatalf("cut after split = %d, want 1 (pi only)", st.CutSize())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Materialize both blocks; the replica keeps inputs {ic,id} only.
	g := st.Graph()
	sub, err := g.Subcircuit("b1", st.InstanceSpecs(1), func(n hypergraph.NetID) bool { return st.CutNet(n) })
	if err != nil {
		t.Fatal(err)
	}
	for ci := range sub.Cells {
		if sub.Cells[ci].Name == "Q$r" {
			if len(sub.Cells[ci].Inputs) != 2 || len(sub.Cells[ci].Outputs) != 2 {
				t.Fatalf("replica pins: %d in / %d out, want 2/2",
					len(sub.Cells[ci].Inputs), len(sub.Cells[ci].Outputs))
			}
			return
		}
	}
	t.Fatal("replica Q$r missing from block 1")
}

func TestFourOutputOptimalPullFindsSplit(t *testing.T) {
	st, _ := fourOut(t)
	res, err := OptimalPull(st, 0, PullOptions{Radius: 0, MaxExtraArea: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied || res.CutAfter > 1 {
		t.Fatalf("optimal pull: %+v (want cut ≤ 1)", res)
	}
	if res.CutAfter != res.Predicted {
		t.Fatalf("predicted %d != achieved %d", res.Predicted, res.CutAfter)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
