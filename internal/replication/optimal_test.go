package replication

import (
	"math/rand"
	"testing"

	"fpgapart/internal/hypergraph"
)

func TestOptimalPullCrafted(t *testing.T) {
	st, m := crafted(t)
	res, err := OptimalPull(st, 0, PullOptions{Radius: 0, MaxExtraArea: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Fatalf("expected an applied pull: %+v", res)
	}
	// The FM gain of functionally replicating M is +2 (cut 5 -> 3); the
	// exact solver must do at least as well.
	if res.CutAfter > 3 {
		t.Fatalf("optimal pull cut = %d, want ≤ 3", res.CutAfter)
	}
	if res.CutAfter != res.Predicted {
		t.Fatalf("predicted %d != achieved %d", res.Predicted, res.CutAfter)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = m
}

func TestOptimalPullNoCandidates(t *testing.T) {
	st, _ := crafted(t)
	// Pull from block 1 with a tiny radius still works (candidates near
	// the cut); radius semantics checked separately.
	res, err := OptimalPull(st, 1, PullOptions{Radius: 1, MaxExtraArea: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutAfter > res.CutBefore {
		t.Fatalf("pull worsened cut: %d -> %d", res.CutBefore, res.CutAfter)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalPullAreaBudget(t *testing.T) {
	st, _ := crafted(t)
	res, err := OptimalPull(st, 0, PullOptions{Radius: 0, MaxExtraArea: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied {
		t.Fatal("zero budget must not apply any pull")
	}
	if st.CutSize() != res.CutBefore {
		t.Fatal("state mutated despite rejection")
	}
}

func TestOptimalPullInvalidBlock(t *testing.T) {
	st, _ := crafted(t)
	if _, err := OptimalPull(st, 2, PullOptions{}); err == nil {
		t.Fatal("expected error for block 2")
	}
}

// Property: on random states the flow prediction exactly matches the
// achieved cut, the cut never increases, and invariants hold. This
// cross-validates the entire network construction against the
// incremental engine.
func TestPropertyOptimalPullExact(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		st := randomState(t, seed, 70)
		r := rand.New(rand.NewSource(seed * 3))
		for i := 0; i < 25; i++ {
			if _, err := st.Apply(randomMove(r, st)); err != nil {
				t.Fatal(err)
			}
		}
		for _, from := range []Block{0, 1} {
			before := st.CutSize()
			res, err := OptimalPull(st, from, PullOptions{Radius: 0, MaxExtraArea: -1})
			if err != nil {
				t.Fatalf("seed %d from %d: %v", seed, from, err)
			}
			if res.Predicted > before {
				t.Fatalf("seed %d from %d: predicted %d > before %d", seed, from, res.Predicted, before)
			}
			if res.Applied {
				if st.CutSize() != res.Predicted {
					t.Fatalf("seed %d from %d: predicted %d, achieved %d",
						seed, from, res.Predicted, st.CutSize())
				}
				if st.CutSize() > before {
					t.Fatalf("seed %d from %d: cut increased", seed, from)
				}
			} else if st.CutSize() != before {
				t.Fatalf("seed %d from %d: unapplied pull mutated state", seed, from)
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("seed %d from %d: %v", seed, from, err)
			}
		}
	}
}

// The exact solver can never be beaten by any single functional
// replication move: property-check against the FM gain oracle.
func TestPropertyOptimalBeatsGreedy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		st := randomState(t, seed+50, 60)
		// Best single replication gain from block 0.
		bestGain := 0
		for ci := 0; ci < st.Graph().NumCells(); ci++ {
			c := hypergraph.CellID(ci)
			if st.Home(c) != 0 || st.IsReplicated(c) {
				continue
			}
			for _, carry := range st.Splits(c) {
				if g, err := st.Gain(Move{Cell: c, Kind: Replicate, Carry: carry}); err == nil && g > bestGain {
					bestGain = g
				}
			}
		}
		before := st.CutSize()
		res, err := OptimalPull(st, 0, PullOptions{Radius: 0, MaxExtraArea: -1})
		if err != nil {
			t.Fatal(err)
		}
		achieved := before
		if res.Applied {
			achieved = res.CutAfter
		}
		if achieved > before-bestGain {
			t.Fatalf("seed %d: optimal %d worse than greedy single move %d",
				seed, achieved, before-bestGain)
		}
	}
}

func TestOptimalPullRadiusRestricts(t *testing.T) {
	st := randomState(t, 77, 80)
	full := st.pullCandidates(0, 0)
	near := st.pullCandidates(0, 1)
	if len(near) > len(full) {
		t.Fatalf("radius 1 candidates (%d) exceed unrestricted (%d)", len(near), len(full))
	}
	if len(near) == 0 && st.CutSize() > 0 {
		t.Fatal("radius 1 found no candidates despite a cut")
	}
}
