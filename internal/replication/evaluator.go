package replication

import (
	"fmt"

	"fpgapart/internal/hypergraph"
)

// Evaluator computes exact move gains against a State using private
// scratch buffers, so multiple Evaluators can evaluate concurrently on
// the same state as long as nobody mutates it (Apply/Undo/Reset/
// checkpoint restores) during the evaluation. State.Gain itself shares
// one scratch set per state and is therefore not safe for concurrent
// callers; the parallel refinement engine gives each worker its own
// Evaluator over the frozen per-sub-round state.
//
// An Evaluator only reads the state. Its results are identical to
// State.Gain / AreaDelta, and SingleGain is evaluated semantically so
// it stays correct when the state's incremental gain maintenance is
// disabled (see State.SetGainMaintenance).
type Evaluator struct {
	s     *State
	nets  []hypergraph.NetID
	delta [][2]int32
	mark  []int32 // per net: index+1 into nets, 0 = absent
}

// NewEvaluator returns an evaluator bound to st.
func NewEvaluator(st *State) *Evaluator {
	ev := &Evaluator{}
	ev.Bind(st)
	return ev
}

// Bind points the evaluator at a (possibly different) state, resizing
// the scratch only when the net count grew.
func (ev *Evaluator) Bind(st *State) {
	ev.s = st
	if len(ev.mark) < len(st.g.Nets) {
		ev.mark = make([]int32, len(st.g.Nets))
	}
	ev.nets = ev.nets[:0]
	ev.delta = ev.delta[:0]
}

// accumulate mirrors State.accumulateDeltas into the evaluator's
// private buffers (kept separate so the state's hot commit path is
// untouched).
func (ev *Evaluator) accumulate(c hypergraph.CellID, old, nw [2]uint32) {
	s := ev.s
	cell := &s.g.Cells[c]
	add := func(n hypergraph.NetID, b Block, d int32) {
		if d == 0 {
			return
		}
		idx := ev.mark[n]
		if idx == 0 {
			ev.nets = append(ev.nets, n)
			ev.delta = append(ev.delta, [2]int32{})
			idx = int32(len(ev.nets))
			ev.mark[n] = idx
		}
		ev.delta[idx-1][b] += d
	}
	for pi, n := range cell.Outputs {
		bit := uint32(1) << uint(pi)
		for b := Block(0); b < 2; b++ {
			was := old[b]&bit != 0
			is := nw[b]&bit != 0
			if was != is {
				if is {
					add(n, b, 1)
				} else {
					add(n, b, -1)
				}
			}
		}
	}
	for pi, n := range cell.Inputs {
		if n == hypergraph.NilNet {
			continue
		}
		colMask := s.col[c][pi]
		for b := Block(0); b < 2; b++ {
			was := old[b]&colMask != 0
			is := nw[b]&colMask != 0
			if was != is {
				if is {
					add(n, b, 1)
				} else {
					add(n, b, -1)
				}
			}
		}
	}
}

func (ev *Evaluator) reset() {
	for _, n := range ev.nets {
		ev.mark[n] = 0
	}
	ev.nets = ev.nets[:0]
	ev.delta = ev.delta[:0]
}

// Gain returns the exact objective reduction of applying m — identical
// to State.Gain (cut size, or weighted topology cost when the state
// has a weight table installed), but reentrant across evaluators.
func (ev *Evaluator) Gain(m Move) (int, error) {
	s := ev.s
	nw, err := s.newOwn(m)
	if err != nil {
		return 0, err
	}
	old := s.own[m.Cell]
	ev.accumulate(m.Cell, old, nw)
	gain := 0
	for i, n := range ev.nets {
		c0, c1 := s.cnt[n][0], s.cnt[n][1]
		n0, n1 := c0+ev.delta[i][0], c1+ev.delta[i][1]
		if s.netW != nil {
			w := &s.netW[n]
			gain += int(costAt(w, c0, c1) - costAt(w, n0, n1))
			continue
		}
		wasCut := c0 > 0 && c1 > 0
		isCut := n0 > 0 && n1 > 0
		if wasCut && !isCut {
			gain++
		} else if !wasCut && isCut {
			gain--
		}
	}
	ev.reset()
	return gain, nil
}

// MustGain is Gain that panics on invalid moves, for engine internals
// that already validated candidates.
func (ev *Evaluator) MustGain(m Move) int {
	g, err := ev.Gain(m)
	if err != nil {
		panic(fmt.Sprintf("replication: evaluator: %v", err))
	}
	return g
}

// SingleGain evaluates the single-move gain of the unreplicated cell
// from scratch in O(distinct nets of the cell). Unlike
// State.SingleGain it does not depend on the incrementally maintained
// values, so it is valid with gain maintenance disabled.
func (ev *Evaluator) SingleGain(c hypergraph.CellID) int {
	s := ev.s
	h := s.home[c]
	g := int32(0)
	if s.netW != nil {
		for i := s.adjOff[c]; i < s.adjOff[c+1]; i++ {
			n := s.adjNet[i]
			g += phiW(&s.netW[n], s.cnt[n][0], s.cnt[n][1], s.adjK[i], h)
		}
		return int(g)
	}
	for i := s.adjOff[c]; i < s.adjOff[c+1]; i++ {
		n := s.adjNet[i]
		g += phi(s.cnt[n][h], s.cnt[n][h.Other()], s.adjK[i])
	}
	return int(g)
}

// AreaDelta returns the change in block areas applying m would cause.
// State.AreaDelta is already read-only and scratch-free; this is a
// convenience so workers never touch the State's method set directly.
func (ev *Evaluator) AreaDelta(m Move) (int, int, error) {
	return ev.s.AreaDelta(m)
}
