package replication

import (
	"encoding/binary"
	"fmt"
)

// checkpointMagic heads every serialized checkpoint: three format
// bytes plus one version byte, so a torn or foreign payload fails fast
// instead of decoding into garbage state.
var checkpointMagic = [4]byte{'f', 'c', 'p', 1}

// MarshalBinary serializes the snapshot (encoding.BinaryMarshaler):
// the scalar state (cut, topo, per-block area and terminal counts)
// followed by the flat per-cell arrays (ownership masks, home blocks,
// replica flags, maintained single-move gains) and the per-net pin
// counters. The trail position is deliberately NOT serialized — move
// tokens are process-local, so a decoded checkpoint restores with
// trailLen 0, which RestoreCheckpoint accepts on any state (the trail
// is truncated wholesale, exactly what recovery wants).
func (cp *Checkpoint) MarshalBinary() ([]byte, error) {
	if !cp.valid {
		return nil, fmt.Errorf("replication: marshal of unsaved checkpoint")
	}
	n, m := len(cp.own), len(cp.cnt)
	buf := make([]byte, 0, 4+6*8+2*4+n*14+m*8)
	buf = append(buf, checkpointMagic[:]...)
	for _, v := range [6]int{cp.cut, cp.topo, cp.area[0], cp.area[1], cp.term[0], cp.term[1]} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	for _, o := range cp.own {
		buf = binary.LittleEndian.AppendUint32(buf, o[0])
		buf = binary.LittleEndian.AppendUint32(buf, o[1])
	}
	for _, h := range cp.home {
		buf = append(buf, byte(h))
	}
	for _, r := range cp.repl {
		if r {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	for _, g := range cp.gainS {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g))
	}
	for _, c := range cp.cnt {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c[0]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c[1]))
	}
	return buf, nil
}

// UnmarshalBinary decodes a MarshalBinary payload
// (encoding.BinaryUnmarshaler), reusing the checkpoint's buffers when
// they are large enough. The payload length is validated against the
// encoded cell/net counts before any array is touched, so a truncated
// or padded record is rejected rather than partially applied.
func (cp *Checkpoint) UnmarshalBinary(data []byte) error {
	const header = 4 + 6*8 + 2*4
	if len(data) < header {
		return fmt.Errorf("replication: checkpoint payload %d bytes, header needs %d", len(data), header)
	}
	if [4]byte(data[:4]) != checkpointMagic {
		return fmt.Errorf("replication: bad checkpoint magic %q", data[:4])
	}
	var scal [6]int
	for i := range scal {
		scal[i] = int(int64(binary.LittleEndian.Uint64(data[4+8*i:])))
	}
	n := int(binary.LittleEndian.Uint32(data[4+6*8:]))
	m := int(binary.LittleEndian.Uint32(data[4+6*8+4:]))
	want := header + n*14 + m*8
	if len(data) != want {
		return fmt.Errorf("replication: checkpoint payload %d bytes, %d cells/%d nets need %d", len(data), n, m, want)
	}
	if cap(cp.own) < n {
		cp.own = make([][2]uint32, n)
		cp.home = make([]Block, n)
		cp.repl = make([]bool, n)
		cp.gainS = make([]int32, n)
	}
	if cap(cp.cnt) < m {
		cp.cnt = make([][2]int32, m)
	}
	cp.own, cp.home, cp.repl, cp.gainS = cp.own[:n], cp.home[:n], cp.repl[:n], cp.gainS[:n]
	cp.cnt = cp.cnt[:m]
	p := header
	for i := range cp.own {
		cp.own[i][0] = binary.LittleEndian.Uint32(data[p:])
		cp.own[i][1] = binary.LittleEndian.Uint32(data[p+4:])
		p += 8
	}
	for i := range cp.home {
		cp.home[i] = Block(data[p])
		p++
	}
	for i := range cp.repl {
		switch data[p] {
		case 0:
			cp.repl[i] = false
		case 1:
			cp.repl[i] = true
		default:
			return fmt.Errorf("replication: checkpoint replica flag %d for cell %d", data[p], i)
		}
		p++
	}
	for i := range cp.gainS {
		cp.gainS[i] = int32(binary.LittleEndian.Uint32(data[p:]))
		p += 4
	}
	for i := range cp.cnt {
		cp.cnt[i][0] = int32(binary.LittleEndian.Uint32(data[p:]))
		cp.cnt[i][1] = int32(binary.LittleEndian.Uint32(data[p+4:]))
		p += 8
	}
	cp.cut, cp.topo = scal[0], scal[1]
	cp.area = [2]int{scal[2], scal[3]}
	cp.term = [2]int{scal[4], scal[5]}
	cp.trailLen = 0
	cp.valid = true
	return nil
}
