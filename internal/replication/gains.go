package replication

// This file holds the closed-form gain expressions of Section III
// (Eqs. 7–11), stated on the paper's binary vectors. They apply to an
// unreplicated cell whose incident nets are distinct per pin (the
// paper's implicit assumption; mapped netlists satisfy it). The engine
// itself uses the semantic State.Gain, which is exact in all cases;
// these forms exist to match the paper and are property-tested against
// State.Gain.

import (
	"fmt"

	"fpgapart/internal/bitset"
	"fpgapart/internal/hypergraph"
)

// Vectors bundles the per-cell binary vectors of Section III: the
// cutset adjacency vectors C^I, C^O and the critical-net vectors Q^I,
// Q^O. A net is *cut* if it is in the cut set and *critical* if one
// move (of this cell) changes its state.
type Vectors struct {
	CI, QI bitset.Vector // indexed by input pin
	CO, QO bitset.Vector // indexed by output pin
}

// Vectors computes C and Q for an unreplicated cell in its current
// block.
func (s *State) Vectors(c hypergraph.CellID) (Vectors, error) {
	if s.repl[c] {
		return Vectors{}, fmt.Errorf("replication: Vectors on replicated cell %q", s.g.Cells[c].Name)
	}
	cell := &s.g.Cells[c]
	home := s.home[c]
	v := Vectors{
		CI: bitset.New(len(cell.Inputs)),
		QI: bitset.New(len(cell.Inputs)),
		CO: bitset.New(len(cell.Outputs)),
		QO: bitset.New(len(cell.Outputs)),
	}
	// Count this cell's active connections per net so that criticality
	// is judged for the whole cell's move.
	k := make(map[hypergraph.NetID]int32, cell.NumPins())
	for _, n := range cell.Outputs {
		k[n]++
	}
	for j, n := range cell.Inputs {
		if n != hypergraph.NilNet && s.col[c][j] != 0 {
			k[n]++
		}
	}
	classify := func(n hypergraph.NetID) (cut, critical bool) {
		f, t := s.cnt[n][home], s.cnt[n][home.Other()]
		cut = f > 0 && t > 0
		// Cut net: moving the cell clears the from-side iff it owns all
		// from-side connections. Uncut net: moving creates a cut iff
		// other from-side connections remain behind.
		if cut {
			critical = f == k[n]
		} else {
			critical = f > k[n]
		}
		return cut, critical
	}
	for j, n := range cell.Inputs {
		if n == hypergraph.NilNet || s.col[c][j] == 0 {
			continue
		}
		cut, crit := classify(n)
		v.CI.SetBool(j, cut)
		v.QI.SetBool(j, crit)
	}
	for i, n := range cell.Outputs {
		cut, crit := classify(n)
		v.CO.SetBool(i, cut)
		v.QO.SetBool(i, crit)
	}
	return v, nil
}

// GainMoveFormula evaluates Eq. (7):
//
//	G_m = (|C^I·Q^I| + |C^O·Q^O|) − (|C̄^I·Q^I| + |C̄^O·Q^O|)
//
// the gain of moving the (unreplicated) cell to the other block.
func (s *State) GainMoveFormula(c hypergraph.CellID) (int, error) {
	v, err := s.Vectors(c)
	if err != nil {
		return 0, err
	}
	gain := v.CI.And(v.QI).Norm() + v.CO.And(v.QO).Norm()
	loss := v.CI.Not().And(v.QI).Norm() + v.CO.Not().And(v.QO).Norm()
	return gain - loss, nil
}

// GainTraditionalFormula evaluates Eq. (8): G_tr = (|C^I| + |C^O|) − n,
// the gain of traditional (Kring–Newton style) replication, which
// removes every incident net from the cut but re-adds all n input
// nets. It is provided for comparison only; the engine performs
// functional replication.
func (s *State) GainTraditionalFormula(c hypergraph.CellID) (int, error) {
	v, err := s.Vectors(c)
	if err != nil {
		return 0, err
	}
	n := 0
	for j, net := range s.g.Cells[c].Inputs {
		if net != hypergraph.NilNet && s.col[c][j] != 0 {
			n++
		}
	}
	return v.CI.Norm() + v.CO.Norm() - n, nil
}

// GainFunctionalFormula evaluates the generalized Eqs. (9)–(10): the
// gain of functionally replicating the cell with the replica carrying
// the outputs in carry. Input pins adjacent only to the carried
// outputs relocate with the replica; pins adjacent to outputs on both
// sides stay connected in the home block *and* gain a connection in
// the other block; pins adjacent only to the kept outputs are
// untouched.
func (s *State) GainFunctionalFormula(c hypergraph.CellID, carry uint32) (int, error) {
	if s.repl[c] {
		return 0, fmt.Errorf("replication: functional gain on replicated cell %q", s.g.Cells[c].Name)
	}
	all := s.all[c]
	if carry == 0 || carry == all || carry&^all != 0 {
		return 0, fmt.Errorf("replication: carry %b not a proper non-empty subset of %b", carry, all)
	}
	v, err := s.Vectors(c)
	if err != nil {
		return 0, err
	}
	cell := &s.g.Cells[c]
	// Classify inputs by adjacency against the carried output set.
	onlyCarried := bitset.New(len(cell.Inputs))
	both := bitset.New(len(cell.Inputs))
	for j := range cell.Inputs {
		col := s.col[c][j]
		inS := col&carry != 0
		inKeep := col&^carry != 0
		switch {
		case inS && inKeep:
			both.Set(j)
		case inS:
			onlyCarried.Set(j)
		}
	}
	gain := 0
	// Relocating pins behave as in Eq. (7), restricted to the carried
	// adjacency (the A_X masks of Eqs. 9–10).
	gain += v.CI.And(v.QI).And(onlyCarried).Norm()
	gain -= v.CI.Not().And(v.QI).And(onlyCarried).Norm()
	for i := range cell.Outputs {
		if carry&(1<<uint(i)) == 0 {
			continue
		}
		if v.CO.Get(i) && v.QO.Get(i) {
			gain++
		}
		if !v.CO.Get(i) && v.QO.Get(i) {
			gain--
		}
	}
	// Dual-adjacent inputs acquire a second connection: every such
	// uncut net joins the cut.
	gain -= v.CI.Not().And(both).Norm()
	return gain, nil
}

// GainFunctionalBest evaluates Eq. (11) generalized: the best
// functional-replication gain over the candidate output splits, and
// the carry mask achieving it. ok is false when the cell has no valid
// split (single-output cells).
func (s *State) GainFunctionalBest(c hypergraph.CellID) (gain int, carry uint32, ok bool, err error) {
	splits := s.Splits(c)
	if len(splits) == 0 {
		return 0, 0, false, nil
	}
	best, bestCarry := 0, uint32(0)
	for i, m := range splits {
		g, err := s.GainFunctionalFormula(c, m)
		if err != nil {
			return 0, 0, false, err
		}
		if i == 0 || g > best {
			best, bestCarry = g, m
		}
	}
	return best, bestCarry, true, nil
}
