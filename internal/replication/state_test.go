package replication

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
)

// crafted builds a 2-output cell M whose three gain kinds are
// hand-computed (a Figure-4 style scenario):
//
//	inputs a,b,c,d,e; outputs X1 (deps a,b,c), X2 (deps d,e)
//	block A: DA→a, DB→b, SC (extra sink of c), M, S1 (sink of X1), SX2A (sink of X2)
//	block B: DC→c, DD→d, DE→e, SX2B (sink of X2)
//
// Initial cut = {pi, c, d, e, X2} = 5 (pi is consumed in both blocks).
// G_move(M) = −1, G_traditional(M) = −1, G_functional(M, carry X2) = +2,
// G_functional(M, carry X1) = −3.
func crafted(t *testing.T) (*State, hypergraph.CellID) {
	t.Helper()
	b := hypergraph.NewBuilder("crafted")
	pi := b.InputNet("pi")
	a := b.Net("a")
	bn := b.Net("b")
	c := b.Net("c")
	d := b.Net("d")
	e := b.Net("e")
	x1 := b.Net("x1")
	x2 := b.Net("x2")
	o := make([]hypergraph.NetID, 6)
	for i := range o {
		o[i] = b.OutputNet(sinkName(i))
	}
	da := b.AddCell(hypergraph.CellSpec{Name: "DA", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{a}})
	db := b.AddCell(hypergraph.CellSpec{Name: "DB", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{bn}})
	dc := b.AddCell(hypergraph.CellSpec{Name: "DC", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{c}})
	dd := b.AddCell(hypergraph.CellSpec{Name: "DD", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{d}})
	de := b.AddCell(hypergraph.CellSpec{Name: "DE", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{e}})
	m := b.AddCell(hypergraph.CellSpec{
		Name:    "M",
		Inputs:  []hypergraph.NetID{a, bn, c, d, e},
		Outputs: []hypergraph.NetID{x1, x2},
		DepBits: [][]int{{1, 1, 1, 0, 0}, {0, 0, 0, 1, 1}},
	})
	sc := b.AddCell(hypergraph.CellSpec{Name: "SC", Inputs: []hypergraph.NetID{c}, Outputs: []hypergraph.NetID{o[0]}})
	s1 := b.AddCell(hypergraph.CellSpec{Name: "S1", Inputs: []hypergraph.NetID{x1}, Outputs: []hypergraph.NetID{o[1]}})
	sx2a := b.AddCell(hypergraph.CellSpec{Name: "SX2A", Inputs: []hypergraph.NetID{x2}, Outputs: []hypergraph.NetID{o[2]}})
	sx2b := b.AddCell(hypergraph.CellSpec{Name: "SX2B", Inputs: []hypergraph.NetID{x2}, Outputs: []hypergraph.NetID{o[3]}})
	// Keep the builder happy: extra sinks for leftover output nets.
	b.AddCell(hypergraph.CellSpec{Name: "F1", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{o[4]}})
	b.AddCell(hypergraph.CellSpec{Name: "F2", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{o[5]}})
	g := b.MustBuild()

	assign := make([]Block, g.NumCells())
	for _, id := range []hypergraph.CellID{dc, dd, de, sx2b} {
		assign[id] = 1
	}
	// F1/F2 stay in block A; da, db, m, sc, s1, sx2a in A.
	_ = []hypergraph.CellID{da, db, sc, s1, sx2a}
	st, err := NewState(g, assign)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	return st, m
}

func sinkName(i int) string {
	return "po" + string(rune('0'+i))
}

func TestCraftedInitialState(t *testing.T) {
	st, m := crafted(t)
	if st.CutSize() != 5 {
		t.Fatalf("initial cut = %d, want 5 (pi,c,d,e,x2)", st.CutSize())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st.Home(m) != 0 || st.IsReplicated(m) {
		t.Fatal("M misplaced")
	}
	if st.Psi(m) != 5 {
		t.Fatalf("ψ(M) = %d, want 5", st.Psi(m))
	}
}

func TestCraftedGainMove(t *testing.T) {
	st, m := crafted(t)
	g, err := st.Gain(Move{Cell: m, Kind: SingleMove})
	if err != nil {
		t.Fatal(err)
	}
	if g != -1 {
		t.Fatalf("G_move = %d, want -1", g)
	}
	gf, err := st.GainMoveFormula(m)
	if err != nil {
		t.Fatal(err)
	}
	if gf != -1 {
		t.Fatalf("Eq.(7) G_m = %d, want -1", gf)
	}
}

func TestCraftedGainTraditional(t *testing.T) {
	st, m := crafted(t)
	g, err := st.GainTraditionalFormula(m)
	if err != nil {
		t.Fatal(err)
	}
	// |C^I| + |C^O| − n = (3+1) − 5 = −1.
	if g != -1 {
		t.Fatalf("Eq.(8) G_tr = %d, want -1", g)
	}
}

func TestCraftedGainFunctional(t *testing.T) {
	st, m := crafted(t)
	// Carry X2 (output index 1 -> mask 0b10): inputs d,e relocate.
	g, err := st.GainFunctionalFormula(m, 0b10)
	if err != nil {
		t.Fatal(err)
	}
	if g != 2 {
		t.Fatalf("G_func(carry X2) = %d, want +2", g)
	}
	g, err = st.GainFunctionalFormula(m, 0b01)
	if err != nil {
		t.Fatal(err)
	}
	if g != -3 {
		t.Fatalf("G_func(carry X1) = %d, want -3", g)
	}
	best, carry, ok, err := st.GainFunctionalBest(m)
	if err != nil || !ok {
		t.Fatalf("best: %v %v", ok, err)
	}
	if best != 2 || carry != 0b10 {
		t.Fatalf("best = %d carry %b, want +2 carrying X2", best, carry)
	}
	// Semantic agreement.
	sg, err := st.Gain(Move{Cell: m, Kind: Replicate, Carry: 0b10})
	if err != nil {
		t.Fatal(err)
	}
	if sg != 2 {
		t.Fatalf("semantic replicate gain = %d, want +2", sg)
	}
}

func TestCraftedFunctionalBeatsTraditionalAndMove(t *testing.T) {
	st, m := crafted(t)
	gm, _ := st.GainMoveFormula(m)
	gtr, _ := st.GainTraditionalFormula(m)
	gfn, _, _, _ := st.GainFunctionalBest(m)
	if !(gfn > gm && gfn > gtr) {
		t.Fatalf("expected functional (%d) to beat move (%d) and traditional (%d)", gfn, gm, gtr)
	}
}

func TestCraftedApplyReplicate(t *testing.T) {
	st, m := crafted(t)
	areaBefore := [2]int{st.Area(0), st.Area(1)}
	tok, err := st.Apply(Move{Cell: m, Kind: Replicate, Carry: 0b10})
	if err != nil {
		t.Fatal(err)
	}
	if st.CutSize() != 3 {
		t.Fatalf("cut after replicate = %d, want 3 (pi, c, x2)", st.CutSize())
	}
	if !st.IsReplicated(m) || st.ReplicatedCount() != 1 {
		t.Fatal("replication flags wrong")
	}
	if st.OutputsIn(m, 0) != 0b01 || st.OutputsIn(m, 1) != 0b10 {
		t.Fatalf("ownership = %b/%b", st.OutputsIn(m, 0), st.OutputsIn(m, 1))
	}
	// Replicated cell occupies area in both blocks.
	if st.Area(0) != areaBefore[0] || st.Area(1) != areaBefore[1]+1 {
		t.Fatalf("area = %d/%d", st.Area(0), st.Area(1))
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Undo restores everything.
	if err := st.Undo(tok); err != nil {
		t.Fatal(err)
	}
	if st.CutSize() != 5 || st.IsReplicated(m) || st.Area(1) != areaBefore[1] {
		t.Fatalf("undo failed: cut=%d repl=%v", st.CutSize(), st.IsReplicated(m))
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCraftedUnreplicate(t *testing.T) {
	st, m := crafted(t)
	if _, err := st.Apply(Move{Cell: m, Kind: Replicate, Carry: 0b10}); err != nil {
		t.Fatal(err)
	}
	// Unreplicating back to block 0 restores the original cut.
	g, err := st.Gain(Move{Cell: m, Kind: Unreplicate, To: 0})
	if err != nil {
		t.Fatal(err)
	}
	if g != -2 {
		t.Fatalf("unreplicate-to-0 gain = %d, want -2", g)
	}
	if _, err := st.Apply(Move{Cell: m, Kind: Unreplicate, To: 0}); err != nil {
		t.Fatal(err)
	}
	if st.CutSize() != 5 || st.IsReplicated(m) || st.Home(m) != 0 {
		t.Fatalf("unreplicate wrong: cut=%d", st.CutSize())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveValidation(t *testing.T) {
	st, m := crafted(t)
	if _, err := st.Gain(Move{Cell: m, Kind: Replicate, Carry: 0}); err == nil {
		t.Fatal("carry 0 should fail")
	}
	if _, err := st.Gain(Move{Cell: m, Kind: Replicate, Carry: 0b11}); err == nil {
		t.Fatal("carry == all should fail")
	}
	if _, err := st.Gain(Move{Cell: m, Kind: Unreplicate, To: 0}); err == nil {
		t.Fatal("unreplicate of unreplicated cell should fail")
	}
	if _, err := st.Apply(Move{Cell: m, Kind: Replicate, Carry: 0b01}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Gain(Move{Cell: m, Kind: SingleMove}); err == nil {
		t.Fatal("move of replicated cell should fail")
	}
	if _, err := st.Gain(Move{Cell: m, Kind: Replicate, Carry: 0b01}); err == nil {
		t.Fatal("re-replication should fail")
	}
	if _, err := st.Gain(Move{Cell: -1, Kind: SingleMove}); err == nil {
		t.Fatal("invalid cell should fail")
	}
}

func TestNewStateValidation(t *testing.T) {
	st, _ := crafted(t)
	g := st.Graph()
	if _, err := NewState(g, make([]Block, 1)); err == nil {
		t.Fatal("short assignment should fail")
	}
	bad := make([]Block, g.NumCells())
	bad[0] = 2
	if _, err := NewState(g, bad); err == nil {
		t.Fatal("block 2 should fail")
	}
}

func TestTerminals(t *testing.T) {
	st, _ := crafted(t)
	// Block A IOBs: cut nets c,d,e,x2 + external nets touching A:
	// pi (ExtIn, used by A cells), po0..po2, po4, po5 (ExtOut in A).
	// = 4 + 1 + 5 = 10.
	if got := st.Terminals(0); got != 10 {
		t.Fatalf("t_P0 = %d, want 10", got)
	}
	// Block B: cut nets c,d,e,x2 + pi + po3 = 6.
	if got := st.Terminals(1); got != 6 {
		t.Fatalf("t_P1 = %d, want 6", got)
	}
}

func TestCanReplicateThreshold(t *testing.T) {
	st, m := crafted(t)
	if !st.CanReplicate(m, 0) || !st.CanReplicate(m, 5) {
		t.Fatal("M (ψ=5) should be replicable at T≤5")
	}
	if st.CanReplicate(m, 6) {
		t.Fatal("M should not be replicable at T=6")
	}
	// Single-output cell DA never qualifies.
	if st.CanReplicate(0, 0) {
		t.Fatal("single-output cell should not be replicable")
	}
}

func TestSplits(t *testing.T) {
	st, m := crafted(t)
	splits := st.Splits(m)
	if len(splits) != 2 {
		t.Fatalf("2-output splits = %v, want {01,10}", splits)
	}
	if st.Splits(0) != nil {
		t.Fatal("single-output cell should have no splits")
	}
}

func TestInstanceSpecs(t *testing.T) {
	st, m := crafted(t)
	if _, err := st.Apply(Move{Cell: m, Kind: Replicate, Carry: 0b10}); err != nil {
		t.Fatal(err)
	}
	specsA := st.InstanceSpecs(0)
	specsB := st.InstanceSpecs(1)
	var foundOrig, foundRepl bool
	for _, s := range specsA {
		if s.Cell == m {
			foundOrig = true
			if s.Rename != "" || len(s.Outputs) != 1 || s.Outputs[0] != 0 {
				t.Fatalf("original spec wrong: %+v", s)
			}
		}
	}
	for _, s := range specsB {
		if s.Cell == m {
			foundRepl = true
			if s.Rename != "M$r" || len(s.Outputs) != 1 || s.Outputs[0] != 1 {
				t.Fatalf("replica spec wrong: %+v", s)
			}
		}
	}
	if !foundOrig || !foundRepl {
		t.Fatal("replicated cell missing from a block's specs")
	}
	// Both sides materialize into valid subcircuits.
	g := st.Graph()
	for b := Block(0); b < 2; b++ {
		sub, err := g.Subcircuit("side", st.InstanceSpecs(b), func(n hypergraph.NetID) bool { return st.CutNet(n) })
		if err != nil {
			t.Fatalf("block %d subcircuit: %v", b, err)
		}
		if sub.NumCells() == 0 {
			t.Fatalf("block %d empty", b)
		}
	}
}

func TestTouchedCellsIncludesNeighbors(t *testing.T) {
	st, m := crafted(t)
	touched := st.TouchedCells(m, nil)
	if len(touched) < 5 {
		t.Fatalf("touched = %d cells, want several", len(touched))
	}
	if touched[0] != m {
		t.Fatal("first touched cell should be the mover")
	}
}

// --- randomized property tests -------------------------------------

func randomState(t testing.TB, seed int64, cells int) *State {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "prop", Cells: cells, PrimaryIn: 8, PrimaryOut: 4,
		Seed: seed, Clustering: 0.4, DFFs: cells / 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed * 7))
	assign := make([]Block, g.NumCells())
	for i := range assign {
		assign[i] = Block(r.Intn(2))
	}
	st, err := NewState(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func randomMove(r *rand.Rand, st *State) Move {
	for {
		c := hypergraph.CellID(r.Intn(st.Graph().NumCells()))
		if st.IsReplicated(c) {
			return Move{Cell: c, Kind: Unreplicate, To: Block(r.Intn(2))}
		}
		if r.Intn(2) == 0 {
			return Move{Cell: c, Kind: SingleMove}
		}
		splits := st.Splits(c)
		if len(splits) == 0 {
			return Move{Cell: c, Kind: SingleMove}
		}
		return Move{Cell: c, Kind: Replicate, Carry: splits[r.Intn(len(splits))]}
	}
}

// Property: Gain always equals the observed cut delta, and invariants
// hold after every mutation.
func TestPropertyGainMatchesDelta(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		st := randomState(t, seed, 60)
		r := rand.New(rand.NewSource(seed))
		for step := 0; step < 120; step++ {
			m := randomMove(r, st)
			want, err := st.Gain(m)
			if err != nil {
				t.Fatalf("seed %d step %d: gain(%v): %v", seed, step, m, err)
			}
			d0, d1, err := st.AreaDelta(m)
			if err != nil {
				t.Fatal(err)
			}
			a0, a1 := st.Area(0), st.Area(1)
			before := st.CutSize()
			if _, err := st.Apply(m); err != nil {
				t.Fatalf("seed %d step %d: apply(%v): %v", seed, step, m, err)
			}
			if got := before - st.CutSize(); got != want {
				t.Fatalf("seed %d step %d: %v gain=%d, actual delta=%d", seed, step, m, want, got)
			}
			if st.Area(0) != a0+d0 || st.Area(1) != a1+d1 {
				t.Fatalf("seed %d step %d: area delta mismatch", seed, step)
			}
			if step%17 == 0 {
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Property: Undo(0) restores the initial state exactly.
func TestPropertyUndoRestores(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		st := randomState(t, seed, 50)
		cut0 := st.CutSize()
		area0 := [2]int{st.Area(0), st.Area(1)}
		t0, t1 := st.Terminals(0), st.Terminals(1)
		own0 := make([][2]uint32, st.Graph().NumCells())
		for i := range own0 {
			own0[i] = [2]uint32{st.OutputsIn(hypergraph.CellID(i), 0), st.OutputsIn(hypergraph.CellID(i), 1)}
		}
		r := rand.New(rand.NewSource(seed + 100))
		start := st.Mark()
		for step := 0; step < 80; step++ {
			if _, err := st.Apply(randomMove(r, st)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Undo(start); err != nil {
			t.Fatal(err)
		}
		if st.CutSize() != cut0 || st.Area(0) != area0[0] || st.Area(1) != area0[1] {
			t.Fatalf("seed %d: undo mismatch cut %d vs %d", seed, st.CutSize(), cut0)
		}
		if st.Terminals(0) != t0 || st.Terminals(1) != t1 {
			t.Fatalf("seed %d: terminal mismatch after undo", seed)
		}
		for i := range own0 {
			c := hypergraph.CellID(i)
			if st.OutputsIn(c, 0) != own0[i][0] || st.OutputsIn(c, 1) != own0[i][1] {
				t.Fatalf("seed %d: ownership of cell %d not restored", seed, i)
			}
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: the paper's closed-form gains (Eqs. 7, 9–11) agree with the
// semantic engine on mapped netlists (distinct nets per cell pin).
func TestPropertyFormulaMatchesSemantic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		st := randomState(t, seed, 60)
		r := rand.New(rand.NewSource(seed + 55))
		// Random warm-up so states include replicated neighborhoods.
		for i := 0; i < 40; i++ {
			if _, err := st.Apply(randomMove(r, st)); err != nil {
				t.Fatal(err)
			}
		}
		for ci := 0; ci < st.Graph().NumCells(); ci++ {
			c := hypergraph.CellID(ci)
			if st.IsReplicated(c) {
				continue
			}
			wantMove, err := st.Gain(Move{Cell: c, Kind: SingleMove})
			if err != nil {
				t.Fatal(err)
			}
			gotMove, err := st.GainMoveFormula(c)
			if err != nil {
				t.Fatal(err)
			}
			if gotMove != wantMove {
				t.Fatalf("seed %d cell %d: Eq.(7)=%d semantic=%d", seed, ci, gotMove, wantMove)
			}
			for _, carry := range st.Splits(c) {
				want, err := st.Gain(Move{Cell: c, Kind: Replicate, Carry: carry})
				if err != nil {
					t.Fatal(err)
				}
				got, err := st.GainFunctionalFormula(c, carry)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %d cell %d carry %b: Eq.(9-10)=%d semantic=%d",
						seed, ci, carry, got, want)
				}
			}
		}
	}
}

func TestUndoTokenValidation(t *testing.T) {
	st, _ := crafted(t)
	if err := st.Undo(5); err == nil {
		t.Fatal("future token should fail")
	}
	if err := st.Undo(-1); err == nil {
		t.Fatal("negative token should fail")
	}
}

func TestCellsIn(t *testing.T) {
	st, m := crafted(t)
	total := st.CellsIn(0) + st.CellsIn(1)
	if total != st.Graph().NumCells() {
		t.Fatalf("cells in blocks = %d, want %d", total, st.Graph().NumCells())
	}
	if _, err := st.Apply(Move{Cell: m, Kind: Replicate, Carry: 0b01}); err != nil {
		t.Fatal(err)
	}
	if st.CellsIn(0)+st.CellsIn(1) != st.Graph().NumCells()+1 {
		t.Fatal("replicated cell should count in both blocks")
	}
}

// quick.Check property: any generated (seed, steps) pair leaves the
// state consistent, with gains matching observed deltas throughout.
func TestQuickStateConsistency(t *testing.T) {
	f := func(seedRaw uint16, stepsRaw uint8) bool {
		st := randomState(t, int64(seedRaw)+1, 40)
		r := rand.New(rand.NewSource(int64(seedRaw)))
		steps := int(stepsRaw)%60 + 1
		for i := 0; i < steps; i++ {
			m := randomMove(r, st)
			want, err := st.Gain(m)
			if err != nil {
				return false
			}
			before := st.CutSize()
			if _, err := st.Apply(m); err != nil {
				return false
			}
			if before-st.CutSize() != want {
				return false
			}
		}
		return st.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Reset must produce the same state a fresh construction does,
// including the incrementally maintained terminal counters and
// single-move gains — that equivalence is what lets the k-way carve
// loop reuse one State across retries.
func TestResetMatchesFresh(t *testing.T) {
	st := randomState(t, 3, 80)
	g := st.Graph()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 60; i++ {
		if _, err := st.Apply(randomMove(r, st)); err != nil {
			t.Fatal(err)
		}
	}
	assign := make([]Block, g.NumCells())
	for i := range assign {
		assign[i] = Block(r.Intn(2))
	}
	for _, pin := range []bool{false, true} {
		if err := st.ResetPinned(assign, pin); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewStatePinned(g, assign, pin)
		if err != nil {
			t.Fatal(err)
		}
		if st.CutSize() != fresh.CutSize() {
			t.Fatalf("pin=%v: reset cut %d, fresh %d", pin, st.CutSize(), fresh.CutSize())
		}
		for b := Block(0); b < 2; b++ {
			if st.Area(b) != fresh.Area(b) {
				t.Fatalf("pin=%v: reset area(%d) %d, fresh %d", pin, b, st.Area(b), fresh.Area(b))
			}
			if st.Terminals(b) != fresh.Terminals(b) {
				t.Fatalf("pin=%v: reset terminals(%d) %d, fresh %d", pin, b, st.Terminals(b), fresh.Terminals(b))
			}
		}
		for ci := 0; ci < g.NumCells(); ci++ {
			c := hypergraph.CellID(ci)
			if st.SingleGain(c) != fresh.SingleGain(c) {
				t.Fatalf("pin=%v: cell %d reset gain %d, fresh %d", pin, ci, st.SingleGain(c), fresh.SingleGain(c))
			}
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("pin=%v: %v", pin, err)
		}
	}
}

// SaveCheckpoint/RestoreCheckpoint must be equivalent to Undo of every
// move applied after the save.
func TestCheckpointRestore(t *testing.T) {
	st := randomState(t, 5, 70)
	shadow := randomState(t, 5, 70)
	r := rand.New(rand.NewSource(17))
	rs := rand.New(rand.NewSource(17))
	apply := func(s *State, rr *rand.Rand, n int) {
		for i := 0; i < n; i++ {
			if _, err := s.Apply(randomMove(rr, s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(st, r, 25)
	apply(shadow, rs, 25)
	var cp Checkpoint
	if err := st.RestoreCheckpoint(&cp); err == nil {
		t.Fatal("restore from unsaved checkpoint succeeded")
	}
	st.SaveCheckpoint(&cp)
	tok := shadow.Mark()
	apply(st, r, 40)
	apply(shadow, rs, 40)
	if err := st.RestoreCheckpoint(&cp); err != nil {
		t.Fatal(err)
	}
	if err := shadow.Undo(tok); err != nil {
		t.Fatal(err)
	}
	if st.CutSize() != shadow.CutSize() {
		t.Fatalf("restored cut %d, undo cut %d", st.CutSize(), shadow.CutSize())
	}
	for b := Block(0); b < 2; b++ {
		if st.Terminals(b) != shadow.Terminals(b) || st.Area(b) != shadow.Area(b) {
			t.Fatalf("block %d: restored term/area %d/%d, undo %d/%d",
				b, st.Terminals(b), st.Area(b), shadow.Terminals(b), shadow.Area(b))
		}
	}
	for ci := 0; ci < st.Graph().NumCells(); ci++ {
		c := hypergraph.CellID(ci)
		if st.IsReplicated(c) != shadow.IsReplicated(c) || st.Home(c) != shadow.Home(c) {
			t.Fatalf("cell %d: restored repl/home %v/%v, undo %v/%v",
				ci, st.IsReplicated(c), st.Home(c), shadow.IsReplicated(c), shadow.Home(c))
		}
		if !st.IsReplicated(c) && st.SingleGain(c) != shadow.SingleGain(c) {
			t.Fatalf("cell %d: restored gain %d, undo gain %d", ci, st.SingleGain(c), shadow.SingleGain(c))
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// For a single move, LastTouched must be exactly the TouchedCells
// neighborhood of the mover, in the same order (mover first).
func TestLastTouchedMatchesTouchedCells(t *testing.T) {
	st := randomState(t, 7, 60)
	r := rand.New(rand.NewSource(23))
	var want []hypergraph.CellID
	for step := 0; step < 80; step++ {
		var c hypergraph.CellID
		for {
			c = hypergraph.CellID(r.Intn(st.Graph().NumCells()))
			if !st.IsReplicated(c) {
				break
			}
		}
		want = st.TouchedCells(c, want)
		if _, err := st.Apply(Move{Cell: c, Kind: SingleMove}); err != nil {
			t.Fatal(err)
		}
		got := st.LastTouched()
		if len(got) != len(want) {
			t.Fatalf("step %d: LastTouched %d cells, TouchedCells %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: LastTouched[%d] = %d, TouchedCells[%d] = %d", step, i, got[i], i, want[i])
			}
		}
	}
}

// The maintained single-move gains must track the semantic Gain under
// arbitrary interleavings of all three move kinds and undos.
func TestSingleGainMaintained(t *testing.T) {
	st := randomState(t, 11, 50)
	r := rand.New(rand.NewSource(31))
	var toks []Token
	for step := 0; step < 200; step++ {
		if len(toks) > 0 && r.Intn(4) == 0 {
			k := r.Intn(len(toks))
			if err := st.Undo(toks[k]); err != nil {
				t.Fatal(err)
			}
			toks = toks[:k]
		} else {
			tok, err := st.Apply(randomMove(r, st))
			if err != nil {
				t.Fatal(err)
			}
			toks = append(toks, tok)
		}
		for ci := 0; ci < st.Graph().NumCells(); ci++ {
			c := hypergraph.CellID(ci)
			if st.IsReplicated(c) {
				continue
			}
			want := st.MustGain(Move{Cell: c, Kind: SingleMove})
			if got := st.SingleGain(c); got != want {
				t.Fatalf("step %d cell %d: maintained gain %d, semantic %d", step, ci, got, want)
			}
		}
	}
}
