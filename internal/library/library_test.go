package library

import (
	"testing"
	"testing/quick"
)

func TestXC3000Valid(t *testing.T) {
	l := XC3000()
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(l.Devices) != 5 {
		t.Fatalf("device count = %d, want 5", len(l.Devices))
	}
}

// Table I shows per-CLB cost decreasing with device size; our price
// substitution must preserve that.
func TestXC3000PerCLBCostDecreases(t *testing.T) {
	l := XC3000()
	prev := l.Devices[0].CLBCost()
	for _, d := range l.Devices[1:] {
		if c := d.CLBCost(); c >= prev {
			t.Fatalf("per-CLB cost not decreasing at %s: %g >= %g", d.Name, c, prev)
		} else {
			prev = c
		}
	}
}

func TestXC3000Capacities(t *testing.T) {
	l := XC3000()
	want := map[string][2]int{
		"XC3020": {64, 64}, "XC3030": {100, 80}, "XC3042": {144, 96},
		"XC3064": {224, 110}, "XC3090": {320, 144},
	}
	for name, w := range want {
		d, ok := l.ByName(name)
		if !ok {
			t.Fatalf("device %s missing", name)
		}
		if d.CLBs != w[0] || d.IOBs != w[1] {
			t.Fatalf("%s = (%d,%d), want (%d,%d)", name, d.CLBs, d.IOBs, w[0], w[1])
		}
	}
}

func TestFits(t *testing.T) {
	d := Device{Name: "X", CLBs: 100, IOBs: 50, Price: 10, LowUtil: 0.5, HighUtil: 0.9}
	cases := []struct {
		clbs, terms int
		want        bool
	}{
		{50, 10, true},   // exactly at lower bound
		{90, 50, true},   // exactly at upper bound and terminal limit
		{49, 10, false},  // under-utilized
		{91, 10, false},  // over-utilized
		{50, 51, false},  // too many terminals
		{100, 10, false}, // over capacity
	}
	for _, c := range cases {
		if got := d.Fits(c.clbs, c.terms); got != c.want {
			t.Errorf("Fits(%d,%d) = %v, want %v", c.clbs, c.terms, got, c.want)
		}
	}
}

func TestMinMaxCLBs(t *testing.T) {
	d := Device{CLBs: 64, LowUtil: 0.0, HighUtil: 0.95}
	if d.MinCLBs() != 0 {
		t.Fatalf("MinCLBs = %d", d.MinCLBs())
	}
	if d.MaxCLBs() != 60 { // floor(0.95*64) = 60
		t.Fatalf("MaxCLBs = %d, want 60", d.MaxCLBs())
	}
}

func TestCheapestFit(t *testing.T) {
	l := XC3000()
	// Tiny partition: only XC3020 (lower bound 0) fits.
	d, ok := l.CheapestFit(10, 10)
	if !ok || d.Name != "XC3020" {
		t.Fatalf("CheapestFit(10,10) = %v %v", d.Name, ok)
	}
	// 90 CLBs fits XC3030 (61..95) and XC3042? min 96 CLBs -> no. So XC3030.
	d, ok = l.CheapestFit(90, 10)
	if !ok || d.Name != "XC3030" {
		t.Fatalf("CheapestFit(90,10) = %v %v", d.Name, ok)
	}
	// Too big for anything.
	if _, ok := l.CheapestFit(10000, 10); ok {
		t.Fatal("CheapestFit(10000) should fail")
	}
	// Terminal-bound case: 60 CLBs with 70 terminals skips XC3020 (64 IOBs).
	d, ok = l.CheapestFit(61, 70)
	if !ok || d.Name != "XC3030" {
		t.Fatalf("CheapestFit(61,70) = %v %v", d.Name, ok)
	}
}

func TestFeasibleHostsSortedByPrice(t *testing.T) {
	l := XC3000()
	hosts := l.FeasibleHosts(61, 10)
	if len(hosts) == 0 {
		t.Fatal("no hosts")
	}
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1].Price > hosts[i].Price {
			t.Fatalf("hosts not price-sorted: %v", hosts)
		}
	}
}

func TestCustomSortsAndValidates(t *testing.T) {
	l, err := Custom(
		Device{Name: "B", CLBs: 200, IOBs: 10, Price: 5, HighUtil: 1},
		Device{Name: "A", CLBs: 100, IOBs: 10, Price: 3, HighUtil: 1},
	)
	if err != nil {
		t.Fatalf("Custom: %v", err)
	}
	if l.Devices[0].Name != "A" {
		t.Fatalf("not sorted: %v", l.Devices)
	}
	if _, err := Custom(Device{Name: "bad", CLBs: 0, IOBs: 1, Price: 1}); err == nil {
		t.Fatal("expected validation error for zero capacity")
	}
	if _, err := Custom(
		Device{Name: "dup", CLBs: 10, IOBs: 1, Price: 1, HighUtil: 1},
		Device{Name: "dup", CLBs: 20, IOBs: 1, Price: 1, HighUtil: 1},
	); err == nil {
		t.Fatal("expected duplicate-name error")
	}
	if _, err := Custom(Device{Name: "x", CLBs: 10, IOBs: 1, Price: 1, LowUtil: 0.9, HighUtil: 0.5}); err == nil {
		t.Fatal("expected bound-order error")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := (Library{}).Validate(); err == nil {
		t.Fatal("expected error for empty library")
	}
}

func TestLargestSmallest(t *testing.T) {
	l := XC3000()
	if l.Largest().Name != "XC3090" || l.Smallest().Name != "XC3020" {
		t.Fatalf("largest=%s smallest=%s", l.Largest().Name, l.Smallest().Name)
	}
}

func TestMaxFitCLBs(t *testing.T) {
	l := XC3000()
	if got := l.MaxFitCLBs(); got != 272 { // floor(0.85*320)
		t.Fatalf("MaxFitCLBs = %d, want 272", got)
	}
}

func TestLowerBoundCostBelowAnyRealCost(t *testing.T) {
	l := XC3000()
	// Property: the bound never exceeds hosting everything on feasible
	// single devices.
	f := func(raw uint16) bool {
		clbs := int(raw)%280 + 1
		lb := l.LowerBoundCost(clbs)
		if d, ok := l.CheapestFit(clbs, 0); ok && lb > d.Price+1e-9 {
			return false
		}
		return lb >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	d := Device{CLBs: 200}
	if got := d.Utilization(100); got != 0.5 {
		t.Fatalf("Utilization = %g", got)
	}
}

func TestXC4000Valid(t *testing.T) {
	l := XC4000()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := l.Devices[0].CLBCost()
	for _, d := range l.Devices[1:] {
		if c := d.CLBCost(); c >= prev {
			t.Fatalf("per-CLB cost not decreasing at %s", d.Name)
		} else {
			prev = c
		}
	}
}

func TestHomogeneous(t *testing.T) {
	l, err := Homogeneous(Device{Name: "only", CLBs: 64, IOBs: 64, Price: 100, HighUtil: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Devices) != 1 {
		t.Fatalf("devices = %d", len(l.Devices))
	}
}
