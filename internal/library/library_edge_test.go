package library

import (
	"testing"
)

// edgeLib is a two-device library with hand-checkable windows:
//
//	small: 100 CLBs, util [0.50, 0.90] → MinCLBs 50, MaxCLBs 90, 20 IOBs
//	big:   200 CLBs, util [0.60, 0.85] → MinCLBs 120, MaxCLBs 170, 40 IOBs
func edgeLib(t *testing.T) Library {
	t.Helper()
	l, err := Custom(
		Device{Name: "small", CLBs: 100, IOBs: 20, Price: 100, LowUtil: 0.50, HighUtil: 0.90},
		Device{Name: "big", CLBs: 200, IOBs: 40, Price: 150, LowUtil: 0.60, HighUtil: 0.85},
	)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func names(devs []Device) []string {
	out := make([]string, len(devs))
	for i, d := range devs {
		out[i] = d.Name
	}
	return out
}

func equalNames(a []string, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFeasibleHostsEdges exercises the exact utilization-window and
// terminal boundaries: one CLB inside/outside each Low/High bound,
// zero terminals, and terminal counts at and just past each device's
// IOB count.
func TestFeasibleHostsEdges(t *testing.T) {
	l := edgeLib(t)
	cases := []struct {
		name            string
		clbs, terminals int
		want            []string
	}{
		{"zero demand", 0, 0, nil},
		{"below small's low bound", 49, 0, nil},
		{"exactly small's low bound", 50, 0, []string{"small"}},
		{"exactly small's high bound", 90, 0, []string{"small"}},
		{"above small, below big's low", 91, 0, nil},
		{"exactly big's low bound", 120, 0, []string{"big"}},
		{"in both windows? no — windows disjoint", 100, 0, nil},
		{"exactly big's high bound", 170, 0, []string{"big"}},
		{"above every window", 171, 0, nil},
		{"zero terminals always fine", 60, 0, []string{"small"}},
		{"exactly small's IOBs", 60, 20, []string{"small"}},
		{"one over small's IOBs", 60, 21, nil},
		{"exactly big's IOBs", 150, 40, []string{"big"}},
		{"one over big's IOBs", 150, 41, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := names(l.FeasibleHosts(tc.clbs, tc.terminals))
			if !equalNames(got, tc.want) {
				t.Fatalf("FeasibleHosts(%d, %d) = %v, want %v", tc.clbs, tc.terminals, got, tc.want)
			}
			// CheapestFit must agree with the head of FeasibleHosts.
			d, ok := l.CheapestFit(tc.clbs, tc.terminals)
			if ok != (len(tc.want) > 0) {
				t.Fatalf("CheapestFit(%d, %d) ok=%v, FeasibleHosts=%v", tc.clbs, tc.terminals, ok, tc.want)
			}
			if ok && d.Name != tc.want[0] {
				t.Fatalf("CheapestFit(%d, %d) = %s, want %s", tc.clbs, tc.terminals, d.Name, tc.want[0])
			}
		})
	}
}

// TestFeasibleHostsOverlapOrder checks the cheapest-first contract
// when several devices fit the same demand, including a price tie
// (stable on ties: library order, which is ascending capacity).
func TestFeasibleHostsOverlapOrder(t *testing.T) {
	l, err := Custom(
		Device{Name: "a", CLBs: 100, IOBs: 30, Price: 120, LowUtil: 0, HighUtil: 0.9},
		Device{Name: "b", CLBs: 150, IOBs: 30, Price: 90, LowUtil: 0, HighUtil: 0.9},
		Device{Name: "c", CLBs: 200, IOBs: 30, Price: 120, LowUtil: 0, HighUtil: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := names(l.FeasibleHosts(80, 10))
	if !equalNames(got, []string{"b", "a", "c"}) {
		t.Fatalf("hosts = %v, want cheapest first with stable tie [b a c]", got)
	}
	d, ok := l.CheapestFit(80, 10)
	if !ok || d.Name != "b" {
		t.Fatalf("CheapestFit = %v %v, want b", d, ok)
	}
}

// TestXC3000WindowBoundaries pins the derived Min/MaxCLBs of the
// paper's Table I library — the windows every carve is checked
// against. Ceil/floor behavior matters: e.g. XC3042's low bound
// 0.62*144 = 89.28 must round up to 90.
func TestXC3000WindowBoundaries(t *testing.T) {
	want := map[string][2]int{
		"XC3020": {0, 57},    // 0.00*64 → 0, 0.90*64 = 57.6 → 57
		"XC3030": {57, 90},   // 0.57*100 → 57, 0.90*100 → 90
		"XC3042": {90, 126},  // 0.62*144 = 89.28 → 90, 0.88*144 = 126.72 → 126
		"XC3064": {126, 190}, // 0.56*224 = 125.44 → 126, 0.85*224 = 190.4 → 190
		"XC3090": {189, 272}, // 0.59*320 = 188.8 → 189, 0.85*320 → 272
	}
	for _, d := range XC3000().Devices {
		w, ok := want[d.Name]
		if !ok {
			t.Fatalf("unexpected device %s", d.Name)
		}
		if d.MinCLBs() != w[0] || d.MaxCLBs() != w[1] {
			t.Fatalf("%s window [%d,%d], want [%d,%d]", d.Name, d.MinCLBs(), d.MaxCLBs(), w[0], w[1])
		}
		if d.Fits(w[0], 0) != (w[0] >= w[0]) || !d.Fits(w[1], 0) {
			t.Fatalf("%s does not accept its own window boundaries", d.Name)
		}
		if w[0] > 0 && d.Fits(w[0]-1, 0) {
			t.Fatalf("%s accepts %d below its low bound", d.Name, w[0]-1)
		}
		if d.Fits(w[1]+1, 0) {
			t.Fatalf("%s accepts %d above its high bound", d.Name, w[1]+1)
		}
	}
}
