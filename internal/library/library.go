// Package library models the heterogeneous FPGA device library of
// Kužnar et al. (DAC'94, Table I). Each device D_i = (c_i, t_i, d_i,
// l_i, u_i) carries its CLB capacity, terminal (IOB) count, unit price
// and lower/upper bounds on CLB utilization. A partition P_j is
// feasible for device D_i when its CLB utilization lies within
// [l_i, u_i] and its terminal count t_Pj does not exceed t_i.
package library

import (
	"fmt"
	"math"
	"sort"
)

// Device describes one FPGA type.
type Device struct {
	Name     string
	CLBs     int     // c_i: capacity in configurable logic blocks
	IOBs     int     // t_i: number of input/output blocks (terminals)
	Price    float64 // d_i: unit cost (normalized dollars)
	LowUtil  float64 // l_i: lower bound on CLB utilization
	HighUtil float64 // u_i: upper bound on CLB utilization
}

// CLBCost returns d_i / c_i, the per-CLB cost reported in Table I.
func (d Device) CLBCost() float64 { return d.Price / float64(d.CLBs) }

// MinCLBs returns the smallest CLB count that meets the lower
// utilization bound.
func (d Device) MinCLBs() int { return int(math.Ceil(d.LowUtil * float64(d.CLBs))) }

// MaxCLBs returns the largest CLB count that meets the upper
// utilization bound.
func (d Device) MaxCLBs() int { return int(math.Floor(d.HighUtil * float64(d.CLBs))) }

// Fits reports whether a partition with the given CLB and terminal
// demand is feasible on the device.
func (d Device) Fits(clbs, terminals int) bool {
	return clbs >= d.MinCLBs() && clbs <= d.MaxCLBs() && terminals <= d.IOBs
}

// Utilization returns the CLB utilization a partition of the given size
// would have on this device.
func (d Device) Utilization(clbs int) float64 { return float64(clbs) / float64(d.CLBs) }

// Library is an ordered set of device types (ascending capacity).
type Library struct {
	Devices []Device
}

// XC3000 returns the subset of the Xilinx XC3000 family used in the
// paper's Table I. The published price column is partially illegible in
// the available text; the values below preserve the qualitative
// property the paper shows (per-CLB cost decreases with device size)
// and the capacity/terminal counts of the real parts. The lower
// utilization bounds are derived from the next smaller device so that
// an under-filled large device is never cheaper than a smaller one;
// the smallest device accepts any load.
func XC3000() Library {
	return Library{Devices: []Device{
		{Name: "XC3020", CLBs: 64, IOBs: 64, Price: 110, LowUtil: 0.00, HighUtil: 0.90},
		{Name: "XC3030", CLBs: 100, IOBs: 80, Price: 163, LowUtil: 0.57, HighUtil: 0.90},
		{Name: "XC3042", CLBs: 144, IOBs: 96, Price: 224, LowUtil: 0.62, HighUtil: 0.88},
		{Name: "XC3064", CLBs: 224, IOBs: 110, Price: 319, LowUtil: 0.56, HighUtil: 0.85},
		{Name: "XC3090", CLBs: 320, IOBs: 144, Price: 437, LowUtil: 0.59, HighUtil: 0.85},
	}}
}

// XC4000 returns a four-member subset of the Xilinx XC4000 family —
// a second heterogeneous library for experiments beyond the paper's
// XC3000 setup. Capacities/terminals match the real parts; prices are
// calibrated the same way as XC3000's (per-CLB cost decreasing with
// size).
func XC4000() Library {
	return Library{Devices: []Device{
		{Name: "XC4003", CLBs: 100, IOBs: 80, Price: 150, LowUtil: 0.00, HighUtil: 0.90},
		{Name: "XC4005", CLBs: 196, IOBs: 112, Price: 262, LowUtil: 0.45, HighUtil: 0.90},
		{Name: "XC4008", CLBs: 324, IOBs: 144, Price: 401, LowUtil: 0.54, HighUtil: 0.88},
		{Name: "XC4010", CLBs: 400, IOBs: 160, Price: 468, LowUtil: 0.71, HighUtil: 0.88},
	}}
}

// Homogeneous builds a single-device library: with it, the cost
// objective (Eq. 1) degenerates to minimizing the number of devices k,
// the special case the paper's introduction describes.
func Homogeneous(d Device) (Library, error) {
	return Custom(d)
}

// Custom builds a validated library from the given devices, sorted by
// ascending CLB capacity.
func Custom(devices ...Device) (Library, error) {
	l := Library{Devices: append([]Device(nil), devices...)}
	sort.Slice(l.Devices, func(i, j int) bool { return l.Devices[i].CLBs < l.Devices[j].CLBs })
	if err := l.Validate(); err != nil {
		return Library{}, err
	}
	return l, nil
}

// Validate checks device sanity: positive capacity/terminals/price and
// 0 ≤ l_i ≤ u_i ≤ 1, ascending capacities, unique names.
func (l Library) Validate() error {
	if len(l.Devices) == 0 {
		return fmt.Errorf("library: no devices")
	}
	names := make(map[string]bool, len(l.Devices))
	prev := 0
	for _, d := range l.Devices {
		if d.Name == "" {
			return fmt.Errorf("library: device with empty name")
		}
		if names[d.Name] {
			return fmt.Errorf("library: duplicate device name %q", d.Name)
		}
		names[d.Name] = true
		if d.CLBs <= 0 || d.IOBs <= 0 || d.Price <= 0 {
			return fmt.Errorf("library: device %q has non-positive capacity, terminals or price", d.Name)
		}
		if d.LowUtil < 0 || d.HighUtil > 1 || d.LowUtil > d.HighUtil {
			return fmt.Errorf("library: device %q has invalid utilization bounds [%g,%g]", d.Name, d.LowUtil, d.HighUtil)
		}
		if d.CLBs < prev {
			return fmt.Errorf("library: devices not sorted by capacity at %q", d.Name)
		}
		prev = d.CLBs
	}
	return nil
}

// Largest returns the device with the greatest CLB capacity.
func (l Library) Largest() Device { return l.Devices[len(l.Devices)-1] }

// Smallest returns the device with the least CLB capacity.
func (l Library) Smallest() Device { return l.Devices[0] }

// ByName returns the named device.
func (l Library) ByName(name string) (Device, bool) {
	for _, d := range l.Devices {
		if d.Name == name {
			return d, true
		}
	}
	return Device{}, false
}

// CheapestFit returns the lowest-priced device on which a partition
// with the given CLB and terminal demand is feasible.
func (l Library) CheapestFit(clbs, terminals int) (Device, bool) {
	best := Device{}
	found := false
	for _, d := range l.Devices {
		if !d.Fits(clbs, terminals) {
			continue
		}
		if !found || d.Price < best.Price {
			best = d
			found = true
		}
	}
	return best, found
}

// FeasibleHosts returns every device that can host the given demand,
// cheapest first.
func (l Library) FeasibleHosts(clbs, terminals int) []Device {
	var out []Device
	for _, d := range l.Devices {
		if d.Fits(clbs, terminals) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Price < out[j].Price })
	return out
}

// MaxFitCLBs returns the largest CLB count any device in the library
// can absorb (ignoring terminals): the carve-out ceiling used by the
// recursive k-way partitioner.
func (l Library) MaxFitCLBs() int {
	best := 0
	for _, d := range l.Devices {
		if m := d.MaxCLBs(); m > best {
			best = m
		}
	}
	return best
}

// LowerBoundCost returns a simple lower bound on the total device cost
// of any feasible partition of a circuit with the given CLB count: the
// best achievable per-CLB price times the CLB count, rounded to the
// cheapest single device if the circuit fits one.
func (l Library) LowerBoundCost(clbs int) float64 {
	bestPerCLB := math.Inf(1)
	for _, d := range l.Devices {
		// The effective per-CLB cost at full allowed utilization.
		eff := d.Price / (float64(d.CLBs) * d.HighUtil)
		if eff < bestPerCLB {
			bestPerCLB = eff
		}
	}
	return bestPerCLB * float64(clbs)
}
