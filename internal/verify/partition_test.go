// Table-driven end-to-end tests of the partition verifier: positive
// checks on real kway results and one negative case per violation
// class, each asserting that its specific check is the one that fires.
// The tests live in an external package because kway itself imports
// verify for its in-loop Options.Verify mode.
package verify_test

import (
	"strings"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/metrics"
	"fpgapart/internal/verify"
)

func partitioned(t *testing.T, threshold int, seed int64) (*hypergraph.Graph, kway.Result) {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "vfy", Cells: 350, PrimaryIn: 20, PrimaryOut: 12, DFFs: 60,
		Clustering: 0.55, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kway.Partition(g, kway.Options{
		Library: library.XC3000(), Threshold: threshold, Solutions: 4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func toParts(res kway.Result) []verify.Part {
	out := make([]verify.Part, len(res.Parts))
	for i, p := range res.Parts {
		out[i] = verify.Part{Graph: p.Graph, Device: p.Device}
	}
	return out
}

// cloneResult deep-copies a result so corruption in one test case
// cannot leak into the next.
func cloneResult(r kway.Result) kway.Result {
	out := r
	out.Parts = append([]kway.Part(nil), r.Parts...)
	for i := range out.Parts {
		out.Parts[i].Graph = r.Parts[i].Graph.Clone()
	}
	out.Summary.Parts = append([]metrics.Part(nil), r.Summary.Parts...)
	return out
}

func TestPartitionVerifiesBaseline(t *testing.T) {
	g, res := partitioned(t, fm.NoReplication, 1)
	if err := verify.Partition(g, toParts(res), res.Summary); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionVerifiesWithReplication(t *testing.T) {
	for seed := int64(2); seed <= 5; seed++ {
		g, res := partitioned(t, 0, seed)
		if err := res.Verify(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDetectsEmpty(t *testing.T) {
	g, _ := partitioned(t, fm.NoReplication, 9)
	if err := verify.Partition(g, nil, metrics.Solution{}); err == nil {
		t.Fatal("want error for empty result")
	}
}

// drivenInternalNet returns the index of a net of p that is driven by a
// cell of p and internal, excluding nets named in `avoid`.
func drivenInternalNet(p *hypergraph.Graph, avoid string) int {
	for ni := range p.Nets {
		if p.Nets[ni].Ext != hypergraph.Internal || p.Nets[ni].Name == avoid {
			continue
		}
		for _, cn := range p.Nets[ni].Conns {
			if cn.Out {
				return ni
			}
		}
	}
	return -1
}

// TestDetectsEachViolationClass corrupts one invariant per case on a
// fresh copy of the same partitioned result and asserts the matching
// check fires.
func TestDetectsEachViolationClass(t *testing.T) {
	g, base := partitioned(t, fm.NoReplication, 6)
	if len(base.Parts) < 2 {
		t.Fatalf("need k >= 2 for cross-part corruption, got k=%d", len(base.Parts))
	}
	cases := []struct {
		name    string
		wantSub string
		corrupt func(t *testing.T, res *kway.Result)
	}{
		{
			name:    "bad summary row",
			wantSub: "summary row",
			corrupt: func(t *testing.T, res *kway.Result) {
				res.Summary.Parts[0].CLBs++
			},
		},
		{
			name:    "summary row count mismatch",
			wantSub: "summary rows",
			corrupt: func(t *testing.T, res *kway.Result) {
				res.Summary.Parts = res.Summary.Parts[:len(res.Summary.Parts)-1]
			},
		},
		{
			name:    "device misfit",
			wantSub: "does not fit",
			corrupt: func(t *testing.T, res *kway.Result) {
				tiny := library.Device{Name: "tiny", CLBs: 4, IOBs: 4, Price: 1, HighUtil: 1}
				res.Parts[0].Device = tiny
				res.Summary.Parts[0].Device = tiny
			},
		},
		{
			name:    "unknown cell",
			wantSub: "unknown cell",
			corrupt: func(t *testing.T, res *kway.Result) {
				res.Parts[0].Graph.Cells[0].Name = "ghost"
			},
		},
		{
			name:    "missing cell",
			wantSub: "missing from every part",
			corrupt: func(t *testing.T, res *kway.Result) {
				// Rename a cell of part 0 to a cell name living in part 1:
				// the original name then appears in no part.
				res.Parts[0].Graph.Cells[0].Name = res.Parts[1].Graph.Cells[0].Name
			},
		},
		{
			name:    "double producer",
			wantSub: "driven in",
			corrupt: func(t *testing.T, res *kway.Result) {
				p0, p1 := res.Parts[0].Graph, res.Parts[1].Graph
				vi := drivenInternalNet(p1, "")
				if vi < 0 {
					t.Skip("no internal driven net in part 1")
				}
				victim := p1.Nets[vi].Name
				ci := drivenInternalNet(p0, victim)
				if ci < 0 {
					t.Skip("no internal driven net in part 0")
				}
				p0.Nets[ci].Name = victim
			},
		},
		{
			name:    "IOB mismatch",
			wantSub: "span accounting",
			corrupt: func(t *testing.T, res *kway.Result) {
				p0 := res.Parts[0].Graph
				ni := drivenInternalNet(p0, "")
				if ni < 0 {
					t.Skip("no internal driven net in part 0")
				}
				p0.Nets[ni].Ext = hypergraph.ExtOut
				// Keep the summary row and device consistent so the span
				// accounting check is the one that fires.
				res.Summary.Parts[0].Terminals = p0.NumTerminals()
				if !res.Parts[0].Device.Fits(p0.TotalArea(), p0.NumTerminals()) {
					t.Skip("corruption tripped device feasibility instead")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := cloneResult(base)
			tc.corrupt(t, &res)
			err := res.Verify(g)
			if err == nil {
				t.Fatalf("corruption %q not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("corruption %q: want error containing %q, got %v", tc.name, tc.wantSub, err)
			}
		})
	}
}
