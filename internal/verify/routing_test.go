package verify

import (
	"errors"
	"strings"
	"testing"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/topology"
)

// routePart builds a one-cell part graph touching the named nets:
// ins are external inputs, outs external outputs.
func routePart(t *testing.T, name string, ins, outs []string) *hypergraph.Graph {
	t.Helper()
	b := hypergraph.NewBuilder(name)
	var inIDs, outIDs []hypergraph.NetID
	for _, n := range ins {
		inIDs = append(inIDs, b.InputNet(n))
	}
	for _, n := range outs {
		outIDs = append(outIDs, b.OutputNet(n))
	}
	b.AddCell(hypergraph.CellSpec{Name: name + ".u", Inputs: inIDs, Outputs: outIDs})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// narrowBoard is two slots joined by one link of the given capacity.
func narrowBoard(t *testing.T, capacity int) *topology.Board {
	t.Helper()
	b, err := topology.New("narrow", 2, []topology.Link{{A: 0, B: 1, Capacity: capacity, Cost: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRoutingRejectsOverloadedLink(t *testing.T) {
	board := narrowBoard(t, 1)
	parts := []*hypergraph.Graph{
		routePart(t, "p0", nil, []string{"na", "nb"}),
		routePart(t, "p1", []string{"na", "nb"}, []string{"po"}),
	}
	err := Routing(board, parts)
	if err == nil {
		t.Fatal("two nets over a capacity-1 link accepted")
	}
	var rerr *RouteError
	if !errors.As(err, &rerr) {
		t.Fatalf("error is %T, want *RouteError", err)
	}
	if rerr.LinkIndex != 0 || rerr.Load != 2 {
		t.Fatalf("RouteError = %+v, want link 0 load 2", rerr)
	}
	if rerr.Link.A != 0 || rerr.Link.B != 1 || rerr.Link.Capacity != 1 {
		t.Fatalf("RouteError.Link = %+v", rerr.Link)
	}
	if len(rerr.Nets) != 2 || rerr.Nets[0] != "na" || rerr.Nets[1] != "nb" {
		t.Fatalf("RouteError.Nets = %v, want [na nb]", rerr.Nets)
	}
	for _, name := range []string{"0–1", "2 nets", "capacity 1", "na", "nb"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not name %q", err, name)
		}
	}
}

func TestRoutingAcceptsWithinCapacity(t *testing.T) {
	board := narrowBoard(t, 2)
	parts := []*hypergraph.Graph{
		routePart(t, "p0", nil, []string{"na", "nb"}),
		routePart(t, "p1", []string{"na", "nb"}, []string{"po"}),
	}
	if err := Routing(board, parts); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingRejectsMorePartsThanSlots(t *testing.T) {
	board := narrowBoard(t, 4)
	parts := []*hypergraph.Graph{
		routePart(t, "p0", nil, []string{"na"}),
		routePart(t, "p1", []string{"na"}, []string{"nb"}),
		routePart(t, "p2", []string{"nb"}, []string{"po"}),
	}
	if err := Routing(board, parts); err == nil {
		t.Fatal("3 parts on a 2-slot board accepted")
	}
}

// TestLinkLoadsRoutesThroughIntermediateSlots pins the load model: a
// net spanning the ends of a linear board loads every link on the
// route, including those of slots the net does not touch, and
// single-slot nets load nothing.
func TestLinkLoadsRoutesThroughIntermediateSlots(t *testing.T) {
	board, err := topology.Linear(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := []*hypergraph.Graph{
		routePart(t, "p0", nil, []string{"far"}),
		routePart(t, "p1", nil, []string{"local"}),
		routePart(t, "p2", []string{"far", "local2"}, []string{"po"}),
	}
	// "local" touches only slot 1; "local2" only slot 2; "far" spans
	// slots 0 and 2 and must load links 0–1 and 1–2.
	loads := LinkLoads(board, parts)
	if len(loads) != 2 || loads[0] != 1 || loads[1] != 1 {
		t.Fatalf("loads = %v, want [1 1]", loads)
	}
	if err := Routing(board, parts); err != nil {
		t.Fatal(err)
	}
}
