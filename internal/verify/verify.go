// Package verify checks a k-way partitioning result against its source
// circuit: structural validity of every part, device feasibility,
// cell-coverage accounting (each source cell present, replicas
// consistent), the single-producer property of functional replication
// (every net is driven in exactly one part), and exact IOB accounting
// (the parts' terminal counts sum to what the nets' spans imply).
package verify

import (
	"fmt"
	"strings"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
)

// Partition runs every check and returns the first violation.
func Partition(src *hypergraph.Graph, res kway.Result) error {
	if len(res.Parts) == 0 {
		return fmt.Errorf("verify: empty partition")
	}
	if len(res.Parts) != len(res.Summary.Parts) {
		return fmt.Errorf("verify: %d parts but %d summary rows", len(res.Parts), len(res.Summary.Parts))
	}
	for i, p := range res.Parts {
		if err := p.Graph.Validate(); err != nil {
			return fmt.Errorf("verify: part %d: %w", i, err)
		}
		row := res.Summary.Parts[i]
		if row.CLBs != p.Graph.TotalArea() || row.Terminals != p.Graph.NumTerminals() || row.Cells != p.Graph.NumCells() {
			return fmt.Errorf("verify: part %d summary row disagrees with its graph", i)
		}
		if !p.Device.Fits(p.Graph.TotalArea(), p.Graph.NumTerminals()) {
			return fmt.Errorf("verify: part %d (%d CLBs, %d terminals) does not fit %s",
				i, p.Graph.TotalArea(), p.Graph.NumTerminals(), p.Device.Name)
		}
	}
	if err := cellCoverage(src, res); err != nil {
		return err
	}
	if err := singleProducer(src, res); err != nil {
		return err
	}
	return iobAccounting(src, res)
}

// baseName strips replica suffixes: "u7$r$r" -> "u7".
func baseName(name string) string {
	for strings.HasSuffix(name, "$r") {
		name = strings.TrimSuffix(name, "$r")
	}
	return name
}

// cellCoverage checks that every source cell appears at least once,
// that only known cells appear, and that the instance count equals
// source cells plus reported replicas.
func cellCoverage(src *hypergraph.Graph, res kway.Result) error {
	known := make(map[string]bool, src.NumCells())
	for i := range src.Cells {
		known[src.Cells[i].Name] = true
	}
	counts := make(map[string]int, src.NumCells())
	instances := 0
	for pi, p := range res.Parts {
		for i := range p.Graph.Cells {
			name := baseName(p.Graph.Cells[i].Name)
			if !known[name] {
				return fmt.Errorf("verify: part %d contains unknown cell %q", pi, p.Graph.Cells[i].Name)
			}
			counts[name]++
			instances++
		}
	}
	for name := range known {
		if counts[name] == 0 {
			return fmt.Errorf("verify: source cell %q missing from every part", name)
		}
	}
	if want := src.NumCells() + res.Summary.ReplicatedCells(); instances != want {
		return fmt.Errorf("verify: %d instances, want %d source + %d replicas",
			instances, src.NumCells(), res.Summary.ReplicatedCells())
	}
	return nil
}

// singleProducer checks functional replication's core invariant: every
// cell-driven net of the source circuit is driven in exactly one part
// (outputs are partitioned between copies, never duplicated).
func singleProducer(src *hypergraph.Graph, res kway.Result) error {
	srcNet := make(map[string]hypergraph.ExtKind, src.NumNets())
	for i := range src.Nets {
		srcNet[src.Nets[i].Name] = src.Nets[i].Ext
	}
	drivers := make(map[string]int)
	for pi, p := range res.Parts {
		for ni := range p.Graph.Nets {
			net := &p.Graph.Nets[ni]
			kind, known := srcNet[net.Name]
			if !known {
				return fmt.Errorf("verify: part %d contains unknown net %q", pi, net.Name)
			}
			hasDriver := false
			for _, cn := range net.Conns {
				if cn.Out {
					hasDriver = true
				}
			}
			if hasDriver {
				if kind == hypergraph.ExtIn {
					return fmt.Errorf("verify: part %d drives primary input net %q", pi, net.Name)
				}
				drivers[net.Name]++
			}
		}
	}
	for name, kind := range srcNet {
		if kind == hypergraph.ExtIn {
			continue
		}
		if n := drivers[name]; n > 1 {
			return fmt.Errorf("verify: net %q driven in %d parts", name, n)
		}
	}
	return nil
}

// iobAccounting recomputes every part's terminal demand from the nets'
// spans: a net consumes one IOB in each part it touches when it is
// external in the source or it touches more than one part.
func iobAccounting(src *hypergraph.Graph, res kway.Result) error {
	ext := make(map[string]bool, src.NumNets())
	for i := range src.Nets {
		if src.Nets[i].Ext != hypergraph.Internal {
			ext[src.Nets[i].Name] = true
		}
	}
	touch := make(map[string]int)
	for _, p := range res.Parts {
		for ni := range p.Graph.Nets {
			touch[p.Graph.Nets[ni].Name]++
		}
	}
	for pi, p := range res.Parts {
		want := 0
		for ni := range p.Graph.Nets {
			name := p.Graph.Nets[ni].Name
			if ext[name] || touch[name] > 1 {
				want++
			}
		}
		if got := p.Graph.NumTerminals(); got != want {
			return fmt.Errorf("verify: part %d has %d terminals, span accounting expects %d", pi, got, want)
		}
	}
	return nil
}
