// Package verify checks a k-way partitioning result against its source
// circuit: structural validity of every part, device feasibility,
// cell-coverage accounting (each source cell present, replicas
// consistent), the single-producer property of functional replication
// (every net is driven in exactly one part), and exact IOB accounting
// (the parts' terminal counts sum to what the nets' spans imply).
//
// The package deliberately depends only on the substrate packages
// (hypergraph, library, metrics) so that the partitioners themselves
// can invoke it in-loop: kway.Options.Verify runs these checks on
// every accepted carve and every feasible solution the search
// generates.
package verify

import (
	"fmt"
	"strings"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/library"
	"fpgapart/internal/metrics"
)

// Part pairs one partition subcircuit with the device implementing it.
type Part struct {
	Graph  *hypergraph.Graph
	Device library.Device
}

// Partition runs every check against a complete k-way solution and
// returns the first violation. sum must be the solution summary whose
// rows correspond to parts index-by-index.
func Partition(src *hypergraph.Graph, parts []Part, sum metrics.Solution) error {
	if len(parts) == 0 {
		return fmt.Errorf("verify: empty partition")
	}
	if len(parts) != len(sum.Parts) {
		return fmt.Errorf("verify: %d parts but %d summary rows", len(parts), len(sum.Parts))
	}
	graphs := make([]*hypergraph.Graph, len(parts))
	for i, p := range parts {
		if err := p.Graph.Validate(); err != nil {
			return fmt.Errorf("verify: part %d: %w", i, err)
		}
		row := sum.Parts[i]
		if row.CLBs != p.Graph.TotalArea() || row.Terminals != p.Graph.NumTerminals() || row.Cells != p.Graph.NumCells() {
			return fmt.Errorf("verify: part %d summary row disagrees with its graph", i)
		}
		if !p.Device.Fits(p.Graph.TotalArea(), p.Graph.NumTerminals()) {
			return fmt.Errorf("verify: part %d (%d CLBs, %d terminals) does not fit %s",
				i, p.Graph.TotalArea(), p.Graph.NumTerminals(), p.Device.Name)
		}
		graphs[i] = p.Graph
	}
	if err := cellCoverage(src, graphs, sum.ReplicatedCells()); err != nil {
		return err
	}
	if err := singleProducer(src, graphs); err != nil {
		return err
	}
	return iobAccounting(src, graphs)
}

// Split checks the structural invariants of an intermediate split —
// e.g. one accepted carve of the recursive k-way search — without any
// device or summary context: every block is a valid circuit, cells
// cover the source exactly (replicas identified by the "$r" naming
// convention), every net keeps a single producer, and the blocks'
// terminal counts match the span accounting.
func Split(src *hypergraph.Graph, blocks ...*hypergraph.Graph) error {
	if len(blocks) == 0 {
		return fmt.Errorf("verify: empty split")
	}
	for i, b := range blocks {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("verify: block %d: %w", i, err)
		}
	}
	if err := cellCoverage(src, blocks, -1); err != nil {
		return err
	}
	if err := singleProducer(src, blocks); err != nil {
		return err
	}
	return iobAccounting(src, blocks)
}

// baseName resolves a part cell name to the source cell it copies:
// replica copies append "$r", so strip one suffix at a time until a
// known source name appears. Source names may themselves end in "$r"
// when the source is an intermediate block of the recursive carve, so
// a direct hit always wins over further stripping.
func baseName(known map[string]bool, name string) (string, bool) {
	for {
		if known[name] {
			return name, true
		}
		if !strings.HasSuffix(name, "$r") {
			return name, false
		}
		name = strings.TrimSuffix(name, "$r")
	}
}

// cellCoverage checks that every source cell appears at least once,
// that only known cells (or their "$r" replica copies) appear, and
// that the instance count equals source cells plus replicas. A
// wantReplicas >= 0 additionally cross-checks the replica count the
// caller's summary reported.
func cellCoverage(src *hypergraph.Graph, parts []*hypergraph.Graph, wantReplicas int) error {
	known := make(map[string]bool, src.NumCells())
	for i := range src.Cells {
		known[src.Cells[i].Name] = true
	}
	counts := make(map[string]int, src.NumCells())
	instances, replicas := 0, 0
	for pi, p := range parts {
		for i := range p.Cells {
			name, ok := baseName(known, p.Cells[i].Name)
			if !ok {
				return fmt.Errorf("verify: part %d contains unknown cell %q", pi, p.Cells[i].Name)
			}
			if name != p.Cells[i].Name {
				replicas++
			}
			counts[name]++
			instances++
		}
	}
	for name := range known {
		if counts[name] == 0 {
			return fmt.Errorf("verify: source cell %q missing from every part", name)
		}
	}
	if want := src.NumCells() + replicas; instances != want {
		return fmt.Errorf("verify: %d instances, want %d source + %d replicas",
			instances, src.NumCells(), replicas)
	}
	if wantReplicas >= 0 && replicas != wantReplicas {
		return fmt.Errorf("verify: summary reports %d replicas, parts contain %d", wantReplicas, replicas)
	}
	return nil
}

// singleProducer checks functional replication's core invariant: every
// cell-driven net of the source circuit is driven in exactly one part
// (outputs are partitioned between copies, never duplicated).
func singleProducer(src *hypergraph.Graph, parts []*hypergraph.Graph) error {
	srcNet := make(map[string]hypergraph.ExtKind, src.NumNets())
	for i := range src.Nets {
		srcNet[src.Nets[i].Name] = src.Nets[i].Ext
	}
	drivers := make(map[string]int)
	for pi, p := range parts {
		for ni := range p.Nets {
			net := &p.Nets[ni]
			kind, known := srcNet[net.Name]
			if !known {
				return fmt.Errorf("verify: part %d contains unknown net %q", pi, net.Name)
			}
			hasDriver := false
			for _, cn := range net.Conns {
				if cn.Out {
					hasDriver = true
				}
			}
			if hasDriver {
				if kind == hypergraph.ExtIn {
					return fmt.Errorf("verify: part %d drives primary input net %q", pi, net.Name)
				}
				drivers[net.Name]++
			}
		}
	}
	for name, kind := range srcNet {
		if kind == hypergraph.ExtIn {
			continue
		}
		if n := drivers[name]; n > 1 {
			return fmt.Errorf("verify: net %q driven in %d parts", name, n)
		}
	}
	return nil
}

// iobAccounting recomputes every part's terminal demand from the nets'
// spans: a net consumes one IOB in each part it touches when it is
// external in the source or it touches more than one part.
func iobAccounting(src *hypergraph.Graph, parts []*hypergraph.Graph) error {
	ext := make(map[string]bool, src.NumNets())
	for i := range src.Nets {
		if src.Nets[i].Ext != hypergraph.Internal {
			ext[src.Nets[i].Name] = true
		}
	}
	touch := make(map[string]int)
	for _, p := range parts {
		for ni := range p.Nets {
			touch[p.Nets[ni].Name]++
		}
	}
	for pi, p := range parts {
		want := 0
		for ni := range p.Nets {
			name := p.Nets[ni].Name
			if ext[name] || touch[name] > 1 {
				want++
			}
		}
		if got := p.NumTerminals(); got != want {
			return fmt.Errorf("verify: part %d has %d terminals, span accounting expects %d", pi, got, want)
		}
	}
	return nil
}
