package verify

import (
	"fmt"
	"strings"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/topology"
)

// RouteError reports a board link whose routed net load exceeds its
// capacity. It is the typed failure of Routing: LinkIndex/Link name
// the offending link, Load the number of nets routed over it, and
// Nets the offending net names in deterministic (first-seen) order.
type RouteError struct {
	LinkIndex int
	Link      topology.Link
	Load      int
	Nets      []string
}

func (e *RouteError) Error() string {
	shown := e.Nets
	suffix := ""
	if len(shown) > 8 {
		suffix = fmt.Sprintf(", +%d more", len(shown)-8)
		shown = shown[:8]
	}
	return fmt.Sprintf("verify: link %d–%d overloaded: %d nets > capacity %d (%s%s)",
		e.Link.A, e.Link.B, e.Load, e.Link.Capacity, strings.Join(shown, ", "), suffix)
}

// LinkLoads routes every multi-slot net of the partition over the
// board and returns the per-link net load, indexed like b.Links. Part
// i occupies board slot i; a net's load is one unit on every link of
// the deterministic route tree spanning the slots it touches
// (topology.RouteSpan). Single-slot nets consume no link capacity.
func LinkLoads(b *topology.Board, parts []*hypergraph.Graph) []int {
	loads, _ := routeAll(b, parts, false)
	return loads
}

// Routing is the routing-feasibility post-check of a k-way solution on
// a board topology: every net spanning more than one part is routed
// over the board (part i = slot i), and every link's accumulated net
// load must stay within its capacity. The first overloaded link (in
// link-index order) is reported as a *RouteError naming the link and
// the nets routed over it.
func Routing(b *topology.Board, parts []*hypergraph.Graph) error {
	if len(parts) > b.Slots {
		return fmt.Errorf("verify: %d parts exceed board %s's %d slots", len(parts), b.Name, b.Slots)
	}
	loads, nets := routeAll(b, parts, true)
	for li, load := range loads {
		if load > b.Links[li].Capacity {
			return &RouteError{LinkIndex: li, Link: b.Links[li], Load: load, Nets: nets[li]}
		}
	}
	return nil
}

// routeAll computes per-link loads; with names it also records the net
// names per link for error reporting. Nets are visited in part order
// then net-index order, deduplicated by name, so both outputs are
// deterministic.
func routeAll(b *topology.Board, parts []*hypergraph.Graph, names bool) ([]int, [][]string) {
	spans := make(map[string]topology.SlotSet)
	var order []string
	for slot, p := range parts {
		for ni := range p.Nets {
			name := p.Nets[ni].Name
			if _, seen := spans[name]; !seen {
				order = append(order, name)
			}
			spans[name] = spans[name].Add(slot)
		}
	}
	loads := make([]int, len(b.Links))
	var perLink [][]string
	if names {
		perLink = make([][]string, len(b.Links))
	}
	for _, name := range order {
		span := spans[name]
		if span.Count() < 2 {
			continue
		}
		for _, li := range b.RouteSpan(span) {
			loads[li]++
			if names {
				perLink[li] = append(perLink[li], name)
			}
		}
	}
	return loads, perLink
}
