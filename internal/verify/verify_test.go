package verify

import (
	"strings"
	"testing"

	"fpgapart/internal/hypergraph"
)

func TestBaseName(t *testing.T) {
	known := map[string]bool{"u7": true, "v3$r": true}
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{"u7", "u7", true},
		{"u7$r", "u7", true},
		{"u7$r$r", "u7", true},
		// A known name ending in "$r" (an intermediate carve block's own
		// cell) resolves to itself, and its replica strips one suffix.
		{"v3$r", "v3$r", true},
		{"v3$r$r", "v3$r", true},
		{"x$ry", "x$ry", false},
		{"ghost", "ghost", false},
	} {
		got, ok := baseName(known, tc.in)
		if got != tc.want || ok != tc.ok {
			t.Fatalf("baseName(%q) = %q, %v; want %q, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// chain builds the 2-cell circuit pi -> u0 -> w -> u1 -> po.
func chain(t *testing.T) *hypergraph.Graph {
	t.Helper()
	b := hypergraph.NewBuilder("chain")
	pi := b.InputNet("pi")
	w := b.Net("w")
	po := b.OutputNet("po")
	b.AddCell(hypergraph.CellSpec{Name: "u0", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{w}})
	b.AddCell(hypergraph.CellSpec{Name: "u1", Inputs: []hypergraph.NetID{w}, Outputs: []hypergraph.NetID{po}})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// block materializes one side of the chain split by hand: the named
// cell with its nets, the shared net w external on both sides.
func chainBlock(t *testing.T, side int) *hypergraph.Graph {
	t.Helper()
	b := hypergraph.NewBuilder("chain.side")
	if side == 0 {
		pi := b.InputNet("pi")
		w := b.OutputNet("w")
		b.AddCell(hypergraph.CellSpec{Name: "u0", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{w}})
	} else {
		w := b.InputNet("w")
		po := b.OutputNet("po")
		b.AddCell(hypergraph.CellSpec{Name: "u1", Inputs: []hypergraph.NetID{w}, Outputs: []hypergraph.NetID{po}})
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSplitAcceptsHandmadeCut(t *testing.T) {
	src := chain(t)
	if err := Split(src, chainBlock(t, 0), chainBlock(t, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRejectsEmptyAndMissing(t *testing.T) {
	src := chain(t)
	if err := Split(src); err == nil {
		t.Fatal("want error for empty split")
	}
	err := Split(src, chainBlock(t, 0))
	if err == nil || !strings.Contains(err.Error(), "missing from every part") {
		t.Fatalf("want missing-cell error, got %v", err)
	}
}
