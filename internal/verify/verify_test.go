package verify

import (
	"strings"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
)

func partitioned(t *testing.T, threshold int, seed int64) (*hypergraph.Graph, kway.Result) {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "vfy", Cells: 350, PrimaryIn: 20, PrimaryOut: 12, DFFs: 60,
		Clustering: 0.55, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kway.Partition(g, kway.Options{
		Library: library.XC3000(), Threshold: threshold, Solutions: 4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestPartitionVerifiesBaseline(t *testing.T) {
	g, res := partitioned(t, fm.NoReplication, 1)
	if err := Partition(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionVerifiesWithReplication(t *testing.T) {
	for seed := int64(2); seed <= 5; seed++ {
		g, res := partitioned(t, 0, seed)
		if err := Partition(g, res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDetectsMissingCell(t *testing.T) {
	g, res := partitioned(t, fm.NoReplication, 6)
	// Rename a cell to break coverage.
	res.Parts[0].Graph.Cells[0].Name = "ghost"
	err := Partition(g, res)
	if err == nil || !strings.Contains(err.Error(), "unknown cell") {
		t.Fatalf("want unknown-cell error, got %v", err)
	}
}

func TestDetectsSummaryMismatch(t *testing.T) {
	g, res := partitioned(t, fm.NoReplication, 7)
	res.Summary.Parts[0].CLBs++
	err := Partition(g, res)
	if err == nil || !strings.Contains(err.Error(), "summary row") {
		t.Fatalf("want summary error, got %v", err)
	}
}

func TestDetectsInfeasibleDevice(t *testing.T) {
	g, res := partitioned(t, fm.NoReplication, 8)
	res.Parts[0].Device = library.Device{Name: "tiny", CLBs: 4, IOBs: 4, Price: 1, HighUtil: 1}
	res.Summary.Parts[0].Device = res.Parts[0].Device
	err := Partition(g, res)
	if err == nil || !strings.Contains(err.Error(), "does not fit") {
		t.Fatalf("want feasibility error, got %v", err)
	}
}

func TestDetectsEmpty(t *testing.T) {
	g, _ := partitioned(t, fm.NoReplication, 9)
	if err := Partition(g, kway.Result{}); err == nil {
		t.Fatal("want error for empty result")
	}
}

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		"u7": "u7", "u7$r": "u7", "u7$r$r": "u7", "x$ry": "x$ry",
	} {
		if got := baseName(in); got != want {
			t.Fatalf("baseName(%q) = %q", in, got)
		}
	}
}

func TestDetectsDoubleProducer(t *testing.T) {
	g, res := partitioned(t, 0, 10)
	if len(res.Parts) < 2 {
		t.Skip("need k >= 2")
	}
	// Graft a fake driver of part 1's first externally-driven net into
	// part 0... simplest corruption: rename one of part 0's internal
	// nets to a net that part 1 drives.
	var victim string
	p1 := res.Parts[1].Graph
	for ni := range p1.Nets {
		hasDriver := false
		for _, cn := range p1.Nets[ni].Conns {
			if cn.Out {
				hasDriver = true
			}
		}
		if hasDriver && p1.Nets[ni].Ext == hypergraph.Internal {
			victim = p1.Nets[ni].Name
			break
		}
	}
	if victim == "" {
		t.Skip("no internal driven net in part 1")
	}
	p0 := res.Parts[0].Graph
	renamed := false
	for ni := range p0.Nets {
		hasDriver := false
		for _, cn := range p0.Nets[ni].Conns {
			if cn.Out {
				hasDriver = true
			}
		}
		if hasDriver && p0.Nets[ni].Ext == hypergraph.Internal && p0.Nets[ni].Name != victim {
			p0.Nets[ni].Name = victim
			renamed = true
			break
		}
	}
	if !renamed {
		t.Skip("no internal driven net in part 0")
	}
	err := Partition(g, res)
	if err == nil {
		t.Fatal("expected a verification failure after corruption")
	}
}

func TestDetectsIOBMiscount(t *testing.T) {
	g, res := partitioned(t, fm.NoReplication, 11)
	// Flip an internal net of part 0 to external: terminal accounting
	// (or validation) must notice.
	p0 := res.Parts[0].Graph
	for ni := range p0.Nets {
		if p0.Nets[ni].Ext == hypergraph.Internal {
			hasDriver := false
			for _, cn := range p0.Nets[ni].Conns {
				if cn.Out {
					hasDriver = true
				}
			}
			if hasDriver {
				p0.Nets[ni].Ext = hypergraph.ExtOut
				break
			}
		}
	}
	// Keep the summary row consistent so the IOB accounting check is
	// the one that fires.
	res.Summary.Parts[0].Terminals = p0.NumTerminals()
	if err := Partition(g, res); err == nil {
		t.Fatal("expected IOB accounting failure")
	}
}
