package anneal

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

func testGraph(t testing.TB, cells int, seed int64) *hypergraph.Graph {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "sa", Cells: cells, PrimaryIn: 10, PrimaryOut: 6,
		Seed: seed, Clustering: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunImprovesCut(t *testing.T) {
	g := testGraph(t, 150, 1)
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	st, err := replication.NewState(g, fm.RandomAssign(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	before := st.CutSize()
	res, err := Run(st, Config{MinArea: minA, MaxArea: maxA, Threshold: NoReplication, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut > before {
		t.Fatalf("annealing worsened cut: %d -> %d", before, res.Cut)
	}
	if res.Cut != st.CutSize() {
		t.Fatal("result/state cut mismatch")
	}
	if res.Accepted == 0 || res.Proposed == 0 {
		t.Fatalf("no moves: %+v", res)
	}
	for b := replication.Block(0); b < 2; b++ {
		if a := st.Area(b); a < minA[b] || a > maxA[b] {
			t.Fatalf("block %d area %d outside bounds", b, a)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithReplication(t *testing.T) {
	g := testGraph(t, 150, 2)
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	maxA = [2]int{maxA[0] * 11 / 10, maxA[1] * 11 / 10}
	st, err := replication.NewState(g, fm.RandomAssign(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(st, Config{MinArea: minA, MaxArea: maxA, Threshold: 0, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// Replication eligibility must be respected.
	for ci := 0; ci < g.NumCells(); ci++ {
		c := hypergraph.CellID(ci)
		if st.IsReplicated(c) && !st.CanReplicate(c, 0) {
			t.Fatalf("ineligible cell %d replicated", ci)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	g := testGraph(t, 30, 3)
	st, _ := replication.NewState(g, fm.RandomAssign(g, 3))
	if _, err := Run(st, Config{}); err == nil {
		t.Fatal("zero MaxArea should fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	g := testGraph(t, 100, 4)
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	run := func() int {
		st, _ := replication.NewState(g, fm.RandomAssign(g, 4))
		res, err := Run(st, Config{MinArea: minA, MaxArea: maxA, Threshold: 0, Seed: 9, Sweeps: 30})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cut
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

// FM converges to cuts at least as good as a time-boxed annealer on
// these structured circuits (the classic observation motivating FM's
// dominance in partitioning practice). Compared in aggregate.
func TestFMBeatsAnnealingAggregate(t *testing.T) {
	var fmSum, saSum int
	for seed := int64(0); seed < 3; seed++ {
		g := testGraph(t, 200, 10+seed)
		minA, maxA := fm.Balance(g.TotalArea(), 0.10)

		stFM, err := replication.NewState(g, fm.RandomAssign(g, seed))
		if err != nil {
			t.Fatal(err)
		}
		resFM, err := fm.Run(stFM, fm.Config{MinArea: minA, MaxArea: maxA, Threshold: fm.NoReplication, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		stSA, err := replication.NewState(g, fm.RandomAssign(g, seed))
		if err != nil {
			t.Fatal(err)
		}
		resSA, err := Run(stSA, Config{MinArea: minA, MaxArea: maxA, Threshold: NoReplication, Seed: seed, Sweeps: 60})
		if err != nil {
			t.Fatal(err)
		}
		fmSum += resFM.Cut
		saSum += resSA.Cut
	}
	t.Logf("aggregate cut: FM=%d annealing=%d", fmSum, saSum)
	if fmSum > saSum*3/2 {
		t.Fatalf("FM dramatically worse than annealing: %d vs %d", fmSum, saSum)
	}
}
