// Package anneal implements a simulated-annealing bipartitioner over
// the same replication.State move universe as the FM engine — an
// independent metaheuristic baseline for cross-checking the paper's
// deterministic heuristic (the classic FM-vs-annealing comparison of
// the partitioning literature). It is not part of the paper's method;
// the repository uses it in ablation benchmarks only.
package anneal

import (
	"fmt"
	"math"
	"math/rand"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

// Config controls one annealing run.
type Config struct {
	MinArea [2]int
	MaxArea [2]int
	// Threshold is the replication potential threshold T; NoReplication
	// (-1) restricts the move universe to single moves.
	Threshold int
	// InitialTemp is the starting temperature in cut units (default 8).
	InitialTemp float64
	// Cooling is the geometric cooling factor per sweep (default 0.95).
	Cooling float64
	// Sweeps caps the number of temperature steps (default 120).
	Sweeps int
	// MovesPerSweep defaults to 4× the cell count.
	MovesPerSweep int
	Seed          int64
}

// NoReplication disables replication moves.
const NoReplication = -1

func (c Config) withDefaults(cells int) Config {
	if c.InitialTemp == 0 {
		c.InitialTemp = 8
	}
	if c.Cooling == 0 {
		c.Cooling = 0.95
	}
	if c.Sweeps == 0 {
		c.Sweeps = 120
	}
	if c.MovesPerSweep == 0 {
		c.MovesPerSweep = 4 * cells
	}
	return c
}

// Result summarizes a run.
type Result struct {
	Cut      int
	Accepted int
	Proposed int
}

// Run anneals the state in place: random moves from the unified move
// universe are accepted per the Metropolis criterion on the cut gain,
// subject to the area bounds. The best visited configuration is
// restored at the end.
func Run(st *replication.State, cfg Config) (Result, error) {
	g := st.Graph()
	cfg = cfg.withDefaults(g.NumCells())
	if cfg.MaxArea[0] <= 0 || cfg.MaxArea[1] <= 0 {
		return Result{}, fmt.Errorf("anneal: MaxArea must be positive, got %v", cfg.MaxArea)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	res := Result{}
	bestCut := st.CutSize()
	bestTok := st.Mark()
	temp := cfg.InitialTemp
	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		for m := 0; m < cfg.MovesPerSweep; m++ {
			mv := randomMove(r, st, cfg.Threshold)
			gain, err := st.Gain(mv)
			if err != nil {
				continue
			}
			if !feasible(st, cfg, mv) {
				continue
			}
			res.Proposed++
			if gain < 0 && r.Float64() >= math.Exp(float64(gain)/temp) {
				continue
			}
			if _, err := st.Apply(mv); err != nil {
				return res, err
			}
			res.Accepted++
			if cut := st.CutSize(); cut < bestCut {
				bestCut = cut
				bestTok = st.Mark()
			}
		}
		temp *= cfg.Cooling
		if temp < 0.05 {
			break
		}
	}
	if err := st.Undo(bestTok); err != nil {
		return res, err
	}
	res.Cut = st.CutSize()
	return res, nil
}

func feasible(st *replication.State, cfg Config, mv replication.Move) bool {
	d0, d1, err := st.AreaDelta(mv)
	if err != nil {
		return false
	}
	a0 := st.Area(0) + d0
	a1 := st.Area(1) + d1
	return a0 >= cfg.MinArea[0] && a0 <= cfg.MaxArea[0] &&
		a1 >= cfg.MinArea[1] && a1 <= cfg.MaxArea[1]
}

func randomMove(r *rand.Rand, st *replication.State, threshold int) replication.Move {
	c := hypergraph.CellID(r.Intn(st.Graph().NumCells()))
	if st.IsReplicated(c) {
		return replication.Move{Cell: c, Kind: replication.Unreplicate, To: replication.Block(r.Intn(2))}
	}
	if threshold != NoReplication && st.CanReplicate(c, threshold) && r.Intn(3) == 0 {
		splits := st.Splits(c)
		return replication.Move{Cell: c, Kind: replication.Replicate, Carry: splits[r.Intn(len(splits))]}
	}
	return replication.Move{Cell: c, Kind: replication.SingleMove}
}
