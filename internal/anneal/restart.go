package anneal

import (
	"context"
	"errors"
	"fmt"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
	"fpgapart/internal/search"
)

// Restarts configures a multi-start annealing portfolio: independent
// runs from the same initial assignment, differing only in their seed
// stream, with the lowest-cut run winning. The portfolio is hosted on
// the internal/search orchestrator, so it shares the partitioner's
// concurrency and cancellation story: results are deterministic for a
// fixed seed regardless of worker count, and cancellation is observed
// only at restart boundaries (a completed portfolio is bit-identical
// whether or not a deadline was armed).
type Restarts struct {
	Config
	// Starts is the number of independent restarts (default 4).
	Starts int
	// Workers bounds parallelism (default: min(GOMAXPROCS, Starts)).
	Workers int
	// MaxStale stops early after this many consecutive non-improving
	// restarts (0 = run all Starts).
	MaxStale int
}

// BestRestart is the winning run of a restart portfolio.
type BestRestart struct {
	Result
	// Start is the index of the winning restart; its seed was
	// Config.Seed + Start*restartStride.
	Start int
	// State is the winning final state (best configuration restored).
	State *replication.State
}

// restartStride separates the restarts' seed streams; a large prime
// keeps the per-restart generators uncorrelated.
const restartStride = 7919

// RunRestarts anneals a portfolio of Starts independent runs of the
// initial assignment and returns the lowest-cut outcome (ties broken
// toward the earliest restart index). Restart 0 reproduces
// Run(NewState(g, assign), cfg) exactly.
func RunRestarts(ctx context.Context, g *hypergraph.Graph, assign []replication.Block, cfg Restarts) (BestRestart, error) {
	if cfg.Starts == 0 {
		cfg.Starts = 4
	}
	if cfg.Starts < 0 {
		return BestRestart{}, fmt.Errorf("anneal: Starts must be non-negative, got %d", cfg.Starts)
	}
	drv := search.Driver[BestRestart]{
		NewAttempt: func() search.AttemptFunc[BestRestart] {
			return func(ctx context.Context, start int, seed int64) (BestRestart, error) {
				// Deterministic cancellation checkpoint: the budget is
				// observed only between restarts, never mid-anneal.
				if err := ctx.Err(); err != nil {
					return BestRestart{}, err
				}
				st, err := replication.NewState(g, assign)
				if err != nil {
					return BestRestart{}, err
				}
				c := cfg.Config
				c.Seed = seed
				res, err := Run(st, c)
				if err != nil {
					return BestRestart{}, err
				}
				return BestRestart{Result: res, Start: start, State: st}, nil
			}
		},
		Better: func(a, b BestRestart) bool { return a.Cut < b.Cut },
		// Annealing failures are configuration errors, not randomness:
		// abort instead of quietly dropping restarts.
		Fatal: func(error) bool { return true },
	}
	out, err := search.Run(ctx, search.Options{
		Attempts:   cfg.Starts,
		Workers:    cfg.Workers,
		Seed:       cfg.Seed,
		SeedStride: restartStride,
		MaxStale:   cfg.MaxStale,
	}, drv)
	if err != nil {
		var budget *search.ErrBudget
		if out.Found && errors.As(err, &budget) {
			// Budget-truncated portfolio with a winner in hand: return it.
			return out.Best, nil
		}
		var ae *search.AttemptError
		if errors.As(err, &ae) {
			return BestRestart{}, ae.Err
		}
		return BestRestart{}, err
	}
	return out.Best, nil
}
