package anneal

import (
	"context"
	"testing"

	"fpgapart/internal/fm"
	"fpgapart/internal/replication"
)

func TestRunRestartsNoWorseThanFirstStart(t *testing.T) {
	g := testGraph(t, 120, 7)
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	assign := fm.RandomAssign(g, 7)
	cfg := Config{MinArea: minA, MaxArea: maxA, Threshold: NoReplication, Seed: 7, Sweeps: 30}

	st, err := replication.NewState(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, err := RunRestarts(context.Background(), g, assign, Restarts{Config: cfg, Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Restart 0 reproduces the single run, so the portfolio best can
	// only match or beat it.
	if best.Cut > single.Cut {
		t.Fatalf("portfolio best %d worse than single run %d", best.Cut, single.Cut)
	}
	if best.State == nil || best.Cut != best.State.CutSize() {
		t.Fatalf("winning state inconsistent with result: %+v", best)
	}
	if err := best.State.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRestartsDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(t, 100, 8)
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	assign := fm.RandomAssign(g, 8)
	cfg := Config{MinArea: minA, MaxArea: maxA, Threshold: 0, Seed: 3, Sweeps: 20}
	run := func(workers int) (int, int) {
		best, err := RunRestarts(context.Background(), g, assign, Restarts{Config: cfg, Starts: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return best.Cut, best.Start
	}
	c1, s1 := run(1)
	c4, s4 := run(4)
	if c1 != c4 || s1 != s4 {
		t.Fatalf("worker count changed the winner: (%d,%d) vs (%d,%d)", c1, s1, c4, s4)
	}
}

func TestRunRestartsCancelledUpFront(t *testing.T) {
	g := testGraph(t, 60, 9)
	minA, maxA := fm.Balance(g.TotalArea(), 0.10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunRestarts(ctx, g, fm.RandomAssign(g, 9), Restarts{
		Config: Config{MinArea: minA, MaxArea: maxA, Threshold: NoReplication, Sweeps: 5},
		Starts: 3,
	})
	if err == nil {
		t.Fatal("pre-cancelled portfolio with no winner should fail")
	}
}
