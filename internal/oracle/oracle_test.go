package oracle

import (
	"math/rand"
	"testing"

	"fpgapart/internal/hypergraph"
)

// chain builds pi -> u0 -> u1 -> ... -> u{n-1} -> po, a path whose
// optimal bipartition under loose bounds cuts exactly one net.
func chain(t testing.TB, n int) *hypergraph.Graph {
	t.Helper()
	b := hypergraph.NewBuilder("chain")
	prev := b.InputNet("pi")
	for i := 0; i < n; i++ {
		var out hypergraph.NetID
		if i == n-1 {
			out = b.OutputNet("po")
		} else {
			out = b.Net("")
		}
		b.AddCell(hypergraph.CellSpec{
			Inputs:  []hypergraph.NetID{prev},
			Outputs: []hypergraph.NetID{out},
		})
		prev = out
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// star builds one driver cell fanning out to n sink cells: any split
// separating sinks from the driver cuts exactly the shared net.
func star(t testing.TB, n int) *hypergraph.Graph {
	t.Helper()
	b := hypergraph.NewBuilder("star")
	pi := b.InputNet("pi")
	hub := b.Net("hub")
	b.AddCell(hypergraph.CellSpec{Name: "drv", Inputs: []hypergraph.NetID{pi}, Outputs: []hypergraph.NetID{hub}})
	for i := 0; i < n; i++ {
		po := b.OutputNet("")
		b.AddCell(hypergraph.CellSpec{Inputs: []hypergraph.NetID{hub}, Outputs: []hypergraph.NetID{po}})
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// twinCell builds a 2-output cell with disjoint input cones (ψ > 0):
// splitting it across the blocks frees both cones.
func twinCone(t testing.TB) *hypergraph.Graph {
	t.Helper()
	b := hypergraph.NewBuilder("twincone")
	a := b.InputNet("a")
	c := b.InputNet("c")
	x := b.Net("x")
	y := b.Net("y")
	pox := b.OutputNet("pox")
	poy := b.OutputNet("poy")
	// The splittable cell: output x depends only on a, output y only on c.
	b.AddCell(hypergraph.CellSpec{
		Name:    "split",
		Inputs:  []hypergraph.NetID{a, c},
		Outputs: []hypergraph.NetID{x, y},
		DepBits: [][]int{{1, 0}, {0, 1}},
	})
	b.AddCell(hypergraph.CellSpec{Name: "sx", Inputs: []hypergraph.NetID{x}, Outputs: []hypergraph.NetID{pox}})
	b.AddCell(hypergraph.CellSpec{Name: "sy", Inputs: []hypergraph.NetID{y}, Outputs: []hypergraph.NetID{poy}})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func loose(g *hypergraph.Graph) Config {
	return Config{MinArea: [2]int{1, 1}, MaxArea: [2]int{g.TotalArea(), g.TotalArea()}}
}

func TestChainOptimalCutIsOne(t *testing.T) {
	g := chain(t, 6)
	res, err := MinCut(g, loose(g))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 {
		t.Fatalf("chain optimal cut = %d, want 1", res.Cut)
	}
	if got, err := CutOf(g, res.Own, false); err != nil || got != res.Cut {
		t.Fatalf("CutOf = %d (%v), want %d", got, err, res.Cut)
	}
}

func TestChainBalancedStillOne(t *testing.T) {
	g := chain(t, 8)
	cfg := loose(g)
	cfg.MinArea = [2]int{4, 4}
	cfg.MaxArea = [2]int{4, 4}
	res, err := MinCut(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 {
		t.Fatalf("balanced chain cut = %d, want 1", res.Cut)
	}
	if a := AreaOf(g, res.Own); a != [2]int{4, 4} {
		t.Fatalf("areas %v, want [4 4]", a)
	}
}

func TestStarOptimalCutIsOne(t *testing.T) {
	g := star(t, 5)
	res, err := MinCut(g, loose(g))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 {
		t.Fatalf("star optimal cut = %d, want 1 (hub net)", res.Cut)
	}
}

// The ψ>0 cell: without replication a balanced split of the two cones
// cuts an internal net; with replication the cell splits and the cut
// drops to zero (each block is then a self-contained cone).
func TestReplicationSplitsDisjointCones(t *testing.T) {
	g := twinCone(t)
	cfg := loose(g)
	cfg.MinArea = [2]int{1, 1}
	plain, err := MinCut(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cut < 1 {
		t.Fatalf("plain cut = %d, want >= 1", plain.Cut)
	}
	cfg.Replication = true
	repl, err := MinCut(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repl.Cut != 0 {
		t.Fatalf("replicated cut = %d, want 0", repl.Cut)
	}
	if Replicated(repl.Own) != 1 {
		t.Fatalf("replicated cells = %d, want 1", Replicated(repl.Own))
	}
	if got, err := CutOf(g, repl.Own, false); err != nil || got != 0 {
		t.Fatalf("CutOf = %d (%v), want 0", got, err)
	}
}

func TestPinExternalEqualsTerminalObjective(t *testing.T) {
	// On the chain with pinning, placing everything in block 1 gives
	// t_P0 = 0 but violates MinArea[0]; with MinArea 1 per block the
	// best carve takes a chain end, using 2 block-0 IOB nets at the pi
	// end (pi + the cut net) or 2 at the po end.
	g := chain(t, 6)
	cfg := loose(g)
	cfg.PinExternal = true
	res, err := MinCut(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 2 {
		t.Fatalf("pinned chain t_P0 = %d, want 2", res.Cut)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	g := chain(t, 4)
	cfg := Config{MinArea: [2]int{3, 3}, MaxArea: [2]int{4, 4}}
	if _, err := MinCut(g, cfg); err == nil {
		t.Fatal("want infeasibility error: 4 cells cannot fill 3+3 without replication")
	}
}

func TestSizeGuards(t *testing.T) {
	g := chain(t, 14)
	if _, err := MinCut(g, loose(g)); err == nil {
		t.Fatal("want size-limit error above DefaultMaxCells")
	}
	cfg := loose(g)
	cfg.MaxCells = 14
	if _, err := MinCut(g, cfg); err != nil {
		t.Fatalf("MaxCells override rejected: %v", err)
	}
	cfg.MaxStates = 3
	if _, err := MinCut(g, cfg); err == nil {
		t.Fatal("want state-budget error")
	}
}

// TestCutOfAgreesOnRandomConfigs cross-checks the incremental search
// bookkeeping against the from-scratch evaluator on random ownership
// configurations of corpus circuits.
func TestCutOfAgreesOnRandomConfigs(t *testing.T) {
	corpus, err := Corpus(CorpusParams{Cases: 12})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for gi, g := range corpus {
		for _, repl := range []bool{false, true} {
			cfg := loose(g)
			cfg.Replication = repl
			res, err := MinCut(g, cfg)
			if err != nil {
				t.Fatalf("case %d: %v", gi, err)
			}
			if got, err := CutOf(g, res.Own, false); err != nil || got != res.Cut {
				t.Fatalf("case %d repl=%v: search cut %d, CutOf %d (%v)", gi, repl, res.Cut, got, err)
			}
			// And a handful of random configurations must never beat
			// the reported optimum.
			for trial := 0; trial < 32; trial++ {
				own := make([][2]uint32, g.NumCells())
				for ci := range g.Cells {
					all := uint32(1)<<uint(len(g.Cells[ci].Outputs)) - 1
					var m0 uint32
					if repl {
						m0 = uint32(r.Intn(int(all) + 1))
					} else if r.Intn(2) == 0 {
						m0 = all
					}
					own[ci] = [2]uint32{m0, all &^ m0}
				}
				cut, err := CutOf(g, own, false)
				if err != nil {
					t.Fatal(err)
				}
				area := AreaOf(g, own)
				if area[0] < 1 || area[1] < 1 {
					continue // outside the bounds the oracle searched
				}
				if cut < res.Cut {
					t.Fatalf("case %d repl=%v: random config cut %d beats oracle %d", gi, repl, cut, res.Cut)
				}
			}
		}
	}
}

func TestCorpusDeterministicAndSized(t *testing.T) {
	a, err := Corpus(CorpusParams{Cases: 40})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpus(CorpusParams{Cases: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("corpus sizes %d/%d, want 40", len(a), len(b))
	}
	for i := range a {
		if a[i].NumCells() != b[i].NumCells() || a[i].NumNets() != b[i].NumNets() {
			t.Fatalf("case %d not deterministic", i)
		}
		if a[i].NumCells() > 10 {
			t.Fatalf("case %d has %d cells, corpus cap is 10", i, a[i].NumCells())
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("case %d invalid: %v", i, err)
		}
	}
}
