// Package oracle exhaustively enumerates optimal bipartitions of tiny
// circuits — the ground truth the heuristic engines (fm, replication,
// kway) are differentially tested against.
//
// The search space mirrors internal/replication's state model exactly:
// each cell's configuration is an ownership pair (own0, own1) of output
// masks with own0 | own1 = all and own0 & own1 = 0. Without functional
// replication a cell is entirely in one block (2 configurations); with
// replication every proper split of the output set is legal (2^m
// configurations for an m-output cell), and a copy carrying output set
// S connects exactly the output nets of S and the input nets adjacent
// to S (the functional replication rule of Kužnar et al., DAC'94,
// Sec. III). The cut is the number of nets with active connections in
// both blocks; with PinExternal the cut equals t_P0, the carved
// block's terminal demand (see replication.NewStatePinned).
//
// MinCut runs a depth-first branch-and-bound over cell configurations:
// activity counts only grow along a branch, so the running cut is a
// monotone lower bound and block areas admit suffix-sum feasibility
// pruning. Circuits up to ~10 cells solve in well under a second,
// which is the scale the differential corpus uses.
package oracle

import (
	"fmt"
	"math"
	"sort"

	"fpgapart/internal/hypergraph"
)

// DefaultMaxCells bounds the instance size MinCut accepts unless the
// caller raises Config.MaxCells explicitly.
const DefaultMaxCells = 12

// defaultMaxStates caps the enumeration-tree size estimate.
const defaultMaxStates = int64(200_000_000)

// Config controls one exhaustive search.
type Config struct {
	// MinArea/MaxArea bound the active cell area of each block, exactly
	// as fm.Config does (replicated cells count in both blocks). A zero
	// MaxArea entry means unbounded.
	MinArea [2]int
	MaxArea [2]int
	// Replication admits every legal output split per cell; otherwise
	// cells stay whole and the search is the classic exhaustive min-cut
	// bipartition.
	Replication bool
	// PinExternal places a virtual connection on every external net in
	// block 1, making the cut equal t_P0 (the objective of pinned carve
	// runs; see replication.NewStatePinned).
	PinExternal bool
	// MaxCells overrides DefaultMaxCells.
	MaxCells int
	// MaxStates caps the upper-bound estimate of enumeration leaves
	// (default 2e8); instances estimated above it are rejected rather
	// than silently slow.
	MaxStates int64
}

// Result is the exhaustive optimum.
type Result struct {
	// Cut is the minimum cut over all feasible configurations.
	Cut int
	// Own is one optimal configuration: per source cell, the output
	// masks active in block 0 and block 1.
	Own [][2]uint32
	// Nodes counts search-tree nodes visited (diagnostics).
	Nodes int64
}

// MinCut exhaustively finds the optimal bipartition of g under cfg.
// It returns an error when the instance is too large or no
// configuration satisfies the area bounds.
func MinCut(g *hypergraph.Graph, cfg Config) (Result, error) {
	n := g.NumCells()
	if n == 0 {
		return Result{}, fmt.Errorf("oracle: empty circuit")
	}
	maxCells := cfg.MaxCells
	if maxCells == 0 {
		maxCells = DefaultMaxCells
	}
	if n > maxCells {
		return Result{}, fmt.Errorf("oracle: %d cells exceeds limit %d", n, maxCells)
	}
	for b := 0; b < 2; b++ {
		if cfg.MaxArea[b] == 0 {
			cfg.MaxArea[b] = g.TotalArea()
		}
	}
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = defaultMaxStates
	}

	s, err := newSearch(g, cfg)
	if err != nil {
		return Result{}, err
	}
	if est := s.estimateLeaves(); est > maxStates {
		return Result{}, fmt.Errorf("oracle: ~%d configurations exceed the %d-state budget", est, maxStates)
	}
	s.dfs(0)
	if s.bestCut == math.MaxInt {
		return Result{}, fmt.Errorf("oracle: no configuration satisfies area bounds [%v,%v]", cfg.MinArea, cfg.MaxArea)
	}
	return Result{Cut: s.bestCut, Own: s.bestOwn, Nodes: s.nodes}, nil
}

// cellPlan precomputes one cell's enumeration data.
type cellPlan struct {
	id      hypergraph.CellID
	area    int
	all     uint32
	col     []uint32 // per input pin: mask of outputs depending on it
	configs [][2]uint32
}

type search struct {
	g     *hypergraph.Graph
	cfg   Config
	plans []cellPlan
	// cnt is the per-net active connection count per block; cut is the
	// number of nets active in both.
	cnt  [][2]int32
	cut  int
	area [2]int
	// remArea[i] is the total area of cells i..n-1 — the most any block
	// can still gain.
	remArea []int

	own     [][2]uint32 // current configuration, indexed by source cell id
	bestCut int
	bestOwn [][2]uint32
	nodes   int64
}

func newSearch(g *hypergraph.Graph, cfg Config) (*search, error) {
	s := &search{
		g:       g,
		cfg:     cfg,
		cnt:     make([][2]int32, g.NumNets()),
		own:     make([][2]uint32, g.NumCells()),
		bestCut: math.MaxInt,
	}
	if cfg.PinExternal {
		for ni := range g.Nets {
			if g.Nets[ni].Ext != hypergraph.Internal {
				s.cnt[ni][1]++
			}
		}
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		m := len(c.Outputs)
		if m == 0 {
			return nil, fmt.Errorf("oracle: cell %q has no outputs", c.Name)
		}
		if m > 16 {
			return nil, fmt.Errorf("oracle: cell %q has %d outputs, enumeration limit 16", c.Name, m)
		}
		all := uint32(1)<<uint(m) - 1
		p := cellPlan{id: hypergraph.CellID(ci), area: c.Area, all: all}
		p.col = make([]uint32, len(c.Inputs))
		for i := 0; i < m; i++ {
			for j := range c.Inputs {
				if c.Dep[i].Get(j) {
					p.col[j] |= 1 << uint(i)
				}
			}
		}
		if cfg.Replication {
			p.configs = make([][2]uint32, 0, 1<<uint(m))
			// Unreplicated placements first: the best solutions usually
			// replicate few cells, so finding a good incumbent early
			// tightens the bound before the splits are explored.
			p.configs = append(p.configs, [2]uint32{all, 0}, [2]uint32{0, all})
			for m0 := uint32(1); m0 < all; m0++ {
				p.configs = append(p.configs, [2]uint32{m0, all &^ m0})
			}
		} else {
			p.configs = [][2]uint32{{all, 0}, {0, all}}
		}
		s.plans = append(s.plans, p)
	}
	// Order cells by descending connectivity: high-degree cells decide
	// many nets, so placing them first makes the cut bound bite early.
	sort.SliceStable(s.plans, func(i, j int) bool {
		return len(g.CellNets(s.plans[i].id)) > len(g.CellNets(s.plans[j].id))
	})
	s.remArea = make([]int, len(s.plans)+1)
	for i := len(s.plans) - 1; i >= 0; i-- {
		s.remArea[i] = s.remArea[i+1] + s.plans[i].area
	}
	return s, nil
}

// estimateLeaves returns the product of per-cell configuration counts,
// saturating at math.MaxInt64.
func (s *search) estimateLeaves() int64 {
	est := int64(1)
	for _, p := range s.plans {
		est *= int64(len(p.configs))
		if est < 0 || est > math.MaxInt64/64 {
			return math.MaxInt64
		}
	}
	return est
}

// inc activates one connection of net n in block b, updating the cut.
func (s *search) inc(n hypergraph.NetID, b int) {
	if s.cnt[n][b] == 0 && s.cnt[n][1-b] > 0 {
		s.cut++
	}
	s.cnt[n][b]++
}

// dec undoes inc.
func (s *search) dec(n hypergraph.NetID, b int) {
	s.cnt[n][b]--
	if s.cnt[n][b] == 0 && s.cnt[n][1-b] > 0 {
		s.cut--
	}
}

// apply activates cell p's connections for ownership own; undo reverses
// it. A copy in block b connects its owned output nets and every input
// net adjacent (via col) to an owned output.
func (s *search) apply(p *cellPlan, own [2]uint32) {
	c := &s.g.Cells[p.id]
	for b := 0; b < 2; b++ {
		mask := own[b]
		if mask == 0 {
			continue
		}
		s.area[b] += p.area
		for pi, net := range c.Outputs {
			if mask&(1<<uint(pi)) != 0 {
				s.inc(net, b)
			}
		}
		for pi, net := range c.Inputs {
			if net != hypergraph.NilNet && mask&p.col[pi] != 0 {
				s.inc(net, b)
			}
		}
	}
}

func (s *search) undo(p *cellPlan, own [2]uint32) {
	c := &s.g.Cells[p.id]
	for b := 0; b < 2; b++ {
		mask := own[b]
		if mask == 0 {
			continue
		}
		s.area[b] -= p.area
		for pi, net := range c.Outputs {
			if mask&(1<<uint(pi)) != 0 {
				s.dec(net, b)
			}
		}
		for pi, net := range c.Inputs {
			if net != hypergraph.NilNet && mask&p.col[pi] != 0 {
				s.dec(net, b)
			}
		}
	}
}

func (s *search) dfs(i int) {
	s.nodes++
	if s.cut >= s.bestCut {
		return // activity only grows: the cut cannot recover
	}
	if i == len(s.plans) {
		if s.area[0] < s.cfg.MinArea[0] || s.area[1] < s.cfg.MinArea[1] {
			return
		}
		s.bestCut = s.cut
		s.bestOwn = make([][2]uint32, len(s.own))
		copy(s.bestOwn, s.own)
		return
	}
	p := &s.plans[i]
	for _, cfgOwn := range p.configs {
		// Area pruning: max bounds are monotone along the branch; min
		// bounds use the suffix sum of what cells i+1.. can still add.
		a0, a1 := s.area[0], s.area[1]
		if cfgOwn[0] != 0 {
			a0 += p.area
		}
		if cfgOwn[1] != 0 {
			a1 += p.area
		}
		if a0 > s.cfg.MaxArea[0] || a1 > s.cfg.MaxArea[1] {
			continue
		}
		rem := s.remArea[i+1]
		if a0+rem < s.cfg.MinArea[0] || a1+rem < s.cfg.MinArea[1] {
			continue
		}
		s.apply(p, cfgOwn)
		s.own[p.id] = cfgOwn
		s.dfs(i + 1)
		s.own[p.id] = [2]uint32{}
		s.undo(p, cfgOwn)
	}
}

// CutOf evaluates the cut of an explicit ownership configuration
// without searching — the reference evaluation tests use to cross-check
// incremental bookkeeping (both the oracle's own and replication.
// State's).
func CutOf(g *hypergraph.Graph, own [][2]uint32, pinExternal bool) (int, error) {
	if len(own) != g.NumCells() {
		return 0, fmt.Errorf("oracle: %d ownership pairs for %d cells", len(own), g.NumCells())
	}
	cnt := make([][2]int32, g.NumNets())
	if pinExternal {
		for ni := range g.Nets {
			if g.Nets[ni].Ext != hypergraph.Internal {
				cnt[ni][1]++
			}
		}
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		all := uint32(1)<<uint(len(c.Outputs)) - 1
		if own[ci][0]&own[ci][1] != 0 || own[ci][0]|own[ci][1] != all {
			return 0, fmt.Errorf("oracle: cell %q has invalid ownership %b/%b", c.Name, own[ci][0], own[ci][1])
		}
		for b := 0; b < 2; b++ {
			mask := own[ci][b]
			if mask == 0 {
				continue
			}
			for pi, net := range c.Outputs {
				if mask&(1<<uint(pi)) != 0 {
					cnt[net][b]++
				}
			}
			for pi, net := range c.Inputs {
				if net == hypergraph.NilNet {
					continue
				}
				var col uint32
				for oi := range c.Outputs {
					if c.Dep[oi].Get(pi) {
						col |= 1 << uint(oi)
					}
				}
				if mask&col != 0 {
					cnt[net][b]++
				}
			}
		}
	}
	cut := 0
	for ni := range cnt {
		if cnt[ni][0] > 0 && cnt[ni][1] > 0 {
			cut++
		}
	}
	return cut, nil
}

// Replicated returns the number of cells an ownership configuration
// splits across both blocks.
func Replicated(own [][2]uint32) int {
	n := 0
	for _, o := range own {
		if o[0] != 0 && o[1] != 0 {
			n++
		}
	}
	return n
}

// AreaOf returns the active area per block of a configuration
// (replicated cells count in both blocks).
func AreaOf(g *hypergraph.Graph, own [][2]uint32) [2]int {
	var area [2]int
	for ci := range g.Cells {
		for b := 0; b < 2; b++ {
			if own[ci][b] != 0 {
				area[b] += g.Cells[ci].Area
			}
		}
	}
	return area
}
