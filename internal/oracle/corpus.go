package oracle

import (
	"fmt"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
)

// CorpusParams shapes the differential-test corpus.
type CorpusParams struct {
	// Cases is the number of circuits (default 200).
	Cases int
	// MaxCells caps the cell count of every member (default 10).
	MaxCells int
	// Seed offsets the deterministic generator seed sequence.
	Seed int64
}

func (p CorpusParams) withDefaults() CorpusParams {
	if p.Cases == 0 {
		p.Cases = 200
	}
	if p.MaxCells == 0 {
		p.MaxCells = 10
	}
	return p
}

// Corpus generates the fixed oracle-scale test corpus: deterministic
// tiny circuits spanning cell counts, primary-I/O widths and
// clustering levels, every one small enough for exhaustive
// enumeration. The same params always yield the same circuits, so
// corpus-wide statistics (e.g. the FM-hits-optimum rate) are stable
// regression anchors.
func Corpus(p CorpusParams) ([]*hypergraph.Graph, error) {
	p = p.withDefaults()
	out := make([]*hypergraph.Graph, 0, p.Cases)
	// The generator treats Cells as a target, not a bound; oversized
	// results are skipped, so the seed stream runs ahead of the corpus
	// index.
	for seed := p.Seed; len(out) < p.Cases; seed++ {
		if seed-p.Seed > int64(64*p.Cases) {
			return nil, fmt.Errorf("oracle: corpus generation stalled after %d seeds", seed-p.Seed)
		}
		i := len(out)
		cells := 4 + i%(p.MaxCells-3) // 4..MaxCells
		g, err := bench.Generate(bench.Params{
			Name:       fmt.Sprintf("oracle%03d", i),
			Cells:      cells,
			PrimaryIn:  3 + i%4,
			PrimaryOut: 1 + i%3,
			Clustering: [3]float64{0, 0.35, 0.7}[i%3],
			Seed:       1000 + seed,
		})
		if err != nil {
			return nil, fmt.Errorf("oracle: corpus case %d: %w", i, err)
		}
		if g.NumCells() < 2 || g.NumCells() > p.MaxCells {
			continue
		}
		out = append(out, g)
	}
	return out, nil
}
