// Differential tests: the heuristic engines (fm, replication.
// OptimalPull, kway) cross-checked against the exhaustive oracle on
// the fixed 200-case corpus, over swept seed/threshold/area-bound
// grids. External test package: the oracle itself must not depend on
// the engines it judges.
package oracle_test

import (
	"errors"
	"testing"

	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/oracle"
	"fpgapart/internal/replication"
)

func corpus(t testing.TB, cases int) []*hypergraph.Graph {
	t.Helper()
	gs, err := oracle.Corpus(oracle.CorpusParams{Cases: cases})
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

// bounds returns matching loose asymmetry-eps area bounds for an
// engine run and the oracle on the same circuit.
func bounds(g *hypergraph.Graph, eps float64) (minA, maxA [2]int) {
	minA, maxA = fm.Balance(g.TotalArea(), eps)
	// Headroom for replication growth, as core.MinCutBipartition allows.
	maxA = [2]int{maxA[0] * 13 / 10, maxA[1] * 13 / 10}
	for b := 0; b < 2; b++ {
		if maxA[b] > g.TotalArea() {
			maxA[b] = g.TotalArea()
		}
		if maxA[b] < minA[b] {
			maxA[b] = minA[b]
		}
	}
	return minA, maxA
}

// TestFMNeverBeatsOracle sweeps the full corpus with several seeds:
// plain FM can never do better than the exhaustive optimum, and must
// hit it on at least 80% of the corpus (acceptance bar; the observed
// rate is logged).
func TestFMNeverBeatsOracle(t *testing.T) {
	gs := corpus(t, 200)
	hits, total := 0, 0
	for gi, g := range gs {
		minA, maxA := bounds(g, 0.30)
		opt, err := oracle.MinCut(g, oracle.Config{MinArea: minA, MaxArea: maxA})
		if err != nil {
			t.Fatalf("case %d (%d cells): %v", gi, g.NumCells(), err)
		}
		_, res, err := fm.Bipartition(g, fm.Options{
			Config: fm.Config{MinArea: minA, MaxArea: maxA, Threshold: fm.NoReplication, Seed: int64(gi)},
			Starts: 4,
		})
		if err != nil {
			t.Fatalf("case %d: fm: %v", gi, err)
		}
		if res.Cut < opt.Cut {
			t.Fatalf("case %d (%s): FM cut %d beats exhaustive optimum %d — one of them is wrong",
				gi, g.Name, res.Cut, opt.Cut)
		}
		total++
		if res.Cut == opt.Cut {
			hits++
		}
	}
	rate := float64(hits) / float64(total)
	t.Logf("FM hit the exhaustive optimum on %d/%d corpus cases (%.1f%%)", hits, total, 100*rate)
	if rate < 0.80 {
		t.Fatalf("FM optimality rate %.1f%% below the 80%% acceptance bar", 100*rate)
	}
}

// TestReplicationMonotonicityOracle proves, case by exhaustive case,
// the paper's premise: admitting functional replication can never
// increase the optimal min-cut (the plain configuration space is a
// subset of the replicated one).
func TestReplicationMonotonicityOracle(t *testing.T) {
	for gi, g := range corpus(t, 200) {
		minA, maxA := bounds(g, 0.30)
		cfg := oracle.Config{MinArea: minA, MaxArea: maxA}
		plain, err := oracle.MinCut(g, cfg)
		if err != nil {
			t.Fatalf("case %d: %v", gi, err)
		}
		cfg.Replication = true
		repl, err := oracle.MinCut(g, cfg)
		if err != nil {
			t.Fatalf("case %d: %v", gi, err)
		}
		if repl.Cut > plain.Cut {
			t.Fatalf("case %d (%s): replication optimum %d worse than plain optimum %d",
				gi, g.Name, repl.Cut, plain.Cut)
		}
	}
}

// TestFMWithReplicationNeverBeatsOracle: FM with every replication
// threshold stays above the exhaustive replication optimum (its move
// universe is a subset of the oracle's configuration space), across a
// seed/threshold sweep.
func TestFMWithReplicationNeverBeatsOracle(t *testing.T) {
	gs := corpus(t, 60)
	for gi, g := range gs {
		minA, maxA := bounds(g, 0.30)
		opt, err := oracle.MinCut(g, oracle.Config{MinArea: minA, MaxArea: maxA, Replication: true})
		if err != nil {
			t.Fatalf("case %d: %v", gi, err)
		}
		for _, threshold := range []int{0, 1, 2} {
			for seed := int64(0); seed < 2; seed++ {
				st, err := replication.NewState(g, fm.RandomAssign(g, seed))
				if err != nil {
					t.Fatal(err)
				}
				res, err := fm.Run(st, fm.Config{
					MinArea: minA, MaxArea: maxA, Threshold: threshold,
					FlowRefine: seed == 1, Seed: seed,
				})
				if err != nil {
					t.Fatalf("case %d T=%d seed=%d: %v", gi, threshold, seed, err)
				}
				if res.Cut < opt.Cut {
					t.Fatalf("case %d T=%d seed=%d: FM+replication cut %d beats exhaustive optimum %d",
						gi, threshold, seed, res.Cut, opt.Cut)
				}
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("case %d T=%d seed=%d: state corrupt after run: %v", gi, threshold, seed, err)
				}
			}
		}
	}
}

// TestOptimalPullPredictsItsOwnCut: when the max-flow pull applies, the
// flow value must equal the realized cut exactly — the flow network is
// supposed to be an exact model of functional replication, not a
// heuristic.
func TestOptimalPullPredictsItsOwnCut(t *testing.T) {
	applied := 0
	for gi, g := range corpus(t, 120) {
		for seed := int64(0); seed < 2; seed++ {
			st, err := replication.NewState(g, fm.RandomAssign(g, seed))
			if err != nil {
				t.Fatal(err)
			}
			for from := replication.Block(0); from < 2; from++ {
				before := st.CutSize()
				res, err := replication.OptimalPull(st, from, replication.PullOptions{
					Radius: -1, MaxExtraArea: -1,
				})
				if err != nil {
					t.Fatalf("case %d seed=%d from=%d: %v", gi, seed, from, err)
				}
				if !res.Applied {
					// With no area cap and unlimited radius the only
					// legitimate reason not to apply is no improvement.
					if res.Predicted < before {
						t.Fatalf("case %d seed=%d from=%d: improvement %d < %d predicted but not applied (no area cap given)",
							gi, seed, from, res.Predicted, before)
					}
					continue
				}
				applied++
				if res.CutAfter != res.Predicted {
					t.Fatalf("case %d seed=%d from=%d: flow predicted cut %d, realized %d",
						gi, seed, from, res.Predicted, res.CutAfter)
				}
				if res.CutAfter >= before {
					t.Fatalf("case %d seed=%d from=%d: pull applied without improvement (%d -> %d)",
						gi, seed, from, before, res.CutAfter)
				}
				if st.CutSize() != res.CutAfter {
					t.Fatalf("case %d seed=%d from=%d: state cut %d, reported %d",
						gi, seed, from, st.CutSize(), res.CutAfter)
				}
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("case %d seed=%d from=%d: state corrupt after pull: %v", gi, seed, from, err)
				}
			}
		}
	}
	if applied == 0 {
		t.Fatal("no pull applied across the whole sweep — the differential exercised nothing")
	}
	t.Logf("optimal pull applied %d times across the sweep", applied)
}

// forcedSplitLibrary returns a homogeneous library whose single device
// holds ~75% of the circuit, forcing k >= 2.
func forcedSplitLibrary(t *testing.T, g *hypergraph.Graph) (library.Library, library.Device) {
	t.Helper()
	total := g.TotalArea()
	clbs := (3*total + 3) / 4
	if clbs < 2 {
		clbs = 2
	}
	dev := library.Device{Name: "oracle-dev", CLBs: clbs, IOBs: 64, Price: 100, LowUtil: 0, HighUtil: 1}
	lib, err := library.Homogeneous(dev)
	if err != nil {
		t.Fatal(err)
	}
	return lib, dev
}

// spanCut counts source nets touching more than one part — the k-way
// cut in the oracle's terms.
func spanCut(res kway.Result) int {
	touch := map[string]int{}
	for _, p := range res.Parts {
		for ni := range p.Graph.Nets {
			touch[p.Graph.Nets[ni].Name]++
		}
	}
	n := 0
	for _, c := range touch {
		if c > 1 {
			n++
		}
	}
	return n
}

// TestKwayNeverBeatsOracle forces two-device solutions on corpus
// circuits and checks each against the exhaustive bound: no feasible
// 2-way solution — replication or not — can cut fewer nets than the
// oracle's optimum under the same device capacity. Runs with in-loop
// verification enabled, so every accepted carve is checked too.
func TestKwayNeverBeatsOracle(t *testing.T) {
	gs := corpus(t, 120)
	compared, solved := 0, 0
	for gi, g := range gs {
		lib, dev := forcedSplitLibrary(t, g)
		for _, threshold := range []int{fm.NoReplication, 0} {
			res, err := kway.Partition(g, kway.Options{
				Library: lib, Threshold: threshold, Solutions: 6, Seed: int64(gi), Verify: true,
			})
			if err != nil {
				var verr *kway.VerificationError
				if errors.As(err, &verr) {
					t.Fatalf("case %d T=%d: in-loop verification failed: %v", gi, threshold, err)
				}
				continue // genuinely infeasible under the forced library is acceptable
			}
			solved++
			if res.Summary.K() != 2 {
				continue
			}
			cfg := oracle.Config{
				MinArea:     [2]int{1, 1},
				MaxArea:     [2]int{dev.MaxCLBs(), dev.MaxCLBs()},
				Replication: threshold != fm.NoReplication,
			}
			opt, err := oracle.MinCut(g, cfg)
			if err != nil {
				t.Fatalf("case %d: oracle: %v", gi, err)
			}
			if got := spanCut(res); got < opt.Cut {
				t.Fatalf("case %d T=%d: kway 2-way solution cuts %d nets, below exhaustive optimum %d",
					gi, threshold, got, opt.Cut)
			}
			compared++
		}
	}
	if solved == 0 || compared == 0 {
		t.Fatalf("differential exercised nothing: %d solved, %d compared", solved, compared)
	}
	t.Logf("kway vs oracle: %d runs solved, %d two-way solutions compared", solved, compared)
}
