package search

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"fpgapart/internal/faultinject"
)

// intDriver folds attempt seeds as solutions: attempt i yields value
// seed+i so every fold is easy to predict, with Better = larger.
func intDriver(observe func(attempt int, sol int64, err error, improved bool)) Driver[int64] {
	return Driver[int64]{
		NewAttempt: func() AttemptFunc[int64] {
			return func(ctx context.Context, attempt int, seed int64) (int64, error) {
				return seed, nil
			}
		},
		Better:  func(a, b int64) bool { return a > b },
		Observe: observe,
	}
}

// TestPanicContainmentInjected: a panic injected into one attempt
// folds as a failed attempt with Stats.Panicked counted; every other
// attempt still folds, deterministically, and the process survives.
func TestPanicContainmentInjected(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.PanicAtAttempt(2))
	var panics []int
	d := intDriver(func(attempt int, sol int64, err error, improved bool) {
		if err != nil {
			var perr *PanicError
			if !errors.As(err, &perr) {
				t.Errorf("attempt %d failed with %T, want *PanicError", attempt, err)
			} else {
				panics = append(panics, attempt)
				if perr.Seed != 100+int64(attempt)*3 {
					t.Errorf("panicked seed %d, want %d", perr.Seed, 100+int64(attempt)*3)
				}
				if perr.Stack == nil || !strings.Contains(perr.Error(), "panicked") {
					t.Errorf("panic error lacks stack/message: %v", perr)
				}
			}
		}
	})
	out, err := Run(context.Background(), Options{Attempts: 5, Seed: 100, SeedStride: 3, Inject: plan}, d)
	if err != nil {
		t.Fatalf("degraded search returned error: %v", err)
	}
	if out.Stats.Panicked != 1 || out.Stats.Failed != 1 || out.Stats.Accepted != 4 {
		t.Fatalf("stats %+v, want 1 panicked / 1 failed / 4 accepted", out.Stats)
	}
	if len(panics) != 1 || panics[0] != 2 {
		t.Fatalf("panicked attempts %v, want [2]", panics)
	}
	// Best = max surviving seed = attempt 4's.
	if !out.Found || out.Best != 100+4*3 {
		t.Fatalf("best %d (found %v), want %d", out.Best, out.Found, 100+4*3)
	}
	if seeds := plan.FiredSeeds(faultinject.KindPanic); len(seeds) != 1 || seeds[0] != 106 {
		t.Fatalf("plan fired seeds %v, want [106]", seeds)
	}
}

// TestPanicContainmentInAttemptBody: panics raised by the attempt
// function itself (not the injector) are contained identically.
func TestPanicContainmentInAttemptBody(t *testing.T) {
	d := Driver[int]{
		NewAttempt: func() AttemptFunc[int] {
			return func(ctx context.Context, attempt int, seed int64) (int, error) {
				if attempt == 1 {
					panic(fmt.Sprintf("boom at %d", attempt))
				}
				return attempt, nil
			}
		},
		Better: func(a, b int) bool { return a > b },
	}
	out, err := Run(context.Background(), Options{Attempts: 3, Seed: 1}, d)
	if err != nil {
		t.Fatalf("contained run errored: %v", err)
	}
	if out.Stats.Panicked != 1 || out.Best != 2 {
		t.Fatalf("stats %+v best %d, want 1 panic and best 2", out.Stats, out.Best)
	}
}

// TestAllAttemptsPanic: every attempt dying still terminates cleanly
// with Found=false and the full prefix folded.
func TestAllAttemptsPanic(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteAttempt, Kind: faultinject.KindPanic,
		Attempt: faultinject.Any, Index: faultinject.Any,
	})
	out, err := Run(context.Background(), Options{Attempts: 4, Seed: 9, Inject: plan}, intDriver(nil))
	if err != nil {
		t.Fatalf("all-panic run errored: %v", err)
	}
	if out.Found || out.Stats.Panicked != 4 || out.Stats.Folded != 4 {
		t.Fatalf("outcome %+v, want 4 folded panics and no solution", out)
	}
}

// TestFatalCanAbortOnPanic: a driver may still classify panics as
// fatal; the search then aborts with *AttemptError at the first
// panicked index.
func TestFatalCanAbortOnPanic(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.PanicAtAttempt(1))
	d := intDriver(nil)
	d.Fatal = func(err error) bool {
		var perr *PanicError
		return errors.As(err, &perr)
	}
	_, err := Run(context.Background(), Options{Attempts: 4, Seed: 1, Inject: plan}, d)
	var ae *AttemptError
	if !errors.As(err, &ae) || ae.Attempt != 1 {
		t.Fatalf("error %v, want *AttemptError at attempt 1", err)
	}
}

// TestSpuriousCancelIsNotBudget: an injected cancellation error wraps
// context.Canceled while the real context is live; the reduction must
// fold it as an ordinary failed attempt, not truncate the prefix as a
// budget stop.
func TestSpuriousCancelIsNotBudget(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.CancelAtAttempt(0))
	var failedAttempts []int
	d := intDriver(func(attempt int, sol int64, err error, improved bool) {
		if err != nil {
			failedAttempts = append(failedAttempts, attempt)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("injected cancel lost its context.Canceled wrap: %v", err)
			}
		}
	})
	out, err := Run(context.Background(), Options{Attempts: 3, Seed: 5, Inject: plan}, d)
	if err != nil {
		t.Fatalf("spurious cancel aborted the search: %v", err)
	}
	if out.Stats.Folded != 3 || out.Stats.Failed != 1 || out.Stats.Panicked != 0 {
		t.Fatalf("stats %+v, want full fold with exactly one failure", out.Stats)
	}
	if len(failedAttempts) != 1 || failedAttempts[0] != 0 {
		t.Fatalf("failed attempts %v, want [0]", failedAttempts)
	}
}

// TestDegradedFoldMatchesHealthyFold: the surviving attempts of a
// degraded run report exactly the same solutions as the same run
// without injection — the panicked index just flips to failed.
func TestDegradedFoldMatchesHealthyFold(t *testing.T) {
	type obs struct {
		attempt int
		sol     int64
		failed  bool
	}
	collect := func(inject *faultinject.Plan) ([]obs, Outcome[int64]) {
		var seen []obs
		d := intDriver(func(attempt int, sol int64, err error, improved bool) {
			seen = append(seen, obs{attempt, sol, err != nil})
		})
		out, err := Run(context.Background(), Options{Attempts: 6, Seed: 40, SeedStride: 7, Workers: 3, Inject: inject}, d)
		if err != nil {
			t.Fatal(err)
		}
		return seen, out
	}
	healthy, _ := collect(nil)
	degraded, out := collect(faultinject.NewPlan(faultinject.PanicAtAttempt(3)))
	if len(healthy) != len(degraded) {
		t.Fatalf("fold lengths differ: %d vs %d", len(healthy), len(degraded))
	}
	for i := range healthy {
		if degraded[i].attempt != healthy[i].attempt {
			t.Fatalf("fold order diverged at %d", i)
		}
		if healthy[i].attempt == 3 {
			if !degraded[i].failed {
				t.Fatal("panicked attempt folded as accepted")
			}
			continue
		}
		if degraded[i] != healthy[i] {
			t.Fatalf("surviving attempt %d diverged: %+v vs %+v", healthy[i].attempt, degraded[i], healthy[i])
		}
	}
	// Best over survivors: attempt 5 carries the largest seed.
	if out.Best != 40+5*7 {
		t.Fatalf("degraded best %d, want %d", out.Best, 40+5*7)
	}
}
