package search

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// valueDriver builds a driver whose attempt i deterministically yields
// vals[i] (or an error for negative entries), minimizing the value.
func valueDriver(vals []int, observe func(int, int, error, bool)) Driver[int] {
	return Driver[int]{
		NewAttempt: func() AttemptFunc[int] {
			return func(_ context.Context, i int, _ int64) (int, error) {
				if vals[i] < 0 {
					return 0, fmt.Errorf("attempt %d failed", i)
				}
				return vals[i], nil
			}
		},
		Better:  func(a, b int) bool { return a < b },
		Observe: observe,
	}
}

func TestRunReducesInIndexOrder(t *testing.T) {
	vals := []int{7, 5, -1, 5, 3, 9}
	for _, workers := range []int{1, 2, 8} {
		var order []int
		out, err := Run(context.Background(), Options{Attempts: len(vals), Workers: workers, Seed: 10},
			valueDriver(vals, func(i, _ int, _ error, _ bool) { order = append(order, i) }))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !out.Found || out.Best != 3 {
			t.Fatalf("workers=%d: best=%v found=%v, want 3", workers, out.Best, out.Found)
		}
		want := Stats{Folded: 6, Accepted: 5, Failed: 1, Improved: 3}
		if out.Stats != want {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, out.Stats, want)
		}
		for i, idx := range order {
			if i != idx {
				t.Fatalf("workers=%d: observation order %v not index order", workers, order)
			}
		}
		if len(order) != len(vals) {
			t.Fatalf("workers=%d: observed %d attempts, want %d", workers, len(order), len(vals))
		}
	}
}

func TestRunSeedStream(t *testing.T) {
	seeds := make([]int64, 5)
	d := Driver[int]{
		NewAttempt: func() AttemptFunc[int] {
			return func(_ context.Context, i int, seed int64) (int, error) {
				seeds[i] = seed
				return 0, nil
			}
		},
	}
	if _, err := Run(context.Background(), Options{Attempts: 5, Seed: 100, SeedStride: 7}, d); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		if want := int64(100 + 7*i); s != want {
			t.Fatalf("attempt %d seed %d, want %d", i, s, want)
		}
	}
}

func TestRunNilBetterKeepsFirst(t *testing.T) {
	out, err := Run(context.Background(), Options{Attempts: 4},
		Driver[int]{NewAttempt: func() AttemptFunc[int] {
			return func(_ context.Context, i int, _ int64) (int, error) { return i + 10, nil }
		}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Best != 10 || out.Stats.Improved != 1 {
		t.Fatalf("best=%d improved=%d, want first accepted (10) once", out.Best, out.Stats.Improved)
	}
}

func TestRunStaleStopDeterministic(t *testing.T) {
	// Best improves at 0 and 4; indices 1..3 are stale. MaxStale=3
	// stops the reduction right after folding index 3, so the improving
	// attempt at 4 must never be folded — on any worker count.
	vals := []int{5, 6, 6, 6, 1, 1, 1, 1}
	for _, workers := range []int{1, 3, 8} {
		var folded int
		out, err := Run(context.Background(),
			Options{Attempts: len(vals), Workers: workers, MaxStale: 3},
			valueDriver(vals, func(int, int, error, bool) { folded++ }))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !out.Stats.StaleStop {
			t.Fatalf("workers=%d: expected stale stop", workers)
		}
		if out.Best != 5 || folded != 4 || out.Stats.Folded != 4 {
			t.Fatalf("workers=%d: best=%d folded=%d, want best=5 folded=4", workers, out.Best, folded)
		}
	}
}

func TestRunFailedAttemptsDoNotCountStale(t *testing.T) {
	vals := []int{5, -1, -1, -1, -1, 4}
	out, err := Run(context.Background(), Options{Attempts: len(vals), MaxStale: 2},
		valueDriver(vals, nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Best != 4 || out.Stats.StaleStop {
		t.Fatalf("best=%d staleStop=%v; failures must not trip the stale stop", out.Best, out.Stats.StaleStop)
	}
}

func TestRunFatalAbortsAtFirstFoldedIndex(t *testing.T) {
	fatalErr := errors.New("invariant violated")
	d := Driver[int]{
		NewAttempt: func() AttemptFunc[int] {
			return func(_ context.Context, i int, _ int64) (int, error) {
				if i == 3 {
					return 0, fatalErr
				}
				return i, nil
			}
		},
		Better: func(a, b int) bool { return a < b },
		Fatal:  func(err error) bool { return errors.Is(err, fatalErr) },
	}
	for _, workers := range []int{1, 4} {
		out, err := Run(context.Background(), Options{Attempts: 10, Workers: workers}, d)
		var ae *AttemptError
		if !errors.As(err, &ae) || ae.Attempt != 3 || !errors.Is(err, fatalErr) {
			t.Fatalf("workers=%d: err=%v, want *AttemptError at 3 wrapping fatalErr", workers, err)
		}
		if out.Stats.Folded != 3 || out.Best != 0 {
			t.Fatalf("workers=%d: folded=%d best=%d, want prefix 0..2", workers, out.Stats.Folded, out.Best)
		}
	}
}

// TestRunBudgetPrefix cancels the search after the first K attempts
// have been folded; attempts past K block until cancellation. The
// outcome must be exactly the reduction over the first K indices, and
// the error a *ErrBudget that still carries the best partial result.
func TestRunBudgetPrefix(t *testing.T) {
	const k = 3
	vals := []int{9, 4, 6, 2, 1, 1, 1, 1}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := Driver[int]{
		NewAttempt: func() AttemptFunc[int] {
			return func(ctx context.Context, i int, _ int64) (int, error) {
				if i >= k {
					<-ctx.Done() // deterministic checkpoint: abandon on cancel
					return 0, fmt.Errorf("attempt %d: %w", i, ctx.Err())
				}
				return vals[i], nil
			}
		},
		Better: func(a, b int) bool { return a < b },
		Observe: func(i, _ int, _ error, _ bool) {
			if i == k-1 {
				cancel()
			}
		},
	}
	out, err := Run(ctx, Options{Attempts: len(vals), Workers: 4}, d)
	var be *ErrBudget
	if !errors.As(err, &be) {
		t.Fatalf("err=%v, want *ErrBudget", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("budget error should wrap context.Canceled, got %v", err)
	}
	if be.Folded != k || out.Stats.Folded != k {
		t.Fatalf("folded=%d, want %d", be.Folded, k)
	}
	if !out.Found || out.Best != 4 {
		t.Fatalf("best=%d found=%v, want best of prefix (4)", out.Best, out.Found)
	}
}

func TestRunDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	d := Driver[int]{
		NewAttempt: func() AttemptFunc[int] {
			return func(ctx context.Context, i int, _ int64) (int, error) {
				if i == 0 {
					return 1, nil
				}
				<-ctx.Done()
				return 0, ctx.Err()
			}
		},
		Better: func(a, b int) bool { return a < b },
	}
	out, err := Run(ctx, Options{Attempts: 6, Workers: 2}, d)
	var be *ErrBudget
	if !errors.As(err, &be) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want *ErrBudget wrapping deadline", err)
	}
	if !out.Found || out.Best != 1 {
		t.Fatalf("best partial result lost: %+v", out)
	}
}

func TestRunValidation(t *testing.T) {
	ok := Driver[int]{NewAttempt: func() AttemptFunc[int] {
		return func(context.Context, int, int64) (int, error) { return 0, nil }
	}}
	for name, run := range map[string]func() (Outcome[int], error){
		"nil attempt": func() (Outcome[int], error) {
			return Run(context.Background(), Options{Attempts: 1}, Driver[int]{})
		},
		"zero attempts": func() (Outcome[int], error) {
			return Run(context.Background(), Options{}, ok)
		},
		"negative attempts": func() (Outcome[int], error) {
			return Run(context.Background(), Options{Attempts: -2}, ok)
		},
		"negative workers": func() (Outcome[int], error) {
			return Run(context.Background(), Options{Attempts: 1, Workers: -1}, ok)
		},
		"negative stale": func() (Outcome[int], error) {
			return Run(context.Background(), Options{Attempts: 1, MaxStale: -1}, ok)
		},
	} {
		if _, err := run(); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

// TestRunWorkerScratchIsolation checks NewAttempt is invoked once per
// worker so closures can own scratch without locking.
func TestRunWorkerScratchIsolation(t *testing.T) {
	var factories atomic.Int32
	var mu sync.Mutex
	perWorker := map[*int]int{}
	d := Driver[int]{
		NewAttempt: func() AttemptFunc[int] {
			factories.Add(1)
			scratch := new(int)
			return func(_ context.Context, i int, _ int64) (int, error) {
				*scratch++
				mu.Lock()
				perWorker[scratch]++
				mu.Unlock()
				return i, nil
			}
		},
	}
	if _, err := Run(context.Background(), Options{Attempts: 20, Workers: 4}, d); err != nil {
		t.Fatal(err)
	}
	if n := factories.Load(); n != 4 {
		t.Fatalf("NewAttempt called %d times, want once per worker (4)", n)
	}
	total := 0
	for scratch, n := range perWorker {
		if *scratch != n {
			t.Fatalf("scratch reuse mismatch: %d uses recorded, counter %d", n, *scratch)
		}
		total += n
	}
	if total != 20 {
		t.Fatalf("attempts across workers = %d, want 20", total)
	}
}

// TestRunCancelRace drives cancellation concurrently with running
// workers; meaningful under -race.
func TestRunCancelRace(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(trial%4) * 100 * time.Microsecond)
			cancel()
		}()
		d := Driver[int]{
			NewAttempt: func() AttemptFunc[int] {
				return func(ctx context.Context, i int, _ int64) (int, error) {
					if err := ctx.Err(); err != nil {
						return 0, err
					}
					time.Sleep(50 * time.Microsecond)
					return i, nil
				}
			},
			Better: func(a, b int) bool { return a < b },
		}
		out, err := Run(ctx, Options{Attempts: 64, Workers: 8}, d)
		var be *ErrBudget
		if err != nil && !errors.As(err, &be) {
			t.Fatalf("unexpected error kind: %v", err)
		}
		if err == nil && out.Stats.Folded != 64 {
			t.Fatalf("clean completion folded %d of 64", out.Stats.Folded)
		}
		cancel()
	}
}
