// Package search is the deterministic multi-start orchestrator shared
// by the partitioning drivers (kway's solution search, expt's
// per-circuit experiment fan-out, anneal's restart loop). It runs
// independent randomized attempts on a bounded worker pool — each
// attempt owns a seed derived only from its index — and reduces the
// outcomes in strict index order, so the result is byte-identical for
// a fixed seed regardless of worker count or completion order.
//
// Budgets cut a search short without sacrificing that contract: a
// wall-clock deadline or cancellation arrives through the
// context.Context handed to every attempt (attempts observe it only at
// their own deterministic checkpoints), a max-stale limit stops the
// reduction after too many consecutive non-improving solutions, and
// the attempt count itself bounds total work. Whenever the search ends
// early, the reduction covers exactly the longest contiguous prefix of
// attempt indices that completed — so a truncated run reports the same
// accepted solutions and the same running best as an unbudgeted run
// folded over that prefix.
//
// Attempts are fault-isolated: a panic inside one attempt is recovered
// by its worker and folded as a failed attempt carrying a typed
// *PanicError (attempt index, seed, panic value, stack), so one
// poisoned attempt degrades the reduction — Stats.Panicked counts the
// casualties — instead of killing the process. Because the reduction
// is index-ordered and a panicked attempt occupies its index exactly
// like any other failed attempt, the surviving attempts fold
// deterministically: a run with attempt i panicked reports the same
// solutions for every other attempt as a healthy run.
package search

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/span"
)

// Options configures one orchestrated search.
type Options struct {
	// Attempts is the total number of randomized attempts (the
	// max-solutions budget). Must be positive.
	Attempts int
	// Workers bounds pool size (default min(GOMAXPROCS, Attempts)).
	Workers int
	// Seed is the base of the per-attempt seed stream: attempt i runs
	// with seed Seed + i*SeedStride.
	Seed int64
	// SeedStride separates consecutive attempt seeds (default 1). Large
	// prime strides keep per-attempt generator streams well apart.
	SeedStride int64
	// MaxStale stops the search after this many consecutive accepted
	// solutions fail to improve the best (0 disables). The stop is
	// evaluated during the index-ordered reduction, so it is
	// deterministic.
	MaxStale int
	// Inject, when non-nil, arms deterministic fault injection: each
	// worker consults the plan at the start of every attempt
	// (faultinject.SiteAttempt). Production runs leave it nil — the
	// cost is one predicted branch per attempt.
	Inject *faultinject.Plan
	// Checkpoint, when non-nil, receives a Progress snapshot after
	// every folded attempt. It is invoked by the single-threaded
	// index-ordered reducer, so snapshots arrive in strict attempt
	// order and callers may persist them without synchronization. A
	// nil hook costs one predicted branch per fold and the enabled
	// path allocates nothing (Progress is a flat value struct).
	Checkpoint func(Progress)
	// Spans, when armed, wraps every attempt in an "attempt" span and
	// hands each attempt its own child scope through the context
	// (span.FromContext), so engine spans nest under their attempt.
	// The disarmed zero value costs one predicted branch per attempt.
	// Spans only read the clock; they never influence the search.
	Spans span.Scope
}

// Progress is an attempt-granular snapshot of the reduction, handed to
// Options.Checkpoint after each folded attempt. Together with the best
// solution of a checkpointed run it is exactly the state a later
// ResumeState needs: because attempt i derives all randomness from
// Seed + i*SeedStride, a search resumed at Folded with the same
// options folds the remaining attempts byte-identically to the
// uninterrupted run.
type Progress struct {
	// Folded is the number of attempts the reduction covers so far.
	Folded int
	// BestAttempt is the attempt index of the incumbent best solution,
	// -1 while no attempt has been accepted.
	BestAttempt int
	// Stale is the current count of consecutive accepted solutions
	// that failed to improve the best (the MaxStale counter).
	Stale int
	// Stats mirrors the reduction statistics at this point.
	Stats Stats
}

// ResumeState seeds the reduction mid-stream: Run starts dispatching
// at attempt Folded and folds from the restored incumbent instead of
// an empty reduction. Because per-attempt seeds depend only on the
// attempt index, a resumed search reports byte-identical solutions
// for every attempt at or past Folded, and the final Outcome equals
// the uninterrupted run's whenever the restored fields match a
// Progress snapshot (plus incumbent) of the same options.
type ResumeState[S any] struct {
	// Folded is the number of attempts already folded; dispatch
	// resumes at this index.
	Folded int
	// BestAttempt is the attempt index that produced Best (-1 = none).
	BestAttempt int
	// Stale restores the MaxStale counter.
	Stale int
	// Stats restores the reduction statistics of the folded prefix.
	Stats Stats
	// Best and Found restore the incumbent best solution.
	Best  S
	Found bool
}

// AttemptFunc runs one randomized attempt. It must derive all
// randomness from seed and observe ctx only at checkpoints where
// abandoning the attempt cannot perturb a completed search.
type AttemptFunc[S any] func(ctx context.Context, attempt int, seed int64) (S, error)

// Driver supplies the search-specific behavior.
type Driver[S any] struct {
	// NewAttempt returns the attempt function for one worker. It is
	// called once per worker goroutine, so the returned closure may own
	// reusable scratch buffers without synchronization.
	NewAttempt func() AttemptFunc[S]
	// Better reports whether a is strictly preferable to b (the
	// lexicographic objective). Nil keeps the first accepted solution.
	Better func(a, b S) bool
	// Observe, when non-nil, is invoked in strict attempt-index order
	// for every attempt folded into the reduction — accepted (err nil)
	// or failed — with improved reporting whether the solution became
	// the new best. Attempts cut off by a budget are never observed.
	Observe func(attempt int, sol S, err error, improved bool)
	// Fatal, when non-nil, classifies attempt errors that must abort
	// the whole search (returned wrapped in *AttemptError) instead of
	// counting as a failed attempt.
	Fatal func(err error) bool
	// Resume, when non-nil, restarts the search from a persisted
	// progress point instead of attempt 0. See ResumeState.
	Resume *ResumeState[S]
}

// Stats summarizes the reduction.
type Stats struct {
	// Folded is the number of attempts included in the reduction (the
	// contiguous completed prefix).
	Folded int
	// Accepted and Failed split the folded attempts by outcome.
	Accepted, Failed int
	// Panicked counts the folded attempts that died to a contained
	// panic (a subset of Failed). A non-zero count marks the reduction
	// as degraded: it still covers the full prefix deterministically,
	// but the panicked indices contributed no solution.
	Panicked int
	// Improved counts how many accepted solutions became the best.
	Improved int
	// StaleStop reports that MaxStale ended the search early.
	StaleStop bool
}

// Outcome is the reduced result of a search.
type Outcome[S any] struct {
	// Best is the best accepted solution under Driver.Better; valid
	// only when Found.
	Best  S
	Found bool
	Stats Stats
}

// ErrBudget reports that the context deadline or cancellation cut the
// search short. The accompanying Outcome still carries the best
// solution of the folded prefix.
type ErrBudget struct {
	// Cause is the context error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
	// Folded is the number of attempts the reduction covered.
	Folded int
}

func (e *ErrBudget) Error() string {
	return fmt.Sprintf("search: budget exhausted after %d attempts: %v", e.Folded, e.Cause)
}

func (e *ErrBudget) Unwrap() error { return e.Cause }

// AttemptError wraps a fatal attempt error with the attempt index it
// surfaced at.
type AttemptError struct {
	Attempt int
	Err     error
}

func (e *AttemptError) Error() string {
	return fmt.Sprintf("search: attempt %d: %v", e.Attempt, e.Err)
}

func (e *AttemptError) Unwrap() error { return e.Err }

// PanicError is the contained form of an attempt that panicked: the
// worker recovers the panic and folds the attempt as failed, carrying
// this error. It records which seed died and the recovered value plus
// stack for diagnosis. Unless Driver.Fatal classifies it as fatal, a
// PanicError never aborts the search — it degrades the reduction.
type PanicError struct {
	// Attempt and Seed identify the unit of work that died.
	Attempt int
	Seed    int64
	// Value is the recovered panic value; Stack the goroutine stack
	// captured at recovery.
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("search: attempt %d (seed %d) panicked: %v", e.Attempt, e.Seed, e.Value)
}

// report is one attempt's raw outcome in flight to the reducer.
type report[S any] struct {
	attempt int
	sol     S
	err     error
}

// runAttempt executes one attempt with panic containment and the
// attempt-site fault hook. A recovered panic becomes a *PanicError so
// the reducer folds the attempt as failed instead of the process
// dying; the deferred recover on the happy path costs nanoseconds and
// allocates nothing.
func runAttempt[S any](ctx context.Context, fn AttemptFunc[S], attempt int, seed int64, plan *faultinject.Plan) (sol S, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Attempt: attempt, Seed: seed, Value: v, Stack: debug.Stack()}
		}
	}()
	if plan != nil {
		if ferr := plan.At(faultinject.SiteAttempt, attempt, 0, seed); ferr != nil {
			return sol, ferr
		}
	}
	return fn(ctx, attempt, seed)
}

// Run executes the search. It returns a *ErrBudget when the context
// ended the search early, a *AttemptError when Driver.Fatal aborted
// it, and nil otherwise (including MaxStale early stops); in every
// case Outcome reflects the deterministic index-ordered reduction over
// the folded attempt prefix.
func Run[S any](ctx context.Context, opts Options, d Driver[S]) (Outcome[S], error) {
	var out Outcome[S]
	if d.NewAttempt == nil {
		return out, errors.New("search: Driver.NewAttempt is required")
	}
	if opts.Attempts <= 0 {
		return out, fmt.Errorf("search: Attempts must be positive, got %d", opts.Attempts)
	}
	if opts.Workers < 0 {
		return out, fmt.Errorf("search: Workers must be non-negative, got %d", opts.Workers)
	}
	if opts.MaxStale < 0 {
		return out, fmt.Errorf("search: MaxStale must be non-negative, got %d", opts.MaxStale)
	}
	start := 0
	resumeStale := 0
	bestAttempt := -1
	if rs := d.Resume; rs != nil {
		if rs.Folded < 0 || rs.Folded > opts.Attempts {
			return out, fmt.Errorf("search: resume Folded %d outside [0,%d]", rs.Folded, opts.Attempts)
		}
		if rs.BestAttempt >= rs.Folded {
			return out, fmt.Errorf("search: resume BestAttempt %d not inside the folded prefix %d", rs.BestAttempt, rs.Folded)
		}
		start = rs.Folded
		resumeStale = rs.Stale
		bestAttempt = rs.BestAttempt
		out.Best, out.Found = rs.Best, rs.Found
		out.Stats = rs.Stats
		out.Stats.Folded = rs.Folded
		if start == opts.Attempts {
			// Everything was already folded before the interruption; the
			// resumed outcome is the restored reduction itself.
			return out, nil
		}
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Attempts-start {
		workers = opts.Attempts - start
	}
	stride := opts.SeedStride
	if stride == 0 {
		stride = 1
	}

	next := make(chan int)
	results := make(chan report[S], workers)
	// done tells the dispatcher to stop handing out attempts after a
	// deterministic early stop (stale or fatal); in-flight attempts
	// still finish and drain through results.
	done := make(chan struct{})
	var stopDispatch sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			attempt := d.NewAttempt()
			for i := range next {
				actx := ctx
				run := opts.Spans.Start("attempt", i)
				if opts.Spans.Enabled() {
					actx = span.NewContext(ctx, run.Scope())
				}
				sol, err := runAttempt(actx, attempt, i, opts.Seed+int64(i)*stride, opts.Inject)
				run.End()
				results <- report[S]{attempt: i, sol: sol, err: err}
			}
		}()
	}
	go func() {
		defer close(next)
		for i := start; i < opts.Attempts; i++ {
			select {
			case next <- i:
			case <-done:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reduce in strict index order: buffer out-of-order completions and
	// fold the contiguous frontier. Stopping (for any reason) freezes
	// the reduction; the loop keeps draining so every worker exits.
	pending := make(map[int]report[S], workers)
	frontier := start
	stale := resumeStale
	var fatal *AttemptError
	var budget *ErrBudget
	stopped := false
	stop := func() {
		stopped = true
		stopDispatch.Do(func() { close(done) })
	}
	for r := range results {
		if stopped {
			continue
		}
		pending[r.attempt] = r
		for !stopped {
			rr, ok := pending[frontier]
			if !ok {
				break
			}
			delete(pending, frontier)
			// An attempt abandoned at a cancellation checkpoint ends the
			// foldable prefix: everything at or past it is excluded so
			// the reduction stays a prefix of the unbudgeted search.
			if cerr := ctx.Err(); cerr != nil && rr.err != nil && errors.Is(rr.err, cerr) {
				budget = &ErrBudget{Cause: cerr, Folded: frontier}
				stop()
				break
			}
			if rr.err != nil && d.Fatal != nil && d.Fatal(rr.err) {
				fatal = &AttemptError{Attempt: frontier, Err: rr.err}
				stop()
				break
			}
			improved := false
			if rr.err == nil {
				if !out.Found || (d.Better != nil && d.Better(rr.sol, out.Best)) {
					out.Best = rr.sol
					out.Found = true
					improved = true
					bestAttempt = frontier
				}
				out.Stats.Accepted++
				if improved {
					out.Stats.Improved++
					stale = 0
				} else {
					stale++
				}
			} else {
				out.Stats.Failed++
				var perr *PanicError
				if errors.As(rr.err, &perr) {
					out.Stats.Panicked++
				}
			}
			if d.Observe != nil {
				d.Observe(frontier, rr.sol, rr.err, improved)
			}
			frontier++
			out.Stats.Folded = frontier
			if opts.Checkpoint != nil {
				opts.Checkpoint(Progress{Folded: frontier, BestAttempt: bestAttempt, Stale: stale, Stats: out.Stats})
			}
			if rr.err == nil && opts.MaxStale > 0 && stale >= opts.MaxStale {
				out.Stats.StaleStop = true
				stop()
			}
		}
	}

	switch {
	case fatal != nil:
		return out, fatal
	case budget != nil:
		return out, budget
	case !out.Stats.StaleStop && frontier < opts.Attempts:
		// The dispatcher quit on ctx.Done before every attempt was even
		// started; no folded attempt carried the context error, but the
		// search is still budget-truncated.
		return out, &ErrBudget{Cause: ctx.Err(), Folded: frontier}
	default:
		return out, nil
	}
}
