// Package trace is the structured observability layer of the
// partitioning engines: an allocation-conscious event stream with
// pluggable sinks. The hot paths (kway's carve loop, fm's pass loop)
// emit one flat Event per unit of work behind a nil-check, so the
// zero-sink configuration costs a predicted branch and the enabled
// path allocates nothing either — events are stack-built value
// structs, the aggregating sink uses atomic counters and the JSONL
// sink reuses one encode buffer under its mutex.
//
// Sinks must be safe for concurrent use: carve and FM-pass events are
// emitted by the search workers in completion order (each labeled with
// its solution attempt index), while solution events are emitted by
// the single-threaded index-ordered reduction, so their order is
// deterministic for a fixed seed.
//
// This package answers "how many / how much" (counters, histograms,
// JSONL streams); its sibling internal/span answers "when and under
// what" — durations on a causal tree that crosses process boundaries.
// The two layers share the engine hooks but are armed independently:
// trace.Sink on Options.Trace, span.Scope on Options.Spans.
package trace

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates events.
type Kind uint8

const (
	// KindCarveAccepted marks a carve attempt whose block satisfied its
	// host device; Area/Terminals/Device describe the carve,
	// Moves/Passes the FM work it took, Replicas/Rollbacks the
	// replication-state work.
	KindCarveAccepted Kind = iota + 1
	// KindCarveRejected marks a failed carve attempt; Reason is a
	// static rejection code (no-device, device-window, fm, terminals,
	// area-window, materialize, no-progress).
	KindCarveRejected
	// KindFMPass marks one completed FM pass: Moves applied before the
	// best-prefix rollback and Cut after it.
	KindFMPass
	// KindSolution marks one folded solution attempt of the k-way
	// search, in deterministic index order: Feasible/Cost/Parts
	// describe it, Improved whether it became the incumbent best.
	KindSolution
	// KindPhase marks the completion of one timed engine phase (Phase
	// names it, Dur is its wall-clock duration). Phase timings are
	// read from an explicitly injected clock and feed only
	// observability sinks — never search decisions — so fixed-seed
	// results are byte-identical with or without phase tracing.
	KindPhase
	// KindLevel marks the completion of one uncoarsening level of the
	// multilevel V-cycle: Level is the hierarchy depth (0 = finest),
	// Cells the level's coarse cell count, Cut the cut after the
	// level's FM refinement, Area the block-0 area, Moves/Pass the FM
	// work the refinement took.
	KindLevel
	// KindParRound marks one synchronous sub-round of the parallel
	// refinement engine (internal/parfm): Pass is the enclosing FM
	// pass, Round the sub-round index within it, Proposals the moves
	// proposed against the frozen state, Commits the proposals applied
	// and Stale the proposals rejected because an earlier commit of the
	// same sub-round invalidated their gain.
	KindParRound
	// KindCheckpoint marks one persisted search checkpoint, emitted by
	// the single-threaded index-ordered reducer: Folded is the number
	// of attempts the checkpoint covers, BestAttempt the incumbent best
	// attempt index (-1 while no attempt has been accepted). Checkpoint
	// emission never perturbs search decisions, so fixed-seed results
	// are byte-identical with or without checkpointing.
	KindCheckpoint
	// KindResume marks a search restarting from a persisted checkpoint
	// instead of attempt 0: Folded is the attempt index the resumed run
	// continues from (the JSONL field is resumed_from_attempt),
	// BestAttempt the restored incumbent's attempt index.
	KindResume
)

// Phase names carried by KindPhase events.
const (
	PhaseParse     = "parse"     // reading/parsing the input circuit
	PhaseSearch    = "search"    // the whole multi-start carve search
	PhaseVerify    = "verify"    // in-loop solution verification (per attempt)
	PhaseFold      = "fold"      // remap + assembly of one attempt's solution
	PhaseCoarsen   = "coarsen"   // building the multilevel cluster hierarchy
	PhaseUncoarsen = "uncoarsen" // projection + per-level refinement sweep
)

// String returns the JSONL event-type tag.
func (k Kind) String() string {
	switch k {
	case KindCarveAccepted:
		return "carve"
	case KindCarveRejected:
		return "carve-rejected"
	case KindFMPass:
		return "fm-pass"
	case KindSolution:
		return "solution"
	case KindPhase:
		return "phase"
	case KindLevel:
		return "level"
	case KindParRound:
		return "parfm-round"
	case KindCheckpoint:
		return "checkpoint"
	case KindResume:
		return "resume"
	default:
		return "unknown"
	}
}

// Event is one observation. A single flat struct serves every kind so
// emitters build it on the stack; unused fields stay zero.
type Event struct {
	Kind Kind
	// Attempt is the solution attempt index the event belongs to
	// (-1 when the emitter runs outside a k-way search).
	Attempt int
	// FM fields.
	Pass  int
	Moves int
	Cut   int
	// Carve fields.
	Area      int
	Terminals int
	Replicas  int
	Rollbacks int
	Device    string
	Reason    string
	// Solution fields.
	Feasible bool
	Cost     float64
	Parts    int
	Improved bool
	// Topology fields (KindSolution): Topo is the solution's
	// hop-weighted interconnect on the armed board topology; HasTopo
	// marks it meaningful. Flat terminal-cut runs never set HasTopo,
	// so their serialized streams are byte-identical to pre-topology
	// releases.
	Topo    int
	HasTopo bool
	// Panic marks a failed solution attempt that died to a contained
	// worker panic (Reason carries the panic message); the run is
	// degraded but alive.
	Panic bool
	// Phase fields (KindPhase): the phase name and its wall-clock
	// duration.
	Phase string
	Dur   time.Duration
	// Level fields (KindLevel): the hierarchy depth (0 = finest) and
	// the level's coarse cell count.
	Level int
	Cells int
	// Parallel sub-round fields (KindParRound): the sub-round index
	// within the pass, and its proposal/commit/stale-rejection counts.
	Round     int
	Proposals int
	Commits   int
	Stale     int
	// Checkpoint/resume fields (KindCheckpoint, KindResume): Folded is
	// the number of attempts the persisted reduction covers (for
	// KindResume, the attempt index the resumed run continues from);
	// BestAttempt is the incumbent best attempt index, -1 = none.
	Folded      int
	BestAttempt int
}

// Sink receives events. Implementations must be safe for concurrent
// use; Event must not retain e past the call.
type Sink interface {
	Event(e Event)
}

// Noop discards every event. Hot paths prefer a nil Sink (guarded by a
// nil-check); Noop exists for call sites that want an always-valid
// sink value.
type Noop struct{}

// Event implements Sink.
func (Noop) Event(Event) {}

// Counters aggregates the event stream into totals.
type Counters struct {
	// Moves and Passes total the FM work (from KindFMPass events).
	Moves, Passes int64
	// Carves and RejectedCarves count carve attempts by outcome.
	Carves, RejectedCarves int64
	// Replicas and Rollbacks total the replication-state work reported
	// by accepted and rejected carves.
	Replicas, Rollbacks int64
	// Solutions and Feasible count folded solution attempts; Panics
	// counts the folded attempts that died to a contained panic.
	Solutions, Feasible, Panics int64
	// Levels counts completed uncoarsening levels of multilevel runs.
	Levels int64
	// ParRounds counts parallel refinement sub-rounds; ParProposals,
	// ParCommits and ParStale total their proposal outcomes (from
	// KindParRound events).
	ParRounds, ParProposals, ParCommits, ParStale int64
	// Checkpoints counts persisted search checkpoints and Resumes
	// counts searches restarted from one (from KindCheckpoint and
	// KindResume events).
	Checkpoints, Resumes int64
}

// Agg is a Sink that aggregates events into Counters with atomic
// adds — allocation-free and safe under concurrent emission.
type Agg struct {
	moves, passes, carves, rejected               int64
	replicas, rollbacks                           int64
	solutions, feasible, panics                   int64
	levels                                        int64
	parRounds, parProposals, parCommits, parStale int64
	checkpoints, resumes                          int64
}

// Event implements Sink.
func (a *Agg) Event(e Event) {
	switch e.Kind {
	case KindFMPass:
		atomic.AddInt64(&a.passes, 1)
		atomic.AddInt64(&a.moves, int64(e.Moves))
	case KindCarveAccepted:
		atomic.AddInt64(&a.carves, 1)
		atomic.AddInt64(&a.replicas, int64(e.Replicas))
		atomic.AddInt64(&a.rollbacks, int64(e.Rollbacks))
	case KindCarveRejected:
		atomic.AddInt64(&a.rejected, 1)
		atomic.AddInt64(&a.replicas, int64(e.Replicas))
		atomic.AddInt64(&a.rollbacks, int64(e.Rollbacks))
	case KindSolution:
		atomic.AddInt64(&a.solutions, 1)
		if e.Feasible {
			atomic.AddInt64(&a.feasible, 1)
		}
		if e.Panic {
			atomic.AddInt64(&a.panics, 1)
		}
	case KindLevel:
		atomic.AddInt64(&a.levels, 1)
	case KindParRound:
		atomic.AddInt64(&a.parRounds, 1)
		atomic.AddInt64(&a.parProposals, int64(e.Proposals))
		atomic.AddInt64(&a.parCommits, int64(e.Commits))
		atomic.AddInt64(&a.parStale, int64(e.Stale))
	case KindCheckpoint:
		atomic.AddInt64(&a.checkpoints, 1)
	case KindResume:
		atomic.AddInt64(&a.resumes, 1)
	}
}

// Snapshot returns the current totals.
func (a *Agg) Snapshot() Counters {
	return Counters{
		Moves:          atomic.LoadInt64(&a.moves),
		Passes:         atomic.LoadInt64(&a.passes),
		Carves:         atomic.LoadInt64(&a.carves),
		RejectedCarves: atomic.LoadInt64(&a.rejected),
		Replicas:       atomic.LoadInt64(&a.replicas),
		Rollbacks:      atomic.LoadInt64(&a.rollbacks),
		Solutions:      atomic.LoadInt64(&a.solutions),
		Feasible:       atomic.LoadInt64(&a.feasible),
		Panics:         atomic.LoadInt64(&a.panics),
		Levels:         atomic.LoadInt64(&a.levels),
		ParRounds:      atomic.LoadInt64(&a.parRounds),
		ParProposals:   atomic.LoadInt64(&a.parProposals),
		ParCommits:     atomic.LoadInt64(&a.parCommits),
		ParStale:       atomic.LoadInt64(&a.parStale),
		Checkpoints:    atomic.LoadInt64(&a.checkpoints),
		Resumes:        atomic.LoadInt64(&a.resumes),
	}
}

// JSONL is a Sink that writes one JSON object per event. The encoder
// is hand-rolled over a reused buffer: one mutex-guarded Write per
// event, no reflection, no per-event allocation at steady state.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, buf: make([]byte, 0, 256)}
}

// Event implements Sink.
func (j *JSONL) Event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"event":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","attempt":`...)
	b = strconv.AppendInt(b, int64(e.Attempt), 10)
	switch e.Kind {
	case KindFMPass:
		b = appendIntField(b, "pass", e.Pass)
		b = appendIntField(b, "moves", e.Moves)
		b = appendIntField(b, "cut", e.Cut)
	case KindCarveAccepted, KindCarveRejected:
		b = appendIntField(b, "area", e.Area)
		b = appendIntField(b, "terminals", e.Terminals)
		b = appendIntField(b, "moves", e.Moves)
		b = appendIntField(b, "passes", e.Pass)
		b = appendIntField(b, "replicas", e.Replicas)
		b = appendIntField(b, "rollbacks", e.Rollbacks)
		if e.Device != "" {
			b = appendStringField(b, "device", e.Device)
		}
		if e.Reason != "" {
			b = appendStringField(b, "reason", e.Reason)
		}
	case KindSolution:
		b = append(b, `,"feasible":`...)
		b = strconv.AppendBool(b, e.Feasible)
		if e.Feasible {
			b = append(b, `,"cost":`...)
			b = strconv.AppendFloat(b, e.Cost, 'g', -1, 64)
			b = appendIntField(b, "parts", e.Parts)
			if e.HasTopo {
				b = appendIntField(b, "topo", e.Topo)
			}
			b = append(b, `,"improved":`...)
			b = strconv.AppendBool(b, e.Improved)
		} else {
			if e.Panic {
				b = append(b, `,"panic":true`...)
			}
			if e.Reason != "" {
				b = appendStringField(b, "reason", e.Reason)
			}
		}
	case KindPhase:
		b = appendStringField(b, "phase", e.Phase)
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, int64(e.Dur), 10)
	case KindLevel:
		b = appendIntField(b, "level", e.Level)
		b = appendIntField(b, "cells", e.Cells)
		b = appendIntField(b, "area", e.Area)
		b = appendIntField(b, "cut", e.Cut)
		b = appendIntField(b, "moves", e.Moves)
		b = appendIntField(b, "passes", e.Pass)
	case KindParRound:
		b = appendIntField(b, "pass", e.Pass)
		b = appendIntField(b, "round", e.Round)
		b = appendIntField(b, "proposals", e.Proposals)
		b = appendIntField(b, "commits", e.Commits)
		b = appendIntField(b, "stale", e.Stale)
	case KindCheckpoint:
		b = appendIntField(b, "folded", e.Folded)
		b = appendIntField(b, "best_attempt", e.BestAttempt)
	case KindResume:
		b = appendIntField(b, "resumed_from_attempt", e.Folded)
		b = appendIntField(b, "best_attempt", e.BestAttempt)
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func appendIntField(b []byte, name string, v int) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, int64(v), 10)
}

func appendStringField(b []byte, name, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, `":`...)
	return strconv.AppendQuote(b, v)
}

// Multi fans every event out to each sink in order. Nil sinks are
// skipped; with zero or one effective sink the sink itself (or nil) is
// returned, so call sites keep the cheap nil-check fast path.
func Multi(sinks ...Sink) Sink {
	var eff []Sink
	for _, s := range sinks {
		if s != nil {
			eff = append(eff, s)
		}
	}
	switch len(eff) {
	case 0:
		return nil
	case 1:
		return eff[0]
	default:
		return multi(eff)
	}
}

type multi []Sink

// Event implements Sink.
func (m multi) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Recorder is a Sink that captures events in arrival order, for tests
// and offline inspection.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Event implements Sink.
func (r *Recorder) Event(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the captured events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Filter returns the captured events of one kind, in arrival order.
func (r *Recorder) Filter(k Kind) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
