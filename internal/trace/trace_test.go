package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestAggCounters(t *testing.T) {
	var a Agg
	a.Event(Event{Kind: KindFMPass, Moves: 10})
	a.Event(Event{Kind: KindFMPass, Moves: 5})
	a.Event(Event{Kind: KindCarveAccepted, Replicas: 2, Rollbacks: 1})
	a.Event(Event{Kind: KindCarveRejected, Rollbacks: 3, Reason: "terminals"})
	a.Event(Event{Kind: KindSolution, Feasible: true, Cost: 100})
	a.Event(Event{Kind: KindSolution, Feasible: false})
	got := a.Snapshot()
	want := Counters{
		Moves: 15, Passes: 2,
		Carves: 1, RejectedCarves: 1,
		Replicas: 2, Rollbacks: 4,
		Solutions: 2, Feasible: 1,
	}
	if got != want {
		t.Fatalf("counters %+v, want %+v", got, want)
	}
}

func TestAggConcurrent(t *testing.T) {
	var a Agg
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Event(Event{Kind: KindFMPass, Moves: 1})
			}
		}()
	}
	wg.Wait()
	if c := a.Snapshot(); c.Passes != 8000 || c.Moves != 8000 {
		t.Fatalf("lost events: %+v", c)
	}
}

func TestJSONLWellFormed(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	events := []Event{
		{Kind: KindFMPass, Attempt: 2, Pass: 1, Moves: 40, Cut: 12},
		{Kind: KindCarveAccepted, Attempt: 2, Area: 64, Terminals: 30, Moves: 40, Pass: 3, Replicas: 2, Rollbacks: 1, Device: "XC3042"},
		{Kind: KindCarveRejected, Attempt: 0, Area: 80, Terminals: 99, Reason: "terminals", Device: "XC3020"},
		{Kind: KindSolution, Attempt: 0, Feasible: true, Cost: 756.5, Parts: 4, Improved: true},
		{Kind: KindSolution, Attempt: 1, Feasible: false, Reason: "no feasible carve"},
	}
	for _, e := range events {
		j.Event(e)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("%d lines, want %d:\n%s", len(lines), len(events), buf.String())
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, ln)
		}
		if m["event"] != events[i].Kind.String() {
			t.Fatalf("line %d event tag %v, want %v", i, m["event"], events[i].Kind.String())
		}
		if int(m["attempt"].(float64)) != events[i].Attempt {
			t.Fatalf("line %d attempt %v, want %d", i, m["attempt"], events[i].Attempt)
		}
	}
	// Spot-check typed fields survive the hand-rolled encoder.
	var sol map[string]any
	if err := json.Unmarshal([]byte(lines[3]), &sol); err != nil {
		t.Fatal(err)
	}
	if sol["cost"].(float64) != 756.5 || sol["improved"] != true {
		t.Fatalf("solution line mangled: %v", sol)
	}
	var rej map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &rej); err != nil {
		t.Fatal(err)
	}
	if rej["reason"] != "terminals" || rej["device"] != "XC3020" {
		t.Fatalf("rejection line mangled: %v", rej)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, bytes.ErrTooLarge
}

func TestJSONLStopsOnWriteError(t *testing.T) {
	w := &failWriter{}
	j := NewJSONL(w)
	j.Event(Event{Kind: KindFMPass})
	j.Event(Event{Kind: KindFMPass})
	if j.Err() == nil {
		t.Fatal("expected write error")
	}
	if w.n != 1 {
		t.Fatalf("writer called %d times after error, want 1", w.n)
	}
}

func TestMulti(t *testing.T) {
	var a, b Recorder
	s := Multi(nil, &a, nil, &b)
	s.Event(Event{Kind: KindSolution})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi sink dropped events")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("all-nil Multi should collapse to nil for the fast path")
	}
	if Multi(&a) != Sink(&a) {
		t.Fatal("single-sink Multi should return the sink itself")
	}
}

// orderSink appends its tag to a shared log on every event, recording
// the fan-out order across sinks.
type orderSink struct {
	tag string
	log *[]string
}

func (s orderSink) Event(Event) { *s.log = append(*s.log, s.tag) }

func TestMultiFanOutOrder(t *testing.T) {
	// Every event must reach the sinks in registration order — sinks
	// like the progress printer rely on seeing events before the
	// aggregator snapshots them.
	var log []string
	s := Multi(orderSink{"a", &log}, nil, orderSink{"b", &log}, orderSink{"c", &log})
	s.Event(Event{Kind: KindFMPass})
	s.Event(Event{Kind: KindSolution})
	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(log) != len(want) {
		t.Fatalf("fan-out log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("fan-out order %v, want %v", log, want)
		}
	}
}

func TestMultiCollapse(t *testing.T) {
	if Multi() != nil {
		t.Fatal("empty Multi should collapse to nil")
	}
	if Multi(nil) != nil {
		t.Fatal("single-nil Multi should collapse to nil")
	}
	var r Recorder
	// Nil sinks are dropped before the arity check, so nil-padded single
	// sinks still take the direct (non-fanout) path.
	if Multi(nil, &r, nil) != Sink(&r) {
		t.Fatal("nil-padded single-sink Multi should return the sink itself")
	}
}

func TestJSONLPhaseEvent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Event(Event{Kind: KindPhase, Attempt: -1, Phase: PhaseSearch, Dur: 1500000})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("phase line not valid JSON: %v\n%s", err, buf.String())
	}
	if m["event"] != "phase" || m["phase"] != PhaseSearch || m["dur_ns"].(float64) != 1.5e6 {
		t.Fatalf("phase line mangled: %v", m)
	}
	if int(m["attempt"].(float64)) != -1 {
		t.Fatalf("attempt %v, want -1", m["attempt"])
	}
}

func TestRecorderFilter(t *testing.T) {
	var r Recorder
	r.Event(Event{Kind: KindFMPass})
	r.Event(Event{Kind: KindSolution, Attempt: 1})
	r.Event(Event{Kind: KindSolution, Attempt: 2})
	sols := r.Filter(KindSolution)
	if len(sols) != 2 || sols[0].Attempt != 1 || sols[1].Attempt != 2 {
		t.Fatalf("filter returned %+v", sols)
	}
	if got := r.Filter(KindPhase); len(got) != 0 {
		t.Fatalf("filter of absent kind returned %+v", got)
	}
	// Filter returns copies in arrival order without consuming them.
	if again := r.Filter(KindSolution); len(again) != 2 {
		t.Fatalf("second filter returned %+v", again)
	}
}

func TestAggEventAllocFree(t *testing.T) {
	var a Agg
	if avg := testing.AllocsPerRun(100, func() {
		a.Event(Event{Kind: KindFMPass, Moves: 3})
		a.Event(Event{Kind: KindCarveAccepted, Replicas: 1})
	}); avg != 0 {
		t.Fatalf("Agg.Event allocates %v times", avg)
	}
}

func TestJSONLSteadyStateAllocFree(t *testing.T) {
	j := NewJSONL(new(bytes.Buffer))
	e := Event{Kind: KindCarveAccepted, Attempt: 3, Area: 64, Terminals: 12, Device: "XC3042"}
	j.Event(e) // warm the buffer
	if avg := testing.AllocsPerRun(100, func() { j.Event(e) }); avg > 1 {
		t.Fatalf("JSONL.Event allocates %v times at steady state", avg)
	}
}
