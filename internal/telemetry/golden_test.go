package telemetry_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/telemetry"
	"fpgapart/internal/trace"
)

// renderResult flattens a k-way result to a canonical byte string:
// every part's device plus its full materialized subcircuit text. Two
// runs that agree on this string produced byte-identical partitions.
func renderResult(t *testing.T, res kway.Result) string {
	t.Helper()
	var sb strings.Builder
	for _, p := range res.Parts {
		sb.WriteString(p.Device.Name)
		sb.WriteByte('\n')
		if err := hypergraph.Write(&sb, p.Graph); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// steppingClock returns a clock that advances one millisecond per
// reading, so phase durations are non-zero and strictly ordered
// without touching the real wall clock.
func steppingClock() func() time.Time {
	var mu sync.Mutex
	t0 := time.Unix(1_700_000_000, 0)
	step := 0
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		step++
		return t0.Add(time.Duration(step) * time.Millisecond)
	}
}

// The golden diff of the telemetry PR: a fixed-seed k-way search must
// produce byte-identical partitions whether telemetry is disabled
// (nil sink, no clock reads) or fully armed (bridge metrics, recorder,
// fake clock). Clock readings and metric observations feed sinks only.
func TestTelemetryDoesNotPerturbSearch(t *testing.T) {
	// 400 cells overflow the largest library device: the search must
	// carve recursively and run FM, so the byte-identical comparison
	// covers the instrumented hot paths, not just the single-device
	// fast path.
	g, err := bench.Generate(bench.Params{Cells: 400, PrimaryIn: 12, PrimaryOut: 8, Seed: 3, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	opts := kway.Options{Library: library.XC3000(), Solutions: 6, Seed: 11, Verify: true}

	plain, err := kway.Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	var rec trace.Recorder
	traced := opts
	traced.Trace = trace.Multi(telemetry.NewBridge(reg), &rec)
	traced.Now = steppingClock()
	got, err := kway.Partition(g, traced)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := renderResult(t, plain), renderResult(t, got); a != b {
		t.Fatalf("telemetry perturbed the search:\n--- plain ---\n%s\n--- traced ---\n%s", a, b)
	}
	if plain.Summary.DeviceCost() != got.Summary.DeviceCost() ||
		plain.Feasible != got.Feasible || plain.Failed != got.Failed ||
		plain.CostMin != got.CostMin || plain.CostMax != got.CostMax || plain.CostMean != got.CostMean {
		t.Fatalf("search statistics diverged: %+v vs %+v", plain, got)
	}
}

// Phase events must cover the search itself plus per-attempt fold and
// verify stages, with durations read from the injected clock.
func TestPhaseEventsEmitted(t *testing.T) {
	g, err := bench.Generate(bench.Params{Cells: 400, PrimaryIn: 12, PrimaryOut: 8, Seed: 3, Clustering: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	bridge := telemetry.NewBridge(reg)
	var rec trace.Recorder
	res, err := kway.Partition(g, kway.Options{
		Library: library.XC3000(), Solutions: 4, Seed: 11, Verify: true,
		Trace: trace.Multi(bridge, &rec),
		Now:   steppingClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	phases := rec.Filter(trace.KindPhase)
	counts := map[string]int{}
	for _, e := range phases {
		counts[e.Phase]++
		if e.Dur <= 0 {
			t.Fatalf("phase %q has non-positive duration %v", e.Phase, e.Dur)
		}
	}
	if counts[trace.PhaseSearch] != 1 {
		t.Fatalf("want exactly one search phase, got %d (%v)", counts[trace.PhaseSearch], counts)
	}
	if counts[trace.PhaseFold] < res.Feasible || counts[trace.PhaseVerify] < res.Feasible {
		t.Fatalf("fold/verify phases missing: %v with %d feasible", counts, res.Feasible)
	}
	// The bridge turned the same events into histogram observations.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, phase := range []string{"search", "fold", "verify"} {
		if !strings.Contains(out, `fpgapart_phase_seconds_count{phase="`+phase+`"}`) {
			t.Fatalf("missing %s phase histogram in exposition:\n%s", phase, out)
		}
	}
	if strings.Contains(out, "fpgapart_carve_accepted_total 0\n") {
		t.Fatalf("carve counter still zero after a multi-device search:\n%s", out)
	}
	if !strings.Contains(out, "fpgapart_carve_accepted_total") {
		t.Fatalf("missing carve counters in exposition:\n%s", out)
	}
}
