// Package telemetry is the scrapeable metrics layer of the service:
// an allocation-conscious registry of atomic counters, gauges and
// fixed-bucket histograms, plus a hand-rolled Prometheus text-format
// exposition writer in the same zero-reflection style as trace.JSONL.
//
// The hot-path contract mirrors internal/trace: observing a metric is
// lock-free (atomic adds; the histogram sum is a CAS loop over float64
// bits) and allocation-free, so the FM pass loop and the carve loop
// can feed metrics at full speed. Registration and series creation
// (Vec.With) take locks and may allocate — callers on hot paths
// resolve their series once, up front, and hold the pointer.
//
// Exposition is deterministic: families render sorted by name and
// series sorted by their label string, so two scrapes of identical
// state are byte-identical — the property the golden tests and the CI
// smoke grep rely on.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type tags used in the exposition TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one exposition line group: a counter, gauge or histogram
// with a fixed, pre-rendered label set.
type series interface {
	// labelString returns the rendered label pairs without braces,
	// e.g. `reason="terminals"`, or "" for an unlabeled series.
	labelString() string
	// appendText appends the series' exposition lines for the family
	// name to b and returns the extended buffer.
	appendText(b []byte, name string) []byte
}

// family groups every series of one metric name.
type family struct {
	name string
	help string
	typ  string
	keys []string

	mu     sync.Mutex
	series []series
	byKey  map[string]series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the family for name, creating it on first use and
// panicking on a type/label-schema conflict — conflicting
// registrations are programmer errors, caught at startup.
func (r *Registry) family(name, help, typ string, keys []string) *family {
	mustValidName(name)
	for _, k := range keys {
		mustValidName(k)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.keys) != len(keys) {
			panic(fmt.Sprintf("telemetry: conflicting registration of %s (%s%v vs %s%v)",
				name, f.typ, f.keys, typ, keys))
		}
		for i := range keys {
			if f.keys[i] != keys[i] {
				panic(fmt.Sprintf("telemetry: conflicting label keys for %s (%v vs %v)", name, f.keys, keys))
			}
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, keys: keys, byKey: make(map[string]series)}
	r.families[name] = f
	return f
}

// add registers a series under the family, returning the existing one
// for the same label values (idempotent With).
func (f *family) add(key string, mk func(labels string) series) series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := mk(renderLabels(f.keys, strings.Split(key, "\xff")))
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// renderLabels renders `k1="v1",k2="v2"` (no braces). An unlabeled
// series (no keys) renders "".
func renderLabels(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// mustValidName panics unless name matches the Prometheus metric and
// label name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func mustValidName(name string) {
	if name == "" {
		panic("telemetry: empty metric or label name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric or label name %q", name))
		}
	}
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// string, so identical registry state renders byte-identically.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b []byte
	for _, f := range fams {
		f.mu.Lock()
		ser := make([]series, len(f.series))
		copy(ser, f.series)
		f.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool { return ser[i].labelString() < ser[j].labelString() })

		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, escapeHelp(f.help)...)
		b = append(b, '\n')
		b = append(b, "# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		for _, s := range ser {
			b = s.appendText(b, f.name)
		}
	}
	_, err := w.Write(b)
	return err
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// appendSample appends one `name{labels} value\n` line with the value
// appended by app.
func appendSample(b []byte, name, labels string, app func([]byte) []byte) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = app(b)
	return append(b, '\n')
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v  atomic.Int64
	ls string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative increments are a programmer error and panic.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) labelString() string { return c.ls }

func (c *Counter) appendText(b []byte, name string) []byte {
	return appendSample(b, name, c.ls, func(b []byte) []byte {
		return strconv.AppendInt(b, c.v.Load(), 10)
	})
}

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v  atomic.Int64
	ls string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) labelString() string { return g.ls }

func (g *Gauge) appendText(b []byte, name string) []byte {
	return appendSample(b, name, g.ls, func(b []byte) []byte {
		return strconv.AppendInt(b, g.v.Load(), 10)
	})
}

// gaugeFunc samples a float value at exposition time — used for
// externally owned state like the admission queue depth.
type gaugeFunc struct {
	fn func() float64
	ls string
}

func (g *gaugeFunc) labelString() string { return g.ls }

func (g *gaugeFunc) appendText(b []byte, name string) []byte {
	return appendSample(b, name, g.ls, func(b []byte) []byte {
		return appendFloat(b, g.fn())
	})
}

// atomicFloat64 is a lock-free float accumulator (CAS over bits).
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram with lock-free, allocation-free
// Observe. Buckets are cumulative only at exposition time; each bucket
// stores its own count so Observe touches exactly one bucket counter.
type Histogram struct {
	upper   []float64 // strictly increasing upper bounds, +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat64
	ls      string
}

func newHistogram(upper []float64, labels string) *Histogram {
	return &Histogram{
		upper:   upper,
		buckets: make([]atomic.Int64, len(upper)+1),
		ls:      labels,
	}
}

// Observe records v. The bucket scan is linear — bucket layouts are
// small (≤ ~20) and the scan is branch-predictable, which beats a
// binary search at these sizes.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() int64 { return h.count.Load() }
func (h *Histogram) Sum() float64 { return h.sum.Load() }

func (h *Histogram) labelString() string { return h.ls }

func (h *Histogram) appendText(b []byte, name string) []byte {
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = strconv.FormatFloat(h.upper[i], 'g', -1, 64)
		}
		labels := `le="` + le + `"`
		if h.ls != "" {
			labels = h.ls + "," + labels
		}
		v := cum
		b = appendSample(b, name+"_bucket", labels, func(b []byte) []byte {
			return strconv.AppendInt(b, v, 10)
		})
	}
	b = appendSample(b, name+"_sum", h.ls, func(b []byte) []byte {
		return appendFloat(b, h.sum.Load())
	})
	b = appendSample(b, name+"_count", h.ls, func(b []byte) []byte {
		return strconv.AppendInt(b, h.count.Load(), 10)
	})
	return b
}

func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	default:
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}
}

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil)
	return f.add("", func(string) series { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil)
	return f.add("", func(string) series { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is sampled from fn at
// exposition time. Registering the same name twice panics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeGauge, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.byKey[""]; ok {
		panic(fmt.Sprintf("telemetry: duplicate GaugeFunc %s", name))
	}
	s := &gaugeFunc{fn: fn}
	f.byKey[""] = s
	f.series = append(f.series, s)
}

// Histogram registers (or returns) the unlabeled histogram name with
// the given strictly increasing bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	mustValidBuckets(buckets)
	f := r.family(name, help, typeHistogram, nil)
	return f.add("", func(string) series { return newHistogram(buckets, "") }).(*Histogram)
}

// CounterVec is a counter family with a fixed label-key schema.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) the counter family name with the
// given label keys.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	if len(keys) == 0 {
		panic("telemetry: CounterVec needs at least one label key")
	}
	return &CounterVec{f: r.family(name, help, typeCounter, keys)}
}

// With returns the series for the given label values, creating it on
// first use. With locks and may allocate — hot paths resolve their
// series once and hold the pointer.
func (v *CounterVec) With(values ...string) *Counter {
	key := seriesKey(v.f, values)
	return v.f.add(key, func(labels string) series { return &Counter{ls: labels} }).(*Counter)
}

// GaugeVec is a gauge family with a fixed label-key schema.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) the gauge family name with the given
// label keys.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	if len(keys) == 0 {
		panic("telemetry: GaugeVec needs at least one label key")
	}
	return &GaugeVec{f: r.family(name, help, typeGauge, keys)}
}

// With returns the series for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := seriesKey(v.f, values)
	return v.f.add(key, func(labels string) series { return &Gauge{ls: labels} }).(*Gauge)
}

// HistogramVec is a histogram family with a fixed label-key schema and
// one shared bucket layout.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers (or returns) the histogram family name with
// the given bucket layout and label keys.
func (r *Registry) HistogramVec(name, help string, buckets []float64, keys ...string) *HistogramVec {
	if len(keys) == 0 {
		panic("telemetry: HistogramVec needs at least one label key")
	}
	mustValidBuckets(buckets)
	return &HistogramVec{f: r.family(name, help, typeHistogram, keys), buckets: buckets}
}

// With returns the series for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := seriesKey(v.f, values)
	return v.f.add(key, func(labels string) series { return newHistogram(v.buckets, labels) }).(*Histogram)
}

func seriesKey(f *family, values []string) string {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.keys), len(values)))
	}
	return strings.Join(values, "\xff")
}

func mustValidBuckets(buckets []float64) {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram buckets must be strictly increasing")
		}
	}
}

// ExpBuckets returns count buckets starting at start, each factor
// times the previous — the standard layout for latency and size
// distributions.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, count >= 1")
	}
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns count buckets starting at start, each width
// apart.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("telemetry: LinearBuckets wants width > 0, count >= 1")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// LatencyBuckets is the default request/phase latency layout: 1 ms to
// ~65 s, doubling.
func LatencyBuckets() []float64 { return ExpBuckets(0.001, 2, 17) }
