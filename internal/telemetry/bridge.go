package telemetry

import (
	"fpgapart/internal/trace"
)

// Engine metric names. One vocabulary serves the daemon's /metrics
// endpoint and kpart's -metrics-out snapshot, so batch runs and the
// service can be compared with the same queries.
const (
	MetricCarveAccepted  = "fpgapart_carve_accepted_total"
	MetricCarveRejected  = "fpgapart_carve_rejected_total"
	MetricFMPasses       = "fpgapart_fm_passes_total"
	MetricFMMoves        = "fpgapart_fm_moves_total"
	MetricFMCutAfterPass = "fpgapart_fm_cut_after_pass"
	MetricFMMovesPerPass = "fpgapart_fm_moves_per_pass"
	MetricReplicas       = "fpgapart_replicas_total"
	MetricRollbacks      = "fpgapart_rollbacks_total"
	MetricSolutions      = "fpgapart_solutions_total"
	MetricImproved       = "fpgapart_solutions_improved_total"
	MetricPanics         = "fpgapart_attempt_panics_total"
	MetricPhaseSeconds   = "fpgapart_phase_seconds"
	MetricLevels         = "fpgapart_multilevel_levels_total"
	MetricLevelCells     = "fpgapart_multilevel_level_cells"
	MetricLevelCut       = "fpgapart_multilevel_cut_after_refine"

	MetricParRounds        = "fpgapart_parfm_rounds_total"
	MetricParProposals     = "fpgapart_parfm_proposals_total"
	MetricParCommits       = "fpgapart_parfm_commits_total"
	MetricParStale         = "fpgapart_parfm_stale_total"
	MetricParCommitsPerRnd = "fpgapart_parfm_commits_per_round"

	// Topology metrics, populated only on board-backed runs (solution
	// events with HasTopo; see internal/topology and BoardGauges).
	MetricTopoBest     = "fpgapart_best_topo_cost"
	MetricTopoCost     = "fpgapart_solution_topo_cost"
	MetricLinkLoad     = "fpgapart_board_link_load"
	MetricLinkCapacity = "fpgapart_board_link_capacity"

	// Durability metrics, populated only when a job store arms search
	// checkpointing (KindCheckpoint/KindResume trace events).
	MetricCheckpoints = "fpgapart_search_checkpoints_total"
	MetricResumes     = "fpgapart_search_resumes_total"
)

// rejectReasons are the static carve-rejection codes emitted by the
// kway engine; anything else (future codes) lands on "other" so the
// hot path never creates series.
var rejectReasons = []string{
	"no-device", "device-window", "fm", "terminals",
	"area-window", "materialize", "no-progress",
}

// phaseNames are the static engine phases; anything else lands on
// "other".
var phaseNames = []string{
	trace.PhaseParse, trace.PhaseSearch, trace.PhaseVerify, trace.PhaseFold,
	trace.PhaseCoarsen, trace.PhaseUncoarsen,
}

// Bridge adapts the engine's trace stream (internal/trace) into
// registry metrics: carve accept/reject by reason, FM work and
// cut-after-pass distributions, replication/rollback totals, solution
// outcomes, contained-panic counts and phase latency histograms.
//
// Event is lock-free and allocation-free at steady state: every series
// is resolved at construction (static reason/phase vocabularies map to
// pre-built counters), so the hot path performs only map lookups on
// interned strings and atomic adds — proven by TestBridgeEventAllocs
// and the fm package's traced-variant allocation test.
type Bridge struct {
	carveAccepted *Counter
	carveRejected map[string]*Counter
	rejectedOther *Counter

	fmPasses     *Counter
	fmMoves      *Counter
	cutAfterPass *Histogram
	movesPerPass *Histogram

	replicas  *Counter
	rollbacks *Counter

	solutions  map[bool]*Counter // by feasibility
	improved   *Counter
	panics     *Counter
	phase      map[string]*Histogram
	phaseOther *Histogram

	levels     *Counter
	levelCells *Histogram
	levelCut   *Histogram

	parRounds        *Counter
	parProposals     *Counter
	parCommits       *Counter
	parStale         *Counter
	parCommitsPerRnd *Histogram

	topoBest *Gauge
	topoCost *Histogram

	checkpoints *Counter
	resumes     *Counter
}

// NewBridge registers the engine metric families on r and returns the
// sink. Multiple bridges may share one registry only if they use
// disjoint metric names; the intended shape is one bridge per process.
func NewBridge(r *Registry) *Bridge {
	b := &Bridge{
		carveAccepted: r.Counter(MetricCarveAccepted, "Carve attempts whose block satisfied its host device."),
		carveRejected: make(map[string]*Counter, len(rejectReasons)),
		fmPasses:      r.Counter(MetricFMPasses, "Completed FM passes."),
		fmMoves:       r.Counter(MetricFMMoves, "FM moves applied before best-prefix rollback."),
		cutAfterPass:  r.Histogram(MetricFMCutAfterPass, "Cut size after each FM pass (post-rollback).", ExpBuckets(1, 2, 13)),
		movesPerPass:  r.Histogram(MetricFMMovesPerPass, "Moves applied per FM pass.", ExpBuckets(1, 2, 13)),
		replicas:      r.Counter(MetricReplicas, "Replica instances created by carve attempts."),
		rollbacks:     r.Counter(MetricRollbacks, "Replication-state rollbacks performed by carve attempts."),
		solutions:     make(map[bool]*Counter, 2),
		improved:      r.Counter(MetricImproved, "Feasible solutions that became the incumbent best."),
		panics:        r.Counter(MetricPanics, "Solution attempts that died to a contained panic."),
		phase:         make(map[string]*Histogram, len(phaseNames)),
		levels:        r.Counter(MetricLevels, "Completed uncoarsening levels of multilevel runs."),
		levelCells:    r.Histogram(MetricLevelCells, "Coarse cell count per completed uncoarsening level.", ExpBuckets(1, 4, 12)),
		levelCut:      r.Histogram(MetricLevelCut, "Cut size after each level's FM refinement.", ExpBuckets(1, 2, 13)),

		parRounds:        r.Counter(MetricParRounds, "Parallel-refinement sub-rounds executed."),
		parProposals:     r.Counter(MetricParProposals, "Move proposals evaluated by parallel-refinement workers."),
		parCommits:       r.Counter(MetricParCommits, "Proposals committed by the parallel-refinement committer."),
		parStale:         r.Counter(MetricParStale, "Proposals invalidated by an earlier commit's neighborhood."),
		parCommitsPerRnd: r.Histogram(MetricParCommitsPerRnd, "Commits applied per parallel-refinement sub-round.", ExpBuckets(1, 2, 8)),

		topoBest: r.Gauge(MetricTopoBest, "Hop-weighted interconnect of the incumbent best solution (board-backed runs only)."),
		topoCost: r.Histogram(MetricTopoCost, "Hop-weighted interconnect per feasible solution (board-backed runs only).", ExpBuckets(1, 2, 16)),

		checkpoints: r.Counter(MetricCheckpoints, "Search checkpoints persisted by the index-ordered reducer."),
		resumes:     r.Counter(MetricResumes, "Searches restarted from a persisted checkpoint."),
	}
	rej := r.CounterVec(MetricCarveRejected, "Carve attempts rejected, by static rejection code.", "reason")
	for _, reason := range rejectReasons {
		b.carveRejected[reason] = rej.With(reason)
	}
	b.rejectedOther = rej.With("other")
	sol := r.CounterVec(MetricSolutions, "Folded solution attempts, by feasibility.", "feasible")
	b.solutions[true] = sol.With("true")
	b.solutions[false] = sol.With("false")
	ph := r.HistogramVec(MetricPhaseSeconds, "Wall-clock duration of engine phases.", LatencyBuckets(), "phase")
	for _, name := range phaseNames {
		b.phase[name] = ph.With(name)
	}
	b.phaseOther = ph.With("other")
	return b
}

// Event implements trace.Sink.
func (b *Bridge) Event(e trace.Event) {
	switch e.Kind {
	case trace.KindFMPass:
		b.fmPasses.Inc()
		b.fmMoves.Add(int64(e.Moves))
		b.cutAfterPass.Observe(float64(e.Cut))
		b.movesPerPass.Observe(float64(e.Moves))
	case trace.KindCarveAccepted:
		b.carveAccepted.Inc()
		b.replicas.Add(int64(e.Replicas))
		b.rollbacks.Add(int64(e.Rollbacks))
	case trace.KindCarveRejected:
		c, ok := b.carveRejected[e.Reason]
		if !ok {
			c = b.rejectedOther
		}
		c.Inc()
		b.replicas.Add(int64(e.Replicas))
		b.rollbacks.Add(int64(e.Rollbacks))
	case trace.KindSolution:
		b.solutions[e.Feasible].Inc()
		if e.Improved {
			b.improved.Inc()
		}
		if e.Panic {
			b.panics.Inc()
		}
		if e.HasTopo && e.Feasible {
			b.topoCost.Observe(float64(e.Topo))
			if e.Improved {
				b.topoBest.Set(int64(e.Topo))
			}
		}
	case trace.KindPhase:
		h, ok := b.phase[e.Phase]
		if !ok {
			h = b.phaseOther
		}
		h.Observe(e.Dur.Seconds())
	case trace.KindLevel:
		b.levels.Inc()
		b.levelCells.Observe(float64(e.Cells))
		b.levelCut.Observe(float64(e.Cut))
	case trace.KindParRound:
		b.parRounds.Inc()
		b.parProposals.Add(int64(e.Proposals))
		b.parCommits.Add(int64(e.Commits))
		b.parStale.Add(int64(e.Stale))
		b.parCommitsPerRnd.Observe(float64(e.Commits))
	case trace.KindCheckpoint:
		b.checkpoints.Inc()
	case trace.KindResume:
		b.resumes.Inc()
	}
}
