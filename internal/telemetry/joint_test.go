package telemetry_test

import (
	"strconv"
	"strings"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/telemetry"
)

// metricValue extracts one un-labelled sample from Prometheus text
// exposition, or -1 when the series is absent.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v
	}
	return -1
}

// TestBridgeJointMultilevelParallel drives the bridge through a real
// partition with BOTH the multilevel V-cycle and the parallel
// refinement engine engaged. The two features emit disjoint trace
// kinds (KindLevel from uncoarsening, KindParRound from parfm
// sub-rounds); a combined run must surface both series on the same
// registry — the configuration operators actually deploy.
func TestBridgeJointMultilevelParallel(t *testing.T) {
	g, err := bench.Generate(bench.Params{
		Cells: 700, PrimaryIn: 16, PrimaryOut: 10, Seed: 5, Clustering: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	bridge := telemetry.NewBridge(reg)
	_, err = kway.Partition(g, kway.Options{
		Library: library.XC3000(), Solutions: 4, Seed: 9,
		Multilevel: true, MultilevelMinCells: 200,
		RefineWorkers: 2,
		Trace:         bridge,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if v := metricValue(t, text, telemetry.MetricLevels); v <= 0 {
		t.Errorf("%s = %v, want > 0 (V-cycle never reported a level)", telemetry.MetricLevels, v)
	}
	if v := metricValue(t, text, telemetry.MetricParRounds); v <= 0 {
		t.Errorf("%s = %v, want > 0 (parallel refinement never reported a sub-round)", telemetry.MetricParRounds, v)
	}
	if v := metricValue(t, text, telemetry.MetricFMPasses); v <= 0 {
		t.Errorf("%s = %v, want > 0", telemetry.MetricFMPasses, v)
	}
}
