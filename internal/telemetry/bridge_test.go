package telemetry

import (
	"strings"
	"testing"
	"time"

	"fpgapart/internal/trace"
)

func TestBridgeMapsEvents(t *testing.T) {
	r := NewRegistry()
	b := NewBridge(r)
	events := []trace.Event{
		{Kind: trace.KindFMPass, Pass: 1, Moves: 40, Cut: 12},
		{Kind: trace.KindFMPass, Pass: 2, Moves: 10, Cut: 7},
		{Kind: trace.KindCarveAccepted, Replicas: 3, Rollbacks: 5, Device: "XC3042"},
		{Kind: trace.KindCarveRejected, Reason: "terminals", Rollbacks: 2},
		{Kind: trace.KindCarveRejected, Reason: "no-device"},
		{Kind: trace.KindCarveRejected, Reason: "never-heard-of-it"},
		{Kind: trace.KindSolution, Feasible: true, Improved: true, Cost: 756},
		{Kind: trace.KindSolution, Feasible: false, Panic: true},
		{Kind: trace.KindPhase, Phase: trace.PhaseSearch, Dur: 250 * time.Millisecond},
		{Kind: trace.KindPhase, Phase: "mystery", Dur: time.Millisecond},
		{Kind: trace.KindParRound, Pass: 1, Round: 0, Proposals: 300, Commits: 4, Stale: 9},
		{Kind: trace.KindParRound, Pass: 1, Round: 1, Proposals: 17, Commits: 2, Stale: 3},
	}
	for _, e := range events {
		b.Event(e)
	}
	if got := b.fmPasses.Value(); got != 2 {
		t.Fatalf("fm passes %d", got)
	}
	if got := b.fmMoves.Value(); got != 50 {
		t.Fatalf("fm moves %d", got)
	}
	if got := b.cutAfterPass.Count(); got != 2 {
		t.Fatalf("cut histogram count %d", got)
	}
	if got := b.carveAccepted.Value(); got != 1 {
		t.Fatalf("carves %d", got)
	}
	if got := b.replicas.Value(); got != 3 {
		t.Fatalf("replicas %d", got)
	}
	if got := b.rollbacks.Value(); got != 7 {
		t.Fatalf("rollbacks %d", got)
	}
	if got := b.carveRejected["terminals"].Value(); got != 1 {
		t.Fatalf("terminals rejects %d", got)
	}
	if got := b.rejectedOther.Value(); got != 1 {
		t.Fatalf("unknown reason should land on other, got %d", got)
	}
	if got := b.solutions[true].Value(); got != 1 {
		t.Fatalf("feasible solutions %d", got)
	}
	if got := b.solutions[false].Value(); got != 1 {
		t.Fatalf("infeasible solutions %d", got)
	}
	if got := b.improved.Value(); got != 1 {
		t.Fatalf("improved %d", got)
	}
	if got := b.panics.Value(); got != 1 {
		t.Fatalf("panics %d", got)
	}
	if got := b.phase[trace.PhaseSearch].Count(); got != 1 {
		t.Fatalf("search phase count %d", got)
	}
	if got := b.phaseOther.Count(); got != 1 {
		t.Fatalf("unknown phase should land on other, got %d", got)
	}
	if got := b.parRounds.Value(); got != 2 {
		t.Fatalf("parfm rounds %d", got)
	}
	if got := b.parProposals.Value(); got != 317 {
		t.Fatalf("parfm proposals %d", got)
	}
	if got := b.parCommits.Value(); got != 6 {
		t.Fatalf("parfm commits %d", got)
	}
	if got := b.parStale.Value(); got != 12 {
		t.Fatalf("parfm stale %d", got)
	}
	if got := b.parCommitsPerRnd.Count(); got != 2 {
		t.Fatalf("parfm commits-per-round count %d", got)
	}

	out := render(t, r)
	for _, want := range []string{
		`fpgapart_carve_rejected_total{reason="terminals"} 1`,
		`fpgapart_carve_accepted_total 1`,
		`fpgapart_solutions_total{feasible="true"} 1`,
		`fpgapart_phase_seconds_count{phase="search"} 1`,
		`fpgapart_parfm_commits_total 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
}

// The bridge sits on the FM hot path via the trace stream: steady-state
// event observation must not allocate.
func TestBridgeEventAllocs(t *testing.T) {
	b := NewBridge(NewRegistry())
	events := []trace.Event{
		{Kind: trace.KindFMPass, Moves: 12, Cut: 9},
		{Kind: trace.KindCarveAccepted, Replicas: 1, Rollbacks: 2},
		{Kind: trace.KindCarveRejected, Reason: "fm"},
		{Kind: trace.KindSolution, Feasible: true, Improved: true},
		{Kind: trace.KindPhase, Phase: trace.PhaseFold, Dur: time.Millisecond},
		{Kind: trace.KindLevel, Level: 2, Cells: 120, Cut: 30},
		{Kind: trace.KindParRound, Pass: 1, Round: 2, Proposals: 40, Commits: 4, Stale: 2},
	}
	if avg := testing.AllocsPerRun(200, func() {
		for _, e := range events {
			b.Event(e)
		}
	}); avg != 0 {
		t.Fatalf("Bridge.Event allocates %v times", avg)
	}
}
