package telemetry

import (
	"sync"
	"time"
)

// Clock supplies wall-clock readings to the timing instrumentation.
// The clock is explicit so tests can substitute a fake and so the
// determinism contract is auditable: clock readings feed only metric
// observations and trace phase events, never search decisions, which
// is what keeps fixed-seed partitioning results byte-identical with
// telemetry enabled.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock returns the real wall clock.
func SystemClock() Clock { return systemClock{} }

// FakeClock is a manually advanced Clock for tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a FakeClock starting at t.
func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{t: t} }

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
