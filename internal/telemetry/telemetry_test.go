package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Inc()
	c.Add(4)
	g := r.Gauge("test_depth", "Depth.")
	g.Set(7)
	g.Dec()
	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total 5\n",
		"# HELP test_depth Depth.\n# TYPE test_depth gauge\ntest_depth 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if c.Value() != 5 || g.Value() != 6 {
		t.Fatalf("values: %d %d", c.Value(), g.Value())
	}
}

func TestCounterVecAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_rejects_total", "Rejects by reason.", "reason")
	v.With("terminals").Add(2)
	v.With(`quo"te\back` + "\nline").Inc()
	// With is idempotent: the same label values return the same series.
	if v.With("terminals") != v.With("terminals") {
		t.Fatal("With not idempotent")
	}
	out := render(t, r)
	if !strings.Contains(out, `test_rejects_total{reason="terminals"} 2`) {
		t.Fatalf("missing labeled sample:\n%s", out)
	}
	if !strings.Contains(out, `test_rejects_total{reason="quo\"te\\back\nline"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_size", "Sizes.", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Fatalf("sum %g", got)
	}
	out := render(t, r)
	for _, want := range []string{
		`test_size_bucket{le="1"} 2`,
		`test_size_bucket{le="2"} 3`,
		`test_size_bucket{le="4"} 4`,
		`test_size_bucket{le="+Inf"} 5`,
		`test_size_sum 106`,
		`test_size_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramVecLabelsComposeWithLe(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_lat", "Latency.", []float64{1}, "endpoint")
	v.With("/jobs").Observe(0.5)
	out := render(t, r)
	for _, want := range []string{
		`test_lat_bucket{endpoint="/jobs",le="1"} 1`,
		`test_lat_bucket{endpoint="/jobs",le="+Inf"} 1`,
		`test_lat_sum{endpoint="/jobs"} 0.5`,
		`test_lat_count{endpoint="/jobs"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 3
	r.GaugeFunc("test_queue_depth", "Queue depth.", func() float64 { return float64(depth) })
	if !strings.Contains(render(t, r), "test_queue_depth 3\n") {
		t.Fatal("missing gauge func sample")
	}
	depth = 9
	if !strings.Contains(render(t, r), "test_queue_depth 9\n") {
		t.Fatal("gauge func not sampled at write time")
	}
}

// Exposition must be deterministic: families sorted by name, series by
// label string, so identical state renders byte-identically.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		v := r.CounterVec("test_b_total", "B.", "k")
		for _, val := range order {
			v.With(val).Inc()
		}
		r.Counter("test_a_total", "A.").Inc()
		r.Gauge("test_c", "C.").Set(1)
		return render(t, r)
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"})
	if a != b {
		t.Fatalf("exposition depends on registration order:\n%s\nvs\n%s", a, b)
	}
	iA := strings.Index(a, "test_a_total")
	iB := strings.Index(a, "test_b_total")
	iC := strings.Index(a, "test_c")
	if !(iA < iB && iB < iC) {
		t.Fatalf("families not sorted:\n%s", a)
	}
}

func TestDuplicateRegistrationConflicts(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "X.")
	// Same name, same type: idempotent.
	if r.Counter("test_x_total", "X.").Value() != 0 {
		t.Fatal("re-registration should return the existing counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting type should panic")
		}
	}()
	r.Gauge("test_x_total", "X.")
}

func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	g := r.Gauge("test_depth", "Depth.")
	h := r.Histogram("test_lat", "Lat.", LatencyBuckets())
	if avg := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.017)
	}); avg != 0 {
		t.Fatalf("metric observation allocates %v times", avg)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	h := r.Histogram("test_v", "V.", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(w%4) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost observations: %d %d", c.Value(), h.Count())
	}
	if got, want := h.Sum(), float64(2*1000*(0.5+1.5+2.5+3.5)); math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum %g, want %g", got, want)
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := ExpBuckets(1, 2, 4); got[0] != 1 || got[3] != 8 {
		t.Fatalf("ExpBuckets: %v", got)
	}
	if got := LinearBuckets(0, 5, 3); got[0] != 0 || got[2] != 10 {
		t.Fatalf("LinearBuckets: %v", got)
	}
	lb := LatencyBuckets()
	if lb[0] != 0.001 || lb[len(lb)-1] < 60 {
		t.Fatalf("LatencyBuckets: %v", lb)
	}
}

func TestFakeClock(t *testing.T) {
	t0 := time.Unix(1000, 0)
	c := NewFakeClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatal("fake clock start")
	}
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("advance: %v", got)
	}
	if SystemClock().Now().IsZero() {
		t.Fatal("system clock returned zero time")
	}
}
