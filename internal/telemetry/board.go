package telemetry

import (
	"fmt"

	"fpgapart/internal/topology"
)

// BoardGauges publishes per-link utilization of a board topology:
// MetricLinkLoad carries the routed net load of each link (fed by the
// caller, typically from verify.LinkLoads on the winning solution) and
// MetricLinkCapacity its configured capacity (set once at
// construction). Series are labeled "link"="A-B" in link-index order,
// so load/capacity pairs join on the label.
type BoardGauges struct {
	load []*Gauge
}

// NewBoardGauges registers one load and one capacity series per board
// link on r and returns the load setter.
func NewBoardGauges(r *Registry, b *topology.Board) *BoardGauges {
	loadVec := r.GaugeVec(MetricLinkLoad, "Distinct nets routed over the board link by the winning solution.", "link")
	capVec := r.GaugeVec(MetricLinkCapacity, "Configured net capacity of the board link.", "link")
	bg := &BoardGauges{load: make([]*Gauge, len(b.Links))}
	for i, l := range b.Links {
		label := fmt.Sprintf("%d-%d", l.A, l.B)
		bg.load[i] = loadVec.With(label)
		capVec.With(label).Set(int64(l.Capacity))
	}
	return bg
}

// SetLoads publishes the per-link loads, indexed like Board.Links
// (verify.LinkLoads returns exactly this shape). Extra entries are
// ignored so a stale slice cannot panic the exporter.
func (bg *BoardGauges) SetLoads(loads []int) {
	for i, g := range bg.load {
		if i >= len(loads) {
			return
		}
		g.Set(int64(loads[i]))
	}
}
