package multilevel

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/oracle"
	"fpgapart/internal/replication"
)

// oracleBounds mirrors the loose bounds the oracle differential tests
// use: eps asymmetry with replication headroom clamped to the total.
func oracleBounds(g *hypergraph.Graph, eps float64) (minA, maxA [2]int) {
	minA, maxA = fm.Balance(g.TotalArea(), eps)
	maxA = [2]int{maxA[0] * 13 / 10, maxA[1] * 13 / 10}
	for b := 0; b < 2; b++ {
		if maxA[b] > g.TotalArea() {
			maxA[b] = g.TotalArea()
		}
		if maxA[b] < minA[b] {
			maxA[b] = minA[b]
		}
	}
	return minA, maxA
}

// TestMultilevelNeverBeatsOracle sweeps the exhaustive-scale corpus:
// the V-cycle (forced through real coarsening via a tiny MinCells) can
// never beat the exhaustive optimum, and must hit it on most of the
// corpus — a multilevel pass that loses the optimum everywhere would
// signal broken projection.
func TestMultilevelNeverBeatsOracle(t *testing.T) {
	gs, err := oracle.Corpus(oracle.CorpusParams{Cases: 120})
	if err != nil {
		t.Fatal(err)
	}
	hits, total := 0, 0
	for gi, g := range gs {
		minA, maxA := oracleBounds(g, 0.30)
		opt, err := oracle.MinCut(g, oracle.Config{MinArea: minA, MaxArea: maxA})
		if err != nil {
			t.Fatalf("case %d (%d cells): %v", gi, g.NumCells(), err)
		}
		res, err := Run(g, Config{
			TargetArea: g.TotalArea() / 2,
			MinArea:    minA, MaxArea: maxA,
			MinCells: 3, MaxClusterArea: 3, // force real coarsening even at oracle scale
			Starts: 8,
			Seed:   int64(gi),
		})
		if err != nil {
			t.Fatalf("case %d: multilevel: %v", gi, err)
		}
		if res.Cut < opt.Cut {
			t.Fatalf("case %d (%s): multilevel cut %d beats exhaustive optimum %d — one of them is wrong",
				gi, g.Name, res.Cut, opt.Cut)
		}
		// The returned assignment must reproduce the claimed cut.
		st, err := replication.NewState(g, res.Assign)
		if err != nil {
			t.Fatalf("case %d: %v", gi, err)
		}
		if st.CutSize() != res.Cut {
			t.Fatalf("case %d: reported cut %d, recomputed %d", gi, res.Cut, st.CutSize())
		}
		total++
		if res.Cut == opt.Cut {
			hits++
		}
	}
	// Forcing contraction on 4–10-cell graphs is deliberately
	// adversarial (a cluster cap of 3 can weld optimal-cut cells
	// together), so the bar sits below flat FM's 80%: the observed rate
	// is ~69%.
	rate := float64(hits) / float64(total)
	t.Logf("multilevel hit the exhaustive optimum on %d/%d corpus cases (%.1f%%)", hits, total, 100*rate)
	if rate < 0.65 {
		t.Fatalf("multilevel optimality rate %.1f%% below the 65%% acceptance bar", 100*rate)
	}
}

// TestMultilevelTracksFlatFM compares the V-cycle against flat
// multi-start FM on medium instances with the same attempt budget: the
// multilevel cut may wander but must stay within a fixed tolerance of
// flat, and usually wins.
func TestMultilevelTracksFlatFM(t *testing.T) {
	wins, rounds := 0, 0
	for _, seed := range []int64{2, 5, 8} {
		g := circuit(t, 2000, seed)
		minA, maxA := fm.Balance(g.TotalArea(), 0.1)
		_, flat, err := fm.Bipartition(g, fm.Options{
			Config: fm.Config{
				MinArea: minA, MaxArea: maxA,
				Threshold: fm.NoReplication, Seed: seed,
			},
			Starts: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		ml, err := Run(g, Config{
			TargetArea: g.TotalArea() / 2,
			MinArea:    minA, MaxArea: maxA,
			Starts: 4, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Fixed tolerance: multilevel may lose at most 20% + 2 nets.
		if limit := flat.Cut + flat.Cut/5 + 2; ml.Cut > limit {
			t.Errorf("seed %d: multilevel cut %d worse than flat %d beyond tolerance %d",
				seed, ml.Cut, flat.Cut, limit)
		}
		rounds++
		if ml.Cut <= flat.Cut {
			wins++
		}
	}
	t.Logf("multilevel matched or beat flat FM on %d/%d instances", wins, rounds)
	if wins == 0 {
		t.Fatal("multilevel lost to flat FM on every instance — coarsening is not helping")
	}
}

// TestLargeInstanceMultilevelBeatsFlat is the acceptance-scale run: a
// fixed-seed 10⁵-cell Rent instance, flat FM and the V-cycle on the
// same single-start budget. Multilevel must produce a cut no worse
// than flat while staying CI-feasible.
func TestLargeInstanceMultilevelBeatsFlat(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("10⁵-cell instance")
	}
	g, err := bench.GenerateRent(bench.RentParams{
		Cells: 100_000, PrimaryIn: 200, PrimaryOut: 100, Rent: 0.65, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	minA, maxA := fm.Balance(g.TotalArea(), 0.1)
	_, flat, err := fm.Bipartition(g, fm.Options{
		Config: fm.Config{
			MinArea: minA, MaxArea: maxA,
			Threshold: fm.NoReplication, Seed: 1,
		},
		Starts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Run(g, Config{
		TargetArea: g.TotalArea() / 2,
		MinArea:    minA, MaxArea: maxA,
		Starts: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("100k cells: flat cut %d, multilevel cut %d over %d levels", flat.Cut, ml.Cut, len(ml.Levels))
	if ml.Cut > flat.Cut {
		t.Fatalf("multilevel cut %d worse than flat FM %d on the same budget", ml.Cut, flat.Cut)
	}
}

// permuteNames returns a structurally identical copy of g with every
// cell and net renamed. The engine keys on indices, never names, so
// fixed-seed results must be byte-identical.
func permuteNames(t *testing.T, g *hypergraph.Graph) *hypergraph.Graph {
	t.Helper()
	b := hypergraph.NewBuilder(g.Name + "-renamed")
	ids := make([]hypergraph.NetID, g.NumNets())
	for ni := range g.Nets {
		name := g.Nets[ni].Name + "x"
		switch g.Nets[ni].Ext {
		case hypergraph.ExtIn:
			ids[ni] = b.InputNet(name)
		case hypergraph.ExtOut:
			ids[ni] = b.OutputNet(name)
		default:
			ids[ni] = b.Net(name)
		}
	}
	remap := func(nets []hypergraph.NetID) []hypergraph.NetID {
		out := make([]hypergraph.NetID, len(nets))
		for i, n := range nets {
			out[i] = ids[n]
		}
		return out
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		b.AddCell(hypergraph.CellSpec{
			Name:    c.Name + "x",
			Inputs:  remap(c.Inputs),
			Outputs: remap(c.Outputs),
			Dep:     c.Dep,
			Area:    c.Area,
			DFFs:    c.DFFs,
			Replica: c.Replica,
		})
	}
	out, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRelabelInvariance is the metamorphic check: renaming every cell
// and net (same indices, same structure) must not change the V-cycle's
// result at all.
func TestRelabelInvariance(t *testing.T) {
	g := circuit(t, 900, 13)
	cfg := balancedConfig(g, 0.1, 4)
	a, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(permuteNames(t, g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cut != b.Cut || a.Area != b.Area {
		t.Fatalf("renaming changed the result: cut %d/%v vs %d/%v", a.Cut, a.Area, b.Cut, b.Area)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("renaming changed the assignment at cell %d", i)
		}
	}
}
