// Package multilevel implements the coarsen→partition→uncoarsen
// V-cycle over the flat FM bipartitioner — the standard scaling
// recipe of modern hypergraph partitioners (hMETIS, KaHyPar and the
// direct k-way systems cited in PAPERS.md), grafted onto this engine's
// substrates: the cut-preserving connectivity clustering of
// internal/cluster contracts the netlist level by level, the coarsest
// hypergraph is bipartitioned by a deterministic multi-start search
// (internal/search) over the existing cluster-seed + FM machinery, and
// the assignment is projected back one level at a time with an FM
// refinement pass at every level.
//
// Three structural facts make the V-cycle sound here:
//
//   - Contraction is cut-preserving: a net internal to one cluster
//     vanishes, every surviving net keeps its external kind, and
//     coarse cells sum member areas — so projecting a coarse
//     assignment to the finer level preserves both the cut size and
//     the block areas exactly.
//   - FM never worsens: each pass rolls back to its best prefix, so
//     the refined cut at a level is never above the projected cut.
//   - All randomness is seed-derived and every reduction is
//     index-ordered, so fixed-seed results are byte-identical
//     run-to-run regardless of worker scheduling.
//
// The V-cycle runs plain FM (no replication) at every level: coarse
// cells carry full output dependence, so functional replication is
// meaningless above the finest level, and the finest-level replication
// pass belongs to the caller (kway's carveFM runs replication-FM on
// the returned assignment; see DESIGN.md §13).
package multilevel

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"fpgapart/internal/cluster"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
	"fpgapart/internal/search"
	"fpgapart/internal/span"
	"fpgapart/internal/trace"
)

// Primes separating the package's independent seed streams: coarsest
// multi-start attempts, per-level clustering and per-level refinement.
const (
	startStride   = 7907
	clusterStride = 6151
	refineStride  = 15485863
)

// Config controls one V-cycle run.
type Config struct {
	// TargetArea is the block-0 area goal the coarsest-level seed
	// clusters grow toward (0 = the midpoint of the feasible window).
	TargetArea int
	// MinArea/MaxArea bound the block areas at the finest level, in
	// fm.Config form. Coarse levels widen the window by the level's
	// cluster granularity (see Slack) so a coarse assignment can exist
	// at all; the finest level always uses the exact bounds.
	MinArea [2]int
	MaxArea [2]int
	// PinExternal switches the objective from the plain cut to t_P0
	// (terminal pressure): external nets pin one terminal into block 0
	// at every level, mirroring kway's carve objective.
	PinExternal bool
	// MinCells stops coarsening once a level has at most this many
	// cells (default 96).
	MinCells int
	// MaxLevels caps the hierarchy depth (default 24).
	MaxLevels int
	// CoarsenRatio stops coarsening when one round shrinks the cell
	// count by less than this factor — coarse/fine above the ratio
	// means matching has saturated (default 0.85).
	CoarsenRatio float64
	// MaxClusterArea caps a coarse cell's area across all levels
	// (0 = max(2, TargetArea/8)): the coarsest granularity must stay
	// well below the block size or no coarse assignment can satisfy
	// the area window.
	MaxClusterArea int
	// Slack controls the per-level widening of the block-0 area window
	// during uncoarsening: 0 (auto) widens level ℓ by its cluster area
	// cap — the granularity actually achievable there; a positive
	// value widens every coarse level by that fixed amount; a negative
	// value disables widening entirely, which keeps the exact window at
	// every level (then repair never runs and the refined cut is
	// monotone non-increasing down the whole cycle, the property
	// TestMonotoneCutAcrossLevels pins).
	Slack int
	// Starts is the number of independent coarsest-level attempts the
	// deterministic multi-start search folds (default 4).
	Starts int
	// Workers bounds the coarsest search's worker pool (default 1 —
	// the V-cycle usually runs inside kway's own worker pool, where
	// nested parallelism oversubscribes).
	Workers int
	// MaxPasses caps FM passes per refinement (0 = engine default).
	MaxPasses int
	// RefineWorkers selects the FM engine for every refinement run in
	// the cycle (coarsest partition and per-level refinement): >= 2
	// uses the deterministic parallel sub-round engine with that many
	// proposal workers, 0 or 1 the classic serial engine.
	RefineWorkers int
	// NetWeights, when non-nil, switches every refinement of the cycle
	// (coarsest partition and per-level passes) to the weighted
	// objective (replication.SetNetWeights): keys are finest-level net
	// names. Contraction preserves the surviving nets' names — nets
	// internal to a cluster vanish, never rename — so each level's
	// weight table is derived by name lookup. Nets absent from the map
	// get the zero table (they cost nothing in any configuration).
	NetWeights map[string]replication.NetWeights
	// Seed derives every random stream of the run.
	Seed int64
	// Trace, when non-nil, receives one trace.KindLevel event per
	// refined level plus coarsen/uncoarsen phase timings. TraceAttempt
	// labels the events with the enclosing solution attempt (-1 for
	// standalone runs). Clock readings feed only the sink, never
	// search decisions.
	Trace        trace.Sink
	TraceAttempt int
	// Spans, when armed, times the V-cycle as a span subtree of the
	// enclosing attempt: one "coarsen" span, one "level" span per
	// refined level (FM/parfm pass spans nest under it), and one
	// "uncoarsen" span over the projection sweep. The disarmed zero
	// value is inert. Span clock readings feed only the trace, never
	// search decisions.
	Spans span.Scope
	// Now supplies the wall clock for phase events (nil = time.Now;
	// never read when Trace is nil).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MinCells == 0 {
		c.MinCells = 96
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 24
	}
	if c.CoarsenRatio == 0 {
		c.CoarsenRatio = 0.85
	}
	if c.Starts == 0 {
		c.Starts = 4
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// LevelStats records one level's share of the V-cycle, coarsest first
// in Result.Levels.
type LevelStats struct {
	// Level is the hierarchy depth: 0 is the finest (input) graph.
	Level int
	// Cells/Nets size the level's hypergraph.
	Cells, Nets int
	// ClusterCap is the cluster-area cap used to build this level
	// (0 at the finest level).
	ClusterCap int
	// CutProjected is the cut right after projecting the coarser
	// assignment down (after repair); at the coarsest level it is the
	// seed assignment's cut. CutRefined is the cut after the level's
	// FM refinement — never above CutProjected.
	CutProjected, CutRefined int
	// RepairMoves counts the cells moved to re-enter the level's area
	// window after projection (0 when the window was already met).
	RepairMoves int
	// Area0 is the block-0 area after the level's refinement.
	Area0 int
	// Moves/Passes total the refinement's FM work.
	Moves, Passes int
}

// Result is the finished V-cycle.
type Result struct {
	// Assign is the finest-level bipartition assignment.
	Assign []replication.Block
	// Cut is the finest-level cut after refinement (t_P0 when
	// Config.PinExternal); Area the block areas.
	Cut  int
	Area [2]int
	// Levels holds per-level statistics, coarsest first.
	Levels []LevelStats
	// Moves/Passes total the FM work across all levels; RepairMoves
	// the projection-repair work.
	Moves, Passes, RepairMoves int
}

// level is one rung of the hierarchy. cl relates g to the next finer
// level's graph (nil at the finest level).
type level struct {
	g   *hypergraph.Graph
	cl  *cluster.Clustering
	cap int
}

// Run executes the V-cycle and returns the finest-level bipartition.
func Run(g *hypergraph.Graph, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if g.NumCells() == 0 {
		return Result{}, fmt.Errorf("multilevel: empty circuit")
	}
	if cfg.MaxArea[0] <= 0 || cfg.MaxArea[1] <= 0 {
		return Result{}, fmt.Errorf("multilevel: MaxArea must be positive, got %v", cfg.MaxArea)
	}
	total := g.TotalArea()
	// The two blocks' bounds collapse to one block-0 area window.
	lo := cfg.MinArea[0]
	if v := total - cfg.MaxArea[1]; v > lo {
		lo = v
	}
	hi := cfg.MaxArea[0]
	if v := total - cfg.MinArea[1]; v < hi {
		hi = v
	}
	if lo > hi {
		return Result{}, fmt.Errorf("multilevel: infeasible area window [%d,%d] for total %d", lo, hi, total)
	}
	target := cfg.TargetArea
	if target <= 0 {
		target = (lo + hi) / 2
	}
	if target < lo {
		target = lo
	}
	if target > hi {
		target = hi
	}

	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	var coarsenStart time.Time
	if cfg.Trace != nil {
		coarsenStart = now()
	}
	coarsenSpan := cfg.Spans.Start("coarsen", cfg.TraceAttempt)
	levels := coarsen(g, cfg, target)
	coarsenSpan.End()
	if cfg.Trace != nil {
		cfg.Trace.Event(trace.Event{Kind: trace.KindPhase, Attempt: cfg.TraceAttempt, Phase: trace.PhaseCoarsen, Dur: now().Sub(coarsenStart)})
	}
	top := len(levels) - 1

	var res Result
	topSpan := cfg.Spans.Start("level", cfg.TraceAttempt)
	topCfg := cfg
	topCfg.Spans = topSpan.Scope()
	assign, stats, err := initialPartition(levels[top], topCfg, window(lo, hi, total, slack(cfg, levels[top])), target)
	if err != nil {
		topSpan.End()
		return Result{}, err
	}
	stats.Level = top
	if topSpan.Scope().Enabled() {
		topSpan.Detail(levelDetail(stats))
	}
	topSpan.End()
	res.Levels = append(res.Levels, stats)
	emitLevel(cfg, stats)

	var uncoarsenStart time.Time
	if cfg.Trace != nil {
		uncoarsenStart = now()
	}
	uncoarsenSpan := cfg.Spans.Start("uncoarsen", cfg.TraceAttempt)
	var runner fm.Runner
	cut := stats.CutRefined
	area0 := areaOf(levels[top].g, assign)
	for l := top - 1; l >= 0; l-- {
		fine, perr := levels[l+1].cl.Project(assign, levels[l].g.NumCells())
		if perr != nil {
			uncoarsenSpan.End()
			return Result{}, fmt.Errorf("multilevel: level %d projection: %w", l, perr)
		}
		assign = fine
		lvlSpan := uncoarsenSpan.Scope().Start("level", cfg.TraceAttempt)
		lvlCfg := cfg
		lvlCfg.Spans = lvlSpan.Scope()
		st, cutProj, lvl, lerr := refineLevel(&runner, levels[l], assign, lvlCfg, window(lo, hi, total, slack(cfg, levels[l])), l)
		if lerr != nil {
			lvlSpan.End()
			uncoarsenSpan.End()
			return Result{}, lerr
		}
		lvl.CutProjected = cutProj
		if lvlSpan.Scope().Enabled() {
			lvlSpan.Detail(levelDetail(lvl))
		}
		lvlSpan.End()
		res.Levels = append(res.Levels, lvl)
		emitLevel(cfg, lvl)
		for c := range assign {
			assign[c] = st.Home(hypergraph.CellID(c))
		}
		cut = lvl.CutRefined
		area0 = st.Area(0)
	}
	uncoarsenSpan.End()
	if cfg.Trace != nil {
		cfg.Trace.Event(trace.Event{Kind: trace.KindPhase, Attempt: cfg.TraceAttempt, Phase: trace.PhaseUncoarsen, Dur: now().Sub(uncoarsenStart)})
	}

	res.Assign = assign
	res.Cut = cut
	res.Area = [2]int{area0, total - area0}
	for _, s := range res.Levels {
		res.Moves += s.Moves
		res.Passes += s.Passes
		res.RepairMoves += s.RepairMoves
	}
	return res, nil
}

// levelDetail renders one level's span annotation (armed paths only).
func levelDetail(s LevelStats) string {
	return fmt.Sprintf("level=%d cells=%d cut=%d", s.Level, s.Cells, s.CutRefined)
}

// emitLevel reports one refined level to the trace sink.
func emitLevel(cfg Config, s LevelStats) {
	if cfg.Trace == nil {
		return
	}
	cfg.Trace.Event(trace.Event{
		Kind: trace.KindLevel, Attempt: cfg.TraceAttempt,
		Level: s.Level, Cells: s.Cells,
		Area: s.Area0, Cut: s.CutRefined,
		Moves: s.Moves, Pass: s.Passes,
	})
}

// coarsen builds the cluster hierarchy bottom-up: one pairwise
// matching round per level with a doubling area cap, stopping at
// MinCells, MaxLevels, saturation (CoarsenRatio) or a contraction
// error (the current level then serves as the coarsest).
func coarsen(g *hypergraph.Graph, cfg Config, target int) []level {
	levels := []level{{g: g}}
	capMax := cfg.MaxClusterArea
	if capMax == 0 {
		capMax = target / 8
		if capMax < 2 {
			capMax = 2
		}
	}
	base := 1
	for i := range g.Cells {
		if a := g.Cells[i].Area; a > base {
			base = a
		}
	}
	for len(levels)-1 < cfg.MaxLevels {
		cur := levels[len(levels)-1].g
		if cur.NumCells() <= cfg.MinCells {
			break
		}
		areaCap := base << len(levels)
		if areaCap > capMax || areaCap <= 0 {
			areaCap = capMax
		}
		cl, err := cluster.Build(cur, cluster.Options{
			Rounds:         1,
			MaxClusterArea: areaCap,
			// replication.State admits at most 32 outputs per cell;
			// stay well under it so every level remains partitionable.
			MaxClusterOutputs: 24,
			Seed:              cfg.Seed + int64(len(levels))*clusterStride,
		})
		if err != nil || cl.Graph.NumCells() >= cur.NumCells() {
			break
		}
		levels = append(levels, level{g: cl.Graph, cl: cl, cap: areaCap})
		if float64(cl.Graph.NumCells()) > cfg.CoarsenRatio*float64(cur.NumCells()) {
			break
		}
	}
	return levels
}

// slack is the widening applied to a level's area window: the level's
// cluster granularity by default, a fixed value when Config.Slack is
// positive, zero at the finest level or when widening is disabled.
func slack(cfg Config, lv level) int {
	if lv.cl == nil || cfg.Slack < 0 {
		return 0
	}
	if cfg.Slack > 0 {
		return cfg.Slack
	}
	return lv.cap
}

// bounds is a block-0 area window in fm.Config form.
type bounds struct {
	min, max [2]int
	lo, hi   int
}

// window widens the block-0 window [lo,hi] by s and converts it to
// per-block bounds over the (level-invariant) total area.
func window(lo, hi, total, s int) bounds {
	wlo, whi := lo-s, hi+s
	if wlo < 0 {
		wlo = 0
	}
	if whi > total {
		whi = total
	}
	min1 := total - whi
	if min1 < 0 {
		min1 = 0
	}
	return bounds{
		min: [2]int{wlo, min1},
		max: [2]int{whi, total - wlo},
		lo:  wlo, hi: whi,
	}
}

// initialPartition bipartitions the coarsest hypergraph with a
// deterministic multi-start search: each attempt grows a seeded
// connected cluster toward the target area, repairs it into the
// window, and refines with plain FM; the index-ordered reduction keeps
// the best (lowest cut, then area closest to target), so the result is
// byte-identical for a fixed seed regardless of worker count.
func initialPartition(lv level, cfg Config, w bounds, target int) ([]replication.Block, LevelStats, error) {
	cg := lv.g
	tgt := target
	if tgt > w.hi {
		tgt = w.hi
	}
	type sol struct {
		assign []replication.Block
		stats  LevelStats
		area0  int
	}
	var firstErr error
	drv := search.Driver[sol]{
		NewAttempt: func() search.AttemptFunc[sol] {
			var cs fm.ClusterScratch
			var runner fm.Runner
			return func(_ context.Context, attempt int, seed int64) (sol, error) {
				assign := cs.AssignInto(nil, cg, seed, -1, tgt)
				rep, rerr := repair(cg, assign, w, seed)
				if rerr != nil {
					return sol{}, rerr
				}
				st, err := replication.NewStatePinned(cg, assign, cfg.PinExternal)
				if err != nil {
					return sol{}, err
				}
				if err := installWeights(st, cg, cfg.NetWeights); err != nil {
					return sol{}, err
				}
				cutInit := st.Objective()
				res, err := runner.Run(st, fm.Config{
					MinArea: w.min, MaxArea: w.max,
					Threshold:     fm.NoReplication,
					MaxPasses:     cfg.MaxPasses,
					RefineWorkers: cfg.RefineWorkers,
					Seed:          seed,
					Trace:         cfg.Trace, TraceAttempt: cfg.TraceAttempt,
					Spans: cfg.Spans,
				})
				if err != nil {
					return sol{}, err
				}
				for c := range assign {
					assign[c] = st.Home(hypergraph.CellID(c))
				}
				return sol{
					assign: assign,
					area0:  st.Area(0),
					stats: LevelStats{
						Cells: cg.NumCells(), Nets: cg.NumNets(), ClusterCap: lv.cap,
						CutProjected: cutInit, CutRefined: res.Cut, Area0: st.Area(0),
						RepairMoves: rep, Moves: res.Moves, Passes: res.Passes,
					},
				}, nil
			}
		},
		Better: func(a, b sol) bool {
			if a.stats.CutRefined != b.stats.CutRefined {
				return a.stats.CutRefined < b.stats.CutRefined
			}
			return absDiff(a.area0, tgt) < absDiff(b.area0, tgt)
		},
		Observe: func(_ int, _ sol, err error, _ bool) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		},
	}
	out, err := search.Run(context.Background(), search.Options{
		Attempts:   cfg.Starts,
		Workers:    cfg.Workers,
		Seed:       cfg.Seed,
		SeedStride: startStride,
	}, drv)
	if err != nil {
		return nil, LevelStats{}, fmt.Errorf("multilevel: coarsest partition: %w", err)
	}
	if !out.Found {
		return nil, LevelStats{}, fmt.Errorf("multilevel: no feasible coarsest partition in %d starts (first failure: %w)", cfg.Starts, firstErr)
	}
	return out.Best.assign, out.Best.stats, nil
}

// refineLevel repairs a projected assignment into the level's window
// and runs one plain-FM refinement over it.
func refineLevel(runner *fm.Runner, lv level, assign []replication.Block, cfg Config, w bounds, l int) (*replication.State, int, LevelStats, error) {
	rep, rerr := repair(lv.g, assign, w, cfg.Seed+int64(l+1)*refineStride)
	if rerr != nil {
		return nil, 0, LevelStats{}, fmt.Errorf("multilevel: level %d: %w", l, rerr)
	}
	st, err := replication.NewStatePinned(lv.g, assign, cfg.PinExternal)
	if err != nil {
		return nil, 0, LevelStats{}, fmt.Errorf("multilevel: level %d: %w", l, err)
	}
	if err := installWeights(st, lv.g, cfg.NetWeights); err != nil {
		return nil, 0, LevelStats{}, fmt.Errorf("multilevel: level %d: %w", l, err)
	}
	cutProj := st.Objective()
	res, err := runner.Run(st, fm.Config{
		MinArea: w.min, MaxArea: w.max,
		Threshold:     fm.NoReplication,
		MaxPasses:     cfg.MaxPasses,
		RefineWorkers: cfg.RefineWorkers,
		Seed:          cfg.Seed + int64(l+1)*refineStride,
		Trace:         cfg.Trace, TraceAttempt: cfg.TraceAttempt,
		Spans: cfg.Spans,
	})
	if err != nil {
		return nil, 0, LevelStats{}, fmt.Errorf("multilevel: level %d refinement: %w", l, err)
	}
	return st, cutProj, LevelStats{
		Level: l, Cells: lv.g.NumCells(), Nets: lv.g.NumNets(), ClusterCap: lv.cap,
		CutRefined: res.Cut, Area0: st.Area(0),
		RepairMoves: rep, Moves: res.Moves, Passes: res.Passes,
	}, nil
}

// repair nudges an assignment's block-0 area into [w.lo, w.hi] with
// deterministic seeded greedy moves. Projection preserves areas
// exactly, so repair only runs when the window tightened since the
// coarser level (slack shrinks descending); FM then recovers the cut
// damage. An empty return means the assignment was already in window.
func repair(g *hypergraph.Graph, assign []replication.Block, w bounds, seed int64) (int, error) {
	area0 := areaOf(g, assign)
	if area0 >= w.lo && area0 <= w.hi {
		return 0, nil
	}
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(len(assign))
	moves := 0
	for area0 < w.lo {
		moved := false
		for _, ci := range perm {
			if assign[ci] != 1 {
				continue
			}
			a := g.Cells[ci].Area
			if area0+a > w.hi {
				continue
			}
			assign[ci] = 0
			area0 += a
			moves++
			moved = true
			if area0 >= w.lo {
				break
			}
		}
		if !moved {
			return moves, fmt.Errorf("multilevel: cannot repair block 0 area %d into [%d,%d]", area0, w.lo, w.hi)
		}
	}
	for area0 > w.hi {
		moved := false
		for _, ci := range perm {
			if assign[ci] != 0 {
				continue
			}
			a := g.Cells[ci].Area
			if area0-a < w.lo {
				continue
			}
			assign[ci] = 1
			area0 -= a
			moves++
			moved = true
			if area0 <= w.hi {
				break
			}
		}
		if !moved {
			return moves, fmt.Errorf("multilevel: cannot repair block 0 area %d into [%d,%d]", area0, w.lo, w.hi)
		}
	}
	return moves, nil
}

// installWeights maps the finest-level weight table onto one level's
// graph by net name and installs it; a nil map is the flat path and
// costs nothing (CutProjected/CutRefined then report the plain cut,
// exactly as before — st.Objective() == st.CutSize() when unweighted).
func installWeights(st *replication.State, g *hypergraph.Graph, byName map[string]replication.NetWeights) error {
	if byName == nil {
		return nil
	}
	w := make([]replication.NetWeights, g.NumNets())
	for ni := range g.Nets {
		w[ni] = byName[g.Nets[ni].Name]
	}
	return st.SetNetWeights(w)
}

func areaOf(g *hypergraph.Graph, assign []replication.Block) int {
	area := 0
	for c := range assign {
		if assign[c] == 0 {
			area += g.Cells[c].Area
		}
	}
	return area
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
