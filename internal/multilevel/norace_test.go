//go:build !race

package multilevel

const raceEnabled = false
