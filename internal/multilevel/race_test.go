//go:build race

package multilevel

// raceEnabled reports whether the race detector is active, so the
// acceptance-scale tests can skip: a 10⁵-cell instance under the race
// runtime takes minutes without adding interleaving coverage beyond
// what the medium instances already exercise.
const raceEnabled = true
