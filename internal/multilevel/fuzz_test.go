package multilevel

import (
	"math/rand"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/cluster"
	"fpgapart/internal/replication"
)

// FuzzCoarsenUncoarsen drives the coarsen→project round-trip the
// V-cycle is built on, over randomized circuits and cluster caps, and
// asserts the conservation laws multilevel correctness depends on:
// every original cell appears in exactly one cluster, coarse
// area/DFF totals match the flat graph, the original graph is left
// untouched (including replica flags), and projecting any feasible
// coarse assignment yields a flat assignment with byte-identical
// block areas — so a coarse solution inside a device's area window
// stays inside it after projection.
func FuzzCoarsenUncoarsen(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(4), uint8(24), uint8(2))
	f.Add(int64(7), uint8(90), uint8(2), uint8(8), uint8(1))
	f.Add(int64(42), uint8(200), uint8(10), uint8(0), uint8(3))
	f.Add(int64(9), uint8(12), uint8(3), uint8(30), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, cells, capArea, capOut, rounds uint8) {
		nCells := 4 + int(cells)
		g, err := bench.Generate(bench.Params{
			Cells: nCells, PrimaryIn: 6, PrimaryOut: 3,
			Clustering: float64(seed%7) / 10, Seed: seed,
		})
		if err != nil {
			t.Skip() // degenerate parameter combination
		}
		// Mark a few replica flags so "round trip leaves the flat graph
		// untouched" covers them.
		r := rand.New(rand.NewSource(seed))
		wantReplica := make([]bool, g.NumCells())
		for i := range wantReplica {
			if r.Intn(8) == 0 {
				wantReplica[i] = true
				g.Cells[i].Replica = true
			}
		}
		wantArea, wantDFFs := g.TotalArea(), 0
		for i := range g.Cells {
			wantDFFs += g.Cells[i].DFFs
		}

		cl, err := cluster.Build(g, cluster.Options{
			Rounds:            1 + int(rounds%3),
			MaxClusterArea:    1 + int(capArea%12),
			MaxClusterOutputs: int(capOut % 40),
			Seed:              seed,
		})
		if err != nil {
			t.Skip() // e.g. a cluster with no surviving outputs
		}

		// Members must partition the original cells exactly.
		seen := make([]int, g.NumCells())
		coarseArea, coarseDFFs := 0, 0
		for ci, ms := range cl.Members {
			if len(ms) == 0 {
				t.Fatalf("cluster %d is empty", ci)
			}
			for _, m := range ms {
				if int(m) >= g.NumCells() {
					t.Fatalf("cluster %d member %d outside the graph", ci, m)
				}
				seen[m]++
			}
			sum := 0
			for _, m := range ms {
				sum += g.Cells[m].Area
			}
			if a := cl.Graph.Cells[ci].Area; a != sum {
				t.Fatalf("cluster %d area %d, members sum %d", ci, a, sum)
			}
			coarseArea += cl.Graph.Cells[ci].Area
			coarseDFFs += cl.Graph.Cells[ci].DFFs
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("cell %d appears in %d clusters", i, n)
			}
		}
		if coarseArea != wantArea || coarseDFFs != wantDFFs {
			t.Fatalf("coarse totals area=%d dffs=%d, flat totals area=%d dffs=%d",
				coarseArea, coarseDFFs, wantArea, wantDFFs)
		}
		// The flat graph must be untouched, replica flags included.
		if g.NumCells() != len(wantReplica) || g.TotalArea() != wantArea {
			t.Fatal("coarsening mutated the flat graph")
		}
		for i := range g.Cells {
			if g.Cells[i].Replica != wantReplica[i] {
				t.Fatalf("coarsening flipped replica flag on cell %d", i)
			}
		}

		// Any coarse assignment projects to a flat assignment with the
		// same block areas — the feasibility-preservation contract.
		coarse := make([]replication.Block, cl.Graph.NumCells())
		for i := range coarse {
			coarse[i] = replication.Block(r.Intn(2))
		}
		flat, err := cl.Project(coarse, g.NumCells())
		if err != nil {
			t.Fatalf("project: %v", err)
		}
		var wantBlocks, gotBlocks [2]int
		for ci, b := range coarse {
			wantBlocks[b] += cl.Graph.Cells[ci].Area
		}
		for ci, b := range flat {
			gotBlocks[b] += g.Cells[ci].Area
		}
		if wantBlocks != gotBlocks {
			t.Fatalf("projection changed block areas: coarse %v, flat %v", wantBlocks, gotBlocks)
		}
		// The projected assignment must build a valid replication state
		// (every cell placed, invariants hold) with the same areas.
		st, err := replication.NewState(g, flat)
		if err != nil {
			t.Fatalf("projected assignment rejected: %v", err)
		}
		if st.Area(0) != gotBlocks[0] || st.Area(1) != gotBlocks[1] {
			t.Fatalf("state areas [%d %d], want %v", st.Area(0), st.Area(1), gotBlocks)
		}
	})
}
