package multilevel

import (
	"testing"

	"fpgapart/internal/fm"
)

// BenchmarkRun samples the full V-cycle at a reduced scale (the 10⁵
// trajectory point lives in benchtables -benchjson; this keeps the CI
// bench-smoke sweep fast).
func BenchmarkRun(b *testing.B) {
	g := circuit(b, 3000, 7)
	minA, maxA := fm.Balance(g.TotalArea(), 0.1)
	cfg := Config{
		TargetArea: g.TotalArea() / 2,
		MinArea:    minA, MaxArea: maxA,
		Starts: 1, Seed: 3,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
