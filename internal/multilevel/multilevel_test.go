package multilevel

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

// circuit builds a deterministic synthetic mapped circuit.
func circuit(t testing.TB, cells int, seed int64) *hypergraph.Graph {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Cells: cells, PrimaryIn: 24, PrimaryOut: 16, Seed: seed, Clustering: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// balancedConfig is the standalone bipartition configuration used
// across the package tests: an equal split with eps slack.
func balancedConfig(g *hypergraph.Graph, eps float64, seed int64) Config {
	minA, maxA := fm.Balance(g.TotalArea(), eps)
	return Config{
		TargetArea: g.TotalArea() / 2,
		MinArea:    minA, MaxArea: maxA,
		Seed: seed,
	}
}

func TestRunProducesValidBipartition(t *testing.T) {
	g := circuit(t, 1200, 7)
	cfg := balancedConfig(g, 0.1, 3)
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != g.NumCells() {
		t.Fatalf("assignment over %d cells, graph has %d", len(res.Assign), g.NumCells())
	}
	// The reported cut and areas must agree with an independent state
	// built from the returned assignment.
	st, err := replication.NewState(g, res.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if st.CutSize() != res.Cut {
		t.Fatalf("reported cut %d, recomputed %d", res.Cut, st.CutSize())
	}
	if st.Area(0) != res.Area[0] || st.Area(1) != res.Area[1] {
		t.Fatalf("reported areas %v, recomputed [%d %d]", res.Area, st.Area(0), st.Area(1))
	}
	if res.Area[0] < cfg.MinArea[0] || res.Area[0] > cfg.MaxArea[0] ||
		res.Area[1] < cfg.MinArea[1] || res.Area[1] > cfg.MaxArea[1] {
		t.Fatalf("areas %v outside bounds min=%v max=%v", res.Area, cfg.MinArea, cfg.MaxArea)
	}
	if len(res.Levels) < 2 {
		t.Fatalf("expected a multi-level hierarchy on %d cells, got %d levels", g.NumCells(), len(res.Levels))
	}
	// Levels run coarsest-first down to the finest graph.
	last := res.Levels[len(res.Levels)-1]
	if last.Level != 0 || last.Cells != g.NumCells() {
		t.Fatalf("finest level entry %+v does not match input graph (%d cells)", last, g.NumCells())
	}
	for _, s := range res.Levels {
		if s.CutRefined > s.CutProjected {
			t.Fatalf("level %d refinement worsened cut: %d > %d", s.Level, s.CutRefined, s.CutProjected)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	g := circuit(t, 800, 9)
	cfg := balancedConfig(g, 0.1, 5)
	a, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4 // worker count must not perturb the reduction
	b, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cut != b.Cut || a.Area != b.Area {
		t.Fatalf("results diverged across worker counts: %d/%v vs %d/%v", a.Cut, a.Area, b.Cut, b.Area)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment diverged at cell %d", i)
		}
	}
}

// With widening disabled (Slack < 0) the area window is identical at
// every level: projection preserves areas exactly, FM only makes
// in-window moves, so repair never fires and the refined cut is
// monotone non-increasing down the entire V-cycle.
func TestMonotoneCutAcrossLevels(t *testing.T) {
	g := circuit(t, 1500, 11)
	cfg := balancedConfig(g, 0.2, 7)
	cfg.Slack = -1
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairMoves != 0 {
		t.Fatalf("repair fired %d times despite identical windows at every level", res.RepairMoves)
	}
	prev := -1
	for _, s := range res.Levels {
		if s.CutRefined > s.CutProjected {
			t.Fatalf("level %d: refined cut %d above projected %d", s.Level, s.CutRefined, s.CutProjected)
		}
		if prev >= 0 && s.CutRefined > prev {
			t.Fatalf("cut increased across levels: %d after %d (level %d)", s.CutRefined, prev, s.Level)
		}
		prev = s.CutRefined
	}
}

func TestSmallGraphSkipsCoarsening(t *testing.T) {
	g := circuit(t, 60, 3)
	cfg := balancedConfig(g, 0.15, 1)
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 1 {
		t.Fatalf("expected single-level run on %d cells, got %d levels", g.NumCells(), len(res.Levels))
	}
	if res.Levels[0].Level != 0 {
		t.Fatalf("single level should be the finest, got %d", res.Levels[0].Level)
	}
}

func TestInfeasibleWindowRejected(t *testing.T) {
	g := circuit(t, 100, 3)
	total := g.TotalArea()
	_, err := Run(g, Config{
		MinArea: [2]int{total, total}, // both blocks demand the whole area
		MaxArea: [2]int{total, total},
	})
	if err == nil {
		t.Fatal("expected an infeasible-window error")
	}
}
