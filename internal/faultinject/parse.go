package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a plan from the compact spec grammar used by the
// -inject flags of the testing binaries:
//
//	spec  := rule (";" rule)*
//	rule  := kind "@" site ["=" index] ("," opt)*
//	kind  := "panic" | "delay" | "cancel" | "alloccap"
//	site  := "attempt" | "carve" | "pass" | "wal"
//	opt   := "attempt=" int | "delay=" duration | "count=" int
//
// The index after the site selects the site ordinal (carve try, FM
// pass); for site "attempt" it selects the attempt itself. Omitted
// selectors match everything. Examples:
//
//	panic@attempt=2            panic the third solution attempt
//	delay@pass,delay=2ms       sleep 2ms at every FM pass boundary
//	cancel@carve=1,attempt=0   spurious cancel, attempt 0, carve try 1
//	alloccap@carve,count=3     trip the alloc cap on the first 3 carves
//
// An empty spec yields a nil plan (injection disabled).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		r, err := parseRule(rs)
		if err != nil {
			return nil, fmt.Errorf("faultinject: rule %q: %w", rs, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return NewPlan(rules...), nil
}

func parseRule(rs string) (Rule, error) {
	r := Rule{Attempt: Any, Index: Any}
	head, rest, _ := strings.Cut(rs, ",")
	kindStr, siteStr, ok := strings.Cut(head, "@")
	if !ok {
		return r, fmt.Errorf("want kind@site")
	}
	switch kindStr {
	case "panic":
		r.Kind = KindPanic
	case "delay":
		r.Kind = KindDelay
	case "cancel":
		r.Kind = KindCancel
	case "alloccap":
		r.Kind = KindAllocCap
	default:
		return r, fmt.Errorf("unknown kind %q", kindStr)
	}
	siteName, idxStr, hasIdx := strings.Cut(siteStr, "=")
	switch siteName {
	case "attempt":
		r.Site = SiteAttempt
	case "carve":
		r.Site = SiteCarve
	case "pass":
		r.Site = SitePass
	case "wal":
		r.Site = SiteWAL
	default:
		return r, fmt.Errorf("unknown site %q", siteName)
	}
	if hasIdx {
		n, err := strconv.Atoi(idxStr)
		if err != nil || n < 0 {
			return r, fmt.Errorf("bad site index %q", idxStr)
		}
		if r.Site == SiteAttempt {
			r.Attempt = n
		} else {
			r.Index = n
		}
	}
	if rest != "" {
		for _, opt := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return r, fmt.Errorf("bad option %q", opt)
			}
			switch key {
			case "attempt":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return r, fmt.Errorf("bad attempt %q", val)
				}
				r.Attempt = n
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return r, fmt.Errorf("bad delay %q", val)
				}
				r.Delay = d
			case "count":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return r, fmt.Errorf("bad count %q", val)
				}
				r.Count = n
			default:
				return r, fmt.Errorf("unknown option %q", key)
			}
		}
	}
	if r.Kind == KindDelay && r.Delay <= 0 {
		return r, fmt.Errorf("delay rule needs delay=<duration>")
	}
	return r, nil
}
