// Package faultinject is the deterministic fault-injection layer of
// the partitioning engines: a seed-keyed plan of scheduled faults
// (panics, delays, spurious cancellations, allocation-cap trips) that
// the orchestration hot paths consult behind a nil check. With a nil
// plan the production path pays one predicted branch and allocates
// nothing; with a plan armed, faults fire at exact, reproducible
// points — a (site, attempt, ordinal) coordinate — so a failure
// scenario replays bit-identically run after run.
//
// The injection sites mirror the engines' deterministic checkpoints:
//
//   - SiteAttempt: the start of one search attempt (internal/search
//     worker pool; the attempt index is the coordinate).
//   - SiteCarve: one carve try inside a k-way solution attempt
//     (internal/kway; ordinal = the per-carve try counter).
//   - SitePass: one FM pass boundary (internal/fm; ordinal = the pass
//     sequence number within the run).
//
// Faults are expressed as Rules; every firing is recorded in the
// plan's log together with the seed governing the faulted unit of
// work, so a test can assert not only that a fault fired but exactly
// which seeds died. See DESIGN.md §11 for the fault model and the
// containment contract the engines uphold.
package faultinject

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Site identifies an injection point class.
type Site uint8

const (
	// SiteAttempt fires at the start of a search attempt, before any
	// attempt work runs.
	SiteAttempt Site = iota + 1
	// SiteCarve fires at the top of one carve try in kway's carve loop.
	SiteCarve
	// SitePass fires before one FM pass inside the fm engine.
	SitePass
	// SiteWAL fires inside the job store's WAL append path, after the
	// record header has been written but before the payload completes —
	// a KindPanic rule there kills the process mid-record, leaving a
	// genuine torn tail for the replay path to truncate. The ordinal is
	// the store's append sequence number; the attempt selector is
	// unused (always -1).
	SiteWAL
)

// String returns the spec-grammar name of the site.
func (s Site) String() string {
	switch s {
	case SiteAttempt:
		return "attempt"
	case SiteCarve:
		return "carve"
	case SitePass:
		return "pass"
	case SiteWAL:
		return "wal"
	default:
		return "unknown"
	}
}

// Kind is the fault flavor a rule injects.
type Kind uint8

const (
	// KindPanic panics at the site with a *Panic value. The search
	// layer's containment converts it into a failed, degraded attempt.
	KindPanic Kind = iota + 1
	// KindDelay sleeps Rule.Delay at the site — a "slow worker" fault
	// for exercising timeout budgets and drain paths.
	KindDelay
	// KindCancel returns a *CancelError wrapping context.Canceled even
	// though the real context is still live — a spurious cancellation
	// that the reduction must classify as an ordinary failed attempt,
	// not a budget stop.
	KindCancel
	// KindAllocCap returns a *AllocCapError simulating a tripped memory
	// budget; the engines treat it as an ordinary attempt failure.
	KindAllocCap
)

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCancel:
		return "cancel"
	case KindAllocCap:
		return "alloccap"
	default:
		return "unknown"
	}
}

// Any matches every attempt index or site ordinal in a Rule selector.
const Any = -1

// Rule schedules one fault. A rule fires when an engine reaches a
// site whose (attempt, ordinal) coordinate matches the selectors and
// the rule's firing budget is not exhausted.
type Rule struct {
	Site Site
	Kind Kind
	// Attempt selects the solution-attempt index the rule applies to
	// (Any = every attempt). Engines running outside a search label
	// their sites with attempt -1, which only Any matches.
	Attempt int
	// Index selects the ordinal within the site (carve try number, FM
	// pass sequence; Any = every ordinal). SiteAttempt ignores Index.
	Index int
	// Delay is the sleep duration for KindDelay rules.
	Delay time.Duration
	// Count caps how many times the rule fires (0 = unlimited).
	Count int
}

func (r Rule) String() string {
	s := fmt.Sprintf("%s@%s", r.Kind, r.Site)
	if r.Index != Any {
		s += fmt.Sprintf("=%d", r.Index)
	}
	if r.Attempt != Any {
		s += fmt.Sprintf(",attempt=%d", r.Attempt)
	}
	if r.Kind == KindDelay {
		s += fmt.Sprintf(",delay=%s", r.Delay)
	}
	if r.Count != 0 {
		s += fmt.Sprintf(",count=%d", r.Count)
	}
	return s
}

// PanicAtAttempt schedules a panic at the start of attempt n.
func PanicAtAttempt(n int) Rule {
	return Rule{Site: SiteAttempt, Kind: KindPanic, Attempt: n, Index: Any}
}

// CancelAtAttempt schedules a spurious cancellation of attempt n.
func CancelAtAttempt(n int) Rule {
	return Rule{Site: SiteAttempt, Kind: KindCancel, Attempt: n, Index: Any}
}

// DelayAtAttempt makes attempt n (Any = every attempt) sleep d before
// doing any work — the injected slow worker.
func DelayAtAttempt(n int, d time.Duration) Rule {
	return Rule{Site: SiteAttempt, Kind: KindDelay, Attempt: n, Index: Any, Delay: d}
}

// DelayAtPass makes FM pass m of attempt n sleep d.
func DelayAtPass(n, m int, d time.Duration) Rule {
	return Rule{Site: SitePass, Kind: KindDelay, Attempt: n, Index: m, Delay: d}
}

// PanicAtPass schedules a panic at FM pass m of attempt n.
func PanicAtPass(n, m int) Rule {
	return Rule{Site: SitePass, Kind: KindPanic, Attempt: n, Index: m}
}

// AllocCapAtCarve trips the simulated allocation cap at carve try m of
// attempt n.
func AllocCapAtCarve(n, m int) Rule {
	return Rule{Site: SiteCarve, Kind: KindAllocCap, Attempt: n, Index: m}
}

// Panic is the value a KindPanic rule panics with. Containment layers
// surface it through their typed panic errors.
type Panic struct {
	Site    Site
	Attempt int
	Index   int
	Seed    int64
}

func (p *Panic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s %d/%d (seed %d)", p.Site, p.Attempt, p.Index, p.Seed)
}

// CancelError is the spurious-cancellation fault: it wraps
// context.Canceled so errors.Is(err, context.Canceled) holds even
// though no context was actually cancelled.
type CancelError struct {
	Site    Site
	Attempt int
	Index   int
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("faultinject: injected cancellation at %s %d/%d: %v", e.Site, e.Attempt, e.Index, context.Canceled)
}

func (e *CancelError) Unwrap() error { return context.Canceled }

// AllocCapError is the simulated allocation-budget trip.
type AllocCapError struct {
	Site    Site
	Attempt int
	Index   int
}

func (e *AllocCapError) Error() string {
	return fmt.Sprintf("faultinject: allocation cap tripped at %s %d/%d", e.Site, e.Attempt, e.Index)
}

// Firing records one fault that fired.
type Firing struct {
	Rule    int // index into the plan's rule list
	Site    Site
	Kind    Kind
	Attempt int
	Index   int
	// Seed is the seed of the faulted unit of work (the attempt seed
	// for SiteAttempt, the FM run seed for SitePass, the carve-loop
	// attempt seed for SiteCarve).
	Seed int64
}

// Plan is an armed fault schedule. The zero value of *Plan (nil) is
// the production configuration: every hook is a nil check. A non-nil
// Plan is safe for concurrent use by the search workers; rule matching
// is deterministic per (site, attempt, ordinal) coordinate, so which
// faults fire never depends on scheduling — only the interleaving of
// the firing log does.
type Plan struct {
	mu    sync.Mutex
	rules []Rule
	fired []int
	log   []Firing
}

// NewPlan arms a plan with the given rules.
func NewPlan(rules ...Rule) *Plan {
	return &Plan{rules: rules, fired: make([]int, len(rules))}
}

// Rules returns a copy of the plan's rule list.
func (p *Plan) Rules() []Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Rule(nil), p.rules...)
}

// Firings returns a copy of the firing log, in firing order.
func (p *Plan) Firings() []Firing {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Firing(nil), p.log...)
}

// FiredSeeds returns the seeds of the units of work a given fault kind
// hit — e.g. the seeds of the attempts that were panicked.
func (p *Plan) FiredSeeds(k Kind) []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var seeds []int64
	for _, f := range p.log {
		if f.Kind == k {
			seeds = append(seeds, f.Seed)
		}
	}
	return seeds
}

// Reset clears the firing log and per-rule counters so the same plan
// replays from scratch.
func (p *Plan) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log = p.log[:0]
	for i := range p.fired {
		p.fired[i] = 0
	}
}

// match reports the first fireable rule for the coordinate and commits
// its firing, or -1.
func (p *Plan) match(site Site, attempt, index int, seed int64) (Rule, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.rules {
		if r.Site != site {
			continue
		}
		if r.Attempt != Any && r.Attempt != attempt {
			continue
		}
		if site != SiteAttempt && r.Index != Any && r.Index != index {
			continue
		}
		if r.Count > 0 && p.fired[i] >= r.Count {
			continue
		}
		p.fired[i]++
		p.log = append(p.log, Firing{Rule: i, Site: site, Kind: r.Kind, Attempt: attempt, Index: index, Seed: seed})
		return r, true
	}
	return Rule{}, false
}

// At is the engine hook: it fires the first matching rule for the
// coordinate. KindDelay sleeps and returns nil; KindCancel and
// KindAllocCap return their typed errors; KindPanic panics with a
// *Panic value. A nil *Plan receiver is legal and does nothing, so
// hook sites may call it through an interface-free nil check:
//
//	if plan != nil {
//		if err := plan.At(faultinject.SiteCarve, attempt, try, seed); err != nil { ... }
//	}
func (p *Plan) At(site Site, attempt, index int, seed int64) error {
	if p == nil {
		return nil
	}
	r, ok := p.match(site, attempt, index, seed)
	if !ok {
		return nil
	}
	switch r.Kind {
	case KindPanic:
		panic(&Panic{Site: site, Attempt: attempt, Index: index, Seed: seed})
	case KindDelay:
		time.Sleep(r.Delay)
		return nil
	case KindCancel:
		return &CancelError{Site: site, Attempt: attempt, Index: index}
	case KindAllocCap:
		return &AllocCapError{Site: site, Attempt: attempt, Index: index}
	default:
		return fmt.Errorf("faultinject: unknown fault kind %d", r.Kind)
	}
}
