package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if err := p.At(SiteAttempt, 0, 0, 1); err != nil {
		t.Fatalf("nil plan injected: %v", err)
	}
}

func TestPanicRuleFiresOnceAtCoordinate(t *testing.T) {
	p := NewPlan(PanicAtAttempt(2))
	for a := 0; a < 5; a++ {
		fire := func(attempt int) (v any) {
			defer func() { v = recover() }()
			if err := p.At(SiteAttempt, attempt, 0, 100+int64(attempt)); err != nil {
				t.Fatalf("attempt %d: unexpected error %v", attempt, err)
			}
			return nil
		}
		got := fire(a)
		if (a == 2) != (got != nil) {
			t.Fatalf("attempt %d: panic=%v, want fire only at 2", a, got)
		}
		if a == 2 {
			pv, ok := got.(*Panic)
			if !ok {
				t.Fatalf("panic value %T, want *Panic", got)
			}
			if pv.Attempt != 2 || pv.Seed != 102 {
				t.Fatalf("panic value %+v, want attempt 2 seed 102", pv)
			}
		}
	}
	seeds := p.FiredSeeds(KindPanic)
	if len(seeds) != 1 || seeds[0] != 102 {
		t.Fatalf("FiredSeeds = %v, want [102]", seeds)
	}
}

func TestCancelWrapsContextCanceled(t *testing.T) {
	p := NewPlan(CancelAtAttempt(0))
	err := p.At(SiteAttempt, 0, 0, 7)
	if err == nil {
		t.Fatal("cancel rule did not fire")
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T, want *CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestAllocCapTyped(t *testing.T) {
	p := NewPlan(AllocCapAtCarve(Any, 1))
	if err := p.At(SiteCarve, 3, 0, 1); err != nil {
		t.Fatalf("carve try 0 should not fire: %v", err)
	}
	err := p.At(SiteCarve, 3, 1, 1)
	var ae *AllocCapError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v (%T), want *AllocCapError", err, err)
	}
	if ae.Attempt != 3 || ae.Index != 1 {
		t.Fatalf("alloc-cap at %d/%d, want 3/1", ae.Attempt, ae.Index)
	}
}

func TestDelaySleeps(t *testing.T) {
	p := NewPlan(DelayAtPass(Any, 0, 20*time.Millisecond))
	start := time.Now()
	if err := p.At(SitePass, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 20ms", d)
	}
	// Pass 1 does not match.
	start = time.Now()
	if err := p.At(SitePass, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("non-matching pass slept %v", d)
	}
}

func TestCountBudgetAndReset(t *testing.T) {
	p := NewPlan(Rule{Site: SiteCarve, Kind: KindAllocCap, Attempt: Any, Index: Any, Count: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if p.At(SiteCarve, 0, i, 1) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want count-capped 2", fired)
	}
	p.Reset()
	if p.At(SiteCarve, 0, 0, 1) == nil {
		t.Fatal("reset plan did not fire again")
	}
	if got := len(p.Firings()); got != 1 {
		t.Fatalf("log holds %d firings after reset+1, want 1", got)
	}
}

func TestConcurrentAt(t *testing.T) {
	p := NewPlan(Rule{Site: SiteAttempt, Kind: KindCancel, Attempt: Any, Index: Any})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = p.At(SiteAttempt, w*100+i, 0, int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := len(p.Firings()); got != 800 {
		t.Fatalf("logged %d firings, want 800", got)
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want []Rule
	}{
		{"", nil},
		{"panic@attempt=2", []Rule{{Site: SiteAttempt, Kind: KindPanic, Attempt: 2, Index: Any}}},
		{"delay@pass,delay=2ms", []Rule{{Site: SitePass, Kind: KindDelay, Attempt: Any, Index: Any, Delay: 2 * time.Millisecond}}},
		{"cancel@carve=1,attempt=0", []Rule{{Site: SiteCarve, Kind: KindCancel, Attempt: 0, Index: 1}}},
		{"alloccap@carve,count=3", []Rule{{Site: SiteCarve, Kind: KindAllocCap, Attempt: Any, Index: Any, Count: 3}}},
		{"panic@attempt=1; delay@attempt,delay=1ms", []Rule{
			{Site: SiteAttempt, Kind: KindPanic, Attempt: 1, Index: Any},
			{Site: SiteAttempt, Kind: KindDelay, Attempt: Any, Index: Any, Delay: time.Millisecond},
		}},
	} {
		p, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		if tc.want == nil {
			if p != nil {
				t.Fatalf("Parse(%q) = %v, want nil plan", tc.spec, p.Rules())
			}
			continue
		}
		got := p.Rules()
		if len(got) != len(tc.want) {
			t.Fatalf("Parse(%q): %d rules, want %d", tc.spec, len(got), len(tc.want))
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Parse(%q) rule %d = %+v, want %+v", tc.spec, i, got[i], tc.want[i])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"boom@attempt",         // unknown kind
		"panic@nowhere",        // unknown site
		"panic",                // missing @site
		"delay@pass",           // delay rule without duration
		"panic@attempt=x",      // bad index
		"panic@pass,count=0",   // bad count
		"panic@pass,wat=1",     // unknown option
		"delay@pass,delay=-1s", // negative delay
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) accepted", spec)
		}
	}
}
