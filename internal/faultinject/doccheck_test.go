package faultinject

import "testing"

// The specs documented in README/DESIGN must parse.
func TestParseDocumentedSpecs(t *testing.T) {
	for _, s := range []string{
		"panic@attempt=2",
		"delay@attempt,delay=50ms",
		"panic@attempt=2;delay@pass=3,attempt=0,delay=50ms",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if p == nil || len(p.Rules()) == 0 {
			t.Fatalf("Parse(%q): empty plan", s)
		}
	}
}
