package topology

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"
)

// mustBoard curries t so multi-value constructors can be passed
// directly: mustBoard(t)(Mesh(3, 3, 0)).
func mustBoard(t *testing.T) func(*Board, error) *Board {
	return func(b *Board, err error) *Board {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
}

func TestCrossbarDistances(t *testing.T) {
	b := mustBoard(t)(Crossbar(4, 0))
	for a := 0; a < 4; a++ {
		for c := 0; c < 4; c++ {
			want := 1
			if a == c {
				want = 0
			}
			if got := b.Dist(a, c); got != want {
				t.Fatalf("dist(%d,%d) = %d, want %d", a, c, got, want)
			}
		}
	}
	if b.Diameter() != 1 {
		t.Fatalf("diameter %d, want 1", b.Diameter())
	}
	// MST over k slots of a crossbar costs k−1: flat-cut regime.
	var s SlotSet
	for k := 0; k < 4; k++ {
		s = s.Add(k)
		if got, want := b.SpanCost(s), k; got != want {
			t.Fatalf("crossbar span of %d slots = %d, want %d", k+1, got, want)
		}
	}
}

func TestLinearAndMeshDistances(t *testing.T) {
	lin := mustBoard(t)(Linear(5, 0))
	if got := lin.Dist(0, 4); got != 4 {
		t.Fatalf("linear dist(0,4) = %d, want 4", got)
	}
	m := mustBoard(t)(Mesh(3, 3, 0))
	if got := m.Dist(0, 8); got != 4 {
		t.Fatalf("mesh dist(0,8) = %d, want 4 (Manhattan)", got)
	}
	if m.Diameter() != 4 {
		t.Fatalf("mesh diameter %d, want 4", m.Diameter())
	}
	// Corner-to-corner path is a real board walk: consecutive hops are
	// links, endpoints correct.
	p := m.Path(0, 8, nil)
	if p[0] != 0 || p[len(p)-1] != 8 || len(p) != 5 {
		t.Fatalf("path 0→8 = %v", p)
	}
	for i := 1; i < len(p); i++ {
		if m.linkAt[p[i-1]*m.Slots+p[i]] < 0 {
			t.Fatalf("path 0→8 jumps a non-link %d–%d", p[i-1], p[i])
		}
	}
}

func TestSpanCostSteiner(t *testing.T) {
	m := mustBoard(t)(Mesh(3, 3, 0))
	// Corners {0, 2, 6}: MST joins 2 and 6 to 0 at distance 2 each.
	set := SlotSet(0).Add(0).Add(2).Add(6)
	if got := m.SpanCost(set); got != 4 {
		t.Fatalf("span{0,2,6} = %d, want 4", got)
	}
	// Edge midpoints {1, 3, 5} are pairwise distance 2 (MST = 4); the
	// center slot 4 is a Steiner point at distance 1 from each, so its
	// marginal span cost is negative (MST drops to 3).
	mid := SlotSet(0).Add(1).Add(3).Add(5)
	if got := m.SpanCost(mid); got != 4 {
		t.Fatalf("span{1,3,5} = %d, want 4", got)
	}
	if got := m.Marginal(mid, 4); got != -1 {
		t.Fatalf("marginal center = %d, want -1", got)
	}
	// Marginal on an empty span is free; on a member slot too.
	if m.Marginal(0, 5) != 0 || m.Marginal(set, 2) != 0 {
		t.Fatal("empty-span or member marginal should be 0")
	}
}

func TestRouteSpanCoversTreeWithinCapacity(t *testing.T) {
	m := mustBoard(t)(Mesh(2, 3, 0))
	set := SlotSet(0).Add(0).Add(2).Add(5)
	links := m.RouteSpan(set)
	if len(links) == 0 {
		t.Fatal("no links routed")
	}
	// Routed links must connect the set: union-find over endpoints.
	parent := make([]int, m.Slots)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			x = parent[x]
		}
		return x
	}
	total := 0
	for _, li := range links {
		l := m.Links[li]
		parent[find(l.A)] = find(l.B)
		total += l.Cost
	}
	slots := set.Slots(nil)
	for _, s := range slots[1:] {
		if find(s) != find(slots[0]) {
			t.Fatalf("routed links %v do not connect %v", links, slots)
		}
	}
	if want := m.SpanCost(set); total < want {
		t.Fatalf("routed cost %d below span cost %d", total, want)
	}
}

func TestRouteSpanDeterministic(t *testing.T) {
	m := mustBoard(t)(Mesh(3, 3, 0))
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		set := SlotSet(r.Uint64()) & (1<<9 - 1)
		a := m.RouteSpan(set)
		b := m.RouteSpan(set)
		if len(a) != len(b) {
			t.Fatalf("set %b: nondeterministic route", set)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %b: nondeterministic route", set)
			}
		}
	}
}

func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		slots int
		links int
		cap   int
	}{
		{"crossbar:4", 4, 6, 64},
		{"linear:5:8", 5, 4, 8},
		{"mesh:2x3:16", 6, 7, 16},
	} {
		b := mustBoard(t)(ParseSpec(tc.spec))
		if b.Slots != tc.slots || len(b.Links) != tc.links {
			t.Fatalf("%s: %d slots / %d links, want %d/%d", tc.spec, b.Slots, len(b.Links), tc.slots, tc.links)
		}
		if b.Links[0].Capacity != tc.cap {
			t.Fatalf("%s: capacity %d, want %d", tc.spec, b.Links[0].Capacity, tc.cap)
		}
	}
	for _, bad := range []string{"", "mesh", "mesh:3", "mesh:0x2", "torus:3x3", "linear:x", "linear:4:0", "crossbar:4:1:2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestBoardFileRoundTrip(t *testing.T) {
	b := mustBoard(t)(Mesh(2, 2, 12))
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	rb, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rb.Name != b.Name || rb.Slots != b.Slots || len(rb.Links) != len(b.Links) {
		t.Fatalf("round trip mismatch: %+v vs %+v", rb, b)
	}
	for i := range b.Links {
		if rb.Links[i] != b.Links[i] {
			t.Fatalf("link %d: %+v vs %+v", i, rb.Links[i], b.Links[i])
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, tc := range []string{
		"slots 2\nlink 0 0",           // self loop
		"slots 2\nlink 0 5",           // out of range
		"slots 0",                     // no slots
		"slots 65",                    // over MaxSlots
		"slots 3\nlink 0 1",           // disconnected (slot 2 unreachable)
		"slots 2\nlink 0 1 cap 0",     // zero capacity
		"slots 2\nlink 0 1 cost 0",    // zero cost
		"slots 2\nlink 0 1\nlink 1 0", // duplicate
		"wat 3",                       // unknown directive
	} {
		if _, err := Parse(strings.NewReader(tc)); err == nil {
			t.Fatalf("accepted:\n%s", tc)
		}
	}
}

func TestFromArgSpecAndFile(t *testing.T) {
	if b := mustBoard(t)(FromArg("mesh:2x2")); b.Slots != 4 {
		t.Fatal("spec arg not resolved")
	}
	path := t.TempDir() + "/b.board"
	b := mustBoard(t)(Linear(3, 0))
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fb := mustBoard(t)(FromArg(path))
	if fb.Slots != 3 {
		t.Fatal("file arg not resolved")
	}
	if _, err := FromArg(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestAsymmetricCostsAndBridgeCapacity(t *testing.T) {
	// Two clusters bridged by an expensive narrow link.
	b := mustBoard(t)(Parse(strings.NewReader(`
board bridge
slots 4
link 0 1 cap 32 cost 1
link 2 3 cap 32 cost 1
link 1 2 cap 2 cost 3
`)))
	if got := b.Dist(0, 3); got != 5 {
		t.Fatalf("dist(0,3) = %d, want 5", got)
	}
	set := SlotSet(0).Add(0).Add(3)
	links := b.RouteSpan(set)
	if len(links) != 3 {
		t.Fatalf("route 0–3 uses %d links, want 3", len(links))
	}
}
