// Package topology models the multi-FPGA board the partition is
// placed on: a graph of device slots joined by finite-capacity links
// with integer hop costs. The flat terminal-cut objective of the
// paper treats every cut net as equally expensive; on a real board a
// net spanning two adjacent devices costs one hop while a net
// spanning opposite corners of a mesh crosses several, and each link
// only carries so many signals. The board model supplies
//
//   - all-pairs shortest hop distances and deterministic routes,
//   - SpanCost, the minimum-spanning-tree (Steiner approximation)
//     hop cost of connecting a set of slots, and its Marginal
//     extension cost — the quantities the k-way engine turns into
//     per-net objective weights (replication.NetWeights),
//   - per-link net-load routing for the verifier's capacity check.
//
// Boards come from builders (Crossbar, Linear, Mesh), from a compact
// spec string ("mesh:3x3", "crossbar:4:16"), or from a small text
// file format (see Parse/Write) wired into the kpart/kpartd -board
// options.
package topology

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"strconv"
	"strings"
)

// MaxSlots bounds the slot count so slot sets fit one machine word.
const MaxSlots = 64

// DefaultCapacity is the per-link net capacity builders use when the
// caller passes cap <= 0.
const DefaultCapacity = 64

// Link is one inter-slot connection. Links are undirected; A < B.
type Link struct {
	A, B     int
	Capacity int // max distinct nets routable over the link
	Cost     int // hop cost of crossing the link (>= 1)
}

// Board is a device-slot graph. Zero value is unusable; construct via
// a builder, ParseSpec, Parse or New followed by Finalize.
type Board struct {
	Name  string
	Slots int
	Links []Link

	dist   []int32 // Slots*Slots all-pairs shortest hop cost
	next   []int32 // Slots*Slots first intermediate hop on a shortest path
	linkAt []int32 // Slots*Slots direct link index, -1 when absent
}

// New assembles a board and finalizes it.
func New(name string, slots int, links []Link) (*Board, error) {
	b := &Board{Name: name, Slots: slots, Links: links}
	if err := b.Finalize(); err != nil {
		return nil, err
	}
	return b, nil
}

// Finalize validates the board and computes the derived all-pairs
// distance, next-hop and link-lookup tables. It must be called after
// any mutation of Slots/Links; builders and parsers call it.
func (b *Board) Finalize() error {
	if b.Slots < 1 || b.Slots > MaxSlots {
		return fmt.Errorf("topology: %d slots, want 1..%d", b.Slots, MaxSlots)
	}
	n := b.Slots
	b.linkAt = make([]int32, n*n)
	for i := range b.linkAt {
		b.linkAt[i] = -1
	}
	for i := range b.Links {
		l := &b.Links[i]
		if l.A > l.B {
			l.A, l.B = l.B, l.A
		}
		if l.A < 0 || l.B >= n || l.A == l.B {
			return fmt.Errorf("topology: link %d–%d outside slots 0..%d", l.A, l.B, n-1)
		}
		if l.Capacity < 1 {
			return fmt.Errorf("topology: link %d–%d capacity %d, want >= 1", l.A, l.B, l.Capacity)
		}
		if l.Cost < 1 {
			return fmt.Errorf("topology: link %d–%d cost %d, want >= 1", l.A, l.B, l.Cost)
		}
		if b.linkAt[l.A*n+l.B] >= 0 {
			return fmt.Errorf("topology: duplicate link %d–%d", l.A, l.B)
		}
		b.linkAt[l.A*n+l.B] = int32(i)
		b.linkAt[l.B*n+l.A] = int32(i)
	}
	// Floyd–Warshall with next-hop recording. Updates only on strictly
	// shorter paths, so routes are deterministic for a given link order.
	const inf = int32(1) << 29
	b.dist = make([]int32, n*n)
	b.next = make([]int32, n*n)
	for i := range b.dist {
		b.dist[i] = inf
		b.next[i] = -1
	}
	for s := 0; s < n; s++ {
		b.dist[s*n+s] = 0
		b.next[s*n+s] = int32(s)
	}
	for _, l := range b.Links {
		c := int32(l.Cost)
		if c < b.dist[l.A*n+l.B] {
			b.dist[l.A*n+l.B] = c
			b.dist[l.B*n+l.A] = c
			b.next[l.A*n+l.B] = int32(l.B)
			b.next[l.B*n+l.A] = int32(l.A)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := b.dist[i*n+k]
			if dik >= inf {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + b.dist[k*n+j]; d < b.dist[i*n+j] {
					b.dist[i*n+j] = d
					b.next[i*n+j] = b.next[i*n+k]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if b.dist[i*n+j] >= inf {
				return fmt.Errorf("topology: board %q is disconnected (no path %d–%d)", b.Name, i, j)
			}
		}
	}
	return nil
}

// Dist returns the shortest hop cost between two slots.
func (b *Board) Dist(a, c int) int { return int(b.dist[a*b.Slots+c]) }

// Diameter returns the largest pairwise slot distance.
func (b *Board) Diameter() int {
	d := int32(0)
	for _, v := range b.dist {
		if v > d {
			d = v
		}
	}
	return int(d)
}

// Path appends the slots of a shortest route from a to c (both
// endpoints included) to buf and returns it.
func (b *Board) Path(a, c int, buf []int) []int {
	buf = append(buf, a)
	for a != c {
		a = int(b.next[a*b.Slots+c])
		buf = append(buf, a)
	}
	return buf
}

// SlotSet is a set of slot indices packed into one word.
type SlotSet uint64

// Add returns the set with slot i included.
func (s SlotSet) Add(i int) SlotSet { return s | 1<<uint(i) }

// Has reports whether slot i is in the set.
func (s SlotSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Count returns the number of slots in the set.
func (s SlotSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Slots appends the member slots in ascending order to buf.
func (s SlotSet) Slots(buf []int) []int {
	for v := uint64(s); v != 0; v &= v - 1 {
		buf = append(buf, bits.TrailingZeros64(v))
	}
	return buf
}

// SpanCost returns the hop cost of connecting every slot in the set:
// the minimum spanning tree of the set under shortest-path distances,
// the classic 2-approximation of the Steiner tree on the board graph.
// Empty and singleton sets cost 0. Deterministic: Prim from the
// lowest slot with lowest-index tie-breaks.
func (b *Board) SpanCost(set SlotSet) int {
	if set.Count() <= 1 {
		return 0
	}
	cost, _ := b.spanTree(set, nil)
	return cost
}

// spanTree runs Prim over the set's distance closure. When parents is
// non-nil it is filled with each joined slot's tree parent (the slot
// it attaches to), for route expansion; entry for the root is -1.
func (b *Board) spanTree(set SlotSet, parents map[int]int) (int, int) {
	n := b.Slots
	root := bits.TrailingZeros64(uint64(set))
	var inTree SlotSet
	inTree = inTree.Add(root)
	if parents != nil {
		parents[root] = -1
	}
	// best[s] = cheapest distance from s to the tree, via from[s].
	var best, from [MaxSlots]int32
	for s := 0; s < n; s++ {
		best[s] = b.dist[s*n+root]
		from[s] = int32(root)
	}
	total := 0
	for inTree != set {
		pick, pickD := -1, int32(0)
		for v := uint64(set &^ inTree); v != 0; v &= v - 1 {
			s := bits.TrailingZeros64(v)
			if pick < 0 || best[s] < pickD {
				pick, pickD = s, best[s]
			}
		}
		inTree = inTree.Add(pick)
		total += int(pickD)
		if parents != nil {
			parents[pick] = int(from[pick])
		}
		for s := 0; s < n; s++ {
			if d := b.dist[s*n+pick]; d < best[s] {
				best[s] = d
				from[s] = int32(pick)
			}
		}
	}
	return total, root
}

// Marginal returns the span-cost increase of extending the set by one
// slot: SpanCost(set+slot) − SpanCost(set). For an empty set this is
// 0 (a net alone on one device needs no board routing). The value can
// be negative when the new slot acts as a Steiner point for the
// existing span.
func (b *Board) Marginal(set SlotSet, slot int) int {
	if set.Has(slot) {
		return 0
	}
	return b.SpanCost(set.Add(slot)) - b.SpanCost(set)
}

// RouteSpan expands the set's spanning tree into board links: every
// tree edge follows its deterministic shortest path, and each link is
// reported once (as an index into Links) even when several tree edges
// share it. Results are in ascending link order.
func (b *Board) RouteSpan(set SlotSet) []int {
	if set.Count() <= 1 {
		return nil
	}
	parents := make(map[int]int, set.Count())
	b.spanTree(set, parents)
	used := make(map[int]struct{})
	var path []int
	for _, s := range set.Slots(nil) {
		p := parents[s]
		if p < 0 {
			continue
		}
		path = b.Path(s, p, path[:0])
		for i := 1; i < len(path); i++ {
			li := int(b.linkAt[path[i-1]*b.Slots+path[i]])
			used[li] = struct{}{}
		}
	}
	out := make([]int, 0, len(used))
	for li := range used {
		out = append(out, li)
	}
	sort.Ints(out)
	return out
}

// --- builders -------------------------------------------------------

func capOrDefault(capacity int) int {
	if capacity <= 0 {
		return DefaultCapacity
	}
	return capacity
}

// Crossbar builds a fully connected board: every slot pair joined by a
// unit-cost link. Span costs degenerate to |slots|−1, the flat-cut
// regime.
func Crossbar(slots, capacity int) (*Board, error) {
	capacity = capOrDefault(capacity)
	var links []Link
	for a := 0; a < slots; a++ {
		for c := a + 1; c < slots; c++ {
			links = append(links, Link{A: a, B: c, Capacity: capacity, Cost: 1})
		}
	}
	return New(fmt.Sprintf("crossbar%d", slots), slots, links)
}

// Linear builds a chain 0–1–…–(slots−1) of unit-cost links.
func Linear(slots, capacity int) (*Board, error) {
	capacity = capOrDefault(capacity)
	var links []Link
	for a := 0; a+1 < slots; a++ {
		links = append(links, Link{A: a, B: a + 1, Capacity: capacity, Cost: 1})
	}
	return New(fmt.Sprintf("linear%d", slots), slots, links)
}

// Mesh builds a rows×cols grid with unit-cost links between 4-neighbor
// slots, slot index r*cols+c.
func Mesh(rows, cols, capacity int) (*Board, error) {
	capacity = capOrDefault(capacity)
	var links []Link
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				links = append(links, Link{A: at(r, c), B: at(r, c+1), Capacity: capacity, Cost: 1})
			}
			if r+1 < rows {
				links = append(links, Link{A: at(r, c), B: at(r+1, c), Capacity: capacity, Cost: 1})
			}
		}
	}
	return New(fmt.Sprintf("mesh%dx%d", rows, cols), rows*cols, links)
}

// --- spec strings and the board file format -------------------------

// ParseSpec builds a board from a compact spec string:
//
//	crossbar:N[:CAP]   full crossbar over N slots
//	linear:N[:CAP]     chain of N slots
//	mesh:RxC[:CAP]     R×C grid
//
// CAP is the per-link net capacity (default 64).
func ParseSpec(spec string) (*Board, error) {
	fields := strings.Split(spec, ":")
	if len(fields) < 2 || len(fields) > 3 {
		return nil, fmt.Errorf("topology: spec %q, want kind:dims[:capacity]", spec)
	}
	capacity := 0
	if len(fields) == 3 {
		v, err := strconv.Atoi(fields[2])
		if err != nil || v < 1 {
			return nil, fmt.Errorf("topology: spec %q: bad capacity %q", spec, fields[2])
		}
		capacity = v
	}
	dims := fields[1]
	switch fields[0] {
	case "crossbar", "linear":
		n, err := strconv.Atoi(dims)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("topology: spec %q: bad slot count %q", spec, dims)
		}
		if fields[0] == "crossbar" {
			return Crossbar(n, capacity)
		}
		return Linear(n, capacity)
	case "mesh":
		r, c, ok := strings.Cut(dims, "x")
		rows, err1 := strconv.Atoi(r)
		cols, err2 := strconv.Atoi(c)
		if !ok || err1 != nil || err2 != nil || rows < 1 || cols < 1 {
			return nil, fmt.Errorf("topology: spec %q: bad mesh dims %q, want RxC", spec, dims)
		}
		return Mesh(rows, cols, capacity)
	}
	return nil, fmt.Errorf("topology: spec %q: unknown kind %q (crossbar, linear, mesh)", spec, fields[0])
}

// specKinds gates FromArg's spec-vs-file dispatch.
var specKinds = []string{"crossbar:", "linear:", "mesh:"}

// FromArg resolves a -board flag value: a recognized spec string is
// built directly, anything else is read as a board-description file.
func FromArg(arg string) (*Board, error) {
	for _, k := range specKinds {
		if strings.HasPrefix(arg, k) {
			return ParseSpec(arg)
		}
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Parse reads the board-description format:
//
//	# comment
//	board <name>
//	slots <n>
//	link <a> <b> [cap <c>] [cost <h>]
//
// Unspecified cap defaults to 64, cost to 1. Order of link lines is
// preserved (it fixes routing tie-breaks).
func Parse(r io.Reader) (*Board, error) {
	b := &Board{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "board":
			if len(f) != 2 {
				return nil, fmt.Errorf("topology: line %d: want 'board <name>'", lineNo)
			}
			b.Name = f[1]
		case "slots":
			if len(f) != 2 {
				return nil, fmt.Errorf("topology: line %d: want 'slots <n>'", lineNo)
			}
			n, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad slot count %q", lineNo, f[1])
			}
			b.Slots = n
		case "link":
			if len(f) < 3 {
				return nil, fmt.Errorf("topology: line %d: want 'link <a> <b> [cap <c>] [cost <h>]'", lineNo)
			}
			a, err1 := strconv.Atoi(f[1])
			c, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("topology: line %d: bad link endpoints", lineNo)
			}
			l := Link{A: a, B: c, Capacity: DefaultCapacity, Cost: 1}
			for i := 3; i+1 < len(f); i += 2 {
				v, err := strconv.Atoi(f[i+1])
				if err != nil {
					return nil, fmt.Errorf("topology: line %d: bad %s value %q", lineNo, f[i], f[i+1])
				}
				switch f[i] {
				case "cap":
					l.Capacity = v
				case "cost":
					l.Cost = v
				default:
					return nil, fmt.Errorf("topology: line %d: unknown link attribute %q", lineNo, f[i])
				}
			}
			b.Links = append(b.Links, l)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	if err := b.Finalize(); err != nil {
		return nil, err
	}
	return b, nil
}

// Write emits the board in the format Parse reads back.
func (b *Board) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if b.Name != "" {
		fmt.Fprintf(bw, "board %s\n", b.Name)
	}
	fmt.Fprintf(bw, "slots %d\n", b.Slots)
	for _, l := range b.Links {
		fmt.Fprintf(bw, "link %d %d cap %d cost %d\n", l.A, l.B, l.Capacity, l.Cost)
	}
	return bw.Flush()
}
