// Package span is a zero-dependency distributed tracing layer: it
// upgrades the flat engine events of internal/trace into a causal
// tree of timed spans — job → search attempt → V-cycle level →
// FM/parfm pass → coordinator RPC — stitched across processes by W3C
// traceparent propagation.
//
// The design mirrors the repo's observability contract (DESIGN.md
// §17): tracing never feeds search decisions (fixed-seed results are
// byte-identical armed or disarmed, pinned by the kway golden diff),
// and the disarmed hot path is a single predicted branch with zero
// allocations (pinned by TestFMPassAllocs variants). A Scope is a
// small value; its zero value is disarmed, so engine configs embed
// one without any pointer plumbing.
//
// Each process owns one Tracer. Completed spans land in two bounded
// sinks: a FlightRecorder ring holding the last N spans of this
// process (served by GET /debug/flightrecorder), and a Collector
// keyed by TraceID (served by GET /debug/trace/{job}). Foreign spans
// returned by worker daemons are merged with Tracer.Ingest, which
// feeds only the Collector — the flight recorder stays per-process.
package span

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one logical job across every process that works
// on it, in W3C trace-context form (16 bytes, hex-encoded on the
// wire). The all-zero value is invalid.
type TraceID [16]byte

// String returns the 32-hex-digit wire form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether t is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// MarshalText implements encoding.TextMarshaler (hex).
func (t TraceID) MarshalText() ([]byte, error) {
	b := make([]byte, 32)
	hex.Encode(b, t[:])
	return b, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) != 32 {
		return fmt.Errorf("span: trace id must be 32 hex digits, got %d", len(b))
	}
	_, err := hex.Decode(t[:], b)
	return err
}

// ID identifies one span within a trace (8 bytes on the wire). IDs
// are unique across the processes of one trace: the top 24 bits are a
// per-tracer origin (random by default, injectable for tests) and the
// low 40 bits a process-local counter starting at 1, so 0 never
// occurs and doubles as "no parent".
type ID uint64

// String returns the 16-hex-digit wire form.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalText implements encoding.TextMarshaler (hex).
func (id ID) MarshalText() ([]byte, error) {
	return []byte(id.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *ID) UnmarshalText(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("span: span id must be 16 hex digits, got %d", len(b))
	}
	var raw [8]byte
	if _, err := hex.Decode(raw[:], b); err != nil {
		return err
	}
	*id = ID(binary.BigEndian.Uint64(raw[:]))
	return nil
}

// Span is one completed timed operation. Spans form a tree through
// Parent; spans of different processes join one tree when the child
// process was handed its parent's scope via a traceparent header.
type Span struct {
	Trace   TraceID `json:"trace"`
	ID      ID      `json:"id"`
	Parent  ID      `json:"parent,omitempty"`
	Name    string  `json:"name"`
	Process string  `json:"process"`
	// Attempt labels the search attempt the span belongs to (-1 for
	// engine-level work outside any attempt), mirroring trace.Event.
	Attempt int           `json:"attempt"`
	Detail  string        `json:"detail,omitempty"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
}

// Options configures a Tracer. The zero value is usable.
type Options struct {
	// Process names the owning process in every span (e.g. "kpartd",
	// "kpart"). Defaults to "proc".
	Process string
	// Now supplies the clock (nil = time.Now). Clock readings feed
	// only spans, never search decisions.
	Now func() time.Time
	// Origin seeds the top 24 bits of every span ID minted by this
	// tracer (0 = crypto/rand). Fix it in tests for stable IDs.
	Origin uint64
	// FlightSize bounds the flight-recorder ring (default 256).
	FlightSize int
	// MaxTraces bounds the number of distinct traces the collector
	// retains, oldest-first eviction (default 64).
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's retained spans; the
	// overflow is counted, not silently lost (default 8192).
	MaxSpansPerTrace int
}

// Tracer mints span IDs and routes completed spans to the process's
// flight recorder and trace collector. Safe for concurrent use.
type Tracer struct {
	process string
	now     func() time.Time
	origin  uint64
	seq     atomic.Uint64
	col     *Collector
	flight  *FlightRecorder
}

// NewTracer builds an armed tracer with its own Collector and
// FlightRecorder.
func NewTracer(o Options) *Tracer {
	if o.Process == "" {
		o.Process = "proc"
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Origin == 0 {
		var b [3]byte
		if _, err := rand.Read(b[:]); err == nil {
			o.Origin = uint64(b[0])<<16 | uint64(b[1])<<8 | uint64(b[2])
		} else {
			// Degraded but functional: the counter alone still yields
			// unique IDs within this process.
			o.Origin = 1
		}
	}
	if o.FlightSize <= 0 {
		o.FlightSize = 256
	}
	if o.MaxTraces <= 0 {
		o.MaxTraces = 64
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 8192
	}
	return &Tracer{
		process: o.Process,
		now:     o.Now,
		origin:  o.Origin & 0xffffff,
		col:     NewCollector(o.MaxTraces, o.MaxSpansPerTrace),
		flight:  NewFlightRecorder(o.FlightSize),
	}
}

// Process returns the tracer's process name.
func (t *Tracer) Process() string { return t.process }

// Collector returns the tracer's trace collector.
func (t *Tracer) Collector() *Collector { return t.col }

// Flight returns the tracer's flight recorder.
func (t *Tracer) Flight() *FlightRecorder { return t.flight }

// Ingest merges spans recorded by another process (a worker daemon's
// response) into the collector. The flight recorder is untouched: it
// holds only this process's spans.
func (t *Tracer) Ingest(spans []Span) {
	for _, sp := range spans {
		if sp.Trace.IsZero() || sp.ID == 0 {
			continue
		}
		t.col.Record(sp)
	}
}

// Root returns an armed scope for trace id whose child spans parent
// under parent (0 = they become roots of the trace).
func (t *Tracer) Root(trace TraceID, parent ID) Scope {
	return Scope{t: t, trace: trace, parent: parent}
}

func (t *Tracer) nextID() ID {
	return ID(t.origin<<40 | t.seq.Add(1)&(1<<40-1))
}

func (t *Tracer) record(sp Span) {
	t.flight.Record(sp)
	t.col.Record(sp)
}

// Scope is a position in a trace: spans started from it become
// children of the scope's parent span. The zero value is disarmed —
// Start is a single branch returning a no-op Running — so engine
// configs embed a Scope without nil checks or pointer plumbing.
type Scope struct {
	t      *Tracer
	trace  TraceID
	parent ID
}

// Enabled reports whether spans started from this scope are recorded.
func (s Scope) Enabled() bool { return s.t != nil }

// Tracer returns the owning tracer (nil when disarmed).
func (s Scope) Tracer() *Tracer { return s.t }

// TraceID returns the scope's trace (zero when disarmed).
func (s Scope) TraceID() TraceID { return s.trace }

// ParentID returns the span new children parent under.
func (s Scope) ParentID() ID { return s.parent }

// Start begins a span. On a disarmed scope it returns a no-op
// Running without reading the clock or allocating.
func (s Scope) Start(name string, attempt int) Running {
	if s.t == nil {
		return Running{}
	}
	return Running{t: s.t, sp: Span{
		Trace:   s.trace,
		ID:      s.t.nextID(),
		Parent:  s.parent,
		Name:    name,
		Process: s.t.process,
		Attempt: attempt,
		Start:   s.t.now(),
	}}
}

// Traceparent renders the scope as a W3C trace-context header value
// ("00-<trace>-<parent>-01"), or "" when the scope is disarmed or has
// no parent span to propagate.
func (s Scope) Traceparent() string {
	if s.t == nil || s.parent == 0 || s.trace.IsZero() {
		return ""
	}
	return "00-" + s.trace.String() + "-" + s.parent.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version except "ff" and ignores the trace-flags octet.
func ParseTraceparent(h string) (TraceID, ID, bool) {
	var tid TraceID
	var sid ID
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, 0, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(h[:2])); err != nil || ver[0] == 0xff {
		return tid, 0, false
	}
	if err := tid.UnmarshalText([]byte(h[3:35])); err != nil || tid.IsZero() {
		return TraceID{}, 0, false
	}
	if err := sid.UnmarshalText([]byte(h[36:52])); err != nil || sid == 0 {
		return TraceID{}, 0, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:])); err != nil {
		return TraceID{}, 0, false
	}
	return tid, sid, true
}

// DeriveTraceID maps a search's durable identity — job ID plus the
// checkpoint identity (seed, solutions) — to a stable TraceID, so a
// crash-recovered or resumed run lands its spans in the same trace as
// the original attempt.
func DeriveTraceID(job string, seed int64, solutions int) TraceID {
	h := sha256.New()
	fmt.Fprintf(h, "fpgapart-span-v1\x00%s\x00%d\x00%d", job, seed, solutions)
	var t TraceID
	copy(t[:], h.Sum(nil))
	if t.IsZero() {
		t[15] = 1
	}
	return t
}

// Running is an in-flight span, returned by value so the armed path
// stays off the heap. End is a no-op on the zero value.
type Running struct {
	t  *Tracer
	sp Span
}

// Scope returns the child scope: spans started from it parent under
// this span. Disarmed when the Running is the no-op zero value.
func (r Running) Scope() Scope {
	if r.t == nil {
		return Scope{}
	}
	return Scope{t: r.t, trace: r.sp.Trace, parent: r.sp.ID}
}

// SpanID returns the in-flight span's ID (0 when disarmed).
func (r Running) SpanID() ID { return r.sp.ID }

// Detail attaches a free-form "k=v k=v" annotation.
func (r *Running) Detail(d string) {
	if r.t != nil {
		r.sp.Detail = d
	}
}

// End completes the span and records it.
func (r Running) End() {
	if r.t == nil {
		return
	}
	r.sp.Dur = r.t.now().Sub(r.sp.Start)
	r.t.record(r.sp)
}

// FlightRecorder is a bounded ring of the last N completed spans of
// this process — always-on, fixed memory, no per-record allocation
// once warm. Safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64
}

// NewFlightRecorder builds a ring holding n spans (n >= 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{ring: make([]Span, 0, n)}
}

// Record adds a completed span, evicting the oldest when full.
func (f *FlightRecorder) Record(sp Span) {
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, sp)
	} else {
		f.ring[f.next] = sp
		f.next = (f.next + 1) % cap(f.ring)
	}
	f.total++
	f.mu.Unlock()
}

// Snapshot returns the retained spans oldest-first plus the total
// number ever recorded.
func (f *FlightRecorder) Snapshot() ([]Span, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Span, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out, f.total
}

// Collector retains completed spans grouped by trace, bounded on both
// axes: at most maxTraces distinct traces (oldest evicted first) and
// at most maxSpans spans per trace (the overflow is counted). Safe
// for concurrent use.
type Collector struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	order     []TraceID
	traces    map[TraceID]*traceBucket
}

type traceBucket struct {
	spans   []Span
	dropped int
}

// NewCollector builds a collector with the given bounds (values < 1
// default to 64 traces / 8192 spans).
func NewCollector(maxTraces, maxSpansPerTrace int) *Collector {
	if maxTraces < 1 {
		maxTraces = 64
	}
	if maxSpansPerTrace < 1 {
		maxSpansPerTrace = 8192
	}
	return &Collector{
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
		traces:    make(map[TraceID]*traceBucket),
	}
}

// Record adds one completed span to its trace's bucket.
func (c *Collector) Record(sp Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.traces[sp.Trace]
	if b == nil {
		if len(c.order) >= c.maxTraces {
			delete(c.traces, c.order[0])
			c.order = c.order[1:]
		}
		b = &traceBucket{}
		c.traces[sp.Trace] = b
		c.order = append(c.order, sp.Trace)
	}
	if len(b.spans) >= c.maxSpans {
		b.dropped++
		return
	}
	b.spans = append(b.spans, sp)
}

// Trace returns a copy of one trace's retained spans (recording
// order) and how many overflowed the per-trace bound.
func (c *Collector) Trace(id TraceID) ([]Span, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.traces[id]
	if b == nil {
		return nil, 0
	}
	out := make([]Span, len(b.spans))
	copy(out, b.spans)
	return out, b.dropped
}

// Subtree returns the spans of trace id that are root or descendants
// of root, in recording order. A worker daemon uses it to return
// exactly one request's spans even when several attempts of the same
// trace landed on it.
func (c *Collector) Subtree(id TraceID, root ID) []Span {
	spans, _ := c.Trace(id)
	if len(spans) == 0 {
		return nil
	}
	in := make(map[ID]bool, len(spans))
	in[root] = true
	// Spans are recorded at End, so a parent may be recorded after
	// its children (it ends last). Iterate to a fixed point; the tree
	// is shallow (job → attempt → level → pass), so this converges in
	// a handful of rounds.
	for changed := true; changed; {
		changed = false
		for i := range spans {
			if !in[spans[i].ID] && in[spans[i].Parent] {
				in[spans[i].ID] = true
				changed = true
			}
		}
	}
	out := make([]Span, 0, len(spans))
	for i := range spans {
		if in[spans[i].ID] {
			out = append(out, spans[i])
		}
	}
	return out
}
