package span

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances 1ms per reading, like the kway golden clock.
func fakeClock() func() time.Time {
	var mu sync.Mutex
	t0 := time.Unix(1_700_000_000, 0)
	step := 0
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		step++
		return t0.Add(time.Duration(step) * time.Millisecond)
	}
}

func testTracer() *Tracer {
	return NewTracer(Options{Process: "test", Now: fakeClock(), Origin: 0xabc})
}

func TestIDWireForm(t *testing.T) {
	tr := testTracer()
	id := tr.nextID()
	if id == 0 {
		t.Fatal("first ID must be non-zero")
	}
	if got := id.String(); len(got) != 16 {
		t.Fatalf("ID wire form %q not 16 hex digits", got)
	}
	var back ID
	if err := back.UnmarshalText([]byte(id.String())); err != nil || back != id {
		t.Fatalf("ID round trip: got %v err %v, want %v", back, err, id)
	}
	tid := DeriveTraceID("job", 11, 6)
	var tback TraceID
	if err := tback.UnmarshalText([]byte(tid.String())); err != nil || tback != tid {
		t.Fatalf("TraceID round trip: got %v err %v, want %v", tback, err, tid)
	}
}

func TestDeriveTraceIDStable(t *testing.T) {
	a := DeriveTraceID("cli", 11, 50)
	b := DeriveTraceID("cli", 11, 50)
	if a != b {
		t.Fatal("DeriveTraceID must be deterministic")
	}
	if a.IsZero() {
		t.Fatal("derived trace id must be non-zero")
	}
	if a == DeriveTraceID("cli", 12, 50) || a == DeriveTraceID("cli", 11, 51) || a == DeriveTraceID("cl", 11, 50) {
		t.Fatal("derived trace id must depend on every identity component")
	}
}

func TestDisarmedScopeIsFreeAndInert(t *testing.T) {
	var s Scope
	if s.Enabled() {
		t.Fatal("zero Scope must be disarmed")
	}
	allocs := testing.AllocsPerRun(100, func() {
		run := s.Start("fm-pass", 3)
		run.Detail("x")
		run.End()
	})
	if allocs != 0 {
		t.Fatalf("disarmed Start/End allocated %v times per run, want 0", allocs)
	}
	if got := s.Traceparent(); got != "" {
		t.Fatalf("disarmed Traceparent = %q, want empty", got)
	}
	if s.Start("x", 0).Scope().Enabled() {
		t.Fatal("child of a disarmed scope must stay disarmed")
	}
}

func TestSpanTreeParenting(t *testing.T) {
	tr := testTracer()
	trace := DeriveTraceID("job", 1, 2)
	root := tr.Root(trace, 0)
	job := root.Start("job", -1)
	att := job.Scope().Start("attempt", 0)
	pass := att.Scope().Start("fm-pass", 0)
	pass.End()
	att.End()
	job.End()

	spans, dropped := tr.Collector().Trace(trace)
	if dropped != 0 || len(spans) != 3 {
		t.Fatalf("got %d spans (%d dropped), want 3/0", len(spans), dropped)
	}
	roots := Tree(spans)
	if len(roots) != 1 || roots[0].Name != "job" {
		t.Fatalf("tree roots = %+v, want single job root", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "attempt" {
		t.Fatalf("job children = %+v, want [attempt]", roots[0].Children)
	}
	if got := roots[0].Children[0].Children[0].Name; got != "fm-pass" {
		t.Fatalf("attempt child = %q, want fm-pass", got)
	}
	if roots[0].Dur <= 0 {
		t.Fatal("completed span must have positive duration under the fake clock")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := testTracer()
	trace := DeriveTraceID("job", 7, 3)
	rpc := tr.Root(trace, 0).Start("rpc", 2)
	h := rpc.Scope().Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent %q malformed", h)
	}
	gotTrace, gotParent, ok := ParseTraceparent(h)
	if !ok || gotTrace != trace || gotParent != rpc.SpanID() {
		t.Fatalf("ParseTraceparent(%q) = %v %v %v", h, gotTrace, gotParent, ok)
	}
	rpc.End()

	for _, bad := range []string{
		"",
		"00-0000000000000000000000000000000-0000000000000001-01",
		"00-" + strings.Repeat("0", 32) + "-0000000000000001-01", // zero trace
		"00-" + trace.String() + "-0000000000000000-01",          // zero parent
		"ff-" + trace.String() + "-0000000000000001-01",          // forbidden version
		"00_" + trace.String() + "-0000000000000001-01",
		"00-" + trace.String() + "-0000000000000001-zz",
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent accepted %q", bad)
		}
	}
}

func TestCrossProcessStitching(t *testing.T) {
	trace := DeriveTraceID("job", 1, 1)
	coordTr := NewTracer(Options{Process: "coord", Now: fakeClock(), Origin: 1})
	workTr := NewTracer(Options{Process: "worker", Now: fakeClock(), Origin: 2})

	job := coordTr.Root(trace, 0).Start("job", -1)
	rpc := job.Scope().Start("rpc", 0)
	h := rpc.Scope().Traceparent()

	// Worker side: parse the header, run its own job span, return the
	// subtree as the response payload.
	wt, wp, ok := ParseTraceparent(h)
	if !ok {
		t.Fatal("worker failed to parse traceparent")
	}
	wjob := workTr.Root(wt, wp).Start("job", 0)
	wpass := wjob.Scope().Start("fm-pass", 0)
	wpass.End()
	wjob.End()
	payload := workTr.Collector().Subtree(wt, wjob.SpanID())
	if len(payload) != 2 {
		t.Fatalf("worker subtree has %d spans, want 2", len(payload))
	}

	coordTr.Ingest(payload)
	rpc.End()
	job.End()

	spans, _ := coordTr.Collector().Trace(trace)
	roots := Tree(spans)
	if len(roots) != 1 {
		t.Fatalf("stitched trace has %d roots, want 1", len(roots))
	}
	procs := map[string]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		procs[n.Process] = true
		for _, c := range n.Children {
			visit(c)
		}
	}
	visit(roots[0])
	if !procs["coord"] || !procs["worker"] {
		t.Fatalf("stitched tree spans processes %v, want both coord and worker", procs)
	}
	// Worker ingests must not leak into the coordinator's flight ring.
	flight, _ := coordTr.Flight().Snapshot()
	for _, sp := range flight {
		if sp.Process != "coord" {
			t.Fatalf("foreign span %+v in coordinator flight recorder", sp)
		}
	}
}

func TestSubtreeIsolatesRequests(t *testing.T) {
	tr := testTracer()
	trace := DeriveTraceID("job", 1, 4)
	// Two requests of the same trace on one worker: each subtree must
	// contain only its own spans.
	a := tr.Root(trace, 0).Start("job", 0)
	ap := a.Scope().Start("fm-pass", 0)
	ap.End()
	a.End()
	b := tr.Root(trace, 0).Start("job", 1)
	bp := b.Scope().Start("fm-pass", 1)
	bp.End()
	b.End()
	sub := tr.Collector().Subtree(trace, b.SpanID())
	if len(sub) != 2 {
		t.Fatalf("subtree has %d spans, want 2", len(sub))
	}
	for _, sp := range sub {
		if sp.Attempt != 1 {
			t.Fatalf("subtree leaked span %+v from the other request", sp)
		}
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(Span{Name: fmt.Sprintf("s%d", i)})
	}
	got, total := f.Snapshot()
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	for i, sp := range got {
		if want := fmt.Sprintf("s%d", 6+i); sp.Name != want {
			t.Fatalf("ring[%d] = %q, want %q (oldest-first)", i, sp.Name, want)
		}
	}
}

func TestCollectorBounds(t *testing.T) {
	c := NewCollector(2, 3)
	mk := func(b byte) TraceID { var t TraceID; t[0] = b; return t }
	for i := 0; i < 5; i++ {
		c.Record(Span{Trace: mk(1), ID: ID(i + 1)})
	}
	spans, dropped := c.Trace(mk(1))
	if len(spans) != 3 || dropped != 2 {
		t.Fatalf("per-trace bound: %d spans %d dropped, want 3/2", len(spans), dropped)
	}
	c.Record(Span{Trace: mk(2), ID: 1})
	c.Record(Span{Trace: mk(3), ID: 1}) // evicts trace 1
	if spans, _ := c.Trace(mk(1)); spans != nil {
		t.Fatal("oldest trace must be evicted at the MaxTraces bound")
	}
	if spans, _ := c.Trace(mk(3)); len(spans) != 1 {
		t.Fatal("newest trace missing after eviction")
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := testTracer()
	trace := DeriveTraceID("cli", 11, 6)
	job := tr.Root(trace, 0).Start("job", -1)
	att := job.Scope().Start("attempt", 0)
	pass := att.Scope().Start("fm-pass", 0)
	pass.End()
	att.End()
	job.End()
	spans, _ := tr.Collector().Trace(trace)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var ct ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", ct.DisplayTimeUnit)
	}
	// Every (pid,tid) stream must be a balanced, properly nested B/E
	// sequence, and metadata must name the process.
	depth := map[[2]int]int{}
	sawProc := false
	for _, e := range ct.TraceEvents {
		k := [2]int{e.PID, e.TID}
		switch e.Ph {
		case "B":
			depth[k]++
		case "E":
			depth[k]--
			if depth[k] < 0 {
				t.Fatalf("unbalanced E for %v", k)
			}
		case "M":
			if e.Name == "process_name" && e.Args["name"] == "test" {
				sawProc = true
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	for k, d := range depth {
		if d != 0 {
			t.Fatalf("stream %v left %d open spans", k, d)
		}
	}
	if !sawProc {
		t.Fatal("missing process_name metadata")
	}
	// The engine-level job span must render on tid 0, attempts on i+1.
	for _, e := range ct.TraceEvents {
		if e.Ph == "B" && e.Name == "job" && e.TID != 0 {
			t.Fatalf("job span tid = %d, want 0", e.TID)
		}
		if e.Ph == "B" && e.Name == "attempt" && e.TID != 1 {
			t.Fatalf("attempt 0 span tid = %d, want 1", e.TID)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := NewTracer(Options{Process: "race", Origin: 7})
	trace := DeriveTraceID("race", 0, 0)
	root := tr.Root(trace, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				run := root.Start("s", w)
				run.End()
			}
		}(w)
	}
	wg.Wait()
	spans, _ := tr.Collector().Trace(trace)
	if len(spans) != 800 {
		t.Fatalf("recorded %d spans, want 800", len(spans))
	}
	seen := map[ID]bool{}
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span ID %v", sp.ID)
		}
		seen[sp.ID] = true
	}
}
