package span

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying s, so per-attempt scopes flow
// through fixed callback signatures (search.AttemptFunc) without
// widening them. Only call on armed scopes — the disarmed path must
// not allocate a context.
func NewContext(ctx context.Context, s Scope) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the scope carried by ctx, or a disarmed Scope.
func FromContext(ctx context.Context) Scope {
	s, _ := ctx.Value(ctxKey{}).(Scope)
	return s
}
