package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Node is one span with its resolved children, the JSON tree form
// served by GET /debug/trace/{job}.
type Node struct {
	Span
	Children []*Node `json:"children,omitempty"`
}

// Tree links spans into their forest: spans whose parent is absent
// (or zero) become roots. Roots and children are ordered by start
// time, ID-tiebroken, so the rendering is stable under the
// nondeterministic recording order of a parallel search.
func Tree(spans []Span) []*Node {
	nodes := make([]*Node, len(spans))
	byID := make(map[ID]*Node, len(spans))
	for i := range spans {
		nodes[i] = &Node{Span: spans[i]}
		byID[spans[i].ID] = nodes[i]
	}
	var roots []*Node
	for _, n := range nodes {
		if p := byID[n.Parent]; p != nil && n.Parent != n.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*Node) {
		sort.SliceStable(ns, func(i, j int) bool {
			if !ns[i].Start.Equal(ns[j].Start) {
				return ns[i].Start.Before(ns[j].Start)
			}
			return ns[i].ID < ns[j].ID
		})
	}
	order(roots)
	for _, n := range nodes {
		order(n.Children)
	}
	return roots
}

// ChromeEvent is one entry of the Chrome trace_event format
// (loadable in Perfetto / chrome://tracing). Only the duration
// ("B"/"E") and metadata ("M") phases are emitted.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object container form of the format.
type ChromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// chromeTID maps a span's attempt label to its timeline row: attempt
// -1 (engine-level work) renders on row 0, attempt i on row i+1.
func chromeTID(attempt int) int {
	if attempt < 0 {
		return 0
	}
	return attempt + 1
}

// BuildChromeTrace converts spans into Chrome trace_event form. One
// pid per process (first-seen order), one tid per search attempt.
// B/E pairs are emitted by a recursive walk of the span tree —
// parent B, children, parent E — so every (pid,tid) stream is
// balanced and properly nested by construction.
func BuildChromeTrace(spans []Span) ChromeTrace {
	ct := ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	pids := map[string]int{}
	type key struct {
		pid, tid int
	}
	named := map[key]bool{}
	pidOf := func(process string) int {
		p, ok := pids[process]
		if !ok {
			p = len(pids) + 1
			pids[process] = p
			ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
				Name: "process_name", Ph: "M", PID: p,
				Args: map[string]any{"name": process},
			})
		}
		return p
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		pid := pidOf(n.Process)
		tid := chromeTID(n.Attempt)
		if k := (key{pid, tid}); !named[k] {
			named[k] = true
			tn := "engine"
			if n.Attempt >= 0 {
				tn = fmt.Sprintf("attempt %d", n.Attempt)
			}
			ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": tn},
			})
		}
		start := n.Start.UnixNano() / 1e3
		args := map[string]any{"id": n.ID.String()}
		if n.Parent != 0 {
			args["parent"] = n.Parent.String()
		}
		if n.Detail != "" {
			args["detail"] = n.Detail
		}
		ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
			Name: n.Name, Cat: "span", Ph: "B", TS: start,
			PID: pid, TID: tid, Args: args,
		})
		for _, c := range n.Children {
			walk(c)
		}
		end := start + n.Dur.Nanoseconds()/1e3
		if end < start {
			end = start
		}
		ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
			Name: n.Name, Cat: "span", Ph: "E", TS: end,
			PID: pid, TID: tid,
		})
	}
	for _, root := range Tree(spans) {
		walk(root)
	}
	return ct
}

// WriteChromeTrace writes spans as Chrome trace_event JSON.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	return enc.Encode(BuildChromeTrace(spans))
}
