package objective

import (
	"testing"

	"fpgapart/internal/topology"
)

func TestTerminalCutIsInert(t *testing.T) {
	var m Model = TerminalCut{}
	if m.Board() != nil || m.SpanCost(topology.SlotSet(0).Add(1)) != 0 {
		t.Fatal("terminal-cut model must be topology-free")
	}
	if w := m.CarveWeights(make([]topology.SlotSet, 3), 0, 1, nil); w != nil {
		t.Fatalf("terminal-cut weights = %v, want nil (classic unit-cut path)", w)
	}
}

func TestTopologyCarveWeightsLinear(t *testing.T) {
	b, err := topology.Linear(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var m Model = NewTopology(b)
	// Nets: empty span, span {0}, span {0,1}. Carve between s0=2, s1=3.
	spans := []topology.SlotSet{0, topology.SlotSet(0).Add(0), topology.SlotSet(0).Add(0).Add(1)}
	w := m.CarveWeights(spans, 2, 3, nil)
	if len(w) != 3 {
		t.Fatalf("%d weights, want 3", len(w))
	}
	// Empty span: landing anywhere alone costs 0, cut costs dist(2,3)=1.
	if w[0].Alone != [2]int32{0, 0} || w[0].Both != 1 {
		t.Fatalf("empty-span weights %+v", w[0])
	}
	// Span {0}: extend to 2 costs 2, to 3 costs 3, to both 3.
	if w[1].Alone != [2]int32{2, 3} || w[1].Both != 3 {
		t.Fatalf("span{0} weights %+v", w[1])
	}
	// Span {0,1}: extend to 2 costs 1, to 3 costs 2, to both 2.
	if w[2].Alone != [2]int32{1, 2} || w[2].Both != 2 {
		t.Fatalf("span{0,1} weights %+v", w[2])
	}
	if m.SpanCost(spans[2]) != 1 {
		t.Fatalf("span cost {0,1} = %d, want 1", m.SpanCost(spans[2]))
	}
}

func TestTopologyCarveWeightsCrossbar(t *testing.T) {
	b, err := topology.Crossbar(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewTopology(b)
	// On a crossbar every new slot costs 1 once the span is non-empty,
	// so cutting always costs exactly 1 more than not cutting: the
	// flat-cut regime with a constant offset.
	spans := []topology.SlotSet{0, topology.SlotSet(0).Add(0), topology.SlotSet(0).Add(0).Add(1)}
	for i, w := range m.CarveWeights(spans, 2, 3, nil) {
		if w.Both-w.Alone[0] != 1 || w.Both-w.Alone[1] != 1 {
			t.Fatalf("net %d: crossbar weights %+v not cut+1", i, w)
		}
	}
}

func TestCarveWeightsReuseBuffer(t *testing.T) {
	b, err := topology.Mesh(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewTopology(b)
	spans := make([]topology.SlotSet, 8)
	first := m.CarveWeights(spans, 0, 1, nil)
	second := m.CarveWeights(spans, 0, 1, first)
	if &first[0] != &second[0] {
		t.Fatal("buffer not reused")
	}
}
