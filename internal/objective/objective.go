// Package objective is the pluggable cost-model layer between the
// k-way engine and its FM bipartitioner. The engine carves parts off
// recursively; each carve is a bipartition whose refinement minimizes
// replication.State's objective. A Model decides what that objective
// is by supplying per-net weight tables (replication.NetWeights):
//
//   - TerminalCut, the paper's flat objective. CarveWeights returns
//     nil, selecting the engine's classic unit-cut/terminal
//     accounting — fixed-seed byte-identical to releases that
//     predate this package.
//   - Topology, hop-weighted interconnect over a board
//     (internal/topology). A net's cost is the Steiner span of the
//     device slots it touches; during a carve between slot s0 and
//     remainder anchor s1, each net is weighted by the marginal span
//     cost of extending its already-placed span to s0, s1, or both.
//     FM then minimizes the final hop-weighted interconnect
//     incrementally, the same way it maintains gains today.
package objective

import (
	"fpgapart/internal/replication"
	"fpgapart/internal/topology"
)

// Model is a partition cost model. Implementations must be pure:
// CarveWeights may be called concurrently from search workers.
type Model interface {
	// Name identifies the model in traces and logs.
	Name() string
	// Board returns the board the model scores against, or nil when
	// the model is topology-free.
	Board() *topology.Board
	// CarveWeights derives the per-net weight table for one carve:
	// spans[i] is the set of board slots already hosting net i (from
	// parts carved earlier), s0 the slot the carved part will occupy,
	// s1 the anchor slot of the remainder. A nil return selects the
	// classic unit-cut objective. buf, when non-nil, may be reused as
	// backing storage.
	CarveWeights(spans []topology.SlotSet, s0, s1 int, buf []replication.NetWeights) []replication.NetWeights
	// SpanCost scores one net's placement over the slots it touches
	// (0 for topology-free models). Solution interconnect is the sum
	// over nets.
	SpanCost(span topology.SlotSet) int
}

// TerminalCut is the paper's objective: device cost (Eq. 1) driven by
// flat per-part terminal counts, with no notion of board distance.
type TerminalCut struct{}

// Name implements Model.
func (TerminalCut) Name() string { return "terminal-cut" }

// Board implements Model (no board).
func (TerminalCut) Board() *topology.Board { return nil }

// CarveWeights implements Model: nil keeps the engine on its classic
// unit-cut accounting, byte-identical to the pre-objective engine.
func (TerminalCut) CarveWeights([]topology.SlotSet, int, int, []replication.NetWeights) []replication.NetWeights {
	return nil
}

// SpanCost implements Model.
func (TerminalCut) SpanCost(topology.SlotSet) int { return 0 }

// Topology scores nets by hop-weighted Steiner span over a board.
type Topology struct {
	b *topology.Board
}

// NewTopology returns the hop-weighted interconnect model for board b.
func NewTopology(b *topology.Board) Topology { return Topology{b: b} }

// Name implements Model.
func (m Topology) Name() string { return "topology:" + m.b.Name }

// Board implements Model.
func (m Topology) Board() *topology.Board { return m.b }

// CarveWeights implements Model. For net i with already-placed span S:
//
//	Alone[0] = SpanCost(S∪{s0}) − SpanCost(S)   net stays only in the part
//	Alone[1] = SpanCost(S∪{s1}) − SpanCost(S)   net stays only in the rest
//	Both     = SpanCost(S∪{s0,s1}) − SpanCost(S)  net is cut at this carve
//
// so an FM run minimizing the weighted sum minimizes the final
// hop-weighted interconnect, greedily over the carve sequence. Nets
// with an empty span and no cut cost nothing, exactly like the flat
// objective; on a crossbar the table degenerates to {1,1,2}-style
// constants and FM reduces to cut minimization with a per-net offset.
func (m Topology) CarveWeights(spans []topology.SlotSet, s0, s1 int, buf []replication.NetWeights) []replication.NetWeights {
	w := buf[:0]
	for _, span := range spans {
		base := m.b.SpanCost(span)
		w = append(w, replication.NetWeights{
			Alone: [2]int32{
				int32(m.b.SpanCost(span.Add(s0)) - base),
				int32(m.b.SpanCost(span.Add(s1)) - base),
			},
			Both: int32(m.b.SpanCost(span.Add(s0).Add(s1)) - base),
		})
	}
	return w
}

// SpanCost implements Model.
func (m Topology) SpanCost(span topology.SlotSet) int { return m.b.SpanCost(span) }
