// Package cluster implements connectivity-based bottom-up clustering —
// the "combine with clustering techniques [17]" refinement the paper's
// conclusion points to (Hagen & Kahng, ICCAD'92). Tightly connected
// cells are contracted into super-cells; an FM bipartition of the
// coarse hypergraph projects back to the flat netlist as a high-quality
// initial partition for the fine-grained engine.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

// Options tunes Build.
type Options struct {
	// Rounds of pairwise matching (each roughly halves the cell count).
	// Default 2.
	Rounds int
	// MaxClusterArea caps a super-cell's total area (default 8).
	MaxClusterArea int
	// MaxClusterOutputs caps a super-cell's combined output count
	// (0 = unlimited). The bound is conservative — it sums the member
	// cells' outputs even though outputs consumed inside the cluster
	// vanish — so downstream consumers with hard per-cell output
	// limits (replication.State admits at most 32) can rely on it.
	MaxClusterOutputs int
	// MaxFanout ignores nets with more connections than this when
	// scoring affinity (clock-like nets carry no locality). Default 16.
	MaxFanout int
	Seed      int64
}

func (o Options) withDefaults() Options {
	if o.Rounds == 0 {
		o.Rounds = 2
	}
	if o.MaxClusterArea == 0 {
		o.MaxClusterArea = 8
	}
	if o.MaxFanout == 0 {
		o.MaxFanout = 16
	}
	return o
}

// Clustering relates a coarse hypergraph to the original cells.
type Clustering struct {
	Graph   *hypergraph.Graph
	Members [][]hypergraph.CellID // per coarse cell: original cell ids
}

// Project expands a coarse-level assignment to the original cells.
func (c *Clustering) Project(coarse []replication.Block, numCells int) ([]replication.Block, error) {
	if len(coarse) != len(c.Members) {
		return nil, fmt.Errorf("cluster: assignment over %d cells, coarse graph has %d", len(coarse), len(c.Members))
	}
	out := make([]replication.Block, numCells)
	seen := 0
	for ci, members := range c.Members {
		for _, m := range members {
			if int(m) >= numCells {
				return nil, fmt.Errorf("cluster: member %d outside original graph", m)
			}
			out[m] = coarse[ci]
			seen++
		}
	}
	if seen != numCells {
		return nil, fmt.Errorf("cluster: members cover %d of %d cells", seen, numCells)
	}
	return out, nil
}

// Build contracts the graph by repeated heavy-edge matching.
func Build(g *hypergraph.Graph, opts Options) (*Clustering, error) {
	opts = opts.withDefaults()
	cur := g
	members := make([][]hypergraph.CellID, g.NumCells())
	for i := range members {
		members[i] = []hypergraph.CellID{hypergraph.CellID(i)}
	}
	r := rand.New(rand.NewSource(opts.Seed))
	for round := 0; round < opts.Rounds; round++ {
		match := matchRound(cur, opts, r)
		coarse, coarseMembers, err := contract(cur, match)
		if err != nil {
			return nil, err
		}
		if coarse.NumCells() >= cur.NumCells() {
			break // no progress
		}
		// Compose membership through this round.
		next := make([][]hypergraph.CellID, len(coarseMembers))
		for ci, ms := range coarseMembers {
			for _, m := range ms {
				next[ci] = append(next[ci], members[m]...)
			}
		}
		members = next
		cur = coarse
	}
	return &Clustering{Graph: cur, Members: members}, nil
}

// matchRound pairs each cell with its highest-affinity unmatched
// neighbor, subject to the area cap. match[i] = partner index or i.
func matchRound(g *hypergraph.Graph, opts Options, r *rand.Rand) []int {
	n := g.NumCells()
	match := make([]int, n)
	for i := range match {
		match[i] = i
	}
	order := r.Perm(n)
	taken := make([]bool, n)
	weights := make(map[hypergraph.CellID]float64, 16)
	for _, ui := range order {
		if taken[ui] {
			continue
		}
		u := hypergraph.CellID(ui)
		for k := range weights {
			delete(weights, k)
		}
		for _, net := range g.CellNets(u) {
			conns := g.Nets[net].Conns
			if len(conns) > opts.MaxFanout || len(conns) < 2 {
				continue
			}
			w := 1.0 / float64(len(conns)-1)
			for _, cn := range conns {
				if cn.Cell != u && !taken[cn.Cell] {
					weights[cn.Cell] += w
				}
			}
		}
		best := hypergraph.CellID(-1)
		bestW := 0.0
		for v, w := range weights {
			if g.Cells[u].Area+g.Cells[v].Area > opts.MaxClusterArea {
				continue
			}
			if opts.MaxClusterOutputs > 0 &&
				len(g.Cells[u].Outputs)+len(g.Cells[v].Outputs) > opts.MaxClusterOutputs {
				continue
			}
			if w > bestW || (w == bestW && best >= 0 && v < best) {
				best, bestW = v, w
			}
		}
		if best >= 0 {
			taken[ui], taken[best] = true, true
			match[ui] = int(best)
			match[best] = ui
		}
	}
	return match
}

// contract builds the coarse hypergraph induced by the matching. Nets
// fully inside one cluster vanish; surviving nets keep their external
// kind. Coarse cells use full dependence (replication runs at the fine
// level only).
func contract(g *hypergraph.Graph, match []int) (*hypergraph.Graph, [][]hypergraph.CellID, error) {
	n := g.NumCells()
	clusterOf := make([]int, n)
	var membersList [][]hypergraph.CellID
	for i := 0; i < n; i++ {
		if match[i] >= i { // representative: the smaller index of a pair
			id := len(membersList)
			clusterOf[i] = id
			ms := []hypergraph.CellID{hypergraph.CellID(i)}
			if match[i] != i {
				clusterOf[match[i]] = id
				ms = append(ms, hypergraph.CellID(match[i]))
			}
			membersList = append(membersList, ms)
		}
	}

	b := hypergraph.NewBuilder(g.Name + "~")
	// Survey nets: which clusters touch each net, and who drives it.
	type netInfo struct {
		clusters map[int]bool
		driver   int // cluster driving the net, -1 external
	}
	infos := make([]netInfo, g.NumNets())
	for ni := range g.Nets {
		infos[ni] = netInfo{clusters: map[int]bool{}, driver: -1}
	}
	for ci := range g.Cells {
		cl := clusterOf[ci]
		c := &g.Cells[ci]
		for _, net := range c.Outputs {
			infos[net].clusters[cl] = true
			infos[net].driver = cl
		}
		for _, net := range c.Inputs {
			if net != hypergraph.NilNet {
				infos[net].clusters[cl] = true
			}
		}
	}
	netID := make([]hypergraph.NetID, g.NumNets())
	for ni := range netID {
		netID[ni] = hypergraph.NilNet
	}
	// Sorted net order keeps the builder deterministic.
	for ni := range g.Nets {
		info := &infos[ni]
		ext := g.Nets[ni].Ext
		if len(info.clusters) < 2 && ext == hypergraph.Internal {
			continue // fully internal to one cluster
		}
		switch ext {
		case hypergraph.ExtIn:
			netID[ni] = b.InputNet(g.Nets[ni].Name)
		case hypergraph.ExtOut:
			netID[ni] = b.OutputNet(g.Nets[ni].Name)
		default:
			netID[ni] = b.Net(g.Nets[ni].Name)
		}
	}
	for cl, ms := range membersList {
		var inputs, outputs []hypergraph.NetID
		seenIn := map[hypergraph.NetID]bool{}
		seenOut := map[hypergraph.NetID]bool{}
		area, dffs := 0, 0
		for _, m := range ms {
			c := &g.Cells[m]
			area += c.Area
			dffs += c.DFFs
			for _, net := range c.Outputs {
				if id := netID[net]; id != hypergraph.NilNet && !seenOut[id] {
					seenOut[id] = true
					outputs = append(outputs, id)
				}
			}
			for _, net := range c.Inputs {
				if net == hypergraph.NilNet {
					continue
				}
				id := netID[net]
				if id == hypergraph.NilNet || seenIn[id] || infos[net].driver == cl {
					continue // internal, duplicate, or driven by this cluster
				}
				seenIn[id] = true
				inputs = append(inputs, id)
			}
		}
		if len(outputs) == 0 {
			// A pure-sink cluster (e.g. all its outputs are internal):
			// keep the builder happy with a synthetic throwaway output?
			// This cannot happen: every cell output either survives or
			// is internal to the cluster, and internal means another
			// member consumes it — but a cluster with no surviving
			// outputs and no external nets would be unreachable logic.
			return nil, nil, fmt.Errorf("cluster: cluster %d of %q has no surviving outputs", cl, g.Name)
		}
		b.AddCell(hypergraph.CellSpec{
			Name:    fmt.Sprintf("k%d", cl),
			Inputs:  inputs,
			Outputs: outputs,
			Area:    area,
			DFFs:    dffs,
		})
	}
	coarse, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return coarse, membersList, nil
}

// sortCells is a test helper ordering member lists deterministically.
func (c *Clustering) sortCells() {
	for _, ms := range c.Members {
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	}
}
