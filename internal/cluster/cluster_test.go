package cluster

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/replication"
)

func testGraph(t *testing.T, cells int, seed int64) *hypergraph.Graph {
	t.Helper()
	g, err := bench.Generate(bench.Params{
		Name: "cl", Cells: cells, PrimaryIn: 12, PrimaryOut: 8,
		Clustering: 0.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildReducesAndCovers(t *testing.T) {
	g := testGraph(t, 300, 1)
	cl, err := Build(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Graph.NumCells() >= g.NumCells() {
		t.Fatalf("no reduction: %d -> %d", g.NumCells(), cl.Graph.NumCells())
	}
	if err := cl.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Membership covers every original cell exactly once.
	seen := make(map[hypergraph.CellID]bool)
	for _, ms := range cl.Members {
		for _, m := range ms {
			if seen[m] {
				t.Fatalf("cell %d in two clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != g.NumCells() {
		t.Fatalf("membership covers %d of %d", len(seen), g.NumCells())
	}
	// Area is conserved.
	if cl.Graph.TotalArea() != g.TotalArea() {
		t.Fatalf("area %d != %d", cl.Graph.TotalArea(), g.TotalArea())
	}
	if cl.Graph.NumDFF() != g.NumDFF() {
		t.Fatalf("dffs %d != %d", cl.Graph.NumDFF(), g.NumDFF())
	}
}

func TestBuildRespectsAreaCap(t *testing.T) {
	g := testGraph(t, 300, 2)
	cl, err := Build(g, Options{Rounds: 4, MaxClusterArea: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range cl.Graph.Cells {
		if a := cl.Graph.Cells[ci].Area; a > 4 {
			t.Fatalf("cluster %d area %d > cap", ci, a)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := testGraph(t, 200, 3)
	a, err := Build(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumCells() != b.Graph.NumCells() || a.Graph.NumNets() != b.Graph.NumNets() {
		t.Fatal("nondeterministic clustering")
	}
}

func TestProject(t *testing.T) {
	g := testGraph(t, 150, 4)
	cl, err := Build(g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	coarse := make([]replication.Block, cl.Graph.NumCells())
	for i := range coarse {
		coarse[i] = replication.Block(i % 2)
	}
	fine, err := cl.Project(coarse, g.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	// Every member landed on its cluster's block.
	for ci, ms := range cl.Members {
		for _, m := range ms {
			if fine[m] != coarse[ci] {
				t.Fatalf("cell %d projected to %d, cluster %d on %d", m, fine[m], ci, coarse[ci])
			}
		}
	}
	if _, err := cl.Project(coarse[:1], g.NumCells()); err == nil {
		t.Fatal("short coarse assignment should fail")
	}
}

// Clustering must preserve the cut structure: the projection of any
// coarse bipartition has the same cut as the coarse bipartition
// itself (internal nets of a cluster can never be cut).
func TestCutPreservation(t *testing.T) {
	g := testGraph(t, 200, 6)
	cl, err := Build(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cl.sortCells()
	coarse := make([]replication.Block, cl.Graph.NumCells())
	for i := range coarse {
		coarse[i] = replication.Block((i / 3) % 2)
	}
	stCoarse, err := replication.NewState(cl.Graph, coarse)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := cl.Project(coarse, g.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	stFine, err := replication.NewState(g, fine)
	if err != nil {
		t.Fatal(err)
	}
	if stCoarse.CutSize() != stFine.CutSize() {
		t.Fatalf("coarse cut %d != projected fine cut %d", stCoarse.CutSize(), stFine.CutSize())
	}
}
