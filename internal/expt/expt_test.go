package expt

import (
	"strings"
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/library"
)

// quickCfg shrinks the experiments so the whole package tests in
// seconds while preserving the comparative structure.
func quickCfg() Config {
	return Config{
		Scale:      8,
		Runs:       3,
		Solutions:  3,
		Thresholds: []int{0, 1, 2, 3},
		Seed:       1,
	}
}

func TestTableI(t *testing.T) {
	out := TableI(library.XC3000()).String()
	for _, want := range []string{"XC3020", "XC3090", "d_i/c_i"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableII(t *testing.T) {
	rows, tab, err := TableII(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		if r.CLBs <= 0 || r.IOBs <= 0 || r.Nets <= 0 || r.Pins <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Pins <= r.Nets {
			t.Fatalf("%s: pins (%d) should exceed nets (%d)", r.Name, r.Pins, r.Nets)
		}
	}
	if !strings.Contains(tab.String(), "c3540") {
		t.Fatal("table missing circuit name")
	}
}

func TestFigure3(t *testing.T) {
	rows, tab, bars, err := Figure3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.Single + r.MultiZ + r.PsiMore
		for _, p := range r.Psi {
			sum += p
		}
		if sum < 99.0 || sum > 101.0 {
			t.Fatalf("%s: bins sum to %.2f%%, want 100%%", r.Name, sum)
		}
		// Fig. 3 shape: single-output a minority, bulk at ψ ≥ 1.
		if r.Single > 40 {
			t.Fatalf("%s: single-output %.1f%% too high", r.Name, r.Single)
		}
	}
	if !strings.Contains(tab.String(), "ψ=0*") || !strings.Contains(bars.String(), "#") {
		t.Fatal("figure rendering incomplete")
	}
}

func TestTableIII(t *testing.T) {
	rows, tab, err := TableIII(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	var betterOrEqual, strictly int
	for _, r := range rows {
		// Per-run pairing + monotone replication phase guarantee this.
		if r.FRBest > r.FMBest {
			t.Errorf("%s: FR best %d worse than FM best %d", r.Name, r.FRBest, r.FMBest)
		}
		if r.FRAvg <= r.FMAvg+1e-9 {
			betterOrEqual++
		}
		if r.FRAvg < r.FMAvg-1e-9 {
			strictly++
		}
	}
	if betterOrEqual != len(rows) {
		t.Errorf("FR average worse than FM on %d circuits", len(rows)-betterOrEqual)
	}
	if strictly == 0 {
		t.Error("replication never improved any average cut")
	}
	if !strings.Contains(tab.String(), "Avg.") {
		t.Fatal("missing average row")
	}
}

func TestRunKwayAndTables(t *testing.T) {
	cfg := quickCfg()
	rows, err := RunKway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	okBase := 0
	for _, r := range rows {
		if r.Baseline.Err == nil {
			okBase++
			if r.Baseline.K < 1 || r.Baseline.Cost <= 0 {
				t.Fatalf("%s: degenerate baseline %+v", r.Name, r.Baseline)
			}
		}
		for T, c := range r.ByT {
			if c.Err == nil && c.ReplPct < 0 {
				t.Fatalf("%s T=%d: negative replication", r.Name, T)
			}
		}
	}
	if okBase < 7 {
		t.Fatalf("baseline failed on %d/9 circuits", 9-okBase)
	}
	for name, tab := range map[string]interface{ String() string }{
		"IV": TableIV(cfg, rows), "V": TableV(rows), "VI": TableVI(rows), "VII": TableVII(rows),
	} {
		out := tab.String()
		if !strings.Contains(out, "c3540") {
			t.Fatalf("table %s missing circuits:\n%s", name, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Runs != 20 || c.Solutions != 50 || len(c.Circuits) != 9 || len(c.Thresholds) != 4 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Workers < 1 || len(c.Library.Devices) != 5 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestConfigScale(t *testing.T) {
	c := Config{Scale: 10}.withDefaults()
	full, _ := bench.ByName("s38584")
	for _, ct := range c.Circuits {
		if ct.Name == "s38584/10" && ct.Params.Cells != full.Params.Cells/10 {
			t.Fatalf("scale wrong: %+v", ct)
		}
	}
}

func TestReduction(t *testing.T) {
	if got := reduction(100, 80); got != 20 {
		t.Fatalf("reduction = %g", got)
	}
	if got := reduction(0, 5); got != 0 {
		t.Fatalf("reduction(0,·) = %g", got)
	}
}

func TestCSVExports(t *testing.T) {
	cfg := quickCfg()
	charRows, _, err := TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	psiRows, _, _, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cutRows, _, err := TableIII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kwayRows, err := RunKway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, write func(w *strings.Builder) error, wantHeader string, wantRows int) {
		var sb strings.Builder
		if err := write(&sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		if !strings.HasPrefix(lines[0], wantHeader) {
			t.Fatalf("%s: header %q", name, lines[0])
		}
		if len(lines)-1 != wantRows {
			t.Fatalf("%s: %d rows, want %d", name, len(lines)-1, wantRows)
		}
	}
	check("tableII", func(w *strings.Builder) error { return TableIICSV(w, charRows) }, "circuit,clbs", 9)
	check("fig3", func(w *strings.Builder) error { return Figure3CSV(w, psiRows) }, "circuit,psi0_single", 9)
	check("tableIII", func(w *strings.Builder) error { return TableIIICSV(w, cutRows) }, "circuit,runs", 9)
	check("kway", func(w *strings.Builder) error { return KwayCSV(w, kwayRows) }, "circuit,setting", 9*5)
}

func TestTableHomogeneous(t *testing.T) {
	rows, tab, err := TableHomogeneous(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.K < r.LowerBound {
			t.Fatalf("%s: k=%d below area lower bound %d", r.Name, r.K, r.LowerBound)
		}
		if r.K > r.LowerBound+3 {
			t.Fatalf("%s: k=%d far above bound %d", r.Name, r.K, r.LowerBound)
		}
	}
	if !strings.Contains(tab.String(), "APPENDIX") {
		t.Fatal("missing title")
	}
}
