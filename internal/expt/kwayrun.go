package expt

import (
	"fmt"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/kway"
	"fpgapart/internal/report"
)

// KwayCell is the outcome of one k-way partitioning run.
type KwayCell struct {
	K       int
	Cost    float64
	CLBUtil float64 // Table V metric
	IOBUtil float64 // Table VII metric (Eq. 2)
	ReplPct float64 // Table IV metric
	CPU     time.Duration
	Devices map[string]int
	Err     error
}

// KwayRow holds, for one circuit, the no-replication baseline (the
// reimplementation of [3]) and the replication runs per threshold T.
type KwayRow struct {
	Name     string
	Cells    int
	Baseline KwayCell
	ByT      map[int]KwayCell
}

// RunKway executes the second experiment: cost-driven k-way
// partitioning with functional replication at thresholds T, against
// the DAC'93-style baseline. This single pass feeds Tables IV–VII.
func RunKway(cfg Config) ([]KwayRow, error) {
	cfg = cfg.withDefaults()
	return forEachCircuit(cfg, func(ct bench.Circuit) (KwayRow, error) {
		g, err := ct.Build()
		if err != nil {
			return KwayRow{}, err
		}
		row := KwayRow{Name: ct.Name, Cells: g.NumCells(), ByT: make(map[int]KwayCell)}
		run := func(threshold int) KwayCell {
			start := time.Now()
			res, err := kway.Partition(g, kway.Options{
				Library:   cfg.Library,
				Threshold: threshold,
				Solutions: cfg.Solutions,
				Seed:      cfg.Seed + int64(ct.Params.Seed),
			})
			cell := KwayCell{CPU: time.Since(start), Err: err}
			if err != nil {
				return cell
			}
			cell.K = res.Summary.K()
			cell.Cost = res.Summary.DeviceCost()
			cell.CLBUtil = 100 * res.Summary.AvgCLBUtil()
			cell.IOBUtil = 100 * res.Summary.AvgIOBUtil()
			cell.ReplPct = res.Summary.ReplicatedPct(res.SourceCells)
			cell.Devices = res.Summary.DeviceCounts()
			return cell
		}
		row.Baseline = run(fm.NoReplication)
		for _, T := range cfg.Thresholds {
			row.ByT[T] = run(T)
		}
		return row, nil
	})
}

func cellStr(c KwayCell, f func(KwayCell) string) string {
	if c.Err != nil {
		return "fail"
	}
	return f(c)
}

// TableIV renders the percentage of replicated cells per threshold and
// the CPU cost (paper Table IV).
func TableIV(cfg Config, rows []KwayRow) *report.Table {
	cfg = cfg.withDefaults()
	t := report.NewTable(
		fmt.Sprintf("TABLE IV — Replicated cells and CPU cost (%d feasible solutions/run)", cfg.Solutions),
		"Circuit", "T=0 (%)", "T=1 (%)", "T=2 (%)", "T=3 (%)", "CPU T=1 (s)", "CPU base (s)")
	avg := make(map[int]float64)
	for _, r := range rows {
		vals := make([]interface{}, 0, 7)
		vals = append(vals, r.Name)
		for _, T := range []int{0, 1, 2, 3} {
			c := r.ByT[T]
			vals = append(vals, cellStr(c, func(c KwayCell) string { return fmt.Sprintf("%.1f", c.ReplPct) }))
			if c.Err == nil {
				avg[T] += c.ReplPct / float64(len(rows))
			}
		}
		vals = append(vals,
			fmt.Sprintf("%.2f", r.ByT[1].CPU.Seconds()),
			fmt.Sprintf("%.2f", r.Baseline.CPU.Seconds()))
		t.Row(vals...)
	}
	t.Row("Avg.", fmt.Sprintf("%.1f", avg[0]), fmt.Sprintf("%.1f", avg[1]),
		fmt.Sprintf("%.1f", avg[2]), fmt.Sprintf("%.1f", avg[3]), "", "")
	t.Note("T=0 includes multi-output cells with ψ=0 (paper Table IV note)")
	return t
}

// TableV renders average CLB utilization per threshold against the
// baseline (paper Table V).
func TableV(rows []KwayRow) *report.Table {
	t := report.NewTable("TABLE V — Average CLB utilization after partitioning (%)",
		"Circuit", "In [3]", "T=1", "Incr.", "T=2", "Incr.", "T=3", "Incr.")
	var aBase, aT [4]float64
	n := 0.0
	for _, r := range rows {
		if r.Baseline.Err != nil {
			t.Row(r.Name, "fail")
			continue
		}
		base := r.Baseline.CLBUtil
		vals := []interface{}{r.Name, fmt.Sprintf("%.0f", base)}
		for _, T := range []int{1, 2, 3} {
			c := r.ByT[T]
			if c.Err != nil {
				vals = append(vals, "fail", "")
				continue
			}
			vals = append(vals, fmt.Sprintf("%.0f", c.CLBUtil), fmt.Sprintf("%+.0f", c.CLBUtil-base))
			aT[T] += c.CLBUtil
		}
		t.Row(vals...)
		aBase[0] += base
		n++
	}
	if n > 0 {
		t.Row("Avg.", fmt.Sprintf("%.0f", aBase[0]/n),
			fmt.Sprintf("%.0f", aT[1]/n), "", fmt.Sprintf("%.0f", aT[2]/n), "",
			fmt.Sprintf("%.0f", aT[3]/n), "")
	}
	return t
}

// TableVI renders the total device cost (Eq. 1) per threshold against
// the baseline (paper Table VI).
func TableVI(rows []KwayRow) *report.Table {
	t := report.NewTable("TABLE VI — Total design cost after partitioning (Eq. 1)",
		"Circuit", "In [3]", "T=1", "Red.", "T=2", "Red.", "T=3", "Red.")
	var redAvg [4]float64
	var redN [4]float64
	for _, r := range rows {
		if r.Baseline.Err != nil {
			t.Row(r.Name, "fail")
			continue
		}
		base := r.Baseline.Cost
		vals := []interface{}{r.Name, fmt.Sprintf("%.0f", base)}
		for _, T := range []int{1, 2, 3} {
			c := r.ByT[T]
			if c.Err != nil {
				vals = append(vals, "fail", "")
				continue
			}
			red := reduction(base, c.Cost)
			vals = append(vals, fmt.Sprintf("%.0f", c.Cost), fmt.Sprintf("%.1f%%", red))
			redAvg[T] += red
			redN[T]++
		}
		t.Row(vals...)
	}
	row := []interface{}{"Avg.", ""}
	for _, T := range []int{1, 2, 3} {
		if redN[T] > 0 {
			row = append(row, "", fmt.Sprintf("%.1f%%", redAvg[T]/redN[T]))
		} else {
			row = append(row, "", "")
		}
	}
	t.Row(row...)
	return t
}

// TableVII renders average IOB utilization (Eq. 2) per threshold
// against the baseline (paper Table VII).
func TableVII(rows []KwayRow) *report.Table {
	t := report.NewTable("TABLE VII — Average IOB utilization after partitioning (Eq. 2, %)",
		"Circuit", "In [3]", "T=1", "Red.", "T=2", "Red.", "T=3", "Red.")
	var base, tSum [4]float64
	n := 0.0
	for _, r := range rows {
		if r.Baseline.Err != nil {
			t.Row(r.Name, "fail")
			continue
		}
		b := r.Baseline.IOBUtil
		vals := []interface{}{r.Name, fmt.Sprintf("%.0f", b)}
		for _, T := range []int{1, 2, 3} {
			c := r.ByT[T]
			if c.Err != nil {
				vals = append(vals, "fail", "")
				continue
			}
			vals = append(vals, fmt.Sprintf("%.0f", c.IOBUtil), fmt.Sprintf("%.1f%%", reduction(b, c.IOBUtil)))
			tSum[T] += c.IOBUtil
		}
		t.Row(vals...)
		base[0] += b
		n++
	}
	if n > 0 {
		t.Row("Avg.", fmt.Sprintf("%.0f", base[0]/n),
			fmt.Sprintf("%.0f", tSum[1]/n), "", fmt.Sprintf("%.0f", tSum[2]/n), "",
			fmt.Sprintf("%.0f", tSum[3]/n), "")
	}
	return t
}
