// Package expt reproduces the paper's evaluation: Tables I–VII and
// Figure 3 of Kužnar et al. (DAC'94). Each driver returns structured
// results plus a rendered plain-text table so the cmd/benchtables
// binary and the repository benchmarks share one implementation.
package expt

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"fpgapart/internal/bench"
	"fpgapart/internal/library"
	"fpgapart/internal/report"
	"fpgapart/internal/search"
)

// Config controls experiment scale. The zero value reproduces the
// paper's full setup on the complete benchmark suite.
type Config struct {
	// Circuits defaults to bench.Suite().
	Circuits []bench.Circuit
	// Scale divides every circuit's size by this factor (0/1 = full
	// size); used by `go test -bench` for fast, shape-preserving runs.
	Scale int
	// Runs is the number of bipartitioning runs per circuit in the
	// min-cut experiment (paper: 20).
	Runs int
	// Solutions is the number of feasible k-way solutions generated per
	// run (paper: 50).
	Solutions int
	// Thresholds are the replication thresholds T examined by the
	// k-way experiment (paper: 0,1,2,3).
	Thresholds []int
	// Workers bounds experiment parallelism (default: GOMAXPROCS).
	Workers int
	Seed    int64
	Library library.Library
}

func (c Config) withDefaults() Config {
	if c.Circuits == nil {
		c.Circuits = bench.Suite()
	}
	if c.Scale > 1 {
		scaled := make([]bench.Circuit, len(c.Circuits))
		for i, ct := range c.Circuits {
			scaled[i] = ct.Small(c.Scale)
		}
		c.Circuits = scaled
	}
	if c.Runs == 0 {
		c.Runs = 20
	}
	if c.Solutions == 0 {
		c.Solutions = 50
	}
	if c.Thresholds == nil {
		c.Thresholds = []int{0, 1, 2, 3}
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Library.Devices) == 0 {
		c.Library = library.XC3000()
	}
	return c
}

// forEachCircuit runs fn over the circuits on the shared search
// orchestrator with bounded parallelism, collecting results in input
// order; the first failing circuit (by input order) aborts the run.
func forEachCircuit[T any](cfg Config, fn func(bench.Circuit) (T, error)) ([]T, error) {
	if len(cfg.Circuits) == 0 {
		return nil, nil
	}
	out := make([]T, len(cfg.Circuits))
	drv := search.Driver[T]{
		NewAttempt: func() search.AttemptFunc[T] {
			return func(_ context.Context, i int, _ int64) (T, error) {
				return fn(cfg.Circuits[i])
			}
		},
		// Any circuit failure aborts the whole experiment.
		Fatal:   func(error) bool { return true },
		Observe: func(i int, v T, _ error, _ bool) { out[i] = v },
	}
	_, err := search.Run(context.Background(), search.Options{
		Attempts: len(cfg.Circuits),
		Workers:  cfg.Workers,
	}, drv)
	if err != nil {
		var ae *search.AttemptError
		if errors.As(err, &ae) {
			return nil, fmt.Errorf("expt: circuit %s: %w", cfg.Circuits[ae.Attempt].Name, ae.Err)
		}
		return nil, err
	}
	return out, nil
}

// TableI renders the device library (paper Table I).
func TableI(lib library.Library) *report.Table {
	t := report.NewTable("TABLE I — FPGA device library (Xilinx XC3000 subset)",
		"Device", "c_i (CLB)", "t_i (IOB)", "d_i (N$)", "l_i", "u_i", "d_i/c_i")
	for _, d := range lib.Devices {
		t.Row(d.Name, d.CLBs, d.IOBs, fmt.Sprintf("%.0f", d.Price),
			d.LowUtil, d.HighUtil, d.CLBCost())
	}
	t.Note("prices are calibrated substitutes (source column illegible); see DESIGN.md §3")
	return t
}

// CircuitChar is one row of Table II.
type CircuitChar struct {
	Name                        string
	CLBs, IOBs, DFF, Nets, Pins int
}

// TableII builds the benchmark characteristics table from the
// generated circuits (paper Table II).
func TableII(cfg Config) ([]CircuitChar, *report.Table, error) {
	cfg = cfg.withDefaults()
	rows, err := forEachCircuit(cfg, func(ct bench.Circuit) (CircuitChar, error) {
		g, err := ct.Build()
		if err != nil {
			return CircuitChar{}, err
		}
		return CircuitChar{
			Name: ct.Name, CLBs: g.TotalArea(), IOBs: g.NumTerminals(),
			DFF: g.NumDFF(), Nets: g.NumNets(), Pins: g.NumPins(),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("TABLE II — Benchmark circuit characteristics (synthetic substitutes)",
		"Circuit", "#CLBs", "#IOBs", "#DFF", "#NETs", "#PINs")
	for _, r := range rows {
		t.Row(r.Name, r.CLBs, r.IOBs, r.DFF, r.Nets, r.Pins)
	}
	return rows, t, nil
}

// PsiBins is the Figure 3 distribution for one circuit, as percentages
// of all cells.
type PsiBins struct {
	Name    string
	Single  float64 // "0": single-output cells
	MultiZ  float64 // "0*": multi-output, ψ = 0
	Psi     [4]float64
	PsiMore float64 // ψ > 4
}

// Figure3 computes the cell distribution over replication potential
// (paper Fig. 3) for every circuit.
func Figure3(cfg Config) ([]PsiBins, *report.Table, *report.Bars, error) {
	cfg = cfg.withDefaults()
	rows, err := forEachCircuit(cfg, func(ct bench.Circuit) (PsiBins, error) {
		g, err := ct.Build()
		if err != nil {
			return PsiBins{}, err
		}
		d := g.Distribution()
		pct := func(n int) float64 { return 100 * float64(n) / float64(d.Total) }
		b := PsiBins{Name: ct.Name, Single: pct(d.SingleOutput), MultiZ: pct(d.MultiZero)}
		for psi, n := range d.ByPsi {
			switch {
			case psi >= 1 && psi <= 4:
				b.Psi[psi-1] += pct(n)
			case psi > 4:
				b.PsiMore += pct(n)
			}
		}
		return b, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	t := report.NewTable("FIGURE 3 — Cell distribution vs replication potential ψ (% of cells)",
		"Circuit", "ψ=0", "ψ=0*", "ψ=1", "ψ=2", "ψ=3", "ψ=4", "ψ>4")
	var avg PsiBins
	for _, r := range rows {
		t.Row(r.Name, r.Single, r.MultiZ, r.Psi[0], r.Psi[1], r.Psi[2], r.Psi[3], r.PsiMore)
		avg.Single += r.Single / float64(len(rows))
		avg.MultiZ += r.MultiZ / float64(len(rows))
		for i := range avg.Psi {
			avg.Psi[i] += r.Psi[i] / float64(len(rows))
		}
		avg.PsiMore += r.PsiMore / float64(len(rows))
	}
	t.Note("ψ=0 are single-output cells; ψ=0* are multi-output cells with ψ=0 (Fig. 3 legend)")
	bars := report.NewBars("Average distribution across circuits")
	bars.Bar("ψ=0 ", avg.Single, fmt.Sprintf("%.1f%%", avg.Single))
	bars.Bar("ψ=0*", avg.MultiZ, fmt.Sprintf("%.1f%%", avg.MultiZ))
	for i, v := range avg.Psi {
		bars.Bar(fmt.Sprintf("ψ=%d ", i+1), v, fmt.Sprintf("%.1f%%", v))
	}
	bars.Bar("ψ>4 ", avg.PsiMore, fmt.Sprintf("%.1f%%", avg.PsiMore))
	return rows, t, bars, nil
}
