package expt

import (
	"fmt"
	"os"
	"testing"
)

// TestFullTableIII runs the complete first experiment (20 runs per
// circuit on the full-size suite). Gated behind FPGAPART_FULL=1; the
// cmd/benchtables binary is the normal entry point.
func TestFullTableIII(t *testing.T) {
	if os.Getenv("FPGAPART_FULL") == "" {
		t.Skip("set FPGAPART_FULL=1 to run the full experiment")
	}
	_, tab, err := TableIII(Config{Runs: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(tab.String())
}

// TestFullKway runs the complete second experiment feeding Tables
// IV–VII. Gated behind FPGAPART_FULL=1.
func TestFullKway(t *testing.T) {
	if os.Getenv("FPGAPART_FULL") == "" {
		t.Skip("set FPGAPART_FULL=1 to run the full experiment")
	}
	cfg := Config{Solutions: 10, Seed: 42}
	rows, err := RunKway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(TableIV(cfg, rows).String())
	fmt.Println(TableV(rows).String())
	fmt.Println(TableVI(rows).String())
	fmt.Println(TableVII(rows).String())
}
