package expt

import (
	"fmt"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/report"
)

// HomogRow is one circuit's result for the homogeneous special case.
type HomogRow struct {
	Name       string
	CLBs       int
	K          int // devices used
	LowerBound int // ceil(CLBs / max usable CLBs per device)
	IOBUtil    float64
}

// TableHomogeneous runs the special case from the paper's
// introduction: with a single device type, minimizing Eq. (1) reduces
// to minimizing the number k of feasible subsets. Each circuit is
// partitioned onto copies of the largest XC3000 part and compared with
// the area lower bound.
func TableHomogeneous(cfg Config) ([]HomogRow, *report.Table, error) {
	cfg = cfg.withDefaults()
	dev := cfg.Library.Largest()
	dev.LowUtil = 0 // any remainder must fit somewhere
	lib, err := library.Homogeneous(dev)
	if err != nil {
		return nil, nil, err
	}
	rows, err := forEachCircuit(cfg, func(ct bench.Circuit) (HomogRow, error) {
		g, err := ct.Build()
		if err != nil {
			return HomogRow{}, err
		}
		res, err := kway.Partition(g, kway.Options{
			Library:   lib,
			Threshold: fm.NoReplication,
			Solutions: cfg.Solutions,
			Seed:      cfg.Seed + int64(ct.Params.Seed),
		})
		row := HomogRow{
			Name: ct.Name, CLBs: g.TotalArea(),
			LowerBound: (g.TotalArea() + dev.MaxCLBs() - 1) / dev.MaxCLBs(),
		}
		if err != nil {
			return row, err
		}
		row.K = res.Summary.K()
		row.IOBUtil = 100 * res.Summary.AvgIOBUtil()
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("APPENDIX — Homogeneous library (%s only): minimum device count", dev.Name),
		"Circuit", "#CLBs", "k", "Area bound", "Gap", "IOB util (%)")
	for _, r := range rows {
		t.Row(r.Name, r.CLBs, r.K, r.LowerBound, r.K-r.LowerBound, fmt.Sprintf("%.0f", r.IOBUtil))
	}
	t.Note("with one device type, Eq. (1) reduces to minimizing k (paper, introduction)")
	return rows, t, nil
}
