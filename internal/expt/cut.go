package expt

import (
	"fmt"
	"time"

	"fpgapart/internal/bench"
	"fpgapart/internal/fm"
	"fpgapart/internal/replication"
	"fpgapart/internal/report"
)

// CutRow is one circuit's row of Table III: best and average cut over
// the runs for plain F-M min-cut and F-M min-cut with functional
// replication, plus the CPU overhead of replication.
type CutRow struct {
	Name            string
	Runs            int
	FMBest, FRBest  int
	FMAvg, FRAvg    float64
	BestRed, AvgRed float64 // percent reductions
	FMCPU, FRCPU    time.Duration
	ReplicatedCells float64 // average per run
}

// TableIII reproduces the first experiment: Runs bipartitions per
// circuit into two equal-sized blocks with terminal constraints
// relaxed, threshold T = 0 (maximum replication), comparing plain F-M
// against F-M with functional replication. Both algorithms start from
// the same initial partition in each run.
func TableIII(cfg Config) ([]CutRow, *report.Table, error) {
	cfg = cfg.withDefaults()
	rows, err := forEachCircuit(cfg, func(ct bench.Circuit) (CutRow, error) {
		g, err := ct.Build()
		if err != nil {
			return CutRow{}, err
		}
		minA, maxA := fm.Balance(g.TotalArea(), 0.05)
		// Replication may grow a block past the plain bound; allow the
		// expansion the paper reports (CLB utilization up to ~90%).
		// Both algorithms get the same bounds so that each FR run is a
		// strict refinement of its paired FM run.
		maxA = [2]int{maxA[0] * 11 / 10, maxA[1] * 11 / 10}
		row := CutRow{Name: ct.Name, Runs: cfg.Runs}
		var frCells int
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)*7919 + int64(ct.Params.Seed)
			assign := fm.RandomAssign(g, seed)

			start := time.Now()
			stFM, err := replication.NewState(g, assign)
			if err != nil {
				return CutRow{}, err
			}
			resFM, err := fm.Run(stFM, fm.Config{
				MinArea: minA, MaxArea: maxA, Threshold: fm.NoReplication, Seed: seed,
			})
			if err != nil {
				return CutRow{}, err
			}
			row.FMCPU += time.Since(start)

			start = time.Now()
			stFR, err := replication.NewState(g, assign)
			if err != nil {
				return CutRow{}, err
			}
			resFR, err := fm.Run(stFR, fm.Config{
				MinArea: minA, MaxArea: maxA, Threshold: 0, Seed: seed,
			})
			if err != nil {
				return CutRow{}, err
			}
			row.FRCPU += time.Since(start)

			if run == 0 || resFM.Cut < row.FMBest {
				row.FMBest = resFM.Cut
			}
			if run == 0 || resFR.Cut < row.FRBest {
				row.FRBest = resFR.Cut
			}
			row.FMAvg += float64(resFM.Cut) / float64(cfg.Runs)
			row.FRAvg += float64(resFR.Cut) / float64(cfg.Runs)
			frCells += stFR.ReplicatedCount()
		}
		row.ReplicatedCells = float64(frCells) / float64(cfg.Runs)
		row.BestRed = reduction(float64(row.FMBest), float64(row.FRBest))
		row.AvgRed = reduction(row.FMAvg, row.FRAvg)
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}

	t := report.NewTable(
		fmt.Sprintf("TABLE III — Best and average cut over %d runs (T=0, terminals relaxed)", cfg.Runs),
		"Circuit", "FM best", "FM avg", "FM+FR best", "Best red.", "FM+FR avg", "Avg red.")
	var bestRedAvg, avgRedAvg, cpuOverhead float64
	for _, r := range rows {
		t.Row(r.Name, r.FMBest, r.FMAvg, r.FRBest,
			fmt.Sprintf("%.1f%%", r.BestRed), r.FRAvg, fmt.Sprintf("%.1f%%", r.AvgRed))
		bestRedAvg += r.BestRed / float64(len(rows))
		avgRedAvg += r.AvgRed / float64(len(rows))
		if r.FMCPU > 0 {
			cpuOverhead += (float64(r.FRCPU)/float64(r.FMCPU) - 1) * 100 / float64(len(rows))
		}
	}
	t.Row("Avg.", "", "", "", fmt.Sprintf("%.1f%%", bestRedAvg), "", fmt.Sprintf("%.1f%%", avgRedAvg))
	t.Note("average CPU overhead of functional replication: %.0f%% (paper: 34%%)", cpuOverhead)
	return rows, t, nil
}

// reduction returns the percent reduction from base to improved.
func reduction(base, improved float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - improved) / base
}
