package expt

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV exporters for downstream analysis of the experiment data. Each
// writes one flat table; cmd/benchtables -csv wires them to files.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
func i(v int) string     { return fmt.Sprintf("%d", v) }

// TableIICSV writes the benchmark characteristics.
func TableIICSV(w io.Writer, rows []CircuitChar) error {
	out := [][]string{{"circuit", "clbs", "iobs", "dff", "nets", "pins"}}
	for _, r := range rows {
		out = append(out, []string{r.Name, i(r.CLBs), i(r.IOBs), i(r.DFF), i(r.Nets), i(r.Pins)})
	}
	return writeAll(csv.NewWriter(w), out)
}

// Figure3CSV writes the ψ distribution (percent of cells per bin).
func Figure3CSV(w io.Writer, rows []PsiBins) error {
	out := [][]string{{"circuit", "psi0_single", "psi0_multi", "psi1", "psi2", "psi3", "psi4", "psi_gt4"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Name, f(r.Single), f(r.MultiZ),
			f(r.Psi[0]), f(r.Psi[1]), f(r.Psi[2]), f(r.Psi[3]), f(r.PsiMore),
		})
	}
	return writeAll(csv.NewWriter(w), out)
}

// TableIIICSV writes the min-cut experiment rows.
func TableIIICSV(w io.Writer, rows []CutRow) error {
	out := [][]string{{
		"circuit", "runs", "fm_best", "fm_avg", "fr_best", "fr_avg",
		"best_red_pct", "avg_red_pct", "fm_cpu_s", "fr_cpu_s", "avg_replicated_cells",
	}}
	for _, r := range rows {
		out = append(out, []string{
			r.Name, i(r.Runs), i(r.FMBest), f(r.FMAvg), i(r.FRBest), f(r.FRAvg),
			f(r.BestRed), f(r.AvgRed),
			f(r.FMCPU.Seconds()), f(r.FRCPU.Seconds()), f(r.ReplicatedCells),
		})
	}
	return writeAll(csv.NewWriter(w), out)
}

// KwayCSV writes the k-way experiment in long format: one row per
// (circuit, setting), where setting is "base" or "T<k>".
func KwayCSV(w io.Writer, rows []KwayRow) error {
	out := [][]string{{
		"circuit", "setting", "ok", "k", "cost", "clb_util_pct", "iob_util_pct",
		"replicated_pct", "cpu_s",
	}}
	emit := func(name, setting string, c KwayCell) {
		ok := "1"
		if c.Err != nil {
			ok = "0"
		}
		out = append(out, []string{
			name, setting, ok, i(c.K), f(c.Cost), f(c.CLBUtil), f(c.IOBUtil),
			f(c.ReplPct), f(c.CPU.Seconds()),
		})
	}
	for _, r := range rows {
		emit(r.Name, "base", r.Baseline)
		for _, t := range []int{0, 1, 2, 3} {
			if c, ok := r.ByT[t]; ok {
				emit(r.Name, fmt.Sprintf("T%d", t), c)
			}
		}
	}
	return writeAll(csv.NewWriter(w), out)
}
