// Package prof wires the standard Go profilers into a command's flag
// set: -cpuprofile and -trace capture the run, -memprofile snapshots
// the heap at exit. Commands register the flags before flag.Parse and
// bracket their work with Start/stop.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the profiling output paths parsed from the command line.
type Flags struct {
	cpu string
	mem string
	trc string
}

// Register installs -cpuprofile, -memprofile and -trace on fs
// (typically flag.CommandLine) and returns the value holder.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.mem, "memprofile", "", "write a heap allocation profile to this file at exit")
	fs.StringVar(&f.trc, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Start begins the requested captures. The returned stop function must
// run before the process exits (not via defer past os.Exit); it ends
// the captures and writes the heap profile.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile, trcFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if trcFile != nil {
			trace.Stop()
			trcFile.Close()
		}
	}
	if f.cpu != "" {
		cpuFile, err = os.Create(f.cpu)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	if f.trc != "" {
		trcFile, err = os.Create(f.trc)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(trcFile); err != nil {
			trcFile.Close()
			trcFile = nil
			cleanup()
			return nil, fmt.Errorf("prof: start trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if f.mem == "" {
			return nil
		}
		mf, err := os.Create(f.mem)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		runtime.GC() // settle the heap so the profile shows live data
		err = pprof.WriteHeapProfile(mf)
		if cerr := mf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("prof: write heap profile: %w", err)
		}
		return nil
	}, nil
}
