package netlist

import (
	"errors"
	"strings"
	"testing"
)

// Each case feeds input that trips exactly one cap and checks the
// failure is a *ParseError wrapping a *LimitError naming the capped
// quantity — the contract callers (the CLI exit-code mapping, the
// daemon's 400 handler) rely on.
func TestReadLimits(t *testing.T) {
	cases := []struct {
		name     string
		lim      Limits
		src      string
		quantity string
	}{
		{"gates", Limits{MaxGates: 2},
			"circuit c\ninput a\noutput y3\nnot y1 a\nnot y2 y1\nnot y3 y2\n", "gates"},
		{"pins", Limits{MaxPins: 4},
			"circuit c\ninput a b c d\noutput y\nand y a b c d\n", "pins"},
		{"fanout", Limits{MaxFanout: 3},
			"circuit c\ninput a\noutput y1 y2 y3 y4\nnot y1 a\nnot y2 a\nnot y3 a\nnot y4 a\n", "fanout"},
		{"line-bytes", Limits{MaxLineBytes: 128},
			"circuit c\ninput a\noutput y\nand y a " + strings.Repeat("x ", 100) + "\n", "line-bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadLimits(strings.NewReader(tc.src), tc.lim)
			if err == nil {
				t.Fatal("want limit error, got nil")
			}
			var le *LimitError
			if !errors.As(err, &le) {
				t.Fatalf("want *LimitError, got %T: %v", err, err)
			}
			if le.Quantity != tc.quantity {
				t.Fatalf("quantity = %q, want %q (err: %v)", le.Quantity, tc.quantity, err)
			}
			var pe *ParseError
			if !errors.As(err, &pe) || pe.Line == 0 {
				t.Fatalf("limit error lacks line position: %v", err)
			}
		})
	}
}

func TestReadLimitsLutInputs(t *testing.T) {
	// With a roomy pin cap the LUT fan-in cap is what trips: the
	// truth table would otherwise cost 2^k entries.
	lim := Limits{MaxLutInputs: 3}
	src := "circuit c\ninput a b c d\noutput y\nlut y a b c d @1010101010101010\n"
	_, err := ReadLimits(strings.NewReader(src), lim)
	var le *LimitError
	if !errors.As(err, &le) || le.Quantity != "lut-inputs" {
		t.Fatalf("want lut-inputs limit error, got %v", err)
	}
}

func TestReadBLIFLimits(t *testing.T) {
	cases := []struct {
		name     string
		lim      Limits
		src      string
		quantity string
	}{
		{"gates", Limits{MaxGates: 2},
			".model m\n.inputs a\n.outputs y\n.names a w1\n1 1\n.names w1 w2\n1 1\n.names w2 y\n1 1\n.end\n", "gates"},
		{"lut-inputs", Limits{MaxLutInputs: 3},
			".model m\n.inputs a b c d\n.outputs y\n.names a b c d y\n1111 1\n.end\n", "lut-inputs"},
		{"pins", Limits{MaxPins: 4},
			".model m\n.inputs a b c d\n.outputs y\n.names a b c d y\n1111 1\n.end\n", "pins"},
		{"fanout", Limits{MaxFanout: 3},
			".model m\n.inputs a\n.outputs y\n.names a w1\n1 1\n.names a w2\n1 1\n.names a w3\n1 1\n.names a y\n1 1\n.end\n", "fanout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBLIFLimits(strings.NewReader(tc.src), tc.lim)
			var le *LimitError
			if !errors.As(err, &le) {
				t.Fatalf("want *LimitError, got %T: %v", err, err)
			}
			if le.Quantity != tc.quantity {
				t.Fatalf("quantity = %q, want %q (err: %v)", le.Quantity, tc.quantity, err)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	// Truncated gate record: line context plus a hint.
	_, err := Read(strings.NewReader("circuit c\ninput a\noutput y\nand y\n"))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 4 {
		t.Fatalf("line = %d, want 4", pe.Line)
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("message should hint at truncation: %v", err)
	}

	// A bad truth-table digit points at the @-token's column.
	_, err = Read(strings.NewReader("circuit c\ninput a\noutput y\nlut y a @1x\n"))
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 4 || pe.Col != 9 {
		t.Fatalf("pos = line %d col %d, want line 4 col 9", pe.Line, pe.Col)
	}

	// Empty input names the likely cause.
	_, err = Read(strings.NewReader(""))
	if !errors.As(err, &pe) || !strings.Contains(pe.Msg, "missing 'circuit'") {
		t.Fatalf("empty input: %v", err)
	}
}
