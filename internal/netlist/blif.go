package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// BLIF support: the Berkeley Logic Interchange Format subset the MCNC
// benchmark distributions use — .model/.inputs/.outputs/.names/.latch/
// .end, with single-output cover tables. Imported .names become Lut
// gates; exported gates are written as on-set covers.

// WriteBLIF serializes the netlist as BLIF.
func WriteBLIF(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", n.Name)
	fmt.Fprintf(bw, ".inputs %s\n", strings.Join(n.Inputs, " "))
	fmt.Fprintf(bw, ".outputs %s\n", strings.Join(n.Outputs, " "))
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == Dff {
			fmt.Fprintf(bw, ".latch %s %s re clk 0\n", g.Ins[0], g.Out)
			continue
		}
		fmt.Fprintf(bw, ".names %s %s\n", strings.Join(g.Ins, " "), g.Out)
		rows := 1 << uint(len(g.Ins))
		ins := make([]bool, len(g.Ins))
		for p := 0; p < rows; p++ {
			for b := range ins {
				ins[b] = p&(1<<uint(b)) != 0
			}
			if !g.Eval(ins) {
				continue
			}
			var sb strings.Builder
			for b := range ins {
				if ins[b] {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			if len(g.Ins) > 0 {
				fmt.Fprintf(bw, "%s 1\n", sb.String())
			} else {
				fmt.Fprintln(bw, "1")
			}
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// ReadBLIF parses a BLIF model into a netlist with the default
// Limits; .names become Lut gates, .latch becomes Dff (clocking
// details are ignored).
func ReadBLIF(r io.Reader) (*Netlist, error) {
	return ReadBLIFLimits(r, Limits{})
}

// ReadBLIFLimits is ReadBLIF under explicit resource caps (see
// Limits); violations fail fast with a *ParseError wrapping a
// *LimitError. The LUT fan-in cap matters most here: a .names block
// with k inputs materializes a 2^k-entry truth table.
func ReadBLIFLimits(r io.Reader, lim Limits) (*Netlist, error) {
	lim = lim.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(lim.scanBuf(), lim.MaxLineBytes)
	n := &Netlist{}
	var pendingLut *Gate
	var cover []string
	lineNo := 0
	fanout := make(map[string]int)
	limErr := func(quantity string, value, limit int) error {
		return &ParseError{Format: "blif", Line: lineNo, Err: &LimitError{Quantity: quantity, Value: value, Limit: limit}}
	}

	flush := func() error {
		if pendingLut == nil {
			return nil
		}
		tt, err := coverToTT(len(pendingLut.Ins), cover)
		if err != nil {
			return fmt.Errorf("blif: .names %s: %w", pendingLut.Out, err)
		}
		pendingLut.TT = tt
		n.Gates = append(n.Gates, *pendingLut)
		pendingLut, cover = nil, nil
		return nil
	}
	admitGate := func(ins []string) error {
		if len(n.Gates) >= lim.MaxGates {
			return limErr("gates", len(n.Gates)+1, lim.MaxGates)
		}
		for _, in := range ins {
			fanout[in]++
			if fanout[in] > lim.MaxFanout {
				return limErr("fanout", fanout[in], lim.MaxFanout)
			}
		}
		return nil
	}

	// Logical lines may continue with trailing backslash.
	var cont string
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		if i := strings.Index(raw, "#"); i >= 0 {
			raw = raw[:i]
		}
		raw = strings.TrimSpace(raw)
		if strings.HasSuffix(raw, "\\") {
			cont += strings.TrimSuffix(raw, "\\") + " "
			// A chain of continuation lines forms one logical line; cap
			// its total size like any other line.
			if len(cont) > lim.MaxLineBytes {
				return nil, limErr("line-bytes", len(cont), lim.MaxLineBytes)
			}
			continue
		}
		line := cont + raw
		cont = ""
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".model":
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) >= 2 {
				n.Name = fields[1]
			}
		case ".inputs":
			if err := flush(); err != nil {
				return nil, err
			}
			n.Inputs = append(n.Inputs, fields[1:]...)
		case ".outputs":
			if err := flush(); err != nil {
				return nil, err
			}
			n.Outputs = append(n.Outputs, fields[1:]...)
		case ".names":
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) < 2 {
				return nil, &ParseError{Format: "blif", Line: lineNo, Msg: ".names needs at least an output"}
			}
			if len(fields)-1 > lim.MaxPins {
				return nil, limErr("pins", len(fields)-1, lim.MaxPins)
			}
			if len(fields)-2 > lim.MaxLutInputs {
				return nil, limErr("lut-inputs", len(fields)-2, lim.MaxLutInputs)
			}
			out := fields[len(fields)-1]
			ins := append([]string(nil), fields[1:len(fields)-1]...)
			if err := admitGate(ins); err != nil {
				return nil, err
			}
			pendingLut = &Gate{Name: "n_" + out, Type: Lut, Out: out, Ins: ins}
		case ".latch":
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) < 3 {
				return nil, &ParseError{Format: "blif", Line: lineNo, Msg: ".latch needs input and output (truncated record?)"}
			}
			if err := admitGate(fields[1:2]); err != nil {
				return nil, err
			}
			n.Gates = append(n.Gates, Gate{Name: "l_" + fields[2], Type: Dff, Out: fields[2], Ins: []string{fields[1]}})
		case ".end":
			if err := flush(); err != nil {
				return nil, err
			}
		case ".clock", ".wire_load_slope", ".default_input_arrival":
			// Ignored directives.
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, &ParseError{Format: "blif", Line: lineNo, Msg: fmt.Sprintf("unsupported directive %q", fields[0])}
			}
			if pendingLut == nil {
				return nil, &ParseError{Format: "blif", Line: lineNo, Msg: "cover row outside .names"}
			}
			cover = append(cover, line)
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, &ParseError{Format: "blif", Line: lineNo + 1, Err: &LimitError{Quantity: "line-bytes", Value: lim.MaxLineBytes + 1, Limit: lim.MaxLineBytes}}
		}
		return nil, fmt.Errorf("blif: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if n.Name == "" {
		return nil, &ParseError{Format: "blif", Msg: "missing .model (empty or truncated file?)"}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// coverToTT expands an on-set cover (rows of 0/1/- plus an output
// column) into a truth table. An empty cover is constant 0; the
// standard constant-1 form is a single "1" row with no inputs. Rows
// with output 0 define the off-set instead (both styles appear in the
// wild; mixing them is rejected).
func coverToTT(nIn int, rows []string) ([]bool, error) {
	tt := make([]bool, 1<<uint(nIn))
	onSet := true
	for ri, row := range rows {
		fields := strings.Fields(row)
		var pattern, outBit string
		switch {
		case nIn == 0 && len(fields) == 1:
			pattern, outBit = "", fields[0]
		case len(fields) == 2:
			pattern, outBit = fields[0], fields[1]
		default:
			return nil, fmt.Errorf("bad cover row %q", row)
		}
		if len(pattern) != nIn {
			return nil, fmt.Errorf("cover row %q has %d columns, want %d", row, len(pattern), nIn)
		}
		isOn := outBit == "1"
		if !isOn && outBit != "0" {
			return nil, fmt.Errorf("bad output bit %q", outBit)
		}
		if ri == 0 {
			onSet = isOn
		} else if isOn != onSet {
			return nil, fmt.Errorf("mixed on-set and off-set rows")
		}
		// Expand don't-cares.
		expand(tt, pattern, 0, 0)
	}
	if !onSet {
		for i := range tt {
			tt[i] = !tt[i]
		}
	}
	return tt, nil
}

// expand marks every minterm matching the 0/1/- pattern.
func expand(tt []bool, pattern string, pos int, idx int) {
	if pos == len(pattern) {
		tt[idx] = true
		return
	}
	switch pattern[pos] {
	case '0':
		expand(tt, pattern, pos+1, idx)
	case '1':
		expand(tt, pattern, pos+1, idx|1<<uint(pos))
	default: // '-'
		expand(tt, pattern, pos+1, idx)
		expand(tt, pattern, pos+1, idx|1<<uint(pos))
	}
}
