package netlist

import "fmt"

// Simulator evaluates a netlist cycle by cycle. Flip-flop state is
// kept per Dff gate and advances on Step.
type Simulator struct {
	n       *Netlist
	drivers map[string]int
	order   []int
	state   map[string]bool // Dff output net -> current value
}

// NewSimulator validates the netlist and prepares evaluation order.
func NewSimulator(n *Netlist) (*Simulator, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	drivers, err := n.DriverIndex()
	if err != nil {
		return nil, err
	}
	order, err := n.topoOrder(drivers)
	if err != nil {
		return nil, err
	}
	s := &Simulator{n: n, drivers: drivers, order: order, state: make(map[string]bool)}
	return s, nil
}

// Reset clears all flip-flops to false.
func (s *Simulator) Reset() {
	for k := range s.state {
		delete(s.state, k)
	}
}

// SetState forces the value of a flip-flop output net.
func (s *Simulator) SetState(net string, v bool) { s.state[net] = v }

// Step evaluates one clock cycle: combinational logic settles from the
// inputs and current state, primary outputs are sampled, then every
// flip-flop captures its D input. Missing inputs default to false.
func (s *Simulator) Step(inputs map[string]bool) (map[string]bool, error) {
	values := make(map[string]bool, len(s.n.Gates)+len(s.n.Inputs))
	for _, pi := range s.n.Inputs {
		values[pi] = inputs[pi]
	}
	for i := range s.n.Gates {
		g := &s.n.Gates[i]
		if g.Type == Dff {
			values[g.Out] = s.state[g.Out]
		}
	}
	ins := make([]bool, 0, 8)
	for _, gi := range s.order {
		g := &s.n.Gates[gi]
		if g.Type == Dff {
			continue
		}
		ins = ins[:0]
		for _, in := range g.Ins {
			v, ok := values[in]
			if !ok {
				return nil, fmt.Errorf("netlist %q: net %q evaluated before its driver (gate %q)", s.n.Name, in, g.Name)
			}
			ins = append(ins, v)
		}
		values[g.Out] = g.Eval(ins)
	}
	outs := make(map[string]bool, len(s.n.Outputs))
	for _, po := range s.n.Outputs {
		outs[po] = values[po]
	}
	for i := range s.n.Gates {
		g := &s.n.Gates[i]
		if g.Type == Dff {
			v, ok := values[g.Ins[0]]
			if !ok {
				return nil, fmt.Errorf("netlist %q: flip-flop %q input %q unresolved", s.n.Name, g.Name, g.Ins[0])
			}
			s.state[g.Out] = v
		}
	}
	return outs, nil
}

// Evaluate is a convenience for purely combinational circuits: one
// Step from reset state.
func Evaluate(n *Netlist, inputs map[string]bool) (map[string]bool, error) {
	s, err := NewSimulator(n)
	if err != nil {
		return nil, err
	}
	return s.Step(inputs)
}
