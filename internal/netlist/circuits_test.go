package netlist

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func setBits(prefix string, w int, v uint64, in map[string]bool) {
	for i := 0; i < w; i++ {
		in[fmt.Sprintf("%s%d", prefix, i)] = v&(1<<uint(i)) != 0
	}
}

func getBits(prefix string, w int, out map[string]bool) uint64 {
	var v uint64
	for i := 0; i < w; i++ {
		if out[fmt.Sprintf("%s%d", prefix, i)] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Property: the ripple adder computes a+b+cin for all widths 1..8.
func TestRippleAdderMatchesArithmetic(t *testing.T) {
	for w := 1; w <= 8; w++ {
		add, err := RippleAdder(w)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(add)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(w)))
		for trial := 0; trial < 40; trial++ {
			a := r.Uint64() & (1<<uint(w) - 1)
			b := r.Uint64() & (1<<uint(w) - 1)
			cin := r.Intn(2)
			in := map[string]bool{"cin": cin == 1}
			setBits("a", w, a, in)
			setBits("b", w, b, in)
			out, err := sim.Step(in)
			if err != nil {
				t.Fatal(err)
			}
			got := getBits("s", w, out)
			if out["cout"] {
				got |= 1 << uint(w)
			}
			if want := a + b + uint64(cin); got != want {
				t.Fatalf("w=%d: %d+%d+%d = %d, want %d", w, a, b, cin, got, want)
			}
		}
	}
}

// Property: the array multiplier computes a*b.
func TestArrayMultiplierMatchesArithmetic(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 6} {
		mul, err := ArrayMultiplier(w)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(mul)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(w) * 31))
		for trial := 0; trial < 40; trial++ {
			a := r.Uint64() & (1<<uint(w) - 1)
			b := r.Uint64() & (1<<uint(w) - 1)
			in := map[string]bool{}
			setBits("a", w, a, in)
			setBits("b", w, b, in)
			out, err := sim.Step(in)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := getBits("p", 2*w, out), a*b; got != want {
				t.Fatalf("w=%d: %d*%d = %d, want %d", w, a, b, got, want)
			}
		}
	}
}

// Property (quick): 8-bit multiplication is correct on random inputs.
func TestPropertyMultiplier8(t *testing.T) {
	mul, err := ArrayMultiplier(8)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(mul)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		in := map[string]bool{}
		setBits("a", 8, uint64(a), in)
		setBits("b", 8, uint64(b), in)
		out, err := sim.Step(in)
		if err != nil {
			return false
		}
		return getBits("p", 16, out) == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The counter counts: after k enabled cycles the outputs read k mod 2^n.
func TestCounterCounts(t *testing.T) {
	const w = 5
	cnt, err := Counter(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(cnt)
	if err != nil {
		t.Fatal(err)
	}
	val := uint64(0)
	for cyc := 0; cyc < 70; cyc++ {
		en := cyc%3 != 0 // hold every third cycle
		out, err := sim.Step(map[string]bool{"en": en})
		if err != nil {
			t.Fatal(err)
		}
		if got := getBits("q", w, out); got != val {
			t.Fatalf("cycle %d: count = %d, want %d", cyc, got, val)
		}
		if en {
			val = (val + 1) & (1<<w - 1)
		}
	}
}

// The LFSR leaves the zero state under seedIn and then cycles without
// repeating immediately.
func TestLFSRProgresses(t *testing.T) {
	l, err := LFSR(6)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(l)
	if err != nil {
		t.Fatal(err)
	}
	// One seed pulse, then free-run.
	if _, err := sim.Step(map[string]bool{"seedIn": true}); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	prev := uint64(0)
	for cyc := 0; cyc < 30; cyc++ {
		out, err := sim.Step(nil)
		if err != nil {
			t.Fatal(err)
		}
		v := getBits("q", 6, out)
		if cyc > 2 && v == prev {
			t.Fatalf("cycle %d: LFSR stuck at %d", cyc, v)
		}
		prev = v
		seen[v] = true
	}
	if len(seen) < 8 {
		t.Fatalf("LFSR visited only %d states", len(seen))
	}
}

// ALU: op0=0 -> a+b+op1; op0=1,op1=1 -> AND; op0=1,op1=0 -> XOR.
func TestALUSliceOps(t *testing.T) {
	const w = 4
	alu, err := ALUSlice(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(alu)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		a := r.Uint64() & 0xF
		b := r.Uint64() & 0xF
		op0 := r.Intn(2) == 1
		op1 := r.Intn(2) == 1
		in := map[string]bool{"op0": op0, "op1": op1}
		setBits("a", w, a, in)
		setBits("b", w, b, in)
		out, err := sim.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		var want uint64
		switch {
		case !op0 && !op1:
			want = (a + b) & 0xF
		case !op0 && op1:
			want = (a + b + 1) & 0xF
		case op0 && op1:
			want = a & b
		default:
			want = a ^ b
		}
		if got := getBits("y", w, out); got != want {
			t.Fatalf("a=%d b=%d op0=%v op1=%v: y=%d, want %d", a, b, op0, op1, got, want)
		}
	}
}

func TestGeneratorsRejectBadWidths(t *testing.T) {
	if _, err := RippleAdder(0); err == nil {
		t.Error("adder width 0")
	}
	if _, err := ArrayMultiplier(0); err == nil {
		t.Error("multiplier width 0")
	}
	if _, err := Counter(0); err == nil {
		t.Error("counter width 0")
	}
	if _, err := LFSR(1); err == nil {
		t.Error("LFSR width 1")
	}
	if _, err := ALUSlice(0); err == nil {
		t.Error("ALU width 0")
	}
}

func TestMultiplierSizeGrowsQuadratically(t *testing.T) {
	m4, _ := ArrayMultiplier(4)
	m8, _ := ArrayMultiplier(8)
	if len(m8.Gates) < 3*len(m4.Gates) {
		t.Fatalf("8-bit multiplier (%d gates) should be much larger than 4-bit (%d)",
			len(m8.Gates), len(m4.Gates))
	}
}
