package netlist

import (
	"fmt"
	"strings"
)

// Limits bounds the parsers' resource consumption against hostile or
// corrupt input: instead of letting a malformed file drive unbounded
// allocation (a .names block with 60 inputs expands to a 2^60-entry
// truth table; a single line can be gigabytes), each quantity is
// capped and the parser fails fast with a typed *LimitError carrying
// the offending line. The zero value selects generous defaults that
// admit every legitimate circuit in the benchmark suites.
type Limits struct {
	// MaxLineBytes caps one physical input line (default 4 MiB).
	MaxLineBytes int
	// MaxGates caps the gate count (default 1<<20).
	MaxGates int
	// MaxPins caps the pin count of one gate: inputs plus the output
	// (default 1<<12).
	MaxPins int
	// MaxFanout caps how many gate inputs one net may feed
	// (default 1<<20).
	MaxFanout int
	// MaxLutInputs caps the fan-in of a LUT/.names cover, whose truth
	// table costs 2^inputs to materialize (default 24).
	MaxLutInputs int
}

// scanBuf sizes a bufio.Scanner's initial buffer so the line cap
// actually binds: Scanner.Buffer takes max(cap(buf), max) as the
// token limit, so the initial capacity must not exceed MaxLineBytes.
func (l Limits) scanBuf() []byte {
	n := 1 << 16
	if l.MaxLineBytes < n {
		n = l.MaxLineBytes
	}
	return make([]byte, 0, n)
}

func (l Limits) withDefaults() Limits {
	if l.MaxLineBytes == 0 {
		l.MaxLineBytes = 1 << 22
	}
	if l.MaxGates == 0 {
		l.MaxGates = 1 << 20
	}
	if l.MaxPins == 0 {
		l.MaxPins = 1 << 12
	}
	if l.MaxFanout == 0 {
		l.MaxFanout = 1 << 20
	}
	if l.MaxLutInputs == 0 {
		l.MaxLutInputs = 24
	}
	return l
}

// LimitError reports input that exceeds a parser cap. It is always
// wrapped in a *ParseError carrying the line the cap tripped on.
type LimitError struct {
	// Quantity names the capped resource: "line-bytes", "gates",
	// "pins", "fanout" or "lut-inputs".
	Quantity string
	// Value is the observed amount; Limit the configured cap.
	Value, Limit int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s %d exceeds limit %d", e.Quantity, e.Value, e.Limit)
}

// ParseError is a netlist syntax or limit violation with its source
// position. Line is 1-based; Col is the 1-based byte column of the
// offending token, 0 when only the line is known. Format is the
// input dialect ("netlist" for .gnl, "blif").
type ParseError struct {
	Format string
	Line   int
	Col    int
	Msg    string
	Err    error
}

func (e *ParseError) Error() string {
	var sb strings.Builder
	sb.WriteString(e.Format)
	if e.Line > 0 {
		fmt.Fprintf(&sb, ": line %d", e.Line)
		if e.Col > 0 {
			fmt.Fprintf(&sb, ", col %d", e.Col)
		}
	}
	sb.WriteString(": ")
	if e.Msg != "" {
		sb.WriteString(e.Msg)
		if e.Err != nil {
			fmt.Fprintf(&sb, ": %v", e.Err)
		}
	} else if e.Err != nil {
		fmt.Fprintf(&sb, "%v", e.Err)
	}
	return sb.String()
}

func (e *ParseError) Unwrap() error { return e.Err }

// fieldCol returns the 1-based byte column where the idx-th
// whitespace-separated field of line starts (0 when out of range), so
// parse errors can point at the offending token.
func fieldCol(line string, idx int) int {
	i, field := 0, 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if field == idx {
			return i + 1
		}
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		field++
	}
	return 0
}
