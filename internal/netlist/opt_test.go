package netlist

import (
	"math/rand"
	"testing"
)

func TestOptimizeSweepsBuffers(t *testing.T) {
	n := &Netlist{
		Name: "bufs", Inputs: []string{"a"}, Outputs: []string{"y"},
		Gates: []Gate{
			{Name: "b1", Type: Buf, Out: "w1", Ins: []string{"a"}},
			{Name: "b2", Type: Buf, Out: "w2", Ins: []string{"w1"}},
			{Name: "inv", Type: Not, Out: "y", Ins: []string{"w2"}},
		},
	}
	o, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Gates) != 1 || o.Gates[0].Type != Not || o.Gates[0].Ins[0] != "a" {
		t.Fatalf("buffer chain not swept: %+v", o.Gates)
	}
}

func TestOptimizeFoldsConstants(t *testing.T) {
	n := &Netlist{
		Name: "konst", Inputs: []string{"a"}, Outputs: []string{"y", "z"},
		Gates: []Gate{
			{Name: "one", Type: Lut, Out: "one", Ins: nil, TT: []bool{true}},
			{Name: "g1", Type: And, Out: "w", Ins: []string{"a", "one"}}, // = a
			{Name: "g2", Type: Or, Out: "y", Ins: []string{"w", "one"}},  // = 1
			{Name: "g3", Type: Xor, Out: "z", Ins: []string{"a", "one"}}, // = !a
		},
	}
	o, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 2; v++ {
		in := map[string]bool{"a": v == 1}
		want, err := Evaluate(n, in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Evaluate(o, in)
		if err != nil {
			t.Fatal(err)
		}
		if got["y"] != want["y"] || got["z"] != want["z"] {
			t.Fatalf("a=%v: got %v want %v", v == 1, got, want)
		}
	}
	// z must now be a single Not of a.
	var nots, others int
	for _, g := range o.Gates {
		if g.Type == Not {
			nots++
		} else {
			others++
		}
	}
	if nots != 1 {
		t.Fatalf("expected one inverter, gates: %+v", o.Gates)
	}
}

func TestOptimizeLutCofactor(t *testing.T) {
	// y = LUT(a, one, b) where the middle input is constant true.
	tt := make([]bool, 8)
	for i := range tt {
		a := i&1 != 0
		m := i&2 != 0
		b := i&4 != 0
		tt[i] = (a && m) != b
	}
	n := &Netlist{
		Name: "cof", Inputs: []string{"a", "b"}, Outputs: []string{"y"},
		Gates: []Gate{
			{Name: "one", Type: Lut, Out: "one", Ins: nil, TT: []bool{true}},
			{Name: "g", Type: Lut, Out: "y", Ins: []string{"a", "one", "b"}, TT: tt},
		},
	}
	o, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		in := map[string]bool{"a": v&1 != 0, "b": v&2 != 0}
		want, _ := Evaluate(n, in)
		got, err := Evaluate(o, in)
		if err != nil {
			t.Fatal(err)
		}
		if got["y"] != want["y"] {
			t.Fatalf("v=%d mismatch", v)
		}
	}
	// The LUT must have shrunk to two inputs.
	for _, g := range o.Gates {
		if g.Type == Lut && g.Out == "y" && len(g.Ins) != 2 {
			t.Fatalf("cofactor did not shrink: %+v", g)
		}
	}
}

func TestOptimizeConstantPO(t *testing.T) {
	n := &Netlist{
		Name: "cpo", Inputs: []string{"a"}, Outputs: []string{"y"},
		Gates: []Gate{
			{Name: "z", Type: Lut, Out: "zero", Ins: nil, TT: []bool{false}},
			{Name: "g", Type: And, Out: "y", Ins: []string{"a", "zero"}},
		},
	}
	o, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(o, map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if got["y"] {
		t.Fatal("constant-0 output wrong")
	}
}

func TestOptimizeAliasedPO(t *testing.T) {
	n := &Netlist{
		Name: "apo", Inputs: []string{"a"}, Outputs: []string{"y"},
		Gates: []Gate{{Name: "b", Type: Buf, Out: "y", Ins: []string{"a"}}},
	}
	o, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(o, map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if !got["y"] {
		t.Fatal("aliased output lost")
	}
}

func TestOptimizeKeepsDFFSemantics(t *testing.T) {
	// q starts at 0 even when its input is constant 1.
	n := &Netlist{
		Name: "dffc", Inputs: []string{"a"}, Outputs: []string{"q", "y"},
		Gates: []Gate{
			{Name: "one", Type: Lut, Out: "one", Ins: nil, TT: []bool{true}},
			{Name: "ff", Type: Dff, Out: "q", Ins: []string{"one"}},
			{Name: "g", Type: And, Out: "y", Ins: []string{"a", "q"}},
		},
	}
	o, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := NewSimulator(n)
	s2, err := NewSimulator(o)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 3; cyc++ {
		w, _ := s1.Step(map[string]bool{"a": true})
		g, err := s2.Step(map[string]bool{"a": true})
		if err != nil {
			t.Fatal(err)
		}
		if w["q"] != g["q"] || w["y"] != g["y"] {
			t.Fatalf("cycle %d: %v vs %v", cyc, g, w)
		}
	}
}

// Property: Optimize preserves sequential behavior on random circuits
// seeded with constants and buffers.
func TestPropertyOptimizeEquivalent(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		n, err := Random(RandomParams{Gates: 100, Inputs: 8, Outputs: 5, DffFrac: 0.15, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Splice in constant feeders for extra folding opportunities.
		n.Gates = append(n.Gates,
			Gate{Name: "konst1", Type: Lut, Out: "_k1", Ins: nil, TT: []bool{true}},
			Gate{Name: "konst0", Type: Lut, Out: "_k0", Ins: nil, TT: []bool{false}},
			Gate{Name: "kmix", Type: And, Out: "_km", Ins: []string{"_k1", n.Inputs[0]}},
			Gate{Name: "kuse", Type: Or, Out: "_ku", Ins: []string{"_km", "_k0"}},
		)
		n.Outputs = append(n.Outputs, "_ku")
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		o, err := Optimize(n)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(o.Gates) > len(n.Gates) {
			t.Fatalf("seed %d: optimization grew the netlist %d -> %d", seed, len(n.Gates), len(o.Gates))
		}
		s1, err := NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := NewSimulator(o)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		for cyc := 0; cyc < 8; cyc++ {
			in := map[string]bool{}
			for _, pi := range n.Inputs {
				in[pi] = r.Intn(2) == 1
			}
			w, err1 := s1.Step(in)
			g, err2 := s2.Step(in)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			for k := range w {
				if g[k] != w[k] {
					t.Fatalf("seed %d cycle %d: %s differs", seed, cyc, k)
				}
			}
		}
	}
}
