package netlist

// Depth returns the maximum combinational depth: the longest
// gate-count path from a primary input or flip-flop output to a
// primary output or flip-flop input. Buffers and inverters count like
// any other gate; a circuit whose outputs alias inputs has depth 0.
func (n *Netlist) Depth() (int, error) {
	drivers, err := n.DriverIndex()
	if err != nil {
		return 0, err
	}
	order, err := n.topoOrder(drivers)
	if err != nil {
		return 0, err
	}
	level := make(map[string]int, len(n.Gates))
	depthOf := func(net string) int {
		if d, ok := level[net]; ok {
			return d
		}
		return 0 // primary input or flip-flop output
	}
	max := 0
	for _, gi := range order {
		g := &n.Gates[gi]
		if g.Type == Dff {
			continue
		}
		d := 0
		for _, in := range g.Ins {
			if v := depthOf(in); v > d {
				d = v
			}
		}
		d++
		level[g.Out] = d
		if d > max {
			max = d
		}
	}
	// Flip-flop inputs terminate paths too; they are already covered
	// because every gate contributes to max when levelled.
	return max, nil
}
