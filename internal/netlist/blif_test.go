package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const blifFullAdder = `# a full adder
.model fa
.inputs a b cin
.outputs s cout
.names a b cin s
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

func TestReadBLIFFullAdder(t *testing.T) {
	n, err := ReadBLIF(strings.NewReader(blifFullAdder))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "fa" || len(n.Gates) != 2 {
		t.Fatalf("parsed %+v", n)
	}
	for v := 0; v < 8; v++ {
		a, b, cin := v&1 == 1, v&2 == 2, v&4 == 4
		out, err := Evaluate(n, map[string]bool{"a": a, "b": b, "cin": cin})
		if err != nil {
			t.Fatal(err)
		}
		sum := a != b != cin
		carry := (a && b) || (cin && (a != b))
		if out["s"] != sum || out["cout"] != carry {
			t.Fatalf("v=%d: got %v want s=%v cout=%v", v, out, sum, carry)
		}
	}
}

func TestReadBLIFLatch(t *testing.T) {
	src := `.model sr
.inputs d
.outputs q
.latch d q re clk 0
.end
`
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumDFF() != 1 {
		t.Fatalf("dffs = %d", n.NumDFF())
	}
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := sim.Step(map[string]bool{"d": true})
	if out["q"] {
		t.Fatal("latch should delay one cycle")
	}
	out, _ = sim.Step(map[string]bool{"d": false})
	if !out["q"] {
		t.Fatal("latch lost the stored value")
	}
}

func TestReadBLIFConstants(t *testing.T) {
	src := `.model k
.inputs a
.outputs one zero y
.names one
1
.names zero
.names a one y
11 1
.end
`
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Evaluate(n, map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if !out["one"] || out["zero"] || !out["y"] {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestReadBLIFOffSetCover(t *testing.T) {
	// Off-set rows (output column 0) define where the function is 0.
	src := `.model inv
.inputs a
.outputs y
.names a y
1 0
.end
`
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Evaluate(n, map[string]bool{"a": true})
	if out["y"] {
		t.Fatal("off-set cover mis-parsed")
	}
	out, _ = Evaluate(n, map[string]bool{"a": false})
	if !out["y"] {
		t.Fatal("off-set cover mis-parsed (complement)")
	}
}

func TestReadBLIFContinuation(t *testing.T) {
	src := ".model c\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Inputs) != 2 {
		t.Fatalf("inputs = %v", n.Inputs)
	}
}

func TestReadBLIFErrors(t *testing.T) {
	cases := map[string]string{
		"no model":      ".inputs a\n.end\n",
		"bad directive": ".model m\n.foo\n.end\n",
		"stray row":     ".model m\n.inputs a\n11 1\n.end\n",
		"bad row width": ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end\n",
		"mixed cover":   ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n",
		"bad latch":     ".model m\n.inputs a\n.outputs y\n.latch a\n.end\n",
	}
	for name, src := range cases {
		if _, err := ReadBLIF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// Property: WriteBLIF -> ReadBLIF preserves behavior on random
// sequential circuits.
func TestPropertyBLIFRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		n, err := Random(RandomParams{Gates: 80, Inputs: 6, Outputs: 4, DffFrac: 0.2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, n); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, buf.String())
		}
		s1, err := NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := NewSimulator(back)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		for cyc := 0; cyc < 10; cyc++ {
			in := map[string]bool{}
			for _, pi := range n.Inputs {
				in[pi] = r.Intn(2) == 1
			}
			o1, err1 := s1.Step(in)
			o2, err2 := s2.Step(in)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			for k := range o1 {
				if o1[k] != o2[k] {
					t.Fatalf("seed %d cycle %d: %s differs", seed, cyc, k)
				}
			}
		}
	}
}

// LUT gates survive the native text format too.
func TestTextFormatLutRoundTrip(t *testing.T) {
	n := &Netlist{
		Name: "l", Inputs: []string{"a", "b"}, Outputs: []string{"y"},
		Gates: []Gate{{Name: "g_y", Type: Lut, Out: "y", Ins: []string{"a", "b"}, TT: []bool{false, true, true, false}}},
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Evaluate(back, map[string]bool{"a": true, "b": false})
	if err != nil {
		t.Fatal(err)
	}
	if !out["y"] {
		t.Fatal("xor LUT lost through text round trip")
	}
}

func TestLutValidation(t *testing.T) {
	n := &Netlist{
		Name: "bad", Inputs: []string{"a"}, Outputs: []string{"y"},
		Gates: []Gate{{Name: "g", Type: Lut, Out: "y", Ins: []string{"a"}, TT: []bool{true}}},
	}
	if err := n.Validate(); err == nil {
		t.Fatal("short truth table should fail")
	}
	n.Gates[0].TT = nil
	n.Gates[0].Type = And
	n.Gates[0].Ins = []string{"a", "a"}
	n.Gates[0].TT = []bool{true}
	if err := n.Validate(); err == nil {
		t.Fatal("truth table on non-LUT should fail")
	}
}

// A wide BLIF LUT must map correctly through Shannon decomposition.
func TestWideLutThroughBLIF(t *testing.T) {
	// 6-input majority-ish function written as a cover.
	var rows []string
	for p := 0; p < 64; p++ {
		ones := 0
		for b := 0; b < 6; b++ {
			if p&(1<<uint(b)) != 0 {
				ones++
			}
		}
		if ones >= 4 {
			var sb strings.Builder
			for b := 0; b < 6; b++ {
				if p&(1<<uint(b)) != 0 {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			rows = append(rows, sb.String()+" 1")
		}
	}
	src := ".model wide\n.inputs i0 i1 i2 i3 i4 i5\n.outputs y\n.names i0 i1 i2 i3 i4 i5 y\n" +
		strings.Join(rows, "\n") + "\n.end\n"
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		in := map[string]bool{}
		ones := 0
		for b := 0; b < 6; b++ {
			v := r.Intn(2) == 1
			in["i"+string(rune('0'+b))] = v
			if v {
				ones++
			}
		}
		out, err := Evaluate(n, in)
		if err != nil {
			t.Fatal(err)
		}
		if out["y"] != (ones >= 4) {
			t.Fatalf("trial %d: majority wrong", trial)
		}
	}
}
