package netlist

import "fmt"

// Optimize returns a behavior-equivalent netlist with buffers swept,
// constants propagated (including LUT cofactoring) and gates that fold
// to aliases removed. Primary outputs keep their names via inserted
// buffers or constant LUTs where needed.
func Optimize(n *Netlist) (*Netlist, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	drivers, err := n.DriverIndex()
	if err != nil {
		return nil, err
	}
	order, err := n.topoOrder(drivers)
	if err != nil {
		return nil, err
	}

	type binding struct {
		isConst bool
		value   bool
		alias   string // non-empty: this net equals another net
	}
	bind := make(map[string]binding)
	resolve := func(net string) (string, *binding) {
		for {
			b, ok := bind[net]
			if !ok {
				return net, nil
			}
			if b.isConst {
				return net, &b
			}
			net = b.alias
		}
	}

	out := &Netlist{
		Name:    n.Name,
		Inputs:  append([]string(nil), n.Inputs...),
		Outputs: append([]string(nil), n.Outputs...),
	}

	emitGate := func(g Gate) { out.Gates = append(out.Gates, g) }

	simplify := func(g *Gate) {
		// Resolve inputs: split into constants and live nets.
		var live []string
		var consts []bool
		for _, in := range g.Ins {
			root, b := resolve(in)
			if b != nil {
				consts = append(consts, b.value)
			} else {
				live = append(live, root)
			}
		}
		setConst := func(v bool) { bind[g.Out] = binding{isConst: true, value: v} }
		setAlias := func(to string) { bind[g.Out] = binding{alias: to} }

		switch g.Type {
		case Buf:
			if len(live) == 0 {
				setConst(consts[0])
			} else {
				setAlias(live[0])
			}
		case Not:
			if len(live) == 0 {
				setConst(!consts[0])
			} else {
				emitGate(Gate{Name: g.Name, Type: Not, Out: g.Out, Ins: live})
			}
		case And, Nand:
			inv := g.Type == Nand
			for _, c := range consts {
				if !c {
					setConst(inv)
					return
				}
			}
			switch len(live) {
			case 0:
				setConst(!inv)
			case 1:
				if inv {
					emitGate(Gate{Name: g.Name, Type: Not, Out: g.Out, Ins: live})
				} else {
					setAlias(live[0])
				}
			default:
				emitGate(Gate{Name: g.Name, Type: g.Type, Out: g.Out, Ins: live})
			}
		case Or, Nor:
			inv := g.Type == Nor
			for _, c := range consts {
				if c {
					setConst(!inv) // a true input dominates an OR
					return
				}
			}
			switch len(live) {
			case 0:
				setConst(inv)
			case 1:
				if inv {
					emitGate(Gate{Name: g.Name, Type: Not, Out: g.Out, Ins: live})
				} else {
					setAlias(live[0])
				}
			default:
				emitGate(Gate{Name: g.Name, Type: g.Type, Out: g.Out, Ins: live})
			}
		case Xor, Xnor:
			parity := g.Type == Xnor
			for _, c := range consts {
				if c {
					parity = !parity
				}
			}
			switch len(live) {
			case 0:
				setConst(parity)
			case 1:
				if parity {
					emitGate(Gate{Name: g.Name, Type: Not, Out: g.Out, Ins: live})
				} else {
					setAlias(live[0])
				}
			default:
				t := Xor
				if parity {
					t = Xnor
				}
				emitGate(Gate{Name: g.Name, Type: t, Out: g.Out, Ins: live})
			}
		case Lut:
			tt := append([]bool(nil), g.TT...)
			var keepIns []string
			// Cofactor constant inputs one at a time, low bit first.
			bit := 0
			for _, in := range g.Ins {
				root, b := resolve(in)
				if b == nil {
					keepIns = append(keepIns, root)
					bit++
					continue
				}
				next := make([]bool, len(tt)/2)
				for i := range next {
					lo := i & (1<<uint(bit) - 1)
					hi := (i >> uint(bit)) << uint(bit+1)
					idx := hi | lo
					if b.value {
						idx |= 1 << uint(bit)
					}
					next[i] = tt[idx]
				}
				tt = next
			}
			switch {
			case len(keepIns) == 0:
				setConst(tt[0])
			case allEqualInputDrop(tt):
				// Constant function of live inputs.
				setConst(tt[0])
			default:
				emitGate(Gate{Name: g.Name, Type: Lut, Out: g.Out, Ins: keepIns, TT: tt})
			}
		default:
			panic(fmt.Sprintf("netlist: optimize of %v", g.Type))
		}
	}

	for _, gi := range order {
		simplify(&n.Gates[gi])
	}
	// Flip-flops keep their structure; only their inputs resolve.
	// A flip-flop with a constant input converges to that constant
	// after one cycle, but its first-cycle value is 0 — keep it as a
	// register to preserve cycle-exact behavior.
	for gi := range n.Gates {
		g := &n.Gates[gi]
		if g.Type != Dff {
			continue
		}
		root, b := resolve(g.Ins[0])
		if b != nil {
			cname := "_opt_c_" + g.Out
			emitGate(Gate{Name: "g" + cname, Type: Lut, Out: cname, Ins: nil, TT: []bool{b.value}})
			root = cname
		}
		emitGate(Gate{Name: g.Name, Type: Dff, Out: g.Out, Ins: []string{root}})
	}
	// Rewire all surviving gate inputs through the bindings.
	for gi := range out.Gates {
		g := &out.Gates[gi]
		for i, in := range g.Ins {
			root, b := resolve(in)
			if b != nil {
				cname := "_opt_k_" + g.Name + "_" + fmt.Sprint(i)
				emitGate(Gate{Name: "g" + cname, Type: Lut, Out: cname, Ins: nil, TT: []bool{b.value}})
				root = cname
			}
			g.Ins[i] = root
		}
	}
	// Primary outputs whose driver folded away need explicit drivers.
	driven := make(map[string]bool, len(out.Gates))
	for gi := range out.Gates {
		driven[out.Gates[gi].Out] = true
	}
	for _, pi := range n.Inputs {
		driven[pi] = true
	}
	for _, po := range n.Outputs {
		if driven[po] {
			continue
		}
		root, b := resolve(po)
		if b != nil {
			emitGate(Gate{Name: "g_opt_" + po, Type: Lut, Out: po, Ins: nil, TT: []bool{b.value}})
		} else if root != po {
			emitGate(Gate{Name: "g_opt_" + po, Type: Buf, Out: po, Ins: []string{root}})
		} else {
			return nil, fmt.Errorf("netlist: optimize lost driver of output %q", po)
		}
		driven[po] = true
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: optimize produced invalid circuit: %w", err)
	}
	return out, nil
}

// allEqualInputDrop reports a truth table constant over its domain.
func allEqualInputDrop(tt []bool) bool {
	for _, v := range tt {
		if v != tt[0] {
			return false
		}
	}
	return true
}
