package netlist

import (
	"fmt"
	"math/rand"
)

// RandomParams controls random gate-level circuit generation.
type RandomParams struct {
	Name    string
	Gates   int
	Inputs  int
	Outputs int
	DffFrac float64 // fraction of gates that are flip-flops
	Seed    int64
	// Window bounds connection locality (0 = global). Default 60.
	Window int
}

// Random generates a valid random gate-level netlist: a DAG of logic
// gates with windowed locality plus flip-flops whose inputs may close
// sequential (never combinational) cycles.
func Random(p RandomParams) (*Netlist, error) {
	if p.Gates < 1 || p.Inputs < 2 {
		return nil, fmt.Errorf("netlist: Random needs ≥1 gate and ≥2 inputs (got %d, %d)", p.Gates, p.Inputs)
	}
	if p.Window == 0 {
		p.Window = 60
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("rand%d", p.Seed)
	}
	r := rand.New(rand.NewSource(p.Seed))
	n := &Netlist{Name: p.Name}
	nets := make([]string, 0, p.Inputs+p.Gates)
	for i := 0; i < p.Inputs; i++ {
		pi := fmt.Sprintf("pi%d", i)
		n.Inputs = append(n.Inputs, pi)
		nets = append(nets, pi)
	}
	combTypes := []GateType{And, Or, Nand, Nor, Xor, Xnor, Not, Buf}
	pick := func() string {
		off := r.Intn(p.Window)
		if off >= len(nets) {
			off = r.Intn(len(nets))
		}
		return nets[len(nets)-1-off]
	}
	for gi := 0; gi < p.Gates; gi++ {
		out := fmt.Sprintf("n%d", gi)
		if r.Float64() < p.DffFrac {
			n.Gates = append(n.Gates, Gate{Name: fmt.Sprintf("ff%d", gi), Type: Dff, Out: out, Ins: []string{pick()}})
		} else {
			t := combTypes[r.Intn(len(combTypes))]
			lo, _ := t.MaxFanin()
			k := lo
			if lo == 2 {
				k = 2 + r.Intn(3)
			}
			ins := make([]string, k)
			for i := range ins {
				ins[i] = pick()
			}
			n.Gates = append(n.Gates, Gate{Name: fmt.Sprintf("g%d", gi), Type: t, Out: out, Ins: ins})
		}
		nets = append(nets, out)
	}
	// Flip-flop feedback: rewire a few flip-flop inputs to later nets
	// (sequential loops are legal).
	for gi := range n.Gates {
		if n.Gates[gi].Type == Dff && r.Float64() < 0.3 {
			n.Gates[gi].Ins[0] = nets[p.Inputs+r.Intn(p.Gates)]
		}
	}
	// Primary outputs: the last nets plus any requested extras.
	want := p.Outputs
	if want < 1 {
		want = 1
	}
	seen := make(map[string]bool)
	for i := len(nets) - 1; i >= 0 && len(n.Outputs) < want; i-- {
		if !seen[nets[i]] && i >= p.Inputs {
			seen[nets[i]] = true
			n.Outputs = append(n.Outputs, nets[i])
		}
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: Random produced invalid circuit: %w", err)
	}
	return n, nil
}
