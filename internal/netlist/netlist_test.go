package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// fullAdder is the canonical test circuit: s = a^b^cin, cout = maj.
func fullAdder() *Netlist {
	return &Netlist{
		Name:    "fa",
		Inputs:  []string{"a", "b", "cin"},
		Outputs: []string{"s", "cout"},
		Gates: []Gate{
			{Name: "x1", Type: Xor, Out: "ab", Ins: []string{"a", "b"}},
			{Name: "x2", Type: Xor, Out: "s", Ins: []string{"ab", "cin"}},
			{Name: "a1", Type: And, Out: "t1", Ins: []string{"a", "b"}},
			{Name: "a2", Type: And, Out: "t2", Ins: []string{"ab", "cin"}},
			{Name: "o1", Type: Or, Out: "cout", Ins: []string{"t1", "t2"}},
		},
	}
}

func TestGateTypeEval(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []bool
		want bool
	}{
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Nand, []bool{true, true}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Xor, []bool{true, true, true}, true},
		{Xor, []bool{true, true}, false},
		{Xnor, []bool{true, false}, false},
		{Not, []bool{true}, false},
		{Buf, []bool{true}, true},
	}
	for _, c := range cases {
		if got := c.t.Eval(c.in); got != c.want {
			t.Errorf("%v%v = %v, want %v", c.t, c.in, got, c.want)
		}
	}
}

func TestParseGateType(t *testing.T) {
	for i := And; i <= Dff; i++ {
		got, ok := ParseGateType(i.String())
		if !ok || got != i {
			t.Fatalf("round trip of %v failed", i)
		}
	}
	if _, ok := ParseGateType("mux"); ok {
		t.Fatal("mux should not parse")
	}
}

func TestFullAdderTruthTable(t *testing.T) {
	fa := fullAdder()
	for v := 0; v < 8; v++ {
		a, b, cin := v&1 == 1, v&2 == 2, v&4 == 4
		out, err := Evaluate(fa, map[string]bool{"a": a, "b": b, "cin": cin})
		if err != nil {
			t.Fatal(err)
		}
		sum := a != b != cin
		carry := (a && b) || (cin && (a != b))
		if out["s"] != sum || out["cout"] != carry {
			t.Fatalf("fa(%v,%v,%v) = %v, want s=%v cout=%v", a, b, cin, out, sum, carry)
		}
	}
}

func TestValidateCatchesDoubleDriver(t *testing.T) {
	n := fullAdder()
	n.Gates = append(n.Gates, Gate{Name: "dup", Type: Buf, Out: "s", Ins: []string{"a"}})
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "driven by") {
		t.Fatalf("want double-driver error, got %v", err)
	}
}

func TestValidateCatchesUndrivenInput(t *testing.T) {
	n := fullAdder()
	n.Gates[0].Ins[0] = "ghost"
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("want undriven error, got %v", err)
	}
}

func TestValidateCatchesUndrivenOutput(t *testing.T) {
	n := fullAdder()
	n.Outputs = append(n.Outputs, "nope")
	if err := n.Validate(); err == nil {
		t.Fatal("want undriven-output error")
	}
}

func TestValidateCatchesCombinationalCycle(t *testing.T) {
	n := &Netlist{
		Name:    "loop",
		Inputs:  []string{"a"},
		Outputs: []string{"y"},
		Gates: []Gate{
			{Name: "g1", Type: And, Out: "x", Ins: []string{"a", "y"}},
			{Name: "g2", Type: Buf, Out: "y", Ins: []string{"x"}},
		},
	}
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestSequentialCycleAllowed(t *testing.T) {
	// Toggle flip-flop: q' = !q.
	n := &Netlist{
		Name:    "tff",
		Inputs:  []string{"en"},
		Outputs: []string{"q"},
		Gates: []Gate{
			{Name: "inv", Type: Not, Out: "d", Ins: []string{"q"}},
			{Name: "ff", Type: Dff, Out: "q", Ins: []string{"d"}},
		},
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("sequential loop should validate: %v", err)
	}
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	want := false
	for cyc := 0; cyc < 6; cyc++ {
		out, err := sim.Step(nil)
		if err != nil {
			t.Fatal(err)
		}
		if out["q"] != want {
			t.Fatalf("cycle %d: q = %v, want %v", cyc, out["q"], want)
		}
		want = !want
	}
}

func TestValidateArity(t *testing.T) {
	n := &Netlist{
		Name: "bad", Inputs: []string{"a"}, Outputs: []string{"y"},
		Gates: []Gate{{Name: "g", Type: Not, Out: "y", Ins: []string{"a", "a"}}},
	}
	if err := n.Validate(); err == nil {
		t.Fatal("want arity error")
	}
}

func TestValidateDuplicateGateName(t *testing.T) {
	n := &Netlist{
		Name: "bad", Inputs: []string{"a"}, Outputs: []string{"y", "z"},
		Gates: []Gate{
			{Name: "g", Type: Buf, Out: "y", Ins: []string{"a"}},
			{Name: "g", Type: Buf, Out: "z", Ins: []string{"a"}},
		},
	}
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate gate") {
		t.Fatalf("want duplicate-name error, got %v", err)
	}
}

func TestShiftRegister(t *testing.T) {
	n := &Netlist{
		Name:    "sr2",
		Inputs:  []string{"d"},
		Outputs: []string{"q1"},
		Gates: []Gate{
			{Name: "f0", Type: Dff, Out: "q0", Ins: []string{"d"}},
			{Name: "f1", Type: Dff, Out: "q1", Ins: []string{"q0"}},
		},
	}
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	seq := []bool{true, false, true, true, false}
	var got []bool
	for _, d := range seq {
		out, err := sim.Step(map[string]bool{"d": d})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out["q1"])
	}
	want := []bool{false, false, true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d: q1 = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	fa := fullAdder()
	var buf bytes.Buffer
	if err := Write(&buf, fa); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != fa.Name || len(back.Gates) != len(fa.Gates) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	// Functional equality over all input vectors.
	for v := 0; v < 8; v++ {
		in := map[string]bool{"a": v&1 == 1, "b": v&2 == 2, "cin": v&4 == 4}
		o1, _ := Evaluate(fa, in)
		o2, err := Evaluate(back, in)
		if err != nil {
			t.Fatal(err)
		}
		for k := range o1 {
			if o1[k] != o2[k] {
				t.Fatalf("vector %d: output %s differs", v, k)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"missing circuit": "input a\n",
		"bad type":        "circuit c\ninput a\noutput y\nmux y a\n",
		"short gate":      "circuit c\ninput a\noutput y\nand y\n",
		"dup circuit":     "circuit a\ncircuit b\n",
		"invalid":         "circuit c\ninput a\noutput y\nand y ghost a\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	src := "# header\ncircuit c\n\ninput a b\noutput y\n# body\nand y a b\n"
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Gates) != 1 || n.Gates[0].Type != And {
		t.Fatalf("parse wrong: %+v", n)
	}
}

func TestStats(t *testing.T) {
	s := fullAdder().Stats()
	if s.Gates != 5 || s.DFFs != 0 || s.Inputs != 3 || s.Outputs != 2 || s.Nets != 8 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSortedNets(t *testing.T) {
	nets := fullAdder().SortedNets()
	if len(nets) != 8 {
		t.Fatalf("nets = %v", nets)
	}
	for i := 1; i < len(nets); i++ {
		if nets[i-1] >= nets[i] {
			t.Fatalf("not sorted: %v", nets)
		}
	}
}

func TestRandomValidAndDeterministic(t *testing.T) {
	p := RandomParams{Gates: 300, Inputs: 12, Outputs: 6, DffFrac: 0.15, Seed: 3}
	a, err := Random(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := Random(p)
	if err != nil {
		t.Fatal(err)
	}
	var wa, wb bytes.Buffer
	if err := Write(&wa, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&wb, b); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Fatal("Random not deterministic")
	}
	if a.NumDFF() == 0 {
		t.Fatal("expected some flip-flops")
	}
}

func TestRandomRejectsBadParams(t *testing.T) {
	if _, err := Random(RandomParams{Gates: 0, Inputs: 2}); err == nil {
		t.Fatal("want error for zero gates")
	}
	if _, err := Random(RandomParams{Gates: 1, Inputs: 1}); err == nil {
		t.Fatal("want error for one input")
	}
}

// Property: random circuits always validate, simulate without error,
// and survive a text round trip with identical behavior.
func TestPropertyRandomRoundTripBehavior(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		n, err := Random(RandomParams{Gates: 60, Inputs: 6, Outputs: 4, DffFrac: 0.2, Seed: seed})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		s1, err := NewSimulator(n)
		if err != nil {
			return false
		}
		s2, err := NewSimulator(back)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for cyc := 0; cyc < 8; cyc++ {
			in := map[string]bool{}
			for _, pi := range n.Inputs {
				in[pi] = r.Intn(2) == 1
			}
			o1, err1 := s1.Step(in)
			o2, err2 := s2.Step(in)
			if err1 != nil || err2 != nil {
				return false
			}
			for k := range o1 {
				if o1[k] != o2[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDepth(t *testing.T) {
	fa := fullAdder()
	d, err := fa.Depth()
	if err != nil {
		t.Fatal(err)
	}
	// Longest path: a -> ab -> t2 -> cout = 3 gates.
	if d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	// Registers reset depth.
	seq := &Netlist{
		Name: "seq", Inputs: []string{"a"}, Outputs: []string{"y"},
		Gates: []Gate{
			{Name: "g1", Type: Not, Out: "w", Ins: []string{"a"}},
			{Name: "f", Type: Dff, Out: "q", Ins: []string{"w"}},
			{Name: "g2", Type: Not, Out: "y", Ins: []string{"q"}},
		},
	}
	d, err = seq.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("sequential depth = %d, want 1", d)
	}
}

func TestDepthAdderGrowsWithWidth(t *testing.T) {
	a4, _ := RippleAdder(4)
	a8, _ := RippleAdder(8)
	d4, err := a4.Depth()
	if err != nil {
		t.Fatal(err)
	}
	d8, err := a8.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d8 <= d4 {
		t.Fatalf("ripple depth should grow: %d vs %d", d4, d8)
	}
}
