package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format (".gnl") is line oriented:
//
//	# comment
//	circuit adder4
//	input a0 a1 b0 b1
//	output s0 s1 cout
//	xor  s0   a0 b0
//	and  c0   a0 b0
//	dff  q1   d1
//
// Each gate line is: <type> <output-net> <input-net>...

// Write serializes the netlist.
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", n.Name)
	if len(n.Inputs) > 0 {
		fmt.Fprintf(bw, "input %s\n", strings.Join(n.Inputs, " "))
	}
	if len(n.Outputs) > 0 {
		fmt.Fprintf(bw, "output %s\n", strings.Join(n.Outputs, " "))
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == Lut {
			var sb strings.Builder
			for _, v := range g.TT {
				if v {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			fmt.Fprintf(bw, "%s %s %s @%s\n", g.Type, g.Out, strings.Join(g.Ins, " "), sb.String())
			continue
		}
		fmt.Fprintf(bw, "%s %s %s\n", g.Type, g.Out, strings.Join(g.Ins, " "))
	}
	return bw.Flush()
}

// Read parses the text format with the default Limits. Gate names are
// synthesized from the output net ("g_<out>") since the format
// identifies gates by the net they drive.
func Read(r io.Reader) (*Netlist, error) {
	return ReadLimits(r, Limits{})
}

// ReadLimits is Read under explicit resource caps: input exceeding a
// limit fails fast with a *ParseError wrapping a *LimitError instead
// of driving unbounded allocation. Syntax errors are *ParseError too,
// carrying the 1-based line and, where known, the column of the
// offending token.
func ReadLimits(r io.Reader, lim Limits) (*Netlist, error) {
	lim = lim.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(lim.scanBuf(), lim.MaxLineBytes)
	n := &Netlist{}
	lineNo := 0
	sawCircuit := false
	fanout := make(map[string]int)
	perr := func(col int, format string, args ...any) error {
		return &ParseError{Format: "netlist", Line: lineNo, Col: col, Msg: fmt.Sprintf(format, args...)}
	}
	limErr := func(quantity string, value, limit int) error {
		return &ParseError{Format: "netlist", Line: lineNo, Err: &LimitError{Quantity: quantity, Value: value, Limit: limit}}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if sawCircuit {
				return nil, perr(0, "duplicate circuit line")
			}
			if len(fields) != 2 {
				return nil, perr(0, "want 'circuit <name>'")
			}
			n.Name = fields[1]
			sawCircuit = true
		case "input":
			n.Inputs = append(n.Inputs, fields[1:]...)
		case "output":
			n.Outputs = append(n.Outputs, fields[1:]...)
		default:
			t, ok := ParseGateType(fields[0])
			if !ok {
				return nil, perr(fieldCol(line, 0), "unknown gate type %q", fields[0])
			}
			if len(fields) < 3 {
				return nil, perr(0, "gate needs an output and operands (truncated record?)")
			}
			if len(n.Gates) >= lim.MaxGates {
				return nil, limErr("gates", len(n.Gates)+1, lim.MaxGates)
			}
			if len(fields)-1 > lim.MaxPins {
				return nil, limErr("pins", len(fields)-1, lim.MaxPins)
			}
			g := Gate{Name: "g_" + fields[1], Type: t, Out: fields[1]}
			rest := fields[2:]
			if t == Lut {
				if len(rest) == 0 || !strings.HasPrefix(rest[len(rest)-1], "@") {
					return nil, perr(0, "lut gate needs a trailing @<truth-table>")
				}
				bits := strings.TrimPrefix(rest[len(rest)-1], "@")
				rest = rest[:len(rest)-1]
				if len(rest) > lim.MaxLutInputs {
					return nil, limErr("lut-inputs", len(rest), lim.MaxLutInputs)
				}
				g.TT = make([]bool, len(bits))
				for i, ch := range bits {
					switch ch {
					case '0':
					case '1':
						g.TT[i] = true
					default:
						return nil, perr(fieldCol(line, len(fields)-1), "bad truth-table digit %q", ch)
					}
				}
			}
			for _, in := range rest {
				fanout[in]++
				if fanout[in] > lim.MaxFanout {
					return nil, limErr("fanout", fanout[in], lim.MaxFanout)
				}
			}
			g.Ins = append([]string(nil), rest...)
			n.Gates = append(n.Gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, &ParseError{Format: "netlist", Line: lineNo + 1, Err: &LimitError{Quantity: "line-bytes", Value: lim.MaxLineBytes + 1, Limit: lim.MaxLineBytes}}
		}
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if !sawCircuit {
		return nil, &ParseError{Format: "netlist", Msg: "missing 'circuit' line (empty or truncated file?)"}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
