package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format (".gnl") is line oriented:
//
//	# comment
//	circuit adder4
//	input a0 a1 b0 b1
//	output s0 s1 cout
//	xor  s0   a0 b0
//	and  c0   a0 b0
//	dff  q1   d1
//
// Each gate line is: <type> <output-net> <input-net>...

// Write serializes the netlist.
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", n.Name)
	if len(n.Inputs) > 0 {
		fmt.Fprintf(bw, "input %s\n", strings.Join(n.Inputs, " "))
	}
	if len(n.Outputs) > 0 {
		fmt.Fprintf(bw, "output %s\n", strings.Join(n.Outputs, " "))
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == Lut {
			var sb strings.Builder
			for _, v := range g.TT {
				if v {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			fmt.Fprintf(bw, "%s %s %s @%s\n", g.Type, g.Out, strings.Join(g.Ins, " "), sb.String())
			continue
		}
		fmt.Fprintf(bw, "%s %s %s\n", g.Type, g.Out, strings.Join(g.Ins, " "))
	}
	return bw.Flush()
}

// Read parses the text format. Gate names are synthesized from the
// output net ("g_<out>") since the format identifies gates by the net
// they drive.
func Read(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	n := &Netlist{}
	lineNo := 0
	sawCircuit := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if sawCircuit {
				return nil, fmt.Errorf("netlist: line %d: duplicate circuit line", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: want 'circuit <name>'", lineNo)
			}
			n.Name = fields[1]
			sawCircuit = true
		case "input":
			n.Inputs = append(n.Inputs, fields[1:]...)
		case "output":
			n.Outputs = append(n.Outputs, fields[1:]...)
		default:
			t, ok := ParseGateType(fields[0])
			if !ok {
				return nil, fmt.Errorf("netlist: line %d: unknown gate type %q", lineNo, fields[0])
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("netlist: line %d: gate needs an output and operands", lineNo)
			}
			g := Gate{Name: "g_" + fields[1], Type: t, Out: fields[1]}
			rest := fields[2:]
			if t == Lut {
				if len(rest) == 0 || !strings.HasPrefix(rest[len(rest)-1], "@") {
					return nil, fmt.Errorf("netlist: line %d: lut gate needs a trailing @<truth-table>", lineNo)
				}
				bits := strings.TrimPrefix(rest[len(rest)-1], "@")
				rest = rest[:len(rest)-1]
				g.TT = make([]bool, len(bits))
				for i, ch := range bits {
					switch ch {
					case '0':
					case '1':
						g.TT[i] = true
					default:
						return nil, fmt.Errorf("netlist: line %d: bad truth-table digit %q", lineNo, ch)
					}
				}
			}
			g.Ins = append([]string(nil), rest...)
			n.Gates = append(n.Gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if !sawCircuit {
		return nil, fmt.Errorf("netlist: missing 'circuit' line")
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
