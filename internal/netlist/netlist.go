// Package netlist models gate-level logic circuits — the input the
// XC3000 technology mapper (package techmap) consumes before the
// partitioner sees a mapped hypergraph. It provides a validated
// in-memory model, a line-oriented text format, cycle-aware logic
// simulation and a random circuit generator.
package netlist

import (
	"fmt"
	"sort"
)

// GateType enumerates supported primitives.
type GateType uint8

const (
	And GateType = iota
	Or
	Nand
	Nor
	Xor
	Xnor
	Not
	Buf
	Dff // D flip-flop: single input, output follows at the next Step
	Lut // generic truth-table gate (BLIF .names); see Gate.TT
)

var gateNames = [...]string{"and", "or", "nand", "nor", "xor", "xnor", "not", "buf", "dff", "lut"}

func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType resolves a type keyword.
func ParseGateType(s string) (GateType, bool) {
	for i, n := range gateNames {
		if n == s {
			return GateType(i), true
		}
	}
	return 0, false
}

// MaxFanin returns the legal fan-in range for the type.
func (t GateType) MaxFanin() (min, max int) {
	switch t {
	case Not, Buf, Dff:
		return 1, 1
	case Lut:
		return 0, 16
	default:
		return 2, 16
	}
}

// Eval computes the gate function over the input values (Dff gates are
// handled by the simulator, not here).
func (t GateType) Eval(in []bool) bool {
	switch t {
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, x := range in {
			v = v != x
		}
		if t == Xnor {
			return !v
		}
		return v
	case Not:
		return !in[0]
	case Buf, Dff:
		return in[0]
	}
	panic(fmt.Sprintf("netlist: eval of %v", t))
}

// Gate is one primitive instance. Out names the driven net; Ins name
// the fan-in nets. Lut gates carry an explicit truth table: TT[i] is
// the output when the inputs spell i (Ins[0] = bit 0).
type Gate struct {
	Name string
	Type GateType
	Out  string
	Ins  []string
	TT   []bool // Lut only; length 1<<len(Ins)
}

// Eval computes the gate's output for the given input values.
func (g *Gate) Eval(in []bool) bool {
	if g.Type == Lut {
		idx := 0
		for i, v := range in {
			if v {
				idx |= 1 << uint(i)
			}
		}
		return g.TT[idx]
	}
	return g.Type.Eval(in)
}

// Netlist is a gate-level circuit.
type Netlist struct {
	Name    string
	Inputs  []string // primary input nets
	Outputs []string // primary output nets
	Gates   []Gate
}

// NumDFF counts flip-flops.
func (n *Netlist) NumDFF() int {
	d := 0
	for i := range n.Gates {
		if n.Gates[i].Type == Dff {
			d++
		}
	}
	return d
}

// DriverIndex maps each net to the driving gate index, or -1 for
// primary inputs.
func (n *Netlist) DriverIndex() (map[string]int, error) {
	idx := make(map[string]int, len(n.Gates)+len(n.Inputs))
	for _, pi := range n.Inputs {
		if _, dup := idx[pi]; dup {
			return nil, fmt.Errorf("netlist %q: duplicate primary input %q", n.Name, pi)
		}
		idx[pi] = -1
	}
	for gi := range n.Gates {
		g := &n.Gates[gi]
		if prev, dup := idx[g.Out]; dup {
			who := "a primary input"
			if prev >= 0 {
				who = fmt.Sprintf("gate %q", n.Gates[prev].Name)
			}
			return nil, fmt.Errorf("netlist %q: net %q driven by gate %q and %s", n.Name, g.Out, g.Name, who)
		}
		idx[g.Out] = gi
	}
	return idx, nil
}

// Validate checks structural sanity: unique gate names, every net
// driven exactly once, every fan-in and primary output driven, fan-in
// arities legal, and no combinational cycles (cycles must pass through
// a Dff).
func (n *Netlist) Validate() error {
	drivers, err := n.DriverIndex()
	if err != nil {
		return err
	}
	names := make(map[string]bool, len(n.Gates))
	for gi := range n.Gates {
		g := &n.Gates[gi]
		if g.Name == "" {
			return fmt.Errorf("netlist %q: gate %d has no name", n.Name, gi)
		}
		if names[g.Name] {
			return fmt.Errorf("netlist %q: duplicate gate name %q", n.Name, g.Name)
		}
		names[g.Name] = true
		lo, hi := g.Type.MaxFanin()
		if len(g.Ins) < lo || len(g.Ins) > hi {
			return fmt.Errorf("netlist %q: gate %q (%v) has %d inputs, want %d..%d",
				n.Name, g.Name, g.Type, len(g.Ins), lo, hi)
		}
		if g.Type == Lut {
			if len(g.TT) != 1<<uint(len(g.Ins)) {
				return fmt.Errorf("netlist %q: gate %q truth table has %d rows, want %d",
					n.Name, g.Name, len(g.TT), 1<<uint(len(g.Ins)))
			}
		} else if g.TT != nil {
			return fmt.Errorf("netlist %q: gate %q (%v) must not carry a truth table", n.Name, g.Name, g.Type)
		}
		for _, in := range g.Ins {
			if _, ok := drivers[in]; !ok {
				return fmt.Errorf("netlist %q: gate %q input %q is undriven", n.Name, g.Name, in)
			}
		}
	}
	for _, po := range n.Outputs {
		if _, ok := drivers[po]; !ok {
			return fmt.Errorf("netlist %q: primary output %q is undriven", n.Name, po)
		}
	}
	if _, err := n.topoOrder(drivers); err != nil {
		return err
	}
	return nil
}

// topoOrder returns gate indices in combinational topological order.
// Dff gates are sources (their outputs are state) and sinks (their
// inputs are computed last); they appear in the order after everything
// feeding them.
func (n *Netlist) topoOrder(drivers map[string]int) ([]int, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]uint8, len(n.Gates))
	order := make([]int, 0, len(n.Gates))
	var visit func(gi int) error
	visit = func(gi int) error {
		switch color[gi] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("netlist %q: combinational cycle through gate %q", n.Name, n.Gates[gi].Name)
		}
		color[gi] = grey
		if n.Gates[gi].Type != Dff {
			for _, in := range n.Gates[gi].Ins {
				if di := drivers[in]; di >= 0 && n.Gates[di].Type != Dff {
					if err := visit(di); err != nil {
						return err
					}
				}
			}
		}
		color[gi] = black
		order = append(order, gi)
		return nil
	}
	// Deterministic order: visit gates in index order.
	for gi := range n.Gates {
		if n.Gates[gi].Type == Dff {
			color[gi] = black
			continue
		}
		if err := visit(gi); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Stats summarizes the netlist.
type Stats struct {
	Gates, DFFs, Inputs, Outputs, Nets int
}

// Stats computes summary counts.
func (n *Netlist) Stats() Stats {
	nets := make(map[string]bool)
	for _, pi := range n.Inputs {
		nets[pi] = true
	}
	for i := range n.Gates {
		nets[n.Gates[i].Out] = true
		for _, in := range n.Gates[i].Ins {
			nets[in] = true
		}
	}
	return Stats{
		Gates: len(n.Gates), DFFs: n.NumDFF(),
		Inputs: len(n.Inputs), Outputs: len(n.Outputs), Nets: len(nets),
	}
}

// SortedNets returns every net name in sorted order (stable iteration
// helper for tests and tools).
func (n *Netlist) SortedNets() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, pi := range n.Inputs {
		add(pi)
	}
	for i := range n.Gates {
		add(n.Gates[i].Out)
		for _, in := range n.Gates[i].Ins {
			add(in)
		}
	}
	sort.Strings(out)
	return out
}
