package netlist

import "fmt"

// Structured circuit generators: real arithmetic and sequential
// netlists in the spirit of the ISCAS benchmarks (c6288 is an array
// multiplier). They give the mapper and partitioner inputs with real
// logic structure, and their behavior is checked against Go integer
// arithmetic in the tests.

// RippleAdder builds an n-bit ripple-carry adder: inputs a0..a{n-1},
// b0..b{n-1}, cin; outputs s0..s{n-1}, cout.
func RippleAdder(n int) (*Netlist, error) {
	if n < 1 {
		return nil, fmt.Errorf("netlist: adder width %d", n)
	}
	nl := &Netlist{Name: fmt.Sprintf("add%d", n)}
	for i := 0; i < n; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("b%d", i))
	}
	nl.Inputs = append(nl.Inputs, "cin")
	carry := "cin"
	for i := 0; i < n; i++ {
		carry = fullAdderInto(nl, fmt.Sprintf("fa%d", i),
			fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), carry, fmt.Sprintf("s%d", i))
		nl.Outputs = append(nl.Outputs, fmt.Sprintf("s%d", i))
	}
	// Promote the last carry to the cout output via a buffer.
	nl.Gates = append(nl.Gates, Gate{Name: "gcout", Type: Buf, Out: "cout", Ins: []string{carry}})
	nl.Outputs = append(nl.Outputs, "cout")
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// fullAdderInto emits sum and returns the carry-out net.
func fullAdderInto(nl *Netlist, prefix, a, b, cin, sum string) string {
	ab := prefix + "_ab"
	t1 := prefix + "_t1"
	t2 := prefix + "_t2"
	cout := prefix + "_c"
	nl.Gates = append(nl.Gates,
		Gate{Name: prefix + "_x1", Type: Xor, Out: ab, Ins: []string{a, b}},
		Gate{Name: prefix + "_x2", Type: Xor, Out: sum, Ins: []string{ab, cin}},
		Gate{Name: prefix + "_a1", Type: And, Out: t1, Ins: []string{a, b}},
		Gate{Name: prefix + "_a2", Type: And, Out: t2, Ins: []string{ab, cin}},
		Gate{Name: prefix + "_o1", Type: Or, Out: cout, Ins: []string{t1, t2}},
	)
	return cout
}

// ArrayMultiplier builds an n×n-bit array multiplier (the c6288
// structure): inputs a0.., b0..; outputs p0..p{2n-1}.
func ArrayMultiplier(n int) (*Netlist, error) {
	if n < 1 {
		return nil, fmt.Errorf("netlist: multiplier width %d", n)
	}
	nl := &Netlist{Name: fmt.Sprintf("mul%d", n)}
	for i := 0; i < n; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("b%d", i))
	}
	// Partial products pp[i][j] = a_i AND b_j.
	pp := make([][]string, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]string, n)
		for j := 0; j < n; j++ {
			net := fmt.Sprintf("pp%d_%d", i, j)
			nl.Gates = append(nl.Gates, Gate{
				Name: "g" + net, Type: And, Out: net,
				Ins: []string{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j)},
			})
			pp[i][j] = net
		}
	}
	// Column-wise carry-save reduction with full/half adders.
	cols := make([][]string, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cols[i+j] = append(cols[i+j], pp[i][j])
		}
	}
	fresh := 0
	tmp := func(kind string) string {
		fresh++
		return fmt.Sprintf("%s%d", kind, fresh)
	}
	for c := 0; c < 2*n; c++ {
		for len(cols[c]) > 1 {
			if len(cols[c]) >= 3 {
				a, b, ci := cols[c][0], cols[c][1], cols[c][2]
				cols[c] = cols[c][3:]
				s := tmp("ms")
				co := fullAdderInto(nl, tmp("mfa"), a, b, ci, s)
				cols[c] = append(cols[c], s)
				if c+1 < 2*n {
					cols[c+1] = append(cols[c+1], co)
				}
			} else {
				a, b := cols[c][0], cols[c][1]
				cols[c] = cols[c][2:]
				s, co := tmp("hs"), tmp("hc")
				nl.Gates = append(nl.Gates,
					Gate{Name: "g" + s, Type: Xor, Out: s, Ins: []string{a, b}},
					Gate{Name: "g" + co, Type: And, Out: co, Ins: []string{a, b}},
				)
				cols[c] = append(cols[c], s)
				if c+1 < 2*n {
					cols[c+1] = append(cols[c+1], co)
				}
			}
		}
	}
	for c := 0; c < 2*n; c++ {
		out := fmt.Sprintf("p%d", c)
		if len(cols[c]) == 1 {
			nl.Gates = append(nl.Gates, Gate{Name: "g" + out, Type: Buf, Out: out, Ins: []string{cols[c][0]}})
		} else {
			// Top column can be empty for n = 1.
			nl.Gates = append(nl.Gates, Gate{Name: "g" + out, Type: Xor, Out: out, Ins: []string{pp[0][0], pp[0][0]}})
		}
		nl.Outputs = append(nl.Outputs, out)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// Counter builds an n-bit synchronous binary counter with enable:
// input en; outputs q0..q{n-1}. Each cycle with en=1 increments.
func Counter(n int) (*Netlist, error) {
	if n < 1 {
		return nil, fmt.Errorf("netlist: counter width %d", n)
	}
	nl := &Netlist{Name: fmt.Sprintf("cnt%d", n), Inputs: []string{"en"}}
	// carry chain: c0 = en; ci+1 = ci AND qi; di = qi XOR ci.
	carry := "en"
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("q%d", i)
		d := fmt.Sprintf("d%d", i)
		nl.Gates = append(nl.Gates,
			Gate{Name: "gx" + q, Type: Xor, Out: d, Ins: []string{q, carry}},
			Gate{Name: "ff" + q, Type: Dff, Out: q, Ins: []string{d}},
		)
		if i < n-1 {
			nc := fmt.Sprintf("c%d", i+1)
			nl.Gates = append(nl.Gates, Gate{Name: "ga" + q, Type: And, Out: nc, Ins: []string{carry, q}})
			carry = nc
		}
		nl.Outputs = append(nl.Outputs, q)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// LFSR builds an n-bit Fibonacci linear feedback shift register with
// taps at the final and first stage (x^n + x + 1 style): input seedIn
// (ORed into the feedback so the register can leave the all-zero
// state); outputs q0..q{n-1}.
func LFSR(n int) (*Netlist, error) {
	if n < 2 {
		return nil, fmt.Errorf("netlist: LFSR width %d", n)
	}
	nl := &Netlist{Name: fmt.Sprintf("lfsr%d", n), Inputs: []string{"seedIn"}}
	fb := "fb"
	nl.Gates = append(nl.Gates,
		Gate{Name: "gfb0", Type: Xor, Out: "fbx", Ins: []string{fmt.Sprintf("q%d", n-1), "q0"}},
		Gate{Name: "gfb1", Type: Or, Out: fb, Ins: []string{"fbx", "seedIn"}},
	)
	prev := fb
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("q%d", i)
		nl.Gates = append(nl.Gates, Gate{Name: "ff" + q, Type: Dff, Out: q, Ins: []string{prev}})
		prev = q
		nl.Outputs = append(nl.Outputs, q)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// ALUSlice builds a w-bit mini-ALU: op selects between ADD (op=0) and
// bitwise AND/XOR combinations; inputs a*, b*, op0, op1; outputs y*.
// The selection logic gives the mapper multi-output cones with shared
// and private inputs.
func ALUSlice(w int) (*Netlist, error) {
	if w < 1 {
		return nil, fmt.Errorf("netlist: ALU width %d", w)
	}
	nl := &Netlist{Name: fmt.Sprintf("alu%d", w), Inputs: []string{"op0", "op1"}}
	for i := 0; i < w; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < w; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("b%d", i))
	}
	// ADD path.
	carry := "op1" // borrow op1 as carry-in for variety
	for i := 0; i < w; i++ {
		carry = fullAdderInto(nl, fmt.Sprintf("afa%d", i),
			fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), carry, fmt.Sprintf("sum%d", i))
	}
	for i := 0; i < w; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		and := fmt.Sprintf("and%d", i)
		xor := fmt.Sprintf("xr%d", i)
		nl.Gates = append(nl.Gates,
			Gate{Name: "g" + and, Type: And, Out: and, Ins: []string{a, b}},
			Gate{Name: "g" + xor, Type: Xor, Out: xor, Ins: []string{a, b}},
		)
		// y = op0 ? (op1 ? and : xor) : sum   via AND-OR selection.
		selA := fmt.Sprintf("sa%d", i)
		selX := fmt.Sprintf("sx%d", i)
		selS := fmt.Sprintf("ss%d", i)
		nop0 := fmt.Sprintf("n0_%d", i)
		y := fmt.Sprintf("y%d", i)
		nl.Gates = append(nl.Gates,
			Gate{Name: "g" + nop0, Type: Not, Out: nop0, Ins: []string{"op0"}},
			Gate{Name: "g" + selA, Type: And, Out: selA, Ins: []string{"op0", "op1", and}},
			Gate{Name: "g" + selX, Type: And, Out: selX, Ins: []string{"op0", fmt.Sprintf("n1_%d", i), xor}},
			Gate{Name: "gn1_" + fmt.Sprint(i), Type: Not, Out: fmt.Sprintf("n1_%d", i), Ins: []string{"op1"}},
			Gate{Name: "g" + selS, Type: And, Out: selS, Ins: []string{nop0, fmt.Sprintf("sum%d", i)}},
			Gate{Name: "g" + y, Type: Or, Out: y, Ins: []string{selA, selX, selS}},
		)
		nl.Outputs = append(nl.Outputs, y)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}
