package netlist

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers. `go test` exercises the seed
// corpus; `go test -fuzz=FuzzRead` explores further.

func FuzzRead(f *testing.F) {
	seeds := []string{
		"circuit c\ninput a b\noutput y\nand y a b\n",
		"circuit c\ninput a\noutput y\nlut y a @10\n",
		"# only a comment\n",
		"circuit x\ninput a\noutput q\ndff q a\n",
		"circuit c\ninput a\noutput y\nand y\n",
		"circuit c\ncircuit d\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		// Anything accepted must validate, survive a write/read round
		// trip, and simulate one cycle without crashing.
		if err := n.Validate(); err != nil {
			t.Fatalf("accepted invalid netlist: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, buf.String())
		}
		sim, err := NewSimulator(back)
		if err != nil {
			t.Fatalf("simulator: %v", err)
		}
		if _, err := sim.Step(nil); err != nil {
			t.Fatalf("step: %v", err)
		}
	})
}

// FuzzParseNetlist drives ReadLimits with deliberately tight caps so
// the limit checks themselves get fuzzed: the seeds each trip one cap.
// Whatever the input, the parser must return cleanly — any failure
// must be a typed *ParseError (optionally wrapping a *LimitError),
// never a panic or an untyped error.
func FuzzParseNetlist(f *testing.F) {
	seeds := []string{
		// Trips MaxGates=4.
		"circuit c\ninput a\noutput y5\nnot y1 a\nnot y2 y1\nnot y3 y2\nnot y4 y3\nnot y5 y4\n",
		// Trips MaxPins=8.
		"circuit c\ninput a b c d e f g h i\noutput y\nand y a b c d e f g h i\n",
		// Trips MaxFanout=4.
		"circuit c\ninput a\noutput y\nand y a a a a a\n",
		// Trips MaxLutInputs=4.
		"circuit c\ninput a b c d e\noutput y\nlut y a b c d e @10101010101010101010101010101010\n",
		// Trips MaxLineBytes=256.
		"circuit c\ninput a\noutput y\nand y a " + strings.Repeat("a ", 200) + "\n",
		// Truncated gate record.
		"circuit c\ninput a\noutput y\nand y\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lim := Limits{MaxLineBytes: 256, MaxGates: 4, MaxPins: 8, MaxFanout: 4, MaxLutInputs: 4}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ReadLimits(strings.NewReader(src), lim)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) && !strings.HasPrefix(err.Error(), "netlist:") {
				t.Fatalf("untyped parse failure: %v", err)
			}
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("accepted invalid netlist: %v", err)
		}
		if len(n.Gates) > lim.MaxGates {
			t.Fatalf("limit leak: %d gates accepted, cap %d", len(n.Gates), lim.MaxGates)
		}
	})
}

func FuzzReadBLIF(f *testing.F) {
	seeds := []string{
		blifFullAdder,
		".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
		".model m\n.inputs d\n.outputs q\n.latch d q re clk 0\n.end\n",
		".model m\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n-1 1\n.end\n",
		".model m\n.outputs y\n.names y\n1\n.end\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ReadBLIF(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("accepted invalid netlist: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, n); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := ReadBLIF(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
