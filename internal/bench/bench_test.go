package bench

import (
	"math"
	"sync"
	"testing"

	"fpgapart/internal/hypergraph"
)

func TestGenerateValidGraph(t *testing.T) {
	g, err := Generate(Params{Name: "t", Cells: 200, PrimaryIn: 20, PrimaryOut: 10, DFFs: 40, Seed: 1, Clustering: 0.5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c := g.NumCells(); c < 190 || c > 212 {
		t.Fatalf("cells = %d, want ~200", c)
	}
	if g.NumDFF() != 40 {
		t.Fatalf("dffs = %d, want 40", g.NumDFF())
	}
	if g.NumTerminals() < 30 {
		t.Fatalf("terminals = %d, want ≥ 30", g.NumTerminals())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Name: "d", Cells: 100, PrimaryIn: 10, PrimaryOut: 5, Seed: 7}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNets() != b.NumNets() || a.NumPins() != b.NumPins() || a.NumTerminals() != b.NumTerminals() {
		t.Fatalf("nondeterministic generation: %d/%d/%d vs %d/%d/%d",
			a.NumNets(), a.NumPins(), a.NumTerminals(), b.NumNets(), b.NumPins(), b.NumTerminals())
	}
	for i := range a.Cells {
		if a.Cells[i].Name != b.Cells[i].Name || len(a.Cells[i].Inputs) != len(b.Cells[i].Inputs) {
			t.Fatalf("cell %d differs", i)
		}
		for j := range a.Cells[i].Inputs {
			if a.Cells[i].Inputs[j] != b.Cells[i].Inputs[j] {
				t.Fatalf("cell %d input %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(Params{Cells: 100, PrimaryIn: 10, PrimaryOut: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{Cells: 100, PrimaryIn: 10, PrimaryOut: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := a.NumCells() == b.NumCells()
	for i := 0; same && i < a.NumCells(); i++ {
		if len(a.Cells[i].Inputs) != len(b.Cells[i].Inputs) {
			same = false
			break
		}
		for j := range a.Cells[i].Inputs {
			if a.Cells[i].Inputs[j] != b.Cells[i].Inputs[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical wiring")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, err := Generate(Params{Cells: 0, PrimaryIn: 1}); err == nil {
		t.Fatal("expected error for zero cells")
	}
	if _, err := Generate(Params{Cells: 1, PrimaryIn: 0}); err == nil {
		t.Fatal("expected error for zero inputs")
	}
	if _, err := Generate(Params{Cells: 1, PrimaryIn: 1, MaxInputs: 1}); err == nil {
		t.Fatal("expected error for MaxInputs < 2")
	}
}

// The Fig. 3 shape: mostly multi-output cells, a small ψ=0* bin, the
// bulk at ψ ≥ 1.
func TestGenerateDistributionShape(t *testing.T) {
	g, err := Generate(Params{Cells: 1000, PrimaryIn: 50, PrimaryOut: 20, Seed: 3, Clustering: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	d := g.Distribution()
	single := float64(d.SingleOutput) / float64(d.Total)
	if single < 0.05 || single > 0.30 {
		t.Fatalf("single-output fraction = %.2f, want ~0.15", single)
	}
	multiZero := float64(d.MultiZero) / float64(d.Total)
	if multiZero > 0.25 {
		t.Fatalf("ψ=0* fraction = %.2f, too high", multiZero)
	}
	psiPos := 0
	for psi, n := range d.ByPsi {
		if psi < 1 {
			t.Fatalf("ByPsi key %d < 1", psi)
		}
		psiPos += n
	}
	if frac := float64(psiPos) / float64(d.Total); frac < 0.5 {
		t.Fatalf("ψ≥1 fraction = %.2f, want majority", frac)
	}
}

func TestGenerateCellPinsWithinXC3000Limits(t *testing.T) {
	g, err := Generate(Params{Cells: 500, PrimaryIn: 30, PrimaryOut: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Cells {
		c := &g.Cells[i]
		if len(c.Inputs) > 5 || len(c.Outputs) > 2 {
			t.Fatalf("cell %s has %d inputs / %d outputs", c.Name, len(c.Inputs), len(c.Outputs))
		}
		if len(c.Outputs) < 1 {
			t.Fatalf("cell %s has no outputs", c.Name)
		}
	}
}

func TestGenerateNoDuplicateNetsPerCell(t *testing.T) {
	g, err := Generate(Params{Cells: 300, PrimaryIn: 20, PrimaryOut: 10, Seed: 11, Clustering: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Cells {
		c := &g.Cells[i]
		seen := map[int32]bool{}
		for _, n := range c.Inputs {
			if seen[int32(n)] {
				t.Fatalf("cell %s connects net %d twice", c.Name, n)
			}
			seen[int32(n)] = true
		}
		for _, n := range c.Outputs {
			if seen[int32(n)] {
				t.Fatalf("cell %s output net %d collides", c.Name, n)
			}
			seen[int32(n)] = true
		}
	}
}

func TestSuiteCircuits(t *testing.T) {
	s := Suite()
	if len(s) != 9 {
		t.Fatalf("suite has %d circuits, want 9", len(s))
	}
	names := map[string]bool{}
	for _, c := range s {
		if names[c.Name] {
			t.Fatalf("duplicate circuit %s", c.Name)
		}
		names[c.Name] = true
		if c.Params.Cells != c.CLBs {
			t.Fatalf("%s: params/targets disagree", c.Name)
		}
	}
	for _, want := range []string{"c3540", "c6288", "s38584"} {
		if !names[want] {
			t.Fatalf("missing circuit %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	c, ok := ByName("s9234")
	if !ok || c.CLBs != 454 {
		t.Fatalf("ByName(s9234) = %+v, %v", c, ok)
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("ByName(nonesuch) should fail")
	}
}

// The generated substitutes must land near the Table II targets.
func TestSuiteMatchesTargets(t *testing.T) {
	for _, c := range Suite() {
		if testing.Short() && c.CLBs > 1000 {
			continue
		}
		g := c.MustBuild()
		if dev := math.Abs(float64(g.TotalArea()-c.CLBs)) / float64(c.CLBs); dev > 0.06 {
			t.Errorf("%s: CLBs = %d, target %d (dev %.0f%%)", c.Name, g.TotalArea(), c.CLBs, 100*dev)
		}
		iobs := g.NumTerminals()
		if dev := math.Abs(float64(iobs-c.IOBs)) / float64(c.IOBs); dev > 0.25 {
			t.Errorf("%s: IOBs = %d, target %d (dev %.0f%%)", c.Name, iobs, c.IOBs, 100*dev)
		}
		if g.NumDFF() != c.DFF {
			t.Errorf("%s: DFFs = %d, want %d", c.Name, g.NumDFF(), c.DFF)
		}
	}
}

func TestBuildMemoizes(t *testing.T) {
	c, _ := ByName("c3540")
	a := c.MustBuild()
	b := c.MustBuild()
	if a != b {
		t.Fatal("Build did not memoize")
	}
}

func TestSmall(t *testing.T) {
	c, _ := ByName("s38584")
	s := c.Small(10)
	if s.Params.Cells != 294 {
		t.Fatalf("scaled cells = %d", s.Params.Cells)
	}
	if _, err := s.Build(); err != nil {
		t.Fatalf("small build: %v", err)
	}
	if c.Small(1).Name != c.Name {
		t.Fatal("Small(1) should be identity")
	}
}

func TestSuiteIsConnected(t *testing.T) {
	for _, c := range Suite()[:4] {
		g := c.MustBuild()
		if comps := g.Components(); comps != 1 {
			t.Errorf("%s: %d components, want 1", c.Name, comps)
		}
	}
}

func TestBuildCacheConcurrent(t *testing.T) {
	c, _ := ByName("c3540")
	var wg sync.WaitGroup
	graphs := make([]*hypergraph.Graph, 8)
	for i := range graphs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graphs[i] = c.MustBuild()
		}(i)
	}
	wg.Wait()
	for _, g := range graphs[1:] {
		if g != graphs[0] {
			t.Fatal("concurrent builds returned different graphs")
		}
	}
}
