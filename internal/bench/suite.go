package bench

import (
	"fmt"
	"sync"

	"fpgapart/internal/hypergraph"
)

// Circuit describes one benchmark of the paper's evaluation suite with
// its published post-mapping characteristics (Table II) used as
// generation targets.
type Circuit struct {
	Name   string
	Params Params
	// Published Table II characteristics of the XC3000-mapped circuit
	// (the targets the synthetic substitute reproduces).
	CLBs, IOBs, DFF int
}

// Suite returns the paper's nine benchmark circuits: the ISCAS-85
// combinational circuits c3540–c7552 and the ISCAS-89 sequential
// circuits s5378–s38584 (MCNC Partitioning93 set). Sequential circuits
// get a higher clustering knob, matching the paper's observation that
// their cells are more clustered.
func Suite() []Circuit {
	mk := func(name string, cells, pi, po, dff int, clustering, distant float64, seed int64) Circuit {
		return Circuit{
			Name: name,
			Params: Params{
				Name: name, Cells: cells, PrimaryIn: pi, PrimaryOut: po,
				DFFs: dff, Clustering: clustering, DistantPackFrac: distant, Seed: seed,
			},
			CLBs: cells, IOBs: pi + po, DFF: dff,
		}
	}
	// The sequential circuits get a higher distant-packing fraction:
	// register clusters let the mapper pack across regions more often,
	// which is where the paper sees its largest replication wins.
	return []Circuit{
		mk("c3540", 283, 50, 22, 0, 0.35, 0.04, 3540),
		mk("c5315", 545, 178, 123, 0, 0.35, 0.05, 5315),
		mk("c6288", 833, 32, 32, 0, 0.80, 0.03, 6288), // array multiplier: highly local
		mk("c7552", 717, 207, 108, 0, 0.35, 0.05, 7552),
		mk("s5378", 381, 35, 49, 179, 0.60, 0.06, 5378),
		mk("s9234", 454, 36, 39, 211, 0.65, 0.07, 9234),
		mk("s13207", 915, 62, 152, 638, 0.65, 0.07, 13207),
		mk("s15850", 1052, 77, 150, 534, 0.65, 0.07, 15850),
		mk("s38584", 2941, 38, 304, 1426, 0.70, 0.07, 38584),
	}
}

// ByName returns the suite circuit with the given name.
func ByName(name string) (Circuit, bool) {
	for _, c := range Suite() {
		if c.Name == name {
			return c, true
		}
	}
	return Circuit{}, false
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*hypergraph.Graph{}
)

// Build generates (and memoizes) the synthetic substitute for the
// circuit. Generation is deterministic, so the cache is purely a
// speed-up for experiment drivers that revisit circuits.
func (c Circuit) Build() (*hypergraph.Graph, error) {
	key := fmt.Sprintf("%s/%d", c.Name, c.Params.Seed)
	cacheMu.Lock()
	g, ok := cache[key]
	cacheMu.Unlock()
	if ok {
		return g, nil
	}
	g, err := Generate(c.Params)
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s: %w", c.Name, err)
	}
	cacheMu.Lock()
	cache[key] = g
	cacheMu.Unlock()
	return g, nil
}

// MustBuild is Build that panics on error, for tests and benchmarks.
func (c Circuit) MustBuild() *hypergraph.Graph {
	g, err := c.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Small returns a reduced copy of the circuit (cells scaled by 1/f)
// for fast benchmarks and tests; characteristics scale accordingly.
func (c Circuit) Small(f int) Circuit {
	if f <= 1 {
		return c
	}
	out := c
	out.Name = fmt.Sprintf("%s/%d", c.Name, f)
	out.Params.Name = out.Name
	out.Params.Cells = max(4, c.Params.Cells/f)
	out.Params.PrimaryIn = max(2, c.Params.PrimaryIn/f)
	out.Params.PrimaryOut = max(1, c.Params.PrimaryOut/f)
	out.Params.DFFs = c.Params.DFFs / f
	out.CLBs = out.Params.Cells
	out.IOBs = out.Params.PrimaryIn + out.Params.PrimaryOut
	out.DFF = out.Params.DFFs
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
