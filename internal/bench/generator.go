// Package bench provides deterministic synthetic benchmark circuits.
//
// The paper evaluates on the MCNC Partitioning93 set (ISCAS-85/89
// circuits technology-mapped into the Xilinx XC3000 family with XACT).
// Those mapped netlists are not available offline, so this package
// generates substitutes that reproduce the published post-mapping
// characteristics (Table II: #CLBs, #IOBs, #DFF, #NETs, #PINs) and the
// Fig. 3 distribution of cells over replication potential, with a
// clustering knob making the sequential s-circuits more clustered than
// the combinational c-circuits. See DESIGN.md §3 for the substitution
// rationale.
//
// Generation mirrors real technology mapping in two stages. Stage 1
// emits a stream of single-output LUTs with windowed locality (real
// netlists have bounded bisection width) plus occasional "twin" LUTs
// sharing all inputs (sum/carry style, the ψ=0* population). Stage 2
// packs LUT pairs into two-output CLBs under the XC3000 constraint of
// at most five distinct inputs — mostly nearby partners, but a
// fraction of distant ones, reproducing the packing artifacts that
// make functional replication profitable on real mapped circuits.
package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"fpgapart/internal/hypergraph"
)

// Params controls synthetic mapped-circuit generation.
type Params struct {
	Name       string
	Cells      int // CLB target (each cell has area 1); actual may differ by a few
	PrimaryIn  int
	PrimaryOut int // lower bound; dangling nets are promoted to POs
	DFFs       int // flip-flops to distribute over cells (≤2 per CLB)
	Seed       int64

	// Clustering in [0,1): larger values shrink the locality window,
	// producing the tightly clustered structure the paper observes in
	// the sequential benchmarks.
	Clustering float64

	// TwoOutputFrac is the fraction of two-output CLBs (Fig. 3 shows
	// ~85% of mapped cells are multi-output). Default 0.85.
	TwoOutputFrac float64
	// PsiZeroFrac is the fraction of CLBs holding twin LUTs that share
	// every input (ψ = 0, the "0*" bin). Default 0.10.
	PsiZeroFrac float64
	// DistantPackFrac is the fraction of packed CLBs whose two LUTs
	// come from unrelated regions of the netlist (area-driven packing
	// leftovers). Default 0.08.
	DistantPackFrac float64
	// MaxInputs caps distinct CLB inputs (XC3000: 5). Default 5.
	MaxInputs int
}

func (p Params) withDefaults() Params {
	if p.TwoOutputFrac == 0 {
		p.TwoOutputFrac = 0.85
	}
	if p.PsiZeroFrac == 0 {
		p.PsiZeroFrac = 0.10
	}
	if p.DistantPackFrac == 0 {
		p.DistantPackFrac = 0.08
	}
	if p.MaxInputs == 0 {
		p.MaxInputs = 5
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("synth%d", p.Seed)
	}
	return p
}

// lut is one stage-1 logical function.
type lut struct {
	inputs []hypergraph.NetID
	out    hypergraph.NetID
	twin   int // index of the twin sharing all inputs, or -1
}

// Generate builds a valid mapped-circuit hypergraph from the
// parameters. The same Params always produce the same circuit.
func Generate(p Params) (*hypergraph.Graph, error) {
	p = p.withDefaults()
	if p.Cells < 1 || p.PrimaryIn < 1 {
		return nil, fmt.Errorf("bench: need at least 1 cell and 1 primary input (got %d, %d)", p.Cells, p.PrimaryIn)
	}
	if p.MaxInputs < 2 {
		return nil, fmt.Errorf("bench: MaxInputs must be ≥ 2, got %d", p.MaxInputs)
	}
	r := rand.New(rand.NewSource(p.Seed))
	b := hypergraph.NewBuilder(p.Name)

	// CLB plan: twins (ψ=0 pairs), packed pairs, singles.
	twinCLBs := int(p.PsiZeroFrac*float64(p.Cells) + 0.5)
	packedCLBs := int((p.TwoOutputFrac-p.PsiZeroFrac)*float64(p.Cells) + 0.5)
	if packedCLBs < 0 {
		packedCLBs = 0
	}
	singleCLBs := p.Cells - twinCLBs - packedCLBs
	if singleCLBs < 0 {
		singleCLBs = 0
	}
	nLUTs := 2*twinCLBs + 2*packedCLBs + singleCLBs

	// Primary inputs appear in bus-sized bursts at positions spread
	// over the LUT sequence: real circuits group inputs into buses
	// feeding localized cones, so a min-cut carve can swallow a whole
	// bus with a small cut.
	pis := make([]hypergraph.NetID, p.PrimaryIn)
	piDue := make([]int, p.PrimaryIn)
	for i := 0; i < p.PrimaryIn; i++ {
		pis[i] = b.InputNet(fmt.Sprintf("pi%d", i))
	}
	for i, busStart := 0, true; i < p.PrimaryIn; {
		size := 8 + r.Intn(17)
		if size > p.PrimaryIn-i {
			size = p.PrimaryIn - i
		}
		pos := 0
		if !busStart {
			pos = r.Intn(int(0.92*float64(nLUTs)) + 1)
		}
		for j := 0; j < size; j++ {
			piDue[i] = pos
			i++
		}
		busStart = false
	}
	sort.Ints(piDue)

	// ---- Stage 1: the logical LUT stream -------------------------------

	nextPI := 0
	avail := make([]hypergraph.NetID, 0, p.PrimaryIn+nLUTs)
	var unconsumed []hypergraph.NetID
	consumed := make(map[hypergraph.NetID]bool)

	pickNet := func(taken map[hypergraph.NetID]bool) hypergraph.NetID {
		for attempt := 0; attempt < 64; attempt++ {
			var n hypergraph.NetID
			prefer := 0.40
			if len(unconsumed) > p.PrimaryOut {
				prefer = 0.90
			}
			if len(unconsumed) > 0 && r.Float64() < prefer {
				idx := biasedIndex(r, len(unconsumed), p.Clustering)
				n = unconsumed[idx]
				if consumed[n] {
					unconsumed[idx] = unconsumed[len(unconsumed)-1]
					unconsumed = unconsumed[:len(unconsumed)-1]
					attempt--
					continue
				}
			} else {
				n = avail[biasedIndex(r, len(avail), p.Clustering)]
			}
			if !taken[n] {
				return n
			}
		}
		for i := len(avail) - 1; i >= 0; i-- {
			if !taken[avail[i]] {
				return avail[i]
			}
		}
		return avail[0]
	}

	type pending struct {
		net hypergraph.NetID
		at  int
	}
	var piWait []pending
	stale := nLUTs / 20
	if stale < 5 {
		stale = 5
	}

	luts := make([]lut, 0, nLUTs)
	twinsLeft := twinCLBs
	for li := 0; li < nLUTs; li++ {
		for nextPI < p.PrimaryIn && piDue[nextPI] <= li {
			avail = append(avail, pis[nextPI])
			unconsumed = append(unconsumed, pis[nextPI])
			piWait = append(piWait, pending{pis[nextPI], li})
			nextPI++
		}
		for len(piWait) > 0 && consumed[piWait[0].net] {
			piWait = piWait[1:]
		}
		// LUT fan-in 2–4 (two 4-input functions share the CLB's five
		// distinct inputs on the real part).
		nIn := 2
		switch v := r.Float64(); {
		case v < 0.45:
			nIn = 2
		case v < 0.90:
			nIn = 3
		default:
			nIn = 4
		}
		if nIn > len(avail) {
			nIn = len(avail)
		}
		taken := make(map[hypergraph.NetID]bool, nIn)
		inputs := make([]hypergraph.NetID, nIn)
		force := 0
		if need := len(piWait) - (nLUTs - li - 1); need > force {
			force = need
		}
		if force == 0 && len(piWait) > 0 && li-piWait[0].at > stale {
			force = 1
		}
		if force > nIn {
			force = nIn
		}
		for j := 0; j < force; j++ {
			n := piWait[j].net
			taken[n] = true
			inputs[j] = n
			consumed[n] = true
		}
		piWait = piWait[force:]
		for j := force; j < nIn; j++ {
			n := pickNet(taken)
			taken[n] = true
			inputs[j] = n
			consumed[n] = true
		}
		out := b.Net(fmt.Sprintf("w%d", li))
		cur := lut{inputs: inputs, out: out, twin: -1}
		avail = append(avail, out)
		unconsumed = appendUnconsumed(unconsumed, consumed, out)

		// Emit a twin (shared inputs, second output) when the plan
		// still needs ψ=0 pairs.
		slotsLeft := nLUTs - li - 1
		if twinsLeft > 0 && slotsLeft >= 1 &&
			(r.Float64() < float64(2*twinsLeft)/float64(slotsLeft+1) || slotsLeft <= 2*twinsLeft) {
			li++
			tout := b.Net(fmt.Sprintf("w%d", li))
			cur.twin = len(luts) + 1
			luts = append(luts, cur)
			luts = append(luts, lut{inputs: inputs, out: tout, twin: len(luts) - 1})
			avail = append(avail, tout)
			unconsumed = appendUnconsumed(unconsumed, consumed, tout)
			twinsLeft--
			continue
		}
		luts = append(luts, cur)
	}

	// ---- Stage 2: CLB packing ------------------------------------------

	type clb struct{ members []int }
	var clbs []clb
	used := make([]bool, len(luts))
	// Twins pack with each other by construction.
	for i := range luts {
		if luts[i].twin >= 0 && !used[i] {
			used[i], used[luts[i].twin] = true, true
			clbs = append(clbs, clb{members: []int{i, luts[i].twin}})
		}
	}
	unionSize := func(a, b []hypergraph.NetID) int {
		m := make(map[hypergraph.NetID]bool, len(a)+len(b))
		for _, n := range a {
			m[n] = true
		}
		for _, n := range b {
			m[n] = true
		}
		return len(m)
	}
	shared := func(a, b []hypergraph.NetID) int {
		m := make(map[hypergraph.NetID]bool, len(a))
		for _, n := range a {
			m[n] = true
		}
		k := 0
		for _, n := range b {
			if m[n] {
				k++
			}
		}
		return k
	}
	// canPack rejects pairs that would make a CLB consume its own
	// output (no combinational feedback through a mapped cell).
	canPack := func(i, j int) bool {
		if unionSize(luts[i].inputs, luts[j].inputs) > p.MaxInputs {
			return false
		}
		for _, n := range luts[j].inputs {
			if n == luts[i].out {
				return false
			}
		}
		for _, n := range luts[i].inputs {
			if n == luts[j].out {
				return false
			}
		}
		return true
	}
	var free []int
	for i := range luts {
		if !used[i] {
			free = append(free, i)
		}
	}
	pairsLeft := packedCLBs
	for fi := 0; fi < len(free); fi++ {
		i := free[fi]
		if used[i] {
			continue
		}
		used[i] = true
		if pairsLeft <= 0 {
			clbs = append(clbs, clb{members: []int{i}})
			continue
		}
		// Find a partner: mostly nearby (same region), sometimes a
		// distant leftover — the packing artifact functional
		// replication untangles.
		distant := r.Float64() < p.DistantPackFrac
		partner := -1
		for try := 0; try < 16; try++ {
			if try >= 8 && partner >= 0 {
				break // enough candidates scanned for a sharing partner
			}
			var cj int
			if distant {
				// Distant, but within a bounded region (real packers
				// work region-locally): 40–400 free-list positions
				// ahead, so the per-boundary count of straddling CLBs
				// does not grow with circuit size.
				off := 40 + r.Intn(360)
				if fi+1+off >= len(free) {
					off = r.Intn(len(free) - fi)
				}
				cj = free[fi+off]
			} else {
				span := 14
				if fi+1+span > len(free) {
					span = len(free) - fi - 1
				}
				if span <= 0 {
					break
				}
				cj = free[fi+1+r.Intn(span)]
			}
			if used[cj] || cj == i || !canPack(i, cj) {
				continue
			}
			// Real packers maximize input sharing to fit the CLB's
			// five distinct inputs; prefer the partner with the most
			// shared nets among a few candidates.
			if partner < 0 || shared(luts[i].inputs, luts[cj].inputs) > shared(luts[i].inputs, luts[partner].inputs) {
				partner = cj
			}
			if try < 8 {
				continue // keep scanning for a better-sharing partner
			}
		}
		if partner >= 0 {
			used[partner] = true
			clbs = append(clbs, clb{members: []int{i, partner}})
			pairsLeft--
		} else {
			clbs = append(clbs, clb{members: []int{i}})
		}
	}

	// ---- Emit cells ------------------------------------------------------

	dffLeft := p.DFFs
	for ci, c := range clbs {
		var inputs []hypergraph.NetID
		pos := make(map[hypergraph.NetID]int)
		for _, li := range c.members {
			for _, n := range luts[li].inputs {
				if _, ok := pos[n]; !ok {
					pos[n] = len(inputs)
					inputs = append(inputs, n)
				}
			}
		}
		outputs := make([]hypergraph.NetID, len(c.members))
		dep := make([][]int, len(c.members))
		for oi, li := range c.members {
			outputs[oi] = luts[li].out
			row := make([]int, len(inputs))
			for _, n := range luts[li].inputs {
				row[pos[n]] = 1
			}
			dep[oi] = row
		}
		dffs := 0
		if dffLeft > 0 {
			want := float64(dffLeft) / float64(len(clbs)-ci)
			if r.Float64() < want {
				dffs = 1
				if want > 1 && dffLeft > 1 && r.Float64() < want-1 {
					dffs = 2
				}
			}
			if dffs > dffLeft {
				dffs = dffLeft
			}
			dffLeft -= dffs
		}
		b.AddCell(hypergraph.CellSpec{
			Name:    fmt.Sprintf("u%d", ci),
			Inputs:  inputs,
			Outputs: outputs,
			DepBits: dep,
			DFFs:    dffs,
		})
	}

	// Promote dangling nets to primary outputs, then top up to the
	// requested PO count with random driven nets. Primary-input nets
	// are excluded in both passes (PIs are force-consumed above).
	isPI := make(map[hypergraph.NetID]bool, len(pis))
	for _, n := range pis {
		isPI[n] = true
	}
	poCount := 0
	for _, n := range unconsumed {
		if !consumed[n] && !isPI[n] {
			b.MarkOutput(n)
			poCount++
		}
	}
	for tries := 0; poCount < p.PrimaryOut && tries < 64*p.PrimaryOut; tries++ {
		n := avail[r.Intn(len(avail))]
		if isPI[n] {
			continue
		}
		b.MarkOutput(n)
		poCount++
	}
	return b.Build()
}

// appendUnconsumed keeps the unconsumed pool compact by dropping
// already-consumed entries opportunistically.
func appendUnconsumed(pool []hypergraph.NetID, consumed map[hypergraph.NetID]bool, add ...hypergraph.NetID) []hypergraph.NetID {
	if len(pool) > 64 {
		w := 0
		for _, n := range pool {
			if !consumed[n] {
				pool[w] = n
				w++
			}
		}
		pool = pool[:w]
	}
	return append(pool, add...)
}

// biasedIndex picks an index in [0,n): uniform when clustering is 0;
// otherwise exponentially windowed from the tail (recent nets), the
// window shrinking as clustering → 1. Real mapped netlists have
// bounded bisection width; the exponential tail adds the occasional
// long-range net.
func biasedIndex(r *rand.Rand, n int, clustering float64) int {
	if n == 1 {
		return 0
	}
	if clustering <= 0 {
		return r.Intn(n)
	}
	window := 8 + (1-clustering)*50
	off := int(r.ExpFloat64() * window)
	if off >= n {
		return r.Intn(n)
	}
	return n - 1 - off
}
