package bench

import (
	"fmt"
	"math"
	"math/rand"

	"fpgapart/internal/hypergraph"
)

// RentParams controls the Rent's-rule generator, the large-instance
// companion to Generate. Where Generate reproduces the paper's Table II
// circuits (10³ cells with mapped-CLB packing artifacts), GenerateRent
// targets 10⁵–10⁶ cells with a controlled interconnect profile: input
// source distances follow Donath's power-law model, so a contiguous
// window of B cells exposes ~B^p external nets — Rent's rule T = t·B^p
// with the requested exponent.
type RentParams struct {
	Name       string
	Cells      int
	PrimaryIn  int
	PrimaryOut int // lower bound; dangling nets are promoted to POs
	DFFs       int
	// Rent is the Rent exponent p in (0,1): the distance d from a cell
	// back to each input's driver is drawn from the truncated power-law
	// density ∝ d^−(2−p). Larger p means longer wires and a harder
	// partitioning instance. Default 0.65 (typical mapped logic).
	Rent float64
	// TwoOutputFrac is the fraction of two-output cells, emitted with
	// split dependence rows so functional replication has ψ > 0 targets.
	// Default 0.15.
	TwoOutputFrac float64
	Seed          int64
}

func (p RentParams) withDefaults() RentParams {
	if p.Rent == 0 {
		p.Rent = 0.65
	}
	if p.TwoOutputFrac == 0 {
		p.TwoOutputFrac = 0.15
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("rent%02d-%d", int(p.Rent*100+0.5), p.Seed)
	}
	return p
}

// GenerateRent builds a mapped-circuit hypergraph whose interconnect
// follows Rent's rule with the requested exponent. The construction is
// a single O(Cells) pass: cells sit on a line, each drawing 2–4 inputs
// from earlier outputs at power-law distances (acyclic by
// construction), with primary inputs force-fed over the first quarter
// and a fix-up queue that retires long-unconsumed outputs so dangling
// nets stay bounded. The same RentParams always produce the same
// circuit.
func GenerateRent(p RentParams) (*hypergraph.Graph, error) {
	p = p.withDefaults()
	if p.Cells < 1 || p.PrimaryIn < 1 {
		return nil, fmt.Errorf("bench: need at least 1 cell and 1 primary input (got %d, %d)", p.Cells, p.PrimaryIn)
	}
	if p.Rent <= 0 || p.Rent >= 1 {
		return nil, fmt.Errorf("bench: Rent exponent must be in (0,1), got %g", p.Rent)
	}
	if p.TwoOutputFrac < 0 || p.TwoOutputFrac > 1 {
		return nil, fmt.Errorf("bench: TwoOutputFrac must be in [0,1], got %g", p.TwoOutputFrac)
	}
	r := rand.New(rand.NewSource(p.Seed))
	b := hypergraph.NewBuilder(p.Name)

	// The source stream: every net a later cell may read, in creation
	// order. Parallel slices track consumption and PI-ness by position;
	// distances are positions back from the tail.
	src := make([]hypergraph.NetID, 0, p.PrimaryIn+2*p.Cells)
	consumed := make([]bool, 0, p.PrimaryIn+2*p.Cells)
	isPI := make([]bool, 0, p.PrimaryIn+2*p.Cells)
	push := func(n hypergraph.NetID, pi bool) int {
		src = append(src, n)
		consumed = append(consumed, false)
		isPI = append(isPI, pi)
		return len(src) - 1
	}

	// PIs become available spread over the first quarter of the cell
	// line, so input cones are localized rather than all rooted at 0.
	pis := make([]hypergraph.NetID, p.PrimaryIn)
	piDue := make([]int, p.PrimaryIn)
	for i := range pis {
		pis[i] = b.InputNet(fmt.Sprintf("pi%d", i))
		piDue[i] = i * (p.Cells / 4) / p.PrimaryIn
	}

	// sample draws a source distance in [1, dmax] from the truncated
	// power law f(d) ∝ d^−a with a = 2−p ∈ (1,2), via inverse CDF.
	alpha := 2 - p.Rent
	sample := func(dmax int) int {
		if dmax <= 1 {
			return 1
		}
		e := 1 - alpha // in (−1, 0)
		u := r.Float64()
		d := math.Pow(1+u*(math.Pow(float64(dmax), e)-1), 1/e)
		di := int(d)
		if di < 1 {
			di = 1
		}
		if di > dmax {
			di = dmax
		}
		return di
	}

	// piWait and dangling are FIFO fix-up queues (positions into src):
	// a PI waiting too long, or an output no one has read within the
	// window, is force-fed as the next cell's input. Cells consume
	// ~2.8 nets and produce ~1.15, so the queues stay bounded.
	var piWait, dangling []int
	const staleWindow = 64
	wires := 0

	type cellPlan struct {
		inputs  []hypergraph.NetID
		outputs []hypergraph.NetID
		dep     [][]int
		dffs    int
	}
	dffLeft := p.DFFs
	nextPI := 0
	for ci := 0; ci < p.Cells; ci++ {
		for nextPI < p.PrimaryIn && piDue[nextPI] <= ci {
			piWait = append(piWait, push(pis[nextPI], true))
			nextPI++
		}
		for len(piWait) > 0 && consumed[piWait[0]] {
			piWait = piWait[1:]
		}
		for len(dangling) > 0 && consumed[dangling[0]] {
			dangling = dangling[1:]
		}

		twoOut := r.Float64() < p.TwoOutputFrac
		nIn := 2
		switch v := r.Float64(); {
		case v < 0.35:
			nIn = 2
		case v < 0.80:
			nIn = 3
		default:
			nIn = 4
		}
		if twoOut && nIn < 3 {
			nIn = 3 // split dependence rows need ≥3 inputs
		}
		if nIn > len(src) {
			nIn = len(src)
		}

		plan := cellPlan{inputs: make([]hypergraph.NetID, 0, nIn)}
		take := func(pos int) bool {
			n := src[pos]
			for _, have := range plan.inputs {
				if have == n {
					return false
				}
			}
			plan.inputs = append(plan.inputs, n)
			consumed[pos] = true
			return true
		}
		// Forced feeds first: PIs that must be consumed before the line
		// runs out (or have gone stale), then one stale dangling output.
		force := len(piWait) - (p.Cells - ci - 1)
		if force < 1 && len(piWait) > 0 && len(src)-piWait[0] > 2*staleWindow {
			force = 1
		}
		for force > 0 && len(piWait) > 0 && len(plan.inputs) < nIn {
			take(piWait[0])
			piWait = piWait[1:]
			force--
		}
		if len(dangling) > 0 && len(plan.inputs) < nIn &&
			len(src)-dangling[0] > staleWindow {
			take(dangling[0])
			dangling = dangling[1:]
		}
		// Remaining inputs at power-law distances from the tail.
		for tries := 0; len(plan.inputs) < nIn && tries < 32; tries++ {
			take(len(src) - sample(len(src)))
		}
		if len(plan.inputs) == 0 {
			take(len(src) - 1)
		}

		nOut := 1
		if twoOut && len(plan.inputs) >= 3 {
			nOut = 2
		}
		for oi := 0; oi < nOut; oi++ {
			w := b.Net(fmt.Sprintf("w%d", wires))
			wires++
			plan.outputs = append(plan.outputs, w)
			dangling = append(dangling, push(w, false))
		}
		if nOut == 2 {
			// Split dependence with one shared input: each output sees a
			// proper input subset, so ψ > 0 and replication can untangle
			// the pair (Eq. 6).
			k := (len(plan.inputs) + 1) / 2
			rows := make([][]int, 2)
			for oi := range rows {
				row := make([]int, len(plan.inputs))
				lo, hi := 0, k
				if oi == 1 {
					lo, hi = k-1, len(plan.inputs)
				}
				for j := lo; j < hi; j++ {
					row[j] = 1
				}
				rows[oi] = row
			}
			plan.dep = rows
		}
		if dffLeft > 0 {
			want := float64(dffLeft) / float64(p.Cells-ci)
			if r.Float64() < want {
				plan.dffs = 1
				if want > 1 && dffLeft > 1 && r.Float64() < want-1 {
					plan.dffs = 2
				}
			}
			if plan.dffs > dffLeft {
				plan.dffs = dffLeft
			}
			dffLeft -= plan.dffs
		}
		b.AddCell(hypergraph.CellSpec{
			Name:    fmt.Sprintf("u%d", ci),
			Inputs:  plan.inputs,
			Outputs: plan.outputs,
			DepBits: plan.dep,
			DFFs:    plan.dffs,
		})
	}

	// Dangling outputs become primary outputs; top up to the requested
	// count with random driven nets (PrimaryOut is a lower bound).
	marked := 0
	extra := make(map[hypergraph.NetID]bool)
	for pos, n := range src {
		if !consumed[pos] && !isPI[pos] {
			b.MarkOutput(n)
			extra[n] = true
			marked++
		}
	}
	for tries := 0; marked < p.PrimaryOut && tries < 64*p.PrimaryOut; tries++ {
		pos := r.Intn(len(src))
		if isPI[pos] || extra[src[pos]] {
			continue
		}
		b.MarkOutput(src[pos])
		extra[src[pos]] = true
		marked++
	}
	return b.Build()
}
