package bench

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"fpgapart/internal/hypergraph"
)

func TestGenerateRentValid(t *testing.T) {
	g, err := GenerateRent(RentParams{
		Cells: 20000, PrimaryIn: 48, PrimaryOut: 24, DFFs: 500, Rent: 0.65, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 20000 {
		t.Fatalf("cell count %d, want 20000", g.NumCells())
	}
	dffs := 0
	twoOut := 0
	for i := range g.Cells {
		dffs += g.Cells[i].DFFs
		if len(g.Cells[i].Outputs) == 2 {
			twoOut++
		}
	}
	if dffs != 500 {
		t.Fatalf("DFF total %d, want 500", dffs)
	}
	// The default two-output fraction is 0.15; allow generous slack.
	if frac := float64(twoOut) / 20000; frac < 0.10 || frac > 0.20 {
		t.Fatalf("two-output fraction %.3f outside [0.10, 0.20]", frac)
	}
	// The fix-up queue must keep dangling outputs (promoted to POs)
	// bounded: without it a constant fraction of 20k wires would
	// dangle.
	pos := 0
	for i := range g.Nets {
		if g.Nets[i].Ext == hypergraph.ExtOut {
			pos++
		}
	}
	if pos < 24 || pos > 2000 {
		t.Fatalf("primary outputs %d outside [24, 2000]", pos)
	}
}

func TestGenerateRentRejectsBadParams(t *testing.T) {
	cases := []RentParams{
		{Cells: 0, PrimaryIn: 8, Rent: 0.6},
		{Cells: 100, PrimaryIn: 0, Rent: 0.6},
		{Cells: 100, PrimaryIn: 8, Rent: -0.5},
		{Cells: 100, PrimaryIn: 8, Rent: 1.5},
		{Cells: 100, PrimaryIn: 8, Rent: 0.6, TwoOutputFrac: 2},
	}
	for _, p := range cases {
		if _, err := GenerateRent(p); err == nil {
			t.Fatalf("params %+v: expected an error", p)
		}
	}
}

// TestGenerateRentDeterministic renders the same params to bytes under
// different GOMAXPROCS values: the generator is single-threaded and
// must be immune to scheduler parallelism.
func TestGenerateRentDeterministic(t *testing.T) {
	render := func() []byte {
		g, err := GenerateRent(RentParams{
			Cells: 5000, PrimaryIn: 32, PrimaryOut: 16, Rent: 0.7, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := hypergraph.Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	var first []byte
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		out := render()
		if first == nil {
			first = out
			continue
		}
		if !bytes.Equal(first, out) {
			t.Fatalf("output diverged at GOMAXPROCS=%d", procs)
		}
	}
}

// rentSlope measures the realized Rent exponent: average external-net
// count T(B) over contiguous windows of B cells, slope of log T
// against log B.
func rentSlope(t *testing.T, g *hypergraph.Graph, b1, b2 int) float64 {
	t.Helper()
	terminals := func(B int) float64 {
		nWin := g.NumCells() / B
		ext := make([]int, nWin)
		touch := make(map[int]bool, 8)
		for ni := range g.Nets {
			for w := range touch {
				delete(touch, w)
			}
			outside := g.Nets[ni].Ext != hypergraph.Internal
			for _, cn := range g.Nets[ni].Conns {
				if w := int(cn.Cell) / B; w < nWin {
					touch[w] = true
				} else {
					outside = true
				}
			}
			if len(touch) > 1 || outside {
				for w := range touch {
					ext[w]++
				}
			}
		}
		sum := 0.0
		for _, e := range ext {
			sum += float64(e)
		}
		return sum / float64(nWin)
	}
	return math.Log(terminals(b2)/terminals(b1)) / math.Log(float64(b2)/float64(b1))
}

// TestRentExponentRealized property-checks the generator's core claim:
// the window-terminal scaling exponent tracks the requested Rent
// exponent, and ordering is preserved across exponents.
func TestRentExponentRealized(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a 40k-cell instance")
	}
	slopes := make([]float64, 0, 3)
	for _, p := range []float64{0.5, 0.65, 0.8} {
		g, err := GenerateRent(RentParams{
			Cells: 40000, PrimaryIn: 64, PrimaryOut: 32, Rent: p, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := rentSlope(t, g, 64, 1024)
		if math.Abs(s-p) > 0.15 {
			t.Errorf("requested Rent %.2f, realized slope %.3f (tolerance 0.15)", p, s)
		}
		slopes = append(slopes, s)
	}
	for i := 1; i < len(slopes); i++ {
		if slopes[i] <= slopes[i-1] {
			t.Fatalf("realized slopes not increasing with requested exponent: %v", slopes)
		}
	}
}
