// Package core is the public face of the library: multi-way netlist
// partitioning into heterogeneous FPGAs with minimization of total
// device cost and interconnect (Kužnar, Brglez, Zajc — DAC'94). It
// wires the substrates together: gate-level netlists (netlist) are
// technology-mapped into XC3000-style CLBs (techmap), modeled as a
// hypergraph with per-output adjacency vectors (hypergraph), and
// partitioned over a device library (library) by the cost-driven
// recursive engine (kway) whose bipartitioner (fm) performs min-cut
// refinement with functional replication (replication).
//
// Quick start:
//
//	g := ...                       // *hypergraph.Graph, e.g. bench.Suite()[0].MustBuild()
//	res, err := core.Partition(g, core.Options{})
//	fmt.Println(res.Summary)       // k, device cost (Eq. 1), IOB utilization (Eq. 2)
package core

import (
	"context"
	"time"

	"fpgapart/internal/faultinject"
	"fpgapart/internal/fm"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/kway"
	"fpgapart/internal/library"
	"fpgapart/internal/netlist"
	"fpgapart/internal/objective"
	"fpgapart/internal/replication"
	"fpgapart/internal/span"
	"fpgapart/internal/techmap"
	"fpgapart/internal/topology"
	"fpgapart/internal/trace"
)

// NoReplication disables functional replication when used as the
// Threshold, reproducing the DAC'93 baseline partitioner ([3]).
const NoReplication = fm.NoReplication

// Options configures Partition and MapAndPartition.
type Options struct {
	// Library is the heterogeneous FPGA device library (Table I).
	// Defaults to library.XC3000().
	Library library.Library
	// Threshold is the replication potential threshold T (Eq. 6): a
	// multi-output cell may replicate when ψ ≥ T. Use NoReplication to
	// disable replication. Default 1.
	Threshold int
	// Solutions is how many feasible k-way solutions the randomized
	// search generates before keeping the best (default 50, as in the
	// paper's experiments).
	Solutions int
	// Refine runs the pairwise k-way refinement sweep on the winning
	// solution (extension; see kway.Refine).
	Refine bool
	// Multilevel routes large carve subproblems through the multilevel
	// V-cycle (coarsen → partition → uncoarsen+refine; see
	// internal/multilevel and kway.Options.Multilevel). Off by
	// default; the flat path is byte-identical to the classic engine.
	Multilevel bool
	// Workers bounds the search worker pool (0 = one per CPU). Fixed-
	// seed results are identical regardless of the value.
	Workers int
	// RefineWorkers selects the FM refinement engine inside every
	// attempt: >= 2 uses the deterministic parallel sub-round engine
	// (package parfm) with that many proposal workers, 0 or 1 the
	// classic serial engine (byte-identical to previous releases).
	// Fixed-seed results are identical for any value >= 2.
	RefineWorkers int
	// Verify runs the partition verifier in-loop on every accepted
	// carve and every feasible solution (see kway.Options.Verify).
	Verify bool
	// Timeout bounds the search wall-clock time (0 = unlimited). The
	// deadline is observed only at deterministic checkpoints (carve
	// boundaries), so a search that finishes within the budget is
	// bit-identical to an unbudgeted run; a search cut short returns
	// the best solution of the completed attempt prefix with
	// Result.Stopped set, or an error wrapping *search.ErrBudget when
	// no feasible solution was found in time.
	Timeout time.Duration
	// MaxStale stops the search early after this many consecutive
	// non-improving feasible solutions (0 = run all Solutions).
	MaxStale int
	// Trace, when non-nil, receives structured engine events (see
	// internal/trace): FM passes, carve attempts and folded solutions.
	// Must be safe for concurrent use; nil costs nothing.
	Trace trace.Sink
	// Inject, when non-nil, arms deterministic fault injection at the
	// engine checkpoints (see internal/faultinject). Panics injected
	// into workers are contained per attempt and surface as
	// Result.Degraded. Testing only; leave nil in production.
	Inject *faultinject.Plan
	// Now supplies the wall clock for phase-timing trace events (nil
	// selects time.Now). Clock readings feed only Trace, never search
	// decisions, so fixed-seed results are byte-identical with or
	// without telemetry.
	Now func() time.Time
	// Board, when non-nil, switches the search to the hop-weighted
	// interconnect objective over the board's device-slot topology
	// (internal/topology): part i occupies board slot i, each cut net
	// costs its Steiner span over the slots it touches, and solutions
	// exceeding the slot count or any link's routing capacity are
	// rejected (verify.Routing). Result.Summary.TopoCost/HasTopo carry
	// the winning score. Nil keeps the paper's flat terminal-cut
	// objective, byte-identical to board-free releases.
	Board *topology.Board
	// Checkpoint, when non-nil, receives a serializable snapshot of the
	// search reduction every CheckpointEvery folded attempts (see
	// kway.Options.Checkpoint). Snapshots arrive in strict attempt
	// order from a single goroutine; emission never perturbs search
	// decisions.
	Checkpoint func(kway.SearchCheckpoint)
	// CheckpointEvery is the checkpoint cadence in folded attempts
	// (default 1). Ignored when Checkpoint is nil.
	CheckpointEvery int
	// Resume, when non-nil, restarts the search from a persisted
	// checkpoint instead of attempt 0; the resumed run folds to the
	// byte-identical result of the uninterrupted run (see
	// kway.Options.Resume).
	Resume *kway.SearchCheckpoint
	// Spans, when armed, records the run as a causal span tree under
	// the caller's scope (see internal/span and kway.Options.Spans).
	// Spans only read the clock; the disarmed zero value is inert and
	// fixed-seed results are byte-identical either way.
	Spans span.Scope
	Seed  int64
}

func (o Options) fill() Options {
	if len(o.Library.Devices) == 0 {
		o.Library = library.XC3000()
	}
	if o.Threshold == 0 {
		o.Threshold = 1
	}
	return o
}

// Result is the outcome of a k-way partition: the materialized part
// subcircuits with their devices, and the Eq. 1 / Eq. 2 summary.
type Result = kway.Result

// Partition finds a feasible k-way partition of the mapped circuit
// minimizing total device cost (Eq. 1) with average IOB utilization
// (Eq. 2) as tie-breaker.
func Partition(g *hypergraph.Graph, opts Options) (Result, error) {
	return PartitionContext(context.Background(), g, opts)
}

// PartitionContext is Partition under an external budget: ctx (and
// Options.Timeout, when set) cancels the search at its deterministic
// checkpoints. See kway.PartitionContext for the truncation contract.
func PartitionContext(ctx context.Context, g *hypergraph.Graph, opts Options) (Result, error) {
	opts = opts.fill()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	kopts := kway.Options{
		Library:         opts.Library,
		Threshold:       opts.Threshold,
		Solutions:       opts.Solutions,
		Multilevel:      opts.Multilevel,
		Workers:         opts.Workers,
		RefineWorkers:   opts.RefineWorkers,
		Verify:          opts.Verify,
		MaxStale:        opts.MaxStale,
		Trace:           opts.Trace,
		Inject:          opts.Inject,
		Now:             opts.Now,
		Checkpoint:      opts.Checkpoint,
		CheckpointEvery: opts.CheckpointEvery,
		Resume:          opts.Resume,
		Spans:           opts.Spans,
		Seed:            opts.Seed,
	}
	if opts.Board != nil {
		kopts.Objective = objective.NewTopology(opts.Board)
	}
	res, err := kway.PartitionContext(ctx, g, kopts)
	if err != nil {
		return res, err
	}
	if opts.Refine {
		if _, err := kway.Refine(g, &res, kopts); err != nil {
			return res, err
		}
	}
	return res, nil
}

// MapAndPartition technology-maps a gate-level netlist into XC3000
// CLBs, then partitions the result.
func MapAndPartition(n *netlist.Netlist, opts Options) (*techmap.Mapped, Result, error) {
	opts = opts.fill()
	m, err := techmap.Map(n, techmap.Options{Seed: opts.Seed})
	if err != nil {
		return nil, Result{}, err
	}
	res, err := Partition(m.Graph, opts)
	if err != nil {
		return m, Result{}, err
	}
	return m, res, nil
}

// BipartitionOptions configures MinCutBipartition.
type BipartitionOptions struct {
	// Threshold is the replication threshold T (NoReplication disables;
	// the paper's first experiment uses T = 0 for maximum replication).
	Threshold int
	// Balance is the allowed deviation from an equal split (default
	// 0.05, i.e. each block holds 45–55% of the area, with 10% headroom
	// for replication growth).
	Balance float64
	// Starts is the number of random initial partitions (default 1).
	Starts int
	// RefineWorkers selects the FM engine (see Options.RefineWorkers).
	RefineWorkers int
	Seed          int64
}

// MinCutBipartition reproduces the paper's first experiment on one
// circuit: bipartition into two (nearly) equal blocks minimizing the
// cut, optionally with functional replication. The returned state
// exposes the assignment, replication set and cut.
func MinCutBipartition(g *hypergraph.Graph, opts BipartitionOptions) (*replication.State, fm.Result, error) {
	if opts.Balance == 0 {
		opts.Balance = 0.05
	}
	minA, maxA := fm.Balance(g.TotalArea(), opts.Balance)
	maxA = [2]int{maxA[0] * 11 / 10, maxA[1] * 11 / 10}
	return fm.Bipartition(g, fm.Options{
		Config: fm.Config{
			MinArea: minA, MaxArea: maxA,
			Threshold: opts.Threshold, Seed: opts.Seed,
			RefineWorkers: opts.RefineWorkers,
		},
		Starts: opts.Starts,
	})
}
