package core_test

import (
	"fmt"

	"fpgapart/internal/bench"
	"fpgapart/internal/core"
	"fpgapart/internal/hypergraph"
	"fpgapart/internal/library"
)

// ExamplePartition partitions a synthetic benchmark circuit into the
// XC3000 library with functional replication at threshold T = 1.
func ExamplePartition() {
	c, _ := bench.ByName("c3540")
	g := c.MustBuild()
	res, err := core.Partition(g, core.Options{Threshold: 1, Solutions: 5, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("k=%d feasible=%v\n", res.Summary.K(), res.Summary.Feasible())
	// Output: k=2 feasible=true
}

// ExampleMinCutBipartition runs the paper's first experiment on one
// circuit: equal-sized min-cut bipartitioning with and without
// functional replication.
func ExampleMinCutBipartition() {
	c, _ := bench.ByName("s5378")
	g := c.MustBuild()
	_, plain, _ := core.MinCutBipartition(g, core.BipartitionOptions{
		Threshold: core.NoReplication, Seed: 7, Starts: 2,
	})
	st, repl, _ := core.MinCutBipartition(g, core.BipartitionOptions{
		Threshold: 0, Seed: 7, Starts: 2,
	})
	fmt.Printf("replication cut <= plain cut: %v\n", repl.Cut <= plain.Cut)
	fmt.Printf("replicated cells tracked: %v\n", st.ReplicatedCount() >= 0)
	// Output:
	// replication cut <= plain cut: true
	// replicated cells tracked: true
}

// ExamplePartition_customLibrary partitions against a user-defined
// two-device library.
func ExamplePartition_customLibrary() {
	lib, _ := library.Custom(
		library.Device{Name: "small", CLBs: 64, IOBs: 80, Price: 10, HighUtil: 0.95},
		library.Device{Name: "big", CLBs: 256, IOBs: 160, Price: 30, HighUtil: 0.95},
	)
	g, _ := bench.Generate(bench.Params{Cells: 300, PrimaryIn: 16, PrimaryOut: 10, Seed: 3, Clustering: 0.5})
	res, err := core.Partition(g, core.Options{Library: lib, Solutions: 5, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("feasible=%v cost>0=%v\n", res.Summary.Feasible(), res.Summary.DeviceCost() > 0)
	// Output: feasible=true cost>0=true
}

// ExampleOptions_threshold shows the DAC'93 baseline versus functional
// replication on the same circuit.
func ExampleOptions_threshold() {
	c, _ := bench.ByName("s9234")
	g := c.MustBuild()
	base, _ := core.Partition(g, core.Options{Threshold: core.NoReplication, Solutions: 4, Seed: 2})
	repl, _ := core.Partition(g, core.Options{Threshold: 1, Solutions: 4, Seed: 2})
	fmt.Printf("baseline replicates nothing: %v\n", base.Summary.ReplicatedCells() == 0)
	fmt.Printf("both feasible: %v\n", base.Summary.Feasible() && repl.Summary.Feasible())
	// Output:
	// baseline replicates nothing: true
	// both feasible: true
}

var _ = hypergraph.Graph{} // keep the import for doc cross-reference
