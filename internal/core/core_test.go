package core

import (
	"testing"

	"fpgapart/internal/bench"
	"fpgapart/internal/netlist"
)

func TestPartitionDefaults(t *testing.T) {
	c, _ := bench.ByName("c3540")
	g := c.Small(2).MustBuild()
	res, err := Partition(g, Options{Solutions: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Summary.Feasible() {
		t.Fatalf("infeasible: %v", res.Summary)
	}
	if res.Summary.DeviceCost() <= 0 {
		t.Fatal("zero cost")
	}
}

func TestPartitionNoReplication(t *testing.T) {
	c, _ := bench.ByName("s5378")
	g := c.Small(2).MustBuild()
	res, err := Partition(g, Options{Threshold: NoReplication, Solutions: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.ReplicatedCells() != 0 {
		t.Fatal("baseline must not replicate")
	}
}

func TestMapAndPartition(t *testing.T) {
	n, err := netlist.Random(netlist.RandomParams{Gates: 500, Inputs: 16, Outputs: 8, DffFrac: 0.15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, res, err := MapAndPartition(n, Options{Solutions: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Graph.NumCells() == 0 || !res.Summary.Feasible() {
		t.Fatalf("bad result: %d cells, %v", m.Graph.NumCells(), res.Summary)
	}
	// Parts cover at least the mapped cells.
	if res.Summary.TotalCells() < m.Graph.NumCells() {
		t.Fatal("parts lost cells")
	}
}

func TestMinCutBipartition(t *testing.T) {
	c, _ := bench.ByName("s9234")
	g := c.Small(2).MustBuild()
	stPlain, resPlain, err := MinCutBipartition(g, BipartitionOptions{Threshold: NoReplication, Seed: 4, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	stRepl, resRepl, err := MinCutBipartition(g, BipartitionOptions{Threshold: 0, Seed: 4, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := stPlain.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := stRepl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if resRepl.Cut > resPlain.Cut {
		t.Fatalf("replication worsened the cut: %d > %d", resRepl.Cut, resPlain.Cut)
	}
}

func TestPartitionWithRefine(t *testing.T) {
	c, _ := bench.ByName("s13207")
	g := c.Small(2).MustBuild()
	plain, err := Partition(g, Options{Solutions: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Partition(g, Options{Solutions: 4, Seed: 5, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Summary.AvgIOBUtil() > plain.Summary.AvgIOBUtil()+1e-9 {
		t.Fatalf("refine worsened IOB util: %.3f vs %.3f",
			refined.Summary.AvgIOBUtil(), plain.Summary.AvgIOBUtil())
	}
	if !refined.Summary.Feasible() {
		t.Fatal("refined solution infeasible")
	}
}
