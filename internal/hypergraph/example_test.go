package hypergraph_test

import (
	"fmt"

	"fpgapart/internal/hypergraph"
)

// ExampleBuilder assembles the paper's Figure 1 cell: inputs {a,b,c},
// outputs X (depends on a,b) and Y (depends on b,c).
func ExampleBuilder() {
	b := hypergraph.NewBuilder("fig1")
	a := b.InputNet("a")
	bb := b.InputNet("b")
	c := b.InputNet("c")
	x := b.OutputNet("X")
	y := b.OutputNet("Y")
	id := b.AddCell(hypergraph.CellSpec{
		Name:    "M",
		Inputs:  []hypergraph.NetID{a, bb, c},
		Outputs: []hypergraph.NetID{x, y},
		DepBits: [][]int{{1, 1, 0}, {0, 1, 1}},
	})
	g := b.MustBuild()
	cell := g.Cell(id)
	fmt.Printf("A_X = %v, A_Y = %v\n", cell.Dep[0], cell.Dep[1])
	fmt.Printf("replication potential ψ = %d\n", cell.ReplicationPotential())
	// Output:
	// A_X = [1 1 0]^T, A_Y = [0 1 1]^T
	// replication potential ψ = 2
}

// ExampleGraph_Subcircuit extracts a functionally-replicated copy: a
// cell copy carrying only output Y keeps just the inputs Y depends on.
func ExampleGraph_Subcircuit() {
	b := hypergraph.NewBuilder("fig1")
	a := b.InputNet("a")
	bb := b.InputNet("b")
	c := b.InputNet("c")
	x := b.OutputNet("X")
	y := b.OutputNet("Y")
	id := b.AddCell(hypergraph.CellSpec{
		Name:    "M",
		Inputs:  []hypergraph.NetID{a, bb, c},
		Outputs: []hypergraph.NetID{x, y},
		DepBits: [][]int{{1, 1, 0}, {0, 1, 1}},
	})
	g := b.MustBuild()
	sub, err := g.Subcircuit("copy", []hypergraph.InstanceSpec{
		{Cell: id, Outputs: []int{1}, Rename: "M$r"},
	}, nil)
	if err != nil {
		panic(err)
	}
	copyCell := sub.Cell(0)
	fmt.Printf("%s: %d inputs, %d outputs\n", copyCell.Name, len(copyCell.Inputs), len(copyCell.Outputs))
	// Output: M$r: 2 inputs, 1 outputs
}
