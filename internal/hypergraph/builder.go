package hypergraph

import (
	"fmt"

	"fpgapart/internal/bitset"
)

// CellSpec describes one cell for Builder.AddCell. Dep rows may be
// given as explicit adjacency vectors (Dep) or as 0/1 matrices
// (DepBits); leaving both nil means every output depends on every
// input (the conservative traditional-replication assumption).
type CellSpec struct {
	Name    string
	Inputs  []NetID
	Outputs []NetID
	Dep     []bitset.Vector
	DepBits [][]int
	Area    int // defaults to 1
	DFFs    int
	Replica bool // functional-replication copy (see Cell.Replica)
}

// Builder incrementally assembles a Graph, then verifies it in Build.
type Builder struct {
	g    *Graph
	byID map[string]NetID
	err  error
}

// NewBuilder creates an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: &Graph{Name: name}, byID: make(map[string]NetID)}
}

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("builder %q: %s", b.g.Name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) addNet(name string, ext ExtKind) NetID {
	if name == "" {
		name = fmt.Sprintf("n%d", len(b.g.Nets))
	}
	if _, dup := b.byID[name]; dup {
		b.fail("duplicate net name %q", name)
		return NilNet
	}
	id := NetID(len(b.g.Nets))
	b.g.Nets = append(b.g.Nets, Net{Name: name, Ext: ext})
	b.byID[name] = id
	return id
}

// Net declares an internal net and returns its id.
func (b *Builder) Net(name string) NetID { return b.addNet(name, Internal) }

// InputNet declares a primary-input net (driven by a terminal).
func (b *Builder) InputNet(name string) NetID { return b.addNet(name, ExtIn) }

// OutputNet declares a primary-output net (a cell must drive it).
func (b *Builder) OutputNet(name string) NetID { return b.addNet(name, ExtOut) }

// MarkOutput upgrades an existing internal net to a primary output.
func (b *Builder) MarkOutput(id NetID) {
	if int(id) < 0 || int(id) >= len(b.g.Nets) {
		b.fail("MarkOutput: invalid net %d", id)
		return
	}
	if b.g.Nets[id].Ext == ExtIn {
		b.fail("MarkOutput: net %q is a primary input", b.g.Nets[id].Name)
		return
	}
	b.g.Nets[id].Ext = ExtOut
}

// NetByName returns the id of a previously declared net.
func (b *Builder) NetByName(name string) (NetID, bool) {
	id, ok := b.byID[name]
	return id, ok
}

// AddCell appends a cell and returns its id.
func (b *Builder) AddCell(spec CellSpec) CellID {
	id := CellID(len(b.g.Cells))
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("c%d", id)
	}
	area := spec.Area
	if area == 0 {
		area = 1
	}
	dep := spec.Dep
	switch {
	case dep == nil && spec.DepBits != nil:
		if len(spec.DepBits) != len(spec.Outputs) {
			b.fail("cell %q: DepBits has %d rows, want %d", spec.Name, len(spec.DepBits), len(spec.Outputs))
			return id
		}
		dep = make([]bitset.Vector, len(spec.DepBits))
		for i, row := range spec.DepBits {
			if len(row) != len(spec.Inputs) {
				b.fail("cell %q: DepBits row %d has %d columns, want %d", spec.Name, i, len(row), len(spec.Inputs))
				return id
			}
			dep[i] = bitset.FromBits(row...)
		}
	case dep == nil:
		dep = make([]bitset.Vector, len(spec.Outputs))
		for i := range dep {
			full := bitset.New(len(spec.Inputs))
			for j := range spec.Inputs {
				full.Set(j)
			}
			dep[i] = full
		}
	}
	b.g.Cells = append(b.g.Cells, Cell{
		Name:    spec.Name,
		Inputs:  append([]NetID(nil), spec.Inputs...),
		Outputs: append([]NetID(nil), spec.Outputs...),
		Dep:     dep,
		Area:    area,
		DFFs:    spec.DFFs,
		Replica: spec.Replica,
	})
	return id
}

// Build finalizes the graph: connection lists are rebuilt and the
// structural invariants validated.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.g.RebuildConns()
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
