package hypergraph

import (
	"fmt"
	"sort"

	"fpgapart/internal/bitset"
)

// InstanceSpec selects one cell copy for Subcircuit extraction. With
// functional replication a cell may appear in two subcircuits, each
// copy carrying a disjoint subset of the outputs; Outputs lists the
// active output pin indices of this copy (nil means all outputs).
type InstanceSpec struct {
	Cell    CellID
	Outputs []int
	Rename  string // optional name override (e.g. "u7$r" for a replica)
	// Replica marks this instance as a functional-replication copy; the
	// materialized cell carries the flag (in addition to inheriting the
	// source cell's own flag from enclosing extractions).
	Replica bool
}

// Subcircuit materializes the hypergraph induced by the given cell
// instances. Pin pruning follows the functional-replication rule: a
// copy carrying output set S keeps exactly the input pins adjacent to
// S (Section II). Nets are renumbered; a net present in the subcircuit
// becomes a terminal when it was already external in g or when
// external(net) reports true (i.e. the net is in the cut set of the
// enclosing partition). Terminal direction is ExtOut when the net's
// driver lives inside the subcircuit and ExtIn otherwise.
func (g *Graph) Subcircuit(name string, specs []InstanceSpec, external func(NetID) bool) (*Graph, error) {
	if external == nil {
		external = func(NetID) bool { return false }
	}
	sub := &Graph{Name: name}
	netMap := make(map[NetID]NetID)
	driverInside := make(map[NetID]bool)
	mapNet := func(old NetID) NetID {
		if id, ok := netMap[old]; ok {
			return id
		}
		id := NetID(len(sub.Nets))
		sub.Nets = append(sub.Nets, Net{Name: g.Nets[old].Name})
		netMap[old] = id
		return id
	}

	for _, spec := range specs {
		if int(spec.Cell) < 0 || int(spec.Cell) >= len(g.Cells) {
			return nil, fmt.Errorf("subcircuit %q: invalid cell id %d", name, spec.Cell)
		}
		src := &g.Cells[spec.Cell]
		outs := spec.Outputs
		if outs == nil {
			outs = make([]int, len(src.Outputs))
			for i := range outs {
				outs[i] = i
			}
		} else {
			outs = append([]int(nil), outs...)
			sort.Ints(outs)
		}
		if len(outs) == 0 {
			return nil, fmt.Errorf("subcircuit %q: instance of %q has no active outputs", name, src.Name)
		}
		seen := make(map[int]bool, len(outs))
		for _, o := range outs {
			if o < 0 || o >= len(src.Outputs) {
				return nil, fmt.Errorf("subcircuit %q: instance of %q references output %d of %d",
					name, src.Name, o, len(src.Outputs))
			}
			if seen[o] {
				return nil, fmt.Errorf("subcircuit %q: instance of %q repeats output %d", name, src.Name, o)
			}
			seen[o] = true
		}

		activeIn := src.InputsFor(outs)
		// Compact input pins: old input index -> new index.
		inMap := make([]int, len(src.Inputs))
		newInputs := make([]NetID, 0, activeIn.Norm())
		for j := range src.Inputs {
			if activeIn.Get(j) {
				inMap[j] = len(newInputs)
				newInputs = append(newInputs, mapNet(src.Inputs[j]))
			} else {
				inMap[j] = -1
			}
		}
		newOutputs := make([]NetID, len(outs))
		newDep := make([]bitset.Vector, len(outs))
		for k, o := range outs {
			newOutputs[k] = mapNet(src.Outputs[o])
			driverInside[src.Outputs[o]] = true
			row := bitset.New(len(newInputs))
			for j := range src.Inputs {
				if inMap[j] >= 0 && src.Dep[o].Get(j) {
					row.Set(inMap[j])
				}
			}
			newDep[k] = row
		}
		cname := spec.Rename
		if cname == "" {
			cname = src.Name
		}
		sub.Cells = append(sub.Cells, Cell{
			Name:    cname,
			Inputs:  newInputs,
			Outputs: newOutputs,
			Dep:     newDep,
			Area:    src.Area,
			DFFs:    src.DFFs,
			Replica: src.Replica || spec.Replica,
		})
	}

	for old, id := range netMap {
		switch {
		case g.Nets[old].Ext == ExtIn:
			sub.Nets[id].Ext = ExtIn
		case g.Nets[old].Ext == ExtOut:
			if driverInside[old] {
				sub.Nets[id].Ext = ExtOut
			} else {
				sub.Nets[id].Ext = ExtIn
			}
		case external(old):
			if driverInside[old] {
				sub.Nets[id].Ext = ExtOut
			} else {
				sub.Nets[id].Ext = ExtIn
			}
		default:
			sub.Nets[id].Ext = Internal
		}
	}

	sub.RebuildConns()
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("subcircuit %q: %w", name, err)
	}
	return sub, nil
}
