package hypergraph

import (
	"bytes"
	"strings"
	"testing"

	"fpgapart/internal/bitset"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g, _ := figure1Cell(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v\nsource:\n%s", err, buf.String())
	}
	if back.Name != g.Name || back.NumCells() != g.NumCells() || back.NumNets() != g.NumNets() {
		t.Fatalf("round trip mismatch: %d cells %d nets", back.NumCells(), back.NumNets())
	}
	if back.NumTerminals() != g.NumTerminals() {
		t.Fatalf("terminals differ: %d vs %d", back.NumTerminals(), g.NumTerminals())
	}
	c := back.Cell(0)
	if !c.Dep[0].Equal(bitset.FromBits(1, 1, 0)) || !c.Dep[1].Equal(bitset.FromBits(0, 1, 1)) {
		t.Fatalf("dep lost: %v %v", c.Dep[0], c.Dep[1])
	}
	if psi := c.ReplicationPotential(); psi != 2 {
		t.Fatalf("ψ after round trip = %d", psi)
	}
}

func TestRoundTripLargerGraph(t *testing.T) {
	g := chain(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCells() != g.NumCells() || back.NumPins() != g.NumPins() || back.NumDFF() != g.NumDFF() {
		t.Fatal("round trip counts differ")
	}
}

func TestReadDefaultsAreaAndDep(t *testing.T) {
	src := `circuit c
input a b
output y z
cell u0 in=a,b out=y,z
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	c := g.Cell(0)
	if c.Area != 1 {
		t.Fatalf("default area = %d", c.Area)
	}
	// Default dep = full dependence -> ψ = 0.
	if c.ReplicationPotential() != 0 {
		t.Fatal("default dep should be full")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no circuit":    "input a\n",
		"dup circuit":   "circuit a\ncircuit b\n",
		"bad attr":      "circuit c\ncell u0 weird\n",
		"bad area":      "circuit c\ncell u0 area=x out=y in=\n",
		"bad dep digit": "circuit c\ninput a\noutput y\ncell u0 in=a out=y dep=2\n",
		"unknown":       "circuit c\nfoo bar\n",
		"invalid graph": "circuit c\ninput a\ncell u0 in=a out=a\n",
		"unnamed cell":  "circuit c\ncell\n",
		"unknown key":   "circuit c\ncell u0 color=red\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadDFFAndArea(t *testing.T) {
	src := `circuit c
input a
output y
cell u0 area=3 dff=2 in=a out=y dep=1
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalArea() != 3 || g.NumDFF() != 2 {
		t.Fatalf("area=%d dff=%d", g.TotalArea(), g.NumDFF())
	}
}
