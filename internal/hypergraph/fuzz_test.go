package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzRead(f *testing.F) {
	seeds := []string{
		"circuit c\ninput a b\noutput y z\ncell u0 in=a,b out=y,z dep=11;01\n",
		"circuit c\ninput a\noutput y\ncell u0 area=2 dff=1 in=a out=y\n",
		"circuit c\n",
		"circuit c\ninput a\noutput y\ncell u0 in=a out=y dep=1\ncell u1 in=y out=a\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, buf.String())
		}
		if back.NumCells() != g.NumCells() || back.NumNets() != g.NumNets() ||
			back.NumPins() != g.NumPins() || back.NumTerminals() != g.NumTerminals() {
			t.Fatal("round trip changed counts")
		}
	})
}
